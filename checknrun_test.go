package checknrun

import (
	"context"
	"testing"
	"time"

	"repro/internal/objstore"
)

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.JobID == "" {
		cfg.JobID = "facade-test"
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	if cfg.BatchesPerInterval == 0 {
		cfg.BatchesPerInterval = 2
	}
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestOpenRequiresJobID(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("empty JobID should error")
	}
}

func TestOpenRejectsTableMismatch(t *testing.T) {
	cfg := Config{JobID: "x"}
	cfg.Data.TableRows = []int{10} // model default has 4 tables
	cfg.Data.DenseDim = 13
	cfg.Data.ZipfS = 1.2
	cfg.Data.ZipfV = 1
	if _, err := Open(cfg); err == nil {
		t.Fatal("table count mismatch should error")
	}
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSystem(t, Config{ExpectedRestores: 1})
	ctx := testCtx(t)
	man, err := sys.RunInterval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if man.Kind != "full" {
		t.Fatalf("first checkpoint kind = %s", man.Kind)
	}
	if sys.QuantBits() != 2 {
		t.Fatalf("bits = %d, want 2 for ExpectedRestores=1", sys.QuantBits())
	}
	if err := sys.Run(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Manifests()); got != 3 {
		t.Fatalf("manifests = %d", got)
	}
	// Crash and recover.
	sys.Model().Sparse.Tables[0].Weights.Set(0, 0, 42)
	res, err := sys.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Step == 0 {
		t.Fatal("restored step should be positive")
	}
	if sys.Restores() != 1 {
		t.Fatalf("restores = %d", sys.Restores())
	}
	// Keep training after recovery.
	if _, err := sys.RunInterval(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestFP32Mode(t *testing.T) {
	sys := newSystem(t, Config{ExpectedRestores: -1})
	if sys.QuantBits() != 32 {
		t.Fatalf("bits = %d, want 32 (fp32)", sys.QuantBits())
	}
}

func TestStoreUsageAccounting(t *testing.T) {
	sys := newSystem(t, Config{ExpectedRestores: -1})
	ctx := testCtx(t)
	if _, err := sys.RunInterval(ctx); err != nil {
		t.Fatal(err)
	}
	u, ok := sys.StoreUsage()
	if !ok {
		t.Fatal("in-process store should expose usage")
	}
	if u.BytesWritten <= 0 || u.Objects <= 0 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestStallFractionPositive(t *testing.T) {
	sys := newSystem(t, Config{})
	ctx := testCtx(t)
	if _, err := sys.RunInterval(ctx); err != nil {
		t.Fatal(err)
	}
	if f := sys.StallFraction(); f <= 0 || f >= 1 {
		t.Fatalf("stall fraction = %v", f)
	}
	st := sys.TrainerStats()
	if st.Batches == 0 || st.Snapshots != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeepLastGC(t *testing.T) {
	sys := newSystem(t, Config{KeepLast: 1, Policy: PolicyFull, ExpectedRestores: -1})
	ctx := testCtx(t)
	if err := sys.Run(ctx, 3); err != nil {
		t.Fatal(err)
	}
	cks, err := sys.Checkpoints(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 {
		t.Fatalf("retained %d checkpoints, want 1", len(cks))
	}
}

func TestKeepAll(t *testing.T) {
	sys := newSystem(t, Config{KeepLast: -1, Policy: PolicyFull, ExpectedRestores: -1})
	ctx := testCtx(t)
	if err := sys.Run(ctx, 3); err != nil {
		t.Fatal(err)
	}
	cks, err := sys.Checkpoints(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 3 {
		t.Fatalf("retained %d checkpoints, want 3", len(cks))
	}
}

func TestOverTCPStore(t *testing.T) {
	backend := objstore.NewMemStore(objstore.MemConfig{})
	srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sys := newSystem(t, Config{StoreAddr: srv.Addr(), ExpectedRestores: 2})
	ctx := testCtx(t)
	if err := sys.Run(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// Server-side accounting sees the uploads.
	if u := backend.Usage(); u.Objects == 0 || u.BytesWritten == 0 {
		t.Fatalf("server usage = %+v", u)
	}
	// Recovery over TCP.
	if _, err := sys.Recover(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSecondSystemResumesJob(t *testing.T) {
	// A new System (fresh process after a crash) recovers the previous
	// job from the shared store.
	backend := objstore.NewMemStore(objstore.MemConfig{})
	srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := testCtx(t)

	first := newSystem(t, Config{JobID: "shared-job", StoreAddr: srv.Addr(), ExpectedRestores: -1})
	if err := first.Run(ctx, 2); err != nil {
		t.Fatal(err)
	}
	first.Close() // "crash"

	second := newSystem(t, Config{JobID: "shared-job", StoreAddr: srv.Addr(), ExpectedRestores: -1})
	res, err := second.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Step != 4 {
		t.Fatalf("restored step = %d, want 4", res.Step)
	}
	if _, err := second.RunInterval(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCompactAndRegressionKnobs(t *testing.T) {
	sys := newSystem(t, Config{
		ExpectedRestores: 3,
		CompactMetadata:  true,
		Predictor:        PredictorRegression,
	})
	ctx := testCtx(t)
	if err := sys.Run(ctx, 3); err != nil {
		t.Fatal(err)
	}
	// Compact checkpoints restore correctly.
	if _, err := sys.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunInterval(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCompactMetadataReducesPayload(t *testing.T) {
	run := func(compact bool) int64 {
		sys := newSystem(t, Config{
			JobID:            "compact-cmp",
			ExpectedRestores: 10, // 4-bit
			CompactMetadata:  compact,
			Policy:           PolicyFull,
		})
		ctx := testCtx(t)
		man, err := sys.RunInterval(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return man.PayloadBytes
	}
	v1, v2 := run(false), run(true)
	if v2 >= v1 {
		t.Fatalf("compact payload %d should be below v1 %d", v2, v1)
	}
}

func TestPropertyRestoreEqualsLiveAcrossPolicies(t *testing.T) {
	// Property: for any policy and any number of fp32 intervals, restoring
	// the latest checkpoint into a fresh system reproduces the live
	// model's predictions exactly.
	for _, policy := range []Policy{PolicyFull, PolicyOneShot, PolicyConsecutive, PolicyIntermittent} {
		for _, intervals := range []int{1, 3, 5} {
			backend := objstore.NewMemStore(objstore.MemConfig{})
			srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			jobID := "prop"
			live := newSystem(t, Config{
				JobID: jobID, StoreAddr: srv.Addr(),
				Policy: policy, ExpectedRestores: -1, KeepLast: -1,
			})
			ctx := testCtx(t)
			if err := live.Run(ctx, intervals); err != nil {
				t.Fatal(err)
			}
			restored := newSystem(t, Config{
				JobID: jobID, StoreAddr: srv.Addr(),
				Policy: policy, ExpectedRestores: -1, KeepLast: -1,
			})
			if _, err := restored.Recover(ctx); err != nil {
				t.Fatalf("policy=%v intervals=%d: %v", policy, intervals, err)
			}
			a, b := live.Model(), restored.Model()
			for i := 0; i < 16; i++ {
				// Compare on deterministic weight samples.
				wa := a.Sparse.Tables[0].Weights.Data[i*37]
				wb := b.Sparse.Tables[0].Weights.Data[i*37]
				if wa != wb {
					t.Fatalf("policy=%v intervals=%d: weight %d differs", policy, intervals, i)
				}
			}
			restored.Close()
			live.Close()
			srv.Close()
		}
	}
}

func TestVerifyThroughFacade(t *testing.T) {
	sys := newSystem(t, Config{ExpectedRestores: 1, KeepLast: -1})
	ctx := testCtx(t)
	if err := sys.Run(ctx, 2); err != nil {
		t.Fatal(err)
	}
	results, err := sys.VerifyAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("scrubbed %d, want 2", len(results))
	}
	for _, v := range results {
		if !v.OK() {
			t.Fatalf("checkpoint %d flagged: %v", v.ID, v.Problems)
		}
	}
	v, err := sys.Verify(ctx, 0)
	if err != nil || !v.OK() {
		t.Fatalf("single verify: %v %v", v, err)
	}
}
