// Quantization sweep: compare the paper's four checkpoint quantization
// approaches on a genuinely trained embedding table, including the
// sampling-based automatic parameter selection of §5.2 — a compact
// reproduction of Figures 9-11 on your own terminal.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/quant"
)

func main() {
	fmt.Println("training a small DLRM to produce a representative checkpoint...")
	cv, err := experiments.TrainedCheckpoint(2048, 16, 30, 64, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d embedding vectors of dim %d\n\n", len(cv.Vectors), cv.Dim)

	// Figure 9: mean L2 error by method and bit-width.
	fmt.Printf("%-10s %14s %14s %14s %14s\n", "bits", "symmetric", "asymmetric", "k-means", "adaptive")
	for _, bits := range []int{2, 3, 4, 8} {
		row := []float64{}
		for _, p := range []quant.Params{
			{Method: quant.MethodSymmetric, Bits: bits},
			{Method: quant.MethodAsymmetric, Bits: bits},
			{Method: quant.MethodKMeans, Bits: bits, KMeansIters: 15},
			{Method: quant.MethodAdaptive, Bits: bits, NumBins: 25, Ratio: 1},
		} {
			e, err := quant.MeanL2Error(cv.Vectors, p)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, e)
		}
		fmt.Printf("%-10d %14.6f %14.6f %14.6f %14.6f\n", bits, row[0], row[1], row[2], row[3])
	}

	// Automatic parameter selection on a sampled checkpoint (§5.2).
	fmt.Println("\nautomatic parameter selection (0.001% sampling profile):")
	for _, bits := range []int{2, 3, 4} {
		p, err := quant.SelectAdaptiveParams(cv.Vectors, bits,
			[]int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}, 1.0, 0.01, 1)
		if err != nil {
			log.Fatal(err)
		}
		imp, err := quant.ImprovementOverNaive(cv.Vectors, bits, p.NumBins, p.Ratio)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d-bit: selected %d bins (improvement over naive: %.1f%%)\n",
			bits, p.NumBins, imp*100)
	}

	// Storage footprint comparison.
	fmt.Println("\nper-row storage (dim-16 row, fp32 = 64 bytes + 4 accum):")
	x := cv.Vectors[0]
	for _, bits := range []int{2, 3, 4, 8} {
		q, err := quant.Quantize(x, quant.Params{Method: quant.MethodAsymmetric, Bits: bits})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d-bit: %d bytes (%.1fx smaller)\n",
			bits, q.StorageBytes(), 68.0/float64(q.StorageBytes()))
	}
}
