// Fleet: many training jobs checkpointing concurrently against one
// bandwidth-limited storage tier — the setting that motivates
// Check-N-Run (§4.3: shared write bandwidth bounds how frequently every
// job can checkpoint). The example measures, on a virtual clock, how long
// a whole-fleet checkpoint round takes with plain full fp32 checkpoints
// versus Check-N-Run's incremental + 4-bit + compact-metadata pipeline.
//
// It then runs the deployment shape for real: the process re-execs
// itself to fork an object-store daemon and one shard-agent process per
// trainer node, and acts as the controller driving the two-phase
// composite commit over TCP — three OS processes per shard boundary,
// not goroutines.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/ctrl/shardhost"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/serve"
	"repro/internal/trainer"
)

// Fleet-wide constants every forked process must agree on.
const (
	fleetJob   = "fleet-distributed"
	fleetSeed  = 21
	fleetBatch = 32
	fleetDim   = 16
)

var fleetRows = []int{1024, 1024, 2048}

func main() {
	// Forked children re-enter main with a role in the environment.
	switch os.Getenv("FLEET_ROLE") {
	case "store":
		runStore()
		return
	case "shard":
		runShard()
		return
	case "replica":
		runReplica()
		return
	}

	cfg := experiments.DefaultContention()
	fmt.Printf("fleet: %d jobs sharing a %.0f MB/s storage link\n",
		cfg.Jobs, cfg.Bandwidth/(1<<20))
	fmt.Printf("each job: 2 embedding tables x %d rows x dim %d\n\n",
		cfg.RowsPerTable, cfg.Dim)

	r, err := experiments.WriteLatencyResult(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Render())

	fmt.Println("\nreading the table: round 0 includes every job's full baseline;")
	fmt.Println("steady-state rounds show the sustained checkpointing cost. The")
	fmt.Println("speedup translates directly into higher feasible checkpoint")
	fmt.Println("frequency — or more jobs on the same storage tier.")

	distributedDemo()
}

// runStore is the forked object-store daemon: the data plane. With
// FLEET_DATA_DIR set it runs the crash-consistent disk backend under
// fsync=always — every acked Put survives SIGKILL — and with
// FLEET_STORE_ADDR it rebinds a restarted store to its old address so
// clients and the membership record stay valid.
func runStore() {
	var backend objstore.Store = objstore.NewMemStore(objstore.MemConfig{})
	if dir := os.Getenv("FLEET_DATA_DIR"); dir != "" {
		ds, err := objstore.NewDiskStore(objstore.DiskConfig{Dir: dir, Fsync: objstore.FsyncAlways})
		if err != nil {
			log.Fatal(err)
		}
		backend = ds
	}
	addr := os.Getenv("FLEET_STORE_ADDR")
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var srv *objstore.Server
	for i := 0; ; i++ {
		var err error
		srv, err = objstore.NewServer(addr, backend, objstore.ServerConfig{})
		if err == nil {
			break
		}
		// A restarted store races the kernel releasing its predecessor's
		// port; retry briefly rather than surrendering the address.
		if i >= 50 {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println(srv.Addr())
	waitForSignal()
	srv.Close()
	backend.Close()
}

// runShard is one forked shard-agent process: it hosts its replica and
// serves the control protocol, uploading payload straight to the store.
func runShard() {
	shard, _ := strconv.Atoi(os.Getenv("FLEET_SHARD"))
	shards, _ := strconv.Atoi(os.Getenv("FLEET_SHARDS"))
	host, err := shardhost.Start(shardhost.Config{
		JobID:     fleetJob,
		Shard:     shard,
		Shards:    shards,
		StoreAddr: os.Getenv("FLEET_STORE"),
		Seed:      fleetSeed,
		BatchSize: fleetBatch,
		TableRows: fleetRows,
		Dim:       fleetDim,
		Engine:    ckpt.Config{Policy: ckpt.PolicyOneShot},
		Recover:   os.Getenv("FLEET_RECOVER") == "1",
		Logf:      log.New(os.Stderr, fmt.Sprintf("shard[%d]: ", shard), 0).Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(host.Addr())
	waitForSignal()
	host.Close()
}

// runReplica is one forked serving replica: it bootstraps from the
// newest committed composite in the store, subscribes to the announce
// plane, and answers embedding lookups over its own TCP port — the
// read path that turns checkpoints into an always-on serving table.
func runReplica() {
	store, err := objstore.Connect(os.Getenv("FLEET_STORE"), objstore.ClientConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := serve.Start(serve.Config{
		JobID:        fleetJob,
		Store:        store,
		AnnounceAddr: os.Getenv("FLEET_ANNOUNCE"),
		ResyncEvery:  500 * time.Millisecond,
		Logf:         log.New(os.Stderr, "replica: ", 0).Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Addr())
	waitForSignal()
	rep.Close()
	store.Close()
}

func waitForSignal() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
}

// fork re-execs this binary under a role and returns the child and the
// address it printed.
func fork(role string, env ...string) (*exec.Cmd, string, error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), append([]string{"FLEET_ROLE=" + role}, env...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Wait()
		return nil, "", fmt.Errorf("fleet: %s child exited before printing its address", role)
	}
	return cmd, sc.Text(), nil
}

// distributedDemo forks the fleet — object store + one shard agent per
// node, each a real OS process — and drives composite checkpoints from
// this process, the controller. Errors must flow back through here (not
// os.Exit mid-demo) so the deferred reaping always runs and no child is
// orphaned.
func distributedDemo() {
	if err := runDistributedDemo(); err != nil {
		log.Fatal(err)
	}
}

func runDistributedDemo() error {
	const shards = 3
	const storeProcs = 2
	fmt.Println("\n--- distributed fleet: controller -> shardd x3 -> objstored x2 ---")

	var children []*exec.Cmd
	defer func() {
		for _, c := range children {
			c.Process.Signal(syscall.SIGTERM)
		}
		for _, c := range children {
			c.Wait()
		}
	}()

	// The data plane is itself a fleet: N objstored processes over which
	// the checkpoint keyspace is consistent-hash routed. Every process —
	// shardds, this controller, the restore below — connects with the
	// same member list and therefore places every key identically. Each
	// store gets a segment-log directory (fsync=always), so a killed
	// store is a crash to recover from, not data loss.
	dataRoot, err := os.MkdirTemp("", "fleet-data-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataRoot)
	storeAddrs := make([]string, storeProcs)
	storeDirs := make([]string, storeProcs)
	for i := 0; i < storeProcs; i++ {
		storeDirs[i] = filepath.Join(dataRoot, fmt.Sprintf("store-%d", i))
		proc, addr, err := fork("store", "FLEET_DATA_DIR="+storeDirs[i])
		if err != nil {
			return err
		}
		children = append(children, proc)
		storeAddrs[i] = addr
		fmt.Printf("objstored %d pid %d on %s (data %s)\n", i, proc.Process.Pid, addr, storeDirs[i])
	}
	storeSpec := strings.Join(storeAddrs, ",")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Publish the membership record to every member, so a process that
	// knows any single address can still discover the whole store fleet.
	if err := objstore.PublishMembership(ctx, storeAddrs, objstore.ClientConfig{}); err != nil {
		return err
	}

	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		proc, addr, err := fork("shard",
			"FLEET_SHARD="+strconv.Itoa(s),
			"FLEET_SHARDS="+strconv.Itoa(shards),
			"FLEET_STORE="+storeSpec,
		)
		if err != nil {
			return err
		}
		children = append(children, proc)
		addrs[s] = addr
		fmt.Printf("shardd %d pid %d on %s\n", s, proc.Process.Pid, addr)
	}

	// The announce plane is deployment-owned, like a stable VIP in front
	// of whichever controller currently leads: this process hosts it,
	// every controller incarnation announces through it, and the
	// replica's subscription survives leader failover.
	annc, err := ctrl.NewAnnouncer("127.0.0.1:0", fleetJob, log.New(os.Stderr, "announce: ", 0).Printf)
	if err != nil {
		return err
	}
	defer annc.Close()

	// The read plane: a forked serving replica that pulls the baseline
	// from the store and follows announcements for each delta.
	rproc, raddr, err := fork("replica",
		"FLEET_STORE="+storeSpec,
		"FLEET_ANNOUNCE="+annc.Addr(),
	)
	if err != nil {
		return err
	}
	children = append(children, rproc)
	fmt.Printf("replica pid %d serving lookups on %s\n", rproc.Process.Pid, raddr)

	// Connect via a single seed address: the membership record expands it
	// to the full routed fleet, proving discovery round-trips.
	store, err := objstore.Connect(storeAddrs[0], objstore.ClientConfig{})
	if err != nil {
		return err
	}
	defer store.Close()
	if rs, ok := store.(*objstore.RoutedStore); ok {
		fmt.Printf("store plane: %d backends discovered from seed %s\n",
			len(rs.Backends()), storeAddrs[0])
	}

	// Epochs come from the job's store-backed lease register, not flags:
	// each controller incarnation acquires the commit lease, durably
	// bumping the epoch past every predecessor's.
	reg, err := ctrl.NewRegister(ctrl.RegisterConfig{
		JobID: fleetJob, Store: store, Holder: "fleet-demo-a",
	})
	if err != nil {
		return err
	}
	lease, err := reg.Acquire(ctx, 0)
	if err != nil {
		return err
	}
	c, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: fleetJob, Store: store, Agents: addrs, Lease: lease, Announcer: annc,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// A lookup client against the replica, and a convergence poll: keep
	// probing until the replica reports it serves at least checkpoint
	// wantID. Lookup errors (including not-ready before the first sync)
	// just mean "not yet".
	rcl := serve.NewClient(raddr, serve.ClientConfig{})
	defer rcl.Close()
	waitServe := func(wantID int) (*serve.Client, error) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := rcl.Lookup(ctx, 0, []uint32{0})
			if err == nil && resp.CkptID >= wantID {
				return rcl, nil
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("fleet: replica never converged on checkpoint %d: %v", wantID, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	var lastStep uint64
	lastID := -1
	for round := 1; round <= 3; round++ {
		step := uint64(round) * 8
		man, err := c.Checkpoint(ctx, step)
		if err != nil {
			return err
		}
		lastStep, lastID = man.Step, man.ID
		fmt.Printf("ckpt %d: %-11s %d shards, %6d bytes payload, step %d\n",
			man.ID, man.Kind, man.ShardCount, man.PayloadBytes, man.Step)
	}
	if _, err := waitServe(lastID); err != nil {
		return err
	}
	fmt.Printf("replica converged on ckpt %d via the announce stream\n", lastID)

	// Self-healing: SIGKILL one shardd mid-fleet, restart it with
	// recovery on, and fail the controller over through the lease
	// register. The restarted agent rebuilds its engine from the store's
	// manifests, so discovery's NextID consensus still holds; the
	// successor controller's lease grants the next epoch automatically.
	fmt.Println("\n--- self-healing: SIGKILL shardd 1, rejoin + controller failover ---")
	victim := children[storeProcs+1] // [0..storeProcs) stores, [storeProcs+s] shard s
	victim.Process.Kill()
	victim.Wait()
	c.Close()
	if err := lease.Release(ctx); err != nil {
		return err
	}

	// The leader is gone mid-stream, but the read plane doesn't care:
	// the replica keeps answering from its last committed checkpoint.
	resp, err := rcl.Lookup(ctx, 0, []uint32{0})
	if err != nil {
		return fmt.Errorf("fleet: lookup during failover: %w", err)
	}
	fmt.Printf("leaderless window: replica still serving ckpt %d\n", resp.CkptID)
	proc, addr, err := fork("shard",
		"FLEET_SHARD=1",
		"FLEET_SHARDS="+strconv.Itoa(shards),
		"FLEET_STORE="+storeSpec,
		"FLEET_RECOVER=1",
	)
	if err != nil {
		return err
	}
	children[storeProcs+1] = proc
	addrs[1] = addr
	fmt.Printf("shardd 1 restarted: pid %d on %s\n", proc.Process.Pid, addr)

	regB, err := ctrl.NewRegister(ctrl.RegisterConfig{
		JobID: fleetJob, Store: store, Holder: "fleet-demo-b",
	})
	if err != nil {
		return err
	}
	leaseB, err := regB.Acquire(ctx, 0)
	if err != nil {
		return err
	}
	defer leaseB.Release(context.Background())
	c2, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID: fleetJob, Store: store, Agents: addrs, Lease: leaseB, Announcer: annc,
	})
	if err != nil {
		return err
	}
	defer c2.Close()
	fmt.Printf("successor controller at epoch %d (lease register), next checkpoint %d\n",
		c2.Epoch(), c2.NextID())
	man, err := c2.Checkpoint(ctx, 4*8)
	if err != nil {
		return err
	}
	lastStep = man.Step
	fmt.Printf("ckpt %d: %-11s %d shards, %6d bytes payload, step %d\n",
		man.ID, man.Kind, man.ShardCount, man.PayloadBytes, man.Step)
	// The successor announces through the same deployment-owned
	// announcer, so the replica follows it across the failover without
	// resubscribing.
	if _, err := waitServe(man.ID); err != nil {
		return err
	}
	fmt.Printf("replica converged on ckpt %d through the successor's announcements\n", man.ID)

	// Crash-restore on a fresh model in the controller process, then
	// verify against a local replica trained to the same step: the
	// processes really did train (and checkpoint) the same fleet.
	mcfg, spec := shardhost.ReplicaConfig(fleetSeed, fleetRows, fleetDim)
	m2, err := model.New(mcfg, shards)
	if err != nil {
		return err
	}
	rest, err := ckpt.NewRestorer(fleetJob, store)
	if err != nil {
		return err
	}
	res, err := rest.RestoreLatest(ctx, m2)
	if err != nil {
		return err
	}
	fmt.Printf("restored ckpt %d: %d rows across %d shards, %d bytes read\n",
		res.Manifests[0].ID, res.RowsApplied, res.Manifests[0].ShardCount, res.BytesRead)
	fmt.Printf("reader resumes at sample %d (step %d)\n", res.Reader.NextSample, lastStep)

	ref, err := model.New(mcfg, shards)
	if err != nil {
		return err
	}
	cl, err := trainer.New(ref, trainer.Config{Nodes: shards})
	if err != nil {
		return err
	}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		return err
	}
	for i := uint64(0); i < lastStep; i++ {
		cl.Step(gen.NextBatch(fleetBatch))
	}
	for _, tab := range ref.Sparse.Tables {
		rt := m2.Sparse.Table(tab.ID)
		for i := range tab.Weights.Data {
			if tab.Weights.Data[i] != rt.Weights.Data[i] {
				return fmt.Errorf("fleet: restored table %d differs from reference replica at weight %d", tab.ID, i)
			}
		}
	}
	fmt.Printf("restored state is bit-identical to a replica trained to step %d\n", lastStep)

	// The serving replica must agree with that same state: every table,
	// every row, bit for bit — and every response must name the newest
	// committed checkpoint, proving no torn or half-applied delta.
	wantID := res.Manifests[0].ID
	for _, tab := range m2.Sparse.Tables {
		indices := make([]uint32, tab.Rows)
		for i := range indices {
			indices[i] = uint32(i)
		}
		resp, err := rcl.Lookup(ctx, uint32(tab.ID), indices)
		if err != nil {
			return fmt.Errorf("fleet: replica lookup table %d: %w", tab.ID, err)
		}
		if resp.CkptID != wantID {
			return fmt.Errorf("fleet: replica serves ckpt %d for table %d, want %d", resp.CkptID, tab.ID, wantID)
		}
		for i := range tab.Weights.Data {
			if resp.Vectors[i] != tab.Weights.Data[i] {
				return fmt.Errorf("fleet: replica lookup differs from restored state at table %d weight %d", tab.ID, i)
			}
		}
	}
	fmt.Printf("replica lookups are bit-identical to the restored state at ckpt %d\n", wantID)

	// Show how the routed keyspace actually spread over the store fleet.
	if rs, ok := store.(*objstore.RoutedStore); ok {
		for i, b := range rs.Backends() {
			keys, err := b.Store.List(ctx, "")
			if err != nil {
				return err
			}
			fmt.Printf("objstored %d (%s): %d objects\n", i, b.Name, len(keys))
		}
	}

	// Durability: SIGKILL an objstored outright — no TERM, no flush —
	// and restart it from its segment log at the same address. Under
	// fsync=always every acked Put is on disk, so recovery truncates at
	// most a torn unacked tail and the full checkpoint history survives.
	fmt.Println("\n--- durability: SIGKILL objstored 0, restart from its segment log ---")
	storeVictim := children[0]
	storeVictim.Process.Kill()
	storeVictim.Wait()
	proc2, addr2, err := fork("store",
		"FLEET_DATA_DIR="+storeDirs[0],
		"FLEET_STORE_ADDR="+storeAddrs[0],
	)
	if err != nil {
		return err
	}
	children[0] = proc2
	fmt.Printf("objstored 0 restarted: pid %d on %s\n", proc2.Process.Pid, addr2)

	// A fresh connection (the old pool holds dead sockets) and a fresh
	// model: the restore must come entirely from recovered disk state.
	store2, err := objstore.Connect(storeSpec, objstore.ClientConfig{})
	if err != nil {
		return err
	}
	defer store2.Close()
	m3, err := model.New(mcfg, shards)
	if err != nil {
		return err
	}
	rest2, err := ckpt.NewRestorer(fleetJob, store2)
	if err != nil {
		return err
	}
	res2, err := rest2.RestoreLatest(ctx, m3)
	if err != nil {
		return err
	}
	fmt.Printf("restored ckpt %d from recovered store: %d rows, %d bytes read\n",
		res2.Manifests[0].ID, res2.RowsApplied, res2.BytesRead)
	for _, tab := range ref.Sparse.Tables {
		rt := m3.Sparse.Table(tab.ID)
		for i := range tab.Weights.Data {
			if tab.Weights.Data[i] != rt.Weights.Data[i] {
				return fmt.Errorf("fleet: post-crash restore differs from reference replica at table %d weight %d", tab.ID, i)
			}
		}
	}
	fmt.Printf("post-crash restore is bit-identical to the reference replica at step %d\n", lastStep)
	return nil
}
