// Fleet: many training jobs checkpointing concurrently against one
// bandwidth-limited storage tier — the setting that motivates
// Check-N-Run (§4.3: shared write bandwidth bounds how frequently every
// job can checkpoint). The example measures, on a virtual clock, how long
// a whole-fleet checkpoint round takes with plain full fp32 checkpoints
// versus Check-N-Run's incremental + 4-bit + compact-metadata pipeline.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/simclock"
	"repro/internal/trainer"
)

func main() {
	cfg := experiments.DefaultContention()
	fmt.Printf("fleet: %d jobs sharing a %.0f MB/s storage link\n",
		cfg.Jobs, cfg.Bandwidth/(1<<20))
	fmt.Printf("each job: 2 embedding tables x %d rows x dim %d\n\n",
		cfg.RowsPerTable, cfg.Dim)

	r, err := experiments.WriteLatencyResult(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Render())

	fmt.Println("\nreading the table: round 0 includes every job's full baseline;")
	fmt.Println("steady-state rounds show the sustained checkpointing cost. The")
	fmt.Println("speedup translates directly into higher feasible checkpoint")
	fmt.Println("frequency — or more jobs on the same storage tier.")

	shardedDemo()
}

// shardedDemo runs the multi-trainer shape end-to-end: a 4-node cluster
// whose embedding ownership drives a 4-shard checkpoint coordinator,
// storing over a real TCP object store and committing each checkpoint
// with a single composite manifest only after every shard is durable.
func shardedDemo() {
	fmt.Println("\n--- sharded coordinator over TCP ---")
	const nodes = 4

	backend := objstore.NewMemStore(objstore.MemConfig{})
	srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	store, err := objstore.Dial(srv.Addr(), objstore.ClientConfig{PoolSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	m, err := model.New(model.DefaultConfig(), nodes)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := trainer.New(m, trainer.Config{Nodes: nodes, Clock: simclock.NewSim(time.Time{})})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := data.NewGenerator(data.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}

	// Shard writers mirror the trainer nodes that own each table.
	coord, err := ckpt.NewCoordinator(ckpt.CoordinatorConfig{
		Config: ckpt.Config{
			JobID:  "fleet-sharded",
			Store:  store,
			Policy: ckpt.PolicyOneShot,
		},
		Shards:     nodes,
		Assignment: cluster.TableAssignment(),
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	const batch = 64
	for interval := 0; interval < 3; interval++ {
		for i := 0; i < 4; i++ {
			cluster.Step(gen.NextBatch(batch))
		}
		snap, err := cluster.Snapshot(data.ReaderState{NextSample: gen.Pos(), BatchSize: batch})
		if err != nil {
			log.Fatal(err)
		}
		man, err := coord.Write(ctx, snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ckpt %d: %-11s %d shards, %6d bytes payload, step %d\n",
			man.ID, man.Kind, man.ShardCount, man.PayloadBytes, man.Step)
	}

	// Crash-restore on a fresh model: shards restore in parallel.
	rest, err := ckpt.NewRestorer("fleet-sharded", store)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := model.New(model.DefaultConfig(), nodes)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rest.RestoreLatest(ctx, m2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored ckpt %d: %d rows across %d shards, %d bytes read\n",
		res.Manifests[0].ID, res.RowsApplied, res.Manifests[0].ShardCount, res.BytesRead)
}
