// Fleet: many training jobs checkpointing concurrently against one
// bandwidth-limited storage tier — the setting that motivates
// Check-N-Run (§4.3: shared write bandwidth bounds how frequently every
// job can checkpoint). The example measures, on a virtual clock, how long
// a whole-fleet checkpoint round takes with plain full fp32 checkpoints
// versus Check-N-Run's incremental + 4-bit + compact-metadata pipeline.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultContention()
	fmt.Printf("fleet: %d jobs sharing a %.0f MB/s storage link\n",
		cfg.Jobs, cfg.Bandwidth/(1<<20))
	fmt.Printf("each job: 2 embedding tables x %d rows x dim %d\n\n",
		cfg.RowsPerTable, cfg.Dim)

	r, err := experiments.WriteLatencyResult(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Render())

	fmt.Println("\nreading the table: round 0 includes every job's full baseline;")
	fmt.Println("steady-state rounds show the sustained checkpointing cost. The")
	fmt.Println("speedup translates directly into higher feasible checkpoint")
	fmt.Println("frequency — or more jobs on the same storage tier.")
}
