// Online training: publish consecutive incremental checkpoints so an
// inference fleet can keep a serving model fresh (§5.1 of the paper:
// "consecutive increment checkpoints are useful for use cases such as
// online training, where checkpoints are directly applied to an
// already-trained model in inference").
//
// The example runs a trainer publishing consecutive increments and an
// "inference replica" that applies each increment as it lands, then
// compares the replica's predictions against the live trainer.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
)

func main() {
	ctx := context.Background()

	mcfg := model.DefaultConfig()
	mcfg.Tables = []embedding.TableSpec{
		{Rows: 2048, Dim: 16}, {Rows: 4096, Dim: 16},
	}
	trainerModel, err := model.New(mcfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	spec := data.DefaultSpec()
	spec.TableRows = []int{2048, 4096}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Shared store between the trainer and the inference replica.
	store := objstore.NewMemStore(objstore.MemConfig{})
	eng, err := ckpt.NewEngine(ckpt.Config{
		JobID:  "online",
		Store:  store,
		Policy: ckpt.PolicyConsecutive,
		// 8-bit quantization: online models refresh often and restore
		// often, so the conservative bit-width applies (§6.2.1).
		Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	rest, err := ckpt.NewRestorer("online", store)
	if err != nil {
		log.Fatal(err)
	}

	// The inference replica starts from the same initial weights (a
	// deployed model) and applies published increments.
	replica, err := model.New(mcfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	const batch = 64
	fmt.Println("publishing consecutive increments every 3 batches:")
	for interval := 0; interval < 6; interval++ {
		for b := 0; b < 3; b++ {
			trainerModel.TrainBatch(gen.NextBatch(batch))
		}
		snap, err := ckpt.TakeSnapshot(trainerModel, uint64((interval+1)*3),
			data.ReaderState{NextSample: gen.Pos(), BatchSize: batch})
		if err != nil {
			log.Fatal(err)
		}
		man, err := eng.Write(ctx, snap)
		if err != nil {
			log.Fatal(err)
		}

		// The replica applies the newly published checkpoint. Restore
		// walks the chain, but since the replica applies every link in
		// order anyway, each publish is a small delta.
		if _, err := rest.Restore(ctx, man.ID, replica); err != nil {
			log.Fatal(err)
		}

		stored := 0
		for _, t := range man.Tables {
			stored += t.StoredRows
		}
		drift := predictionDrift(trainerModel, replica, gen)
		fmt.Printf("  publish %d: %-11s %5d rows %8d bytes; replica drift %.5f\n",
			man.ID, man.Kind, stored, man.PayloadBytes, drift)
	}

	fmt.Println("\nreplica freshness: drift stays at quantization noise level —")
	fmt.Println("the serving model tracks the trainer without full redeploys.")
	u := store.Usage()
	fmt.Printf("store: %d objects, %d bytes written total\n", u.Objects, u.BytesWritten)
}

// predictionDrift compares trainer and replica logits on a held-out set.
func predictionDrift(a, b *model.DLRM, gen *data.Generator) float64 {
	var sum float64
	const n = 64
	for i := uint64(0); i < n; i++ {
		s := gen.At(1<<40 + i)
		sum += math.Abs(float64(a.Forward(&s) - b.Forward(&s)))
	}
	return sum / n
}
