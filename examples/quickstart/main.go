// Quickstart: train a synthetic recommendation model with Check-N-Run
// checkpointing, simulate a crash, and recover — the minimal end-to-end
// use of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// Open a system with production-like defaults scaled down: 2 trainer
	// nodes, intermittent incremental policy, dynamic bit-width selection
	// for a job expected to restore at most once (=> 2-bit checkpoints).
	sys, err := checknrun.Open(checknrun.Config{
		JobID:              "quickstart",
		Policy:             checknrun.PolicyIntermittent,
		ExpectedRestores:   1,
		BatchSize:          64,
		BatchesPerInterval: 4,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer sys.Close()

	ctx := context.Background()
	fmt.Printf("quantization: %d-bit checkpoints\n", sys.QuantBits())

	// Train five checkpoint intervals. Each interval trains the exact
	// batch quota, stalls briefly to snapshot, and uploads an optimized
	// checkpoint in the background.
	for i := 0; i < 5; i++ {
		man, err := sys.RunInterval(ctx)
		if err != nil {
			log.Fatalf("interval %d: %v", i, err)
		}
		stored := 0
		for _, t := range man.Tables {
			stored += t.StoredRows
		}
		fmt.Printf("interval %d: %-11s checkpoint, %6d rows, %8d bytes, loss %.4f\n",
			i, man.Kind, stored, man.PayloadBytes, sys.TrainerStats().LastLoss)
	}

	// Simulate a crash: clobber part of the model.
	sys.Model().Sparse.Tables[0].Weights.Set(0, 0, 9999)
	fmt.Println("simulated crash: model corrupted")

	// Recover: loads the baseline + latest increment, de-quantizes, and
	// rewinds the reader so no sample is trained twice or skipped.
	res, err := sys.Recover(ctx)
	if err != nil {
		log.Fatalf("recover: %v", err)
	}
	fmt.Printf("recovered to step %d (%d rows applied from %d checkpoint(s), %d bytes read)\n",
		res.Step, res.RowsApplied, len(res.Manifests), res.BytesRead)

	// Training continues where the checkpoint left off.
	if _, err := sys.RunInterval(ctx); err != nil {
		log.Fatalf("post-recovery interval: %v", err)
	}
	fmt.Printf("training resumed; total restores: %d\n", sys.Restores())

	if u, ok := sys.StoreUsage(); ok {
		fmt.Printf("store usage: %d objects, %d bytes capacity, %d bytes written\n",
			u.Objects, u.CapacityBytes, u.BytesWritten)
	}
}
