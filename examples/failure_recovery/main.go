// Failure recovery: a long training job against a remote TCP object
// store, with failures injected from the paper's fitted time-to-failure
// distribution, dynamic quantization bit-width selection from the
// expected-restart estimate, and the automatic 8-bit fallback when
// failures exceed the estimate (§6.2.1).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/failure"
	"repro/internal/objstore"
)

func main() {
	ctx := context.Background()

	// Start a local object-store server — in production this is the
	// remote, replicated checkpoint storage tier.
	backend := objstore.NewMemStore(objstore.MemConfig{Replication: 3})
	srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("object store (replication=3) on %s\n", srv.Addr())

	// Estimate expected restores from the failure model: a 24h job on 16
	// nodes with the per-node failure rate implied by the paper's CDF.
	expected := failure.ExpectedRestores(24*time.Hour, 16, 0.005)
	fmt.Printf("expected restores for a 24h/16-node job: %.1f\n", expected)

	sys, err := checknrun.Open(checknrun.Config{
		JobID:              "prod-job-42",
		StoreAddr:          srv.Addr(),
		Policy:             checknrun.PolicyIntermittent,
		ExpectedRestores:   expected,
		BatchSize:          64,
		BatchesPerInterval: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("dynamic bit-width selection chose %d-bit checkpoints\n\n", sys.QuantBits())

	// Inject failures between intervals with probability shaped by the
	// paper's Weibull TTF model (short lives are common).
	ttf := failure.PaperWeibull()
	rng := rand.New(rand.NewSource(42))
	const intervals = 10
	failures := 0
	for i := 0; i < intervals; i++ {
		man, err := sys.RunInterval(ctx)
		if err != nil {
			log.Fatalf("interval %d: %v", i, err)
		}
		fmt.Printf("interval %d: %-11s checkpoint id=%d bits=%d\n",
			i, man.Kind, man.ID, sys.QuantBits())

		// Draw a time-to-failure; if it lands inside this interval's
		// simulated 30 minutes, the job crashes and recovers.
		if ttf.Sample(rng) < 30*time.Minute {
			failures++
			fmt.Printf("  !! failure %d injected — recovering from latest checkpoint\n", failures)
			res, err := sys.Recover(ctx)
			if err != nil {
				log.Fatalf("recover: %v", err)
			}
			fmt.Printf("  recovered to step %d (%d rows, %d bytes read)\n",
				res.Step, res.RowsApplied, res.BytesRead)
			if sys.Restores() > int(expected) && sys.QuantBits() == 8 {
				fmt.Printf("  restores (%d) exceeded estimate (%.1f): fell back to 8-bit\n",
					sys.Restores(), expected)
			}
		}
	}

	fmt.Printf("\njob finished: %d intervals, %d restores, final bits=%d\n",
		intervals, sys.Restores(), sys.QuantBits())
	u := backend.Usage()
	fmt.Printf("server-side accounting: %d objects, %d bytes capacity (x3 replication), %d bytes written\n",
		u.Objects, u.CapacityBytes, u.BytesWritten)
}
