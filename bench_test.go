// Benchmarks regenerating every figure of the Check-N-Run paper (run
// with `go test -bench=. -benchmem`), plus ablations for the design
// choices called out in DESIGN.md §5. Custom metrics carry the figure's
// headline quantity so `bench_output.txt` doubles as a results table;
// cmd/benchgen prints the full series.
package checknrun

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// benchIncremental is the reduced workload the figure benches share.
func benchIncremental() experiments.IncrementalConfig {
	cfg := experiments.DefaultIncremental()
	cfg.Intervals = 8
	cfg.RowsPerTable = 1024
	cfg.BatchSize = 96
	cfg.BatchesPerInterval = 3
	cfg.Dim = 16
	return cfg
}

func benchCheckpoint(b *testing.B) *experiments.CheckpointVectors {
	b.Helper()
	cv, err := experiments.TrainedCheckpoint(512, 16, 15, 64, 7)
	if err != nil {
		b.Fatal(err)
	}
	return cv
}

func BenchmarkFig03FailureCDF(b *testing.B) {
	var p90 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3FailureCDF(experiments.Fig3Config{Jobs: 2000, Seed: 3})
		p90 = r.Series[0].Points[len(r.Series[0].Points)-1].X
	}
	b.ReportMetric(p90, "maxTTF_hours")
}

func BenchmarkFig04ModelGrowth(b *testing.B) {
	var growth float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4ModelGrowth()
		growth = r.Series[0].Points[len(r.Series[0].Points)-1].Y
	}
	b.ReportMetric(growth, "growth_x")
}

func BenchmarkFig05ModifiedFraction(b *testing.B) {
	cfg := experiments.DefaultFig5()
	cfg.Samples = 20_000
	var final float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5ModifiedFraction(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := r.Series[0]
		final = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(final, "final_modified_%")
}

func BenchmarkFig06IntervalModified(b *testing.B) {
	cfg := experiments.DefaultFig6()
	cfg.SamplesPerMinute = 50
	var mean30 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6IntervalModified(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Series {
			if s.Name == "30 min" {
				var ys []float64
				for _, p := range s.Points {
					ys = append(ys, p.Y)
				}
				mean30 = stats.Mean(ys)
			}
		}
	}
	b.ReportMetric(mean30, "30min_modified_%")
}

func BenchmarkFig09QuantError(b *testing.B) {
	cv := benchCheckpoint(b)
	b.ResetTimer()
	var adaptive2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9QuantError(cv)
		if err != nil {
			b.Fatal(err)
		}
		adaptive2 = r.Series[3].Points[0].Y
	}
	b.ReportMetric(adaptive2, "adaptive2bit_L2")
}

func BenchmarkFig10AdaptiveBins(b *testing.B) {
	cv := benchCheckpoint(b)
	b.ResetTimer()
	var best float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10AdaptiveBins(cv, []int{5, 15, 25, 45})
		if err != nil {
			b.Fatal(err)
		}
		s := r.Series[0] // 2 bits
		best = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(best*100, "2bit_improvement_%")
}

func BenchmarkFig11AdaptiveRatio(b *testing.B) {
	cv := benchCheckpoint(b)
	b.ResetTimer()
	var atFull float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11AdaptiveRatio(cv, []float64{0.25, 0.5, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		s := r.Series[0]
		atFull = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(atFull*100, "2bit_ratio1_improvement_%")
}

func BenchmarkFig12QuantLatencyBins(b *testing.B) {
	cv := benchCheckpoint(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12QuantLatencyBins(cv, []int{10, 25, 50})
		if err != nil {
			b.Fatal(err)
		}
		pts := r.Series[0].Points
		ratio = pts[len(pts)-1].Y / pts[0].Y
	}
	b.ReportMetric(ratio, "adaptive_vs_naive_x")
}

func BenchmarkFig13QuantLatencyRatio(b *testing.B) {
	cv := benchCheckpoint(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13QuantLatencyRatio(cv, []float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14AccuracyDegradation(b *testing.B) {
	cfg := experiments.DefaultFig14()
	cfg.TotalBatches = 60
	cfg.Trials = 2
	cfg.Restores = map[int][]int{2: {1, 3}}
	var final float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14AccuracyDegradation(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		s := r.Series[len(r.Series)-1]
		final = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(final*1e4, "2bit_3restores_penalty_1e-4")
}

func BenchmarkFig15IncrementalBandwidth(b *testing.B) {
	cfg := benchIncremental()
	var oneShotLast float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15IncrementalBandwidth(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := r.Series[0]
		oneShotLast = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(oneShotLast, "oneshot_final_%model")
}

func BenchmarkFig16StorageCapacity(b *testing.B) {
	cfg := benchIncremental()
	var consecLast float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16StorageCapacity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Series {
			if s.Name == "consecutive" {
				consecLast = s.Points[len(s.Points)-1].Y
			}
		}
	}
	b.ReportMetric(consecLast, "consecutive_final_%full")
}

func BenchmarkFig17OverallReduction(b *testing.B) {
	cfg := benchIncremental()
	var bwBest, bwWorst float64
	for i := 0; i < b.N; i++ {
		_, buckets, err := experiments.Fig17OverallReduction(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bwBest = buckets[0].BandwidthReduction
		bwWorst = buckets[len(buckets)-1].BandwidthReduction
	}
	b.ReportMetric(bwBest, "bandwidth_reduction_L<=1_x")
	b.ReportMetric(bwWorst, "bandwidth_reduction_L>=20_x")
}

func BenchmarkZstdBaseline(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ZstdBaselineResult(512, 3)
		if err != nil {
			b.Fatal(err)
		}
		_ = r
		reduction = 1
	}
	b.ReportMetric(reduction, "ran")
}

func BenchmarkSnapshotStall(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		r := experiments.SnapshotStallResult()
		for _, p := range r.Series[0].Points {
			if p.X == 30 {
				frac = p.Y
			}
		}
	}
	b.ReportMetric(frac, "stall_30min_%")
}

// BenchmarkContentionWriteLatency measures the fleet checkpoint-round
// latency experiment (§4.3 motivation): many jobs sharing one link.
func BenchmarkContentionWriteLatency(b *testing.B) {
	cfg := experiments.DefaultContention()
	cfg.Jobs = 3
	cfg.RowsPerTable = 512
	cfg.Dim = 16
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.WriteLatencyResult(cfg)
		if err != nil {
			b.Fatal(err)
		}
		base := r.Series[0].Points
		cnr := r.Series[1].Points
		speedup = base[len(base)-1].Y / cnr[len(cnr)-1].Y
	}
	b.ReportMetric(speedup, "steady_state_speedup_x")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationTrackingGranularity compares the incremental
// checkpoint size under row-granular tracking (the paper's bit-vector)
// vs coarser block tracking, which trades tracker memory for write
// amplification.
func BenchmarkAblationTrackingGranularity(b *testing.B) {
	const rows = 1 << 16
	spec := data.DefaultSpec()
	spec.TableRows = []int{rows}
	spec.ZipfS = 1.35
	spec.TailFraction = 0.25
	gen, err := data.NewGenerator(spec)
	if err != nil {
		b.Fatal(err)
	}
	// Mark an interval's worth of accesses.
	bm := bitvec.New(rows)
	for i := 0; i < 20_000; i++ {
		bm.Set(gen.Next().Sparse[0])
	}
	b.ResetTimer()
	var rowCount, block64Count int
	for i := 0; i < b.N; i++ {
		rowCount = bm.Count()
		// Block granularity 64: a block is stored if any row in it is set.
		block64Count = 0
		for start := 0; start < rows; start += 64 {
			any := false
			for r := start; r < start+64; r++ {
				if bm.Test(r) {
					any = true
					break
				}
			}
			if any {
				block64Count += 64
			}
		}
	}
	b.ReportMetric(float64(rowCount), "rows_stored_rowgranular")
	b.ReportMetric(float64(block64Count), "rows_stored_block64")
	b.ReportMetric(float64(block64Count)/float64(rowCount), "write_amplification_x")
}

// BenchmarkAblationPipelining measures checkpoint write wall time with 1
// vs 4 upload workers against a bandwidth-shaped store on the real clock.
// Note the finding: the engine's producer/consumer design pipelines
// quantization against upload even with a single worker, and a serialized
// link gains nothing from extra workers — extra uploaders only pay off
// when the store accepts parallel streams. The pipelining itself (vs a
// hypothetical quantize-everything-then-upload design) is what §6.1 calls
// "virtually zero" quantization latency.
func BenchmarkAblationPipelining(b *testing.B) {
	for _, uploaders := range []int{1, 4} {
		b.Run(fmt.Sprintf("uploaders=%d", uploaders), func(b *testing.B) {
			mcfg := model.DefaultConfig()
			mcfg.Tables = []embedding.TableSpec{{Rows: 4096, Dim: 16}}
			m, err := model.New(mcfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			spec := data.DefaultSpec()
			spec.TableRows = []int{4096}
			gen, err := data.NewGenerator(spec)
			if err != nil {
				b.Fatal(err)
			}
			m.TrainBatch(gen.NextBatch(64))
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// A real-clock throttle so upload time is non-trivial
				// (~40ms per checkpoint at 16 MB/s).
				store := objstore.NewMemStore(objstore.MemConfig{
					WriteBandwidth: 16 << 20,
					Clock:          simclock.Real{},
				})
				eng, err := ckpt.NewEngine(ckpt.Config{
					JobID: "abl", Store: store, Policy: ckpt.PolicyFull,
					Quant: quant.Params{Method: quant.MethodAdaptive, Bits: 4,
						NumBins: 25, Ratio: 1},
					ChunkRows: 256,
					Uploaders: uploaders,
				})
				if err != nil {
					b.Fatal(err)
				}
				snap, err := ckpt.TakeSnapshot(m, 1,
					data.ReaderState{NextSample: gen.Pos(), BatchSize: 64})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := eng.Write(ctx, snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPredictor compares the intermittent history predictor
// against fixed-period full baselines on total bytes written.
func BenchmarkAblationPredictor(b *testing.B) {
	cfg := benchIncremental()
	runBytes := func(policy ckpt.PolicyKind) float64 {
		r, err := experiments.Fig15IncrementalBandwidth(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, s := range r.Series {
			match := (policy == ckpt.PolicyIntermittent && s.Name == "intermittent") ||
				(policy == ckpt.PolicyOneShot && s.Name == "one-shot")
			if match {
				for _, p := range s.Points {
					total += p.Y
				}
			}
		}
		return total
	}
	var intermittent, oneShot float64
	for i := 0; i < b.N; i++ {
		intermittent = runBytes(ckpt.PolicyIntermittent)
		oneShot = runBytes(ckpt.PolicyOneShot)
	}
	b.ReportMetric(intermittent, "intermittent_total_%model")
	b.ReportMetric(oneShot, "oneshot_total_%model")
}

// BenchmarkEndToEndInterval measures one full controller interval (train,
// snapshot, quantize, upload, commit) through the public API.
func BenchmarkEndToEndInterval(b *testing.B) {
	sys, err := Open(Config{
		JobID:              "bench-e2e",
		ExpectedRestores:   3,
		BatchSize:          32,
		BatchesPerInterval: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunInterval(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery measures restore latency (fetch + CRC + de-quantize +
// apply) for a 2-bit checkpoint.
func BenchmarkRecovery(b *testing.B) {
	sys, err := Open(Config{
		JobID:              "bench-rec",
		ExpectedRestores:   1,
		BatchSize:          32,
		BatchesPerInterval: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	if err := sys.Run(ctx, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Recover(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
