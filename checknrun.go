// Package checknrun is a Go reproduction of Check-N-Run (Eisenman et al.,
// NSDI 2022): a checkpointing system for training deep learning
// recommendation models that combines incremental checkpointing of
// modified embedding rows with checkpoint-time quantization to cut write
// bandwidth by 6-17x and storage capacity by 2.5-8x without degrading
// training accuracy.
//
// The package wires together a complete substrate built from scratch: a
// trainable DLRM (internal/model, internal/embedding), a synthetic
// click-through dataset and distributed reader tier (internal/data), a
// synchronous multi-node trainer simulation (internal/trainer), a remote
// object store reachable in-memory or over TCP (internal/objstore), and
// the checkpoint engine and controller themselves (internal/ckpt,
// internal/core).
//
// Quickstart:
//
//	sys, err := checknrun.Open(checknrun.Config{JobID: "demo"})
//	...
//	man, err := sys.RunInterval(ctx)   // train one interval + checkpoint
//	...
//	res, err := sys.Recover(ctx)       // restore after a failure
package checknrun

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/trainer"
	"repro/internal/wire"
)

// Policy selects the incremental checkpointing policy (§5.1 of the paper).
type Policy = ckpt.PolicyKind

// Incremental checkpointing policies.
const (
	// PolicyFull writes a full checkpoint every interval (the baseline).
	PolicyFull = ckpt.PolicyFull
	// PolicyOneShot writes one baseline, then increments since it.
	PolicyOneShot = ckpt.PolicyOneShot
	// PolicyConsecutive writes increments covering only the last interval.
	PolicyConsecutive = ckpt.PolicyConsecutive
	// PolicyIntermittent is one-shot plus the history-based predictor
	// that takes fresh baselines — the production default.
	PolicyIntermittent = ckpt.PolicyIntermittent
)

// Predictor selects the intermittent policy's full-baseline predictor.
type Predictor = ckpt.PredictorKind

// Intermittent-policy predictors.
const (
	// PredictorHistory is the paper's §5.1 rule (default).
	PredictorHistory = ckpt.PredictorHistory
	// PredictorRegression fits the incremental growth curve (the
	// paper's future-work improvement).
	PredictorRegression = ckpt.PredictorRegression
)

// Manifest describes a committed checkpoint.
type Manifest = wire.Manifest

// RestoreResult reports what a recovery applied.
type RestoreResult = ckpt.RestoreResult

// Config configures a Check-N-Run system. The zero value of most fields
// selects production-like defaults scaled to run locally.
type Config struct {
	// JobID names the training job; checkpoint objects are stored under
	// this prefix. Required.
	JobID string

	// StoreAddr, if non-empty, connects to a remote TCP object store
	// (cmd/objstored) — a single address, or a comma-separated fleet of
	// objstored processes routed by consistent hashing (a single address
	// expands through the fleet's membership record when published; see
	// objstore.Connect). Empty uses an in-process store.
	StoreAddr string
	// Replication is the simulated storage replication factor for the
	// in-process store (default 1).
	Replication int

	// Policy is the incremental checkpointing policy
	// (default PolicyIntermittent).
	Policy Policy

	// ExpectedRestores drives dynamic quantization bit-width selection
	// (§6.2.1): <=1 -> 2-bit, <=3 -> 3-bit, <20 -> 4-bit, else 8-bit.
	// Negative disables quantization (fp32 checkpoints).
	ExpectedRestores float64

	// Nodes is the simulated trainer node count (default 2).
	Nodes int
	// BatchSize is the synchronous iteration size (default 64).
	BatchSize int
	// BatchesPerInterval is the checkpoint interval in batches
	// (default 8; production uses the 30-minute wall-clock interval).
	BatchesPerInterval int
	// Interval optionally derives BatchesPerInterval from a wall-clock
	// duration using the paper's throughput model (500K QPS).
	Interval time.Duration
	// KeepLast bounds retained checkpoints (default 2; 0 keeps all...
	// use -1 to keep all explicitly).
	KeepLast int

	// CompactMetadata enables the optimized CKP2 chunk layout (the
	// paper's future-work metadata optimization); cuts checkpoint size
	// a further ~25% at small embedding dims.
	CompactMetadata bool
	// Encoders is the checkpoint engine's quantize+encode worker count
	// (the data-plane hot path). Zero means one per core; 1 is the
	// serial baseline.
	Encoders int
	// Predictor selects the intermittent policy's full-baseline
	// predictor: PredictorHistory (the paper's rule, default) or
	// PredictorRegression (fits the observed growth curve).
	Predictor Predictor

	// Model optionally overrides the DLRM architecture; zero value uses
	// a small default matched to the synthetic dataset.
	Model model.Config
	// Data optionally overrides the synthetic dataset spec.
	Data data.Spec
}

// System is a running Check-N-Run training job: model, reader tier,
// trainer cluster, checkpoint engine and controller.
type System struct {
	cfg       Config
	ctrl      *core.Controller
	reader    *data.Cluster
	clus      *trainer.Cluster
	store     objstore.Store
	ownsStore bool
}

// Open validates cfg, builds the substrate and returns a ready System.
func Open(cfg Config) (*System, error) {
	if cfg.JobID == "" {
		return nil, fmt.Errorf("checknrun: Config.JobID is required")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.BatchesPerInterval <= 0 && cfg.Interval <= 0 {
		cfg.BatchesPerInterval = 8
	}
	switch {
	case cfg.KeepLast == 0:
		cfg.KeepLast = 2
	case cfg.KeepLast < 0:
		cfg.KeepLast = 0 // keep all
	}

	mcfg := cfg.Model
	if len(mcfg.Tables) == 0 {
		mcfg = model.DefaultConfig()
		mcfg.Tables = []embedding.TableSpec{
			{Rows: 2048, Dim: 16}, {Rows: 2048, Dim: 16},
			{Rows: 4096, Dim: 16}, {Rows: 4096, Dim: 16},
		}
	}
	dspec := cfg.Data
	if len(dspec.TableRows) == 0 {
		dspec = data.DefaultSpec()
		dspec.TableRows = make([]int, len(mcfg.Tables))
		for i, t := range mcfg.Tables {
			dspec.TableRows[i] = t.Rows
		}
	}
	if len(dspec.TableRows) != len(mcfg.Tables) {
		return nil, fmt.Errorf("checknrun: dataset has %d tables, model has %d",
			len(dspec.TableRows), len(mcfg.Tables))
	}

	m, err := model.New(mcfg, cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("checknrun: model: %w", err)
	}
	gen, err := data.NewGenerator(dspec)
	if err != nil {
		return nil, fmt.Errorf("checknrun: dataset: %w", err)
	}
	reader, err := data.NewCluster(gen, data.ClusterConfig{BatchSize: cfg.BatchSize, Workers: 2})
	if err != nil {
		return nil, fmt.Errorf("checknrun: reader: %w", err)
	}
	clus, err := trainer.New(m, trainer.Config{Nodes: cfg.Nodes})
	if err != nil {
		reader.Close()
		return nil, fmt.Errorf("checknrun: trainer: %w", err)
	}

	var store objstore.Store
	ownsStore := true
	if cfg.StoreAddr != "" {
		store, err = objstore.Connect(cfg.StoreAddr, objstore.ClientConfig{})
		if err != nil {
			reader.Close()
			return nil, fmt.Errorf("checknrun: store: %w", err)
		}
	} else {
		store = objstore.NewMemStore(objstore.MemConfig{Replication: cfg.Replication})
	}

	ctrl, err := core.New(clus, reader, core.Config{
		JobID:              cfg.JobID,
		Store:              store,
		Policy:             cfg.Policy,
		Interval:           cfg.Interval,
		BatchesPerInterval: cfg.BatchesPerInterval,
		BatchSize:          cfg.BatchSize,
		ExpectedRestores:   cfg.ExpectedRestores,
		KeepLast:           cfg.KeepLast,
		Predictor:          cfg.Predictor,
		CompactMetadata:    cfg.CompactMetadata,
		Encoders:           cfg.Encoders,
	})
	if err != nil {
		reader.Close()
		store.Close()
		return nil, fmt.Errorf("checknrun: controller: %w", err)
	}
	return &System{cfg: cfg, ctrl: ctrl, reader: reader, clus: clus, store: store, ownsStore: ownsStore}, nil
}

// RunInterval trains one checkpoint interval and commits a checkpoint,
// returning its manifest.
func (s *System) RunInterval(ctx context.Context) (*Manifest, error) {
	return s.ctrl.RunInterval(ctx)
}

// Run trains n checkpoint intervals.
func (s *System) Run(ctx context.Context, n int) error {
	return s.ctrl.Run(ctx, n)
}

// Recover restores the latest valid checkpoint into the model and reader,
// de-quantizing as needed.
func (s *System) Recover(ctx context.Context) (*RestoreResult, error) {
	return s.ctrl.Recover(ctx)
}

// Manifests returns the manifests committed by this System, in order.
func (s *System) Manifests() []*Manifest { return s.ctrl.Manifests() }

// Checkpoints lists all valid checkpoints in the store for this job,
// including ones written by previous runs.
func (s *System) Checkpoints(ctx context.Context) ([]*Manifest, error) {
	return s.ctrl.Restorer().ListManifests(ctx)
}

// Model returns the DLRM being trained.
func (s *System) Model() *model.DLRM { return s.ctrl.Model() }

// TrainerStats returns the cluster's accumulated statistics.
func (s *System) TrainerStats() trainer.Stats { return s.clus.Stats() }

// StallFraction returns the fraction of virtual training time lost to
// snapshot stalls (paper: < 0.4% at 30-minute intervals).
func (s *System) StallFraction() float64 { return s.clus.StallFraction() }

// StoreUsage returns the store's accounting counters when the backend
// supports them (the in-process store does; a TCP client does not — query
// the server side instead).
func (s *System) StoreUsage() (objstore.Usage, bool) {
	if a, ok := s.store.(objstore.Accountant); ok {
		return a.Usage(), true
	}
	return objstore.Usage{}, false
}

// QuantBits returns the quantization bit-width currently in effect
// (32 means fp32 / no quantization).
func (s *System) QuantBits() int {
	q := s.ctrl.Quant()
	if q.Method == quant.MethodNone {
		return 32
	}
	return q.Bits
}

// Restores returns how many times this System resumed from a checkpoint.
func (s *System) Restores() int { return s.ctrl.Restores() }

// VerifyResult reports a checkpoint integrity scrub.
type VerifyResult = ckpt.VerifyResult

// Verify scrubs one checkpoint: CRC-validates every chunk, checks row
// bounds and the restore chain. It never modifies anything.
func (s *System) Verify(ctx context.Context, id int) (*VerifyResult, error) {
	return s.ctrl.Restorer().Verify(ctx, id)
}

// VerifyAll scrubs every retained checkpoint, newest first.
func (s *System) VerifyAll(ctx context.Context) ([]*VerifyResult, error) {
	return s.ctrl.Restorer().VerifyAll(ctx)
}

// Close shuts down the reader tier and the store connection.
func (s *System) Close() error {
	s.reader.Close()
	if s.ownsStore {
		return s.store.Close()
	}
	return nil
}
