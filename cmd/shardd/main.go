// Command shardd runs one shard of a Check-N-Run checkpoint fleet as a
// standalone daemon: it hosts a deterministic trainer replica, uploads
// its shard's checkpoint payload straight to the shared object store
// (the data plane), and serves the Prepare/Publish/Finalize/Abort
// control protocol a controller drives the composite commit with.
//
// Usage:
//
//	shardd -store 127.0.0.1:7070 -job demo -shard 0 -shards 4
//
// The bound control-plane address is printed on stdout, machine-readable
// like objstored's.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl/shardhost"
	"repro/internal/objstore"
	"repro/internal/quant"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "control-plane listen address")
	storeAddr := flag.String("store", "127.0.0.1:7070", "TCP object store address")
	stores := flag.String("stores", "", "comma-separated object store fleet (consistent-hash routed; overrides -store)")
	job := flag.String("job", "demo", "job ID")
	shard := flag.Int("shard", 0, "this daemon's shard index")
	shards := flag.Int("shards", 1, "total shard count of the job")
	seed := flag.Int64("seed", 1, "fleet-wide model/data seed (must match across shards)")
	batch := flag.Int("batch", 64, "replica training batch size")
	policy := flag.String("policy", "oneshot", "checkpoint policy: full|oneshot|consecutive|intermittent")
	quantBits := flag.Int("quant-bits", 0, "asymmetric quantization bits (0 = fp32)")
	keep := flag.Int("keep", 0, "shard-level KeepLast retention (0 keeps everything)")
	recoverFlag := flag.Bool("recover", true, "rebuild engine state from the store's manifests on startup (fleet rejoin)")
	opTimeout := flag.Duration("op-timeout", 2*time.Minute, "per-operation deadline, store I/O included (0 = none)")
	connectWait := flag.Duration("connect-wait", 30*time.Second, "retry window for the initial store connect, jittered backoff (0 = single attempt)")
	flag.Parse()

	logger := log.New(os.Stderr, fmt.Sprintf("shardd[%d]: ", *shard), log.LstdFlags)

	pol, err := parsePolicy(*policy)
	if err != nil {
		logger.Fatal(err)
	}
	storeSpec := *storeAddr
	if *stores != "" {
		storeSpec = *stores
	}
	ecfg := ckpt.Config{Policy: pol, KeepLast: *keep}
	if *quantBits > 0 {
		ecfg.Quant = quant.Params{Method: quant.MethodAsymmetric, Bits: *quantBits}
	}
	host, err := shardhost.Start(shardhost.Config{
		JobID:       *job,
		Shard:       *shard,
		Shards:      *shards,
		StoreAddr:   storeSpec,
		ListenAddr:  *addr,
		Seed:        *seed,
		BatchSize:   *batch,
		Engine:      ecfg,
		Recover:     *recoverFlag,
		OpTimeout:   *opTimeout,
		ConnectWait: *connectWait,
		Logf:        objstore.Logger(logger),
	})
	if err != nil {
		logger.Fatalf("start: %v", err)
	}
	logger.Printf("serving shard %d/%d of job %s on %s (store %s)",
		*shard, *shards, *job, host.Addr(), storeSpec)
	fmt.Println(host.Addr()) // machine-readable bound address on stdout

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Printf("shutting down")
	host.Close()
}

func parsePolicy(s string) (ckpt.PolicyKind, error) {
	switch strings.ToLower(s) {
	case "full":
		return ckpt.PolicyFull, nil
	case "oneshot", "one-shot":
		return ckpt.PolicyOneShot, nil
	case "consecutive":
		return ckpt.PolicyConsecutive, nil
	case "intermittent":
		return ckpt.PolicyIntermittent, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}
