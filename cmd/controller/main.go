// Command controller owns the composite commit point of a distributed
// checkpoint fleet: it discovers shardd agents, tells them when to cut
// ("advance to step N, prepare checkpoint K"), drives the two-phase
// commit over the control plane, and alone writes the composite
// manifest that makes a sharded checkpoint valid.
//
// Epochs come from the job's store-backed lease register: the controller
// acquires the commit lease on startup (durably incrementing the epoch),
// renews it around every commit, and releases it on exit. A standby
// controller started with -standby blocks watching the register and
// promotes itself when the leader's lease expires — no manual -epoch
// bookkeeping across failovers.
//
// Usage:
//
//	controller -store 127.0.0.1:7070 -job demo \
//	    -agents 127.0.0.1:9001,127.0.0.1:9002 -checkpoints 3 -stride 8
//
//	controller -standby ...   # waits for the leader's lease to lapse
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/ctrl"
	"repro/internal/objstore"
)

func main() {
	storeAddr := flag.String("store", "127.0.0.1:7070", "TCP object store address")
	stores := flag.String("stores", "", "comma-separated object store fleet (consistent-hash routed; overrides -store)")
	job := flag.String("job", "demo", "job ID")
	agents := flag.String("agents", "", "comma-separated shard-agent control addresses")
	epoch := flag.Uint64("epoch", 0, "explicit epoch to demand from the register (0 = next)")
	checkpoints := flag.Int("checkpoints", 3, "number of checkpoint rounds to drive")
	stride := flag.Uint64("stride", 8, "training steps between checkpoint cuts")
	keep := flag.Int("keep", 0, "composite-level KeepLast retention (0 keeps everything)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-checkpoint deadline")
	opTimeout := flag.Duration("op-timeout", 30*time.Second, "budget for the controller's own store/discovery operations")
	announce := flag.String("announce", "", "announce endpoint to listen on for serving-replica subscriptions (empty = off)")
	standby := flag.Bool("standby", false, "wait for the current leader's lease to lapse, then take over")
	noLease := flag.Bool("no-lease", false, "skip the lease register; legacy flag-or-max+1 epoch mode")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "lease duration between renewals")
	holder := flag.String("holder", "", "holder identity in the lease register (default host:pid)")
	statusEvery := flag.Duration("status-every", 0, "fleet health polling period (0 = off)")
	flag.Parse()

	logger := log.New(os.Stderr, "controller: ", log.LstdFlags)
	if *agents == "" {
		logger.Fatal("no -agents given")
	}
	if *standby && *noLease {
		logger.Fatal("-standby requires the lease register (-no-lease given)")
	}

	storeSpec := *storeAddr
	if *stores != "" {
		storeSpec = *stores
	}
	store, err := objstore.Connect(storeSpec, objstore.ClientConfig{})
	if err != nil {
		logger.Fatalf("dial store: %v", err)
	}
	defer store.Close()

	ctx := context.Background()
	var lease *ctrl.Lease
	if !*noLease {
		who := *holder
		if who == "" {
			host, _ := os.Hostname()
			who = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		reg, err := ctrl.NewRegister(ctrl.RegisterConfig{
			JobID: *job, Store: store, Holder: who, TTL: *leaseTTL,
		})
		if err != nil {
			logger.Fatalf("lease register: %v", err)
		}
		if *standby {
			logger.Printf("standby: watching lease of job %s as %q", *job, who)
			lease, err = reg.WaitAcquire(ctx)
		} else {
			lease, err = reg.Acquire(ctx, *epoch)
		}
		if err != nil {
			logger.Fatalf("acquire lease: %v", err)
		}
		logger.Printf("holding lease for job %s at epoch %d", *job, lease.Epoch())
		defer func() {
			rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := lease.Release(rctx); err != nil {
				logger.Printf("release lease: %v", err)
			}
		}()
		// Renew in the background so the lease survives long training
		// stretches between commits. Checkpoint re-verifies it inline at
		// the commit point, so a lost lease still fences correctly.
		renewCtx, stopRenew := context.WithCancel(ctx)
		defer stopRenew()
		go func() {
			tick := time.NewTicker(*leaseTTL / 3)
			defer tick.Stop()
			for {
				select {
				case <-renewCtx.Done():
					return
				case <-tick.C:
					if err := lease.Renew(renewCtx); err != nil && renewCtx.Err() == nil {
						logger.Printf("lease renew: %v", err)
					}
				}
			}
		}()
	}

	var announcer *ctrl.Announcer
	if *announce != "" {
		announcer, err = ctrl.NewAnnouncer(*announce, *job, objstore.Logger(logger))
		if err != nil {
			logger.Fatalf("announce endpoint: %v", err)
		}
		defer announcer.Close()
		logger.Printf("announcing commits on %s", announcer.Addr())
	}

	cfg := ctrl.ControllerConfig{
		JobID:     *job,
		Store:     store,
		Agents:    strings.Split(*agents, ","),
		KeepLast:  *keep,
		Lease:     lease,
		OpTimeout: *opTimeout,
		Announcer: announcer,
		Logf:      objstore.Logger(logger),
	}
	if lease == nil {
		cfg.Epoch = *epoch
	}
	c, err := ctrl.NewController(cfg)
	if err != nil {
		logger.Fatalf("discover fleet: %v", err)
	}
	defer c.Close()
	logger.Printf("fleet of %d shards at epoch %d, next checkpoint %d",
		c.Shards(), c.Epoch(), c.NextID())

	if *statusEvery > 0 {
		go func() {
			tick := time.NewTicker(*statusEvery)
			defer tick.Stop()
			for range tick.C {
				hctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				sts, err := c.Health(hctx)
				cancel()
				if err != nil {
					logger.Printf("health: %v", err)
					continue
				}
				for _, st := range sts {
					logger.Printf("health: shard %d/%d epoch %d next %d prepared %d",
						st.Shard, st.Shards, st.Epoch, st.NextID, st.PreparedID)
				}
			}
		}()
	}

	// Each round cuts one stride further into the sample stream; the
	// agents' replicas train forward to the cut inside prepare.
	base := uint64(c.NextID())
	for round := 0; round < *checkpoints; round++ {
		step := (base + uint64(round) + 1) * *stride
		cctx, cancel := context.WithTimeout(ctx, *timeout)
		man, err := c.Checkpoint(cctx, step)
		cancel()
		if err != nil {
			logger.Fatalf("checkpoint at step %d: %v", step, err)
		}
		fmt.Printf("ckpt %d: %-11s %d shards, %8d bytes payload, step %d\n",
			man.ID, man.Kind, man.ShardCount, man.PayloadBytes, man.Step)
	}
}
