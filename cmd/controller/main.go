// Command controller owns the composite commit point of a distributed
// checkpoint fleet: it discovers shardd agents, tells them when to cut
// ("advance to step N, prepare checkpoint K"), drives the two-phase
// commit over the control plane, and alone writes the composite
// manifest that makes a sharded checkpoint valid.
//
// Usage:
//
//	controller -store 127.0.0.1:7070 -job demo \
//	    -agents 127.0.0.1:9001,127.0.0.1:9002 -checkpoints 3 -stride 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/ctrl"
	"repro/internal/objstore"
)

func main() {
	storeAddr := flag.String("store", "127.0.0.1:7070", "TCP object store address")
	job := flag.String("job", "demo", "job ID")
	agents := flag.String("agents", "", "comma-separated shard-agent control addresses")
	epoch := flag.Uint64("epoch", 0, "job epoch (0 = adopt fleet max + 1)")
	checkpoints := flag.Int("checkpoints", 3, "number of checkpoint rounds to drive")
	stride := flag.Uint64("stride", 8, "training steps between checkpoint cuts")
	keep := flag.Int("keep", 0, "composite-level KeepLast retention (0 keeps everything)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-checkpoint deadline")
	flag.Parse()

	logger := log.New(os.Stderr, "controller: ", log.LstdFlags)
	if *agents == "" {
		logger.Fatal("no -agents given")
	}

	store, err := objstore.Dial(*storeAddr, objstore.ClientConfig{})
	if err != nil {
		logger.Fatalf("dial store: %v", err)
	}
	defer store.Close()

	c, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID:    *job,
		Store:    store,
		Agents:   strings.Split(*agents, ","),
		Epoch:    *epoch,
		KeepLast: *keep,
		Logf:     objstore.Logger(logger),
	})
	if err != nil {
		logger.Fatalf("discover fleet: %v", err)
	}
	defer c.Close()
	logger.Printf("fleet of %d shards at epoch %d, next checkpoint %d",
		c.Shards(), c.Epoch(), c.NextID())

	// Each round cuts one stride further into the sample stream; the
	// agents' replicas train forward to the cut inside prepare.
	base := uint64(c.NextID())
	for round := 0; round < *checkpoints; round++ {
		step := (base + uint64(round) + 1) * *stride
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		man, err := c.Checkpoint(ctx, step)
		cancel()
		if err != nil {
			logger.Fatalf("checkpoint at step %d: %v", step, err)
		}
		fmt.Printf("ckpt %d: %-11s %d shards, %8d bytes payload, step %d\n",
			man.ID, man.Kind, man.ShardCount, man.PayloadBytes, man.Step)
	}
}
