// Command benchgen regenerates every figure from the Check-N-Run paper's
// motivation and evaluation sections and prints them as text tables.
//
// Usage:
//
//	benchgen                # all figures
//	benchgen -fig 9         # one figure
//	benchgen -quick         # reduced sizes for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,6,9,10,11,12,13,14,15,16,17,zstd,stall or all")
	quick := flag.Bool("quick", false, "reduced workload sizes")
	flag.Parse()

	logger := log.New(os.Stderr, "benchgen: ", 0)

	type gen struct {
		id  string
		run func() ([]*experiments.Result, error)
	}
	var cv *experiments.CheckpointVectors
	checkpoint := func() (*experiments.CheckpointVectors, error) {
		if cv != nil {
			return cv, nil
		}
		var err error
		if *quick {
			cv, err = experiments.TrainedCheckpoint(512, 16, 15, 64, 7)
		} else {
			cv, err = experiments.DefaultCheckpoint()
		}
		return cv, err
	}
	fig5cfg := experiments.DefaultFig5()
	fig6cfg := experiments.DefaultFig6()
	incCfg := experiments.DefaultIncremental()
	fig14cfg := experiments.DefaultFig14()
	if *quick {
		fig5cfg.Samples = 20000
		fig6cfg.SamplesPerMinute = 50
		incCfg.Intervals = 8
		incCfg.RowsPerTable = 1024
		fig14cfg.TotalBatches = 60
		fig14cfg.Trials = 2
		fig14cfg.Restores = map[int][]int{2: {1, 2}, 3: {2, 3}, 4: {10, 20}}
	}

	one := func(r *experiments.Result, err error) ([]*experiments.Result, error) {
		if err != nil {
			return nil, err
		}
		return []*experiments.Result{r}, nil
	}

	gens := []gen{
		{"3", func() ([]*experiments.Result, error) {
			return one(experiments.Fig3FailureCDF(experiments.DefaultFig3()), nil)
		}},
		{"4", func() ([]*experiments.Result, error) {
			return one(experiments.Fig4ModelGrowth(), nil)
		}},
		{"5", func() ([]*experiments.Result, error) {
			return one(experiments.Fig5ModifiedFraction(fig5cfg))
		}},
		{"6", func() ([]*experiments.Result, error) {
			return one(experiments.Fig6IntervalModified(fig6cfg))
		}},
		{"9", func() ([]*experiments.Result, error) {
			c, err := checkpoint()
			if err != nil {
				return nil, err
			}
			return one(experiments.Fig9QuantError(c))
		}},
		{"10", func() ([]*experiments.Result, error) {
			c, err := checkpoint()
			if err != nil {
				return nil, err
			}
			return one(experiments.Fig10AdaptiveBins(c, nil))
		}},
		{"11", func() ([]*experiments.Result, error) {
			c, err := checkpoint()
			if err != nil {
				return nil, err
			}
			return one(experiments.Fig11AdaptiveRatio(c, nil))
		}},
		{"12", func() ([]*experiments.Result, error) {
			c, err := checkpoint()
			if err != nil {
				return nil, err
			}
			return one(experiments.Fig12QuantLatencyBins(c, nil))
		}},
		{"13", func() ([]*experiments.Result, error) {
			c, err := checkpoint()
			if err != nil {
				return nil, err
			}
			return one(experiments.Fig13QuantLatencyRatio(c, nil))
		}},
		{"14", func() ([]*experiments.Result, error) {
			var out []*experiments.Result
			for _, bits := range []int{2, 3, 4} {
				r, err := experiments.Fig14AccuracyDegradation(fig14cfg, bits)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			sum, err := experiments.Fig14Summary(fig14cfg)
			if err != nil {
				return nil, err
			}
			return append(out, sum), nil
		}},
		{"15", func() ([]*experiments.Result, error) {
			return one(experiments.Fig15IncrementalBandwidth(incCfg))
		}},
		{"16", func() ([]*experiments.Result, error) {
			return one(experiments.Fig16StorageCapacity(incCfg))
		}},
		{"17", func() ([]*experiments.Result, error) {
			r, _, err := experiments.Fig17OverallReduction(incCfg)
			return one(r, err)
		}},
		{"contention", func() ([]*experiments.Result, error) {
			ccfg := experiments.DefaultContention()
			if *quick {
				ccfg.Jobs = 3
				ccfg.RowsPerTable = 512
				ccfg.Dim = 16
			}
			return one(experiments.WriteLatencyResult(ccfg))
		}},
		{"zstd", func() ([]*experiments.Result, error) {
			return one(experiments.ZstdBaselineResult(1024, 3))
		}},
		{"stall", func() ([]*experiments.Result, error) {
			return one(experiments.SnapshotStallResult(), nil)
		}},
	}

	ran := 0
	for _, g := range gens {
		if *fig != "all" && *fig != g.id {
			continue
		}
		results, err := g.run()
		if err != nil {
			logger.Fatalf("fig %s: %v", g.id, err)
		}
		for _, r := range results {
			fmt.Println(r.Render())
		}
		ran++
	}
	if ran == 0 {
		logger.Fatalf("unknown figure %q", *fig)
	}
}
