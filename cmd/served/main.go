// Command served runs a checkpoint-fed embedding serving replica: it
// pulls the newest complete composite checkpoint of a job from the
// object store as its baseline, applies each incremental delta as it
// commits, and answers embedding lookups over framed TCP.
//
// Commit discovery is push-first, poll-always: with -controller set the
// replica subscribes to the controller's announce endpoint
// (controller -announce) and learns of each commit immediately; with or
// without it, a periodic store re-sync (-resync) converges the replica
// after partitions, announce-stream loss, or controller failover.
//
// The first line on stdout is the bound lookup address.
//
// Usage:
//
//	served -stores 127.0.0.1:7070,127.0.0.1:7071 -job demo \
//	    -controller 127.0.0.1:9900 -addr 127.0.0.1:9800
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/objstore"
	"repro/internal/serve"
)

func main() {
	storeAddr := flag.String("store", "127.0.0.1:7070", "TCP object store address")
	stores := flag.String("stores", "", "comma-separated object store fleet (consistent-hash routed; overrides -store)")
	job := flag.String("job", "demo", "job ID to serve")
	controller := flag.String("controller", "", "controller announce endpoint to subscribe to (empty = poll-only)")
	addr := flag.String("addr", "127.0.0.1:0", "lookup listen address")
	resync := flag.Duration("resync", 2*time.Second, "store re-sync polling period")
	decoders := flag.Int("decoders", 0, "chunk decode parallelism (0 = one per core)")
	flag.Parse()

	logger := log.New(os.Stderr, "served: ", log.LstdFlags)

	storeSpec := *storeAddr
	if *stores != "" {
		storeSpec = *stores
	}
	store, err := objstore.Connect(storeSpec, objstore.ClientConfig{})
	if err != nil {
		logger.Fatalf("dial store: %v", err)
	}
	defer store.Close()

	rep, err := serve.Start(serve.Config{
		JobID:        *job,
		Store:        store,
		AnnounceAddr: *controller,
		ListenAddr:   *addr,
		Decoders:     *decoders,
		ResyncEvery:  *resync,
		Logf:         objstore.Logger(logger),
	})
	if err != nil {
		logger.Fatalf("start replica: %v", err)
	}
	defer rep.Close()
	fmt.Println(rep.Addr())
	logger.Printf("serving job %s on %s", *job, rep.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("shutting down")
}
