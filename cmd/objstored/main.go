// Command objstored runs a standalone checkpoint object-store server
// speaking the Check-N-Run TCP protocol, backed by an in-memory store
// with optional bandwidth shaping and replication accounting.
//
// Usage:
//
//	objstored -addr 127.0.0.1:7070 -replication 3 -write-bw 1073741824 -read-bw 1073741824
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/objstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	replication := flag.Int("replication", 1, "simulated storage replication factor")
	writeBW := flag.Float64("write-bw", 0, "write bandwidth cap in bytes/sec (0 = unlimited)")
	readBW := flag.Float64("read-bw", 0, "read bandwidth cap in bytes/sec (0 = unlimited)")
	statsEvery := flag.Duration("stats", 10*time.Second, "usage report interval (0 disables)")
	flag.Parse()

	logger := log.New(os.Stderr, "objstored: ", log.LstdFlags)
	backend := objstore.NewMemStore(objstore.MemConfig{
		Replication:    *replication,
		WriteBandwidth: *writeBW,
		ReadBandwidth:  *readBW,
	})
	srv, err := objstore.NewServer(*addr, backend, objstore.ServerConfig{
		Logf: objstore.Logger(logger),
	})
	if err != nil {
		logger.Fatalf("start: %v", err)
	}
	logger.Printf("serving on %s (replication=%d)", srv.Addr(), *replication)
	fmt.Println(srv.Addr()) // machine-readable bound address on stdout

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for range t.C {
				u := backend.Usage()
				logger.Printf("objects=%d capacity=%dB written=%dB read=%dB puts=%d gets=%d",
					u.Objects, u.CapacityBytes, u.BytesWritten, u.BytesRead, u.Puts, u.Gets)
			}
		}()
	}

	<-stop
	logger.Printf("shutting down")
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
}
