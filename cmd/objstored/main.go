// Command objstored runs a standalone checkpoint object-store server
// speaking the Check-N-Run TCP protocol. The backend is an in-memory
// store by default, or — with -data-dir — the crash-consistent on-disk
// segment log, whose fsync policy and compaction trigger are
// flag-selectable. -put-delay/-sync-delay inject device latency for
// chaos campaigns.
//
// Usage:
//
//	objstored -addr 127.0.0.1:7070 -replication 3 -write-bw 1073741824 -read-bw 1073741824
//	objstored -addr 127.0.0.1:7070 -data-dir /var/lib/cnr -fsync interval:100ms -compact-ratio 0.55
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/objstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	replication := flag.Int("replication", 1, "simulated storage replication factor")
	writeBW := flag.Float64("write-bw", 0, "write bandwidth cap in bytes/sec (0 = unlimited; memory backend only)")
	readBW := flag.Float64("read-bw", 0, "read bandwidth cap in bytes/sec (0 = unlimited; memory backend only)")
	statsEvery := flag.Duration("stats", 10*time.Second, "usage report interval (0 disables)")
	dataDir := flag.String("data-dir", "", "durable data directory; empty selects the in-memory backend")
	fsync := flag.String("fsync", "always", `disk fsync policy: "always", "interval[:dur]", "never"`)
	compactRatio := flag.Float64("compact-ratio", 0, "dead-byte ratio triggering disk compaction (0 = default 0.55, negative disables)")
	putDelay := flag.Duration("put-delay", 0, "injected latency per mutation (chaos slow-disk shim)")
	syncDelay := flag.Duration("sync-delay", 0, "injected latency per disk fsync (chaos slow-disk shim)")
	flag.Parse()

	logger := log.New(os.Stderr, "objstored: ", log.LstdFlags)

	var backend objstore.Store
	var acct objstore.Accountant
	if *dataDir != "" {
		policy, interval, err := objstore.ParseFsync(*fsync)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		if *writeBW > 0 || *readBW > 0 {
			logger.Printf("warning: -write-bw/-read-bw shape the memory backend only; the disk backend's bandwidth is the device's")
		}
		ds, err := objstore.NewDiskStore(objstore.DiskConfig{
			Dir:          *dataDir,
			Fsync:        policy,
			SyncInterval: interval,
			CompactRatio: *compactRatio,
			Replication:  *replication,
			SyncDelay:    *syncDelay,
			Logf:         logger.Printf,
		})
		if err != nil {
			logger.Fatalf("open disk store: %v", err)
		}
		backend, acct = ds, ds
		logger.Printf("disk backend at %s (fsync=%s)", *dataDir, policy)
	} else {
		ms := objstore.NewMemStore(objstore.MemConfig{
			Replication:    *replication,
			WriteBandwidth: *writeBW,
			ReadBandwidth:  *readBW,
		})
		backend, acct = ms, ms
	}
	if *putDelay > 0 {
		slow := objstore.NewSlowStore(backend)
		slow.SetPutDelay(*putDelay)
		backend = slow
	}

	srv, err := objstore.NewServer(*addr, backend, objstore.ServerConfig{
		Logf: objstore.Logger(logger),
	})
	if err != nil {
		logger.Fatalf("start: %v", err)
	}
	logger.Printf("serving on %s (replication=%d)", srv.Addr(), *replication)
	fmt.Println(srv.Addr()) // machine-readable bound address on stdout

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for range t.C {
				u := acct.Usage()
				logger.Printf("objects=%d capacity=%dB written=%dB read=%dB puts=%d gets=%d",
					u.Objects, u.CapacityBytes, u.BytesWritten, u.BytesRead, u.Puts, u.Gets)
			}
		}()
	}

	<-stop
	logger.Printf("shutting down")
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	// A clean shutdown syncs and releases the disk backend (kill -9 is
	// the path that exercises recovery).
	if err := backend.Close(); err != nil {
		logger.Printf("close backend: %v", err)
	}
}
