// Command ckptctl inspects and maintains Check-N-Run checkpoints in a
// remote object store: list manifests, scrub integrity (CRC every chunk,
// walk restore chains), and delete checkpoints.
//
// Usage:
//
//	ckptctl -store 127.0.0.1:7070 -job demo list
//	ckptctl -store 127.0.0.1:7070 -job demo verify        # scrub all
//	ckptctl -store 127.0.0.1:7070 -job demo verify -id 3
//	ckptctl -store 127.0.0.1:7070 -job demo delete -id 0
//	ckptctl -store 127.0.0.1:7070 -job demo gc --dry-run  # orphan sweep
//	ckptctl -store 127.0.0.1:7070 -job demo status \
//	    -agents 127.0.0.1:9001,127.0.0.1:9002          # fleet health
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/objstore"
	"repro/internal/wire"
)

func main() {
	storeAddr := flag.String("store", "127.0.0.1:7070", "TCP object store address")
	stores := flag.String("stores", "", "comma-separated object store fleet (consistent-hash routed; overrides -store)")
	job := flag.String("job", "demo", "job ID")
	id := flag.Int("id", -1, "checkpoint ID (-1 = all where applicable)")
	force := flag.Bool("force", false, "delete even if other checkpoints depend on the target")
	dryRun := flag.Bool("dry-run", false, "gc: report orphans without deleting them")
	agents := flag.String("agents", "", "status: comma-separated shard-agent control addresses")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: ckptctl [flags] list|verify|delete|gc|status [flags]")
		os.Exit(2)
	}
	verb := flag.Arg(0)
	// Accept flags after the verb too (flag.Parse stops at the first
	// non-flag argument, which is the verb). flag.CommandLine uses
	// ExitOnError, so a bad flag exits inside Parse.
	if flag.NArg() > 1 {
		_ = flag.CommandLine.Parse(flag.Args()[1:])
	}
	logger := log.New(os.Stderr, "ckptctl: ", 0)

	storeSpec := *storeAddr
	if *stores != "" {
		storeSpec = *stores
	}
	store, err := objstore.Connect(storeSpec, objstore.ClientConfig{})
	if err != nil {
		logger.Fatalf("dial: %v", err)
	}
	defer store.Close()
	rest, err := ckpt.NewRestorer(*job, store)
	if err != nil {
		logger.Fatal(err)
	}
	ctx := context.Background()

	switch verb {
	case "list":
		ms, err := rest.ListManifests(ctx)
		if err != nil {
			logger.Fatal(err)
		}
		if len(ms) == 0 {
			fmt.Println("no checkpoints")
			return
		}
		fmt.Printf("%-5s %-12s %-7s %-5s %-6s %-10s %-10s %-12s %s\n",
			"id", "kind", "shards", "base", "step", "rows", "payload", "quant", "reader@")
		for _, m := range ms {
			stored := 0
			for _, t := range m.Tables {
				stored += t.StoredRows
			}
			shards := "-"
			if m.Composite() {
				shards = fmt.Sprintf("%d", m.ShardCount)
			}
			fmt.Printf("%-5d %-12s %-7s %-5d %-6d %-10d %-10d %-12s %d\n",
				m.ID, m.Kind, shards, m.BaseID, m.Step, stored, m.PayloadBytes,
				fmt.Sprintf("%s/%db", m.Quant.Method, m.Quant.Bits), m.ReaderNextSample)
		}
	case "verify":
		var results []*ckpt.VerifyResult
		if *id >= 0 {
			v, err := rest.Verify(ctx, *id)
			if err != nil {
				logger.Fatal(err)
			}
			results = append(results, v)
		} else {
			results, err = rest.VerifyAll(ctx)
			if err != nil {
				logger.Fatal(err)
			}
		}
		bad := 0
		for _, v := range results {
			status := "OK"
			if !v.OK() {
				status = "CORRUPT"
				bad++
			}
			fmt.Printf("ckpt %d (%s): %s — %d chunks, %d rows, %d bytes\n",
				v.ID, v.Kind, status, v.Chunks, v.Rows, v.Bytes)
			for _, p := range v.Problems {
				fmt.Printf("  problem: %s\n", p)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
	case "delete":
		if *id < 0 {
			logger.Fatal("delete requires -id")
		}
		deps, err := dependents(ctx, rest, *job, store, *id)
		if err != nil {
			logger.Fatal(err)
		}
		if len(deps) > 0 && !*force {
			logger.Fatalf("checkpoint %d is a chain dependency of checkpoint(s) %v; deleting it would make them unrestorable (use -force to delete anyway)", *id, deps)
		}
		keys, err := store.List(ctx, wire.CheckpointPrefix(*job, *id))
		if err != nil {
			logger.Fatal(err)
		}
		// Sharded checkpoints keep their per-shard objects outside the
		// composite prefix; sweep those too (this also reaps debris a
		// torn shard attempt might have left without a composite).
		shardKeys, err := store.List(ctx, wire.ShardScopePrefix(*job))
		if err != nil {
			logger.Fatal(err)
		}
		idPart := fmt.Sprintf("/ckpt/%08d/", *id)
		for _, k := range shardKeys {
			if strings.Contains(k, idPart) {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			logger.Fatalf("checkpoint %d not found", *id)
		}
		for _, k := range keys {
			if err := store.Delete(ctx, k); err != nil {
				logger.Fatalf("delete %s: %v", k, err)
			}
		}
		fmt.Printf("deleted checkpoint %d (%d objects)\n", *id, len(keys))
	case "gc":
		// Composite-aware retention sweep: delete orphaned shard (and
		// composite-scope) objects no surviving manifest chain references
		// — debris of jobs that died between checkpoints. The job must be
		// quiescent.
		report, err := ckpt.SweepOrphans(ctx, *job, store, *dryRun)
		if err != nil {
			logger.Fatal(err)
		}
		for _, note := range report.Notes {
			fmt.Printf("note: %s\n", note)
		}
		verbed := "deleted"
		if *dryRun {
			verbed = "would delete"
		}
		for _, k := range report.Orphans {
			fmt.Printf("%s %s\n", verbed, k)
		}
		fmt.Printf("scanned %d objects: %d referenced, %d orphaned (%s)\n",
			report.Scanned, report.Referenced, len(report.Orphans), verbed)
	case "status":
		// Fleet health for operators and tests: the durable epoch/lease
		// register plus each agent's live position.
		reg, err := ctrl.NewRegister(ctrl.RegisterConfig{JobID: *job, Store: store})
		if err != nil {
			logger.Fatal(err)
		}
		rec, err := reg.Read(ctx)
		if err != nil {
			logger.Fatal(err)
		}
		lease := "free"
		if rec.HeldAt(time.Now()) {
			lease = fmt.Sprintf("held by %q until %s", rec.Holder, rec.Expires().Format(time.RFC3339))
		} else if rec.Holder != "" {
			lease = fmt.Sprintf("lapsed (last holder %q)", rec.Holder)
		}
		fmt.Printf("job %s: epoch %d, lease %s\n", *job, rec.Epoch, lease)
		if *agents == "" {
			return
		}
		fmt.Printf("%-22s %-6s %-7s %-6s %-5s %s\n", "agent", "shard", "shards", "epoch", "next", "prepared")
		for _, addr := range strings.Split(*agents, ",") {
			client, err := ctrl.DialAgent(addr, ctrl.ClientConfig{})
			if err != nil {
				fmt.Printf("%-22s unreachable: %v\n", addr, err)
				continue
			}
			st, err := client.Status(ctx)
			client.Close()
			if err != nil {
				fmt.Printf("%-22s unreachable: %v\n", addr, err)
				continue
			}
			prepared := "-"
			if st.PreparedID >= 0 {
				prepared = fmt.Sprintf("%d", st.PreparedID)
			}
			fmt.Printf("%-22s %-6d %-7d %-6d %-5d %s\n", addr, st.Shard, st.Shards, st.Epoch, st.NextID, prepared)
		}
	default:
		logger.Fatalf("unknown verb %q", verb)
	}
}

// dependents returns the IDs of checkpoints whose restore chains pass
// through checkpoint id — deleting id would brick them. For sharded
// composites the per-shard chains are walked.
func dependents(ctx context.Context, rest *ckpt.Restorer, job string, store objstore.Store, id int) ([]int, error) {
	ms, err := rest.ListManifests(ctx)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, m := range ms {
		if m.ID == id {
			continue
		}
		needs, err := chainNeeds(ctx, rest, job, store, m, id)
		if err != nil {
			return nil, err
		}
		if needs {
			out = append(out, m.ID)
		}
	}
	return out, nil
}

// chainNeeds reports whether restoring manifest m requires checkpoint id.
func chainNeeds(ctx context.Context, rest *ckpt.Restorer, job string, store objstore.Store, m *wire.Manifest, id int) (bool, error) {
	if !m.Composite() {
		chain, err := rest.Chain(ctx, m.ID)
		if err != nil {
			// An already-broken chain is not this deletion's problem.
			return false, nil
		}
		for _, link := range chain {
			if link.ID == id {
				return true, nil
			}
		}
		return false, nil
	}
	for s := 0; s < m.ShardCount; s++ {
		sub, err := ckpt.NewRestorer(wire.ShardJobID(job, s), store)
		if err != nil {
			return false, err
		}
		chain, err := sub.Chain(ctx, m.ID)
		if err != nil {
			continue
		}
		for _, link := range chain {
			if link.ID == id {
				return true, nil
			}
		}
	}
	return false, nil
}
