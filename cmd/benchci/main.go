// Command benchci runs the benchmark suites programmatically and writes
// the CI perf-trajectory artifacts — one data point per run, diffable
// across commits:
//
//   - BENCH_coordinator.json: end-to-end composite commits (control +
//     data plane together)
//   - BENCH_wire.json: chunk encode/decode, quantization and pack/unpack
//     microbenchmarks (the data-plane hot path in isolation)
//   - BENCH_store.json: routed-store Put/Get sweep over payload size ×
//     store-process count × concurrency (aggregate MB/s + p50/p99)
//   - BENCH_serve.json: serving-replica embedding lookups, static and
//     under concurrent commit traffic (p50/p99 + commits/op)
//
// Usage:
//
//	benchci -out BENCH_coordinator.json -wire-out BENCH_wire.json \
//	    -store-out BENCH_store.json -serve-out BENCH_serve.json -benchtime 1s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"testing"

	"repro/internal/bench"
)

// Result is one benchmark's measurement in the artifact.
type Result struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       int64   `json:"ns_per_op"`
	MBPerSec      float64 `json:"mb_per_sec"`
	AllocedBytes  int64   `json:"alloced_bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	PayloadBytes  float64 `json:"payload_bytes_per_op"`
	BenchtimeFlag string  `json:"benchtime"`
	// Metrics carries every custom b.ReportMetric extra (e.g. the store
	// sweep's p50_ns/p99_ns latency percentiles).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// runSuite benchmarks every case and writes the JSON artifact to path.
func runSuite(path, prefix, benchtime string, cases []bench.Case) {
	var results []Result
	for _, c := range cases {
		r := testing.Benchmark(c.Run)
		res := Result{
			Name:          prefix + c.Name,
			Iterations:    r.N,
			NsPerOp:       r.NsPerOp(),
			MBPerSec:      float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds(),
			AllocedBytes:  r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			PayloadBytes:  r.Extra["payload_bytes/op"],
			BenchtimeFlag: benchtime,
		}
		for k, v := range r.Extra {
			if k == "payload_bytes/op" {
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[k] = v
		}
		results = append(results, res)
		fmt.Printf("%-36s %10d ns/op %10.1f MB/s %6d allocs/op %12.0f payload B/op\n",
			res.Name, res.NsPerOp, res.MBPerSec, res.AllocsPerOp, res.PayloadBytes)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatalf("benchci: encode: %v", err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		log.Fatalf("benchci: write %s: %v", path, err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))
}

func main() {
	testing.Init()
	out := flag.String("out", "BENCH_coordinator.json", "coordinator artifact path (empty = skip)")
	wireOut := flag.String("wire-out", "BENCH_wire.json", "wire/quant artifact path (empty = skip)")
	storeOut := flag.String("store-out", "BENCH_store.json", "routed-store sweep artifact path (empty = skip)")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "serving-replica lookup artifact path (empty = skip)")
	benchtime := flag.String("benchtime", "1s", "per-benchmark budget (e.g. 1s, 100x)")
	writeBW := flag.Float64("write-bw", 64<<20, "per-backend write bandwidth shaping for the store sweep, bytes/sec (0 = unthrottled)")
	readBW := flag.Float64("read-bw", 64<<20, "per-backend read bandwidth shaping for the store sweep, bytes/sec (0 = unthrottled)")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatalf("benchci: set benchtime: %v", err)
	}

	if *wireOut != "" {
		runSuite(*wireOut, "Wire/", *benchtime, bench.WireCases())
	}
	if *storeOut != "" {
		runSuite(*storeOut, "Store/", *benchtime, bench.StoreCasesBW(*writeBW, *readBW))
	}
	if *serveOut != "" {
		runSuite(*serveOut, "Serve/", *benchtime, bench.ServeCases())
	}
	if *out != "" {
		runSuite(*out, "Coordinator/", *benchtime, bench.CoordinatorCases())
	}
}
