// Command benchci runs the coordinator benchmarks programmatically and
// writes BENCH_coordinator.json — the CI perf-trajectory artifact, one
// data point per run, diffable across commits.
//
// Usage:
//
//	benchci -out BENCH_coordinator.json -benchtime 1s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"testing"

	"repro/internal/bench"
)

// Result is one benchmark's measurement in the artifact.
type Result struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       int64   `json:"ns_per_op"`
	MBPerSec      float64 `json:"mb_per_sec"`
	AllocedBytes  int64   `json:"alloced_bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	PayloadBytes  float64 `json:"payload_bytes_per_op"`
	BenchtimeFlag string  `json:"benchtime"`
}

func main() {
	testing.Init()
	out := flag.String("out", "BENCH_coordinator.json", "artifact path")
	benchtime := flag.String("benchtime", "1s", "per-benchmark budget (e.g. 1s, 100x)")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatalf("benchci: set benchtime: %v", err)
	}

	var results []Result
	for _, c := range bench.CoordinatorCases() {
		r := testing.Benchmark(c.Run)
		res := Result{
			Name:          "Coordinator/" + c.Name,
			Iterations:    r.N,
			NsPerOp:       r.NsPerOp(),
			MBPerSec:      float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds(),
			AllocedBytes:  r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			PayloadBytes:  r.Extra["payload_bytes/op"],
			BenchtimeFlag: *benchtime,
		}
		results = append(results, res)
		fmt.Printf("%-32s %10d ns/op %10.1f MB/s %12.0f payload B/op\n",
			res.Name, res.NsPerOp, res.MBPerSec, res.PayloadBytes)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatalf("benchci: encode: %v", err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		log.Fatalf("benchci: write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
}
