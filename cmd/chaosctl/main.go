// Command chaosctl runs declarative chaos campaigns against a full
// Check-N-Run fleet: N shard agents, M object stores, and a leased
// controller, every link behind a programmable network shim. After
// every scripted step the runner asserts the three durability
// invariants (no restorable partial composite, bit-identical
// RestoreLatest, gapless checkpoint-ID convergence).
//
// Usage:
//
//	chaosctl list                               # builtin campaigns
//	chaosctl run -matrix small                  # per-PR subset, in-process
//	chaosctl run -matrix full -procs -out /tmp/chaos
//	chaosctl run my-campaign.json other.json    # scenario files
//
// With -procs the fleet forks real objstored/shardd processes; the
// binaries are built once into a temp directory with `go build` unless
// -objstored/-shardd point at prebuilt ones. -out writes one
// <scenario>.json result per campaign for CI artifacts. Exit status is
// nonzero iff any campaign broke an invariant or failed to run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaosctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, sc := range chaos.BuiltinScenarios() {
			fmt.Printf("%-32s %s\n", sc.Name, sc.Description)
		}
	case "run":
		os.Exit(run(os.Args[2:]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: chaosctl list | run [flags] [scenario.json ...]")
	fmt.Fprintln(os.Stderr, "run flags:")
	fs := runFlags(&runOpts{})
	fs.SetOutput(os.Stderr)
	fs.PrintDefaults()
	os.Exit(2)
}

type runOpts struct {
	matrix    string
	procs     bool
	objstored string
	shardd    string
	out       string
	timeout   time.Duration
	verbose   bool
	backend   string
}

func runFlags(o *runOpts) *flag.FlagSet {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	fs.StringVar(&o.matrix, "matrix", "", `builtin campaign set: "small" (per-PR) or "full" (nightly)`)
	fs.BoolVar(&o.procs, "procs", false, "fork real objstored/shardd processes instead of in-process hosting")
	fs.StringVar(&o.objstored, "objstored", "", "prebuilt objstored binary (-procs; built via `go build` when empty)")
	fs.StringVar(&o.shardd, "shardd", "", "prebuilt shardd binary (-procs; built via `go build` when empty)")
	fs.StringVar(&o.out, "out", "", "directory for per-campaign result JSON (CI artifacts)")
	fs.DurationVar(&o.timeout, "timeout", 5*time.Minute, "per-campaign wall-clock budget")
	fs.BoolVar(&o.verbose, "v", false, "stream fleet diagnostics to stderr")
	fs.StringVar(&o.backend, "store-backend", "", `force campaigns that don't pin a backend onto "mem" or "disk"`)
	return fs
}

func run(args []string) int {
	var o runOpts
	fs := runFlags(&o)
	_ = fs.Parse(args) // ExitOnError

	scenarios, err := selectScenarios(&o, fs.Args())
	if err != nil {
		log.Fatal(err)
	}

	rcfg := chaos.RunnerConfig{Procs: o.procs}
	switch o.backend {
	case "", "mem":
	case "disk":
		rcfg.DiskStores = true
	default:
		log.Fatalf("unknown -store-backend %q (want mem or disk)", o.backend)
	}
	if o.verbose {
		rcfg.Logf = log.Printf
	}
	if o.procs {
		bins, cleanup, err := resolveBins(&o)
		if err != nil {
			log.Fatal(err)
		}
		defer cleanup()
		rcfg.Bins = bins
	}
	if o.out != "" {
		if err := os.MkdirAll(o.out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	failed := 0
	for _, sc := range scenarios {
		res := runOne(sc, rcfg, o.timeout)
		if o.out != "" {
			if err := writeResult(o.out, res); err != nil {
				log.Print(err)
				failed++
			}
		}
		if res.Passed() {
			fmt.Printf("PASS %-32s %d steps, %d committed\n", res.Scenario, len(res.Steps), len(res.Committed))
			continue
		}
		failed++
		fmt.Printf("FAIL %-32s\n", res.Scenario)
		if res.Err != "" {
			fmt.Printf("     error: %s\n", res.Err)
		}
		for _, v := range res.Violations {
			fmt.Printf("     invariant violated: %s\n", v)
		}
	}
	if failed > 0 {
		fmt.Printf("%d of %d campaigns failed\n", failed, len(scenarios))
		return 1
	}
	fmt.Printf("all %d campaigns passed\n", len(scenarios))
	return 0
}

// runOne executes a single campaign under its own timeout. A runner
// error is folded into the result (Err set) so one broken campaign
// doesn't stop the matrix.
func runOne(sc *chaos.Scenario, rcfg chaos.RunnerConfig, timeout time.Duration) *chaos.Result {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := chaos.Run(ctx, sc, rcfg)
	if err != nil && res.Err == "" {
		res.Err = err.Error()
	}
	return res
}

// selectScenarios resolves the -matrix set plus any scenario files.
func selectScenarios(o *runOpts, files []string) ([]*chaos.Scenario, error) {
	var out []*chaos.Scenario
	switch o.matrix {
	case "":
	case "small":
		out = chaos.SmallScenarios()
	case "full":
		out = chaos.BuiltinScenarios()
	default:
		// A builtin name is accepted too: -matrix kill-during-publish.
		sc := chaos.FindScenario(o.matrix)
		if sc == nil {
			return nil, fmt.Errorf("unknown matrix %q (want small, full, or a campaign from `chaosctl list`)", o.matrix)
		}
		out = append(out, sc)
	}
	for _, path := range files {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		sc, err := chaos.ParseScenario(blob)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("nothing to run: pass -matrix small|full or scenario files")
	}
	return out, nil
}

// resolveBins returns the daemon binaries for process mode, building
// them from the module with `go build` when not supplied.
func resolveBins(o *runOpts) (chaos.Bins, func(), error) {
	bins := chaos.Bins{Objstored: o.objstored, Shardd: o.shardd}
	cleanup := func() {}
	if bins.Objstored != "" && bins.Shardd != "" {
		return bins, cleanup, nil
	}
	// Building repro/cmd/... needs the module in scope; when chaosctl
	// itself is a prebuilt binary run from elsewhere, say so instead of
	// surfacing a cryptic "not in std" build error.
	if out, err := exec.Command("go", "env", "GOMOD").Output(); err != nil ||
		len(bytes.TrimSpace(out)) == 0 || string(bytes.TrimSpace(out)) == os.DevNull {
		return bins, cleanup, fmt.Errorf("-procs builds objstored/shardd from source: " +
			"run chaosctl from inside the repository, or pass prebuilt -objstored and -shardd")
	}
	dir, err := os.MkdirTemp("", "chaosctl-bins-")
	if err != nil {
		return bins, cleanup, err
	}
	cleanup = func() { os.RemoveAll(dir) }
	build := func(name string) (string, error) {
		path := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", path, "repro/cmd/"+name)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return "", fmt.Errorf("go build %s: %w", name, err)
		}
		return path, nil
	}
	if bins.Objstored == "" {
		if bins.Objstored, err = build("objstored"); err != nil {
			cleanup()
			return bins, func() {}, err
		}
	}
	if bins.Shardd == "" {
		if bins.Shardd, err = build("shardd"); err != nil {
			cleanup()
			return bins, func() {}, err
		}
	}
	return bins, cleanup, nil
}

// writeResult persists one campaign result as <out>/<scenario>.json.
func writeResult(dir string, res *chaos.Result) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, res.Scenario+".json"), append(blob, '\n'), 0o644)
}
