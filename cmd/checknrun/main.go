// Command checknrun trains a synthetic recommendation model with
// Check-N-Run checkpointing and reports per-interval checkpoint metrics.
//
// Usage:
//
//	checknrun -job demo -intervals 6 -policy intermittent -restores 3
//	checknrun -job demo -store 127.0.0.1:7070   # against objstored
//	checknrun -job demo -recover                # resume a crashed job
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	job := flag.String("job", "demo", "job ID (checkpoint namespace)")
	storeAddr := flag.String("store", "", "TCP object store address (empty = in-process)")
	intervals := flag.Int("intervals", 6, "checkpoint intervals to train")
	policyName := flag.String("policy", "intermittent", "checkpoint policy: full|one-shot|consecutive|intermittent")
	restores := flag.Float64("restores", 1, "expected restores (drives bit-width; negative = fp32)")
	batch := flag.Int("batch", 64, "batch size")
	batchesPerInterval := flag.Int("interval-batches", 8, "batches per checkpoint interval")
	nodes := flag.Int("nodes", 2, "simulated trainer nodes")
	keep := flag.Int("keep", 2, "checkpoints to retain (-1 = all)")
	doRecover := flag.Bool("recover", false, "restore the latest checkpoint before training")
	compact := flag.Bool("compact", false, "use the optimized CKP2 chunk metadata layout")
	encoders := flag.Int("encoders", 0, "quantize+encode workers (0 = one per core, 1 = serial)")
	predictorName := flag.String("predictor", "history", "intermittent predictor: history|regression")
	doVerify := flag.Bool("verify", false, "scrub all checkpoints after training")
	flag.Parse()

	logger := log.New(os.Stderr, "checknrun: ", log.LstdFlags)

	var policy checknrun.Policy
	switch *policyName {
	case "full":
		policy = checknrun.PolicyFull
	case "one-shot":
		policy = checknrun.PolicyOneShot
	case "consecutive":
		policy = checknrun.PolicyConsecutive
	case "intermittent":
		policy = checknrun.PolicyIntermittent
	default:
		logger.Fatalf("unknown policy %q", *policyName)
	}

	var predictor checknrun.Predictor
	switch *predictorName {
	case "history":
		predictor = checknrun.PredictorHistory
	case "regression":
		predictor = checknrun.PredictorRegression
	default:
		logger.Fatalf("unknown predictor %q", *predictorName)
	}

	sys, err := checknrun.Open(checknrun.Config{
		JobID:              *job,
		StoreAddr:          *storeAddr,
		Policy:             policy,
		ExpectedRestores:   *restores,
		Nodes:              *nodes,
		BatchSize:          *batch,
		BatchesPerInterval: *batchesPerInterval,
		KeepLast:           *keep,
		CompactMetadata:    *compact,
		Encoders:           *encoders,
		Predictor:          predictor,
	})
	if err != nil {
		logger.Fatalf("open: %v", err)
	}
	defer sys.Close()

	ctx := context.Background()
	if *doRecover {
		res, err := sys.Recover(ctx)
		if err != nil {
			logger.Fatalf("recover: %v", err)
		}
		fmt.Printf("recovered: step=%d rows=%d bytes=%d chain=%d\n",
			res.Step, res.RowsApplied, res.BytesRead, len(res.Manifests))
	}

	fmt.Printf("job=%s policy=%s bits=%d interval=%d batches x %d samples\n",
		*job, policy.String(), sys.QuantBits(), *batchesPerInterval, *batch)
	fmt.Printf("%-4s %-12s %-7s %-10s %-12s %-10s\n",
		"ivl", "kind", "base", "rows", "payload", "loss")
	for i := 0; i < *intervals; i++ {
		man, err := sys.RunInterval(ctx)
		if err != nil {
			logger.Fatalf("interval %d: %v", i, err)
		}
		stored := 0
		for _, t := range man.Tables {
			stored += t.StoredRows
		}
		fmt.Printf("%-4d %-12s %-7d %-10d %-12d %-10.4f\n",
			i, man.Kind, man.BaseID, stored, man.PayloadBytes, sys.TrainerStats().LastLoss)
	}
	if u, ok := sys.StoreUsage(); ok {
		fmt.Printf("store: objects=%d capacity=%dB written=%dB\n",
			u.Objects, u.CapacityBytes, u.BytesWritten)
	}
	fmt.Printf("stall fraction: %.4f%%\n", sys.StallFraction()*100)

	if *doVerify {
		results, err := sys.VerifyAll(ctx)
		if err != nil {
			logger.Fatalf("verify: %v", err)
		}
		for _, v := range results {
			status := "OK"
			if !v.OK() {
				status = "CORRUPT"
			}
			fmt.Printf("verify ckpt %d: %s (%d chunks, %d rows)\n", v.ID, status, v.Chunks, v.Rows)
			for _, p := range v.Problems {
				fmt.Printf("  problem: %s\n", p)
			}
		}
	}
}
