package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/ctrl/shardhost"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/trainer"
)

// Committed records one checkpoint the scenario expects to exist: the
// runner appends an entry for every Checkpoint call that returned
// success. The checker holds the store to exactly this sequence.
type Committed struct {
	ID   int    `json:"id"`
	Step uint64 `json:"step"`
}

// Violation is one broken invariant. Violations are the harness's
// verdicts; infrastructure failures (the observer store itself erroring)
// surface as plain errors instead.
type Violation struct {
	// Invariant is one of "complete-composites", "restore-latest",
	// "id-convergence", "serve-consistency".
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Checker asserts the three core Check-N-Run invariants against a
// fleet, through the unshimmed observer store and direct agent probes:
//
//  1. complete-composites — no restorable partial composite: every
//     composite manifest in the store references only shard manifests
//     that exist.
//  2. restore-latest — RestoreLatest lands on the newest expected
//     checkpoint and reproduces the reference replica bit-identically.
//  3. id-convergence — committed composite IDs are exactly the expected
//     gapless sequence, and every live agent agrees on the next ID.
//  4. serve-consistency — every lookup a serving replica answers comes
//     from exactly one COMMITTED checkpoint, bit-identical to the
//     reference state at that checkpoint's cut step. Staleness is
//     legal (a partitioned replica keeps serving its last version);
//     a torn read — rows mixing two checkpoints — or a response naming
//     an uncommitted checkpoint is not.
//
// The checker maintains its own reference replica, trained with the
// same deterministic seed as the fleet's shards and advanced to each
// checkpoint's cut step on demand. For serve-consistency it snapshots
// the reference tables at every committed cut step, since stale-but
// -legal responses need the OLD state to compare against.
type Checker struct {
	f *Fleet

	cluster *trainer.Cluster
	refMod  *model.DLRM
	gen     *data.Generator

	// serveSnaps holds the reference sparse-table weights at each
	// committed checkpoint: ckptID -> tableID -> flat row-major weights.
	serveSnaps map[int]map[int][]float32
}

// NewChecker builds a checker (and its reference replica) for f.
func NewChecker(f *Fleet) (*Checker, error) {
	mcfg, spec := shardhost.ReplicaConfig(f.cfg.Seed, f.cfg.TableRows, f.cfg.Dim)
	m, err := model.New(mcfg, f.cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("chaos: checker model: %w", err)
	}
	cluster, err := trainer.New(m, trainer.Config{Nodes: f.cfg.Shards})
	if err != nil {
		return nil, fmt.Errorf("chaos: checker cluster: %w", err)
	}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		return nil, fmt.Errorf("chaos: checker generator: %w", err)
	}
	return &Checker{f: f, cluster: cluster, refMod: m, gen: gen,
		serveSnaps: make(map[int]map[int][]float32)}, nil
}

// referenceAt advances the reference replica to exactly step. Scenario
// cut steps are monotonic, so the replica only ever moves forward.
func (c *Checker) referenceAt(step uint64) (*model.DLRM, error) {
	for c.cluster.Stats().Batches < step {
		c.cluster.Step(c.gen.NextBatch(c.f.cfg.Batch))
	}
	if got := c.cluster.Stats().Batches; got != step {
		return nil, fmt.Errorf("chaos: reference replica at step %d, cannot rewind to %d", got, step)
	}
	return c.refMod, nil
}

// freshModel builds an untrained fleet-shaped model to restore into; a
// different seed, so a restore that leans on initialization is caught.
func (c *Checker) freshModel() (*model.DLRM, error) {
	mcfg, _ := shardhost.ReplicaConfig(c.f.cfg.Seed+1000, c.f.cfg.TableRows, c.f.cfg.Dim)
	return model.New(mcfg, c.f.cfg.Shards)
}

// Check runs all four invariants against the expected committed
// sequence and returns every violation found.
func (c *Checker) Check(ctx context.Context, committed []Committed) ([]Violation, error) {
	var out []Violation

	// Serve-consistency runs unconditionally: replicas are in-process
	// and probed over undegraded links, and their in-memory tables stay
	// answerable even while a store is down or a link is partitioned.
	if err := c.snapCommitted(committed); err != nil {
		return nil, err
	}
	sv, err := c.checkServing(ctx, committed)
	if err != nil {
		return nil, err
	}
	out = append(out, sv...)

	// Store-side invariants read ground truth through the observer,
	// which needs every store up: a killed (disk-backed) store makes
	// reads fail by script, not by bug. The checks resume — over the
	// recovered on-disk state — at the step after restart-store, which
	// is where the durability claim is actually decided.
	if !c.f.AllStoresAlive() {
		av, err := c.checkAgentsOnly(ctx, committed)
		if err != nil {
			return nil, err
		}
		return append(out, av...), nil
	}

	rest, err := ckpt.NewRestorer(c.f.cfg.JobID, c.f.observer)
	if err != nil {
		return nil, err
	}
	manifests, err := rest.ListManifests(ctx)
	if err != nil {
		return nil, fmt.Errorf("chaos: list composites: %w", err)
	}

	// Invariant 1: every composite manifest present in the store is
	// complete. An incomplete one is exactly the torn commit the
	// two-phase protocol exists to prevent — it would be indistinguishable
	// from a valid checkpoint to a reader that trusts manifests.
	for _, man := range manifests {
		ok, err := rest.Complete(ctx, man)
		if err != nil {
			return nil, fmt.Errorf("chaos: probe composite %d: %w", man.ID, err)
		}
		if !ok {
			out = append(out, Violation{
				Invariant: "complete-composites",
				Detail:    fmt.Sprintf("composite manifest %d (step %d) references missing shard manifests", man.ID, man.Step),
			})
		}
	}

	// Invariant 3a: the committed IDs are exactly the expected gapless
	// sequence.
	gotIDs := make([]int, len(manifests))
	for i, m := range manifests {
		gotIDs[i] = m.ID
	}
	sort.Ints(gotIDs)
	wantIDs := make([]int, len(committed))
	for i, cm := range committed {
		wantIDs[i] = cm.ID
	}
	if !equalInts(gotIDs, wantIDs) {
		out = append(out, Violation{
			Invariant: "id-convergence",
			Detail:    fmt.Sprintf("store holds composite IDs %v, scenario committed %v", gotIDs, wantIDs),
		})
	}

	// Invariant 3b: every live agent has converged on the same next ID.
	// Dead shards are skipped — convergence is re-checked after restart.
	for s := 0; s < c.f.Shards(); s++ {
		if !c.f.ShardAlive(s) {
			continue
		}
		st, err := c.f.AgentStatus(ctx, s)
		if err != nil {
			return nil, fmt.Errorf("chaos: status shard %d: %w", s, err)
		}
		if st.NextID != len(committed) {
			out = append(out, Violation{
				Invariant: "id-convergence",
				Detail:    fmt.Sprintf("shard %d expects next checkpoint %d, scenario committed %d", s, st.NextID, len(committed)),
			})
		}
	}

	// Invariant 2: RestoreLatest lands on the newest expected checkpoint,
	// bit-identically to the reference replica at its cut step. Skipped
	// while nothing has committed (invariant 3a already pinned the store
	// to empty).
	if len(committed) == 0 {
		return out, nil
	}
	want := committed[len(committed)-1]
	fresh, err := c.freshModel()
	if err != nil {
		return nil, err
	}
	res, err := rest.RestoreLatest(ctx, fresh)
	if err != nil {
		out = append(out, Violation{
			Invariant: "restore-latest",
			Detail:    fmt.Sprintf("restore failed with %d committed checkpoints: %v", len(committed), err),
		})
		return out, nil
	}
	if got := res.Manifests[0]; got.ID != want.ID || res.Step != want.Step {
		out = append(out, Violation{
			Invariant: "restore-latest",
			Detail: fmt.Sprintf("restored composite %d at step %d, want %d at step %d",
				got.ID, res.Step, want.ID, want.Step),
		})
		return out, nil
	}
	ref, err := c.referenceAt(want.Step)
	if err != nil {
		return nil, err
	}
	if diff := bitDiff(ref, fresh); diff != "" {
		out = append(out, Violation{
			Invariant: "restore-latest",
			Detail:    fmt.Sprintf("restored state diverges from reference at step %d: %s", want.Step, diff),
		})
	}
	return out, nil
}

// snapCommitted records the reference sparse tables at every committed
// cut step that isn't snapshotted yet. Committed entries arrive in
// ascending step order, so the forward-only reference replica can visit
// each cut exactly once.
func (c *Checker) snapCommitted(committed []Committed) error {
	for _, cm := range committed {
		if _, ok := c.serveSnaps[cm.ID]; ok {
			continue
		}
		ref, err := c.referenceAt(cm.Step)
		if err != nil {
			return err
		}
		snap := make(map[int][]float32, len(ref.Sparse.Tables))
		for _, tab := range ref.Sparse.Tables {
			snap[tab.ID] = append([]float32(nil), tab.Weights.Data...)
		}
		c.serveSnaps[cm.ID] = snap
	}
	return nil
}

// checkServing probes every replica's lookup plane: each response must
// come from a committed checkpoint and bit-match the reference snapshot
// of exactly that checkpoint. Not-ready replicas and stale-but-committed
// responses pass — convergence is asserted by scripted serve-wait steps,
// not here.
func (c *Checker) checkServing(ctx context.Context, committed []Committed) ([]Violation, error) {
	var out []Violation
	for r := 0; r < c.f.Replicas(); r++ {
		cl := serve.NewClient(c.f.ReplicaAddr(r), serve.ClientConfig{})
		vio, err := c.probeReplica(ctx, cl, r)
		cl.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, vio...)
	}
	return out, nil
}

func (c *Checker) probeReplica(ctx context.Context, cl *serve.Client, r int) ([]Violation, error) {
	var out []Violation
	for _, tab := range c.refMod.Sparse.Tables {
		// Strided sample across the table, plus the last row.
		stride := tab.Rows / 48
		if stride == 0 {
			stride = 1
		}
		var indices []uint32
		for i := 0; i < tab.Rows; i += stride {
			indices = append(indices, uint32(i))
		}
		indices = append(indices, uint32(tab.Rows-1))

		resp, err := cl.Lookup(ctx, uint32(tab.ID), indices)
		if errors.Is(err, serve.ErrNotReady) {
			return nil, nil // no checkpoint synced yet; legal staleness
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: probe replica %d table %d: %w", r, tab.ID, err)
		}
		snap, ok := c.serveSnaps[resp.CkptID]
		if !ok {
			out = append(out, Violation{
				Invariant: "serve-consistency",
				Detail:    fmt.Sprintf("replica %d serves checkpoint %d, which the scenario never committed", r, resp.CkptID),
			})
			return out, nil
		}
		ref := snap[tab.ID]
		dim := int(resp.Dim)
		if dim*tab.Rows != len(ref) || len(resp.Vectors) != len(indices)*dim {
			out = append(out, Violation{
				Invariant: "serve-consistency",
				Detail: fmt.Sprintf("replica %d table %d shape mismatch: dim %d, %d floats for %d indices",
					r, tab.ID, dim, len(resp.Vectors), len(indices)),
			})
			return out, nil
		}
		for i, idx := range indices {
			for d := 0; d < dim; d++ {
				if got, want := resp.Vectors[i*dim+d], ref[int(idx)*dim+d]; got != want {
					out = append(out, Violation{
						Invariant: "serve-consistency",
						Detail: fmt.Sprintf("replica %d checkpoint %d table %d row %d[%d] differs from reference — torn read",
							r, resp.CkptID, tab.ID, idx, d),
					})
					return out, nil
				}
			}
		}
	}
	return out, nil
}

// checkAgentsOnly is the degraded check while a store is down: agent ID
// convergence still holds (live agents probe over unshimmed links), but
// store reads would fail for scripted reasons.
func (c *Checker) checkAgentsOnly(ctx context.Context, committed []Committed) ([]Violation, error) {
	var out []Violation
	for s := 0; s < c.f.Shards(); s++ {
		if !c.f.ShardAlive(s) {
			continue
		}
		st, err := c.f.AgentStatus(ctx, s)
		if err != nil {
			return nil, fmt.Errorf("chaos: status shard %d: %w", s, err)
		}
		if st.NextID != len(committed) {
			out = append(out, Violation{
				Invariant: "id-convergence",
				Detail:    fmt.Sprintf("shard %d expects next checkpoint %d, scenario committed %d", s, st.NextID, len(committed)),
			})
		}
	}
	return out, nil
}

// bitDiff compares two models bit-for-bit — sparse weights, optimizer
// accumulators, dense state — returning "" when identical.
func bitDiff(a, b *model.DLRM) string {
	for _, tab := range a.Sparse.Tables {
		tb := b.Sparse.Table(tab.ID)
		if tb == nil {
			return fmt.Sprintf("table %d missing", tab.ID)
		}
		for i := range tab.Weights.Data {
			if tab.Weights.Data[i] != tb.Weights.Data[i] {
				return fmt.Sprintf("table %d weight %d differs", tab.ID, i)
			}
		}
		for i := range tab.Accum {
			if tab.Accum[i] != tb.Accum[i] {
				return fmt.Sprintf("table %d accumulator %d differs", tab.ID, i)
			}
		}
	}
	da, err := a.DenseState()
	if err != nil {
		return fmt.Sprintf("reference dense state: %v", err)
	}
	db, err := b.DenseState()
	if err != nil {
		return fmt.Sprintf("restored dense state: %v", err)
	}
	if string(da) != string(db) {
		return "dense state differs"
	}
	return ""
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
