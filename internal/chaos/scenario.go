package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/wire"
)

// Scenario is one declarative fault campaign: a fleet shape and a
// timed script of steps, each followed by a full invariant check.
type Scenario struct {
	Name        string    `json:"name"`
	Description string    `json:"description,omitempty"`
	Fleet       FleetSpec `json:"fleet"`
	Steps       []Step    `json:"steps"`
}

// FleetSpec is the scenario's fleet shape (JSON view of FleetConfig;
// process-vs-in-process and binaries are the runner's choice, not the
// scenario's).
type FleetSpec struct {
	Shards      int    `json:"shards"`
	Stores      int    `json:"stores"`
	Replicas    int    `json:"replicas,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	Batch       int    `json:"batch,omitempty"`
	TableRows   []int  `json:"table_rows,omitempty"`
	Dim         int    `json:"dim,omitempty"`
	Policy      string `json:"policy,omitempty"` // full|oneshot|consecutive|intermittent
	QuantBits   int    `json:"quant_bits,omitempty"`
	OpTimeoutMs int    `json:"op_timeout_ms,omitempty"`
	LeaseTTLMs  int    `json:"lease_ttl_ms,omitempty"`
	// StoreBackend pins the store plane to "mem" or "disk". Empty defers
	// to the runner (RunnerConfig.DiskStores), so the same campaign runs
	// against both backends in the nightly matrix; campaigns that kill
	// stores must pin "disk".
	StoreBackend string `json:"store_backend,omitempty"`
	// Disk-backend knobs (ignored for mem): fsync policy flag value,
	// compaction trigger, and injected device latencies.
	Fsync           string  `json:"fsync,omitempty"`
	CompactRatio    float64 `json:"compact_ratio,omitempty"`
	DiskPutDelayMs  int     `json:"disk_put_delay_ms,omitempty"`
	DiskSyncDelayMs int     `json:"disk_sync_delay_ms,omitempty"`
}

// FaultSpec describes a link degradation. Zero-valued fields are
// omitted; Partition and DropConns override the shaping fields.
type FaultSpec struct {
	// Partition hard-partitions the link until healed.
	Partition bool `json:"partition,omitempty"`
	// DropConns tears down live connections once (transient blip).
	DropConns bool `json:"drop_conns,omitempty"`
	// Shaping knobs, applied together as the link state.
	LatencyMs    int     `json:"latency_ms,omitempty"`
	JitterMs     int     `json:"jitter_ms,omitempty"`
	BandwidthBps float64 `json:"bandwidth_bps,omitempty"`
	DropProb     float64 `json:"drop_prob,omitempty"`
	Stall        bool    `json:"stall,omitempty"`
	// Direction is "up", "down", or "both" (default).
	Direction string `json:"direction,omitempty"`
}

// Step is one scripted action. Op selects the action; the other fields
// parameterize it:
//
//	checkpoint  — drive a composite commit at Step. Expect "fail" means
//	              the commit MUST abort (a mid-commit fault is scripted);
//	              anything else means it must succeed. At ("after-prepare"
//	              or "after-commit") arms Fault/Target and Kill to fire
//	              inside the commit window.
//	fault       — apply Fault to every Target link.
//	heal        — restore Target links (all links when Target is empty).
//	kill        — crash shard Shard (SIGKILL / Host.Kill). A checkpoint
//	              step's Kill field also accepts "store:<i>"/"store:anchor"
//	              to kill a disk-backed store inside the commit window.
//	restart     — restart shard Shard with -recover.
//	kill-store  — kill -9 store Target ("store:<i>" or "store:anchor");
//	              disk-backed fleets only.
//	restart-store — restart a killed store from its on-disk log at its
//	              original address.
//	lead        — elect Holder as leader (initial election).
//	failover    — abandon the current leader and promote Holder, who
//	              waits out the lease TTL like a real standby.
//	sweep       — run ckpt.SweepOrphans and fail on error.
//	serve-wait  — block until every serving replica has converged on the
//	              newest committed checkpoint (bounded by the step
//	              timeout; a replica that never converges is a harness
//	              failure).
//	sleep       — wait Ms milliseconds.
//	inject-partial-composite — write a composite manifest whose shard
//	              manifests don't exist, simulating a controller with the
//	              commit fence disabled. Gated by RunnerConfig
//	              AllowInjection; exists to prove the checker fires.
type Step struct {
	Op string `json:"op"`

	Step   uint64 `json:"step,omitempty"`
	Expect string `json:"expect,omitempty"`
	At     string `json:"at,omitempty"`
	Kill   string `json:"kill,omitempty"`

	Target string     `json:"target,omitempty"`
	Fault  *FaultSpec `json:"fault,omitempty"`

	Holder string `json:"holder,omitempty"`
	Shard  int    `json:"shard,omitempty"`
	Ms     int    `json:"ms,omitempty"`
	ID     int    `json:"id,omitempty"`
}

// ParseScenario decodes a scenario from JSON, rejecting unknown fields
// so a typo'd knob fails loudly instead of silently not injecting.
func ParseScenario(blob []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(blob)))
	dec.DisallowUnknownFields()
	sc := &Scenario{}
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("chaos: parse scenario: %w", err)
	}
	if sc.Name == "" {
		return nil, fmt.Errorf("chaos: scenario has no name")
	}
	if len(sc.Steps) == 0 {
		return nil, fmt.Errorf("chaos: scenario %s has no steps", sc.Name)
	}
	return sc, nil
}

// RunnerConfig configures scenario execution.
type RunnerConfig struct {
	// Procs forks real objstored/shardd processes (Bins required).
	Procs bool
	Bins  Bins
	// StepTimeout bounds each step, checkpoint commits included.
	// Default 60s.
	StepTimeout time.Duration
	// AllowInjection enables the inject-partial-composite op. Off by
	// default: a campaign that "passes" by injecting corruption is a
	// checker test, not a system test.
	AllowInjection bool
	// DiskStores runs every campaign that doesn't pin a store backend on
	// the disk backend — the nightly both-backends matrix switch.
	DiskStores bool
	// Logf receives the fleet's and runner's diagnostics; nil discards.
	Logf func(format string, args ...any)
}

// StepResult records one executed step and the invariant check that
// followed it.
type StepResult struct {
	Index  int    `json:"index"`
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`
	// ExecMs and CheckMs time the step itself and the invariant check
	// that followed it.
	ExecMs     int64       `json:"exec_ms"`
	CheckMs    int64       `json:"check_ms"`
	Violations []Violation `json:"violations,omitempty"`
}

// Result is a completed scenario run. The run passed iff Err is empty
// and no step recorded violations.
type Result struct {
	Scenario   string       `json:"scenario"`
	Steps      []StepResult `json:"steps"`
	Committed  []Committed  `json:"committed"`
	Violations []Violation  `json:"violations,omitempty"`
	Err        string       `json:"error,omitempty"`
}

// Passed reports whether the campaign held every invariant and met
// every step contract.
func (r *Result) Passed() bool { return r.Err == "" && len(r.Violations) == 0 }

// Run executes one scenario: builds the fleet, walks the script, and
// checks all four invariants after every step. The returned error is
// reserved for harness failures (a step contract broken, the observer
// store erroring); invariant verdicts are in Result.Violations.
func Run(ctx context.Context, sc *Scenario, rcfg RunnerConfig) (*Result, error) {
	if rcfg.StepTimeout <= 0 {
		rcfg.StepTimeout = 60 * time.Second
	}
	res := &Result{Scenario: sc.Name}
	fail := func(err error) (*Result, error) {
		res.Err = err.Error()
		return res, err
	}

	fcfg := FleetConfig{
		JobID:     "chaos-" + sc.Name,
		Shards:    sc.Fleet.Shards,
		Stores:    sc.Fleet.Stores,
		Replicas:  sc.Fleet.Replicas,
		Seed:      sc.Fleet.Seed,
		Batch:     sc.Fleet.Batch,
		TableRows: sc.Fleet.TableRows,
		Dim:       sc.Fleet.Dim,
		QuantBits: sc.Fleet.QuantBits,
		OpTimeout: time.Duration(sc.Fleet.OpTimeoutMs) * time.Millisecond,
		LeaseTTL:  time.Duration(sc.Fleet.LeaseTTLMs) * time.Millisecond,
		Procs:     rcfg.Procs,
		Bins:      rcfg.Bins,
		Logf:      rcfg.Logf,

		StoreBackend:  sc.Fleet.StoreBackend,
		Fsync:         sc.Fleet.Fsync,
		CompactRatio:  sc.Fleet.CompactRatio,
		DiskPutDelay:  time.Duration(sc.Fleet.DiskPutDelayMs) * time.Millisecond,
		DiskSyncDelay: time.Duration(sc.Fleet.DiskSyncDelayMs) * time.Millisecond,
	}
	if fcfg.StoreBackend == "" && rcfg.DiskStores {
		fcfg.StoreBackend = "disk"
	}
	if sc.Fleet.Policy != "" {
		kind, err := parsePolicy(sc.Fleet.Policy)
		if err != nil {
			return fail(err)
		}
		fcfg.Policy = kind
	}
	f, err := NewFleet(fcfg)
	if err != nil {
		return fail(fmt.Errorf("chaos: fleet for %s: %w", sc.Name, err))
	}
	defer f.Close()
	checker, err := NewChecker(f)
	if err != nil {
		return fail(err)
	}

	r := &runner{f: f, cfg: rcfg, res: res}
	for i, step := range sc.Steps {
		sr := StepResult{Index: i, Op: step.Op}
		start := time.Now()
		if err := r.exec(ctx, &step, &sr); err != nil {
			res.Steps = append(res.Steps, sr)
			return fail(fmt.Errorf("chaos: %s step %d (%s): %w", sc.Name, i, step.Op, err))
		}
		sr.ExecMs = time.Since(start).Milliseconds()
		start = time.Now()
		vio, err := checker.Check(ctx, r.committed)
		if err != nil {
			res.Steps = append(res.Steps, sr)
			return fail(fmt.Errorf("chaos: %s step %d (%s): invariant check: %w", sc.Name, i, step.Op, err))
		}
		sr.CheckMs = time.Since(start).Milliseconds()
		sr.Violations = vio
		res.Steps = append(res.Steps, sr)
		res.Violations = append(res.Violations, vio...)
	}
	res.Committed = r.committed
	return res, nil
}

// runner carries one scenario execution's mutable state.
type runner struct {
	f         *Fleet
	cfg       RunnerConfig
	res       *Result
	committed []Committed
}

func (r *runner) exec(ctx context.Context, s *Step, sr *StepResult) error {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.StepTimeout)
	defer cancel()
	switch s.Op {
	case "checkpoint":
		return r.checkpoint(ctx, s, sr)
	case "fault":
		if s.Fault == nil {
			return fmt.Errorf("fault step has no fault spec")
		}
		shims, err := r.targets(s.Target)
		if err != nil {
			return err
		}
		applyFault(shims, s.Fault)
		sr.Detail = fmt.Sprintf("%s on %s", faultLabel(s.Fault), s.Target)
		return nil
	case "heal":
		shims, err := r.targets(s.Target)
		if err != nil {
			return err
		}
		for _, p := range shims {
			p.Heal()
		}
		sr.Detail = s.Target
		if s.Target == "" {
			sr.Detail = "all links"
		}
		return nil
	case "kill":
		r.f.KillShard(s.Shard)
		sr.Detail = fmt.Sprintf("shard %d", s.Shard)
		return nil
	case "restart":
		sr.Detail = fmt.Sprintf("shard %d", s.Shard)
		return r.f.RestartShard(s.Shard)
	case "kill-store":
		i, err := r.storeIndex(s.Target, "store")
		if err != nil {
			return err
		}
		sr.Detail = fmt.Sprintf("store %d", i)
		return r.f.KillStore(i)
	case "restart-store":
		i, err := r.storeIndex(s.Target, "store")
		if err != nil {
			return err
		}
		sr.Detail = fmt.Sprintf("store %d", i)
		return r.f.RestartStore(i)
	case "lead":
		sr.Detail = s.Holder
		return r.f.Lead(ctx, s.Holder)
	case "failover":
		sr.Detail = s.Holder
		return r.f.Failover(ctx, s.Holder)
	case "sweep":
		rep, err := ckpt.SweepOrphans(ctx, r.f.cfg.JobID, r.f.Observer(), false)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		sr.Detail = fmt.Sprintf("swept %d orphans of %d scanned", len(rep.Orphans), rep.Scanned)
		return nil
	case "serve-wait":
		return r.serveWait(ctx, sr)
	case "sleep":
		time.Sleep(time.Duration(s.Ms) * time.Millisecond)
		sr.Detail = fmt.Sprintf("%dms", s.Ms)
		return nil
	case "inject-partial-composite":
		if !r.cfg.AllowInjection {
			return fmt.Errorf("inject-partial-composite requires RunnerConfig.AllowInjection")
		}
		sr.Detail = fmt.Sprintf("composite %d", s.ID)
		return r.injectPartial(ctx, s.ID)
	default:
		return fmt.Errorf("unknown op %q", s.Op)
	}
}

// checkpoint drives one commit, arming the At-window hooks first.
func (r *runner) checkpoint(ctx context.Context, s *Step, sr *StepResult) error {
	hook, err := r.buildHook(s)
	if err != nil {
		return err
	}
	switch s.At {
	case "":
	case "after-prepare":
		r.f.SetAfterPrepare(hook)
	case "after-commit":
		r.f.SetAfterCommit(hook)
	default:
		return fmt.Errorf("unknown checkpoint window %q", s.At)
	}
	// Disarm whatever didn't fire, whatever happens.
	defer r.f.SetAfterPrepare(nil)
	defer r.f.SetAfterCommit(nil)

	man, err := r.f.Checkpoint(ctx, s.Step)
	if s.Expect == "fail" {
		if err == nil {
			return fmt.Errorf("checkpoint at step %d committed, scripted fault should have aborted it", s.Step)
		}
		sr.Detail = fmt.Sprintf("step %d aborted as scripted: %v", s.Step, err)
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint at step %d: %w", s.Step, err)
	}
	r.committed = append(r.committed, Committed{ID: man.ID, Step: s.Step})
	sr.Detail = fmt.Sprintf("committed composite %d at step %d", man.ID, s.Step)
	return nil
}

// buildHook composes the faults and kills a checkpoint step arms in its
// At window. nil when the step scripts neither.
func (r *runner) buildHook(s *Step) (func(), error) {
	if s.At == "" {
		if s.Fault != nil || s.Kill != "" {
			return nil, fmt.Errorf("checkpoint step has fault/kill but no at window")
		}
		return nil, nil
	}
	var shims []*Proxy
	if s.Fault != nil {
		var err error
		if shims, err = r.targets(s.Target); err != nil {
			return nil, err
		}
	}
	var shardKills, storeKills []int
	if s.Kill != "" {
		for _, part := range strings.Split(s.Kill, ",") {
			part = strings.TrimSpace(part)
			if strings.HasPrefix(part, "store:") {
				idx, err := r.storeIndex(part, "store")
				if err != nil {
					return nil, err
				}
				storeKills = append(storeKills, idx)
				continue
			}
			idx, err := targetIndex(part, "shard", r.f.Shards())
			if err != nil {
				return nil, err
			}
			shardKills = append(shardKills, idx)
		}
	}
	if shims == nil && shardKills == nil && storeKills == nil {
		return nil, fmt.Errorf("checkpoint step has at=%q but neither fault nor kill", s.At)
	}
	fault := s.Fault
	return func() {
		if fault != nil {
			applyFault(shims, fault)
		}
		for _, sh := range shardKills {
			r.f.KillShard(sh)
		}
		for _, st := range storeKills {
			if err := r.f.KillStore(st); err != nil {
				r.f.logf("chaos: in-window kill-store %d: %v", st, err)
			}
		}
	}, nil
}

// serveWait blocks until every replica serves the newest committed
// checkpoint. The replicas publish convergence through ReplicaServed;
// staleness is legal between steps, but a serve-wait step is the
// scenario asserting "the read plane has caught up NOW".
func (r *runner) serveWait(ctx context.Context, sr *StepResult) error {
	if r.f.Replicas() == 0 {
		return fmt.Errorf("serve-wait on a fleet with no replicas")
	}
	if len(r.committed) == 0 {
		return fmt.Errorf("serve-wait before any committed checkpoint")
	}
	want := r.committed[len(r.committed)-1].ID
	for {
		behind := -1
		for i := 0; i < r.f.Replicas(); i++ {
			if id, _ := r.f.ReplicaServed(i); id < want {
				behind = i
				break
			}
		}
		if behind < 0 {
			sr.Detail = fmt.Sprintf("%d replicas serving composite %d", r.f.Replicas(), want)
			return nil
		}
		select {
		case <-ctx.Done():
			id, _ := r.f.ReplicaServed(behind)
			return fmt.Errorf("replica %d stuck serving composite %d, want %d: %w", behind, id, want, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// targets resolves a comma-separated target list to shims. Syntax:
// store:<i>, ctrlstore:<i>, agent:<i> (with "anchor" as a store index),
// replica:<i> = every link replica i owns (announce + store shims), and
// leader = every link the leader depends on (all agent shims + all
// controller-side store shims).
func (r *runner) targets(spec string) ([]*Proxy, error) {
	if spec == "" {
		var all []*Proxy
		all = append(all, r.f.storeShims...)
		all = append(all, r.f.ctrlShims...)
		all = append(all, r.f.agentShims...)
		for i := 0; i < r.f.Replicas(); i++ {
			all = append(all, r.f.ReplicaShims(i)...)
		}
		return all, nil
	}
	var out []*Proxy
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case part == "leader":
			out = append(out, r.f.agentShims...)
			out = append(out, r.f.ctrlShims...)
		case strings.HasPrefix(part, "replica:"):
			i, err := targetIndex(part, "replica", r.f.Replicas())
			if err != nil {
				return nil, err
			}
			out = append(out, r.f.ReplicaShims(i)...)
		case strings.HasPrefix(part, "store:"):
			i, err := r.storeIndex(part, "store")
			if err != nil {
				return nil, err
			}
			out = append(out, r.f.StoreShim(i))
		case strings.HasPrefix(part, "ctrlstore:"):
			i, err := r.storeIndex(part, "ctrlstore")
			if err != nil {
				return nil, err
			}
			out = append(out, r.f.CtrlStoreShim(i))
		case strings.HasPrefix(part, "agent:"):
			i, err := targetIndex(part, "agent", r.f.Shards())
			if err != nil {
				return nil, err
			}
			out = append(out, r.f.AgentShim(i))
		default:
			return nil, fmt.Errorf("unknown target %q", part)
		}
	}
	return out, nil
}

func (r *runner) storeIndex(part, kind string) (int, error) {
	if part == kind+":anchor" {
		return r.f.AnchorStore(), nil
	}
	return targetIndex(part, kind, r.f.Stores())
}

func targetIndex(part, kind string, n int) (int, error) {
	part = strings.TrimSpace(part)
	numStr, ok := strings.CutPrefix(part, kind+":")
	if !ok {
		return 0, fmt.Errorf("target %q is not %s:<i>", part, kind)
	}
	i, err := strconv.Atoi(numStr)
	if err != nil || i < 0 || i >= n {
		return 0, fmt.Errorf("target %q out of range [0,%d)", part, n)
	}
	return i, nil
}

// applyFault installs spec on every shim in the list.
func applyFault(shims []*Proxy, spec *FaultSpec) {
	for _, p := range shims {
		switch {
		case spec.Partition:
			p.Partition()
		case spec.DropConns:
			p.DropConns()
		default:
			cfg := LinkConfig{
				Latency:   time.Duration(spec.LatencyMs) * time.Millisecond,
				Jitter:    time.Duration(spec.JitterMs) * time.Millisecond,
				Bandwidth: spec.BandwidthBps,
				DropProb:  spec.DropProb,
				Stall:     spec.Stall,
			}
			switch spec.Direction {
			case "up":
				p.SetLink(Up, cfg)
			case "down":
				p.SetLink(Down, cfg)
			default:
				p.SetLink(Up, cfg)
				p.SetLink(Down, cfg)
			}
		}
	}
}

func faultLabel(spec *FaultSpec) string {
	switch {
	case spec.Partition:
		return "partition"
	case spec.DropConns:
		return "drop-conns"
	case spec.Stall:
		return "stall"
	case spec.BandwidthBps > 0:
		return fmt.Sprintf("throttle %.0fB/s", spec.BandwidthBps)
	case spec.DropProb > 0:
		return fmt.Sprintf("drop %.2f", spec.DropProb)
	default:
		return fmt.Sprintf("latency %dms±%dms", spec.LatencyMs, spec.JitterMs)
	}
}

// injectPartial writes a composite manifest for id whose shard
// manifests do not exist — the torn state a controller without the
// commit fence could leave. The template is the newest real composite.
func (r *runner) injectPartial(ctx context.Context, id int) error {
	rest, err := ckpt.NewRestorer(r.f.cfg.JobID, r.f.Observer())
	if err != nil {
		return err
	}
	mans, err := rest.ListManifests(ctx)
	if err != nil {
		return err
	}
	if len(mans) == 0 {
		return fmt.Errorf("inject-partial-composite needs at least one committed checkpoint as template")
	}
	man := *mans[len(mans)-1]
	man.ID = id
	man.ShardManifestKeys = make([]string, man.ShardCount)
	for s := 0; s < man.ShardCount; s++ {
		// Keys of an attempt that never prepared: syntactically valid,
		// guaranteed absent.
		man.ShardManifestKeys[s] = wire.ManifestKey(wire.ShardJobID(r.f.cfg.JobID, s), id)
	}
	blob, err := wire.EncodeManifest(&man)
	if err != nil {
		return err
	}
	return r.f.Observer().Put(ctx, wire.ManifestKey(r.f.cfg.JobID, id), blob)
}

// parsePolicy mirrors cmd/shardd's flag parsing.
func parsePolicy(s string) (ckpt.PolicyKind, error) {
	switch strings.ToLower(s) {
	case "full":
		return ckpt.PolicyFull, nil
	case "oneshot", "one-shot":
		return ckpt.PolicyOneShot, nil
	case "consecutive":
		return ckpt.PolicyConsecutive, nil
	case "intermittent":
		return ckpt.PolicyIntermittent, nil
	default:
		return 0, fmt.Errorf("chaos: unknown policy %q", s)
	}
}
