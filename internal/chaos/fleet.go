package chaos

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/ctrl/shardhost"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/wire"
)

// Bins names the prebuilt daemon binaries a process-mode fleet forks.
type Bins struct {
	Objstored string
	Shardd    string
}

// FleetConfig describes a chaos fleet: N shard agents + M object
// stores + a leased controller, every link behind a Proxy.
type FleetConfig struct {
	// JobID names the checkpoint job. Required.
	JobID string
	// Shards is the shard-agent count; Stores the store-process count.
	// Both default to 1.
	Shards, Stores int
	// Replicas is the serving-replica count (default 0: no read plane).
	// A fleet with replicas owns one ctrl.Announcer that every elected
	// controller announces through — the "stable VIP" a deployment would
	// front the announce plane with — so subscriptions survive failover.
	// Replicas are hosted in-process even under Procs: their fault
	// surface is the same set of real TCP proxies either way, and the
	// checker needs direct access to their served state.
	Replicas int
	// Seed drives the deterministic replicas (default 7); Batch the
	// training batch size (default 16).
	Seed  int64
	Batch int
	// TableRows/Dim size the embedding tables (in-process fleets only —
	// forked shardd uses the demo defaults).
	TableRows []int
	Dim       int
	// Policy is the checkpoint policy (default one-shot full+incremental);
	// QuantBits enables asymmetric quantization when positive.
	Policy    ckpt.PolicyKind
	QuantBits int
	// OpTimeout bounds each agent control operation including its store
	// I/O — the self-defense deadline that unsticks an agent from a
	// stalled store. Default 5s.
	OpTimeout time.Duration
	// LeaseTTL is the controller lease TTL (default 1s); failover takes
	// roughly one TTL.
	LeaseTTL time.Duration
	// Procs forks real OS processes (objstored/shardd from Bins) instead
	// of hosting stores and shards in-process.
	Procs bool
	Bins  Bins
	// StoreBackend selects the store-plane backend: "mem" (default) or
	// "disk" (the crash-consistent segment log). Only disk-backed stores
	// may be killed and restarted — a killed MemStore is just data loss.
	StoreBackend string
	// Fsync is the disk backend's flag-style fsync policy ("always",
	// "interval[:dur]", "never"); default "always".
	Fsync string
	// CompactRatio is the disk backend's compaction trigger (0 = its
	// default).
	CompactRatio float64
	// DiskPutDelay injects latency into every store mutation (the
	// slow-disk shim); DiskSyncDelay injects latency into every fsync.
	DiskPutDelay  time.Duration
	DiskSyncDelay time.Duration
	// DataRoot hosts the per-store data directories for the disk
	// backend; empty means a fleet-owned temp directory removed on
	// Close.
	DataRoot string
	// Logf receives fleet diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (cfg *FleetConfig) withDefaults() (FleetConfig, error) {
	c := *cfg
	if c.JobID == "" {
		return c, errors.New("chaos: fleet requires a job ID")
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Stores <= 0 {
		c.Stores = 1
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Policy == 0 {
		c.Policy = ckpt.PolicyOneShot
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	switch c.StoreBackend {
	case "":
		c.StoreBackend = "mem"
	case "mem", "disk":
	default:
		return c, fmt.Errorf("chaos: unknown store backend %q (want mem or disk)", c.StoreBackend)
	}
	if c.Fsync == "" {
		c.Fsync = "always"
	}
	if _, _, err := objstore.ParseFsync(c.Fsync); err != nil {
		return c, err
	}
	if c.Procs {
		if c.Bins.Objstored == "" || c.Bins.Shardd == "" {
			return c, errors.New("chaos: process-mode fleet requires Bins.Objstored and Bins.Shardd")
		}
		if len(c.TableRows) > 0 || c.Dim > 0 {
			return c, errors.New("chaos: process-mode fleet cannot override TableRows/Dim (shardd uses demo defaults)")
		}
	}
	return c, nil
}

// storeNode is one object-store member: a real TCP server (in-process
// or forked) plus its two shims. Disk-backed nodes keep their data
// directory so a killed store restarts from its on-disk log — at the
// SAME address, because the observer and every client hold the raw
// address, not a name.
type storeNode struct {
	addr  string // the real server address (unshimmed); stable across restarts
	srv   *objstore.Server
	proc  *child
	dir   string              // disk backend data directory ("" for mem)
	disk  *objstore.DiskStore // in-process disk backend (Crash hook)
	alive bool
}

// shardNode is one shard agent: host (or forked shardd), its direct
// control address, and liveness.
type shardNode struct {
	host  *shardhost.Host
	proc  *child
	addr  string // direct control-plane address (unshimmed)
	alive bool
}

// replicaNode is one serving replica plus every link it owns: its
// announce-plane shim (replica -> announcer) and its own per-store
// data-plane shims (replica -> store i). Partitioning a replica means
// partitioning all of them — the replica drops off both planes while
// the write path keeps committing.
type replicaNode struct {
	rep        *serve.Replica
	store      objstore.Store // routed through storeShims; replica reads only
	annShim    *Proxy
	storeShims []*Proxy
}

// Fleet is a running chaos topology. The link layout:
//
//	shard agents  --[StoreShim(i)]-->  store i      (data plane, shared per store)
//	controller    --[CtrlStoreShim(i)]--> store i   (leader's own store links)
//	controller    --[AgentShim(s)]-->  shard s      (control plane)
//	replica r     --[replica shims]--> announcer + every store   (read plane)
//
// The shard-side shim addresses are the fleet's canonical routing names:
// every RoutedStore in the system (agents' own, the controller's, the
// observer's) is built over the same name set, so key placement agrees
// everywhere even though each role reaches the backends over different
// wires. The observer store and the invariant checker's agent probes
// bypass every shim — faults never blind the checker.
type Fleet struct {
	cfg          FleetConfig
	logf         func(format string, args ...any)
	dataRoot     string
	ownsDataRoot bool

	stores     []*storeNode
	storeShims []*Proxy // shard-side; Addr() is the canonical routing name
	ctrlShims  []*Proxy // controller-side
	agentShims []*Proxy
	shards     []*shardNode

	ctrlStore objstore.Store // routed through ctrlShims; controller + lease register
	observer  objstore.Store // routed direct; the checker's truth

	announcer *ctrl.Announcer // fleet-owned; survives controller failover
	replicas  []*replicaNode

	ctl    *ctrl.Controller
	lease  *ctrl.Lease
	holder string

	hookMu       sync.Mutex
	afterPrepare func()
	afterCommit  func()
}

// NewFleet stands the topology up: stores, shims, shard agents. No
// controller yet — call Lead.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Fleet{cfg: c, logf: c.Logf}
	fail := func(err error) (*Fleet, error) {
		f.Close()
		return nil, err
	}

	// Store plane: M servers, each behind a shard-side and a
	// controller-side shim.
	if c.StoreBackend == "disk" {
		f.dataRoot = c.DataRoot
		if f.dataRoot == "" {
			f.dataRoot, err = os.MkdirTemp("", "chaos-fleet-")
			if err != nil {
				return fail(fmt.Errorf("chaos: fleet data root: %w", err))
			}
			f.ownsDataRoot = true
		}
	}
	for i := 0; i < c.Stores; i++ {
		sn := &storeNode{}
		if c.StoreBackend == "disk" {
			sn.dir = filepath.Join(f.dataRoot, fmt.Sprintf("store-%d", i))
		}
		if err := f.startStore(sn, i, false); err != nil {
			return fail(err)
		}
		f.stores = append(f.stores, sn)
		shim, err := NewProxy(fmt.Sprintf("store:%d", i), "127.0.0.1:0", sn.addr, c.Logf)
		if err != nil {
			return fail(err)
		}
		f.storeShims = append(f.storeShims, shim)
		cshim, err := NewProxy(fmt.Sprintf("ctrlstore:%d", i), "127.0.0.1:0", sn.addr, c.Logf)
		if err != nil {
			return fail(err)
		}
		f.ctrlShims = append(f.ctrlShims, cshim)
	}

	// The controller's store and the observer's store route over the
	// canonical names (shard-side shim addresses) but reach the backends
	// over their own wires.
	if f.ctrlStore, err = f.routedVia(func(i int) string { return f.ctrlShims[i].Addr() }); err != nil {
		return fail(err)
	}
	if f.observer, err = f.routedVia(func(i int) string { return f.stores[i].addr }); err != nil {
		return fail(err)
	}

	// Shard agents, each fronted by a control-plane shim.
	for s := 0; s < c.Shards; s++ {
		sn := &shardNode{}
		if err := f.startShard(sn, s, false); err != nil {
			return fail(err)
		}
		f.shards = append(f.shards, sn)
		shim, err := NewProxy(fmt.Sprintf("agent:%d", s), "127.0.0.1:0", sn.addr, c.Logf)
		if err != nil {
			return fail(err)
		}
		f.agentShims = append(f.agentShims, shim)
	}

	// Read plane: one deployment-owned announcer, then per-replica shims
	// over both its links and the replica itself.
	if c.Replicas > 0 {
		if f.announcer, err = ctrl.NewAnnouncer("127.0.0.1:0", c.JobID, c.Logf); err != nil {
			return fail(fmt.Errorf("chaos: announcer: %w", err))
		}
		for r := 0; r < c.Replicas; r++ {
			if err := f.startReplica(r); err != nil {
				return fail(err)
			}
		}
	}
	return f, nil
}

// startReplica stands replica r up behind its own announce-plane and
// data-plane shims. The replica's routed store uses the fleet's
// canonical backend names (so key placement agrees with every writer)
// but dials over the replica's private shims — partitioning replica r
// touches nobody else's links.
func (f *Fleet) startReplica(r int) error {
	rn := &replicaNode{}
	annShim, err := NewProxy(fmt.Sprintf("replica:%d:announce", r), "127.0.0.1:0", f.announcer.Addr(), f.logf)
	if err != nil {
		return err
	}
	rn.annShim = annShim
	for i, sn := range f.stores {
		shim, err := NewProxy(fmt.Sprintf("replica:%d:store:%d", r, i), "127.0.0.1:0", sn.addr, f.logf)
		if err != nil {
			rn.close()
			return err
		}
		rn.storeShims = append(rn.storeShims, shim)
	}
	if rn.store, err = f.routedVia(func(i int) string { return rn.storeShims[i].Addr() }); err != nil {
		rn.close()
		return err
	}
	rn.rep, err = serve.Start(serve.Config{
		JobID:        f.cfg.JobID,
		Store:        rn.store,
		AnnounceAddr: rn.annShim.Addr(),
		ResyncEvery:  250 * time.Millisecond,
		Logf:         f.logf,
	})
	if err != nil {
		rn.close()
		return fmt.Errorf("chaos: replica %d: %w", r, err)
	}
	f.replicas = append(f.replicas, rn)
	return nil
}

func (rn *replicaNode) close() {
	if rn.rep != nil {
		rn.rep.Close()
	}
	if rn.store != nil {
		rn.store.Close()
	}
	if rn.annShim != nil {
		rn.annShim.Close()
	}
	for _, p := range rn.storeShims {
		p.Close()
	}
}

// routedVia builds a RoutedStore over the canonical backend names, each
// backend dialed at the address dialAddr(i) chooses.
func (f *Fleet) routedVia(dialAddr func(i int) string) (objstore.Store, error) {
	backends := make([]objstore.Backend, len(f.stores))
	for i := range f.stores {
		cl, err := objstore.Dial(dialAddr(i), objstore.ClientConfig{PoolSize: 4, DialTimeout: 5 * time.Second})
		if err != nil {
			return nil, fmt.Errorf("chaos: dial store %d: %w", i, err)
		}
		backends[i] = objstore.Backend{Name: f.storeShims[i].Addr(), Store: cl}
	}
	return objstore.NewRouted(backends)
}

// storeSpec is what shard agents dial: every shard-side shim, routed.
func (f *Fleet) storeSpec() string {
	spec := ""
	for i, shim := range f.storeShims {
		if i > 0 {
			spec += ","
		}
		spec += shim.Addr()
	}
	return spec
}

// startStore launches store i. On restart the server must rebind the
// node's original address: the observer, the routed clients, and both
// shims all hold the raw address, so a restarted store that moved would
// silently drop out of the fleet.
func (f *Fleet) startStore(sn *storeNode, i int, restart bool) error {
	bind := "127.0.0.1:0"
	if restart {
		bind = sn.addr
	}
	if f.cfg.Procs {
		args := []string{"-addr", bind, "-stats", "0"}
		if sn.dir != "" {
			args = append(args,
				"-data-dir", sn.dir,
				"-fsync", f.cfg.Fsync,
				"-compact-ratio", fmt.Sprint(f.cfg.CompactRatio),
			)
			if f.cfg.DiskPutDelay > 0 {
				args = append(args, "-put-delay", f.cfg.DiskPutDelay.String())
			}
			if f.cfg.DiskSyncDelay > 0 {
				args = append(args, "-sync-delay", f.cfg.DiskSyncDelay.String())
			}
		}
		// On restart the fixed port may be momentarily unavailable; a
		// failed bind makes the child exit before printing its address.
		var ch *child
		var err error
		for attempt := 0; ; attempt++ {
			ch, err = startChild(f.logf, fmt.Sprintf("objstored[%d]", i), f.cfg.Bins.Objstored, args...)
			if err == nil || !restart || attempt >= 10 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			return err
		}
		sn.proc, sn.addr, sn.alive = ch, ch.addr, true
		return nil
	}
	var backend objstore.Store
	if sn.dir != "" {
		policy, interval, err := objstore.ParseFsync(f.cfg.Fsync)
		if err != nil {
			return err
		}
		ds, err := objstore.NewDiskStore(objstore.DiskConfig{
			Dir:          sn.dir,
			Fsync:        policy,
			SyncInterval: interval,
			CompactRatio: f.cfg.CompactRatio,
			SyncDelay:    f.cfg.DiskSyncDelay,
			Logf:         f.logf,
		})
		if err != nil {
			return fmt.Errorf("chaos: store %d disk backend: %w", i, err)
		}
		sn.disk = ds
		backend = ds
	} else {
		backend = objstore.NewMemStore(objstore.MemConfig{})
	}
	if f.cfg.DiskPutDelay > 0 {
		slow := objstore.NewSlowStore(backend)
		slow.SetPutDelay(f.cfg.DiskPutDelay)
		backend = slow
	}
	// A restart rebinds an address the dead listener just vacated; give
	// the kernel a beat if the port is momentarily in transition.
	var srv *objstore.Server
	var err error
	for attempt := 0; ; attempt++ {
		srv, err = objstore.NewServer(bind, backend, objstore.ServerConfig{})
		if err == nil || !restart || attempt >= 50 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("chaos: store %d listen %s: %w", i, bind, err)
	}
	sn.srv, sn.addr, sn.alive = srv, srv.Addr(), true
	return nil
}

// KillStore crashes store i without any flush: SIGKILL in process
// mode, listener teardown plus DiskStore.Crash in-process. Only valid
// for disk-backed fleets — killing a MemStore is unrecoverable data
// loss, not a crash.
func (f *Fleet) KillStore(i int) error {
	sn := f.stores[i]
	if sn.dir == "" {
		return fmt.Errorf("chaos: kill-store requires the disk store backend")
	}
	if !sn.alive {
		return nil
	}
	if sn.proc != nil {
		sn.proc.kill()
		sn.proc = nil
	} else {
		sn.srv.Close()
		sn.srv = nil
		sn.disk.Crash()
		sn.disk = nil
	}
	sn.alive = false
	f.logf("chaos: killed store %d", i)
	return nil
}

// RestartStore brings a killed store back from its on-disk log at its
// original address and drops stale shim connections so clients
// re-dial.
func (f *Fleet) RestartStore(i int) error {
	sn := f.stores[i]
	if sn.alive {
		return fmt.Errorf("chaos: store %d is already running", i)
	}
	if err := f.startStore(sn, i, true); err != nil {
		return err
	}
	f.storeShims[i].DropConns()
	f.ctrlShims[i].DropConns()
	for _, rn := range f.replicas {
		rn.storeShims[i].DropConns()
	}
	f.logf("chaos: restarted store %d at %s from %s", i, sn.addr, sn.dir)
	return nil
}

// StoreAlive reports whether store i is currently running.
func (f *Fleet) StoreAlive(i int) bool { return f.stores[i].alive }

// AllStoresAlive reports whether every store is up — the gate for
// store-side invariant checks (a dead store makes observer reads fail
// by design, not by bug).
func (f *Fleet) AllStoresAlive() bool {
	for _, sn := range f.stores {
		if !sn.alive {
			return false
		}
	}
	return true
}

func (f *Fleet) startShard(sn *shardNode, s int, rejoin bool) error {
	if f.cfg.Procs {
		args := []string{
			"-addr", "127.0.0.1:0",
			"-stores", f.storeSpec(),
			"-job", f.cfg.JobID,
			"-shard", fmt.Sprint(s),
			"-shards", fmt.Sprint(f.cfg.Shards),
			"-seed", fmt.Sprint(f.cfg.Seed),
			"-batch", fmt.Sprint(f.cfg.Batch),
			"-policy", policyFlag(f.cfg.Policy),
			"-quant-bits", fmt.Sprint(f.cfg.QuantBits),
			"-op-timeout", f.cfg.OpTimeout.String(),
			"-connect-wait", "10s",
			fmt.Sprintf("-recover=%v", rejoin),
		}
		ch, err := startChild(f.logf, fmt.Sprintf("shardd[%d]", s), f.cfg.Bins.Shardd, args...)
		if err != nil {
			return err
		}
		sn.proc, sn.addr, sn.alive = ch, ch.addr, true
		return nil
	}
	ecfg := ckpt.Config{Policy: f.cfg.Policy, ChunkRows: 64}
	if f.cfg.QuantBits > 0 {
		ecfg.Quant = quantParams(f.cfg.QuantBits)
	}
	host, err := shardhost.Start(shardhost.Config{
		JobID:       f.cfg.JobID,
		Shard:       s,
		Shards:      f.cfg.Shards,
		StoreAddr:   f.storeSpec(),
		Seed:        f.cfg.Seed,
		BatchSize:   f.cfg.Batch,
		TableRows:   f.cfg.TableRows,
		Dim:         f.cfg.Dim,
		Engine:      ecfg,
		Recover:     rejoin,
		OpTimeout:   f.cfg.OpTimeout,
		ConnectWait: 10 * time.Second,
		Logf:        f.logf,
	})
	if err != nil {
		return fmt.Errorf("chaos: shard %d: %w", s, err)
	}
	sn.host, sn.addr, sn.alive = host, host.Addr(), true
	return nil
}

// --- fault surface -------------------------------------------------

// StoreShim returns store i's shard-side shim (the data-plane link all
// agents share to that store).
func (f *Fleet) StoreShim(i int) *Proxy { return f.storeShims[i] }

// CtrlStoreShim returns store i's controller-side shim (the leader's
// own store link, including the lease register when i is the anchor).
func (f *Fleet) CtrlStoreShim(i int) *Proxy { return f.ctrlShims[i] }

// AgentShim returns shard s's control-plane shim (controller -> agent).
func (f *Fleet) AgentShim(s int) *Proxy { return f.agentShims[s] }

// AnchorStore returns the index of the store the control keys (lease
// register, membership) are pinned to: the smallest canonical name.
func (f *Fleet) AnchorStore() int {
	anchor := 0
	for i := 1; i < len(f.storeShims); i++ {
		if f.storeShims[i].Addr() < f.storeShims[anchor].Addr() {
			anchor = i
		}
	}
	return anchor
}

// Stores and Shards report the topology size.
func (f *Fleet) Stores() int { return len(f.stores) }
func (f *Fleet) Shards() int { return len(f.shards) }

// Replicas reports the serving-replica count.
func (f *Fleet) Replicas() int { return len(f.replicas) }

// ReplicaShims returns every link replica r owns — its announce-plane
// shim plus its per-store data-plane shims. Faulting all of them is
// "partition the replica".
func (f *Fleet) ReplicaShims(r int) []*Proxy {
	rn := f.replicas[r]
	out := []*Proxy{rn.annShim}
	out = append(out, rn.storeShims...)
	return out
}

// ReplicaServed reports replica r's currently-served checkpoint
// (-1, 0 before the first sync completes).
func (f *Fleet) ReplicaServed(r int) (int, uint64) { return f.replicas[r].rep.Served() }

// ReplicaAddr returns replica r's lookup address. The checker dials it
// directly — the lookup link itself is never degraded, only the
// replica's subscription and store links are.
func (f *Fleet) ReplicaAddr(r int) string { return f.replicas[r].rep.Addr() }

// ShardAlive reports whether shard s is currently running.
func (f *Fleet) ShardAlive(s int) bool { return f.shards[s].alive }

// Observer returns the unshimmed routed store the invariant checker
// reads ground truth through. It routes identically to the fleet's own
// stores but its links never carry injected faults.
func (f *Fleet) Observer() objstore.Store { return f.observer }

// KillShard crashes shard s: SIGKILL in process mode, Host.Kill
// in-process. Nothing is rolled back — in-flight attempts leave debris,
// like a real crash.
func (f *Fleet) KillShard(s int) {
	sn := f.shards[s]
	if !sn.alive {
		return
	}
	if sn.proc != nil {
		sn.proc.kill()
		sn.proc = nil
	} else if sn.host != nil {
		sn.host.Kill()
		sn.host = nil
	}
	sn.alive = false
	f.logf("chaos: killed shard %d", s)
}

// RestartShard brings a killed shard back with -recover: the replayed
// engine state comes from the store's manifests, and the agent shim is
// retargeted at the new process's address so the fleet-facing address
// never changes.
func (f *Fleet) RestartShard(s int) error {
	sn := f.shards[s]
	if sn.alive {
		return fmt.Errorf("chaos: shard %d is already running", s)
	}
	if err := f.startShard(sn, s, true); err != nil {
		return err
	}
	f.agentShims[s].SetTarget(sn.addr)
	f.agentShims[s].DropConns()
	f.logf("chaos: restarted shard %d at %s", s, sn.addr)
	return nil
}

// --- controller ----------------------------------------------------

func (f *Fleet) register(holder string) (*ctrl.Register, error) {
	return ctrl.NewRegister(ctrl.RegisterConfig{
		JobID:  f.cfg.JobID,
		Store:  f.ctrlStore,
		Holder: holder,
		TTL:    f.cfg.LeaseTTL,
		Settle: 2 * time.Millisecond,
	})
}

func (f *Fleet) newController(lease *ctrl.Lease, holder string) error {
	agents := make([]string, len(f.agentShims))
	for s, shim := range f.agentShims {
		agents[s] = shim.Addr()
	}
	c, err := ctrl.NewController(ctrl.ControllerConfig{
		JobID:        f.cfg.JobID,
		Store:        f.ctrlStore,
		Agents:       agents,
		Lease:        lease,
		Announcer:    f.announcer,
		DialTimeout:  5 * time.Second,
		Logf:         f.logf,
		AfterPrepare: func() { f.fire(&f.afterPrepare) },
		AfterCommit:  func() { f.fire(&f.afterCommit) },
	})
	if err != nil {
		return fmt.Errorf("chaos: controller %q: %w", holder, err)
	}
	f.ctl, f.lease, f.holder = c, lease, holder
	return nil
}

// Lead elects holder as the leader: acquires the lease and discovers
// the fleet through the shims.
func (f *Fleet) Lead(ctx context.Context, holder string) error {
	reg, err := f.register(holder)
	if err != nil {
		return err
	}
	lease, err := reg.Acquire(ctx, 0)
	if err != nil {
		return fmt.Errorf("chaos: %q acquire lease: %w", holder, err)
	}
	return f.newController(lease, holder)
}

// Failover silently abandons the current leader (no lease release — it
// "died") and promotes holder, who must wait out the TTL exactly like a
// real standby.
func (f *Fleet) Failover(ctx context.Context, holder string) error {
	if f.ctl != nil {
		f.ctl.Close()
		f.ctl, f.lease = nil, nil
	}
	reg, err := f.register(holder)
	if err != nil {
		return err
	}
	lease, err := reg.WaitAcquire(ctx)
	if err != nil {
		return fmt.Errorf("chaos: %q takeover: %w", holder, err)
	}
	return f.newController(lease, holder)
}

// Leader returns the current leader's holder name ("" when none).
func (f *Fleet) Leader() string {
	if f.ctl == nil {
		return ""
	}
	return f.holder
}

// Checkpoint drives one composite checkpoint through the current
// leader.
func (f *Fleet) Checkpoint(ctx context.Context, step uint64) (*wire.Manifest, error) {
	if f.ctl == nil {
		return nil, errors.New("chaos: no leader; call Lead first")
	}
	return f.ctl.Checkpoint(ctx, step)
}

// NextID returns the leader's next checkpoint ID (-1 when no leader).
func (f *Fleet) NextID() int {
	if f.ctl == nil {
		return -1
	}
	return f.ctl.NextID()
}

// SetAfterPrepare arms a one-shot hook that fires between the next
// checkpoint's prepare and publish phases — the window where a fault
// must cause an abort, never a restorable composite.
func (f *Fleet) SetAfterPrepare(fn func()) {
	f.hookMu.Lock()
	f.afterPrepare = fn
	f.hookMu.Unlock()
}

// SetAfterCommit arms a one-shot hook that fires after the next
// composite manifest lands, before agents finalize — the window where a
// fault must NOT invalidate the checkpoint.
func (f *Fleet) SetAfterCommit(fn func()) {
	f.hookMu.Lock()
	f.afterCommit = fn
	f.hookMu.Unlock()
}

func (f *Fleet) fire(slot *func()) {
	f.hookMu.Lock()
	fn := *slot
	*slot = nil
	f.hookMu.Unlock()
	if fn != nil {
		fn()
	}
}

// AgentStatus probes shard s's agent over a direct, unshimmed
// connection — the checker's view is never degraded by the faults under
// test.
func (f *Fleet) AgentStatus(ctx context.Context, s int) (*ctrl.StatusReply, error) {
	sn := f.shards[s]
	if !sn.alive {
		return nil, fmt.Errorf("chaos: shard %d is dead", s)
	}
	cl, err := ctrl.DialAgent(sn.addr, ctrl.ClientConfig{DialTimeout: 5 * time.Second})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return cl.Status(ctx)
}

// Close tears the whole topology down.
func (f *Fleet) Close() {
	if f.ctl != nil {
		f.ctl.Close()
	}
	for _, rn := range f.replicas {
		rn.close()
	}
	if f.announcer != nil {
		f.announcer.Close()
	}
	for _, sn := range f.shards {
		if sn.proc != nil {
			sn.proc.kill()
		}
		if sn.host != nil {
			sn.host.Close()
		}
	}
	for _, shims := range [][]*Proxy{f.agentShims, f.storeShims, f.ctrlShims} {
		for _, p := range shims {
			p.Close()
		}
	}
	if f.ctrlStore != nil {
		f.ctrlStore.Close()
	}
	if f.observer != nil {
		f.observer.Close()
	}
	for _, sn := range f.stores {
		if sn.proc != nil {
			sn.proc.kill()
		}
		if sn.srv != nil {
			sn.srv.Close()
		}
		if sn.disk != nil {
			sn.disk.Close()
		}
	}
	if f.ownsDataRoot {
		os.RemoveAll(f.dataRoot)
	}
}

// quantParams builds the asymmetric quantization params shardd's
// -quant-bits flag maps to.
func quantParams(bits int) quant.Params {
	return quant.Params{Method: quant.MethodAsymmetric, Bits: bits}
}

// policyFlag maps a policy kind to shardd's -policy flag value.
func policyFlag(p ckpt.PolicyKind) string {
	switch p {
	case ckpt.PolicyFull:
		return "full"
	case ckpt.PolicyConsecutive:
		return "consecutive"
	case ckpt.PolicyIntermittent:
		return "intermittent"
	default:
		return "oneshot"
	}
}

// --- forked children -----------------------------------------------

// child is a forked daemon whose first stdout line is its bound
// address (the objstored/shardd convention).
type child struct {
	name string
	cmd  *exec.Cmd
	addr string
}

func startChild(logf func(format string, args ...any), name, bin string, args ...string) (*child, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: start %s: %w", name, err)
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			logf("%s: %s", name, sc.Text())
		}
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			addrCh <- sc.Text()
		}
		close(addrCh)
		for sc.Scan() {
			logf("%s: %s", name, sc.Text())
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("chaos: %s exited before printing its address", name)
		}
		return &child{name: name, cmd: cmd, addr: addr}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("chaos: %s did not print an address within 30s", name)
	}
}

// kill SIGKILLs the child and reaps it.
func (c *child) kill() {
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
	c.cmd.Wait()
}
