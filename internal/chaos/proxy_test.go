package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/objstore"
)

// proxiedStore stands up a MemStore-backed TCP server behind a shim and
// returns a client dialed through it.
func proxiedStore(t *testing.T) (*Proxy, objstore.Store) {
	t.Helper()
	backend := objstore.NewMemStore(objstore.MemConfig{})
	srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	px, err := NewProxy("store", "127.0.0.1:0", srv.Addr(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	cl, err := objstore.Dial(px.Addr(), objstore.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return px, cl
}

func TestProxyTransparent(t *testing.T) {
	_, cl := proxiedStore(t)
	ctx := context.Background()
	if err := cl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestProxyLatency(t *testing.T) {
	px, cl := proxiedStore(t)
	ctx := context.Background()
	if err := cl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	px.SetLink(Down, LinkConfig{Latency: 100 * time.Millisecond})
	start := time.Now()
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("shaped Get took %v, want >= 100ms", d)
	}
	px.Heal()
	start = time.Now()
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 90*time.Millisecond {
		t.Fatalf("healed Get took %v, want fast", d)
	}
}

func TestProxyBandwidth(t *testing.T) {
	px, cl := proxiedStore(t)
	ctx := context.Background()
	// 256 KiB at 1 MiB/s shared uplink: >= ~250ms however many conns
	// the client pool spreads the Put over.
	px.SetLink(Up, LinkConfig{Bandwidth: 1 << 20})
	start := time.Now()
	if err := cl.Put(ctx, "big", make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("256KiB at 1MiB/s took %v, want >= 200ms", d)
	}
}

func TestProxyPartitionAndHeal(t *testing.T) {
	px, cl := proxiedStore(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	px.Partition()
	if err := cl.Put(ctx, "k2", []byte("v")); !errors.Is(err, objstore.ErrStoreUnavailable) {
		t.Fatalf("Put through partition = %v, want ErrStoreUnavailable", err)
	}
	px.Heal()
	if err := cl.Put(ctx, "k2", []byte("v")); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
}

func TestProxyStallHitsDeadline(t *testing.T) {
	px, cl := proxiedStore(t)
	px.SetLink(Up, LinkConfig{Stall: true})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err := cl.Put(ctx, "k", []byte("v"))
	if !errors.Is(err, objstore.ErrStoreUnavailable) {
		t.Fatalf("Put through stall = %v, want ErrStoreUnavailable (deadline)", err)
	}
	// Lifting the stall restores service for fresh requests.
	px.Heal()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := cl.Put(ctx2, "k", []byte("v")); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
}

// TestProxyDropConnsIsNonEvent: a transient connection reset between
// requests must be absorbed by the client's stale-pool retry — the next
// request redials instead of surfacing ErrStoreUnavailable.
func TestProxyDropConnsIsNonEvent(t *testing.T) {
	px, cl := proxiedStore(t)
	ctx := context.Background()
	if err := cl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	px.DropConns()
	if err := cl.Put(ctx, "k2", []byte("v")); err != nil {
		t.Fatalf("Put after conn blip = %v, want stale-pool retry to absorb it", err)
	}
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatalf("Get after conn blip: %v", err)
	}
}

func TestProxySetTarget(t *testing.T) {
	backendA := objstore.NewMemStore(objstore.MemConfig{})
	srvA, err := objstore.NewServer("127.0.0.1:0", backendA, objstore.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	backendB := objstore.NewMemStore(objstore.MemConfig{})
	srvB, err := objstore.NewServer("127.0.0.1:0", backendB, objstore.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	px, err := NewProxy("retarget", "127.0.0.1:0", srvA.Addr(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	cl, err := objstore.Dial(px.Addr(), objstore.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Put(ctx, "k", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Retarget to B, drop pooled conns so the client redials.
	px.SetTarget(srvB.Addr())
	px.DropConns()
	for i := 0; i < 3; i++ { // the first call may eat the broken conn
		if err := cl.Put(ctx, "k", []byte("b")); err == nil {
			break
		}
	}
	if _, err := backendB.Get(ctx, "k"); err != nil {
		t.Fatalf("key did not land on retargeted backend: %v", err)
	}
}
