package chaos

// The builtin campaign matrix. Every campaign asserts, after every
// step, the four invariants in Checker: no restorable partial
// composite, RestoreLatest bit-identical to the reference replica,
// gapless checkpoint-ID convergence across rejoin/failover, and — when
// the fleet hosts serving replicas — serve consistency (every lookup
// answered from exactly one committed checkpoint, bit-identically).
//
// The matrix is expressed as data — the same Scenario values run
// in-process under `go test -race` (the small matrix, per PR) and over
// forked objstored/shardd processes via cmd/chaosctl (the full matrix,
// nightly).

// fleet3x3 is the standard campaign topology: three shard agents over
// three stores, a 500ms lease so failover scenarios settle quickly, and
// a 4s op deadline so stalled-store scenarios unstick within a step.
var fleet3x3 = FleetSpec{Shards: 3, Stores: 3, LeaseTTLMs: 500, OpTimeoutMs: 4000}

// fleetServe3x3 adds one serving replica to the standard topology —
// the shape for read-plane campaigns, with the serve-consistency
// invariant checked after every step.
var fleetServe3x3 = FleetSpec{Shards: 3, Stores: 3, Replicas: 1, LeaseTTLMs: 500, OpTimeoutMs: 4000}

// fleetDisk3x3 is the same topology pinned to the disk store backend —
// the shape for campaigns that kill stores (a killed MemStore is data
// loss, not a crash). Delays inject slow-device latency in ms.
func fleetDisk3x3(fsync string, putDelayMs, syncDelayMs int) FleetSpec {
	fs := fleet3x3
	fs.StoreBackend = "disk"
	fs.Fsync = fsync
	fs.DiskPutDelayMs = putDelayMs
	fs.DiskSyncDelayMs = syncDelayMs
	return fs
}

// BuiltinScenarios returns the full campaign matrix.
func BuiltinScenarios() []*Scenario {
	return []*Scenario{
		{
			Name:        "slow-store-throttle",
			Description: "one store throttled to a trickle mid-campaign; commits slow down but stay correct",
			Fleet:       fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "fault", Target: "store:0", Fault: &FaultSpec{BandwidthBps: 128_000}},
				{Op: "checkpoint", Step: 8},
				{Op: "heal"},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name:        "asymmetric-latency",
			Description: "one agent's response path and one store's request path degraded independently",
			Fleet:       fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "fault", Target: "agent:0", Fault: &FaultSpec{LatencyMs: 80, JitterMs: 40, Direction: "down"}},
				{Op: "fault", Target: "store:1", Fault: &FaultSpec{LatencyMs: 50, Direction: "up"}},
				{Op: "checkpoint", Step: 8},
				{Op: "heal"},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name: "partition-leader-mid-commit",
			Description: "leader loses every link between publish and commit; abort can't reach the " +
				"agents, so a standby must fence the torn attempt away via epoch adoption",
			Fleet: fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "checkpoint", Step: 8, At: "after-prepare", Target: "leader",
					Fault: &FaultSpec{Partition: true}, Expect: "fail"},
				{Op: "heal"},
				{Op: "failover", Holder: "leader-1"},
				{Op: "checkpoint", Step: 8},
				{Op: "sweep"},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name: "partition-anchor-store-fence",
			Description: "the lease store vanishes between publish and commit; the fence renewal must " +
				"refuse to write the composite manifest",
			Fleet: fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "checkpoint", Step: 8, At: "after-prepare", Target: "ctrlstore:anchor",
					Fault: &FaultSpec{Partition: true}, Expect: "fail"},
				{Op: "heal"},
				{Op: "checkpoint", Step: 8},
				{Op: "sweep"},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name:        "partition-anchor-store-outage",
			Description: "the anchor store drops off the network entirely before a commit attempt",
			Fleet:       fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "fault", Target: "store:anchor,ctrlstore:anchor", Fault: &FaultSpec{Partition: true}},
				{Op: "checkpoint", Step: 8, Expect: "fail"},
				{Op: "heal"},
				{Op: "checkpoint", Step: 8},
				{Op: "sweep"},
			},
		},
		{
			Name:        "kill-during-publish",
			Description: "one shard crashes between prepare and publish; the attempt aborts and the shard rejoins",
			Fleet:       fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "checkpoint", Step: 8, At: "after-prepare", Kill: "shard:1", Expect: "fail"},
				{Op: "restart", Shard: 1},
				{Op: "checkpoint", Step: 8},
				{Op: "sweep"},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name:        "correlated-double-kill",
			Description: "two shards crash in the same commit window — a correlated failure, not independent noise",
			Fleet:       fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "checkpoint", Step: 8, At: "after-prepare", Kill: "shard:1,shard:2", Expect: "fail"},
				{Op: "restart", Shard: 1},
				{Op: "restart", Shard: 2},
				{Op: "checkpoint", Step: 8},
				{Op: "sweep"},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name: "kill-during-finalize",
			Description: "a shard crashes after the composite manifest lands but before finalize; the " +
				"checkpoint must survive and the rejoined shard must converge on it",
			Fleet: fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				// Expect OK: past the commit point, a crash may no longer
				// invalidate the checkpoint.
				{Op: "checkpoint", Step: 8, At: "after-commit", Kill: "shard:1"},
				{Op: "restart", Shard: 1},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name: "stall-store-mid-commit",
			Description: "every data-plane store goes silent (connections up, zero bytes) during publish; " +
				"agents must save themselves with op deadlines",
			Fleet: FleetSpec{Shards: 3, Stores: 3, LeaseTTLMs: 500, OpTimeoutMs: 1500},
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "checkpoint", Step: 8, At: "after-prepare", Target: "store:0,store:1,store:2",
					Fault: &FaultSpec{Stall: true, Direction: "up"}, Expect: "fail"},
				{Op: "heal"},
				{Op: "checkpoint", Step: 8},
				{Op: "sweep"},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name: "kill9-objstored-mid-commit",
			Description: "the anchor store is killed -9 between prepare and commit and restarted from its " +
				"on-disk segment log; the torn attempt aborts, recovery truncates the torn tail, and the " +
				"retried commit plus RestoreLatest are bit-identical",
			Fleet: fleetDisk3x3("always", 0, 0),
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				// The lease renewal immediately before the composite Put
				// lands on the anchor, so killing it in this window aborts
				// the commit deterministically — with writes torn mid-Put.
				{Op: "checkpoint", Step: 8, At: "after-prepare", Kill: "store:anchor", Expect: "fail"},
				{Op: "restart-store", Target: "store:anchor"},
				{Op: "checkpoint", Step: 8},
				{Op: "sweep"},
				{Op: "checkpoint", Step: 12},
			},
		},
		{
			Name: "commit-under-slow-fsync",
			Description: "every disk write and fsync pays injected device latency under fsync=always; " +
				"commits slow down but stay correct, and a kill-9/restart cycle at the end proves the " +
				"synced log restores bit-identically",
			Fleet: fleetDisk3x3("always", 1, 2),
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "checkpoint", Step: 8},
				{Op: "kill-store", Target: "store:1"},
				{Op: "restart-store", Target: "store:1"},
				{Op: "checkpoint", Step: 12},
				{Op: "sweep"},
			},
		},
		{
			Name: "partition-replica-across-commits",
			Description: "a serving replica is partitioned off both its announce stream and every store " +
				"while two composites commit; it must keep serving its last checkpoint bit-identically " +
				"(stale, never torn) and converge bit-exactly once healed",
			Fleet: fleetServe3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "serve-wait"},
				{Op: "fault", Target: "replica:0", Fault: &FaultSpec{Partition: true}},
				{Op: "checkpoint", Step: 8},
				{Op: "checkpoint", Step: 12},
				{Op: "heal", Target: "replica:0"},
				{Op: "serve-wait"},
				{Op: "checkpoint", Step: 16},
				{Op: "serve-wait"},
			},
		},
		{
			Name:        "flap-agent-partition",
			Description: "agents drop out and heal repeatedly across consecutive commits",
			Fleet:       fleet3x3,
			Steps: []Step{
				{Op: "lead", Holder: "leader-0"},
				{Op: "checkpoint", Step: 4},
				{Op: "fault", Target: "agent:1", Fault: &FaultSpec{Partition: true}},
				{Op: "checkpoint", Step: 8, Expect: "fail"},
				{Op: "heal", Target: "agent:1"},
				{Op: "checkpoint", Step: 8},
				{Op: "fault", Target: "agent:2", Fault: &FaultSpec{Partition: true}},
				{Op: "checkpoint", Step: 12, Expect: "fail"},
				{Op: "heal", Target: "agent:2"},
				{Op: "checkpoint", Step: 12},
				{Op: "sweep"},
			},
		},
	}
}

// smallMatrix names the per-PR subset: one throttle campaign, one crash
// campaign, one partition+failover campaign, the disk-backed store-kill
// campaign, and the read-plane partition campaign — each exercising a
// different commit window or plane, all fast enough for `-race` in CI.
var smallMatrix = []string{
	"slow-store-throttle",
	"kill-during-publish",
	"partition-leader-mid-commit",
	"kill9-objstored-mid-commit",
	"partition-replica-across-commits",
}

// SmallScenarios returns the per-PR subset of the builtin matrix.
func SmallScenarios() []*Scenario {
	var out []*Scenario
	for _, name := range smallMatrix {
		out = append(out, FindScenario(name))
	}
	return out
}

// FindScenario returns the builtin scenario with the given name, nil if
// none.
func FindScenario(name string) *Scenario {
	for _, sc := range BuiltinScenarios() {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}
