// Package chaos is the fault-injection harness for the checkpoint
// fleet: a programmable TCP shim (Proxy) that degrades any single link,
// a fleet composer (Fleet) that stands up stores + shard agents +
// controller with every link behind a shim, and a declarative scenario
// runner (Scenario/Runner) that executes timed fault campaigns while an
// invariant checker proves, after every step, that the commit protocol
// never left a restorable partial composite, that RestoreLatest lands
// on a complete checkpoint bit-identically, and that rejoin/failover
// converges with no checkpoint-ID gaps.
//
// Everything here reuses the production stack unmodified — real
// objstore servers and clients, real control-protocol agents, real
// lease register — so a scenario that passes is evidence about the
// system, not about a simulation of it.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Direction selects which half of a proxied link a LinkConfig applies
// to, from the connecting client's point of view.
type Direction int

const (
	// Up shapes client -> server traffic (requests, uploads).
	Up Direction = iota
	// Down shapes server -> client traffic (responses, downloads).
	Down
)

func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// LinkConfig is the programmable state of one direction of a link. The
// zero value is a transparent wire.
type LinkConfig struct {
	// Latency delays every chunk of forwarded bytes.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) on top of
	// Latency per forwarded chunk.
	Jitter time.Duration
	// Bandwidth, if positive, caps the direction to this many bytes per
	// second, shared across every connection on the link (a link has one
	// pipe, however many TCP streams cross it).
	Bandwidth float64
	// DropProb, if positive, is the per-chunk probability that the
	// connection is torn down instead of forwarding — the TCP analogue
	// of packet loss that outlasts retransmission.
	DropProb float64
	// Stall, if true, freezes the direction: bytes are accepted from the
	// source but not forwarded until the stall is lifted or the
	// connection dies. Unlike Partition the TCP connection stays up —
	// the peer sees a healthy, silent wire and must save itself with
	// deadlines.
	Stall bool
}

// Proxy is a TCP shim fronting one listener of the fleet. Connections
// accepted on Addr are forwarded to the target, each direction shaped
// by its LinkConfig; all knobs are runtime-reconfigurable and take
// effect on in-flight connections at the next forwarded chunk.
type Proxy struct {
	name string
	logf func(format string, args ...any)
	ln   net.Listener

	mu          sync.Mutex
	target      string
	up, down    LinkConfig
	partitioned bool
	// nextFree are the per-direction token-bucket cursors for Bandwidth.
	nextFree [2]time.Time
	conns    map[net.Conn]net.Conn // client conn -> server conn
	rng      *rand.Rand
	closed   bool
}

// NewProxy listens on listenAddr (use "127.0.0.1:0") and forwards to
// target. name labels log lines; logf may be nil.
func NewProxy(name, listenAddr, target string, logf func(format string, args ...any)) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy %s listen: %w", name, err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p := &Proxy{
		name:   name,
		logf:   logf,
		ln:     ln,
		target: target,
		conns:  make(map[net.Conn]net.Conn),
		rng:    rand.New(rand.NewSource(rand.Int63())),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the shim's listen address — what clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Name returns the label the proxy was created with.
func (p *Proxy) Name() string { return p.name }

// Target returns the current forwarding address.
func (p *Proxy) Target() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// SetTarget points the shim at a new backend address. Existing
// connections keep their original backend; new ones get the new target.
// This is how a restarted process (new ephemeral port) keeps its stable
// fleet-facing address.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
	p.logf("chaos: %s: target -> %s", p.name, target)
}

// SetLink installs cfg as dir's shaping state, effective immediately.
func (p *Proxy) SetLink(dir Direction, cfg LinkConfig) {
	p.mu.Lock()
	if dir == Up {
		p.up = cfg
	} else {
		p.down = cfg
	}
	p.mu.Unlock()
	p.logf("chaos: %s: %s link = %+v", p.name, dir, cfg)
}

// Link returns dir's current shaping state.
func (p *Proxy) Link(dir Direction) LinkConfig {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dir == Up {
		return p.up
	}
	return p.down
}

// Partition hard-partitions the link: every live connection is torn
// down and new ones are accepted and immediately closed (connection
// reset, not a silent blackhole — use Stall for that).
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.closeConnsLocked()
	p.mu.Unlock()
	p.logf("chaos: %s: partitioned", p.name)
}

// Heal clears the partition and both directions' shaping, restoring a
// transparent wire.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.up, p.down = LinkConfig{}, LinkConfig{}
	p.mu.Unlock()
	p.logf("chaos: %s: healed", p.name)
}

// Partitioned reports whether the link is currently partitioned.
func (p *Proxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// DropConns tears down every live connection once, without changing the
// link state — a transient blip that forces clients onto fresh dials.
func (p *Proxy) DropConns() {
	p.mu.Lock()
	p.closeConnsLocked()
	p.mu.Unlock()
	p.logf("chaos: %s: dropped live conns", p.name)
}

func (p *Proxy) closeConnsLocked() {
	for c, s := range p.conns {
		c.Close()
		s.Close()
	}
}

// Close shuts the shim down, closing the listener and all connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.closeConnsLocked()
	p.mu.Unlock()
	return p.ln.Close()
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		target := p.target
		p.mu.Unlock()
		go p.serve(conn, target)
	}
}

func (p *Proxy) serve(client net.Conn, target string) {
	server, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		p.logf("chaos: %s: dial %s: %v", p.name, target, err)
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[client] = server
	p.mu.Unlock()

	done := func() {
		// Either direction failing kills the pair: half-open proxied
		// connections would wedge the framed protocols behind them.
		client.Close()
		server.Close()
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
	}
	var once sync.Once
	go func() {
		p.pump(Up, client, server)
		once.Do(done)
	}()
	go func() {
		p.pump(Down, server, client)
		once.Do(done)
	}()
}

// chunkSize is the forwarding granularity: shaping decisions (latency,
// drop, stall, bandwidth pacing) apply per chunk, so even one large
// framed message feels a mid-transfer config change.
const chunkSize = 16 << 10

// pump copies src -> dst, applying dir's live LinkConfig per chunk.
func (p *Proxy) pump(dir Direction, src, dst net.Conn) {
	buf := make([]byte, chunkSize)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.shape(dir, n) {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				p.logf("chaos: %s: %s read: %v", p.name, dir, err)
			}
			return
		}
	}
}

// shape applies the current link state to a chunk of n bytes, blocking
// for injected delay. It returns false when the chunk must not be
// forwarded (drop decision or proxy shutdown).
func (p *Proxy) shape(dir Direction, n int) bool {
	for {
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			return false
		}
		cfg := p.up
		if dir == Down {
			cfg = p.down
		}
		if cfg.Stall {
			// Poll: a stall has no duration of its own, it lasts until
			// reconfigured or the connection is torn down.
			p.mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if cfg.DropProb > 0 && p.rng.Float64() < cfg.DropProb {
			p.mu.Unlock()
			return false
		}
		delay := cfg.Latency
		if cfg.Jitter > 0 {
			delay += time.Duration(p.rng.Int63n(int64(cfg.Jitter)))
		}
		if cfg.Bandwidth > 0 {
			// Shared token bucket (cf. objstore.Throttle): reserve this
			// chunk's transfer time on the link's cursor and wait out the
			// queue ahead of us.
			now := time.Now()
			cursor := p.nextFree[dir]
			if cursor.Before(now) {
				cursor = now
			}
			p.nextFree[dir] = cursor.Add(time.Duration(float64(n) / cfg.Bandwidth * float64(time.Second)))
			delay += cursor.Sub(now)
		}
		p.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		return true
	}
}
