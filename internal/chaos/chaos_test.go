package chaos

import (
	"context"
	"strings"
	"testing"
	"time"
)

func runScenario(t *testing.T, sc *Scenario, rcfg RunnerConfig) *Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rcfg.Logf = t.Logf
	res, err := Run(ctx, sc, rcfg)
	if err != nil {
		t.Fatalf("scenario %s: %v", sc.Name, err)
	}
	return res
}

// TestScenarioMatrix runs the builtin campaigns in-process — the small
// matrix under -short (the per-PR CI job), the full matrix otherwise.
func TestScenarioMatrix(t *testing.T) {
	scenarios := BuiltinScenarios()
	if testing.Short() {
		scenarios = SmallScenarios()
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res := runScenario(t, sc, RunnerConfig{})
			if !res.Passed() {
				for _, v := range res.Violations {
					t.Errorf("invariant violated: %s", v)
				}
			}
			if len(res.Committed) == 0 {
				t.Fatal("campaign committed no checkpoints — the scenario tested nothing")
			}
			for _, step := range res.Steps {
				t.Logf("step %d %-10s %5dms+%4dms %s", step.Index, step.Op, step.ExecMs, step.CheckMs, step.Detail)
			}
		})
	}
}

// TestSmallMatrixNamesExist guards the CI subset against renames.
func TestSmallMatrixNamesExist(t *testing.T) {
	if len(SmallScenarios()) < 3 {
		t.Fatal("small matrix must keep at least 3 campaigns")
	}
	for _, sc := range SmallScenarios() {
		if sc == nil {
			t.Fatal("small matrix names a scenario that no longer exists")
		}
	}
}

// TestCheckerFiresOnInjectedPartialComposite is the harness's red test:
// with the commit fence deliberately bypassed — a composite manifest
// written whose shard manifests were never stored — the invariant
// checker MUST report violations. A checker that stays green here would
// be decorative.
func TestCheckerFiresOnInjectedPartialComposite(t *testing.T) {
	sc := &Scenario{
		Name:  "red-partial-composite",
		Fleet: FleetSpec{Shards: 2, Stores: 2},
		Steps: []Step{
			{Op: "lead", Holder: "leader-0"},
			{Op: "checkpoint", Step: 4},
			{Op: "inject-partial-composite", ID: 1},
		},
	}
	res := runScenario(t, sc, RunnerConfig{AllowInjection: true})
	if res.Passed() {
		t.Fatal("checker stayed green with a torn composite manifest in the store")
	}
	byInv := map[string]bool{}
	for _, v := range res.Violations {
		byInv[v.Invariant] = true
	}
	if !byInv["complete-composites"] {
		t.Errorf("torn composite not reported as complete-composites violation: %v", res.Violations)
	}
	if !byInv["id-convergence"] {
		t.Errorf("unexpected composite ID not reported as id-convergence violation: %v", res.Violations)
	}
	// The violations must pinpoint the injected composite, and only the
	// steps after injection may be red.
	for _, step := range res.Steps[:2] {
		if len(step.Violations) != 0 {
			t.Errorf("step %d (%s) red before the injection: %v", step.Index, step.Op, step.Violations)
		}
	}
}

// TestInjectionGated proves scenarios can't corrupt state unless the
// runner explicitly allows it.
func TestInjectionGated(t *testing.T) {
	sc := &Scenario{
		Name:  "gated",
		Fleet: FleetSpec{Shards: 1, Stores: 1},
		Steps: []Step{
			{Op: "lead", Holder: "leader-0"},
			{Op: "checkpoint", Step: 2},
			{Op: "inject-partial-composite", ID: 1},
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := Run(ctx, sc, RunnerConfig{Logf: t.Logf})
	if err == nil || !strings.Contains(err.Error(), "AllowInjection") {
		t.Fatalf("injection without AllowInjection = %v, want gating error", err)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ParseScenario([]byte(`{"name":"x","steps":[{"op":"sleep","millis":5}]}`)); err == nil {
		t.Fatal("typo'd step field parsed silently")
	}
	sc, err := ParseScenario([]byte(`{
		"name": "ok",
		"fleet": {"shards": 2, "stores": 2},
		"steps": [
			{"op": "lead", "holder": "leader-0"},
			{"op": "checkpoint", "step": 4, "at": "after-prepare",
			 "target": "store:0", "fault": {"partition": true}, "expect": "fail"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Steps[1].Fault == nil || !sc.Steps[1].Fault.Partition {
		t.Fatalf("fault spec lost in parse: %+v", sc.Steps[1])
	}
}
