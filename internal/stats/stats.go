// Package stats provides the small statistical toolkit the experiment
// harness needs: empirical CDFs (Figure 3), percentiles, means, and
// moving summaries. All functions are deterministic and allocation-light.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted; it is not
// modified. An empty slice yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over observed samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. The input is copied.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q for
// q in (0, 1]. Quantile(0) returns the minimum sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points returns n evenly spaced (x, P(X<=x)) pairs spanning the sample
// range, suitable for plotting the CDF curve of Figure 3.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		var x float64
		if n == 1 {
			x = hi
		} else {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		pts[i] = Point{X: x, Y: c.At(x)}
	}
	return pts
}

// Point is a single (x, y) pair in a plotted series.
type Point struct {
	X, Y float64
}

// String renders the point compactly for table output.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Series is a named sequence of points: one line in a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
