package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSumMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Sum(xs) != 11 {
		t.Fatalf("Sum = %v", Sum(xs))
	}
	if Max(xs) != 7 {
		t.Fatalf("Max = %v", Max(xs))
	}
	if Min(xs) != -1 {
		t.Fatalf("Min = %v", Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty Max/Min should be 0")
	}
}

func TestStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Stddev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Stddev = %v, want 2", got)
	}
	if Stddev(nil) != 0 {
		t.Fatal("Stddev(nil) should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-1, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("interp percentile = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEqual(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.Quantile(0.25); got != 10 {
		t.Fatalf("Quantile(0.25) = %v, want 10", got)
	}
	if got := c.Quantile(0.9); got != 40 {
		t.Fatalf("Quantile(0.9) = %v, want 40", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 40 {
		t.Fatalf("Quantile(1) = %v, want 40", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.N() != 0 {
		t.Fatal("empty CDF should return zeros")
	}
	if c.Points(5) != nil {
		t.Fatal("empty CDF Points should be nil")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.ExpFloat64() * 10
	}
	pts := NewCDF(samples).Points(50)
	if len(pts) != 50 {
		t.Fatalf("Points len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF not monotone at %d: %v < %v", i, pts[i].Y, pts[i-1].Y)
		}
		if pts[i].X <= pts[i-1].X {
			t.Fatalf("X not increasing at %d", i)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("final CDF value = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestCDFQuantileInverseOfAt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 10
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64()
		}
		c := NewCDF(samples)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			v := c.Quantile(q)
			if c.At(v) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(xs[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v, want %v", xs, want)
		}
	}
	if Linspace(1, 2, 0) != nil {
		t.Fatal("n=0 should be nil")
	}
	if one := Linspace(3, 9, 1); len(one) != 1 || one[0] != 3 {
		t.Fatalf("n=1 = %v", one)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("GeoMean = %v, want 10", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Fatal("negative input should yield NaN")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{X: 1, Y: 2}).String(); s == "" {
		t.Fatal("empty point string")
	}
}
