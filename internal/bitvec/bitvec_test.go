package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(0)
	if b.Len() != 0 || b.Count() != 0 || b.Any() {
		t.Fatalf("empty bitmap misbehaves: %v", b)
	}
}

func TestNewNegativeClamped(t *testing.T) {
	b := New(-5)
	if b.Len() != 0 {
		t.Fatalf("negative size should clamp to 0, got %d", b.Len())
	}
}

func TestSetTestClear(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(10)
	b.Set(3)
	b.Set(3)
	if b.Count() != 1 {
		t.Fatalf("double Set should count once, got %d", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, fn := range map[string]func(){
		"Set(-1)":   func() { b.Set(-1) },
		"Set(10)":   func() { b.Set(10) },
		"Test(10)":  func() { b.Test(10) },
		"Clear(-1)": func() { b.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReset(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 || b.Any() {
		t.Fatalf("Reset left bits: %v", b)
	}
	if b.Len() != 100 {
		t.Fatalf("Reset changed length: %d", b.Len())
	}
}

func TestOr(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(1)
	a.Set(65)
	b.Set(2)
	b.Set(65)
	a.Or(b)
	want := []int{1, 2, 65}
	got := a.Indices()
	if len(got) != len(want) {
		t.Fatalf("Or result = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Or result = %v, want %v", got, want)
		}
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths should panic")
		}
	}()
	New(10).Or(New(11))
}

func TestAndNot(t *testing.T) {
	a, b := New(10), New(10)
	a.Set(1)
	a.Set(2)
	a.Set(3)
	b.Set(2)
	a.AndNot(b)
	if a.Test(2) || !a.Test(1) || !a.Test(3) {
		t.Fatalf("AndNot wrong: %v", a.Indices())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	a.Set(6)
	c.Set(7)
	if c.Test(6) {
		t.Fatal("clone sees later writes to original")
	}
	if a.Test(7) {
		t.Fatal("original sees writes to clone")
	}
	if !c.Test(5) {
		t.Fatal("clone missing original bit")
	}
}

func TestRangeOrderAndEarlyStop(t *testing.T) {
	b := New(300)
	want := []int{3, 64, 65, 200, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.Range(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v, want %v", got, want)
		}
	}
	var count int
	b.Range(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

func TestFraction(t *testing.T) {
	b := New(100)
	if b.Fraction() != 0 {
		t.Fatal("empty fraction should be 0")
	}
	for i := 0; i < 26; i++ {
		b.Set(i)
	}
	if got := b.Fraction(); got != 0.26 {
		t.Fatalf("Fraction = %v, want 0.26", got)
	}
	if (&Bitmap{}).Fraction() != 0 {
		t.Fatal("zero-length fraction should be 0")
	}
}

func TestSizeBytesSmallRelativeToModel(t *testing.T) {
	// Paper: bit vector < 0.05% of model size. A row of dim 64 fp32 is
	// 256 bytes; one bit per row is 1/2048 = 0.049%.
	const rows = 1 << 20
	b := New(rows)
	modelBytes := rows * 64 * 4
	if frac := float64(b.SizeBytes()) / float64(modelBytes); frac > 0.0005 {
		t.Fatalf("tracker footprint fraction = %v, want <= 0.05%%", frac)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 64, 127, 129} {
		b.Set(i)
	}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var c Bitmap
	if err := c.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if c.Len() != b.Len() || c.Count() != b.Count() {
		t.Fatalf("round trip mismatch: %v vs %v", &c, b)
	}
	for i := 0; i < b.Len(); i++ {
		if b.Test(i) != c.Test(i) {
			t.Fatalf("bit %d mismatch after round trip", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var b Bitmap
	if err := b.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil buffer should error")
	}
	if err := b.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer should error")
	}
	// Header claims 64 bits but payload is empty.
	hdr := make([]byte, 8)
	hdr[0] = 64
	if err := b.UnmarshalBinary(hdr); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		rng := rand.New(rand.NewSource(seed))
		b := New(n)
		for i := 0; i < n/3; i++ {
			b.Set(rng.Intn(n))
		}
		data, err := b.MarshalBinary()
		if err != nil {
			return false
		}
		var c Bitmap
		if err := c.UnmarshalBinary(data); err != nil {
			return false
		}
		if c.Len() != b.Len() || c.Count() != b.Count() {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Test(i) != c.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrCountUpperBound(t *testing.T) {
	// |a OR b| <= |a| + |b| and >= max(|a|, |b|).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		a, b := New(n), New(n)
		for i := 0; i < n/2; i++ {
			a.Set(rng.Intn(n))
			b.Set(rng.Intn(n))
		}
		ca, cb := a.Count(), b.Count()
		u := a.Clone()
		u.Or(b)
		cu := u.Count()
		maxC := ca
		if cb > maxC {
			maxC = cb
		}
		return cu <= ca+cb && cu >= maxC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndNotDisjoint(t *testing.T) {
	// After a.AndNot(b), a and b share no bits.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		a.AndNot(b)
		ok := true
		a.Range(func(i int) bool {
			if b.Test(i) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	bm := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (1<<20 - 1))
	}
}

func BenchmarkCount(b *testing.B) {
	bm := New(1 << 20)
	for i := 0; i < 1<<20; i += 7 {
		bm.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.Count()
	}
}

func BenchmarkRangeSparse(b *testing.B) {
	bm := New(1 << 20)
	for i := 0; i < 1<<20; i += 1024 {
		bm.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		bm.Range(func(int) bool { n++; return true })
	}
}
