// Package bitvec implements dense bit vectors used by Check-N-Run's
// modified-row tracker (§5.1.1 of the paper).
//
// Each GPU tracks the embedding rows it has touched during the current
// checkpoint interval in a bit vector whose footprint is tiny relative to
// the table itself (one bit per row, i.e. < 0.05% of a fp32 row of dim 64).
// The tracker needs fast Set during the forward pass, fast iteration when
// building an incremental checkpoint, and cheap snapshot/clear at interval
// boundaries.
package bitvec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a fixed-length dense bit vector. The zero value is an empty
// bitmap of length 0; construct sized bitmaps with New.
//
// Bitmap is not safe for concurrent mutation; the tracker shards bitmaps
// per GPU so each is single-writer, matching the paper's design.
type Bitmap struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a bitmap capable of holding n bits, all zero.
func New(n int) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i. It panics if i is out of range, mirroring slice indexing.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitvec: Set(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (b *Bitmap) Clear(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitvec: Clear(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (b *Bitmap) Test(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitvec: Test(%d) out of range [0,%d)", i, b.n))
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits (the incremental checkpoint row count).
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears all bits, retaining capacity. Used at the start of each
// checkpoint interval after the tracker's view has been snapshotted.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Or merges other into b (b |= other). Both bitmaps must have the same
// length. Used to accumulate one-shot incremental views across intervals.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitvec: Or length mismatch %d vs %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// AndNot removes other's bits from b (b &^= other).
func (b *Bitmap) AndNot(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitvec: AndNot length mismatch %d vs %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// Clone returns an independent copy of b. This is the "snapshot" operation:
// the tracker clones its bitmap at a checkpoint trigger so tracking of the
// next interval can continue while the background processes consume the view.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Range calls fn for every set bit in ascending order. If fn returns false,
// iteration stops. Iteration skips zero words, so sparse bitmaps iterate in
// time proportional to set bits plus words.
func (b *Bitmap) Range(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			idx := wi*wordBits + tz
			if idx >= b.n {
				return
			}
			if !fn(idx) {
				return
			}
			w &^= 1 << uint(tz)
		}
	}
}

// Indices returns all set bit positions in ascending order.
func (b *Bitmap) Indices() []int {
	out := make([]int, 0, b.Count())
	b.Range(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Fraction returns Count/Len, the "% of model modified" metric the paper
// plots in Figures 5, 6, 15 and 16. A zero-length bitmap yields 0.
func (b *Bitmap) Fraction() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.Count()) / float64(b.n)
}

// SizeBytes returns the in-memory footprint of the bit words. The paper
// notes this is typically < 0.05% of the model (several MB per GPU).
func (b *Bitmap) SizeBytes() int { return len(b.words) * 8 }

// MarshalBinary encodes the bitmap as an 8-byte little-endian bit length
// followed by the words. It implements encoding.BinaryMarshaler.
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+len(b.words)*8)
	binary.LittleEndian.PutUint64(out, uint64(b.n))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[8+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a bitmap previously encoded with MarshalBinary.
// It implements encoding.BinaryUnmarshaler.
func (b *Bitmap) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitvec: short buffer: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	nwords := (int(n) + wordBits - 1) / wordBits
	if len(data) != 8+nwords*8 {
		return fmt.Errorf("bitvec: length mismatch: header says %d bits (%d words), have %d payload bytes",
			n, nwords, len(data)-8)
	}
	b.n = int(n)
	b.words = make([]uint64, nwords)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[8+i*8:])
	}
	// Clear any tail bits beyond n so Count stays correct even with a
	// corrupted-but-length-valid payload.
	if rem := b.n % wordBits; rem != 0 && nwords > 0 {
		b.words[nwords-1] &= (1 << uint(rem)) - 1
	}
	return nil
}

// String summarizes the bitmap for diagnostics.
func (b *Bitmap) String() string {
	return fmt.Sprintf("Bitmap{len=%d set=%d (%.2f%%)}", b.n, b.Count(), b.Fraction()*100)
}
