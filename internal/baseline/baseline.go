// Package baseline implements the comparators the paper evaluates
// against: a general-purpose compression baseline (the paper uses
// Zstandard and measures at most ~7% reduction on fp32 checkpoints; this
// package uses stdlib DEFLATE, the same class of entropy coder) and the
// plain full-model checkpointer (no quantization, no incremental views)
// that §6.3 normalizes all reductions to.
package baseline

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/embedding"
)

// CompressRatio compresses blob with DEFLATE at the given level and
// returns compressed size over original size (1.0 = no reduction).
func CompressRatio(blob []byte, level int) (float64, error) {
	if len(blob) == 0 {
		return 1, nil
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return 0, fmt.Errorf("baseline: flate: %w", err)
	}
	if _, err := w.Write(blob); err != nil {
		return 0, fmt.Errorf("baseline: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return 0, fmt.Errorf("baseline: close: %w", err)
	}
	return float64(buf.Len()) / float64(len(blob)), nil
}

// Decompress inflates a DEFLATE stream (round-trip validation in tests).
func Decompress(blob []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(blob))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("baseline: decompress: %w", err)
	}
	return out, nil
}

// Compress deflates blob at the given level.
func Compress(blob []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(blob); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SerializeTableFP32 serializes a table's weights and accumulators as raw
// little-endian fp32 — the byte stream a no-optimization checkpointer
// would upload, and the input to the compression baseline.
func SerializeTableFP32(t *embedding.Table) []byte {
	out := make([]byte, 0, len(t.Weights.Data)*4+len(t.Accum)*4)
	var b4 [4]byte
	for _, v := range t.Weights.Data {
		binary.LittleEndian.PutUint32(b4[:], math.Float32bits(v))
		out = append(out, b4[:]...)
	}
	for _, v := range t.Accum {
		binary.LittleEndian.PutUint32(b4[:], math.Float32bits(v))
		out = append(out, b4[:]...)
	}
	return out
}
