package baseline

import (
	"bytes"
	"compress/flate"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
)

func TestCompressRoundTrip(t *testing.T) {
	blob := []byte("hello hello hello checkpoint checkpoint")
	comp, err := Compress(blob, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, blob) {
		t.Fatal("round trip mismatch")
	}
}

func TestCompressRatioEmpty(t *testing.T) {
	r, err := CompressRatio(nil, flate.DefaultCompression)
	if err != nil || r != 1 {
		t.Fatalf("empty ratio = %v, %v", r, err)
	}
}

func TestCompressRatioInvalidLevel(t *testing.T) {
	if _, err := CompressRatio([]byte("x"), 42); err == nil {
		t.Fatal("invalid level should error")
	}
}

func TestTrainedCheckpointBarelyCompresses(t *testing.T) {
	// The paper's observation (§1): standard compression reduces trained
	// fp32 checkpoints by at most ~7%. Trained embedding weights are
	// near-incompressible noise.
	cfg := model.DefaultConfig()
	cfg.Tables = []embedding.TableSpec{{Rows: 2048, Dim: 16}}
	m, err := model.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := data.DefaultSpec()
	spec.TableRows = []int{2048}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		m.TrainBatch(gen.NextBatch(64))
	}
	blob := SerializeTableFP32(m.Sparse.Tables[0])
	ratio, err := CompressRatio(blob, flate.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	// Trained fp32 data: expect >85% of original size retained (i.e.
	// <15% reduction, same class as the paper's <=7% with zstd).
	if ratio < 0.85 {
		t.Fatalf("ratio = %v; fp32 weights compressed suspiciously well", ratio)
	}
	if ratio > 1.05 {
		t.Fatalf("ratio = %v; pathological expansion", ratio)
	}
	t.Logf("flate reduction on trained fp32 table: %.1f%%", (1-ratio)*100)
}

func TestStructuredDataCompressesWell(t *testing.T) {
	// Sanity: the compressor itself works — repetitive data shrinks a lot.
	blob := bytes.Repeat([]byte("abcd"), 10000)
	ratio, err := CompressRatio(blob, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 0.05 {
		t.Fatalf("repetitive data ratio = %v, want tiny", ratio)
	}
}

func TestSerializeTableFP32Size(t *testing.T) {
	tab := embedding.NewTable(0, 100, 8, 0.01, rand.New(rand.NewSource(1)))
	blob := SerializeTableFP32(tab)
	want := 100*8*4 + 100*4
	if len(blob) != want {
		t.Fatalf("serialized %d bytes, want %d", len(blob), want)
	}
}

func BenchmarkFlateTrainedTable(b *testing.B) {
	tab := embedding.NewTable(0, 4096, 16, 0.01, rand.New(rand.NewSource(1)))
	blob := SerializeTableFP32(tab)
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressRatio(blob, flate.BestSpeed); err != nil {
			b.Fatal(err)
		}
	}
}
