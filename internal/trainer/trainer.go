// Package trainer simulates the synchronous hybrid-parallel training
// cluster of §2.2: N trainer nodes, embedding tables model-parallel
// across nodes, MLPs data-parallel, AlltoAll exchanges in forward and
// backward passes, and the stall-for-snapshot behaviour of §4.2 on a
// virtual clock.
//
// The math is exact (the single authoritative model equals what a real
// synchronous cluster computes); the cluster structure contributes real
// concurrency — per-node gather and apply phases run in goroutines with
// barriers between phases — plus the timing model that turns progress
// into the wall-clock quantities the paper reports (stall fraction,
// interval durations).
package trainer

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/simclock"
)

// Config configures a Cluster.
type Config struct {
	// Nodes is the trainer node count; embedding shards spread across
	// them. Must match the node count the model was built with.
	Nodes int
	// Clock drives virtual time; nil creates a fresh simulation clock.
	Clock *simclock.Sim
	// Throughput converts batches to virtual time.
	Throughput simclock.ThroughputModel
}

// Stats accumulates what the cluster did, in virtual time.
type Stats struct {
	Batches   uint64
	Samples   uint64
	TrainTime time.Duration
	StallTime time.Duration
	Snapshots int
	LastLoss  float32
	// AlltoAllBytes is the embedding traffic crossing node boundaries:
	// looked-up vectors in the forward pass plus gradient vectors in the
	// backward pass (§2.2). Vectors consumed on their owning node do not
	// cross the fabric and are not counted.
	AlltoAllBytes uint64
}

// Cluster drives synchronous training of one DLRM.
type Cluster struct {
	m     *model.DLRM
	clock *simclock.Sim
	tm    simclock.ThroughputModel

	nodes      int
	nodeTables []map[int]bool // node -> owned table IDs

	mu    sync.Mutex
	stats Stats
}

// New builds a Cluster around an existing model.
func New(m *model.DLRM, cfg Config) (*Cluster, error) {
	if m == nil {
		return nil, fmt.Errorf("trainer: nil model")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("trainer: nodes must be positive, got %d", cfg.Nodes)
	}
	if m.Sparse.Nodes() != cfg.Nodes {
		return nil, fmt.Errorf("trainer: model sharded over %d nodes, cluster has %d",
			m.Sparse.Nodes(), cfg.Nodes)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewSim(time.Time{})
	}
	if cfg.Throughput.QPS <= 0 {
		cfg.Throughput = simclock.DefaultThroughput()
	}
	c := &Cluster{
		m:     m,
		clock: cfg.Clock,
		tm:    cfg.Throughput,
		nodes: cfg.Nodes,
	}
	c.nodeTables = make([]map[int]bool, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		set := make(map[int]bool)
		for _, t := range m.Sparse.TablesOn(n) {
			set[t.ID] = true
		}
		c.nodeTables[n] = set
	}
	return c, nil
}

// Model returns the cluster's model.
func (c *Cluster) Model() *model.DLRM { return c.m }

// Clock returns the cluster's virtual clock.
func (c *Cluster) Clock() *simclock.Sim { return c.clock }

// Step runs one fully synchronous training iteration:
//
//	phase 1 (parallel per node): gather owned embedding rows
//	barrier — forward AlltoAll
//	phase 2 (replicated MLP math, AllReduce-equivalent update)
//	barrier — backward AlltoAll (tracking hides here, §5.1.1)
//	phase 3 (parallel per node): apply sparse gradients + mark tracker
//
// and advances the virtual clock by the modeled iteration time.
func (c *Cluster) Step(b *data.Batch) float32 {
	// Phase 1: concurrent gather, one goroutine per node.
	g := c.gatherParallel(b)

	// Phase 2: dense computation.
	loss, sg := c.m.TrainGathered(b, g)

	// Phase 3: concurrent apply per node.
	var wg sync.WaitGroup
	for n := 0; n < c.nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c.m.ApplySparseFor(b, sg, c.nodeTables[n])
		}(n)
	}
	wg.Wait()

	c.clock.Advance(c.tm.BatchDuration())
	c.mu.Lock()
	c.stats.Batches++
	c.stats.Samples += uint64(b.Len())
	c.stats.TrainTime += c.tm.BatchDuration()
	c.stats.LastLoss = loss
	c.stats.AlltoAllBytes += c.alltoallBytes(b)
	c.mu.Unlock()
	return loss
}

// alltoallBytes models the per-iteration AlltoAll volume: every embedding
// vector looked up for a sample travels from its owning node to the
// data-parallel consumer in the forward pass, and its gradient travels
// back in the backward pass. With T tables spread over N nodes, a uniform
// consumer assignment leaves a 1/N fraction local.
func (c *Cluster) alltoallBytes(b *data.Batch) uint64 {
	if c.nodes <= 1 {
		return 0
	}
	vecBytes := uint64(c.m.EmbedDim()) * 4
	lookups := uint64(b.Len()) * uint64(c.m.NumTables())
	crossing := lookups - lookups/uint64(c.nodes)
	return 2 * crossing * vecBytes // forward vectors + backward gradients
}

// gatherParallel runs phase 1 with one goroutine per node writing
// disjoint (sample, table) slots of a pre-allocated structure.
func (c *Cluster) gatherParallel(b *data.Batch) *model.Gathered {
	g := &model.Gathered{}
	// Initialize the full structure up front so concurrent writers only
	// touch disjoint slots.
	c.m.GatherSparseFor(b, g, map[int]bool{})
	var wg sync.WaitGroup
	for n := 0; n < c.nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c.m.GatherSparseFor(b, g, c.nodeTables[n])
		}(n)
	}
	wg.Wait()
	return g
}

// TableAssignment returns the table -> node ownership map. A sharded
// checkpoint Coordinator configured with it aligns shard writers with
// the trainer nodes that own each embedding table, so every node
// checkpoints exactly the rows it trains.
func (c *Cluster) TableAssignment() map[int]int {
	out := make(map[int]int)
	for n, set := range c.nodeTables {
		for id := range set {
			out[id] = n
		}
	}
	return out
}

// Snapshot stalls training (advancing the clock by the modeled snapshot
// stall, §4.2/§6.1) and returns an atomic copy of the trainer state. The
// caller must not run Step concurrently — the trainer is synchronous, so
// the step boundary is the natural barrier.
func (c *Cluster) Snapshot(reader data.ReaderState) (*ckpt.Snapshot, error) {
	c.mu.Lock()
	step := c.stats.Batches
	c.mu.Unlock()
	snap, err := ckpt.TakeSnapshot(c.m, step, reader)
	if err != nil {
		return nil, err
	}
	c.clock.Advance(c.tm.SnapshotStall)
	c.mu.Lock()
	c.stats.StallTime += c.tm.SnapshotStall
	c.stats.Snapshots++
	c.mu.Unlock()
	return snap, nil
}

// Stats returns a copy of the accumulated statistics.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// StallFraction returns the fraction of virtual time spent stalled for
// snapshots — the paper reports < 0.4% at 30-minute intervals.
func (c *Cluster) StallFraction() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.stats.TrainTime + c.stats.StallTime
	if total <= 0 {
		return 0
	}
	return float64(c.stats.StallTime) / float64(total)
}
