package trainer

import (
	"math"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/simclock"
)

func testModelConfig() model.Config {
	cfg := model.DefaultConfig()
	cfg.Tables = []embedding.TableSpec{
		{Rows: 256, Dim: 16}, {Rows: 256, Dim: 16},
		{Rows: 512, Dim: 16}, {Rows: 512, Dim: 16},
	}
	return cfg
}

func testDataSpec() data.Spec {
	spec := data.DefaultSpec()
	spec.TableRows = []int{256, 256, 512, 512}
	return spec
}

func newCluster(t *testing.T, nodes int) (*Cluster, *data.Generator) {
	t.Helper()
	m, err := model.New(testModelConfig(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(m, Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := data.NewGenerator(testDataSpec())
	if err != nil {
		t.Fatal(err)
	}
	return c, gen
}

func TestNewValidation(t *testing.T) {
	m, _ := model.New(testModelConfig(), 2)
	if _, err := New(nil, Config{Nodes: 2}); err == nil {
		t.Fatal("nil model should error")
	}
	if _, err := New(m, Config{Nodes: 0}); err == nil {
		t.Fatal("zero nodes should error")
	}
	if _, err := New(m, Config{Nodes: 3}); err == nil {
		t.Fatal("node count mismatch should error")
	}
}

func TestStepReducesLoss(t *testing.T) {
	c, gen := newCluster(t, 4)
	const evalStart = 1 << 30
	before := c.Model().EvalLoss(gen, evalStart, 200)
	for i := 0; i < 60; i++ {
		c.Step(gen.NextBatch(64))
	}
	after := c.Model().EvalLoss(gen, evalStart, 200)
	if after >= before {
		t.Fatalf("distributed training did not learn: %v -> %v", before, after)
	}
}

func TestStepDeterministicAcrossNodeCounts(t *testing.T) {
	// Synchronous training: the result must not depend on how tables are
	// sharded across nodes. Train identical models on 1 node and 4 nodes
	// and compare logits.
	run := func(nodes int) *model.DLRM {
		m, err := model.New(testModelConfig(), nodes)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(m, Config{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := data.NewGenerator(testDataSpec())
		for i := 0; i < 10; i++ {
			c.Step(gen.NextBatch(32))
		}
		return m
	}
	a, b := run(1), run(4)
	gen, _ := data.NewGenerator(testDataSpec())
	for i := uint64(0); i < 32; i++ {
		s := gen.At(1<<35 + i)
		la, lb := a.Forward(&s), b.Forward(&s)
		if math.Abs(float64(la-lb)) > 1e-4 {
			t.Fatalf("sample %d: 1-node logit %v vs 4-node %v", i, la, lb)
		}
	}
}

func TestStepAdvancesClock(t *testing.T) {
	c, gen := newCluster(t, 2)
	start := c.Clock().Now()
	c.Step(gen.NextBatch(16))
	want := simclock.DefaultThroughput().BatchDuration()
	if got := c.Clock().Since(start); got != want {
		t.Fatalf("clock advanced %v, want %v", got, want)
	}
}

func TestStepTracksModifiedRows(t *testing.T) {
	c, gen := newCluster(t, 4)
	b := gen.NextBatch(32)
	c.Step(b)
	snap := c.Model().Tracker.Snapshot(false)
	for i := range b.Samples {
		for ti, id := range b.Samples[i].Sparse {
			if !snap[ti].Test(id) {
				t.Fatalf("row (%d,%d) not tracked by distributed step", ti, id)
			}
		}
	}
}

func TestSnapshotStallAccounting(t *testing.T) {
	c, gen := newCluster(t, 2)
	for i := 0; i < 5; i++ {
		c.Step(gen.NextBatch(16))
	}
	if _, err := c.Snapshot(data.ReaderState{NextSample: gen.Pos(), BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Snapshots != 1 {
		t.Fatalf("snapshots = %d", st.Snapshots)
	}
	if st.StallTime != simclock.DefaultThroughput().SnapshotStall {
		t.Fatalf("stall time = %v", st.StallTime)
	}
	if c.StallFraction() <= 0 {
		t.Fatal("stall fraction should be positive")
	}
}

func TestStallFractionMatchesPaperAt30Min(t *testing.T) {
	// With a 30-minute interval between snapshots the stall overhead is
	// < 0.4% (§6.1). Simulate: advance training by 30 virtual minutes,
	// snapshot, repeat.
	m, _ := model.New(testModelConfig(), 2)
	c, err := New(m, Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := data.NewGenerator(testDataSpec())
	tm := simclock.DefaultThroughput()
	// Rather than stepping ~870k batches, exploit the stats directly:
	// each Step adds BatchDuration. Use a handful of steps then scale the
	// modeled interval by adding the equivalent train time via steps.
	// Here we assert the model-level arithmetic instead.
	if f := tm.StallFraction(30 * time.Minute); f >= 0.004 {
		t.Fatalf("paper stall fraction = %v, want < 0.4%%", f)
	}
	// And the cluster's measured fraction converges to the same value:
	// simulate 3 intervals of 20 batches with a proportionally scaled
	// stall so the ratio matches.
	for interval := 0; interval < 3; interval++ {
		for i := 0; i < 20; i++ {
			c.Step(gen.NextBatch(8))
		}
		if _, err := c.Snapshot(data.ReaderState{NextSample: gen.Pos(), BatchSize: 8}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	wantFrac := float64(st.StallTime) / float64(st.StallTime+st.TrainTime)
	if got := c.StallFraction(); math.Abs(got-wantFrac) > 1e-9 {
		t.Fatalf("StallFraction = %v, want %v", got, wantFrac)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c, gen := newCluster(t, 2)
	for i := 0; i < 3; i++ {
		c.Step(gen.NextBatch(16))
	}
	st := c.Stats()
	if st.Batches != 3 || st.Samples != 48 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LastLoss <= 0 {
		t.Fatalf("last loss = %v", st.LastLoss)
	}
}

func TestGatheredMatchesSequentialForward(t *testing.T) {
	// Before any training, TrainGathered and TrainBatch see identical
	// weights, so their reported losses on the same batch must agree
	// closely (update orders differ only after application).
	m1, _ := model.New(testModelConfig(), 1)
	m2, _ := model.New(testModelConfig(), 1)
	gen, _ := data.NewGenerator(testDataSpec())
	b := gen.NextBatch(16)
	g := m1.GatherSparse(b)
	loss1, _ := m1.TrainGathered(b, g)
	loss2 := m2.TrainBatch(b)
	// TrainBatch applies sparse updates mid-batch, so small divergence
	// is expected but losses are computed on forward passes that mostly
	// precede updates.
	if math.Abs(float64(loss1-loss2)) > 0.05 {
		t.Fatalf("gathered loss %v vs sequential %v", loss1, loss2)
	}
}

func BenchmarkClusterStep(b *testing.B) {
	m, err := model.New(testModelConfig(), 4)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(m, Config{Nodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	gen, _ := data.NewGenerator(testDataSpec())
	batch := gen.NextBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(batch)
	}
}

func TestAlltoAllAccounting(t *testing.T) {
	c, gen := newCluster(t, 4)
	c.Step(gen.NextBatch(32))
	st := c.Stats()
	// 32 samples x 4 tables x dim-16 fp32 vectors, 3/4 crossing nodes,
	// doubled for forward + backward.
	want := uint64(2 * (32*4 - 32*4/4) * 16 * 4)
	if st.AlltoAllBytes != want {
		t.Fatalf("AlltoAllBytes = %d, want %d", st.AlltoAllBytes, want)
	}
}

func TestAlltoAllZeroOnSingleNode(t *testing.T) {
	c, gen := newCluster(t, 1)
	c.Step(gen.NextBatch(16))
	if st := c.Stats(); st.AlltoAllBytes != 0 {
		t.Fatalf("single-node AlltoAll = %d, want 0", st.AlltoAllBytes)
	}
}
