// Package failure models training-job failures: the time-to-failure
// distributions behind Figure 3, uniform failure placement for the
// accuracy experiments of Figure 14, and the expected-restart estimate
// that drives dynamic quantization bit-width selection (§6.2.1).
package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/stats"
)

// TTFModel samples job time-to-failure durations.
type TTFModel interface {
	// Sample draws one time-to-failure.
	Sample(rng *rand.Rand) time.Duration
}

// Weibull is a Weibull time-to-failure model. The default parameters are
// fitted to the paper's Figure 3 quantiles: the longest 10% of failed jobs
// ran >= 13.5 h and the top 1% ran >= 53.9 h before failing.
type Weibull struct {
	// Shape k < 1 gives the long-tailed behaviour of Figure 3.
	Shape float64
	// Scale is the characteristic life (hours scale embedded in the
	// duration).
	Scale time.Duration
}

// PaperWeibull returns the Weibull fitted to Figure 3's two reported
// quantiles: P(TTF >= 13.5h) = 0.10 and P(TTF >= 53.9h) = 0.01 give
// k ≈ 0.50, λ ≈ 2.55 h.
func PaperWeibull() Weibull {
	// Solve (13.5/λ)^k = ln 10, (53.9/λ)^k = ln 100 ⇒
	// k = ln2 / ln(53.9/13.5), λ = 13.5h / (ln 10)^(1/k).
	k := math.Ln2 / math.Log(53.9/13.5)
	lambda := 13.5 / math.Pow(math.Log(10), 1/k) // hours
	return Weibull{Shape: k, Scale: time.Duration(lambda * float64(time.Hour))}
}

// Sample draws from the Weibull via inverse CDF.
func (w Weibull) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	// t = λ * (-ln(1-u))^(1/k)
	t := float64(w.Scale) * math.Pow(-math.Log(1-u), 1/w.Shape)
	return time.Duration(t)
}

// Exponential is a memoryless TTF model with the given mean.
type Exponential struct{ Mean time.Duration }

// Sample draws from the exponential distribution.
func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(e.Mean))
}

// Empirical resamples from observed durations.
type Empirical struct{ Samples []time.Duration }

// Sample draws uniformly from the observed set.
func (e Empirical) Sample(rng *rand.Rand) time.Duration {
	if len(e.Samples) == 0 {
		return 0
	}
	return e.Samples[rng.Intn(len(e.Samples))]
}

// CollectTTF draws n time-to-failure samples, discarding those under
// minRun (the paper removes jobs failing within 5 minutes as user setup
// errors) and returns them sorted.
func CollectTTF(m TTFModel, n int, minRun time.Duration, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, 0, n)
	for len(out) < n {
		t := m.Sample(rng)
		if t >= minRun {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// CDFHours builds the Figure 3 CDF (hours on the X axis) from samples.
func CDFHours(samples []time.Duration) *stats.CDF {
	xs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Hours()
	}
	return stats.NewCDF(xs)
}

// ExpectedRestores estimates how many times a job will resume from a
// checkpoint (§6.2.1): the per-node failure probability p over the job's
// expected duration, scaled by node count. Failures are rare and roughly
// independent, so the expectation is jobDuration/unit * nodes * p.
func ExpectedRestores(jobDuration time.Duration, nodes int, perNodePerHour float64) float64 {
	if jobDuration <= 0 || nodes <= 0 || perNodePerHour <= 0 {
		return 0
	}
	return jobDuration.Hours() * float64(nodes) * perNodePerHour
}

// UniformSchedule places n failures uniformly over a job of the given
// length measured in trained batches (Figure 14's setup: "failures are
// uniformly distributed during training"). The returned batch indices are
// strictly increasing and lie in (0, totalBatches).
func UniformSchedule(n int, totalBatches uint64, seed int64) ([]uint64, error) {
	if totalBatches < 2 {
		return nil, fmt.Errorf("failure: job too short: %d batches", totalBatches)
	}
	if n <= 0 {
		return nil, nil
	}
	if uint64(n) >= totalBatches {
		return nil, fmt.Errorf("failure: %d failures do not fit in %d batches", n, totalBatches)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		b := 1 + uint64(rng.Int63n(int64(totalBatches-1)))
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// Injector triggers scheduled failures as training progresses.
type Injector struct {
	schedule []uint64
	next     int
}

// NewInjector returns an injector for a precomputed schedule (ascending).
func NewInjector(schedule []uint64) *Injector {
	s := append([]uint64(nil), schedule...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return &Injector{schedule: s}
}

// ShouldFail reports whether a failure fires at the given batch index,
// consuming it. Each scheduled failure fires exactly once.
func (in *Injector) ShouldFail(batch uint64) bool {
	if in.next >= len(in.schedule) {
		return false
	}
	if batch >= in.schedule[in.next] {
		in.next++
		return true
	}
	return false
}

// Remaining returns the number of failures not yet fired.
func (in *Injector) Remaining() int { return len(in.schedule) - in.next }

// Fired returns the number of failures already fired.
func (in *Injector) Fired() int { return in.next }
