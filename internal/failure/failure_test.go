package failure

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPaperWeibullQuantiles(t *testing.T) {
	// The fitted model must reproduce Figure 3's two anchor quantiles:
	// 90% of failures before ~13.5h, 99% before ~53.9h.
	samples := CollectTTF(PaperWeibull(), 20000, 0, 1)
	cdf := CDFHours(samples)
	p90 := cdf.Quantile(0.90)
	p99 := cdf.Quantile(0.99)
	if p90 < 10 || p90 > 17 {
		t.Fatalf("P90 = %.1fh, want ~13.5h", p90)
	}
	if p99 < 44 || p99 > 66 {
		t.Fatalf("P99 = %.1fh, want ~53.9h", p99)
	}
}

func TestWeibullSamplesPositive(t *testing.T) {
	w := PaperWeibull()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if w.Sample(rng) < 0 {
			t.Fatal("negative TTF")
		}
	}
}

func TestCollectTTFMinRun(t *testing.T) {
	samples := CollectTTF(PaperWeibull(), 500, 5*time.Minute, 3)
	if len(samples) != 500 {
		t.Fatalf("len = %d", len(samples))
	}
	for _, s := range samples {
		if s < 5*time.Minute {
			t.Fatalf("sample %v under the 5-minute filter", s)
		}
	}
	// Sorted ascending.
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatal("samples not sorted")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{Mean: 10 * time.Hour}
	rng := rand.New(rand.NewSource(4))
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	mean := (sum / n).Hours()
	if mean < 9 || mean > 11 {
		t.Fatalf("mean = %vh, want ~10h", mean)
	}
}

func TestEmpiricalResamples(t *testing.T) {
	obs := []time.Duration{time.Hour, 2 * time.Hour}
	e := Empirical{Samples: obs}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		s := e.Sample(rng)
		if s != time.Hour && s != 2*time.Hour {
			t.Fatalf("sample %v not in observed set", s)
		}
	}
	if (Empirical{}).Sample(rng) != 0 {
		t.Fatal("empty empirical should return 0")
	}
}

func TestExpectedRestores(t *testing.T) {
	// 24h job on 16 nodes at 0.01 failures/node/hour -> 3.84 expected.
	got := ExpectedRestores(24*time.Hour, 16, 0.01)
	if got < 3.8 || got > 3.9 {
		t.Fatalf("ExpectedRestores = %v", got)
	}
	if ExpectedRestores(0, 16, 0.01) != 0 {
		t.Fatal("zero duration should be 0")
	}
	if ExpectedRestores(time.Hour, 0, 0.01) != 0 {
		t.Fatal("zero nodes should be 0")
	}
}

func TestUniformSchedule(t *testing.T) {
	sched, err := UniformSchedule(5, 1000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 5 {
		t.Fatalf("len = %d", len(sched))
	}
	for i, b := range sched {
		if b == 0 || b >= 1000 {
			t.Fatalf("failure %d at batch %d out of range", i, b)
		}
		if i > 0 && sched[i] <= sched[i-1] {
			t.Fatal("schedule not strictly increasing")
		}
	}
}

func TestUniformScheduleErrors(t *testing.T) {
	if _, err := UniformSchedule(5, 1, 1); err == nil {
		t.Fatal("too-short job should error")
	}
	if _, err := UniformSchedule(100, 50, 1); err == nil {
		t.Fatal("too many failures should error")
	}
	if s, err := UniformSchedule(0, 100, 1); err != nil || s != nil {
		t.Fatal("zero failures should be empty")
	}
}

func TestInjectorFiresEachOnce(t *testing.T) {
	in := NewInjector([]uint64{10, 20, 30})
	fired := 0
	for b := uint64(0); b <= 40; b++ {
		if in.ShouldFail(b) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if in.Remaining() != 0 || in.Fired() != 3 {
		t.Fatalf("counters: remaining=%d fired=%d", in.Remaining(), in.Fired())
	}
}

func TestInjectorSkippedBatchesStillFire(t *testing.T) {
	// If the trainer jumps past a scheduled batch (e.g. restore replay),
	// the failure fires at the next check.
	in := NewInjector([]uint64{10})
	if in.ShouldFail(5) {
		t.Fatal("should not fire before schedule")
	}
	if !in.ShouldFail(50) {
		t.Fatal("should fire when past due")
	}
}

func TestInjectorUnsortedInputHandled(t *testing.T) {
	in := NewInjector([]uint64{30, 10, 20})
	if !in.ShouldFail(10) {
		t.Fatal("lowest should fire first")
	}
}

func TestQuickScheduleBounds(t *testing.T) {
	f := func(seed int64, nRaw, totRaw uint16) bool {
		total := uint64(totRaw)%5000 + 100
		n := int(nRaw) % 20
		sched, err := UniformSchedule(n, total, seed)
		if err != nil {
			return false
		}
		if len(sched) != n {
			return false
		}
		for _, b := range sched {
			if b == 0 || b >= total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
