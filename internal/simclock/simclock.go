// Package simclock provides a virtual clock for deterministic simulation of
// wall-clock time, alongside a real-time clock behind the same interface.
//
// Check-N-Run's policies are expressed in wall-clock terms ("checkpoint every
// 30 minutes", "snapshot stall < 7 s"). The simulator maps training progress
// onto a virtual timeline so experiments reproduce the paper's interval
// structure in milliseconds of real time.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the simulator.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep advances the clock by d. On a virtual clock this is
	// instantaneous; on a real clock it blocks.
	Sleep(d time.Duration)
}

// Sim is a deterministic, manually-advanced clock. The zero value is not
// usable; construct with NewSim. Sim is safe for concurrent use.
type Sim struct {
	mu  sync.RWMutex
	now time.Time
}

// NewSim returns a virtual clock starting at the given origin. A zero origin
// starts at the Unix epoch, which keeps durations easy to read in traces.
func NewSim(origin time.Time) *Sim {
	if origin.IsZero() {
		origin = time.Unix(0, 0).UTC()
	}
	return &Sim{now: origin}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Sleep advances the virtual clock by d without blocking.
// Negative durations are ignored.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// Advance is an alias for Sleep that reads better at call sites that are
// driving the simulation rather than emulating a blocking wait.
func (s *Sim) Advance(d time.Duration) { s.Sleep(d) }

// Since returns the elapsed virtual time since t.
func (s *Sim) Since(t time.Time) time.Duration {
	return s.Now().Sub(t)
}

// Real is a Clock backed by the process wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep blocks for d using time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// ThroughputModel converts training progress into virtual time. It captures
// the paper's setting of a fully synchronous trainer running at a fixed
// query throughput (e.g. 500K QPS with batch size 1024).
type ThroughputModel struct {
	// QPS is the training throughput in samples (queries) per second.
	QPS float64
	// BatchSize is the number of samples per synchronous iteration.
	BatchSize int
	// TrackingOverhead is the fractional iteration-time overhead of the
	// modified-row tracking (the paper measures ~1%, hidden in AlltoAll).
	TrackingOverhead float64
	// SnapshotStall is the training stall incurred when copying the model
	// from device memory to host memory (the paper measures <= 7 s for a
	// 128-GPU job).
	SnapshotStall time.Duration
}

// DefaultThroughput mirrors the paper's reference numbers: 500K QPS, batch
// size 1024, ~1% tracking overhead, 7 s snapshot stall.
func DefaultThroughput() ThroughputModel {
	return ThroughputModel{
		QPS:              500_000,
		BatchSize:        1024,
		TrackingOverhead: 0.01,
		SnapshotStall:    7 * time.Second,
	}
}

// BatchDuration returns the virtual duration of one synchronous training
// iteration, including the tracking overhead.
func (m ThroughputModel) BatchDuration() time.Duration {
	if m.QPS <= 0 || m.BatchSize <= 0 {
		return 0
	}
	base := float64(m.BatchSize) / m.QPS // seconds
	base *= 1 + m.TrackingOverhead
	return time.Duration(base * float64(time.Second))
}

// BatchesPerInterval returns how many batches fit in a wall-clock interval,
// which is how the controller converts "checkpoint every 30 minutes" into a
// batch count for the reader master.
func (m ThroughputModel) BatchesPerInterval(interval time.Duration) int {
	bd := m.BatchDuration()
	if bd <= 0 {
		return 0
	}
	n := int(interval / bd)
	if n < 1 {
		n = 1
	}
	return n
}

// StallFraction returns the fraction of training time lost to snapshot
// stalls at the given checkpoint interval. The paper reports < 0.4% at a
// 30-minute interval with a 7 s stall.
func (m ThroughputModel) StallFraction(interval time.Duration) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(m.SnapshotStall) / float64(interval+m.SnapshotStall)
}

// String implements fmt.Stringer for diagnostics.
func (m ThroughputModel) String() string {
	return fmt.Sprintf("ThroughputModel{QPS=%.0f batch=%d track=%.2f%% stall=%s}",
		m.QPS, m.BatchSize, m.TrackingOverhead*100, m.SnapshotStall)
}
