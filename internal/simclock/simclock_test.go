package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimStartsAtOrigin(t *testing.T) {
	origin := time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
	c := NewSim(origin)
	if got := c.Now(); !got.Equal(origin) {
		t.Fatalf("Now() = %v, want %v", got, origin)
	}
}

func TestSimZeroOriginDefaultsToEpoch(t *testing.T) {
	c := NewSim(time.Time{})
	if got := c.Now(); !got.Equal(time.Unix(0, 0).UTC()) {
		t.Fatalf("Now() = %v, want unix epoch", got)
	}
}

func TestSimSleepAdvances(t *testing.T) {
	c := NewSim(time.Time{})
	start := c.Now()
	c.Sleep(30 * time.Minute)
	if got := c.Since(start); got != 30*time.Minute {
		t.Fatalf("Since = %v, want 30m", got)
	}
}

func TestSimNegativeSleepIgnored(t *testing.T) {
	c := NewSim(time.Time{})
	start := c.Now()
	c.Sleep(-time.Hour)
	if !c.Now().Equal(start) {
		t.Fatalf("negative sleep moved the clock: %v -> %v", start, c.Now())
	}
}

func TestSimAdvanceAlias(t *testing.T) {
	c := NewSim(time.Time{})
	c.Advance(time.Second)
	c.Advance(time.Second)
	if got := c.Since(time.Unix(0, 0).UTC()); got != 2*time.Second {
		t.Fatalf("elapsed = %v, want 2s", got)
	}
}

func TestSimConcurrentAdvance(t *testing.T) {
	c := NewSim(time.Time{})
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(workers*perWorker) * time.Millisecond
	if got := c.Since(time.Unix(0, 0).UTC()); got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

func TestRealClockMonotone(t *testing.T) {
	var r Real
	a := r.Now()
	r.Sleep(time.Millisecond)
	b := r.Now()
	if !b.After(a) {
		t.Fatalf("real clock did not advance: %v vs %v", a, b)
	}
}

func TestBatchDuration(t *testing.T) {
	m := ThroughputModel{QPS: 500_000, BatchSize: 1024}
	got := m.BatchDuration()
	want := time.Duration(float64(1024) / 500_000 * float64(time.Second))
	if got != want {
		t.Fatalf("BatchDuration = %v, want %v", got, want)
	}
}

func TestBatchDurationWithTrackingOverhead(t *testing.T) {
	plain := ThroughputModel{QPS: 1000, BatchSize: 100}
	tracked := ThroughputModel{QPS: 1000, BatchSize: 100, TrackingOverhead: 0.01}
	if !(tracked.BatchDuration() > plain.BatchDuration()) {
		t.Fatalf("tracking overhead should lengthen the batch: %v vs %v",
			tracked.BatchDuration(), plain.BatchDuration())
	}
	ratio := float64(tracked.BatchDuration()) / float64(plain.BatchDuration())
	if ratio < 1.009 || ratio > 1.011 {
		t.Fatalf("overhead ratio = %v, want ~1.01", ratio)
	}
}

func TestBatchDurationDegenerate(t *testing.T) {
	if d := (ThroughputModel{}).BatchDuration(); d != 0 {
		t.Fatalf("zero model should yield 0 duration, got %v", d)
	}
	if d := (ThroughputModel{QPS: -1, BatchSize: 10}).BatchDuration(); d != 0 {
		t.Fatalf("negative QPS should yield 0 duration, got %v", d)
	}
}

func TestBatchesPerInterval(t *testing.T) {
	m := DefaultThroughput()
	// 30 minutes at ~2.07ms/batch (2.048ms * 1.01) is ~870k batches.
	n := m.BatchesPerInterval(30 * time.Minute)
	if n < 800_000 || n > 900_000 {
		t.Fatalf("BatchesPerInterval(30m) = %d, want ~870k", n)
	}
}

func TestBatchesPerIntervalMinimumOne(t *testing.T) {
	m := DefaultThroughput()
	if n := m.BatchesPerInterval(time.Nanosecond); n != 1 {
		t.Fatalf("tiny interval should still yield 1 batch, got %d", n)
	}
}

func TestBatchesPerIntervalZeroModel(t *testing.T) {
	var m ThroughputModel
	if n := m.BatchesPerInterval(time.Hour); n != 0 {
		t.Fatalf("unusable model should yield 0 batches, got %d", n)
	}
}

func TestStallFractionMatchesPaper(t *testing.T) {
	m := DefaultThroughput()
	// Paper: 7s stall every 30 minutes => < 0.4% overhead.
	f := m.StallFraction(30 * time.Minute)
	if f <= 0 || f >= 0.004 {
		t.Fatalf("StallFraction(30m) = %v, want (0, 0.004)", f)
	}
}

func TestStallFractionZeroInterval(t *testing.T) {
	m := DefaultThroughput()
	if f := m.StallFraction(0); f != 0 {
		t.Fatalf("StallFraction(0) = %v, want 0", f)
	}
}

func TestThroughputString(t *testing.T) {
	s := DefaultThroughput().String()
	if s == "" {
		t.Fatal("String() should not be empty")
	}
}
