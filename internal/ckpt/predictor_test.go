package ckpt

import (
	"math"
	"testing"

	"repro/internal/quant"
	"repro/internal/wire"
)

func TestPredictorKindString(t *testing.T) {
	for _, p := range []PredictorKind{PredictorHistory, PredictorRegression, PredictorKind(9)} {
		if p.String() == "" {
			t.Fatal("empty predictor name")
		}
	}
	if !PredictorHistory.Valid() || !PredictorRegression.Valid() {
		t.Fatal("known predictors should be valid")
	}
	if PredictorKind(9).Valid() {
		t.Fatal("unknown predictor should be invalid")
	}
}

func TestFitLine(t *testing.T) {
	// y = 0.1 + 0.05*j exactly.
	y := []float64{0.15, 0.20, 0.25, 0.30}
	a, b := fitLine(y)
	if math.Abs(a-0.1) > 1e-9 || math.Abs(b-0.05) > 1e-9 {
		t.Fatalf("fit = (%v, %v), want (0.1, 0.05)", a, b)
	}
	// Constant series: zero slope.
	a, b = fitLine([]float64{0.3, 0.3, 0.3})
	if math.Abs(a-0.3) > 1e-9 || math.Abs(b) > 1e-9 {
		t.Fatalf("constant fit = (%v, %v)", a, b)
	}
}

func TestRegressionPredictorNoHistory(t *testing.T) {
	if regressionPredictFull(nil, 0.25) {
		t.Fatal("no history should stay incremental")
	}
}

func TestRegressionPredictorLinearGrowth(t *testing.T) {
	// Steadily growing increments must eventually trigger a baseline.
	var sizes []float64
	triggered := -1
	for j := 1; j <= 20; j++ {
		s := 0.2 + 0.05*float64(j)
		if s > 1 {
			s = 1
		}
		if regressionPredictFull(sizes, s) {
			triggered = j
			break
		}
		sizes = append(sizes, s)
	}
	if triggered < 0 {
		t.Fatal("regression predictor never took a baseline under linear growth")
	}
	if triggered < 3 {
		t.Fatalf("baseline at j=%d is too eager", triggered)
	}
}

func TestRegressionPredictorFlatSizesStaysIncremental(t *testing.T) {
	// Flat small increments: staying incremental is always cheaper than
	// re-paying the full baseline.
	sizes := []float64{0.1, 0.1, 0.1, 0.1}
	if regressionPredictFull(sizes, 0.1) {
		t.Fatal("flat 10% increments should never trigger a baseline")
	}
}

func TestRegressionPredictorClampsProjection(t *testing.T) {
	// Sustained growth whose continuation saturates at 100% while a
	// restarted curve stays cheaper: the baseline must trigger, and the
	// >100% projections must clamp rather than blow up the comparison.
	sizes := []float64{0.3, 0.5, 0.7, 0.9}
	if !regressionPredictFull(sizes, 0.95) {
		t.Fatal("sustained growth should trigger a baseline")
	}
	// With only a steep 2-point history the horizon is too short for the
	// baseline to amortize: stay incremental.
	if regressionPredictFull([]float64{0.5, 0.9}, 0.95) {
		t.Fatal("short steep history should not yet trigger")
	}
}

func TestEngineRejectsInvalidPredictor(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyIntermittent})
	_ = f
	if _, err := NewEngine(Config{
		JobID: "j", Store: f.store, Policy: PolicyIntermittent, Predictor: PredictorKind(7),
	}); err == nil {
		t.Fatal("invalid predictor should error")
	}
}

func TestRegressionPredictorEndToEnd(t *testing.T) {
	// The intermittent policy with the regression predictor still takes
	// periodic baselines and restores exactly.
	f := newFixture(t, Config{
		Policy:    PolicyIntermittent,
		Predictor: PredictorRegression,
	})
	fulls := 0
	for i := 0; i < 16; i++ {
		man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 3, 48))
		if err != nil {
			t.Fatal(err)
		}
		if man.Kind == wire.KindFull.String() {
			fulls++
		}
	}
	if fulls < 2 {
		t.Fatalf("regression predictor took only %d baselines in 16 intervals", fulls)
	}
	m2, _ := newFixture(t, Config{Policy: PolicyFull}).m, error(nil)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-6) {
		t.Fatal("restore under regression predictor diverged")
	}
}

func TestPredictorsBothBoundCumulativeCost(t *testing.T) {
	// Over many intervals, both predictors must keep average bandwidth
	// strictly below always-full and above the impossible lower bound.
	run := func(pred PredictorKind) int64 {
		f := newFixture(t, Config{
			Policy:    PolicyIntermittent,
			Predictor: pred,
			Quant:     quant.Params{Method: quant.MethodNone},
		})
		for i := 0; i < 12; i++ {
			if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 48)); err != nil {
				t.Fatal(err)
			}
		}
		return f.store.Usage().BytesWritten
	}
	full := func() int64 {
		f := newFixture(t, Config{Policy: PolicyFull})
		for i := 0; i < 12; i++ {
			if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 48)); err != nil {
				t.Fatal(err)
			}
		}
		return f.store.Usage().BytesWritten
	}()
	hist := run(PredictorHistory)
	regr := run(PredictorRegression)
	if hist >= full || regr >= full {
		t.Fatalf("predictors should beat always-full: hist=%d regr=%d full=%d", hist, regr, full)
	}
	t.Logf("bytes written over 12 intervals: full=%d history=%d regression=%d", full, hist, regr)
}
