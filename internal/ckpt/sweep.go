package ckpt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/objstore"
	"repro/internal/wire"
)

// SweepReport describes what an orphan sweep found.
type SweepReport struct {
	// Scanned is the number of objects examined (composite and shard
	// scopes combined).
	Scanned int
	// Referenced is the number of objects reachable from some surviving
	// manifest chain.
	Referenced int
	// Orphans lists the unreferenced keys, sorted. With DryRun they are
	// only reported; otherwise they were deleted.
	Orphans []string
	// Notes records manifests whose chains could not be fully resolved;
	// their scopes are conservatively kept, never swept.
	Notes []string
}

// SweepOrphans is the composite-aware retention sweep behind `ckptctl
// gc`: it deletes every `<job>/shard/<s>/...` (and composite-scope)
// object not referenced by any surviving manifest chain — the debris of
// jobs that died between prepare and commit, of agents that crashed
// after uploading part of an attempt, and of aborts that never reached
// a partitioned shard.
//
// Reachability is chain closure, not per-ID existence: a shard
// checkpoint whose composite manifest was retention-expired is still
// referenced while a surviving incremental's chain passes through it
// (the coordinator GCs composite manifests independently of the shard
// engines' dependency-aware retention). A manifest whose chain cannot
// be resolved marks its scope conservatively kept.
//
// The sweep must only run while the job is quiescent — like `ckptctl
// delete`, it cannot distinguish a dead job's debris from a commit in
// flight.
func SweepOrphans(ctx context.Context, jobID string, store objstore.Store, dryRun bool) (*SweepReport, error) {
	rest, err := NewRestorer(jobID, store)
	if err != nil {
		return nil, err
	}
	tops, err := rest.ListManifests(ctx)
	if err != nil {
		return nil, err
	}

	refs := make(map[string]bool)
	var keepPrefixes []string
	report := &SweepReport{}

	refManifest := func(scopeJob string, m *wire.Manifest) {
		refs[wire.ManifestKey(scopeJob, m.ID)] = true
		if m.DenseKey != "" {
			refs[m.DenseKey] = true
		}
		for _, tm := range m.Tables {
			for _, k := range tm.ChunkKeys {
				refs[k] = true
			}
		}
	}

	// Shard manifest listings are loaded once per shard, not once per
	// composite x shard: chain resolution works from the cached list.
	shardLists := make(map[int][]*wire.Manifest)
	shardListErr := make(map[int]error)
	shardManifests := func(s int) ([]*wire.Manifest, error) {
		if ms, ok := shardLists[s]; ok {
			return ms, shardListErr[s]
		}
		sub, err := rest.shardRestorer(s)
		if err != nil {
			return nil, err
		}
		ms, err := sub.ListManifests(ctx)
		shardLists[s], shardListErr[s] = ms, err
		return ms, err
	}

	for _, man := range tops {
		refManifest(jobID, man)
		if !man.Composite() {
			chain, err := chainFrom(tops, man.ID)
			if err != nil {
				report.Notes = append(report.Notes,
					fmt.Sprintf("checkpoint %d: unresolvable chain (%v); its objects kept", man.ID, err))
				continue
			}
			for _, link := range chain {
				refManifest(jobID, link)
			}
			continue
		}
		for s := 0; s < man.ShardCount; s++ {
			shardJob := wire.ShardJobID(jobID, s)
			keepShard := func(err error) {
				keepPrefixes = append(keepPrefixes, shardJob+"/")
				report.Notes = append(report.Notes,
					fmt.Sprintf("checkpoint %d shard %d: unresolvable chain (%v); shard scope kept", man.ID, s, err))
			}
			ms, err := shardManifests(s)
			if err != nil {
				keepShard(err)
				continue
			}
			chain, err := chainFrom(ms, man.ID)
			if err != nil {
				keepShard(err)
				continue
			}
			for _, link := range chain {
				refManifest(shardJob, link)
			}
		}
	}

	var all []string
	for _, prefix := range []string{wire.JobPrefix(jobID), wire.ShardScopePrefix(jobID)} {
		keys, err := store.List(ctx, prefix)
		if err != nil {
			return nil, fmt.Errorf("ckpt: list %s: %w", prefix, err)
		}
		all = append(all, keys...)
	}

	kept := func(key string) bool {
		if refs[key] {
			return true
		}
		for _, p := range keepPrefixes {
			if strings.HasPrefix(key, p) {
				return true
			}
		}
		return false
	}
	for _, key := range all {
		report.Scanned++
		if kept(key) {
			report.Referenced++
			continue
		}
		report.Orphans = append(report.Orphans, key)
	}
	sort.Strings(report.Orphans)
	if !dryRun {
		for _, key := range report.Orphans {
			if err := store.Delete(ctx, key); err != nil {
				return report, fmt.Errorf("ckpt: delete %s: %w", key, err)
			}
		}
	}
	return report, nil
}
