package ckpt

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/wire"
)

// flakyBackend wraps one routed backend and fails every operation while
// down — a store process that crashed and later restarts with its data
// intact (the restart-with-volume case, as opposed to MemStore.Close
// which is terminal).
type flakyBackend struct {
	objstore.Store
	down atomic.Bool
}

var errBackendDown = fmt.Errorf("objstore: backend down")

func (f *flakyBackend) Put(ctx context.Context, key string, value []byte) error {
	if f.down.Load() {
		return errBackendDown
	}
	return f.Store.Put(ctx, key, value)
}

func (f *flakyBackend) Get(ctx context.Context, key string) ([]byte, error) {
	if f.down.Load() {
		return nil, errBackendDown
	}
	return f.Store.Get(ctx, key)
}

func (f *flakyBackend) Delete(ctx context.Context, key string) error {
	if f.down.Load() {
		return errBackendDown
	}
	return f.Store.Delete(ctx, key)
}

func (f *flakyBackend) List(ctx context.Context, prefix string) ([]string, error) {
	if f.down.Load() {
		return nil, errBackendDown
	}
	return f.Store.List(ctx, prefix)
}

func (f *flakyBackend) Stat(ctx context.Context, key string) (int64, error) {
	if f.down.Load() {
		return 0, errBackendDown
	}
	return f.Store.Stat(ctx, key)
}

// TestRoutedStoreBackendDownNeverHalfCommits drives the full checkpoint
// stack — coordinator two-phase commit over a consistent-hash routed
// store — through a backend outage:
//
//  1. a composite checkpoint lands with its objects spread over all
//     three backends;
//  2. one backend goes down mid-job: the next Write's Puts fail cleanly,
//     the attempt aborts, and no composite manifest for it exists
//     anywhere (the commit point never half-lands);
//  3. after the backend comes back, RestoreLatest still lands on the
//     complete checkpoint and a retried Write commits the failed ID.
func TestRoutedStoreBackendDownNeverHalfCommits(t *testing.T) {
	mems := make([]*flakyBackend, 3)
	backends := make([]objstore.Backend, 3)
	for i := range mems {
		mems[i] = &flakyBackend{Store: objstore.NewMemStore(objstore.MemConfig{})}
		backends[i] = objstore.Backend{Name: fmt.Sprintf("store-%d", i), Store: mems[i]}
	}
	routed, err := objstore.NewRouted(backends)
	if err != nil {
		t.Fatal(err)
	}

	const job = "routedfault"
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: job, Store: routed, Policy: PolicyOneShot, ChunkRows: 64, Uploaders: 1},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	man0, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if man0.ID != 0 {
		t.Fatalf("first composite ID = %d, want 0", man0.ID)
	}
	// The checkpoint's objects must actually be spread: every backend
	// holds some of them, or the fault below tests nothing.
	for i, m := range mems {
		keys, err := m.Store.List(f.ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 0 {
			t.Fatalf("backend %d holds no objects; keyspace not spread", i)
		}
	}

	// Backend 1 goes down (1, not 0: store-0 is the anchor for pinned
	// control keys, and this failure is about hashed data keys).
	mems[1].down.Store(true)
	_, err = coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 32))
	if err == nil {
		t.Fatal("Write with a backend down succeeded; fault never injected")
	}
	if !strings.Contains(err.Error(), "backend down") {
		t.Fatalf("Write error = %v, want the backend's failure surfaced", err)
	}

	// The composite commit point must not exist for the failed ID —
	// check the live backends directly (the routed List would fail), and
	// the downed backend's data after it comes back.
	mems[1].down.Store(false)
	manKey := wire.ManifestKey(job, 1)
	for i, m := range mems {
		keys, err := m.Store.List(f.ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if k == manKey {
				t.Fatalf("backend %d holds composite manifest %s of the failed attempt", i, k)
			}
		}
	}

	// With the backend back, recovery lands on the complete checkpoint...
	rest, err := NewRestorer(job, routed)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := model.New(testModelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rest.RestoreLatest(f.ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != 0 {
		t.Fatalf("restored checkpoint %d, want 0", res.Manifests[0].ID)
	}
	v, err := rest.Verify(f.ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Fatalf("surviving checkpoint fails scrub: %v", v.Problems)
	}

	// ...and the failed ID is cleanly retryable.
	man1, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 32))
	if err != nil {
		t.Fatal(err)
	}
	if man1.ID != 1 {
		t.Fatalf("retry composite ID = %d, want 1", man1.ID)
	}
	if _, err := rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, f.m, m2)
}
