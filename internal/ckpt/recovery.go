package ckpt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/wire"
)

// Restorer loads checkpoints from a store and applies them to a model.
// Restoring de-quantizes rows back to fp32 (§5.2: "Check-N-Run would load
// a checkpoint and de-quantize it before resuming model training in
// single precision").
type Restorer struct {
	jobID string
	store objstore.Store
	// decoders is the number of concurrent chunk fetch+decode+apply
	// workers per manifest — the restore-side mirror of the engine's
	// encoder pool. Chunks within one manifest cover disjoint rows, so
	// applying them concurrently is safe; ordering across chain links is
	// preserved because links apply sequentially.
	decoders int
}

// NewRestorer returns a Restorer for the given job. Chunk decoding
// defaults to one worker per core; see SetDecoders.
func NewRestorer(jobID string, store objstore.Store) (*Restorer, error) {
	if jobID == "" {
		return nil, fmt.Errorf("ckpt: empty job ID")
	}
	if store == nil {
		return nil, fmt.Errorf("ckpt: nil store")
	}
	return &Restorer{jobID: jobID, store: store, decoders: runtime.GOMAXPROCS(0)}, nil
}

// SetDecoders overrides the per-manifest chunk decode parallelism.
// n <= 1 restores the serial decode baseline.
func (r *Restorer) SetDecoders(n int) {
	if n < 1 {
		n = 1
	}
	r.decoders = n
}

// ListManifests returns all valid checkpoint manifests for the job,
// ordered by ID.
func (r *Restorer) ListManifests(ctx context.Context) ([]*wire.Manifest, error) {
	keys, err := r.store.List(ctx, wire.JobPrefix(r.jobID))
	if err != nil {
		return nil, fmt.Errorf("ckpt: list: %w", err)
	}
	var out []*wire.Manifest
	for _, k := range keys {
		if !strings.HasSuffix(k, "/manifest") {
			continue
		}
		blob, err := r.store.Get(ctx, k)
		if err != nil {
			return nil, fmt.Errorf("ckpt: get %s: %w", k, err)
		}
		m, err := wire.DecodeManifest(blob)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %s: %w", k, err)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// Latest returns the most recent valid manifest, or ErrNoCheckpoint.
func (r *Restorer) Latest(ctx context.Context) (*wire.Manifest, error) {
	ms, err := r.ListManifests(ctx)
	if err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		return nil, ErrNoCheckpoint
	}
	return ms[len(ms)-1], nil
}

// ErrNoCheckpoint indicates the job has no valid checkpoint to restore.
var ErrNoCheckpoint = fmt.Errorf("ckpt: no valid checkpoint")

// manifest loads checkpoint id's manifest directly by key. A missing
// manifest wraps objstore.ErrNotFound so callers can distinguish
// "checkpoint does not exist" from transient store failures.
func (r *Restorer) manifest(ctx context.Context, id int) (*wire.Manifest, error) {
	blob, err := r.store.Get(ctx, wire.ManifestKey(r.jobID, id))
	if errors.Is(err, objstore.ErrNotFound) {
		return nil, fmt.Errorf("ckpt: checkpoint %d not found: %w", id, err)
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: get manifest %d: %w", id, err)
	}
	return wire.DecodeManifest(blob)
}

// Complete reports whether manifest man is fully restorable at the
// manifest level: for a composite, every shard manifest it references
// must be present. (Two-phase commit makes an incomplete composite
// impossible in normal operation — the composite manifest is written
// last — but manual deletion or partial GC can violate it, and restore
// should then fall back rather than fail.) Only a definitive missing
// object marks the checkpoint incomplete; transient store errors
// propagate so a flaky store cannot silently demote recovery to an
// older checkpoint.
func (r *Restorer) Complete(ctx context.Context, man *wire.Manifest) (bool, error) {
	if !man.Composite() {
		return true, nil
	}
	for _, key := range man.ShardManifestKeys {
		if _, err := r.store.Stat(ctx, key); err != nil {
			if errors.Is(err, objstore.ErrNotFound) {
				return false, nil
			}
			return false, fmt.Errorf("ckpt: stat %s: %w", key, err)
		}
	}
	return true, nil
}

// shardRestorer returns a Restorer scoped to shard s of this job,
// inheriting the decode parallelism setting.
func (r *Restorer) shardRestorer(s int) (*Restorer, error) {
	sub, err := NewRestorer(wire.ShardJobID(r.jobID, s), r.store)
	if err != nil {
		return nil, err
	}
	sub.decoders = r.decoders
	return sub, nil
}

// Chain returns the manifests that must be applied, oldest first, to
// restore the checkpoint with the given ID:
//
//   - full: [full]
//   - one-shot/intermittent incremental: [base, inc]
//   - consecutive incremental: [base, inc_1, ..., inc_n] — every link
//     from the base forward (§5.1: "this approach would require keeping
//     all previous incremental checkpoints").
func (r *Restorer) Chain(ctx context.Context, id int) ([]*wire.Manifest, error) {
	ms, err := r.ListManifests(ctx)
	if err != nil {
		return nil, err
	}
	return chainFrom(ms, id)
}

// chainFrom resolves the restore chain for id within an already-loaded
// manifest listing.
func chainFrom(ms []*wire.Manifest, id int) ([]*wire.Manifest, error) {
	byID := make(map[int]*wire.Manifest, len(ms))
	for _, m := range ms {
		byID[m.ID] = m
	}
	target, ok := byID[id]
	if !ok {
		return nil, fmt.Errorf("ckpt: checkpoint %d not found", id)
	}
	if target.Composite() {
		return nil, fmt.Errorf("ckpt: checkpoint %d is a sharded composite; its chains are per-shard", id)
	}
	if target.Kind == wire.KindFull.String() {
		return []*wire.Manifest{target}, nil
	}
	base, ok := byID[target.BaseID]
	if !ok {
		return nil, fmt.Errorf("ckpt: base %d of checkpoint %d missing", target.BaseID, id)
	}
	if target.SinceBase {
		// One-shot/intermittent: the target holds every row modified
		// since the base, so [base, target] reconstructs the state.
		return []*wire.Manifest{base, target}, nil
	}
	// Consecutive chain: every incremental between base and target must
	// be applied in order. Walk parent links back to the base.
	chain := []*wire.Manifest{target}
	cur := target
	for cur.ParentID != base.ID {
		parent, ok := byID[cur.ParentID]
		if !ok {
			return nil, fmt.Errorf("ckpt: chain link %d missing for checkpoint %d", cur.ParentID, id)
		}
		if parent.Kind != wire.KindIncremental.String() {
			return nil, fmt.Errorf("ckpt: chain of %d crosses non-incremental %d", id, parent.ID)
		}
		if parent.BaseID != base.ID {
			return nil, fmt.Errorf("ckpt: chain of %d crosses base boundary at %d", id, parent.ID)
		}
		chain = append(chain, parent)
		cur = parent
	}
	// Reverse into oldest-first order and prepend the base.
	out := make([]*wire.Manifest, 0, len(chain)+1)
	out = append(out, base)
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i])
	}
	return out, nil
}

// RestoreResult reports what a restore applied.
type RestoreResult struct {
	// Manifests is the applied chain, oldest first.
	Manifests []*wire.Manifest
	// Reader is the reader state to hand to the reader tier.
	Reader data.ReaderState
	// Step is the trained-batch count of the restored checkpoint.
	Step uint64
	// RowsApplied counts embedding rows written (across chain links;
	// later links overwrite earlier ones).
	RowsApplied int
	// BytesRead counts payload bytes fetched.
	BytesRead int64
}

// Restore loads checkpoint id into m. Later chain links overwrite earlier
// ones row-by-row, reconstructing the exact incremental semantics.
// Sharded composites fan out across shards in parallel.
func (r *Restorer) Restore(ctx context.Context, id int, m *model.DLRM) (*RestoreResult, error) {
	ms, err := r.ListManifests(ctx)
	if err != nil {
		return nil, err
	}
	for _, man := range ms {
		if man.ID == id && man.Composite() {
			return r.restoreComposite(ctx, man, m)
		}
	}
	chain, err := chainFrom(ms, id)
	if err != nil {
		return nil, err
	}
	res := &RestoreResult{Manifests: chain}
	for _, man := range chain {
		if err := r.applyOne(ctx, man, m, res); err != nil {
			return nil, err
		}
	}
	last := chain[len(chain)-1]
	res.Reader = data.ReaderState{NextSample: last.ReaderNextSample, BatchSize: last.ReaderBatchSize}
	res.Step = last.Step
	// The tracker restarts clean: rows restored are not "modified" in
	// the next interval's sense.
	m.Tracker.Reset()
	return res, nil
}

// restoreComposite restores a sharded checkpoint: each shard's chain is
// resolved and applied concurrently (shards own disjoint tables, so the
// writes never overlap), then the composite-level dense state lands.
func (r *Restorer) restoreComposite(ctx context.Context, man *wire.Manifest, m *model.DLRM) (*RestoreResult, error) {
	res := &RestoreResult{Manifests: []*wire.Manifest{man}}
	shardRes := make([]*RestoreResult, man.ShardCount)
	err := forEachShard(man.ShardCount, func(s int) error {
		sub, err := r.shardRestorer(s)
		if err != nil {
			return err
		}
		chain, err := sub.Chain(ctx, man.ID)
		if err != nil {
			return fmt.Errorf("ckpt: shard %d: %w", s, err)
		}
		sres := &RestoreResult{}
		for _, sm := range chain {
			if err := sub.applyOne(ctx, sm, m, sres); err != nil {
				return fmt.Errorf("ckpt: shard %d: %w", s, err)
			}
		}
		shardRes[s] = sres
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sres := range shardRes {
		res.RowsApplied += sres.RowsApplied
		res.BytesRead += sres.BytesRead
	}
	// The composite's own Tables carry no chunk keys, so applying it
	// contributes exactly the shape sanity checks and the dense state.
	if err := r.applyOne(ctx, man, m, res); err != nil {
		return nil, err
	}
	res.Reader = data.ReaderState{NextSample: man.ReaderNextSample, BatchSize: man.ReaderBatchSize}
	res.Step = man.Step
	m.Tracker.Reset()
	return res, nil
}

// RestoreLatest restores the most recent complete checkpoint, falling
// back past any incomplete (partially garbage-collected or tampered)
// composite to the newest one that is fully restorable.
func (r *Restorer) RestoreLatest(ctx context.Context, m *model.DLRM) (*RestoreResult, error) {
	ms, err := r.ListManifests(ctx)
	if err != nil {
		return nil, err
	}
	for i := len(ms) - 1; i >= 0; i-- {
		ok, err := r.Complete(ctx, ms[i])
		if err != nil {
			return nil, err
		}
		if ok {
			return r.Restore(ctx, ms[i].ID, m)
		}
	}
	return nil, ErrNoCheckpoint
}

// chunkWork names one chunk object to fetch, decode and apply.
type chunkWork struct {
	tableID int
	tab     *embedding.Table
	key     string
}

// TableSet resolves table IDs to live embedding tables during a
// manifest apply. *embedding.ShardedModel satisfies it (via m.Sparse);
// serving replicas provide their own resolver over the table versions
// they maintain.
type TableSet interface {
	// Table returns the table with the given ID, or nil if absent.
	Table(id int) *embedding.Table
}

// applyOne applies a single manifest's chunks and dense state to m.
// Chain-link ordering is the caller's loop, which applies manifests
// sequentially.
func (r *Restorer) applyOne(ctx context.Context, man *wire.Manifest, m *model.DLRM, res *RestoreResult) error {
	if err := r.ApplyManifest(ctx, man, m.Sparse, res); err != nil {
		return err
	}
	if man.DenseKey == "" {
		// Shard manifests carry no dense state; the composite does.
		return nil
	}
	dense, err := r.store.Get(ctx, man.DenseKey)
	if err != nil {
		return fmt.Errorf("ckpt: dense state: %w", err)
	}
	res.BytesRead += int64(len(dense))
	if err := m.RestoreDenseState(dense); err != nil {
		return fmt.Errorf("ckpt: dense state: %w", err)
	}
	return nil
}

// ApplyManifest fetches, decodes and applies one manifest's chunk
// payload onto tabs, de-quantizing rows in place. Chunks are fetched,
// decoded and applied across r.decoders workers: every chunk of one
// manifest covers a disjoint row set, so concurrent application never
// races. Dense state is NOT applied — it lives on the model, not the
// tables; full-restore callers go through Restore, while serving
// replicas (which hold bare tables) call this directly to land each
// delta. Chunk keys in manifests are absolute, so a Restorer of any
// scope can apply any shard's manifest.
func (r *Restorer) ApplyManifest(ctx context.Context, man *wire.Manifest, tabs TableSet, res *RestoreResult) error {
	var work []chunkWork
	for i := range man.Tables {
		tm := &man.Tables[i]
		tab := tabs.Table(tm.TableID)
		if tab == nil {
			return fmt.Errorf("ckpt: model has no table %d", tm.TableID)
		}
		if tab.Rows != tm.Rows || tab.Dim != tm.Dim {
			return fmt.Errorf("ckpt: table %d shape %dx%d != checkpoint %dx%d",
				tm.TableID, tab.Rows, tab.Dim, tm.Rows, tm.Dim)
		}
		for _, key := range tm.ChunkKeys {
			work = append(work, chunkWork{tableID: tm.TableID, tab: tab, key: key})
		}
	}

	if len(work) > 0 {
		workers := max(1, min(r.decoders, len(work)))
		dctx, cancel := context.WithCancel(ctx)
		var rowsApplied, bytesRead atomic.Int64
		errCh := make(chan error, workers)
		jobs := make(chan chunkWork)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var scratch quant.Scratch
				for w := range jobs {
					rows, bytes, err := r.applyChunk(dctx, w, &scratch)
					if err != nil {
						select {
						case errCh <- err:
							cancel()
						default:
						}
						return
					}
					rowsApplied.Add(int64(rows))
					bytesRead.Add(bytes)
				}
			}()
		}
	feed:
		for _, w := range work {
			select {
			case jobs <- w:
			case <-dctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		cancel()
		select {
		case err := <-errCh:
			return err
		default:
		}
		res.RowsApplied += int(rowsApplied.Load())
		res.BytesRead += bytesRead.Load()
	}
	return nil
}

// applyChunk fetches, decodes and applies one chunk, de-quantizing each
// row directly into the table's storage (no intermediate fp32 vector).
func (r *Restorer) applyChunk(ctx context.Context, w chunkWork, scratch *quant.Scratch) (rowsApplied int, bytesRead int64, err error) {
	blob, err := r.store.Get(ctx, w.key)
	if err != nil {
		return 0, 0, fmt.Errorf("ckpt: get %s: %w", w.key, err)
	}
	bytesRead = int64(len(blob))
	// Alias decode: blob is function-local and the rows are dequantized
	// into the table before it goes out of scope, so the per-row Codes
	// copy is pure overhead.
	chunk, err := wire.DecodeChunkAlias(blob)
	if err != nil {
		return 0, bytesRead, fmt.Errorf("ckpt: %s: %w", w.key, err)
	}
	if int(chunk.TableID) != w.tableID {
		return 0, bytesRead, fmt.Errorf("ckpt: %s holds table %d, want %d", w.key, chunk.TableID, w.tableID)
	}
	tab := w.tab
	for i := range chunk.Rows {
		row := &chunk.Rows[i]
		if int(row.Index) >= tab.Rows {
			return rowsApplied, bytesRead, fmt.Errorf("ckpt: %s row %d out of range", w.key, row.Index)
		}
		if row.Q.N != tab.Dim {
			return rowsApplied, bytesRead, fmt.Errorf("ckpt: %s row %d dim %d != %d", w.key, row.Index, row.Q.N, tab.Dim)
		}
		if err := quant.DequantizeInto(tab.Lookup(int(row.Index)), row.Q, scratch); err != nil {
			return rowsApplied, bytesRead, fmt.Errorf("ckpt: %s row %d: %w", w.key, row.Index, err)
		}
		tab.Accum[row.Index] = row.Accum
		rowsApplied++
	}
	return rowsApplied, bytesRead, nil
}
