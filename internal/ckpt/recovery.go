package ckpt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/wire"
)

// Restorer loads checkpoints from a store and applies them to a model.
// Restoring de-quantizes rows back to fp32 (§5.2: "Check-N-Run would load
// a checkpoint and de-quantize it before resuming model training in
// single precision").
type Restorer struct {
	jobID string
	store objstore.Store
}

// NewRestorer returns a Restorer for the given job.
func NewRestorer(jobID string, store objstore.Store) (*Restorer, error) {
	if jobID == "" {
		return nil, fmt.Errorf("ckpt: empty job ID")
	}
	if store == nil {
		return nil, fmt.Errorf("ckpt: nil store")
	}
	return &Restorer{jobID: jobID, store: store}, nil
}

// ListManifests returns all valid checkpoint manifests for the job,
// ordered by ID.
func (r *Restorer) ListManifests(ctx context.Context) ([]*wire.Manifest, error) {
	keys, err := r.store.List(ctx, wire.JobPrefix(r.jobID))
	if err != nil {
		return nil, fmt.Errorf("ckpt: list: %w", err)
	}
	var out []*wire.Manifest
	for _, k := range keys {
		if !strings.HasSuffix(k, "/manifest") {
			continue
		}
		blob, err := r.store.Get(ctx, k)
		if err != nil {
			return nil, fmt.Errorf("ckpt: get %s: %w", k, err)
		}
		m, err := wire.DecodeManifest(blob)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %s: %w", k, err)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// Latest returns the most recent valid manifest, or ErrNoCheckpoint.
func (r *Restorer) Latest(ctx context.Context) (*wire.Manifest, error) {
	ms, err := r.ListManifests(ctx)
	if err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		return nil, ErrNoCheckpoint
	}
	return ms[len(ms)-1], nil
}

// ErrNoCheckpoint indicates the job has no valid checkpoint to restore.
var ErrNoCheckpoint = fmt.Errorf("ckpt: no valid checkpoint")

// Chain returns the manifests that must be applied, oldest first, to
// restore the checkpoint with the given ID:
//
//   - full: [full]
//   - one-shot/intermittent incremental: [base, inc]
//   - consecutive incremental: [base, inc_1, ..., inc_n] — every link
//     from the base forward (§5.1: "this approach would require keeping
//     all previous incremental checkpoints").
func (r *Restorer) Chain(ctx context.Context, id int) ([]*wire.Manifest, error) {
	ms, err := r.ListManifests(ctx)
	if err != nil {
		return nil, err
	}
	byID := make(map[int]*wire.Manifest, len(ms))
	for _, m := range ms {
		byID[m.ID] = m
	}
	target, ok := byID[id]
	if !ok {
		return nil, fmt.Errorf("ckpt: checkpoint %d not found", id)
	}
	if target.Kind == wire.KindFull.String() {
		return []*wire.Manifest{target}, nil
	}
	base, ok := byID[target.BaseID]
	if !ok {
		return nil, fmt.Errorf("ckpt: base %d of checkpoint %d missing", target.BaseID, id)
	}
	if target.SinceBase {
		// One-shot/intermittent: the target holds every row modified
		// since the base, so [base, target] reconstructs the state.
		return []*wire.Manifest{base, target}, nil
	}
	// Consecutive chain: every incremental between base and target must
	// be applied in order. Walk parent links back to the base.
	chain := []*wire.Manifest{target}
	cur := target
	for cur.ParentID != base.ID {
		parent, ok := byID[cur.ParentID]
		if !ok {
			return nil, fmt.Errorf("ckpt: chain link %d missing for checkpoint %d", cur.ParentID, id)
		}
		if parent.Kind != wire.KindIncremental.String() {
			return nil, fmt.Errorf("ckpt: chain of %d crosses non-incremental %d", id, parent.ID)
		}
		if parent.BaseID != base.ID {
			return nil, fmt.Errorf("ckpt: chain of %d crosses base boundary at %d", id, parent.ID)
		}
		chain = append(chain, parent)
		cur = parent
	}
	// Reverse into oldest-first order and prepend the base.
	out := make([]*wire.Manifest, 0, len(chain)+1)
	out = append(out, base)
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i])
	}
	return out, nil
}

// RestoreResult reports what a restore applied.
type RestoreResult struct {
	// Manifests is the applied chain, oldest first.
	Manifests []*wire.Manifest
	// Reader is the reader state to hand to the reader tier.
	Reader data.ReaderState
	// Step is the trained-batch count of the restored checkpoint.
	Step uint64
	// RowsApplied counts embedding rows written (across chain links;
	// later links overwrite earlier ones).
	RowsApplied int
	// BytesRead counts payload bytes fetched.
	BytesRead int64
}

// Restore loads checkpoint id into m. Later chain links overwrite earlier
// ones row-by-row, reconstructing the exact incremental semantics.
func (r *Restorer) Restore(ctx context.Context, id int, m *model.DLRM) (*RestoreResult, error) {
	chain, err := r.Chain(ctx, id)
	if err != nil {
		return nil, err
	}
	res := &RestoreResult{Manifests: chain}
	for _, man := range chain {
		if err := r.applyOne(ctx, man, m, res); err != nil {
			return nil, err
		}
	}
	last := chain[len(chain)-1]
	res.Reader = data.ReaderState{NextSample: last.ReaderNextSample, BatchSize: last.ReaderBatchSize}
	res.Step = last.Step
	// The tracker restarts clean: rows restored are not "modified" in
	// the next interval's sense.
	m.Tracker.Reset()
	return res, nil
}

// RestoreLatest restores the most recent checkpoint.
func (r *Restorer) RestoreLatest(ctx context.Context, m *model.DLRM) (*RestoreResult, error) {
	latest, err := r.Latest(ctx)
	if err != nil {
		return nil, err
	}
	return r.Restore(ctx, latest.ID, m)
}

// applyOne applies a single manifest's chunks and dense state to m.
func (r *Restorer) applyOne(ctx context.Context, man *wire.Manifest, m *model.DLRM, res *RestoreResult) error {
	for _, tm := range man.Tables {
		tab := m.Sparse.Table(tm.TableID)
		if tab == nil {
			return fmt.Errorf("ckpt: model has no table %d", tm.TableID)
		}
		if tab.Rows != tm.Rows || tab.Dim != tm.Dim {
			return fmt.Errorf("ckpt: table %d shape %dx%d != checkpoint %dx%d",
				tm.TableID, tab.Rows, tab.Dim, tm.Rows, tm.Dim)
		}
		for _, key := range tm.ChunkKeys {
			blob, err := r.store.Get(ctx, key)
			if err != nil {
				return fmt.Errorf("ckpt: get %s: %w", key, err)
			}
			res.BytesRead += int64(len(blob))
			chunk, err := wire.DecodeChunk(blob)
			if err != nil {
				return fmt.Errorf("ckpt: %s: %w", key, err)
			}
			if int(chunk.TableID) != tm.TableID {
				return fmt.Errorf("ckpt: %s holds table %d, want %d", key, chunk.TableID, tm.TableID)
			}
			for i := range chunk.Rows {
				row := &chunk.Rows[i]
				if int(row.Index) >= tab.Rows {
					return fmt.Errorf("ckpt: %s row %d out of range", key, row.Index)
				}
				vals := quant.Dequantize(row.Q)
				if len(vals) != tab.Dim {
					return fmt.Errorf("ckpt: %s row %d dim %d != %d", key, row.Index, len(vals), tab.Dim)
				}
				copy(tab.Lookup(int(row.Index)), vals)
				tab.Accum[row.Index] = row.Accum
				res.RowsApplied++
			}
		}
	}
	dense, err := r.store.Get(ctx, man.DenseKey)
	if err != nil {
		return fmt.Errorf("ckpt: dense state: %w", err)
	}
	res.BytesRead += int64(len(dense))
	if err := m.RestoreDenseState(dense); err != nil {
		return fmt.Errorf("ckpt: dense state: %w", err)
	}
	return nil
}
