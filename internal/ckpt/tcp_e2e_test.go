package ckpt

import (
	"testing"

	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
)

// dialTestServer stands up a real objstore.Server over TCP loopback and
// returns a connected Client — the full Engine → Client → protocol →
// Server → MemStore path the trainer would run against a remote store.
func dialTestServer(t *testing.T) *objstore.Client {
	t.Helper()
	backend := objstore.NewMemStore(objstore.MemConfig{})
	srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		backend.Close()
	})
	client, err := objstore.Dial(srv.Addr(), objstore.ClientConfig{PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestEngineOverTCPRoundTrip(t *testing.T) {
	client := dialTestServer(t)
	f := newFixture(t, Config{Store: client, Policy: PolicyOneShot,
		Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 8}})
	for i := 0; i < 3; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 32)); err != nil {
			t.Fatal(err)
		}
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(f.m, m2, f.gen, 0.05) {
		t.Fatal("TCP round-trip restore diverged")
	}
	// The scrub also runs over the wire.
	vs, err := f.rest.VerifyAll(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if !v.OK() {
			t.Fatalf("checkpoint %d flagged over TCP: %v", v.ID, v.Problems)
		}
	}
}

func TestCoordinatorOverTCPSharded(t *testing.T) {
	// Four shard writers pipelining uploads through one pooled TCP
	// client concurrently — the connection pool sees real concurrent
	// acquire/release traffic from multiple writer goroutines.
	client := dialTestServer(t)
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "tcp4", Store: client, Policy: PolicyOneShot,
			ChunkRows: 64, Uploaders: 3},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 2, 32)); err != nil {
			t.Fatal(err)
		}
	}
	rest, err := NewRestorer("tcp4", client)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, f.m, m2)
}
