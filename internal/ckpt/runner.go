package ckpt

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bitvec"
	"repro/internal/data"
	"repro/internal/wire"
)

// ShardRunner drives one shard's side of the composite two-phase commit.
// The coordinator (or a remote controller) talks to every shard through
// this interface, so the same orchestration covers both deployment
// shapes: LocalRunner wraps an in-process Engine (PR 1's N-goroutine
// coordinator), while ctrl.RemoteRunner speaks the control-plane
// protocol to a shard-agent daemon that hosts the Engine in its own
// process.
//
// The phase contract matches Engine.Prepare/Publish/Finalize/Abort:
// Prepare uploads the shard's payload without making anything visible,
// Publish stores the shard manifest (still not restorable — validity is
// the composite manifest), Finalize commits shard-local state after the
// composite commit point, and Abort rolls an attempt back completely.
// Abort must be idempotent and must succeed (as a no-op) when nothing is
// prepared, because the orchestrator aborts every shard after a partial
// failure.
type ShardRunner interface {
	// Shard returns the runner's shard index within the job.
	Shard() int
	Prepare(ctx context.Context, req PrepareRequest) (*wire.Manifest, error)
	Publish(ctx context.Context, id int) error
	Finalize(ctx context.Context, id int) error
	Abort(ctx context.Context, id int) error
}

// PrepareRequest names the checkpoint attempt a shard should prepare.
type PrepareRequest struct {
	// ID is the composite checkpoint sequence number. A shard whose
	// engine is not at this ID must refuse (fencing): the orchestrator
	// and shard disagree about history.
	ID int
	// Step is the global training step of the consistent cut. Remote
	// agents advance their replica to exactly this step before
	// snapshotting; local runners receive a snapshot already taken at it.
	Step uint64
	// Snapshot is the shard's carved view for in-process runners. Remote
	// runners ignore it: their agents snapshot their own hosted state.
	Snapshot *Snapshot
}

// LocalRunner adapts an in-process Engine to the ShardRunner interface.
// It is the PR 1 deployment shape: all shards live in the coordinator's
// process and "RPC" is a method call.
type LocalRunner struct {
	shard   int
	eng     *Engine
	pending *Prepared
}

// NewLocalRunner wraps eng as shard's runner.
func NewLocalRunner(shard int, eng *Engine) *LocalRunner {
	return &LocalRunner{shard: shard, eng: eng}
}

// Shard implements ShardRunner.
func (r *LocalRunner) Shard() int { return r.shard }

// Engine returns the wrapped engine.
func (r *LocalRunner) Engine() *Engine { return r.eng }

// Prepare implements ShardRunner.
func (r *LocalRunner) Prepare(ctx context.Context, req PrepareRequest) (*wire.Manifest, error) {
	if req.Snapshot == nil {
		return nil, fmt.Errorf("ckpt: shard %d: local prepare needs a snapshot", r.shard)
	}
	if r.pending != nil {
		return nil, fmt.Errorf("ckpt: shard %d: checkpoint %d already in flight", r.shard, r.pending.man.ID)
	}
	if next := r.eng.NextID(); req.ID != next {
		return nil, fmt.Errorf("ckpt: shard %d: prepare id %d, engine at %d", r.shard, req.ID, next)
	}
	p, err := r.eng.Prepare(ctx, req.Snapshot)
	if err != nil {
		return nil, err
	}
	r.pending = p
	return p.Manifest(), nil
}

func (r *LocalRunner) checkPending(id int) error {
	if r.pending == nil {
		return fmt.Errorf("ckpt: shard %d: no prepared checkpoint", r.shard)
	}
	if got := r.pending.man.ID; got != id {
		return fmt.Errorf("ckpt: shard %d: prepared checkpoint is %d, not %d", r.shard, got, id)
	}
	return nil
}

// Publish implements ShardRunner.
func (r *LocalRunner) Publish(ctx context.Context, id int) error {
	if err := r.checkPending(id); err != nil {
		return err
	}
	return r.pending.Publish(ctx)
}

// Finalize implements ShardRunner.
func (r *LocalRunner) Finalize(ctx context.Context, id int) error {
	if err := r.checkPending(id); err != nil {
		return err
	}
	r.pending.Finalize(ctx)
	r.pending = nil
	return nil
}

// Abort implements ShardRunner. Aborting with nothing prepared is a
// no-op so the orchestrator can blanket-abort after partial failures.
func (r *LocalRunner) Abort(ctx context.Context, id int) error {
	if r.pending == nil {
		return nil
	}
	r.pending.Abort(ctx)
	r.pending = nil
	return nil
}

// PrepareShards runs the prepare phase concurrently across runners:
// every shard quantizes and uploads its chunks; nothing becomes visible
// to recovery. snapAt supplies shard s's carved snapshot for local
// runners and may be nil when every runner snapshots its own hosted
// state (the remote-controller shape). Returns the per-shard manifests
// in shard order. On error the caller must AbortShards.
func PrepareShards(ctx context.Context, runners []ShardRunner, id int, step uint64, snapAt func(s int) *Snapshot) ([]*wire.Manifest, error) {
	mans := make([]*wire.Manifest, len(runners))
	err := forEachShard(len(runners), func(s int) error {
		req := PrepareRequest{ID: id, Step: step}
		if snapAt != nil {
			req.Snapshot = snapAt(s)
		}
		m, err := runners[s].Prepare(ctx, req)
		if err != nil {
			return fmt.Errorf("ckpt: shard %d: %w", s, err)
		}
		mans[s] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mans, nil
}

// PublishShards runs the publish phase concurrently: shard manifests are
// stored, but the checkpoint is still not restorable because only the
// composite manifest defines validity. On error the caller must
// AbortShards.
func PublishShards(ctx context.Context, runners []ShardRunner, id int) error {
	return forEachShard(len(runners), func(s int) error {
		if err := runners[s].Publish(ctx, id); err != nil {
			return fmt.Errorf("ckpt: shard %d: %w", s, err)
		}
		return nil
	})
}

// FinalizeShards commits shard-local state after the composite manifest
// — the commit point — is durable. A local finalize cannot fail; a
// remote one can (crashed agent), but the checkpoint is already valid,
// so the first error is returned for logging rather than rollback.
func FinalizeShards(ctx context.Context, runners []ShardRunner, id int) error {
	return forEachShard(len(runners), func(s int) error {
		if err := runners[s].Finalize(ctx, id); err != nil {
			return fmt.Errorf("ckpt: shard %d: %w", s, err)
		}
		return nil
	})
}

// abortTimeout bounds best-effort rollback so a partitioned shard agent
// cannot hang the abort path forever.
const abortTimeout = 30 * time.Second

// AbortShards best-effort aborts the attempt on every runner, deleting
// all objects the prepared shards stored. It is immune to cancellation
// of ctx — rollback must proceed exactly when the parent context died —
// but bounded, so an unreachable remote shard is skipped rather than
// waited on (its debris is unreferenced and swept by gc).
func AbortShards(ctx context.Context, runners []ShardRunner, id int) {
	actx, cancel := context.WithTimeout(context.WithoutCancel(ctx), abortTimeout)
	defer cancel()
	_ = forEachShard(len(runners), func(s int) error {
		return runners[s].Abort(actx, id)
	})
}

// SubSnapshot carves one shard's view out of snap under the table ->
// shard assignment: the tables it owns and their modified bitmaps.
// Tables are shared, not copied — the snapshot already owns its memory
// exclusively and shards own disjoint subsets. Dense state is carried
// over; callers that store the replicated MLP state once at the
// composite level should nil it out on the carved view.
func SubSnapshot(snap *Snapshot, assign map[int]int, shard int) *Snapshot {
	sub := &Snapshot{
		Step:     snap.Step,
		Reader:   snap.Reader,
		Dense:    snap.Dense,
		Modified: make(map[int]*bitvec.Bitmap),
	}
	for _, tab := range snap.Tables {
		if assign[tab.ID] != shard {
			continue
		}
		sub.Tables = append(sub.Tables, tab)
		if bm, ok := snap.Modified[tab.ID]; ok {
			sub.Modified[tab.ID] = bm
		}
	}
	return sub
}

// BuildComposite assembles the top-level manifest from prepared shard
// manifests. Kind is "full" only if every shard wrote a full baseline
// this round (shards running the intermittent policy may take baselines
// at different times). Tables aggregates the shard table manifests for
// inspection — with ChunkKeys left nil, because the restorable chunk
// references live in the shard manifests. Both the in-process
// Coordinator and the remote ctrl.Controller commit exactly this object.
func BuildComposite(jobID string, id int, step uint64, reader data.ReaderState, shardMans []*wire.Manifest, assign map[int]int, denseKey string, denseBytes int64) *wire.Manifest {
	man := &wire.Manifest{
		FormatVersion:    wire.CurrentFormatVersion,
		JobID:            jobID,
		ID:               id,
		Kind:             wire.KindFull.String(),
		BaseID:           -1,
		ParentID:         id - 1,
		Step:             step,
		ReaderNextSample: reader.NextSample,
		ReaderBatchSize:  reader.BatchSize,
		DenseKey:         denseKey,
		PayloadBytes:     denseBytes,
		ShardCount:       len(shardMans),
		TableShards:      assign,
	}
	allFull := true
	for s, sm := range shardMans {
		man.Quant = sm.Quant
		man.PayloadBytes += sm.PayloadBytes
		man.ShardManifestKeys = append(man.ShardManifestKeys,
			wire.ManifestKey(wire.ShardJobID(jobID, s), id))
		if sm.Kind != wire.KindFull.String() {
			allFull = false
		}
		for _, tm := range sm.Tables {
			tm.ChunkKeys = nil
			man.Tables = append(man.Tables, tm)
		}
	}
	if !allFull {
		man.Kind = wire.KindIncremental.String()
	}
	sort.Slice(man.Tables, func(a, b int) bool { return man.Tables[a].TableID < man.Tables[b].TableID })
	return man
}
