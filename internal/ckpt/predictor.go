package ckpt

import (
	"fmt"

	"repro/internal/stats"
)

// PredictorKind selects the intermittent policy's full-vs-incremental
// predictor. The paper ships the simple history predictor and notes it
// "can be improved with more accurate prediction models, which are part
// of future work" (§5.1); PredictorRegression is that improvement.
type PredictorKind uint8

const (
	// PredictorHistory is the paper's §5.1 predictor: assume the next
	// i+1 incremental sizes repeat the past ones if a full baseline is
	// taken now (Fc = 1 + ΣS_j) and stay at least S_i otherwise
	// (Ic = (i+1)·S_i); take a full checkpoint iff Fc <= Ic.
	PredictorHistory PredictorKind = iota
	// PredictorRegression fits a least-squares line to the observed
	// incremental growth S_j ≈ a + b·j and compares the projected cost
	// of both branches over the next i+1 intervals: restarting the curve
	// from j=1 after a full baseline vs continuing it from j=i+1.
	PredictorRegression
)

// String names the predictor.
func (p PredictorKind) String() string {
	switch p {
	case PredictorHistory:
		return "history"
	case PredictorRegression:
		return "regression"
	default:
		return fmt.Sprintf("predictor(%d)", uint8(p))
	}
}

// Valid reports whether p is a known predictor.
func (p PredictorKind) Valid() bool { return p <= PredictorRegression }

// regressionPredictFull implements PredictorRegression. sizes are
// S_1..S_i; prospective is the would-be size of the next incremental.
func regressionPredictFull(sizes []float64, prospective float64) bool {
	i := len(sizes)
	if i == 0 {
		return false
	}
	if i == 1 {
		// Not enough points for a slope; fall back to the history rule.
		si := sizes[0]
		if prospective > si {
			si = prospective
		}
		return 1+stats.Sum(sizes) <= float64(i+1)*si
	}
	a, b := fitLine(sizes)
	if b < 0 {
		b = 0 // incremental sizes never shrink under the one-shot view
	}
	horizon := i + 1
	// Branch A: full baseline now. The growth curve restarts at j=1.
	fc := 1.0
	for j := 1; j <= horizon; j++ {
		fc += clampSize(a + b*float64(j))
	}
	// Branch B: keep going incremental. The curve continues from j=i+1.
	ic := 0.0
	for j := i + 1; j <= i+horizon; j++ {
		s := clampSize(a + b*float64(j))
		if j == i+1 && prospective > s {
			s = prospective
		}
		ic += s
	}
	return fc <= ic
}

// fitLine returns the least-squares (intercept, slope) of y_j over
// j = 1..len(y).
func fitLine(y []float64) (a, b float64) {
	n := float64(len(y))
	var sumX, sumY, sumXY, sumXX float64
	for j, v := range y {
		x := float64(j + 1)
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return stats.Mean(y), 0
	}
	b = (n*sumXY - sumX*sumY) / den
	a = (sumY - b*sumX) / n
	return a, b
}

// clampSize bounds a projected incremental size to [0, 1] (a fraction of
// the full checkpoint).
func clampSize(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
