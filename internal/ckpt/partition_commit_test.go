package ckpt

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/wire"
)

// partitionFuse is a shared network fault: after `allow` Puts have gone
// through across the whole backend set, every operation on every
// wrapped backend fails with ErrStoreUnavailable — the coordinator's
// side of the network is gone, exactly the view a writer has of a
// partition. Unlike flakyBackend (one store down), the fuse models a
// correlated cut that strikes at a precise point inside the commit.
type partitionFuse struct {
	allow   atomic.Int64 // Puts still permitted before the cut
	tripped atomic.Bool
	puts    atomic.Int64 // total Puts observed (for calibration)
}

var errInjectedPartition = fmt.Errorf("%w: injected partition", objstore.ErrStoreUnavailable)

func (pf *partitionFuse) gate() error {
	if pf.tripped.Load() {
		return errInjectedPartition
	}
	return nil
}

func (pf *partitionFuse) gatePut() error {
	if err := pf.gate(); err != nil {
		return err
	}
	pf.puts.Add(1)
	if pf.allow.Add(-1) < 0 {
		pf.tripped.Store(true)
		return errInjectedPartition
	}
	return nil
}

func (pf *partitionFuse) heal() {
	pf.allow.Store(1 << 30)
	pf.tripped.Store(false)
}

// fusedBackend routes every op through the shared fuse.
type fusedBackend struct {
	objstore.Store
	fuse *partitionFuse
}

func (f *fusedBackend) Put(ctx context.Context, key string, value []byte) error {
	if err := f.fuse.gatePut(); err != nil {
		return err
	}
	return f.Store.Put(ctx, key, value)
}

func (f *fusedBackend) Get(ctx context.Context, key string) ([]byte, error) {
	if err := f.fuse.gate(); err != nil {
		return nil, err
	}
	return f.Store.Get(ctx, key)
}

func (f *fusedBackend) Delete(ctx context.Context, key string) error {
	if err := f.fuse.gate(); err != nil {
		return err
	}
	return f.Store.Delete(ctx, key)
}

func (f *fusedBackend) List(ctx context.Context, prefix string) ([]string, error) {
	if err := f.fuse.gate(); err != nil {
		return nil, err
	}
	return f.Store.List(ctx, prefix)
}

func (f *fusedBackend) Stat(ctx context.Context, key string) (int64, error) {
	if err := f.fuse.gate(); err != nil {
		return 0, err
	}
	return f.Store.Stat(ctx, key)
}

// partitionRig is one isolated run: a 3-backend routed store behind a
// shared fuse, a 2-shard coordinator, and one committed baseline
// checkpoint so every partition strikes an incremental-capable job.
type partitionRig struct {
	fuse   *partitionFuse
	mems   []*objstore.MemStore
	routed *objstore.RoutedStore
	coord  *Coordinator
	fix    *fixture
	snap   *Snapshot
}

const partitionJob = "partckpt"

func newPartitionRig(t *testing.T) *partitionRig {
	t.Helper()
	fuse := &partitionFuse{}
	fuse.allow.Store(1 << 30)
	mems := make([]*objstore.MemStore, 3)
	backends := make([]objstore.Backend, 3)
	for i := range mems {
		mems[i] = objstore.NewMemStore(objstore.MemConfig{})
		backends[i] = objstore.Backend{
			Name:  fmt.Sprintf("store-%d", i),
			Store: &fusedBackend{Store: mems[i], fuse: fuse},
		}
	}
	routed, err := objstore.NewRouted(backends)
	if err != nil {
		t.Fatal(err)
	}
	fix := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: partitionJob, Store: routed, Policy: PolicyOneShot, ChunkRows: 64, Uploaders: 1},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Write(fix.ctx, fix.trainAndSnapshot(t, 2, 32)); err != nil {
		t.Fatalf("baseline checkpoint: %v", err)
	}
	// One snapshot, reused by the partitioned attempt and its retry, so
	// the final store state must match the fixture model bit-for-bit.
	snap := fix.trainAndSnapshot(t, 6, 64)
	return &partitionRig{fuse: fuse, mems: mems, routed: routed, coord: coord, fix: fix, snap: snap}
}

// TestPartitionDuringCommitTable cuts the network at a precise Put count
// inside checkpoint 1's two-phase commit — at the first byte, mid
// prepare, late publish, and on the commit Put itself — and asserts the
// same contract at every cut point:
//
//   - the Write fails with the typed objstore.ErrStoreUnavailable;
//   - no backend holds a composite manifest for the torn ID (the commit
//     point is atomic: it lands entirely or not at all);
//   - after the heal, SweepOrphans clears the debris the unreachable
//     abort left behind, the retried Write commits the same ID, and
//     RestoreLatest is bit-identical to the writer's model.
func TestPartitionDuringCommitTable(t *testing.T) {
	// Calibrate: a healthy run of checkpoint 1 to count its total Puts.
	cal := newPartitionRig(t)
	cal.fuse.puts.Store(0)
	if _, err := cal.coord.Write(cal.fix.ctx, cal.snap); err != nil {
		t.Fatalf("calibration checkpoint: %v", err)
	}
	total := cal.fuse.puts.Load()
	if total < 8 {
		t.Fatalf("calibration counted only %d Puts; cut points would be degenerate", total)
	}

	rows := []struct {
		name  string
		allow int64
	}{
		{"down-at-first-put", 0},
		{"mid-prepare", total / 3},
		{"late-publish", 2 * total / 3},
		{"at-commit-put", total - 1},
	}
	for _, row := range rows {
		row := row
		t.Run(row.name, func(t *testing.T) {
			t.Parallel()
			rig := newPartitionRig(t)

			rig.fuse.allow.Store(row.allow)
			_, err := rig.coord.Write(rig.fix.ctx, rig.snap)
			if err == nil {
				t.Fatalf("Write survived a partition after %d of %d Puts", row.allow, total)
			}
			if !errors.Is(err, objstore.ErrStoreUnavailable) {
				t.Fatalf("Write error = %v, want errors.Is ErrStoreUnavailable", err)
			}

			// The torn attempt must not be restorable: no backend may hold
			// the composite manifest that is its commit point. Inspect the
			// raw stores — the routed view is still partitioned.
			tornKey := wire.ManifestKey(partitionJob, 1)
			for i, m := range rig.mems {
				keys, err := m.List(rig.fix.ctx, "")
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range keys {
					if k == tornKey {
						t.Fatalf("backend %d holds composite manifest %s of the torn attempt", i, k)
					}
				}
			}

			rig.fuse.heal()
			// The abort ran against a dead network, so its deletes may have
			// been lost; the sweeper owns that debris. Two passes: the first
			// may collect, the second must find the namespace clean.
			if _, err := SweepOrphans(rig.fix.ctx, partitionJob, rig.routed, false); err != nil {
				t.Fatalf("sweep after heal: %v", err)
			}
			rep, err := SweepOrphans(rig.fix.ctx, partitionJob, rig.routed, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Orphans) != 0 {
				t.Fatalf("second sweep still found %d orphans: %v", len(rep.Orphans), rep.Orphans)
			}

			man, err := rig.coord.Write(rig.fix.ctx, rig.snap)
			if err != nil {
				t.Fatalf("retry after heal: %v", err)
			}
			if man.ID != 1 {
				t.Fatalf("retry committed ID %d, want the torn ID 1", man.ID)
			}

			rest, err := NewRestorer(partitionJob, rig.routed)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := model.New(testModelConfig(), 2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rest.RestoreLatest(rig.fix.ctx, m2); err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, rig.fix.m, m2)
		})
	}
}
