package ckpt

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/wire"
)

func TestSweepKeepsEverythingReferenced(t *testing.T) {
	// A healthy job with retention-expired composites must sweep to
	// zero orphans: shard chains retained past their composite's GC
	// (a base a surviving incremental depends on) are referenced, not
	// debris.
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "sweep", Store: f.store, Policy: PolicyOneShot, KeepLast: 2},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	report, err := SweepOrphans(f.ctx, "sweep", f.store, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Orphans) != 0 {
		t.Fatalf("healthy job swept %d objects: %v", len(report.Orphans), report.Orphans)
	}
	if report.Referenced == 0 || report.Scanned != report.Referenced {
		t.Fatalf("report = %+v, want all scanned objects referenced", report)
	}
	// The job still restores after the (no-op) sweep.
	rest, _ := NewRestorer("sweep", f.store)
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
}

func TestSweepDeletesTornAttemptDebris(t *testing.T) {
	// Debris of a torn attempt — shard objects uploaded (and even a
	// shard manifest published) for an ID whose composite was never
	// committed, plus a composite-level dense object — is orphaned and
	// swept; committed checkpoints are untouched.
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "torn", Store: f.store, Policy: PolicyOneShot},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a controller that died between publish and commit: shard
	// objects and a (valid, published) shard manifest exist for ID 2,
	// plus the composite dense blob, but no composite manifest.
	debris := []string{
		"torn/shard/0000/ckpt/00000002/table/0000/chunk/000000",
		"torn/shard/0001/ckpt/00000002/table/0002/chunk/000000",
		"torn/ckpt/00000002/dense",
	}
	for _, k := range debris {
		if err := f.store.Put(f.ctx, k, []byte("debris")); err != nil {
			t.Fatal(err)
		}
	}
	tornMan, err := wire.EncodeManifest(&wire.Manifest{
		FormatVersion: wire.CurrentFormatVersion,
		JobID:         wire.ShardJobID("torn", 1),
		ID:            2, Kind: wire.KindFull.String(), BaseID: -1, ParentID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tornManKey := wire.ManifestKey(wire.ShardJobID("torn", 1), 2)
	if err := f.store.Put(f.ctx, tornManKey, tornMan); err != nil {
		t.Fatal(err)
	}
	debris = append(debris, tornManKey)

	// Dry run reports but deletes nothing.
	report, err := SweepOrphans(f.ctx, "torn", f.store, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Orphans) != len(debris) {
		t.Fatalf("dry run found %d orphans %v, want %d", len(report.Orphans), report.Orphans, len(debris))
	}
	for _, k := range debris {
		if _, err := f.store.Get(f.ctx, k); err != nil {
			t.Fatalf("dry run deleted %s", k)
		}
	}

	// The real sweep removes exactly the debris.
	report, err = SweepOrphans(f.ctx, "torn", f.store, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Orphans) != len(debris) {
		t.Fatalf("swept %d orphans %v, want %d", len(report.Orphans), report.Orphans, len(debris))
	}
	for _, k := range debris {
		if _, err := f.store.Get(f.ctx, k); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("orphan %s survived the sweep (err %v)", k, err)
		}
	}
	// Both committed checkpoints still restore.
	rest, _ := NewRestorer("torn", f.store)
	m2, _ := model.New(testModelConfig(), 2)
	res, err := rest.RestoreLatest(f.ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != 1 {
		t.Fatalf("restored %d, want 1", res.Manifests[0].ID)
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-6) {
		t.Fatal("post-sweep restore differs from live model")
	}
}

func TestSweepConservativeOnBrokenChain(t *testing.T) {
	// A composite whose shard manifest was lost (tampering, partial GC)
	// has an unresolvable chain: the sweep must keep that shard's scope
	// untouched rather than guess, and say so.
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "broken", Store: f.store, Policy: PolicyFull},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	man, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.store.Delete(f.ctx, man.ShardManifestKeys[1]); err != nil {
		t.Fatal(err)
	}
	before, _ := f.store.List(f.ctx, "broken/shard/0001/")
	report, err := SweepOrphans(f.ctx, "broken", f.store, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Notes) == 0 {
		t.Fatal("broken chain produced no note")
	}
	after, _ := f.store.List(f.ctx, "broken/shard/0001/")
	if len(after) != len(before) {
		t.Fatalf("conservative sweep deleted from a broken shard scope: %d -> %d objects", len(before), len(after))
	}
	for _, k := range report.Orphans {
		if strings.HasPrefix(k, "broken/shard/0001/") {
			t.Fatalf("swept %s from a shard with an unresolvable chain", k)
		}
	}
}
