package ckpt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/embedding"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/wire"
)

// Config configures an Engine.
type Config struct {
	JobID string
	Store objstore.Store
	// Policy selects the incremental checkpointing policy.
	Policy PolicyKind
	// Quant configures checkpoint quantization. The zero value means no
	// quantization (fp32).
	Quant quant.Params
	// ChunkRows is the number of rows per upload chunk (the pipelining
	// granularity of §4.4). Zero means 512.
	ChunkRows int
	// Uploaders is the number of concurrent chunk-upload workers
	// (pipelined store while the next chunk quantizes). Zero means 2;
	// 1 disables pipelining (the ablation baseline).
	Uploaders int
	// Encoders is the number of concurrent quantize+encode workers
	// feeding the uploaders — the data-plane hot path. Each worker owns
	// reusable quantization scratch and encodes chunks into pooled
	// buffers, so the steady-state encode loop is allocation-free per
	// row. Chunk keys are derived from row position, so the manifest is
	// deterministic regardless of worker count. Zero means GOMAXPROCS;
	// 1 restores the serial encode baseline.
	Encoders int
	// KeepLast bounds retained checkpoints; older ones are garbage
	// collected after each successful write, respecting chain
	// dependencies (a base is never deleted while a dependent increment
	// is retained). Zero keeps everything.
	KeepLast int
	// Predictor selects the intermittent policy's full-checkpoint
	// predictor (default PredictorHistory, the paper's §5.1 rule).
	Predictor PredictorKind
	// CompactMetadata enables the CKP2 chunk layout, which hoists the
	// shared quantization header out of each row — the metadata
	// optimization the paper lists as future work (§6.3.2). It applies
	// automatically only to chunks whose rows share a uniform method;
	// k-means chunks fall back to the v1 layout. Restore handles both.
	CompactMetadata bool
	// AdaptiveSampling tunes the adaptive quantizer's per-chunk range
	// search: the exact greedy search runs on every AdaptiveSampling-th
	// row of a chunk and the rows between pick from the sampled rows'
	// harvested candidate ranges, while rows whose min/max didn't move
	// since their last encode reuse their cached range outright. Zero
	// means 8; 1 runs the exact search on every row (the legacy
	// byte-for-byte behavior); negative disables the row cache too.
	AdaptiveSampling int
}

// Engine builds and stores checkpoints for one training job. Methods are
// not safe for concurrent use: the paper serializes checkpoints ("two
// consecutive checkpoints cannot overlap").
type Engine struct {
	cfg   Config
	state *policyState

	nextID     int
	lastFullID int
	// cumulative tracks rows modified since the last full baseline
	// (the one-shot/intermittent view).
	cumulative map[int]*bitvec.Bitmap

	// manifests caches committed manifests by ID for GC dependency checks.
	manifests map[int]*wire.Manifest

	// rangeCache holds, per table, each row's last adaptive quantization
	// range keyed by the row's min/max bit patterns, so rows untouched
	// between checkpoints skip the greedy range search entirely. Entries
	// are written by encoder workers — safe because chunks partition the
	// row list, so workers touch disjoint elements. Dropped whenever the
	// quantization parameters change.
	rangeCache map[int][]quant.RowRange
}

// NewEngine validates cfg and returns an Engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.JobID == "" {
		return nil, fmt.Errorf("ckpt: empty job ID")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("ckpt: nil store")
	}
	if !cfg.Policy.Valid() {
		return nil, fmt.Errorf("ckpt: invalid policy %d", cfg.Policy)
	}
	if cfg.Quant.Method != quant.MethodNone {
		if err := cfg.Quant.Validate(); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
	}
	if cfg.ChunkRows <= 0 {
		cfg.ChunkRows = 512
	}
	if cfg.Uploaders <= 0 {
		cfg.Uploaders = 2
	}
	if cfg.Encoders <= 0 {
		cfg.Encoders = runtime.GOMAXPROCS(0)
	}
	if !cfg.Predictor.Valid() {
		return nil, fmt.Errorf("ckpt: invalid predictor %d", cfg.Predictor)
	}
	if cfg.AdaptiveSampling == 0 {
		cfg.AdaptiveSampling = 8
	}
	st := newPolicyState(cfg.Policy)
	st.predictor = cfg.Predictor
	return &Engine{
		cfg:        cfg,
		state:      st,
		lastFullID: -1,
		cumulative: make(map[int]*bitvec.Bitmap),
		manifests:  make(map[int]*wire.Manifest),
		rangeCache: make(map[int][]quant.RowRange),
	}, nil
}

// SetQuant changes the quantization parameters for subsequent checkpoints.
// The controller uses this for dynamic bit-width selection and the 8-bit
// fallback (§6.2.1); it is safe because checkpoints never overlap.
func (e *Engine) SetQuant(p quant.Params) error {
	if p.Method != quant.MethodNone {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	if p != e.cfg.Quant {
		// Cached adaptive ranges were searched under the old parameters.
		e.rangeCache = make(map[int][]quant.RowRange)
	}
	e.cfg.Quant = p
	return nil
}

// Quant returns the current quantization parameters.
func (e *Engine) Quant() quant.Params { return e.cfg.Quant }

// NextID returns the ID the next checkpoint will get.
func (e *Engine) NextID() int { return e.nextID }

// Write builds and stores a checkpoint from snap, returning its manifest
// once it is valid (manifest durably stored). This runs the paper's
// step 2 and 3: quantize chunk-by-chunk, upload pipelined, then commit.
func (e *Engine) Write(ctx context.Context, snap *Snapshot) (*wire.Manifest, error) {
	p, err := e.Prepare(ctx, snap)
	if err != nil {
		return nil, err
	}
	if err := p.Publish(ctx); err != nil {
		p.Abort(ctx)
		return nil, err
	}
	return p.Finalize(ctx), nil
}

// Prepared is a checkpoint whose payload objects (chunks and dense
// state) are durably stored but whose manifest is not yet published.
// Until Publish+Finalize run, the engine's in-memory state is untouched
// and the checkpoint is invisible to recovery, so Abort rolls the whole
// attempt back without side effects. This is the shard-local "prepared"
// vote of the coordinator's two-phase commit.
type Prepared struct {
	eng  *Engine
	man  *wire.Manifest
	dec  decision
	size float64 // stored fraction of total rows, for policy history
	done bool
}

// Prepare quantizes and uploads a checkpoint's payload without
// publishing its manifest or committing engine state.
func (e *Engine) Prepare(ctx context.Context, snap *Snapshot) (*Prepared, error) {
	if snap == nil {
		return nil, fmt.Errorf("ckpt: nil snapshot")
	}
	// Merge this interval's modified view into the cumulative-since-base
	// view used by the one-shot family.
	for id, bm := range snap.Modified {
		if cum, ok := e.cumulative[id]; ok {
			cum.Or(bm)
		} else {
			e.cumulative[id] = bm.Clone()
		}
	}

	totalRows := snap.TotalRows()
	prospective := 0.0
	if totalRows > 0 {
		cumCount := 0
		for _, bm := range e.cumulative {
			cumCount += bm.Count()
		}
		prospective = float64(cumCount) / float64(totalRows)
	}
	dec := e.state.decide(prospective)

	id := e.nextID
	man := &wire.Manifest{
		FormatVersion:    wire.CurrentFormatVersion,
		JobID:            e.cfg.JobID,
		ID:               id,
		Kind:             dec.kind.String(),
		BaseID:           -1,
		ParentID:         id - 1,
		Step:             snap.Step,
		ReaderNextSample: snap.Reader.NextSample,
		ReaderBatchSize:  snap.Reader.BatchSize,
		Quant: wire.QuantInfo{
			Method:  e.cfg.Quant.Method.String(),
			Bits:    e.cfg.Quant.Bits,
			NumBins: e.cfg.Quant.NumBins,
			Ratio:   e.cfg.Quant.Ratio,
		},
	}
	if snap.Dense != nil {
		man.DenseKey = wire.DenseKey(e.cfg.JobID, id)
	}
	if id == 0 {
		man.ParentID = -1
	}
	if dec.kind == wire.KindIncremental {
		man.BaseID = e.lastFullID
		man.SinceBase = dec.sinceBase
	}

	var payloadBytes int64
	storedTotal := 0
	for _, tab := range snap.Tables {
		rows := e.rowsToStore(tab, dec, snap)
		tm, bytes, err := e.writeTable(ctx, id, tab, rows)
		if err != nil {
			// Abort: best-effort cleanup of partial objects; the manifest
			// was never written so the checkpoint is invalid either way.
			cctx, cancel := DetachedCtx(ctx)
			e.cleanup(cctx, id)
			cancel()
			return nil, err
		}
		payloadBytes += bytes
		storedTotal += tm.StoredRows
		man.Tables = append(man.Tables, tm)
	}

	if man.DenseKey != "" {
		if err := e.cfg.Store.Put(ctx, man.DenseKey, snap.Dense); err != nil {
			cctx, cancel := DetachedCtx(ctx)
			e.cleanup(cctx, id)
			cancel()
			return nil, fmt.Errorf("ckpt: dense state: %w", err)
		}
		payloadBytes += int64(len(snap.Dense))
	}
	man.PayloadBytes = payloadBytes

	size := 0.0
	if totalRows > 0 {
		size = float64(storedTotal) / float64(totalRows)
	}
	return &Prepared{eng: e, man: man, dec: dec, size: size}, nil
}

// Manifest returns the prepared checkpoint's manifest. Callers may
// inspect it but must not rely on it being restorable before Publish.
func (p *Prepared) Manifest() *wire.Manifest { return p.man }

// Publish durably stores the manifest object, making the checkpoint
// visible to recovery. Engine state is still uncommitted: the caller
// must follow with Finalize (or, on failure, Abort — which also removes
// a manifest published by an earlier attempt of this call).
func (p *Prepared) Publish(ctx context.Context) error {
	if p.done {
		return fmt.Errorf("ckpt: checkpoint %d already finalized or aborted", p.man.ID)
	}
	manBlob, err := wire.EncodeManifest(p.man)
	if err != nil {
		return fmt.Errorf("ckpt: encode manifest: %w", err)
	}
	e := p.eng
	if err := e.cfg.Store.Put(ctx, wire.ManifestKey(e.cfg.JobID, p.man.ID), manBlob); err != nil {
		return fmt.Errorf("ckpt: store manifest: %w", err)
	}
	return nil
}

// Finalize commits the engine's in-memory state — policy history,
// baseline tracking, manifest cache, sequence number — and runs GC. It
// cannot fail; the checkpoint became valid when Publish stored the
// manifest. Returns the committed manifest.
func (p *Prepared) Finalize(ctx context.Context) *wire.Manifest {
	if p.done {
		return p.man
	}
	p.done = true
	e := p.eng
	e.state.record(p.dec.kind, p.size)
	if p.dec.kind == wire.KindFull {
		e.lastFullID = p.man.ID
		for _, bm := range e.cumulative {
			bm.Reset()
		}
	}
	e.manifests[p.man.ID] = p.man
	e.nextID++

	if e.cfg.KeepLast > 0 {
		e.gc(ctx)
	}
	return p.man
}

// DetachedCtx returns a context immune to ctx's cancellation but still
// bounded: ctx's own deadline is kept while it has budget, otherwise
// abortTimeout from now. Best-effort cleanup must run even when the
// parent context died — the failure may BE the cancellation — yet must
// not hang forever on a store that has gone silent (orphans it fails to
// delete are SweepOrphans' job).
func DetachedCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	dl := time.Now().Add(abortTimeout)
	if pdl, ok := ctx.Deadline(); ok && time.Until(pdl) > 0 {
		dl = pdl
	}
	return context.WithDeadline(context.WithoutCancel(ctx), dl)
}

// Abort deletes every object the prepared checkpoint stored (including
// a manifest from a failed Publish round). Engine state was never
// touched, so the next Prepare reuses the same ID. Cleanup runs under a
// cancellation-immune but still deadline-bounded context (detachedCtx),
// so a caller's op timeout keeps bounding the store I/O.
func (p *Prepared) Abort(ctx context.Context) {
	if p.done {
		return
	}
	p.done = true
	cctx, cancel := DetachedCtx(ctx)
	defer cancel()
	p.eng.cleanup(cctx, p.man.ID)
}

// rowsToStore returns the sorted row indices of tab to serialize under dec.
func (e *Engine) rowsToStore(tab *embedding.Table, dec decision, snap *Snapshot) []int {
	if dec.kind == wire.KindFull {
		all := make([]int, tab.Rows)
		for i := range all {
			all[i] = i
		}
		return all
	}
	var bm *bitvec.Bitmap
	if dec.sinceBase {
		bm = e.cumulative[tab.ID]
	} else {
		bm = snap.Modified[tab.ID]
	}
	if bm == nil {
		return nil
	}
	return bm.Indices()
}

// writeTable quantizes, encodes and uploads one table's rows: a pool of
// cfg.Encoders workers quantizes rows with reusable scratch and encodes
// chunks into pooled buffers, feeding cfg.Uploaders store writers. Chunk
// keys are precomputed from row position, so the manifest's chunk order
// is deterministic regardless of which worker encodes which chunk, and
// uploaders return each buffer to the pool once Store.Put has released
// it. In steady state the encode loop performs no per-row allocations.
func (e *Engine) writeTable(ctx context.Context, ckptID int, tab *embedding.Table, rows []int) (wire.TableManifest, int64, error) {
	tm := wire.TableManifest{
		TableID:    tab.ID,
		Rows:       tab.Rows,
		Dim:        tab.Dim,
		StoredRows: len(rows),
	}
	numChunks := (len(rows) + e.cfg.ChunkRows - 1) / e.cfg.ChunkRows
	if numChunks == 0 {
		return tm, 0, nil
	}
	tm.ChunkKeys = make([]string, numChunks)
	for ci := range tm.ChunkKeys {
		tm.ChunkKeys[ci] = wire.ChunkKey(e.cfg.JobID, ckptID, tab.ID, ci)
	}

	// Size the table's adaptive range cache before workers spawn; workers
	// then write disjoint elements (chunks partition rows), never the map.
	var rc []quant.RowRange
	if e.cfg.Quant.Method == quant.MethodAdaptive && e.cfg.AdaptiveSampling > 0 {
		rc = e.rangeCache[tab.ID]
		if len(rc) < tab.Rows {
			grown := make([]quant.RowRange, tab.Rows)
			copy(grown, rc)
			rc = grown
			e.rangeCache[tab.ID] = rc
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var totalBytes atomic.Int64
	errCh := make(chan error, e.cfg.Encoders+e.cfg.Uploaders)
	fail := func(err error) {
		select {
		case errCh <- err:
			cancel()
		default:
		}
	}

	type upload struct {
		key string
		buf *[]byte
	}
	uploads := make(chan upload, e.cfg.Uploaders)
	var upWG sync.WaitGroup
	for w := 0; w < e.cfg.Uploaders; w++ {
		upWG.Add(1)
		go func() {
			defer upWG.Done()
			for u := range uploads {
				if err := e.cfg.Store.Put(ctx, u.key, *u.buf); err != nil {
					fail(err)
				} else {
					totalBytes.Add(int64(len(*u.buf)))
				}
				wire.PutChunkBuf(u.buf)
			}
		}()
	}

	encoders := min(e.cfg.Encoders, numChunks)
	jobs := make(chan int)
	var encWG sync.WaitGroup
	for w := 0; w < encoders; w++ {
		encWG.Add(1)
		go func() {
			defer encWG.Done()
			var (
				qrows   []quant.QVector
				scratch quant.Scratch
				chunk   = wire.Chunk{TableID: uint32(tab.ID)}
			)
			for ci := range jobs {
				start := ci * e.cfg.ChunkRows
				end := min(start+e.cfg.ChunkRows, len(rows))
				n := end - start
				if cap(qrows) < n {
					qrows = make([]quant.QVector, n)
				}
				qrows = qrows[:n]
				if cap(chunk.Rows) < n {
					chunk.Rows = make([]wire.Row, 0, n)
				}
				chunk.Rows = chunk.Rows[:0]
				if rc != nil {
					scratch.BeginAdaptiveChunk(e.cfg.AdaptiveSampling)
				}
				for j, r := range rows[start:end] {
					var ent *quant.RowRange
					if rc != nil {
						ent = &rc[r]
					}
					if err := quant.QuantizeCachedInto(&qrows[j], tab.Lookup(r), e.cfg.Quant, &scratch, ent); err != nil {
						fail(err)
						return
					}
					chunk.Rows = append(chunk.Rows, wire.Row{
						Index: uint32(r),
						Accum: tab.Accum[r],
						Q:     &qrows[j],
					})
				}
				buf := wire.GetChunkBuf()
				var err error
				if e.cfg.CompactMetadata && chunk.CompactEncodable() {
					*buf, err = chunk.AppendCompactTo(*buf)
				} else {
					*buf, err = chunk.AppendTo(*buf)
				}
				if err != nil {
					wire.PutChunkBuf(buf)
					fail(err)
					return
				}
				select {
				case uploads <- upload{key: tm.ChunkKeys[ci], buf: buf}:
				case <-ctx.Done():
					wire.PutChunkBuf(buf)
					return
				}
			}
		}()
	}

feed:
	for ci := 0; ci < numChunks; ci++ {
		select {
		case jobs <- ci:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	encWG.Wait()
	close(uploads)
	upWG.Wait()
	select {
	case err := <-errCh:
		return tm, 0, fmt.Errorf("ckpt: table %d: %w", tab.ID, err)
	default:
	}
	if err := ctx.Err(); err != nil {
		return tm, 0, fmt.Errorf("ckpt: table %d: %w", tab.ID, err)
	}
	return tm, totalBytes.Load(), nil
}

// cleanup deletes any objects written for an aborted checkpoint.
func (e *Engine) cleanup(ctx context.Context, id int) {
	keys, err := e.cfg.Store.List(ctx, wire.CheckpointPrefix(e.cfg.JobID, id))
	if err != nil {
		return
	}
	for _, k := range keys {
		_ = e.cfg.Store.Delete(ctx, k)
	}
}

// gc deletes old checkpoints beyond KeepLast while preserving any
// checkpoint that a retained one depends on (its base, and for
// consecutive chains every ancestor back to the base).
func (e *Engine) gc(ctx context.Context) {
	retain := make(map[int]bool)
	// Newest KeepLast checkpoints are retained directly.
	for id := e.nextID - 1; id >= 0 && id > e.nextID-1-e.cfg.KeepLast; id-- {
		retain[id] = true
	}
	// Close over dependencies.
	changed := true
	for changed {
		changed = false
		for id := range retain {
			m, ok := e.manifests[id]
			if !ok {
				continue
			}
			if m.Kind == wire.KindIncremental.String() {
				deps := []int{m.BaseID}
				if !m.SinceBase {
					// Consecutive link: its parent is also needed.
					deps = append(deps, m.ParentID)
				}
				for _, d := range deps {
					if d >= 0 && !retain[d] {
						retain[d] = true
						changed = true
					}
				}
			}
		}
	}
	for id, m := range e.manifests {
		if retain[id] {
			continue
		}
		_ = m
		keys, err := e.cfg.Store.List(ctx, wire.CheckpointPrefix(e.cfg.JobID, id))
		if err != nil {
			continue
		}
		for _, k := range keys {
			_ = e.cfg.Store.Delete(ctx, k)
		}
		delete(e.manifests, id)
	}
}

// Manifest returns the committed manifest with the given ID, if retained.
func (e *Engine) Manifest(id int) (*wire.Manifest, bool) {
	m, ok := e.manifests[id]
	return m, ok
}

// RecoverOptions tunes RecoverEngine's manifest walk.
type RecoverOptions struct {
	// Committed reports whether checkpoint id reached its job-level
	// commit point. For a shard engine inside a composite job the commit
	// point is the controller's composite manifest, not the shard
	// manifest: a shard manifest published by an attempt whose composite
	// never landed is debris of an aborted two-phase commit. The newest
	// manifest failing this check is rolled back (its objects deleted)
	// rather than adopted, so a rejoining agent agrees with the rest of
	// the fleet about the next checkpoint ID. Only the newest manifest
	// is checked — at most one attempt is ever in flight, and older
	// commit points may have been legitimately garbage collected.
	//
	// nil means every published manifest counts: for single-writer jobs
	// the manifest itself is the commit point.
	Committed func(ctx context.Context, id int) (bool, error)
}

// RecoverEngine rebuilds an Engine from the job's durable state by
// walking its manifests in the store — the rejoin path for a process
// that crashed and lost its in-memory engine. It reconstructs the
// checkpoint sequence number, the last full baseline, the manifest
// cache GC depends on, the policy's incremental-size history, and the
// cumulative modified-since-baseline bitmaps (from the row indices the
// incrementals since the last full actually stored), so the recovered
// engine continues the chain exactly where the dead one left off.
//
// The rebuilt policy history covers only manifests that survived
// retention; after deep GC it is an approximation, which can shift
// the intermittent predictor's next full-baseline decision but never
// correctness of the chain itself.
func RecoverEngine(ctx context.Context, cfg Config, opts RecoverOptions) (*Engine, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	rest, err := NewRestorer(cfg.JobID, cfg.Store)
	if err != nil {
		return nil, err
	}
	ms, err := rest.ListManifests(ctx)
	if err != nil {
		return nil, fmt.Errorf("ckpt: recover: %w", err)
	}
	// Composite manifests never live under an engine's own scope; skip
	// them defensively so a mis-scoped recovery cannot adopt one.
	kept := ms[:0]
	for _, m := range ms {
		if !m.Composite() {
			kept = append(kept, m)
		}
	}
	ms = kept
	// A trailing manifest whose job-level commit point never landed is
	// the published half of an aborted two-phase commit: roll it back
	// so this engine's next ID matches the fleet's.
	if opts.Committed != nil && len(ms) > 0 {
		last := ms[len(ms)-1]
		ok, err := opts.Committed(ctx, last.ID)
		if err != nil {
			return nil, fmt.Errorf("ckpt: recover: commit check %d: %w", last.ID, err)
		}
		if !ok {
			eng.cleanup(ctx, last.ID)
			ms = ms[:len(ms)-1]
		}
	}
	if len(ms) == 0 {
		return eng, nil
	}

	// Replay the committed history in ID order — exactly what each
	// Finalize recorded, up to whatever KeepLast already collected.
	for _, m := range ms {
		kind := wire.KindIncremental
		if m.Kind == wire.KindFull.String() {
			kind = wire.KindFull
			eng.lastFullID = m.ID
		}
		eng.manifests[m.ID] = m
		eng.state.record(kind, manifestStoredFraction(m))
	}
	eng.nextID = ms[len(ms)-1].ID + 1

	// Rebuild the cumulative modified-since-baseline bitmaps from the
	// rows the incrementals since the last full stored: decode each
	// chunk and mark its row indices. (One-shot incrementals make later
	// links supersets of earlier ones; unioning every link is correct
	// for both the one-shot family and consecutive chains.)
	for _, m := range ms {
		if m.ID <= eng.lastFullID || m.Kind != wire.KindIncremental.String() {
			continue
		}
		for i := range m.Tables {
			tm := &m.Tables[i]
			if tm.StoredRows == 0 {
				continue
			}
			bm := eng.cumulative[tm.TableID]
			if bm == nil {
				bm = bitvec.New(tm.Rows)
				eng.cumulative[tm.TableID] = bm
			}
			for _, key := range tm.ChunkKeys {
				blob, err := cfg.Store.Get(ctx, key)
				if err != nil {
					return nil, fmt.Errorf("ckpt: recover: get %s: %w", key, err)
				}
				// Alias decode: only row indices are read before blob
				// goes out of scope.
				chunk, err := wire.DecodeChunkAlias(blob)
				if err != nil {
					return nil, fmt.Errorf("ckpt: recover: %s: %w", key, err)
				}
				for r := range chunk.Rows {
					bm.Set(int(chunk.Rows[r].Index))
				}
			}
		}
	}
	return eng, nil
}

// manifestStoredFraction returns the manifest's stored-row fraction of
// total rows — the S_i the policy recorded when it committed.
func manifestStoredFraction(m *wire.Manifest) float64 {
	total, stored := 0, 0
	for i := range m.Tables {
		total += m.Tables[i].Rows
		stored += m.Tables[i].StoredRows
	}
	if total == 0 {
		return 0
	}
	return float64(stored) / float64(total)
}

// LatestID returns the ID of the most recent committed checkpoint, or -1.
func (e *Engine) LatestID() int { return e.nextID - 1 }
