package ckpt

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/wire"
)

// PolicyKind selects an incremental checkpointing policy (§5.1).
type PolicyKind uint8

const (
	// PolicyFull writes a full checkpoint every interval — the baseline
	// system §6.3 compares against.
	PolicyFull PolicyKind = iota
	// PolicyOneShot writes one full baseline, then incrementals holding
	// every row modified since that baseline. Restore reads the baseline
	// plus the most recent incremental.
	PolicyOneShot
	// PolicyConsecutive writes incrementals holding only rows modified
	// during the last interval. Restore reads the baseline plus every
	// incremental in the chain. Suited to online-training publication.
	PolicyConsecutive
	// PolicyIntermittent is one-shot plus a history-based predictor that
	// takes a fresh full baseline when the projected cumulative cost of
	// staying incremental exceeds the cost of a new baseline (Fc <= Ic).
	PolicyIntermittent
)

// String names the policy.
func (p PolicyKind) String() string {
	switch p {
	case PolicyFull:
		return "full"
	case PolicyOneShot:
		return "one-shot"
	case PolicyConsecutive:
		return "consecutive"
	case PolicyIntermittent:
		return "intermittent"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Valid reports whether p is a known policy.
func (p PolicyKind) Valid() bool { return p <= PolicyIntermittent }

// decision is what a policy resolves each interval to.
type decision struct {
	kind wire.Kind
	// sinceBase selects rows modified since the last full baseline
	// (one-shot family) rather than during the last interval only
	// (consecutive).
	sinceBase bool
}

// policyState tracks the per-job information policies need across
// intervals: the sizes of incrementals since the last full baseline,
// expressed as fractions of the full checkpoint size (S_i in §5.1).
type policyState struct {
	kind      PolicyKind
	predictor PredictorKind
	// sizes holds S_1..S_i for incrementals taken since the last full.
	sizes []float64
	// haveFull records whether any full baseline exists yet.
	haveFull bool
}

func newPolicyState(kind PolicyKind) *policyState {
	return &policyState{kind: kind}
}

// decide picks full vs incremental for the next checkpoint.
// prospectiveSize is the would-be size of the incremental (fraction of a
// full checkpoint) if one were taken now; the intermittent predictor uses
// it as its S_i estimate.
func (ps *policyState) decide(prospectiveSize float64) decision {
	if !ps.haveFull || ps.kind == PolicyFull {
		return decision{kind: wire.KindFull}
	}
	switch ps.kind {
	case PolicyOneShot:
		return decision{kind: wire.KindIncremental, sinceBase: true}
	case PolicyConsecutive:
		return decision{kind: wire.KindIncremental, sinceBase: false}
	case PolicyIntermittent:
		takeFull := false
		if ps.predictor == PredictorRegression {
			takeFull = regressionPredictFull(ps.sizes, prospectiveSize)
		} else {
			takeFull = ps.predictFull(prospectiveSize)
		}
		if takeFull {
			return decision{kind: wire.KindFull}
		}
		return decision{kind: wire.KindIncremental, sinceBase: true}
	default:
		return decision{kind: wire.KindFull}
	}
}

// predictFull implements the §5.1 history predictor. With past incremental
// sizes S_1..S_i (fractions of a full checkpoint, S_0 = 1):
//
//	Fc = 1 + S_1 + ... + S_i   (projected cost of next i+1 intervals
//	                            if a full baseline is taken now)
//	Ic = (i+1) * S_i           (lower bound on cost if staying incremental)
//
// Take a full checkpoint iff Fc <= Ic.
func (ps *policyState) predictFull(prospectiveSize float64) bool {
	i := len(ps.sizes)
	if i == 0 {
		// No incremental history since the full; stay incremental.
		return false
	}
	si := ps.sizes[i-1]
	if prospectiveSize > si {
		// The next incremental will be at least its prospective size;
		// using the larger of the two tightens the bound.
		si = prospectiveSize
	}
	fc := 1 + stats.Sum(ps.sizes)
	ic := float64(i+1) * si
	return fc <= ic
}

// record updates the history after a checkpoint of the given kind and
// relative size is committed.
func (ps *policyState) record(kind wire.Kind, size float64) {
	if kind == wire.KindFull {
		ps.haveFull = true
		ps.sizes = ps.sizes[:0]
		return
	}
	ps.sizes = append(ps.sizes, size)
}
