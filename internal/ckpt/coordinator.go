package ckpt

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/embedding"
	"repro/internal/wire"
)

// CoordinatorConfig configures a sharded checkpoint Coordinator. The
// embedded Config is the template every shard engine is built from; its
// JobID and Store name the job as a whole (shard engines run under
// wire.ShardJobID-scoped job IDs derived from it).
type CoordinatorConfig struct {
	Config
	// Shards is the number of logical shard writers. Must be >= 1.
	Shards int
	// Assignment optionally pins table ID -> shard — e.g. to mirror the
	// trainer cluster's node ownership (trainer.Cluster.TableAssignment).
	// Tables absent from the map are balanced by row count across shards
	// at the first Write. Assignments must name shards in [0, Shards).
	Assignment map[int]int
}

// Coordinator fans one job's checkpoints out across N logical shard
// writers — the paper's multi-trainer shape, where each trainer owns a
// subset of the embedding tables and stores its part concurrently. Each
// shard runs a full Engine pipeline (its own uploader pool, policy
// state, and cumulative-delta bitmap) under a shard-scoped job ID, and
// the coordinator commits a single composite manifest only after every
// shard's objects are durable: a two-phase commit in which a crashed
// shard can never leave a restorable-looking checkpoint behind.
//
// The shards are driven through the ShardRunner interface; this type
// always builds in-process LocalRunners, while ctrl.Controller drives
// the identical commit sequence over RemoteRunners talking to shardd
// agent processes.
//
// Like Engine, methods are not safe for concurrent use — checkpoints of
// one job never overlap. The concurrency is inside one Write.
type Coordinator struct {
	cfg     CoordinatorConfig
	runners []ShardRunner
	// assign is the table -> shard ownership map, fixed at first Write
	// (seeded from cfg.Assignment) so per-shard incremental chains stay
	// self-contained across the job's lifetime.
	assign map[int]int
	nextID int
	// manifests caches committed composite manifests by ID for GC.
	manifests map[int]*wire.Manifest
}

// NewCoordinator validates cfg and builds the per-shard engines.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("ckpt: coordinator needs >= 1 shard, got %d", cfg.Shards)
	}
	if cfg.JobID == "" {
		return nil, fmt.Errorf("ckpt: empty job ID")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("ckpt: nil store")
	}
	c := &Coordinator{
		cfg:       cfg,
		assign:    make(map[int]int),
		manifests: make(map[int]*wire.Manifest),
	}
	for id, s := range cfg.Assignment {
		if s < 0 || s >= cfg.Shards {
			return nil, fmt.Errorf("ckpt: table %d assigned to shard %d, want [0,%d)", id, s, cfg.Shards)
		}
		c.assign[id] = s
	}
	for s := 0; s < cfg.Shards; s++ {
		ecfg := cfg.Config
		ecfg.JobID = wire.ShardJobID(cfg.JobID, s)
		eng, err := NewEngine(ecfg)
		if err != nil {
			return nil, err
		}
		c.runners = append(c.runners, NewLocalRunner(s, eng))
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// NextID returns the ID the next composite checkpoint will get.
func (c *Coordinator) NextID() int { return c.nextID }

// LatestID returns the ID of the most recent committed composite
// checkpoint, or -1.
func (c *Coordinator) LatestID() int { return c.nextID - 1 }

// Manifest returns the committed composite manifest with the given ID,
// if retained.
func (c *Coordinator) Manifest(id int) (*wire.Manifest, bool) {
	m, ok := c.manifests[id]
	return m, ok
}

// Assignment returns a copy of the current table -> shard ownership map
// (empty before the first Write if none was configured).
func (c *Coordinator) Assignment() map[int]int {
	out := make(map[int]int, len(c.assign))
	for k, v := range c.assign {
		out[k] = v
	}
	return out
}

// extendAssignment gives every snapshot table an owning shard, keeping
// prior assignments and balancing new tables by row count: largest table
// first onto the currently lightest shard.
func (c *Coordinator) extendAssignment(snap *Snapshot) {
	load := make([]int, c.cfg.Shards) // rows per shard
	var unassigned []*embedding.Table
	for _, tab := range snap.Tables {
		if s, ok := c.assign[tab.ID]; ok {
			load[s] += tab.Rows
		} else {
			unassigned = append(unassigned, tab)
		}
	}
	sort.Slice(unassigned, func(a, b int) bool {
		if unassigned[a].Rows != unassigned[b].Rows {
			return unassigned[a].Rows > unassigned[b].Rows
		}
		return unassigned[a].ID < unassigned[b].ID
	})
	for _, tab := range unassigned {
		best := 0
		for s := 1; s < c.cfg.Shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		c.assign[tab.ID] = best
		load[best] += tab.Rows
	}
}

// subSnapshot carves shard s's view out of snap. Dense state is nil:
// the coordinator stores the replicated MLP state once at the composite
// level.
func (c *Coordinator) subSnapshot(snap *Snapshot, s int) *Snapshot {
	sub := SubSnapshot(snap, c.assign, s)
	sub.Dense = nil
	return sub
}

// forEachShard runs fn concurrently for every shard in [0, n) and
// returns the lowest-indexed shard's error, if any.
func forEachShard(n int, fn func(s int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Write checkpoints snap across all shards and commits the composite
// manifest. Phases:
//
//  1. prepare — every shard quantizes and uploads its chunks
//     concurrently; nothing is visible to recovery yet.
//  2. publish — shard manifests and the composite dense state are
//     stored; the checkpoint is still not restorable because only the
//     composite manifest defines validity.
//  3. commit — the composite manifest is stored, then every shard
//     finalizes its in-memory state.
//
// Any failure before step 3's composite put aborts every shard,
// deleting all objects of the attempt; no engine state changes, so a
// retry reuses the same ID. Rollback runs under a cancellation-immune
// context: if ctx is cancelled mid-commit, every shard is still
// aborted, and the returned error is ctx.Err() rather than whichever
// partial-write error the cancellation happened to surface first.
func (c *Coordinator) Write(ctx context.Context, snap *Snapshot) (*wire.Manifest, error) {
	if snap == nil {
		return nil, fmt.Errorf("ckpt: nil snapshot")
	}
	c.extendAssignment(snap)
	id := c.nextID

	fail := func(err error) (*wire.Manifest, error) {
		AbortShards(ctx, c.runners, id)
		dctx, cancel := DetachedCtx(ctx)
		_ = c.cfg.Store.Delete(dctx, wire.DenseKey(c.cfg.JobID, id))
		cancel()
		if ce := ctx.Err(); ce != nil {
			return nil, ce
		}
		return nil, err
	}

	// Phase 1: concurrent per-shard prepare.
	shardMans, err := PrepareShards(ctx, c.runners, id, snap.Step, func(s int) *Snapshot {
		return c.subSnapshot(snap, s)
	})
	if err != nil {
		return fail(err)
	}

	// Phase 2: publish shard manifests and the composite dense state.
	// Still invisible to recovery — validity is the composite manifest.
	// As with Engine.Prepare, a nil Dense means the snapshot carries no
	// dense state and the manifest records no DenseKey.
	var denseKey string
	if snap.Dense != nil {
		denseKey = wire.DenseKey(c.cfg.JobID, id)
		if err := c.cfg.Store.Put(ctx, denseKey, snap.Dense); err != nil {
			return fail(fmt.Errorf("ckpt: dense state: %w", err))
		}
	}
	if err := PublishShards(ctx, c.runners, id); err != nil {
		return fail(err)
	}

	// Phase 3: commit. The composite manifest's presence is the commit
	// point; after it lands, finalizing shard state cannot fail.
	man := BuildComposite(c.cfg.JobID, id, snap.Step, snap.Reader, shardMans,
		c.Assignment(), denseKey, int64(len(snap.Dense)))
	manBlob, err := wire.EncodeManifest(man)
	if err != nil {
		return fail(fmt.Errorf("ckpt: encode composite manifest: %w", err))
	}
	if err := c.cfg.Store.Put(ctx, wire.ManifestKey(c.cfg.JobID, id), manBlob); err != nil {
		return fail(fmt.Errorf("ckpt: store composite manifest: %w", err))
	}
	fctx, cancelFinalize := DetachedCtx(ctx)
	_ = FinalizeShards(fctx, c.runners, id)
	cancelFinalize()
	c.nextID++
	// Cache for retention only: with retention disabled the cache would
	// grow one manifest per checkpoint, forever, on a long-running job.
	if c.cfg.KeepLast > 0 {
		c.manifests[id] = man
		c.gc(ctx)
	}
	return man, nil
}

// gc deletes composite-level objects (manifest + dense) of checkpoints
// beyond KeepLast. Shard-level objects are garbage collected by each
// shard engine, which retains whatever its retained increments depend
// on — so a restorable composite always finds its shard chains intact,
// while expired composites stop being listed.
func (c *Coordinator) gc(ctx context.Context) {
	for id, m := range c.manifests {
		if id > c.nextID-1-c.cfg.KeepLast {
			continue
		}
		_ = c.cfg.Store.Delete(ctx, wire.ManifestKey(c.cfg.JobID, id))
		if m.DenseKey != "" {
			_ = c.cfg.Store.Delete(ctx, m.DenseKey)
		}
		delete(c.manifests, id)
	}
}
