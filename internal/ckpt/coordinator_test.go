package ckpt

import (
	"context"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
)

// writeAndRestore checkpoints snap under the given shard count and job,
// then restores it into a fresh model.
func writeAndRestore(t *testing.T, ctx context.Context, store objstore.Store, job string, shards int, snap *Snapshot, cfg Config) *model.DLRM {
	t.Helper()
	cfg.JobID = job
	cfg.Store = store
	coord, err := NewCoordinator(CoordinatorConfig{Config: cfg, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	man, err := coord.Write(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.ShardCount != shards || len(man.ShardManifestKeys) != shards {
		t.Fatalf("composite manifest shards = %d/%d keys, want %d",
			man.ShardCount, len(man.ShardManifestKeys), shards)
	}
	m2, err := model.New(testModelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := NewRestorer(job, store)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rest.RestoreLatest(ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Step != snap.Step || res.Reader.NextSample != snap.Reader.NextSample {
		t.Fatalf("restore metadata = %+v, want step %d sample %d", res, snap.Step, snap.Reader.NextSample)
	}
	return m2
}

// assertBitIdentical fails unless both models hold bit-identical sparse
// weights, accumulators, and dense state.
func assertBitIdentical(t *testing.T, a, b *model.DLRM) {
	t.Helper()
	for _, tab := range a.Sparse.Tables {
		tb := b.Sparse.Table(tab.ID)
		if tb == nil {
			t.Fatalf("table %d missing", tab.ID)
		}
		for i := range tab.Weights.Data {
			if tab.Weights.Data[i] != tb.Weights.Data[i] {
				t.Fatalf("table %d weight %d differs", tab.ID, i)
			}
		}
		for i := range tab.Accum {
			if tab.Accum[i] != tb.Accum[i] {
				t.Fatalf("table %d accum %d differs", tab.ID, i)
			}
		}
	}
	da, err := a.DenseState()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.DenseState()
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("dense state differs")
	}
}

func TestShardedRestoreBitIdenticalToSingleWriter(t *testing.T) {
	// The acceptance bar: one snapshot written with 4 shards restores
	// bit-identically to the same snapshot written with 1 shard.
	f := newFixture(t, Config{Policy: PolicyFull})
	snap := f.trainAndSnapshot(t, 3, 32)
	cfg := Config{Policy: PolicyFull}
	m1 := writeAndRestore(t, f.ctx, f.store, "single", 1, snap, cfg)
	m4 := writeAndRestore(t, f.ctx, f.store, "sharded", 4, snap, cfg)
	assertBitIdentical(t, m1, m4)
	// And both match the live model the snapshot came from.
	assertBitIdentical(t, f.m, m4)
}

func TestShardedQuantizedMatchesSingleWriter(t *testing.T) {
	// Quantization is deterministic per row, so sharding must not change
	// even lossy checkpoints: restored bits stay identical across shard
	// counts.
	f := newFixture(t, Config{Policy: PolicyFull})
	snap := f.trainAndSnapshot(t, 3, 32)
	cfg := Config{Policy: PolicyFull, Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 8}}
	m1 := writeAndRestore(t, f.ctx, f.store, "single-q", 1, snap, cfg)
	m4 := writeAndRestore(t, f.ctx, f.store, "sharded-q", 4, snap, cfg)
	assertBitIdentical(t, m1, m4)
}

func TestCoordinatorIncrementalRoundTrip(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "inc", Store: f.store, Policy: PolicyOneShot},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastKind string
	for i := 0; i < 4; i++ {
		man, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 2, 32))
		if err != nil {
			t.Fatal(err)
		}
		lastKind = man.Kind
	}
	if lastKind != "incremental" {
		t.Fatalf("steady-state composite kind = %q, want incremental", lastKind)
	}
	rest, err := NewRestorer("inc", f.store)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-6) {
		t.Fatal("sharded incremental restore differs from live model")
	}
}

func TestCoordinatorAssignmentPinnedAndStable(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	pin := map[int]int{0: 1, 1: 1, 2: 0}
	coord, err := NewCoordinator(CoordinatorConfig{
		Config:     Config{JobID: "pin", Store: f.store, Policy: PolicyOneShot},
		Shards:     2,
		Assignment: pin,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mans []map[int]int
	for i := 0; i < 2; i++ {
		man, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
		if err != nil {
			t.Fatal(err)
		}
		mans = append(mans, man.TableShards)
	}
	for _, ts := range mans {
		for id, want := range pin {
			if ts[id] != want {
				t.Fatalf("table %d on shard %d, pinned to %d", id, ts[id], want)
			}
		}
	}
	if _, err := NewCoordinator(CoordinatorConfig{
		Config:     Config{JobID: "bad", Store: f.store, Policy: PolicyFull},
		Shards:     2,
		Assignment: map[int]int{0: 5},
	}); err == nil {
		t.Fatal("out-of-range assignment should error")
	}
}

func TestCoordinatorAssignmentBalancesRows(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "bal", Store: f.store, Policy: PolicyFull},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
		t.Fatal(err)
	}
	// Tables are 512/512/1024 rows: the greedy balancer must put the
	// 1024-row table alone on one shard.
	assign := coord.Assignment()
	if len(assign) != 3 {
		t.Fatalf("assignment = %v", assign)
	}
	big := assign[2]
	if assign[0] == big || assign[1] == big {
		t.Fatalf("unbalanced assignment %v: 1024-row table shares a shard", assign)
	}
}

func TestCoordinatorMoreShardsThanTables(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "wide", Store: f.store, Policy: PolicyFull},
		Shards: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := f.trainAndSnapshot(t, 1, 16)
	if _, err := coord.Write(f.ctx, snap); err != nil {
		t.Fatal(err)
	}
	rest, _ := NewRestorer("wide", f.store)
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, f.m, m2)
}

func TestCoordinatorVerifyComposite(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "scrub", Store: f.store, Policy: PolicyOneShot},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 2, 32)); err != nil {
			t.Fatal(err)
		}
	}
	rest, _ := NewRestorer("scrub", f.store)
	vs, err := rest.VerifyAll(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("verified %d checkpoints, want 3", len(vs))
	}
	for _, v := range vs {
		if !v.OK() {
			t.Fatalf("checkpoint %d flagged: %v", v.ID, v.Problems)
		}
	}
	// Corrupting one shard chunk must be caught.
	keys, _ := f.store.List(f.ctx, "scrub/shard/")
	var chunkKey string
	for _, k := range keys {
		if strings.Contains(k, "/chunk/") {
			chunkKey = k
			break
		}
	}
	if chunkKey == "" {
		t.Fatal("no shard chunk found")
	}
	blob, _ := f.store.Get(f.ctx, chunkKey)
	blob[len(blob)/2] ^= 0xFF
	if err := f.store.Put(f.ctx, chunkKey, blob); err != nil {
		t.Fatal(err)
	}
	vs, err = rest.VerifyAll(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	flagged := false
	for _, v := range vs {
		if !v.OK() {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("corrupt shard chunk not flagged by composite verify")
	}
}

func TestCoordinatorKeepLastGC(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "gc", Store: f.store, Policy: PolicyOneShot, KeepLast: 2},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	rest, _ := NewRestorer("gc", f.store)
	ms, err := rest.ListManifests(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != 3 || ms[1].ID != 4 {
		t.Fatalf("retained composites = %v", ids(ms))
	}
	// The newest retained composite must still restore: shard GC kept
	// every shard object its chains depend on.
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-6) {
		t.Fatal("post-GC sharded restore differs from live model")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	store := objstore.NewMemStore(objstore.MemConfig{})
	if _, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "j", Store: store, Policy: PolicyFull},
	}); err == nil {
		t.Fatal("zero shards should error")
	}
	if _, err := NewCoordinator(CoordinatorConfig{
		Config: Config{Store: store, Policy: PolicyFull}, Shards: 2,
	}); err == nil {
		t.Fatal("empty job should error")
	}
	if _, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "j", Policy: PolicyFull}, Shards: 2,
	}); err == nil {
		t.Fatal("nil store should error")
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "j", Store: store, Policy: PolicyFull}, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Write(context.Background(), nil); err == nil {
		t.Fatal("nil snapshot should error")
	}
}
