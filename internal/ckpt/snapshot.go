// Package ckpt implements the Check-N-Run checkpoint engine (§4, §5):
// decoupled in-memory snapshots, the three incremental checkpointing
// policies (one-shot, consecutive, intermittent), chunk-pipelined
// quantize-and-upload, and recovery including incremental-chain
// reconstruction.
package ckpt

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
)

// Snapshot is an atomic copy of the trainer state taken while training is
// stalled (§4.2). Once built, training resumes and background processes
// own the snapshot exclusively: nothing here aliases live model memory.
type Snapshot struct {
	// Step is the number of trained batches at the trigger.
	Step uint64
	// Reader is the reader-tier state (§4.1).
	Reader data.ReaderState
	// Dense is the serialized MLP state (read from "a single GPU" since
	// MLPs are replicated).
	Dense []byte
	// Tables are deep copies of every embedding table shard.
	Tables []*embedding.Table
	// Modified holds, per table ID, the rows modified during the interval
	// that just ended (the tracker view handed off at the trigger).
	Modified map[int]*bitvec.Bitmap
}

// TakeSnapshot builds a Snapshot from a DLRM and its reader state. It
// models the stall-and-copy step: the caller must ensure no training step
// is concurrently mutating the model (the trainer package provides that
// barrier). The tracker is snapshotted with reset, starting the next
// interval's tracking window.
func TakeSnapshot(m *model.DLRM, step uint64, reader data.ReaderState) (*Snapshot, error) {
	if m == nil {
		return nil, fmt.Errorf("ckpt: nil model")
	}
	dense, err := m.DenseState()
	if err != nil {
		return nil, fmt.Errorf("ckpt: dense state: %w", err)
	}
	s := &Snapshot{
		Step:     step,
		Reader:   reader,
		Dense:    dense,
		Modified: m.Tracker.Snapshot(true),
	}
	for _, t := range m.Sparse.Tables {
		s.Tables = append(s.Tables, t.Clone())
	}
	return s, nil
}

// Table returns the snapshotted table with the given ID, or nil.
func (s *Snapshot) Table(id int) *embedding.Table {
	for _, t := range s.Tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// TotalRows returns the number of embedding rows in the snapshot.
func (s *Snapshot) TotalRows() int {
	n := 0
	for _, t := range s.Tables {
		n += t.Rows
	}
	return n
}

// ModifiedRows returns the number of rows marked modified in this
// snapshot's interval view.
func (s *Snapshot) ModifiedRows() int {
	n := 0
	for _, bm := range s.Modified {
		n += bm.Count()
	}
	return n
}

// SizeBytes returns the host-memory footprint of the snapshot: table
// copies, dense state, and tracker view. The paper provisions up to
// 1.5 TB of host DRAM per node to hold these copies (§6); the engine
// releases the snapshot once the checkpoint commits.
func (s *Snapshot) SizeBytes() int64 {
	n := int64(len(s.Dense))
	for _, t := range s.Tables {
		n += t.SizeBytes()
	}
	for _, bm := range s.Modified {
		n += int64(bm.SizeBytes())
	}
	return n
}
