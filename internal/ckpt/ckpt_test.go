package ckpt

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/wire"
)

func testModelConfig() model.Config {
	cfg := model.DefaultConfig()
	cfg.Tables = []embedding.TableSpec{
		{Rows: 512, Dim: 16}, {Rows: 512, Dim: 16}, {Rows: 1024, Dim: 16},
	}
	return cfg
}

func testDataSpec() data.Spec {
	spec := data.DefaultSpec()
	spec.TableRows = []int{512, 512, 1024}
	return spec
}

type fixture struct {
	m     *model.DLRM
	gen   *data.Generator
	store *objstore.MemStore
	eng   *Engine
	rest  *Restorer
	ctx   context.Context
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	m, err := model.New(testModelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := data.NewGenerator(testDataSpec())
	if err != nil {
		t.Fatal(err)
	}
	store := objstore.NewMemStore(objstore.MemConfig{})
	if cfg.JobID == "" {
		cfg.JobID = "testjob"
	}
	if cfg.Store == nil {
		cfg.Store = store
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := NewRestorer(cfg.JobID, cfg.Store)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return &fixture{m: m, gen: gen, store: store, eng: eng, rest: rest, ctx: ctx}
}

// trainAndSnapshot trains batches and takes a snapshot.
func (f *fixture) trainAndSnapshot(t *testing.T, batches, batchSize int) *Snapshot {
	t.Helper()
	for i := 0; i < batches; i++ {
		f.m.TrainBatch(f.gen.NextBatch(batchSize))
	}
	snap, err := TakeSnapshot(f.m, f.gen.Pos()/uint64(batchSize),
		data.ReaderState{NextSample: f.gen.Pos(), BatchSize: batchSize})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func modelsEqual(a, b *model.DLRM, gen *data.Generator, tol float64) bool {
	for i := uint64(0); i < 64; i++ {
		s := gen.At(1<<40 + i)
		if math.Abs(float64(a.Forward(&s)-b.Forward(&s))) > tol {
			return false
		}
	}
	return true
}

func TestEngineValidation(t *testing.T) {
	store := objstore.NewMemStore(objstore.MemConfig{})
	if _, err := NewEngine(Config{Store: store}); err == nil {
		t.Fatal("empty job ID should error")
	}
	if _, err := NewEngine(Config{JobID: "j"}); err == nil {
		t.Fatal("nil store should error")
	}
	if _, err := NewEngine(Config{JobID: "j", Store: store, Policy: PolicyKind(9)}); err == nil {
		t.Fatal("bad policy should error")
	}
	if _, err := NewEngine(Config{JobID: "j", Store: store,
		Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 99}}); err == nil {
		t.Fatal("bad quant should error")
	}
}

func TestRestorerValidation(t *testing.T) {
	store := objstore.NewMemStore(objstore.MemConfig{})
	if _, err := NewRestorer("", store); err == nil {
		t.Fatal("empty job should error")
	}
	if _, err := NewRestorer("j", nil); err == nil {
		t.Fatal("nil store should error")
	}
}

func TestSnapshotIndependence(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	snap := f.trainAndSnapshot(t, 2, 32)
	// Train more; snapshot must not change.
	before := snap.Tables[0].Weights.At(0, 0)
	for i := 0; i < 5; i++ {
		f.m.TrainBatch(f.gen.NextBatch(32))
	}
	if snap.Tables[0].Weights.At(0, 0) != before {
		t.Fatal("snapshot aliases live model")
	}
}

func TestSnapshotResetsTracker(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	f.trainAndSnapshot(t, 2, 32)
	if f.m.Tracker.TotalModified() != 0 {
		t.Fatal("snapshot should reset the live tracker")
	}
}

func TestSnapshotNilModel(t *testing.T) {
	if _, err := TakeSnapshot(nil, 0, data.ReaderState{}); err == nil {
		t.Fatal("nil model should error")
	}
}

func TestFullCheckpointRoundTrip(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	snap := f.trainAndSnapshot(t, 3, 32)
	man, err := f.eng.Write(f.ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.Kind != "full" || man.ID != 0 {
		t.Fatalf("manifest = %+v", man)
	}
	// Restore into a fresh model (same architecture, different weights).
	m2cfg := testModelConfig()
	m2cfg.Seed = 999
	m2, err := model.New(m2cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.rest.RestoreLatest(f.ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Step != snap.Step || res.Reader.NextSample != snap.Reader.NextSample {
		t.Fatalf("restore metadata mismatch: %+v", res)
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-6) {
		t.Fatal("restored model logits differ (fp32 checkpoint should be exact)")
	}
}

func TestFullCheckpointExactWithoutQuant(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	snap := f.trainAndSnapshot(t, 2, 32)
	if _, err := f.eng.Write(f.ctx, snap); err != nil {
		t.Fatal(err)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	// Bit-exact weights.
	for _, tab := range f.m.Sparse.Tables {
		tab2 := m2.Sparse.Table(tab.ID)
		for i := range tab.Weights.Data {
			if tab.Weights.Data[i] != tab2.Weights.Data[i] {
				t.Fatalf("table %d weight %d differs", tab.ID, i)
			}
		}
		for i := range tab.Accum {
			if tab.Accum[i] != tab2.Accum[i] {
				t.Fatalf("table %d accum %d differs", tab.ID, i)
			}
		}
	}
}

func TestQuantizedCheckpointApproximate(t *testing.T) {
	f := newFixture(t, Config{
		Policy: PolicyFull,
		Quant:  quant.Params{Method: quant.MethodAsymmetric, Bits: 8},
	})
	snap := f.trainAndSnapshot(t, 3, 32)
	man, err := f.eng.Write(f.ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.Quant.Bits != 8 || man.Quant.Method != "asymmetric" {
		t.Fatalf("quant info = %+v", man.Quant)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	// 8-bit restore is approximate but close.
	if !modelsEqual(f.m, m2, f.gen, 0.05) {
		t.Fatal("8-bit restored model diverges too much")
	}
	// And it must be smaller than fp32. With dim-16 rows the per-row
	// metadata overhead caps the ratio (the paper's §6.3.2 caveat), so
	// only assert a strict reduction here; TestQuantizedRatioAtDim64
	// checks the paper-scale ratio.
	fullBytes := f.m.SparseBytes()
	if man.PayloadBytes >= fullBytes*3/4 {
		t.Fatalf("8-bit checkpoint %d bytes vs fp32 model %d: insufficient reduction",
			man.PayloadBytes, fullBytes)
	}
}

func TestQuantizedRatioAtDim64(t *testing.T) {
	// At the paper's embedding dimension (64), 4-bit quantization should
	// shrink the sparse payload by ~4x or better despite metadata.
	mcfg := model.DefaultConfig()
	mcfg.EmbedDim = 64
	mcfg.Tables = []embedding.TableSpec{{Rows: 2048, Dim: 64}}
	m, err := model.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	dspec := data.DefaultSpec()
	dspec.TableRows = []int{2048}
	gen, err := data.NewGenerator(dspec)
	if err != nil {
		t.Fatal(err)
	}
	m.TrainBatch(gen.NextBatch(16))
	store := objstore.NewMemStore(objstore.MemConfig{})
	eng, err := NewEngine(Config{
		JobID: "dim64", Store: store, Policy: PolicyFull,
		Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := TakeSnapshot(m, 1, data.ReaderState{NextSample: gen.Pos(), BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	man, err := eng.Write(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	// Compare embedding payload only: at paper scale the dense MLP state
	// is negligible (>99% sparse), but on this deliberately tiny model it
	// would skew the ratio.
	sparsePayload := man.PayloadBytes - int64(len(snap.Dense))
	full := m.SparseBytes()
	if ratio := float64(full) / float64(sparsePayload); ratio < 4 {
		t.Fatalf("4-bit dim-64 ratio = %.2fx (payload %d vs %d), want >= 4x",
			ratio, sparsePayload, full)
	}
}

func TestQuantizedSizeScalesWithBits(t *testing.T) {
	sizes := map[int]int64{}
	for _, bits := range []int{2, 4, 8} {
		f := newFixture(t, Config{
			Policy: PolicyFull,
			Quant:  quant.Params{Method: quant.MethodAsymmetric, Bits: bits},
		})
		snap := f.trainAndSnapshot(t, 1, 16)
		man, err := f.eng.Write(f.ctx, snap)
		if err != nil {
			t.Fatal(err)
		}
		sizes[bits] = man.PayloadBytes
	}
	if !(sizes[2] < sizes[4] && sizes[4] < sizes[8]) {
		t.Fatalf("sizes should grow with bits: %v", sizes)
	}
}

func TestOneShotIncremental(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyOneShot})
	// First checkpoint: full.
	man0, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if man0.Kind != "full" {
		t.Fatalf("first checkpoint kind = %s", man0.Kind)
	}
	// Later checkpoints: incremental vs base 0, SinceBase set.
	man1, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if man1.Kind != "incremental" || man1.BaseID != 0 || !man1.SinceBase {
		t.Fatalf("manifest 1 = %+v", man1)
	}
	man2, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if man2.BaseID != 0 {
		t.Fatalf("one-shot base should stay 0, got %d", man2.BaseID)
	}
	// Monotone growth: incremental 2 covers at least incremental 1's rows.
	if stored(man2) < stored(man1) {
		t.Fatalf("one-shot increments should grow: %d then %d", stored(man1), stored(man2))
	}
	// Chain is [base, latest] only.
	chain, err := f.rest.Chain(f.ctx, man2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].ID != 0 || chain[1].ID != man2.ID {
		t.Fatalf("chain = %v", ids(chain))
	}
	// Restore equals live model exactly (no quant).
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-6) {
		t.Fatal("one-shot restore differs from live model")
	}
}

func TestConsecutiveIncremental(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyConsecutive})
	var mans []*wire.Manifest
	for i := 0; i < 4; i++ {
		man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 32))
		if err != nil {
			t.Fatal(err)
		}
		mans = append(mans, man)
	}
	if mans[0].Kind != "full" {
		t.Fatal("first should be full")
	}
	for _, man := range mans[1:] {
		if man.Kind != "incremental" || man.SinceBase {
			t.Fatalf("consecutive manifest = %+v", man)
		}
	}
	// Chain for the last checkpoint includes every link.
	chain, err := f.rest.Chain(f.ctx, mans[3].ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 4 {
		t.Fatalf("consecutive chain = %v", ids(chain))
	}
	// Restore is exact.
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-6) {
		t.Fatal("consecutive restore differs from live model")
	}
}

func TestConsecutiveSmallerThanOneShot(t *testing.T) {
	// After several intervals the one-shot incremental (all rows since
	// base) is at least as large as the consecutive one (last interval
	// only) — Figure 15's separation.
	run := func(policy PolicyKind) int {
		f := newFixture(t, Config{Policy: policy})
		var last *wire.Manifest
		for i := 0; i < 5; i++ {
			man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 3, 32))
			if err != nil {
				t.Fatal(err)
			}
			last = man
		}
		return stored(last)
	}
	oneShot := run(PolicyOneShot)
	consec := run(PolicyConsecutive)
	if consec > oneShot {
		t.Fatalf("consecutive %d should be <= one-shot %d", consec, oneShot)
	}
}

func TestIntermittentTakesNewBaseline(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyIntermittent})
	sawSecondFull := false
	for i := 0; i < 20 && !sawSecondFull; i++ {
		man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 4, 64))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && man.Kind == "full" {
			sawSecondFull = true
			// After a new baseline, cumulative view resets: next
			// incremental should be against the new base.
			man2, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 4, 64))
			if err != nil {
				t.Fatal(err)
			}
			if man2.Kind != "incremental" || man2.BaseID != man.ID {
				t.Fatalf("post-baseline manifest = %+v", man2)
			}
		}
	}
	if !sawSecondFull {
		t.Fatal("intermittent policy never took a second full baseline in 20 intervals")
	}
}

func TestIntermittentRestoreExact(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyIntermittent})
	for i := 0; i < 8; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 3, 32)); err != nil {
			t.Fatal(err)
		}
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-6) {
		t.Fatal("intermittent restore differs from live model")
	}
}

func TestIncrementalBandwidthSavings(t *testing.T) {
	// §5.1: incremental checkpoints cut average write bandwidth by >50%
	// relative to full checkpoints under sparse updates.
	bandwidth := func(policy PolicyKind) int64 {
		f := newFixture(t, Config{Policy: policy})
		for i := 0; i < 4; i++ {
			if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 32)); err != nil {
				t.Fatal(err)
			}
		}
		return f.store.Usage().BytesWritten
	}
	full := bandwidth(PolicyFull)
	oneShot := bandwidth(PolicyOneShot)
	if oneShot >= full/2 {
		t.Fatalf("one-shot bandwidth %d vs full %d: want > 2x savings", oneShot, full)
	}
}

func TestRestoreNoCheckpoint(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestRestoreUnknownID(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
		t.Fatal(err)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.Restore(f.ctx, 42, m2); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestRestoreDetectsCorruptChunk(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	key := man.Tables[0].ChunkKeys[0]
	blob, err := f.store.Get(f.ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := f.store.Put(f.ctx, key, blob); err != nil {
		t.Fatal(err)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err == nil {
		t.Fatal("corrupt chunk should fail restore")
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
		t.Fatal(err)
	}
	otherCfg := testModelConfig()
	otherCfg.Tables = []embedding.TableSpec{
		{Rows: 100, Dim: 16}, {Rows: 512, Dim: 16}, {Rows: 1024, Dim: 16},
	}
	m2, err := model.New(otherCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestGCKeepLast(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull, KeepLast: 2})
	for i := 0; i < 5; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := f.rest.ListManifests(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != 3 || ms[1].ID != 4 {
		t.Fatalf("retained = %v", ids(ms))
	}
}

func TestGCPreservesBaseOfRetainedIncrement(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyOneShot, KeepLast: 1})
	for i := 0; i < 4; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := f.rest.ListManifests(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Latest incremental plus its base 0 must both survive.
	if len(ms) != 2 || ms[0].ID != 0 || ms[1].ID != 3 {
		t.Fatalf("retained = %v", ids(ms))
	}
	// And restore still works.
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
}

func TestGCPreservesConsecutiveChain(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyConsecutive, KeepLast: 1})
	for i := 0; i < 4; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := f.rest.ListManifests(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The whole chain 0..3 must survive.
	if len(ms) != 4 {
		t.Fatalf("retained = %v, want full chain", ids(ms))
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
}

func TestSetQuantValidates(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	if err := f.eng.SetQuant(quant.Params{Method: quant.MethodAsymmetric, Bits: 0}); err == nil {
		t.Fatal("bad quant should error")
	}
	if err := f.eng.SetQuant(quant.Params{Method: quant.MethodAsymmetric, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if f.eng.Quant().Bits != 8 {
		t.Fatal("quant not updated")
	}
}

func TestWriteNilSnapshot(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	if _, err := f.eng.Write(f.ctx, nil); err == nil {
		t.Fatal("nil snapshot should error")
	}
}

func TestResumeTrainingAfterRestore(t *testing.T) {
	// End-to-end: train, checkpoint, train more, "crash", restore, replay
	// the same data — final state must match the uninterrupted run when
	// checkpoints are unquantized.
	f := newFixture(t, Config{Policy: PolicyOneShot})
	const batch = 32
	// Train 3 batches, checkpoint.
	for i := 0; i < 3; i++ {
		f.m.TrainBatch(f.gen.NextBatch(batch))
	}
	snap, err := TakeSnapshot(f.m, 3, data.ReaderState{NextSample: f.gen.Pos(), BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Write(f.ctx, snap); err != nil {
		t.Fatal(err)
	}
	// Continue 2 more batches on the original.
	for i := 0; i < 2; i++ {
		f.m.TrainBatch(f.gen.NextBatch(batch))
	}

	// Crash-restore into a fresh model and replay from the reader state.
	m2, _ := model.New(testModelConfig(), 2)
	res, err := f.rest.RestoreLatest(f.ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	gen2, _ := data.NewGenerator(testDataSpec())
	gen2.SeekTo(res.Reader.NextSample)
	for i := 0; i < 2; i++ {
		m2.TrainBatch(gen2.NextBatch(batch))
	}
	if !modelsEqual(f.m, m2, f.gen, 1e-5) {
		t.Fatal("resumed run diverged from uninterrupted run")
	}
}

func TestPolicyPredictor(t *testing.T) {
	ps := newPolicyState(PolicyIntermittent)
	// Before any full checkpoint: decide full.
	if d := ps.decide(0.2); d.kind != wire.KindFull {
		t.Fatal("first decision should be full")
	}
	ps.record(wire.KindFull, 1)
	// With no incremental history, stay incremental.
	if d := ps.decide(0.25); d.kind != wire.KindIncremental {
		t.Fatal("should go incremental after baseline")
	}
	// Growing sizes eventually trigger Fc <= Ic.
	sizes := []float64{0.25, 0.33, 0.40, 0.45, 0.48, 0.50, 0.52, 0.55}
	tookFull := false
	for _, s := range sizes {
		d := ps.decide(s)
		if d.kind == wire.KindFull {
			tookFull = true
			break
		}
		ps.record(wire.KindIncremental, s)
	}
	if !tookFull {
		t.Fatal("predictor never selected a new baseline")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []PolicyKind{PolicyFull, PolicyOneShot, PolicyConsecutive, PolicyIntermittent, PolicyKind(7)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func stored(m *wire.Manifest) int {
	n := 0
	for _, t := range m.Tables {
		n += t.StoredRows
	}
	return n
}

func ids(ms []*wire.Manifest) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

func BenchmarkWriteFullFP32(b *testing.B) {
	benchWrite(b, Config{Policy: PolicyFull})
}

func BenchmarkWriteFull4Bit(b *testing.B) {
	benchWrite(b, Config{
		Policy: PolicyFull,
		Quant:  quant.Params{Method: quant.MethodAsymmetric, Bits: 4},
	})
}

func benchWrite(b *testing.B, cfg Config) {
	m, err := model.New(testModelConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := data.NewGenerator(testDataSpec())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m.TrainBatch(gen.NextBatch(64))
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg.Store = objstore.NewMemStore(objstore.MemConfig{})
		cfg.JobID = "bench"
		eng, err := NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		snap, err := TakeSnapshot(m, 1, data.ReaderState{NextSample: gen.Pos(), BatchSize: 64})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := eng.Write(ctx, snap); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompactMetadataRoundTrip(t *testing.T) {
	f := newFixture(t, Config{
		Policy:          PolicyOneShot,
		Quant:           quant.Params{Method: quant.MethodAsymmetric, Bits: 4},
		CompactMetadata: true,
	})
	for i := 0; i < 3; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 32)); err != nil {
			t.Fatal(err)
		}
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	// Restored model must match the live model within 4-bit noise.
	if !modelsEqual(f.m, m2, f.gen, 0.2) {
		t.Fatal("compact-metadata restore diverged")
	}
}

func TestCompactMetadataShrinksCheckpoint(t *testing.T) {
	size := func(compact bool) int64 {
		f := newFixture(t, Config{
			Policy:          PolicyFull,
			Quant:           quant.Params{Method: quant.MethodAsymmetric, Bits: 4},
			CompactMetadata: compact,
		})
		man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
		if err != nil {
			t.Fatal(err)
		}
		return man.PayloadBytes
	}
	v1, v2 := size(false), size(true)
	if v2 >= v1 {
		t.Fatalf("compact %d should be smaller than v1 %d", v2, v1)
	}
	t.Logf("v1=%dB compact=%dB (%.0f%% smaller)", v1, v2, (1-float64(v2)/float64(v1))*100)
}

func TestCompactMetadataFallsBackForKMeans(t *testing.T) {
	// K-means rows cannot use CKP2; the engine must silently fall back to
	// the v1 layout and restores must still work.
	f := newFixture(t, Config{
		Policy:          PolicyFull,
		Quant:           quant.Params{Method: quant.MethodKMeans, Bits: 4, KMeansIters: 3},
		CompactMetadata: true,
	})
	if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
		t.Fatal(err)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSizeBytes(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	snap := f.trainAndSnapshot(t, 1, 16)
	got := snap.SizeBytes()
	// Lower bound: the table copies alone.
	var tables int64
	for _, tb := range snap.Tables {
		tables += tb.SizeBytes()
	}
	if got < tables || got < tables+int64(len(snap.Dense)) {
		t.Fatalf("SizeBytes = %d, below component sum", got)
	}
	// The snapshot is roughly one model copy (the §4.2 host-DRAM cost).
	if got > 2*f.m.SparseBytes() {
		t.Fatalf("SizeBytes = %d suspiciously large vs model %d", got, f.m.SparseBytes())
	}
}
