package ckpt

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/wire"
)

// flakyStore wraps a Store and fails Puts according to a schedule —
// failure injection for the engine's abort/cleanup path.
type flakyStore struct {
	objstore.Store
	mu       sync.Mutex
	failPut  int // fail the Nth Put (1-based); 0 disables
	putCount int
}

var errInjected = errors.New("injected storage failure")

func (f *flakyStore) Put(ctx context.Context, key string, value []byte) error {
	f.mu.Lock()
	f.putCount++
	n := f.putCount
	fail := f.failPut
	f.mu.Unlock()
	if fail > 0 && n == fail {
		return errInjected
	}
	return f.Store.Put(ctx, key, value)
}

func TestWriteAbortCleansUpPartialObjects(t *testing.T) {
	inner := objstore.NewMemStore(objstore.MemConfig{})
	flaky := &flakyStore{Store: inner, failPut: 3}
	f := newFixture(t, Config{Store: flaky, Policy: PolicyFull, Uploaders: 1})
	snap := f.trainAndSnapshot(t, 1, 16)
	if _, err := f.eng.Write(f.ctx, snap); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	// No objects of the aborted checkpoint remain.
	keys, err := inner.List(f.ctx, "testjob/ckpt/00000000/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("aborted checkpoint left %d objects: %v", len(keys), keys)
	}
	// And the next attempt succeeds with the same ID.
	flaky.mu.Lock()
	flaky.failPut = 0
	flaky.mu.Unlock()
	man, err := f.eng.Write(f.ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.ID != 0 {
		t.Fatalf("retry should reuse ID 0, got %d", man.ID)
	}
}

func TestWriteAbortKeepsPreviousCheckpointValid(t *testing.T) {
	inner := objstore.NewMemStore(objstore.MemConfig{})
	flaky := &flakyStore{Store: inner}
	f := newFixture(t, Config{Store: flaky, Policy: PolicyOneShot, Uploaders: 1})
	// First checkpoint succeeds.
	if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
		t.Fatal(err)
	}
	liveAtCkpt1 := f.m.Sparse.Tables[0].Weights.At(0, 0)
	// Second checkpoint fails mid-upload.
	flaky.mu.Lock()
	flaky.failPut = flaky.putCount + 2
	flaky.mu.Unlock()
	if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err == nil {
		t.Fatal("expected injected failure")
	}
	// Recovery still restores checkpoint 0 cleanly.
	m2, _ := model.New(testModelConfig(), 2)
	res, err := f.rest.RestoreLatest(f.ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[len(res.Manifests)-1].ID != 0 {
		t.Fatalf("latest valid should be 0, got %d", res.Manifests[len(res.Manifests)-1].ID)
	}
	_ = liveAtCkpt1
	// Scrub confirms integrity.
	v, err := f.rest.Verify(f.ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Fatalf("checkpoint 0 flagged after aborted successor: %v", v.Problems)
	}
}

func TestWriteFailureOnDenseState(t *testing.T) {
	inner := objstore.NewMemStore(objstore.MemConfig{})
	flaky := &flakyStore{Store: inner}
	f := newFixture(t, Config{Store: flaky, Policy: PolicyFull, Uploaders: 1, ChunkRows: 4096})
	snap := f.trainAndSnapshot(t, 1, 16)
	// With ChunkRows large, the 3 tables upload as 3 Puts; the 4th Put is
	// the dense state.
	flaky.mu.Lock()
	flaky.failPut = 4
	flaky.mu.Unlock()
	if _, err := f.eng.Write(f.ctx, snap); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	keys, _ := inner.List(f.ctx, "testjob/")
	if len(keys) != 0 {
		t.Fatalf("leftover objects after dense-state failure: %v", keys)
	}
}

func TestWriteContextCancelledMidway(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	snap := f.trainAndSnapshot(t, 1, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.eng.Write(ctx, snap); err == nil {
		t.Fatal("cancelled context should abort the write")
	}
	keys, _ := f.store.List(context.Background(), "testjob/")
	if len(keys) != 0 {
		t.Fatalf("leftover objects after cancellation: %v", keys)
	}
}

// shardKillStore fails every Put whose key contains kill, after allowing
// the first okFirst matching Puts through — killing one shard writer
// mid-checkpoint while the other shards keep storing.
type shardKillStore struct {
	objstore.Store
	mu      sync.Mutex
	kill    string
	okFirst int
	matched int
}

func (s *shardKillStore) arm(substr string, okFirst int) {
	s.mu.Lock()
	s.kill = substr
	s.okFirst = okFirst
	s.matched = 0
	s.mu.Unlock()
}

func (s *shardKillStore) Put(ctx context.Context, key string, value []byte) error {
	s.mu.Lock()
	armed := s.kill != "" && strings.Contains(key, s.kill)
	if armed {
		s.matched++
		armed = s.matched > s.okFirst
	}
	s.mu.Unlock()
	if armed {
		return errInjected
	}
	return s.Store.Put(ctx, key, value)
}

func TestShardKillMidCheckpointAbortsComposite(t *testing.T) {
	inner := objstore.NewMemStore(objstore.MemConfig{})
	killer := &shardKillStore{Store: inner}
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "kill", Store: killer, Policy: PolicyOneShot, ChunkRows: 64},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint 0 lands cleanly; remember its exact restored state.
	if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 2, 32)); err != nil {
		t.Fatal(err)
	}
	rest, err := NewRestorer("kill", inner)
	if err != nil {
		t.Fatal(err)
	}
	mPrev, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, mPrev); err != nil {
		t.Fatal(err)
	}

	// Kill shard 1 after its first chunk of checkpoint 1 uploads.
	killer.arm("/shard/0001/ckpt/00000001/", 1)
	snap := f.trainAndSnapshot(t, 2, 32)
	if _, err := coord.Write(f.ctx, snap); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected shard failure", err)
	}

	// (a) No composite manifest was committed for the torn checkpoint,
	// and no objects of the attempt survive anywhere.
	if _, err := inner.Get(f.ctx, wire.ManifestKey("kill", 1)); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("torn checkpoint has a composite manifest (err %v)", err)
	}
	keys, err := inner.List(f.ctx, "kill")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if strings.Contains(k, "/ckpt/00000001/") {
			t.Fatalf("torn checkpoint left object %s", k)
		}
	}

	// (b) Restore falls back to checkpoint 0, byte-for-byte.
	mAfter, _ := model.New(testModelConfig(), 2)
	res, err := rest.RestoreLatest(f.ctx, mAfter)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != 0 {
		t.Fatalf("fell back to checkpoint %d, want 0", res.Manifests[0].ID)
	}
	assertBitIdentical(t, mPrev, mAfter)

	// Disarmed, the retry reuses ID 1 and becomes restorable.
	killer.arm("", 0)
	man, err := coord.Write(f.ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.ID != 1 {
		t.Fatalf("retry ID = %d, want 1", man.ID)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, f.m, m2)
}

func TestShardKillOnManifestPublishAbortsComposite(t *testing.T) {
	// Fail the two-phase commit later: chunks all land, but one shard's
	// manifest put dies. The composite must still not exist.
	inner := objstore.NewMemStore(objstore.MemConfig{})
	killer := &shardKillStore{Store: inner}
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "pubkill", Store: killer, Policy: PolicyFull},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	killer.arm("/shard/0002/ckpt/00000000/manifest", 0)
	if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	keys, err := inner.List(f.ctx, "pubkill")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("aborted publish left %d objects: %v", len(keys), keys)
	}
	rest, _ := NewRestorer("pubkill", inner)
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, m2); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCompositeMissingShardManifestFallsBack(t *testing.T) {
	// Belt and braces beyond the two-phase commit: if a committed
	// composite loses a shard manifest (tampering, partial GC), restore
	// must fall back to the newest complete checkpoint instead of failing.
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "tamper", Store: f.store, Policy: PolicyFull},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
		t.Fatal(err)
	}
	rest, _ := NewRestorer("tamper", f.store)
	mPrev, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, mPrev); err != nil {
		t.Fatal(err)
	}
	man1, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.store.Delete(f.ctx, man1.ShardManifestKeys[1]); err != nil {
		t.Fatal(err)
	}
	// Direct restore of the damaged composite errors...
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.Restore(f.ctx, man1.ID, m2); err == nil {
		t.Fatal("restore of incomplete composite should error")
	}
	// ...while RestoreLatest falls back to checkpoint 0, byte-for-byte.
	mAfter, _ := model.New(testModelConfig(), 2)
	res, err := rest.RestoreLatest(f.ctx, mAfter)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != 0 {
		t.Fatalf("fell back to %d, want 0", res.Manifests[0].ID)
	}
	assertBitIdentical(t, mPrev, mAfter)
}

func TestRestoreFailsCleanlyOnMissingBase(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyOneShot,
		Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 8}})
	for i := 0; i < 2; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// Remove the base checkpoint entirely.
	keys, _ := f.store.List(f.ctx, "testjob/ckpt/00000000/")
	for _, k := range keys {
		f.store.Delete(f.ctx, k)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.Restore(f.ctx, 1, m2); err == nil {
		t.Fatal("restore with missing base should error")
	}
}
