package ckpt

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
)

// flakyStore wraps a Store and fails Puts according to a schedule —
// failure injection for the engine's abort/cleanup path.
type flakyStore struct {
	objstore.Store
	mu       sync.Mutex
	failPut  int // fail the Nth Put (1-based); 0 disables
	putCount int
}

var errInjected = errors.New("injected storage failure")

func (f *flakyStore) Put(ctx context.Context, key string, value []byte) error {
	f.mu.Lock()
	f.putCount++
	n := f.putCount
	fail := f.failPut
	f.mu.Unlock()
	if fail > 0 && n == fail {
		return errInjected
	}
	return f.Store.Put(ctx, key, value)
}

func TestWriteAbortCleansUpPartialObjects(t *testing.T) {
	inner := objstore.NewMemStore(objstore.MemConfig{})
	flaky := &flakyStore{Store: inner, failPut: 3}
	f := newFixture(t, Config{Store: flaky, Policy: PolicyFull, Uploaders: 1})
	snap := f.trainAndSnapshot(t, 1, 16)
	if _, err := f.eng.Write(f.ctx, snap); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	// No objects of the aborted checkpoint remain.
	keys, err := inner.List(f.ctx, "testjob/ckpt/00000000/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("aborted checkpoint left %d objects: %v", len(keys), keys)
	}
	// And the next attempt succeeds with the same ID.
	flaky.mu.Lock()
	flaky.failPut = 0
	flaky.mu.Unlock()
	man, err := f.eng.Write(f.ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if man.ID != 0 {
		t.Fatalf("retry should reuse ID 0, got %d", man.ID)
	}
}

func TestWriteAbortKeepsPreviousCheckpointValid(t *testing.T) {
	inner := objstore.NewMemStore(objstore.MemConfig{})
	flaky := &flakyStore{Store: inner}
	f := newFixture(t, Config{Store: flaky, Policy: PolicyOneShot, Uploaders: 1})
	// First checkpoint succeeds.
	if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
		t.Fatal(err)
	}
	liveAtCkpt1 := f.m.Sparse.Tables[0].Weights.At(0, 0)
	// Second checkpoint fails mid-upload.
	flaky.mu.Lock()
	flaky.failPut = flaky.putCount + 2
	flaky.mu.Unlock()
	if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err == nil {
		t.Fatal("expected injected failure")
	}
	// Recovery still restores checkpoint 0 cleanly.
	m2, _ := model.New(testModelConfig(), 2)
	res, err := f.rest.RestoreLatest(f.ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[len(res.Manifests)-1].ID != 0 {
		t.Fatalf("latest valid should be 0, got %d", res.Manifests[len(res.Manifests)-1].ID)
	}
	_ = liveAtCkpt1
	// Scrub confirms integrity.
	v, err := f.rest.Verify(f.ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Fatalf("checkpoint 0 flagged after aborted successor: %v", v.Problems)
	}
}

func TestWriteFailureOnDenseState(t *testing.T) {
	inner := objstore.NewMemStore(objstore.MemConfig{})
	flaky := &flakyStore{Store: inner}
	f := newFixture(t, Config{Store: flaky, Policy: PolicyFull, Uploaders: 1, ChunkRows: 4096})
	snap := f.trainAndSnapshot(t, 1, 16)
	// With ChunkRows large, the 3 tables upload as 3 Puts; the 4th Put is
	// the dense state.
	flaky.mu.Lock()
	flaky.failPut = 4
	flaky.mu.Unlock()
	if _, err := f.eng.Write(f.ctx, snap); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	keys, _ := inner.List(f.ctx, "testjob/")
	if len(keys) != 0 {
		t.Fatalf("leftover objects after dense-state failure: %v", keys)
	}
}

func TestWriteContextCancelledMidway(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	snap := f.trainAndSnapshot(t, 1, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.eng.Write(ctx, snap); err == nil {
		t.Fatal("cancelled context should abort the write")
	}
	keys, _ := f.store.List(context.Background(), "testjob/")
	if len(keys) != 0 {
		t.Fatalf("leftover objects after cancellation: %v", keys)
	}
}

func TestRestoreFailsCleanlyOnMissingBase(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyOneShot,
		Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 8}})
	for i := 0; i < 2; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// Remove the base checkpoint entirely.
	keys, _ := f.store.List(f.ctx, "testjob/ckpt/00000000/")
	for _, k := range keys {
		f.store.Delete(f.ctx, k)
	}
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := f.rest.Restore(f.ctx, 1, m2); err == nil {
		t.Fatal("restore with missing base should error")
	}
}
