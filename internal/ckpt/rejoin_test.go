package ckpt

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/wire"
)

// rejoinSnapshots trains one model and captures a snapshot after each
// stretch, so two engines (one that lives, one that crashes and
// recovers) can be fed byte-identical inputs.
func rejoinSnapshots(t *testing.T, n int) []*Snapshot {
	t.Helper()
	m, err := model.New(testModelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := data.NewGenerator(testDataSpec())
	if err != nil {
		t.Fatal(err)
	}
	const batchSize = 16
	snaps := make([]*Snapshot, n)
	for i := range snaps {
		for b := 0; b < 2; b++ {
			m.TrainBatch(gen.NextBatch(batchSize))
		}
		snap, err := TakeSnapshot(m, gen.Pos()/batchSize,
			data.ReaderState{NextSample: gen.Pos(), BatchSize: batchSize})
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = snap
	}
	return snaps
}

// storesEqual asserts both stores hold exactly the same keys with the
// same bytes.
func storesEqual(t *testing.T, ctx context.Context, a, b objstore.Store) {
	t.Helper()
	ka, err := a.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ka, kb) {
		t.Fatalf("stores diverge:\n  live:      %v\n  recovered: %v", ka, kb)
	}
	for _, k := range ka {
		va, err := a.Get(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Get(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(va, vb) {
			t.Fatalf("object %s differs between live and recovered chains", k)
		}
	}
}

// TestRecoverEngineResumesChainBitIdentically is the engine-level rejoin
// guarantee: an engine rebuilt from the store continues the chain with
// byte-for-byte the same objects a never-crashed engine writes. Every
// policy is covered — each reconstructs different state (baselines,
// cumulative bitmaps, size history).
func TestRecoverEngineResumesChainBitIdentically(t *testing.T) {
	policies := map[string]PolicyKind{
		"full":         PolicyFull,
		"oneshot":      PolicyOneShot,
		"consecutive":  PolicyConsecutive,
		"intermittent": PolicyIntermittent,
	}
	for name, pol := range policies {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			snaps := rejoinSnapshots(t, 3)
			storeLive := objstore.NewMemStore(objstore.MemConfig{})
			storeCrash := objstore.NewMemStore(objstore.MemConfig{})
			live, err := NewEngine(Config{JobID: "testjob", Store: storeLive, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			crash, err := NewEngine(Config{JobID: "testjob", Store: storeCrash, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if _, err := live.Write(ctx, snaps[i]); err != nil {
					t.Fatal(err)
				}
				if _, err := crash.Write(ctx, snaps[i]); err != nil {
					t.Fatal(err)
				}
			}

			// The crashed process is gone; recover a fresh engine from
			// its store and verify it rebuilt the live engine's state.
			rec, err := RecoverEngine(ctx, Config{JobID: "testjob", Store: storeCrash, Policy: pol}, RecoverOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rec.nextID != crash.nextID {
				t.Fatalf("recovered nextID = %d, want %d", rec.nextID, crash.nextID)
			}
			if rec.lastFullID != crash.lastFullID {
				t.Fatalf("recovered lastFullID = %d, want %d", rec.lastFullID, crash.lastFullID)
			}
			if rec.state.haveFull != crash.state.haveFull || !reflect.DeepEqual(rec.state.sizes, crash.state.sizes) {
				t.Fatalf("recovered policy state = (%v, %v), want (%v, %v)",
					rec.state.haveFull, rec.state.sizes, crash.state.haveFull, crash.state.sizes)
			}
			for id, want := range crash.cumulative {
				got := rec.cumulative[id]
				if got == nil {
					if want.Count() == 0 {
						continue
					}
					t.Fatalf("recovered engine lost cumulative bitmap of table %d", id)
				}
				if !reflect.DeepEqual(got.Indices(), want.Indices()) {
					t.Fatalf("cumulative bitmap of table %d diverged after recovery", id)
				}
			}

			// Both continue the chain; the stores must end up identical.
			if _, err := live.Write(ctx, snaps[2]); err != nil {
				t.Fatal(err)
			}
			if _, err := rec.Write(ctx, snaps[2]); err != nil {
				t.Fatal(err)
			}
			storesEqual(t, ctx, storeLive, storeCrash)
		})
	}
}

// TestRecoverEngineDropsUncommittedTrailingManifest: a process that dies
// after publishing its shard manifest but before the job-level commit
// point landed must not adopt that manifest on rejoin — it would sit one
// ID ahead of the rest of the fleet forever. The trailing uncommitted
// manifest is rolled back instead.
func TestRecoverEngineDropsUncommittedTrailingManifest(t *testing.T) {
	ctx := context.Background()
	snaps := rejoinSnapshots(t, 2)
	store := objstore.NewMemStore(objstore.MemConfig{})
	cfg := Config{JobID: "testjob", Store: store, Policy: PolicyOneShot}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Write(ctx, snaps[0]); err != nil {
		t.Fatal(err)
	}
	// Attempt 1 publishes, then the process dies before the composite
	// commit: the manifest is durable but uncommitted.
	p, err := eng.Prepare(ctx, snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(ctx); err != nil {
		t.Fatal(err)
	}

	rec, err := RecoverEngine(ctx, cfg, RecoverOptions{
		Committed: func(ctx context.Context, id int) (bool, error) { return id == 0, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.NextID() != 1 {
		t.Fatalf("recovered NextID = %d, want 1 (uncommitted attempt dropped)", rec.NextID())
	}
	keys, err := store.List(ctx, wire.CheckpointPrefix("testjob", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("uncommitted attempt left %d objects behind: %v", len(keys), keys)
	}
	// The committed checkpoint is untouched and the chain continues.
	if _, err := rec.Write(ctx, snaps[1]); err != nil {
		t.Fatal(err)
	}
	if rec.LatestID() != 1 {
		t.Fatalf("latest = %d after resumed write, want 1", rec.LatestID())
	}
}

// TestRecoverEngineFreshStore: recovery of a job that never checkpointed
// is just a fresh engine.
func TestRecoverEngineFreshStore(t *testing.T) {
	store := objstore.NewMemStore(objstore.MemConfig{})
	rec, err := RecoverEngine(context.Background(),
		Config{JobID: "testjob", Store: store, Policy: PolicyOneShot}, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.NextID() != 0 || rec.LatestID() != -1 {
		t.Fatalf("fresh recovery at nextID %d latest %d", rec.NextID(), rec.LatestID())
	}
}
