package ckpt

import (
	"testing"

	"repro/internal/quant"
)

func TestVerifyCleanCheckpoint(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyOneShot,
		Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 4}})
	for i := 0; i < 3; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 2, 32)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := f.rest.Verify(f.ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Fatalf("clean checkpoint flagged: %+v", v.Problems)
	}
	if v.Chunks == 0 || v.Rows == 0 || v.Bytes == 0 {
		t.Fatalf("scrub counters empty: %+v", v)
	}
	if v.Kind != "incremental" {
		t.Fatalf("kind = %s", v.Kind)
	}
}

func TestVerifyDetectsCorruptChunk(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	key := man.Tables[0].ChunkKeys[0]
	blob, _ := f.store.Get(f.ctx, key)
	blob[10] ^= 0xFF
	f.store.Put(f.ctx, key, blob)
	v, err := f.rest.Verify(f.ctx, man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK() {
		t.Fatal("corruption not detected")
	}
}

func TestVerifyDetectsMissingChunk(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.store.Delete(f.ctx, man.Tables[0].ChunkKeys[0]); err != nil {
		t.Fatal(err)
	}
	v, err := f.rest.Verify(f.ctx, man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK() {
		t.Fatal("missing chunk not detected")
	}
}

func TestVerifyDetectsMissingDense(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	man, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.store.Delete(f.ctx, man.DenseKey); err != nil {
		t.Fatal(err)
	}
	v, err := f.rest.Verify(f.ctx, man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK() {
		t.Fatal("missing dense state not detected")
	}
}

func TestVerifyDetectsBrokenChain(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyOneShot})
	for i := 0; i < 2; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the base manifest: the incremental's chain breaks.
	keys, _ := f.store.List(f.ctx, "testjob/ckpt/00000000/")
	for _, k := range keys {
		f.store.Delete(f.ctx, k)
	}
	v, err := f.rest.Verify(f.ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.ChainOK || v.OK() {
		t.Fatal("broken chain not detected")
	}
}

func TestVerifyUnknownID(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyFull})
	if _, err := f.rest.Verify(f.ctx, 99); err == nil {
		t.Fatal("unknown checkpoint should error")
	}
}

func TestVerifyAll(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyConsecutive})
	for i := 0; i < 3; i++ {
		if _, err := f.eng.Write(f.ctx, f.trainAndSnapshot(t, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := f.rest.VerifyAll(f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("scrubbed %d, want 3", len(results))
	}
	// Newest first.
	if results[0].ID != 2 || results[2].ID != 0 {
		t.Fatalf("order wrong: %d, %d, %d", results[0].ID, results[1].ID, results[2].ID)
	}
	for _, v := range results {
		if !v.OK() {
			t.Fatalf("checkpoint %d flagged: %v", v.ID, v.Problems)
		}
	}
}
