package ckpt

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/objstore"
	"repro/internal/wire"
)

// VerifyResult reports a checkpoint integrity scrub.
type VerifyResult struct {
	ID     int
	Kind   string
	Chunks int
	Rows   int
	Bytes  int64
	// ChainOK reports whether every checkpoint the target depends on
	// (base, consecutive links) is present and valid.
	ChainOK bool
	// Problems lists human-readable integrity failures; empty means the
	// checkpoint is fully restorable.
	Problems []string
}

// OK reports whether the scrub found no problems.
func (v *VerifyResult) OK() bool { return len(v.Problems) == 0 && v.ChainOK }

// Verify scrubs checkpoint id: it fetches and CRC-validates every chunk,
// checks row indices against the manifest's table shapes, confirms the
// dense object exists, and walks the restore chain. It never modifies the
// model or the store — this is the offline integrity check an operator
// runs before trusting a checkpoint (the controller "monitors and
// maintains checkpoints" in Figure 7).
func (r *Restorer) Verify(ctx context.Context, id int) (*VerifyResult, error) {
	man, merr := r.manifest(ctx, id)
	if merr == nil && man.Composite() {
		return r.verifyComposite(ctx, man)
	}
	if merr != nil && !errors.Is(merr, objstore.ErrNotFound) {
		// A transient store failure must not masquerade as corruption
		// (or as a single-writer checkpoint).
		return nil, merr
	}
	chain, err := r.Chain(ctx, id)
	res := &VerifyResult{ID: id, ChainOK: err == nil}
	if err != nil {
		// Still try to scrub the target itself if its manifest loads.
		ms, lerr := r.ListManifests(ctx)
		if lerr != nil {
			return nil, lerr
		}
		var target *wire.Manifest
		for _, m := range ms {
			if m.ID == id {
				target = m
			}
		}
		if target == nil {
			return nil, fmt.Errorf("ckpt: checkpoint %d not found", id)
		}
		res.Problems = append(res.Problems, fmt.Sprintf("chain: %v", err))
		chain = []*wire.Manifest{target}
	}
	target := chain[len(chain)-1]
	res.Kind = target.Kind

	for _, man := range chain {
		for _, tm := range man.Tables {
			for _, key := range tm.ChunkKeys {
				blob, err := r.store.Get(ctx, key)
				if err != nil {
					res.Problems = append(res.Problems, fmt.Sprintf("%s: %v", key, err))
					continue
				}
				res.Bytes += int64(len(blob))
				// Alias decode: the chunk is only scanned for row indices
				// and dims before blob goes out of scope.
				chunk, err := wire.DecodeChunkAlias(blob)
				if err != nil {
					res.Problems = append(res.Problems, fmt.Sprintf("%s: %v", key, err))
					continue
				}
				res.Chunks++
				if int(chunk.TableID) != tm.TableID {
					res.Problems = append(res.Problems,
						fmt.Sprintf("%s: holds table %d, manifest says %d", key, chunk.TableID, tm.TableID))
				}
				for i := range chunk.Rows {
					row := &chunk.Rows[i]
					if int(row.Index) >= tm.Rows {
						res.Problems = append(res.Problems,
							fmt.Sprintf("%s: row index %d out of range [0,%d)", key, row.Index, tm.Rows))
						break
					}
					if row.Q == nil || row.Q.N != tm.Dim {
						res.Problems = append(res.Problems,
							fmt.Sprintf("%s: row %d has dim %d, want %d", key, row.Index, qDim(row), tm.Dim))
						break
					}
					res.Rows++
				}
			}
		}
		if man.DenseKey != "" {
			if _, err := r.store.Stat(ctx, man.DenseKey); err != nil {
				res.Problems = append(res.Problems, fmt.Sprintf("dense %s: %v", man.DenseKey, err))
			}
		}
	}
	return res, nil
}

// verifyComposite scrubs a sharded checkpoint: every shard's manifest
// must be present and its restore chain must scrub clean.
func (r *Restorer) verifyComposite(ctx context.Context, man *wire.Manifest) (*VerifyResult, error) {
	res := &VerifyResult{ID: man.ID, Kind: man.Kind, ChainOK: true}
	for s := 0; s < man.ShardCount; s++ {
		sub, err := r.shardRestorer(s)
		if err != nil {
			return nil, err
		}
		sv, err := sub.Verify(ctx, man.ID)
		if err != nil {
			res.ChainOK = false
			res.Problems = append(res.Problems, fmt.Sprintf("shard %d: %v", s, err))
			continue
		}
		res.Chunks += sv.Chunks
		res.Rows += sv.Rows
		res.Bytes += sv.Bytes
		res.ChainOK = res.ChainOK && sv.ChainOK
		for _, p := range sv.Problems {
			res.Problems = append(res.Problems, fmt.Sprintf("shard %d: %s", s, p))
		}
	}
	if man.DenseKey != "" {
		if _, err := r.store.Stat(ctx, man.DenseKey); err != nil {
			res.Problems = append(res.Problems, fmt.Sprintf("dense %s: %v", man.DenseKey, err))
		}
	}
	return res, nil
}

func qDim(row *wire.Row) int {
	if row.Q == nil {
		return -1
	}
	return row.Q.N
}

// VerifyAll scrubs every checkpoint of the job, newest first.
func (r *Restorer) VerifyAll(ctx context.Context) ([]*VerifyResult, error) {
	ms, err := r.ListManifests(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]*VerifyResult, 0, len(ms))
	for i := len(ms) - 1; i >= 0; i-- {
		v, err := r.Verify(ctx, ms[i].ID)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
