package ckpt

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/objstore"
)

// cancelStore wraps a Store, cancels a context after the Nth successful
// Put, and from then on fails every ctx-carrying operation with the
// context's error — emulating a store client that honors deadlines
// (like the TCP client) under a parent cancellation mid-commit.
type cancelStore struct {
	objstore.Store
	cancel  context.CancelFunc
	mu      sync.Mutex
	after   int
	puts    int
	tripped bool
}

func (s *cancelStore) trippedNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tripped
}

func (s *cancelStore) Put(ctx context.Context, key string, value []byte) error {
	s.mu.Lock()
	if s.tripped && ctx.Err() != nil {
		s.mu.Unlock()
		return ctx.Err()
	}
	s.puts++
	trip := s.puts == s.after
	if trip {
		s.tripped = true
	}
	s.mu.Unlock()
	if trip {
		s.cancel()
		return context.Canceled
	}
	return s.Store.Put(ctx, key, value)
}

func (s *cancelStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.Store.Delete(ctx, key)
}

func (s *cancelStore) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Store.List(ctx, prefix)
}

func TestCoordinatorWriteSurfacesCtxErrAndAbortsAllShards(t *testing.T) {
	// Cancelling the parent context mid-commit must (a) return ctx.Err()
	// — not whichever shard's partial-write error the cancellation
	// surfaced first — and (b) still abort every shard, deleting all of
	// the attempt's objects even though the parent context is dead.
	inner := objstore.NewMemStore(objstore.MemConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cs := &cancelStore{Store: inner, cancel: cancel, after: 5}
	f := newFixture(t, Config{Policy: PolicyFull})
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "cancel", Store: cs, Policy: PolicyOneShot, ChunkRows: 64, Uploaders: 1},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Write(ctx, f.trainAndSnapshot(t, 2, 32))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !cs.trippedNow() {
		t.Fatal("cancellation never injected; test is vacuous")
	}
	// Abort ran under a cancellation-immune context: nothing of the
	// attempt survives, in either the composite or the shard scopes.
	keys, err := inner.List(context.Background(), "cancel")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("cancelled commit left %d objects: %v", len(keys), keys)
	}
	// The attempt is fully retryable with the same ID once the caller
	// supplies a live context.
	man, err := coord.Write(f.ctx, f.trainAndSnapshot(t, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	if man.ID != 0 {
		t.Fatalf("retry ID = %d, want 0", man.ID)
	}
	rest, _ := NewRestorer("cancel", cs)
	m2, _ := model.New(testModelConfig(), 2)
	if _, err := rest.RestoreLatest(f.ctx, m2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, f.m, m2)
}

func TestCoordinatorWriteCancelledBeforeCommitKeepsPrevious(t *testing.T) {
	// A checkpoint committed before the cancellation stays restorable;
	// the cancelled successor leaves no trace anywhere in the store.
	inner := objstore.NewMemStore(objstore.MemConfig{})
	f := newFixture(t, Config{Policy: PolicyFull})
	ctx0, cancel0 := context.WithCancel(context.Background())
	defer cancel0()
	cs := &cancelStore{Store: inner, cancel: cancel0, after: 1 << 30}
	coord, err := NewCoordinator(CoordinatorConfig{
		Config: Config{JobID: "cancel2", Store: cs, Policy: PolicyOneShot, Uploaders: 1},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Write(context.Background(), f.trainAndSnapshot(t, 1, 16)); err != nil {
		t.Fatal(err)
	}
	// Arm the trip partway into the second write.
	cs.mu.Lock()
	cs.after = cs.puts + 3
	cs.mu.Unlock()
	if _, err := coord.Write(ctx0, f.trainAndSnapshot(t, 1, 16)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	keys, err := inner.List(context.Background(), "cancel2")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if strings.Contains(k, "/ckpt/00000001/") {
			t.Fatalf("cancelled attempt left object %s", k)
		}
	}
	rest, _ := NewRestorer("cancel2", cs)
	m2, _ := model.New(testModelConfig(), 2)
	res, err := rest.RestoreLatest(context.Background(), m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifests[0].ID != 0 {
		t.Fatalf("fell back to %d, want 0", res.Manifests[0].ID)
	}
}
