package ckpt

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/wire"
)

// storeDump returns every object in the store, sorted by key.
func storeDump(t *testing.T, ctx context.Context, store objstore.Store) map[string][]byte {
	t.Helper()
	keys, err := store.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		blob, err := store.Get(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = blob
	}
	return out
}

// writeWithEncoders trains a fixed workload and writes one full + one
// incremental checkpoint through an engine with the given encoder count,
// returning the store contents.
func writeWithEncoders(t *testing.T, encoders int, p quant.Params, compact bool) map[string][]byte {
	return writeWithEncodersSampling(t, encoders, p, compact, 0)
}

func writeWithEncodersSampling(t *testing.T, encoders int, p quant.Params, compact bool, sampling int) map[string][]byte {
	t.Helper()
	m, err := model.New(testModelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := data.NewGenerator(testDataSpec())
	if err != nil {
		t.Fatal(err)
	}
	store := objstore.NewMemStore(objstore.MemConfig{})
	eng, err := NewEngine(Config{
		JobID:            "det",
		Store:            store,
		Policy:           PolicyOneShot,
		Quant:            p,
		ChunkRows:        64,
		Encoders:         encoders,
		CompactMetadata:  compact,
		AdaptiveSampling: sampling,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		m.TrainBatch(gen.NextBatch(64))
	}
	snap, err := TakeSnapshot(m, 3, data.ReaderState{NextSample: gen.Pos(), BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Write(ctx, snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m.TrainBatch(gen.NextBatch(64))
	}
	snap, err = TakeSnapshot(m, 5, data.ReaderState{NextSample: gen.Pos(), BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Write(ctx, snap); err != nil {
		t.Fatal(err)
	}
	return storeDump(t, ctx, store)
}

// TestParallelEncodeDeterministic proves the encoder pool is an
// implementation detail: every stored object — chunk bytes, manifests,
// chunk-key order — is byte-identical between a serial engine and a
// wide worker pool, for both chunk layouts and quantized + fp32 paths.
func TestParallelEncodeDeterministic(t *testing.T) {
	cases := []struct {
		name    string
		p       quant.Params
		compact bool
	}{
		{"fp32_v1", quant.Params{Method: quant.MethodNone}, false},
		{"fp32_ckp2", quant.Params{Method: quant.MethodNone}, true},
		{"adaptive4_v1", quant.Params{Method: quant.MethodAdaptive, Bits: 4, NumBins: 25, Ratio: 1}, false},
		{"adaptive4_ckp2", quant.Params{Method: quant.MethodAdaptive, Bits: 4, NumBins: 25, Ratio: 1}, true},
		{"kmeans3_v1", quant.Params{Method: quant.MethodKMeans, Bits: 3, KMeansIters: 5}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := writeWithEncoders(t, 1, tc.p, tc.compact)
			parallel := writeWithEncoders(t, 8, tc.p, tc.compact)
			if len(serial) != len(parallel) {
				t.Fatalf("object count %d != %d", len(parallel), len(serial))
			}
			var keys []string
			for k := range serial {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				pb, ok := parallel[k]
				if !ok {
					t.Fatalf("parallel run missing object %s", k)
				}
				if !bytes.Equal(pb, serial[k]) {
					t.Fatalf("object %s differs between serial and parallel encode (%d vs %d bytes)",
						k, len(serial[k]), len(pb))
				}
			}
		})
	}
}

// TestAdaptiveSamplingExactModeMatchesLegacy proves AdaptiveSampling: 1
// is the legacy per-row search bit-for-bit at the engine level: every
// stored object matches an engine with the fast path (range cache and
// chunk sampling) disabled entirely, across a full + incremental pair.
// The sampled default (8) must in turn stay deterministic across worker
// counts — TestParallelEncodeDeterministic covers that — and produce the
// same object keys with restorable contents.
func TestAdaptiveSamplingExactModeMatchesLegacy(t *testing.T) {
	p := quant.Params{Method: quant.MethodAdaptive, Bits: 4, NumBins: 25, Ratio: 1}
	legacy := writeWithEncodersSampling(t, 4, p, false, -1)
	exact := writeWithEncodersSampling(t, 4, p, false, 1)
	if len(legacy) != len(exact) {
		t.Fatalf("object count %d != %d", len(exact), len(legacy))
	}
	for k, want := range legacy {
		got, ok := exact[k]
		if !ok {
			t.Fatalf("exact-mode run missing object %s", k)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("object %s differs between legacy and exact-mode engines (%d vs %d bytes)",
				k, len(want), len(got))
		}
	}
	// The sampled default writes the same object set (keys are derived
	// from row positions, not contents).
	sampled := writeWithEncodersSampling(t, 4, p, false, 8)
	if len(sampled) != len(legacy) {
		t.Fatalf("sampled run wrote %d objects, legacy %d", len(sampled), len(legacy))
	}
	for k := range legacy {
		if _, ok := sampled[k]; !ok {
			t.Fatalf("sampled run missing object %s", k)
		}
	}
}

// TestParallelRestoreMatchesSerial proves decode-side parallelism is
// invisible: restoring with one decoder and with eight produces
// bit-identical model state.
func TestParallelRestoreMatchesSerial(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyOneShot, ChunkRows: 32,
		Quant: quant.Params{Method: quant.MethodAsymmetric, Bits: 8}})
	snap := f.trainAndSnapshot(t, 3, 64)
	if _, err := f.eng.Write(f.ctx, snap); err != nil {
		t.Fatal(err)
	}
	snap = f.trainAndSnapshot(t, 2, 64)
	if _, err := f.eng.Write(f.ctx, snap); err != nil {
		t.Fatal(err)
	}

	restore := func(decoders int) *model.DLRM {
		m, err := model.New(testModelConfig(), 2)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := NewRestorer("testjob", f.store)
		if err != nil {
			t.Fatal(err)
		}
		rest.SetDecoders(decoders)
		if _, err := rest.RestoreLatest(f.ctx, m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := restore(1), restore(8)
	for ti, ta := range a.Sparse.Tables {
		tb := b.Sparse.Tables[ti]
		for r := 0; r < ta.Rows; r++ {
			ra, rb := ta.Lookup(r), tb.Lookup(r)
			for c := range ra {
				if ra[c] != rb[c] {
					t.Fatalf("table %d row %d col %d: %v != %v", ta.ID, r, c, ra[c], rb[c])
				}
			}
			if ta.Accum[r] != tb.Accum[r] {
				t.Fatalf("table %d row %d accum differs", ta.ID, r)
			}
		}
	}
	if !modelsEqual(a, b, f.gen, 0) {
		t.Fatal("restored models diverge between serial and parallel decode")
	}
}

// TestEncodeSteadyStateAllocs pins the per-row allocation behavior of
// the chunk encode loop: with warm scratch and a pooled buffer, encoding
// a chunk allocates nothing regardless of row count.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	build := func(nRows int) ([][]float32, []float32) {
		rows := make([][]float32, nRows)
		accums := make([]float32, nRows)
		for i := range rows {
			v := make([]float32, 16)
			for j := range v {
				v[j] = rng.Float32() - 0.5
			}
			rows[i] = v
			accums[i] = rng.Float32()
		}
		return rows, accums
	}
	p := quant.Params{Method: quant.MethodAsymmetric, Bits: 4}
	for _, nRows := range []int{64, 512} {
		vecs, accums := build(nRows)
		qrows := make([]quant.QVector, nRows)
		var scratch quant.Scratch
		encodeOnce := func(chunk *wire.Chunk) {
			chunk.Rows = chunk.Rows[:0]
			for i, v := range vecs {
				if err := quant.QuantizeInto(&qrows[i], v, p, &scratch); err != nil {
					t.Fatal(err)
				}
				chunk.Rows = append(chunk.Rows, wire.Row{Index: uint32(i), Accum: accums[i], Q: &qrows[i]})
			}
		}
		chunk := &wire.Chunk{TableID: 1, Rows: make([]wire.Row, 0, nRows)}
		buf := make([]byte, 0, 1<<20)
		// Warm.
		encodeOnce(chunk)
		var err error
		if buf, err = chunk.AppendCompactTo(buf[:0]); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			encodeOnce(chunk)
			var err error
			buf, err = chunk.AppendCompactTo(buf[:0])
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("nRows=%d: %v allocs per encoded chunk, want 0 (row-count independent)", nRows, allocs)
		}
	}
}
