package quant

import "encoding/binary"

// Word-wise bit packing.
//
// Codes are packed LSB-first: the value at logical index i occupies
// absolute bit positions [i*bits, (i+1)*bits), bit b of the value landing
// at absolute position i*bits+b, where absolute bit p lives in byte p/8
// at in-byte position p%8. This is exactly the layout the original
// bit-at-a-time packer produced, so packed streams are interchangeable
// across implementations — the golden-bytes tests in internal/wire pin it.
//
// The implementation is a 64-bit accumulator that shifts whole codes in
// and retires full bytes, with dedicated unrolled paths for the power-of-
// two widths (1, 2, 4, 8 bits) where codes align to byte boundaries.
// fp32 (MethodNone) rows never come through here; they use direct
// little-endian 4-byte loads and stores.

// PackedLen returns the byte length of n packed codes of the given width.
func PackedLen(n, bits int) int {
	return (n*bits + 7) / 8
}

// packedLen is the historical internal spelling.
func packedLen(n, bits int) int { return PackedLen(n, bits) }

// PackCodes packs codes (each truncated to the low `bits` bits) into dst,
// which must hold at least PackedLen(len(codes), bits) bytes. Every byte
// of the packed region is overwritten; dst does not need to be zeroed.
// bits must be in [1, 8].
func PackCodes(dst []byte, codes []uint32, bits int) {
	n := len(codes)
	switch bits {
	case 8:
		for i, c := range codes {
			dst[i] = byte(c)
		}
	case 4:
		o := 0
		for i := 0; i+2 <= n; i += 2 {
			dst[o] = byte(codes[i]&0xf) | byte(codes[i+1]&0xf)<<4
			o++
		}
		if n%2 != 0 {
			dst[o] = byte(codes[n-1] & 0xf)
		}
	case 2:
		o := 0
		i := 0
		for ; i+4 <= n; i += 4 {
			dst[o] = byte(codes[i]&3) | byte(codes[i+1]&3)<<2 |
				byte(codes[i+2]&3)<<4 | byte(codes[i+3]&3)<<6
			o++
		}
		if i < n {
			var b byte
			for s := 0; i < n; i, s = i+1, s+2 {
				b |= byte(codes[i]&3) << s
			}
			dst[o] = b
		}
	case 1:
		o := 0
		i := 0
		for ; i+8 <= n; i += 8 {
			dst[o] = byte(codes[i]&1) | byte(codes[i+1]&1)<<1 |
				byte(codes[i+2]&1)<<2 | byte(codes[i+3]&1)<<3 |
				byte(codes[i+4]&1)<<4 | byte(codes[i+5]&1)<<5 |
				byte(codes[i+6]&1)<<6 | byte(codes[i+7]&1)<<7
			o++
		}
		if i < n {
			var b byte
			for s := 0; i < n; i, s = i+1, s+1 {
				b |= byte(codes[i]&1) << s
			}
			dst[o] = b
		}
	default:
		packAccum(dst, codes, uint(bits))
	}
}

// packAccum is the general path for widths that straddle byte boundaries
// (3, 5, 6, 7 bits): shift each code into a 64-bit accumulator and retire
// full bytes. The accumulator never exceeds 15 live bits (7 carried + 8
// incoming), so it cannot overflow.
func packAccum(dst []byte, codes []uint32, bits uint) {
	mask := uint32(1)<<bits - 1
	var acc uint64
	var na uint // live bits in acc
	o := 0
	for _, c := range codes {
		acc |= uint64(c&mask) << na
		na += bits
		for na >= 8 {
			dst[o] = byte(acc)
			o++
			acc >>= 8
			na -= 8
		}
	}
	if na > 0 {
		dst[o] = byte(acc)
	}
}

// UnpackCodes reverses PackCodes: it reads len(dst) codes of the given
// width from src, which must hold at least PackedLen(len(dst), bits)
// bytes. bits must be in [1, 8].
func UnpackCodes(dst []uint32, src []byte, bits int) {
	n := len(dst)
	switch bits {
	case 8:
		for i := range dst {
			dst[i] = uint32(src[i])
		}
	case 4:
		o := 0
		for i := 0; i+2 <= n; i += 2 {
			b := src[o]
			o++
			dst[i] = uint32(b & 0xf)
			dst[i+1] = uint32(b >> 4)
		}
		if n%2 != 0 {
			dst[n-1] = uint32(src[o] & 0xf)
		}
	case 2:
		o := 0
		i := 0
		for ; i+4 <= n; i += 4 {
			b := src[o]
			o++
			dst[i] = uint32(b & 3)
			dst[i+1] = uint32(b >> 2 & 3)
			dst[i+2] = uint32(b >> 4 & 3)
			dst[i+3] = uint32(b >> 6)
		}
		for s := 0; i < n; i, s = i+1, s+2 {
			dst[i] = uint32(src[o] >> s & 3)
		}
	case 1:
		o := 0
		i := 0
		for ; i+8 <= n; i += 8 {
			b := src[o]
			o++
			dst[i] = uint32(b & 1)
			dst[i+1] = uint32(b >> 1 & 1)
			dst[i+2] = uint32(b >> 2 & 1)
			dst[i+3] = uint32(b >> 3 & 1)
			dst[i+4] = uint32(b >> 4 & 1)
			dst[i+5] = uint32(b >> 5 & 1)
			dst[i+6] = uint32(b >> 6 & 1)
			dst[i+7] = uint32(b >> 7)
		}
		for s := 0; i < n; i, s = i+1, s+1 {
			dst[i] = uint32(src[o] >> s & 1)
		}
	default:
		unpackAccum(dst, src, uint(bits))
	}
}

// unpackAccum is the general unpack path: refill the 64-bit accumulator a
// byte at a time and peel codes off the bottom.
func unpackAccum(dst []uint32, src []byte, bits uint) {
	mask := uint64(1)<<bits - 1
	var acc uint64
	var na uint
	o := 0
	for i := range dst {
		for na < bits {
			acc |= uint64(src[o]) << na
			o++
			na += 8
		}
		dst[i] = uint32(acc & mask)
		acc >>= bits
		na -= bits
	}
}

// rawPutF32 stores fp32 values verbatim, little-endian — the MethodNone
// fast path. dst must hold 4*len(x) bytes.
func rawPutF32(dst []byte, x []float32) {
	for i, v := range x {
		binary.LittleEndian.PutUint32(dst[i*4:], f32b(v))
	}
}

// rawGetF32 loads fp32 values stored by rawPutF32. src must hold
// 4*len(dst) bytes.
func rawGetF32(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = f32fb(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

// Scratch holds reusable staging buffers so the QuantizeInto /
// DequantizeInto hot path performs zero allocations in steady state.
// A Scratch is owned by one goroutine; the engine's encoder and decoder
// workers each carry their own.
type Scratch struct {
	codes []uint32
}

// codeBuf returns an n-element code staging buffer, growing the backing
// array only when the requested size exceeds anything seen before.
func (s *Scratch) codeBuf(n int) []uint32 {
	if cap(s.codes) < n {
		s.codes = make([]uint32, n)
	}
	return s.codes[:n]
}

// ensureBytes returns b resized to n bytes, reusing its backing array
// when capacity allows.
func ensureBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// ensureF32 is ensureBytes for float32 slices.
func ensureF32(b []float32, n int) []float32 {
	if cap(b) < n {
		return make([]float32, n)
	}
	return b[:n]
}
