package quant

import "encoding/binary"

// Word-wise bit packing.
//
// Codes are packed LSB-first: the value at logical index i occupies
// absolute bit positions [i*bits, (i+1)*bits), bit b of the value landing
// at absolute position i*bits+b, where absolute bit p lives in byte p/8
// at in-byte position p%8. This is exactly the layout the original
// bit-at-a-time packer produced, so packed streams are interchangeable
// across implementations — the golden-bytes tests in internal/wire pin it.
//
// The implementation is a 64-bit accumulator that shifts whole codes in
// and retires full bytes, with dedicated unrolled paths for the power-of-
// two widths (1, 2, 4, 8 bits) where codes align to byte boundaries.
// fp32 (MethodNone) rows never come through here; they use direct
// little-endian 4-byte loads and stores.

// PackedLen returns the byte length of n packed codes of the given width.
func PackedLen(n, bits int) int {
	return (n*bits + 7) / 8
}

// packedLen is the historical internal spelling.
func packedLen(n, bits int) int { return PackedLen(n, bits) }

// PackCodes packs codes (each truncated to the low `bits` bits) into dst,
// which must hold at least PackedLen(len(codes), bits) bytes. Every byte
// of the packed region is overwritten; dst does not need to be zeroed.
// bits must be in [1, 8].
func PackCodes(dst []byte, codes []uint32, bits int) {
	n := len(codes)
	switch bits {
	case 8:
		for i, c := range codes {
			dst[i] = byte(c)
		}
	case 4:
		o := 0
		for i := 0; i+2 <= n; i += 2 {
			dst[o] = byte(codes[i]&0xf) | byte(codes[i+1]&0xf)<<4
			o++
		}
		if n%2 != 0 {
			dst[o] = byte(codes[n-1] & 0xf)
		}
	case 2:
		o := 0
		i := 0
		for ; i+4 <= n; i += 4 {
			dst[o] = byte(codes[i]&3) | byte(codes[i+1]&3)<<2 |
				byte(codes[i+2]&3)<<4 | byte(codes[i+3]&3)<<6
			o++
		}
		if i < n {
			var b byte
			for s := 0; i < n; i, s = i+1, s+2 {
				b |= byte(codes[i]&3) << s
			}
			dst[o] = b
		}
	case 1:
		o := 0
		i := 0
		for ; i+8 <= n; i += 8 {
			dst[o] = byte(codes[i]&1) | byte(codes[i+1]&1)<<1 |
				byte(codes[i+2]&1)<<2 | byte(codes[i+3]&1)<<3 |
				byte(codes[i+4]&1)<<4 | byte(codes[i+5]&1)<<5 |
				byte(codes[i+6]&1)<<6 | byte(codes[i+7]&1)<<7
			o++
		}
		if i < n {
			var b byte
			for s := 0; i < n; i, s = i+1, s+1 {
				b |= byte(codes[i]&1) << s
			}
			dst[o] = b
		}
	default:
		packAccum(dst, codes, uint(bits))
	}
}

// packAccum is the general path for widths that straddle byte boundaries
// (3, 5, 6, 7 bits): shift each code into a 64-bit accumulator and retire
// full bytes. The accumulator never exceeds 15 live bits (7 carried + 8
// incoming), so it cannot overflow.
func packAccum(dst []byte, codes []uint32, bits uint) {
	mask := uint32(1)<<bits - 1
	var acc uint64
	var na uint // live bits in acc
	o := 0
	for _, c := range codes {
		acc |= uint64(c&mask) << na
		na += bits
		for na >= 8 {
			dst[o] = byte(acc)
			o++
			acc >>= 8
			na -= 8
		}
	}
	if na > 0 {
		dst[o] = byte(acc)
	}
}

// UnpackCodes reverses PackCodes: it reads len(dst) codes of the given
// width from src, which must hold at least PackedLen(len(dst), bits)
// bytes. bits must be in [1, 8].
func UnpackCodes(dst []uint32, src []byte, bits int) {
	n := len(dst)
	switch bits {
	case 8:
		for i := range dst {
			dst[i] = uint32(src[i])
		}
	case 4:
		o := 0
		for i := 0; i+2 <= n; i += 2 {
			b := src[o]
			o++
			dst[i] = uint32(b & 0xf)
			dst[i+1] = uint32(b >> 4)
		}
		if n%2 != 0 {
			dst[n-1] = uint32(src[o] & 0xf)
		}
	case 2:
		o := 0
		i := 0
		for ; i+4 <= n; i += 4 {
			b := src[o]
			o++
			dst[i] = uint32(b & 3)
			dst[i+1] = uint32(b >> 2 & 3)
			dst[i+2] = uint32(b >> 4 & 3)
			dst[i+3] = uint32(b >> 6)
		}
		for s := 0; i < n; i, s = i+1, s+2 {
			dst[i] = uint32(src[o] >> s & 3)
		}
	case 1:
		o := 0
		i := 0
		for ; i+8 <= n; i += 8 {
			b := src[o]
			o++
			dst[i] = uint32(b & 1)
			dst[i+1] = uint32(b >> 1 & 1)
			dst[i+2] = uint32(b >> 2 & 1)
			dst[i+3] = uint32(b >> 3 & 1)
			dst[i+4] = uint32(b >> 4 & 1)
			dst[i+5] = uint32(b >> 5 & 1)
			dst[i+6] = uint32(b >> 6 & 1)
			dst[i+7] = uint32(b >> 7)
		}
		for s := 0; i < n; i, s = i+1, s+1 {
			dst[i] = uint32(src[o] >> s & 1)
		}
	default:
		unpackAccum(dst, src, uint(bits))
	}
}

// unpackAccum is the general unpack path: refill the 64-bit accumulator a
// byte at a time and peel codes off the bottom.
func unpackAccum(dst []uint32, src []byte, bits uint) {
	mask := uint64(1)<<bits - 1
	var acc uint64
	var na uint
	o := 0
	for i := range dst {
		for na < bits {
			acc |= uint64(src[o]) << na
			o++
			na += 8
		}
		dst[i] = uint32(acc & mask)
		acc >>= bits
		na -= bits
	}
}

// rawPutF32 stores fp32 values verbatim, little-endian — the MethodNone
// fast path. dst must hold 4*len(x) bytes.
func rawPutF32(dst []byte, x []float32) {
	for i, v := range x {
		binary.LittleEndian.PutUint32(dst[i*4:], f32b(v))
	}
}

// rawGetF32 loads fp32 values stored by rawPutF32. src must hold
// 4*len(dst) bytes.
func rawGetF32(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = f32fb(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

// Scratch holds reusable staging buffers so the QuantizeInto /
// DequantizeInto hot path performs zero allocations in steady state.
// A Scratch is owned by one goroutine; the engine's encoder and decoder
// workers each carry their own.
type Scratch struct {
	codes []uint32

	// Adaptive chunk-sampling state, armed by BeginAdaptiveChunk and
	// consumed by QuantizeCachedInto: cand holds the (u, d) step-lattice
	// coordinates harvested from sampled rows' exact searches, chunkRow
	// counts searched rows within the current chunk, and candNext is the
	// ring overwrite cursor once cand is full.
	sampleEvery int
	chunkRow    int
	candNext    int
	cand        [][2]int32
}

// maxAdaptiveCandidates bounds a chunk's harvested candidate list; older
// candidates are overwritten ring-style, keeping the per-row evaluation
// cost flat for pathological chunks whose sampled rows all disagree.
const maxAdaptiveCandidates = 8

// BeginAdaptiveChunk arms s's adaptive chunk-sampled search: until the
// next call, QuantizeCachedInto runs the exact greedy range search only
// on every sampleEvery-th row it actually computes (cache hits don't
// count) and serves the rows in between from the harvested candidate
// ranges. sampleEvery <= 1 disarms sampling (every row searches exactly).
// Call at each chunk boundary: candidates never leak across chunks, so
// a chunk's encoded bytes depend only on its own rows (plus any caller-
// provided cross-checkpoint RowRange cache), keeping parallel chunk
// encoding deterministic.
func (s *Scratch) BeginAdaptiveChunk(sampleEvery int) {
	s.sampleEvery = sampleEvery
	s.chunkRow = 0
	s.candNext = 0
	s.cand = s.cand[:0]
}

// ChunkSearches reports how many rows of the current chunk went through
// a range computation (exact or candidate-based) rather than a RowRange
// cache hit — observability for tests asserting the steady-state path.
func (s *Scratch) ChunkSearches() int { return s.chunkRow }

// noteCandidate records a sampled row's best (u, d) step coordinates,
// deduplicating and ring-overwriting past maxAdaptiveCandidates. (0, 0)
// is not recorded: the full range is always evaluated anyway.
func (s *Scratch) noteCandidate(u, d int) {
	if u == 0 && d == 0 {
		return
	}
	c := [2]int32{int32(u), int32(d)}
	for _, have := range s.cand {
		if have == c {
			return
		}
	}
	if len(s.cand) < maxAdaptiveCandidates {
		s.cand = append(s.cand, c)
		return
	}
	s.cand[s.candNext] = c
	s.candNext = (s.candNext + 1) % maxAdaptiveCandidates
}

// codeBuf returns an n-element code staging buffer, growing the backing
// array only when the requested size exceeds anything seen before.
func (s *Scratch) codeBuf(n int) []uint32 {
	if cap(s.codes) < n {
		s.codes = make([]uint32, n)
	}
	return s.codes[:n]
}

// ensureBytes returns b resized to n bytes, reusing its backing array
// when capacity allows.
func ensureBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// ensureF32 is ensureBytes for float32 slices.
func ensureF32(b []float32, n int) []float32 {
	if cap(b) < n {
		return make([]float32, n)
	}
	return b[:n]
}
