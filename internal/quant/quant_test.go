package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// trainedLikeVector produces an embedding-like vector: mostly small values
// around zero with occasional larger outliers, the distribution that makes
// adaptive asymmetric quantization pay off.
func trainedLikeVector(rng *rand.Rand, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64() * 0.05)
		if rng.Float64() < 0.03 {
			x[i] = float32(rng.NormFloat64() * 0.5) // outlier
		}
	}
	return x
}

func testVectors(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		out[i] = trainedLikeVector(rng, dim)
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Method: Method(99), Bits: 4},
		{Method: MethodAsymmetric, Bits: 0},
		{Method: MethodAsymmetric, Bits: 9},
		{Method: MethodAdaptive, Bits: 4, NumBins: 0, Ratio: 1},
		{Method: MethodAdaptive, Bits: 4, NumBins: 10, Ratio: 0},
		{Method: MethodAdaptive, Bits: 4, NumBins: 10, Ratio: 1.5},
		{Method: MethodKMeans, Bits: 4, KMeansIters: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error", i, p)
		}
	}
	good := []Params{
		{Method: MethodNone},
		{Method: MethodSymmetric, Bits: 2},
		{Method: MethodAsymmetric, Bits: 8},
		{Method: MethodAdaptive, Bits: 4, NumBins: 25, Ratio: 1},
		{Method: MethodKMeans, Bits: 3, KMeansIters: 15},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("case %d (%+v): unexpected error %v", i, p, err)
		}
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{MethodNone, MethodSymmetric, MethodAsymmetric, MethodKMeans, MethodAdaptive, Method(42)} {
		if m.String() == "" {
			t.Fatalf("empty name for %d", m)
		}
	}
}

func TestQuantizeEmptyVector(t *testing.T) {
	if _, err := Quantize(nil, Params{Method: MethodAsymmetric, Bits: 4}); err == nil {
		t.Fatal("empty vector should error")
	}
}

func TestNoneRoundTripExact(t *testing.T) {
	x := trainedLikeVector(rand.New(rand.NewSource(1)), 64)
	q, err := Quantize(x, Params{Method: MethodNone})
	if err != nil {
		t.Fatal(err)
	}
	rec := Dequantize(q)
	for i := range x {
		if rec[i] != x[i] {
			t.Fatalf("element %d: %v != %v", i, rec[i], x[i])
		}
	}
}

func TestUniformQuantBounds(t *testing.T) {
	// Reconstruction error per element is at most scale/2 for in-range
	// values under asymmetric quantization.
	x := trainedLikeVector(rand.New(rand.NewSource(2)), 64)
	for _, bits := range []int{2, 3, 4, 8} {
		q, err := Quantize(x, Params{Method: MethodAsymmetric, Bits: bits})
		if err != nil {
			t.Fatal(err)
		}
		rec := Dequantize(q)
		scale := (float64(q.Hi) - float64(q.Lo)) / float64(int(1)<<uint(bits)-1)
		for i := range x {
			if d := math.Abs(float64(x[i]) - float64(rec[i])); d > scale/2+1e-6 {
				t.Fatalf("bits=%d element %d err %v > scale/2 %v", bits, i, d, scale/2)
			}
		}
	}
}

func TestConstantVector(t *testing.T) {
	x := make([]float32, 16)
	for i := range x {
		x[i] = 3.5
	}
	for _, m := range []Method{MethodSymmetric, MethodAsymmetric} {
		q, err := Quantize(x, Params{Method: m, Bits: 4})
		if err != nil {
			t.Fatal(err)
		}
		rec := Dequantize(q)
		for i := range rec {
			if math.Abs(float64(rec[i]-3.5)) > 1e-6 && m == MethodAsymmetric {
				t.Fatalf("%v: constant vector rec[%d] = %v", m, i, rec[i])
			}
		}
	}
}

func TestAsymmetricBeatsSymmetric(t *testing.T) {
	// Figure 9: embedding elements are not symmetrically distributed, so
	// asymmetric consistently wins. Build skewed vectors.
	rng := rand.New(rand.NewSource(3))
	vectors := make([][]float32, 200)
	for i := range vectors {
		v := make([]float32, 64)
		for j := range v {
			v[j] = float32(rng.Float64()*0.2 + 0.1) // all positive: worst case for symmetric
		}
		vectors[i] = v
	}
	for _, bits := range []int{2, 3, 4, 8} {
		sym, err := MeanL2Error(vectors, Params{Method: MethodSymmetric, Bits: bits})
		if err != nil {
			t.Fatal(err)
		}
		asym, err := MeanL2Error(vectors, Params{Method: MethodAsymmetric, Bits: bits})
		if err != nil {
			t.Fatal(err)
		}
		if asym >= sym {
			t.Fatalf("bits=%d: asymmetric %v should beat symmetric %v", bits, asym, sym)
		}
	}
}

func TestAdaptiveBeatsNaiveOnOutliers(t *testing.T) {
	// §5.2 Approach 3's motivation: an outlier inflates the naive range.
	vectors := testVectors(100, 64, 4)
	for _, bits := range []int{2, 3, 4} {
		imp, err := ImprovementOverNaive(vectors, bits, 25, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if imp <= 0 {
			t.Fatalf("bits=%d: adaptive should improve over naive, got %v", bits, imp)
		}
	}
}

func TestAdaptiveImprovementLargerAtLowerBits(t *testing.T) {
	// Figure 11: lower bit-widths gain more from the adaptive range.
	vectors := testVectors(100, 64, 5)
	imp2, err := ImprovementOverNaive(vectors, 2, 25, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	imp8, err := ImprovementOverNaive(vectors, 8, 25, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if imp2 <= imp8 {
		t.Fatalf("2-bit improvement %v should exceed 8-bit %v", imp2, imp8)
	}
}

func TestAdaptiveNeverWorseThanNaive(t *testing.T) {
	// The greedy search keeps the best range seen, which includes the
	// original range, so adaptive <= naive always.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := trainedLikeVector(rng, 32)
		naive, err := L2Error(x, Params{Method: MethodAsymmetric, Bits: 4})
		if err != nil {
			return false
		}
		adaptive, err := L2Error(x, Params{Method: MethodAdaptive, Bits: 4, NumBins: 20, Ratio: 1})
		if err != nil {
			return false
		}
		return adaptive <= naive+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreBitsLowerError(t *testing.T) {
	vectors := testVectors(50, 64, 6)
	var prev float64 = math.Inf(1)
	for _, bits := range []int{2, 3, 4, 8} {
		e, err := MeanL2Error(vectors, Params{Method: MethodAsymmetric, Bits: bits})
		if err != nil {
			t.Fatal(err)
		}
		if e >= prev {
			t.Fatalf("bits=%d error %v did not decrease from %v", bits, e, prev)
		}
		prev = e
	}
}

func TestKMeansCompetitiveWithAdaptive(t *testing.T) {
	// Figure 9: k-means is at or below asymmetric error (modulo init
	// randomness at 4 bits). Check it beats naive asymmetric on average.
	vectors := testVectors(60, 64, 7)
	for _, bits := range []int{3, 4} {
		km, err := MeanL2Error(vectors, Params{Method: MethodKMeans, Bits: bits, KMeansIters: 15})
		if err != nil {
			t.Fatal(err)
		}
		asym, err := MeanL2Error(vectors, Params{Method: MethodAsymmetric, Bits: bits})
		if err != nil {
			t.Fatal(err)
		}
		if km >= asym {
			t.Fatalf("bits=%d: k-means %v should beat naive asymmetric %v", bits, km, asym)
		}
	}
}

func TestKMeansConstantVector(t *testing.T) {
	x := make([]float32, 16)
	for i := range x {
		x[i] = -2
	}
	q, err := Quantize(x, Params{Method: MethodKMeans, Bits: 2, KMeansIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := Dequantize(q)
	for i := range rec {
		if rec[i] != -2 {
			t.Fatalf("rec[%d] = %v, want -2", i, rec[i])
		}
	}
}

func TestKMeansFewerElementsThanClusters(t *testing.T) {
	x := []float32{1, 2}
	q, err := Quantize(x, Params{Method: MethodKMeans, Bits: 4, KMeansIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := Dequantize(q)
	if math.Abs(float64(rec[0]-1)) > 1e-5 || math.Abs(float64(rec[1]-2)) > 1e-5 {
		t.Fatalf("rec = %v, want [1 2]", rec)
	}
}

func TestPackedCodesCompression(t *testing.T) {
	// 4-bit codes on dim-64 vectors: 32 bytes codes + 8 bytes metadata =
	// 40 bytes vs 256 fp32 bytes -> 6.4x. Verify StorageBytes accounting.
	x := trainedLikeVector(rand.New(rand.NewSource(8)), 64)
	q, err := Quantize(x, Params{Method: MethodAsymmetric, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.StorageBytes(); got != 32+8 {
		t.Fatalf("StorageBytes = %d, want 40", got)
	}
	q2, err := Quantize(x, Params{Method: MethodKMeans, Bits: 2, KMeansIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.StorageBytes(); got != 16+16 {
		t.Fatalf("kmeans StorageBytes = %d, want 32", got)
	}
}

// Bit-pack round-trip and differential tests live in pack_test.go.

func TestQVectorMarshalRoundTrip(t *testing.T) {
	x := trainedLikeVector(rand.New(rand.NewSource(9)), 48)
	for _, p := range []Params{
		{Method: MethodNone},
		{Method: MethodSymmetric, Bits: 2},
		{Method: MethodAsymmetric, Bits: 4},
		{Method: MethodAdaptive, Bits: 3, NumBins: 10, Ratio: 0.8},
		{Method: MethodKMeans, Bits: 4, KMeansIters: 5},
	} {
		q, err := Quantize(x, p)
		if err != nil {
			t.Fatalf("%v: %v", p.Method, err)
		}
		blob, err := q.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: marshal: %v", p.Method, err)
		}
		var q2 QVector
		if err := q2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%v: unmarshal: %v", p.Method, err)
		}
		a, b := Dequantize(q), Dequantize(&q2)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: element %d differs after round trip", p.Method, i)
			}
		}
	}
}

func TestQVectorUnmarshalErrors(t *testing.T) {
	var q QVector
	if err := q.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil should error")
	}
	if err := q.UnmarshalBinary(make([]byte, 5)); err == nil {
		t.Fatal("short should error")
	}
	// Valid header but truncated codes.
	x := []float32{1, 2, 3, 4}
	good, _ := Quantize(x, Params{Method: MethodAsymmetric, Bits: 4})
	blob, _ := good.MarshalBinary()
	if err := q.UnmarshalBinary(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated codes should error")
	}
	// Invalid bits value.
	blob2 := append([]byte(nil), blob...)
	blob2[0] = 13
	if err := q.UnmarshalBinary(blob2); err == nil {
		t.Fatal("invalid bits should error")
	}
}

func TestSampleVectors(t *testing.T) {
	vectors := testVectors(1000, 8, 10)
	s := SampleVectors(vectors, 0.01, 5, 1)
	if len(s) != 10 {
		t.Fatalf("sample size = %d, want 10", len(s))
	}
	s2 := SampleVectors(vectors, 0, 32, 1)
	if len(s2) != 32 {
		t.Fatalf("minimum not honored: %d", len(s2))
	}
	s3 := SampleVectors(vectors, 2.0, 5, 1)
	if len(s3) != len(vectors) {
		t.Fatal("oversample should return all")
	}
	// Determinism.
	a := SampleVectors(vectors, 0.01, 5, 42)
	b := SampleVectors(vectors, 0.01, 5, 42)
	for i := range a {
		if &a[i][0] != &b[i][0] {
			t.Fatal("same seed should sample same vectors")
		}
	}
}

func TestSelectAdaptiveParams(t *testing.T) {
	vectors := testVectors(300, 64, 11)
	p, err := SelectAdaptiveParams(vectors, 3, []int{5, 10, 25, 45}, 1.0, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != MethodAdaptive || p.Bits != 3 {
		t.Fatalf("selected %+v", p)
	}
	found := false
	for _, b := range []int{5, 10, 25, 45} {
		if p.NumBins == b {
			found = true
		}
	}
	if !found {
		t.Fatalf("NumBins %d not among candidates", p.NumBins)
	}
	if _, err := SelectAdaptiveParams(vectors, 3, nil, 1, 0.01, 1); err == nil {
		t.Fatal("no candidates should error")
	}
}

func TestMeanL2ErrorEmpty(t *testing.T) {
	if _, err := MeanL2Error(nil, Params{Method: MethodAsymmetric, Bits: 4}); err == nil {
		t.Fatal("empty vectors should error")
	}
}

func TestQuickDequantWithinRange(t *testing.T) {
	// All dequantized values lie within [Lo, Hi] for uniform methods.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := trainedLikeVector(rng, 16)
		q, err := Quantize(x, Params{Method: MethodAsymmetric, Bits: 3})
		if err != nil {
			return false
		}
		for _, v := range Dequantize(q) {
			if v < q.Lo-1e-5 || v > q.Hi+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAsymmetric4Bit(b *testing.B) {
	x := trainedLikeVector(rand.New(rand.NewSource(1)), 64)
	p := Params{Method: MethodAsymmetric, Bits: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Quantize(x, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptive4Bit25Bins(b *testing.B) {
	x := trainedLikeVector(rand.New(rand.NewSource(1)), 64)
	p := Params{Method: MethodAdaptive, Bits: 4, NumBins: 25, Ratio: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Quantize(x, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans4Bit(b *testing.B) {
	x := trainedLikeVector(rand.New(rand.NewSource(1)), 64)
	p := Params{Method: MethodKMeans, Bits: 4, KMeansIters: 15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Quantize(x, p); err != nil {
			b.Fatal(err)
		}
	}
}
