// Package quant implements Check-N-Run's checkpoint quantization (§5.2):
// per-embedding-vector uniform quantization (symmetric and asymmetric),
// non-uniform k-means quantization, and the adaptive asymmetric greedy
// search that the production system uses for bit-widths of 4 and below.
//
// Quantization applies only to checkpoints — training always runs in fp32 —
// so the quality metric is the mean ℓ2 error between original and
// de-quantized vectors, which the paper uses as a first-order proxy for
// the accuracy loss incurred when a job restores from the checkpoint.
package quant

import (
	"fmt"
	"math"
)

// Method identifies a quantization approach from §5.2.
type Method uint8

const (
	// MethodNone stores fp32 verbatim (the no-quantization baseline).
	MethodNone Method = iota
	// MethodSymmetric is uniform quantization with xmax = max|x|, xmin = -xmax.
	MethodSymmetric
	// MethodAsymmetric is uniform quantization with the vector's actual
	// min and max as the range ("naive asymmetric").
	MethodAsymmetric
	// MethodKMeans is non-uniform quantization via k-means clustering of
	// the vector's elements into 2^bits centroids.
	MethodKMeans
	// MethodAdaptive is adaptive asymmetric quantization: a greedy search
	// shrinks [xmin, xmax] to minimize ℓ2 error before uniform quantizing.
	MethodAdaptive
)

// String returns the method name used in figures and logs.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "none"
	case MethodSymmetric:
		return "symmetric"
	case MethodAsymmetric:
		return "asymmetric"
	case MethodKMeans:
		return "k-means"
	case MethodAdaptive:
		return "adaptive-asymmetric"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// Params configures a quantizer.
type Params struct {
	Method Method
	// Bits is the code width; the paper evaluates 2, 3, 4 and 8.
	Bits int
	// NumBins is the adaptive greedy search's step granularity
	// (step_size = range / NumBins). Paper sweeps 5..50; optimum 25 for
	// 2-3 bits, 45 for 4 bits (Figure 10).
	NumBins int
	// Ratio bounds how much of the original range the greedy search may
	// remove: it iterates while the removed span < Ratio*range. 1.0
	// searches the full range (Figure 11).
	Ratio float64
	// KMeansIters is the Lloyd iteration count (paper uses 15).
	KMeansIters int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch p.Method {
	case MethodNone:
		return nil
	case MethodSymmetric, MethodAsymmetric, MethodKMeans, MethodAdaptive:
	default:
		return fmt.Errorf("quant: unknown method %d", p.Method)
	}
	if p.Bits < 1 || p.Bits > 8 {
		return fmt.Errorf("quant: bits must be in [1,8], got %d", p.Bits)
	}
	if p.Method == MethodAdaptive {
		if p.NumBins < 1 {
			return fmt.Errorf("quant: adaptive needs NumBins >= 1, got %d", p.NumBins)
		}
		if p.Ratio <= 0 || p.Ratio > 1 {
			return fmt.Errorf("quant: adaptive Ratio must be in (0,1], got %v", p.Ratio)
		}
	}
	if p.Method == MethodKMeans && p.KMeansIters < 1 {
		return fmt.Errorf("quant: k-means needs iters >= 1, got %d", p.KMeansIters)
	}
	return nil
}

// QVector is one quantized embedding vector: packed integer codes plus the
// de-quantization parameters. For uniform methods Lo/Hi are the clip range
// (zero_point = Lo, scale derived); for k-means, Codebook holds the
// centroids and Lo/Hi are unused.
type QVector struct {
	Bits     int
	N        int // original element count
	Lo, Hi   float32
	Codes    []byte    // bit-packed, ceil(N*Bits/8) bytes
	Codebook []float32 // k-means only, len 2^Bits
}

// StorageBytes returns the serialized footprint: packed codes plus
// per-vector metadata (range parameters or codebook). This is what the
// capacity/bandwidth accounting charges per row.
func (q *QVector) StorageBytes() int {
	meta := 8 // Lo+Hi as fp32
	if q.Codebook != nil {
		meta = 4 * len(q.Codebook)
	}
	return len(q.Codes) + meta
}

// Quantize quantizes one embedding vector with the given parameters.
// MethodNone returns a QVector that round-trips exactly (codes hold raw
// fp32); callers normally special-case it before reaching here.
//
// Quantize allocates a fresh QVector per call. The engine's hot path
// uses QuantizeInto with a reused QVector and Scratch instead.
func Quantize(x []float32, p Params) (*QVector, error) {
	q := new(QVector)
	if err := QuantizeInto(q, x, p, nil); err != nil {
		return nil, err
	}
	return q, nil
}

// QuantizeInto quantizes x into q, reusing q's Codes (and Codebook)
// backing arrays and the staging buffers in s. It performs zero
// allocations in steady state for the uniform methods and MethodNone —
// the chunk-encode hot path. s may be nil, in which case staging buffers
// are allocated per call. q is fully overwritten; stale fields from a
// previous use never leak into the result.
func QuantizeInto(q *QVector, x []float32, p Params, s *Scratch) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(x) == 0 {
		return fmt.Errorf("quant: empty vector")
	}
	if s == nil {
		s = &Scratch{}
	}
	switch p.Method {
	case MethodNone:
		quantizeNoneInto(q, x)
		return nil
	case MethodSymmetric:
		lo, hi := symmetricRange(x)
		quantizeUniformInto(q, x, p.Bits, lo, hi, s)
		return nil
	case MethodAsymmetric:
		lo, hi := minMax(x)
		quantizeUniformInto(q, x, p.Bits, lo, hi, s)
		return nil
	case MethodAdaptive:
		lo, hi := adaptiveRange(x, p.Bits, p.NumBins, p.Ratio)
		quantizeUniformInto(q, x, p.Bits, lo, hi, s)
		return nil
	case MethodKMeans:
		quantizeKMeansInto(q, x, p.Bits, p.KMeansIters)
		return nil
	}
	panic("unreachable")
}

// Dequantize reconstructs the fp32 vector from q, allocating the result.
func Dequantize(q *QVector) []float32 {
	out := make([]float32, q.N)
	if err := DequantizeInto(out, q, nil); err != nil {
		panic(fmt.Sprintf("quant: Dequantize on malformed QVector: %v", err))
	}
	return out
}

// DequantizeInto reconstructs q into dst, which must have exactly q.N
// elements. It performs zero allocations in steady state when given a
// reusable Scratch — restore workers dequantize straight into the
// embedding table's row storage. s may be nil (staging is then
// allocated per call; the fp32 and 8-bit paths never need staging).
func DequantizeInto(dst []float32, q *QVector, s *Scratch) error {
	if len(dst) != q.N {
		return fmt.Errorf("quant: dequantize into %d elements, vector has %d", len(dst), q.N)
	}
	if q.Bits == 32 { // MethodNone raw storage
		if len(q.Codes) < 4*q.N {
			return fmt.Errorf("quant: raw codes %d bytes, want %d", len(q.Codes), 4*q.N)
		}
		rawGetF32(dst, q.Codes)
		return nil
	}
	if q.Bits < 1 || q.Bits > 8 {
		return fmt.Errorf("quant: invalid bits %d", q.Bits)
	}
	if len(q.Codes) < PackedLen(q.N, q.Bits) {
		return fmt.Errorf("quant: codes %d bytes, want %d", len(q.Codes), PackedLen(q.N, q.Bits))
	}
	if s == nil {
		s = &Scratch{}
	}
	codes := s.codeBuf(q.N)
	UnpackCodes(codes, q.Codes, q.Bits)
	if q.Codebook != nil {
		cb := q.Codebook
		for i, c := range codes {
			if int(c) >= len(cb) {
				return fmt.Errorf("quant: code %d exceeds codebook of %d", c, len(cb))
			}
			dst[i] = cb[c]
		}
		return nil
	}
	scale, zero := scaleZero(q.Lo, q.Hi, q.Bits)
	for i, c := range codes {
		dst[i] = scale*float32(c) + zero
	}
	return nil
}

// quantizeNoneInto stores raw fp32 bits so the round trip is exact,
// using direct 4-byte little-endian stores.
func quantizeNoneInto(q *QVector, x []float32) {
	q.Bits = 32
	q.N = len(x)
	q.Lo, q.Hi = 0, 0
	q.Codebook = nil
	q.Codes = ensureBytes(q.Codes, len(x)*4)
	rawPutF32(q.Codes, x)
}

// symmetricRange returns [-m, m] where m = max|x|.
func symmetricRange(x []float32) (lo, hi float32) {
	var m float32
	for _, v := range x {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return -m, m
}

// minMax returns the actual element range.
func minMax(x []float32) (lo, hi float32) {
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// scaleZero computes the uniform quantization parameters of §5.2:
// scale = (xmax-xmin)/(2^N - 1), zero_point = xmin.
func scaleZero(lo, hi float32, bits int) (scale, zero float32) {
	levels := float32(int(1)<<uint(bits) - 1)
	if levels <= 0 {
		return 0, lo
	}
	return (hi - lo) / levels, lo
}

// quantizeUniformInto maps x into [0, 2^bits-1] codes over [lo, hi],
// clipping out-of-range elements (which is what makes the adaptive
// range-shrinking search meaningful). Codes are staged unpacked in s and
// packed word-wise in one pass.
func quantizeUniformInto(q *QVector, x []float32, bits int, lo, hi float32, s *Scratch) {
	q.Bits = bits
	q.N = len(x)
	q.Lo = lo
	q.Hi = hi
	q.Codebook = nil
	q.Codes = ensureBytes(q.Codes, PackedLen(len(x), bits))
	codes := s.codeBuf(len(x))
	scale, zero := scaleZero(lo, hi, bits)
	maxCode := uint32(1)<<uint(bits) - 1
	for i, v := range x {
		var code uint32
		if scale > 0 {
			c := float64(v-zero) / float64(scale)
			r := int64(math.Round(c))
			if r < 0 {
				r = 0
			}
			if r > int64(maxCode) {
				r = int64(maxCode)
			}
			code = uint32(r)
		}
		codes[i] = code
	}
	PackCodes(q.Codes, codes, bits)
}

// uniformL2 computes the squared reconstruction error of uniform
// quantization over [lo, hi] without materializing codes — the inner loop
// of the adaptive greedy search.
func uniformL2(x []float32, bits int, lo, hi float32) float64 {
	scale, zero := scaleZero(lo, hi, bits)
	maxCode := float64(int(1)<<uint(bits) - 1)
	var sum float64
	for _, v := range x {
		var rec float64
		if scale > 0 {
			c := math.Round(float64(v-zero) / float64(scale))
			if c < 0 {
				c = 0
			}
			if c > maxCode {
				c = maxCode
			}
			rec = float64(scale)*c + float64(zero)
		} else {
			rec = float64(zero)
		}
		d := float64(v) - rec
		sum += d * d
	}
	return sum
}

// adaptiveRange runs the paper's greedy search (§5.2 Approach 3): with
// step_size = range/numBins, each iteration tries shrinking either the
// bottom or the top of the range by one step, keeps whichever yields lower
// ℓ2 error, and stops once ratio*range has been removed. It returns the
// best range seen across all iterations.
func adaptiveRange(x []float32, bits, numBins int, ratio float64) (lo, hi float32) {
	origLo, origHi := minMax(x)
	lo, hi, _, _ = adaptiveRangeFrom(x, bits, numBins, ratio, origLo, origHi)
	return lo, hi
}

// adaptiveRangeFrom is the greedy search with the vector's min/max
// precomputed by the caller. Alongside the best range it reports how many
// bottom (u) and top (d) steps the best range sits from the full range —
// the coordinates QuantizeCachedInto harvests as per-chunk candidates.
// The best range is always a node of the step lattice reached by u
// repeated `lo += step` additions and d repeated `hi -= step`
// subtractions, so replaying those counts reproduces it bit-exactly.
func adaptiveRangeFrom(x []float32, bits, numBins int, ratio float64, origLo, origHi float32) (lo, hi float32, bestU, bestD int) {
	rangeF := float64(origHi - origLo)
	if rangeF <= 0 || numBins < 1 {
		return origLo, origHi, 0, 0
	}
	step := float32(rangeF / float64(numBins))
	bestLo, bestHi := origLo, origHi
	bestErr := uniformL2(x, bits, origLo, origHi)
	curLo, curHi := origLo, origHi
	curU, curD := 0, 0
	// Iterate while the removed span stays under ratio*range.
	for float64(origHi-origLo)-float64(curHi-curLo) < ratio*rangeF-1e-12 {
		upErr := uniformL2(x, bits, curLo+step, curHi)
		dnErr := uniformL2(x, bits, curLo, curHi-step)
		if upErr <= dnErr {
			curLo += step
			curU++
			if upErr < bestErr {
				bestErr, bestLo, bestHi = upErr, curLo, curHi
				bestU, bestD = curU, curD
			}
		} else {
			curHi -= step
			curD++
			if dnErr < bestErr {
				bestErr, bestLo, bestHi = dnErr, curLo, curHi
				bestU, bestD = curU, curD
			}
		}
		if curHi-curLo <= step {
			break
		}
	}
	return bestLo, bestHi, bestU, bestD
}

// RowRange caches the adaptive search's result for one embedding row
// across checkpoints. MnBits/MxBits are the fp32 bit patterns of the
// row's min and max when the range was computed: if neither moved since,
// the cached [Lo, Hi] is reused without re-running any search. For a row
// whose bytes are unchanged this reproduces the exact search's output
// bit-identically (the search is a deterministic function of the row);
// for a row whose interior changed under an identical min/max it is the
// deliberate approximation the engine opts into.
type RowRange struct {
	MnBits, MxBits uint32
	Lo, Hi         float32
	Valid          bool
}

// QuantizeCachedInto is QuantizeInto plus the engine's two adaptive-search
// shortcuts (non-adaptive methods are dispatched to QuantizeInto
// unchanged):
//
//  1. Cross-checkpoint reuse: if ent is valid and the row's min/max bit
//     patterns match, the cached range is reused and the search skipped.
//  2. Per-chunk candidate sampling: when the caller armed s with
//     BeginAdaptiveChunk, only every sampleEvery-th computed row runs the
//     full greedy search; the searched rows' best ranges are harvested as
//     (u, d) step-lattice candidates and the rows in between pick the
//     lowest-ℓ2 range among {full range} ∪ candidates. Candidate ranges
//     replay the harvested step counts with this row's own step size, so
//     a candidate that coincides with the row's true optimum is
//     bit-identical to what the exact search would have produced.
//
// ent is updated with the chosen range (and may be nil; with a nil ent
// and an unarmed s this is exactly the legacy per-row search).
func QuantizeCachedInto(q *QVector, x []float32, p Params, s *Scratch, ent *RowRange) error {
	if p.Method != MethodAdaptive {
		return QuantizeInto(q, x, p, s)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if len(x) == 0 {
		return fmt.Errorf("quant: empty vector")
	}
	if s == nil {
		s = &Scratch{}
	}
	mn, mx := minMax(x)
	if ent != nil && ent.Valid && ent.MnBits == f32b(mn) && ent.MxBits == f32b(mx) {
		quantizeUniformInto(q, x, p.Bits, ent.Lo, ent.Hi, s)
		return nil
	}
	lo, hi := adaptiveRangeChunk(x, p.Bits, p.NumBins, p.Ratio, s, mn, mx)
	if ent != nil {
		*ent = RowRange{MnBits: f32b(mn), MxBits: f32b(mx), Lo: lo, Hi: hi, Valid: true}
	}
	quantizeUniformInto(q, x, p.Bits, lo, hi, s)
	return nil
}

// adaptiveRangeChunk picks the quantization range for one row under the
// per-chunk sampling regime. Rows at the sampling cadence (and always the
// first computed row of a chunk) run the exact greedy search and harvest
// its best (u, d) lattice coordinates; the rest evaluate the harvested
// candidates plus the full range and keep the ℓ2 argmin, first-wins on
// ties, so the choice is deterministic for a deterministic input order.
func adaptiveRangeChunk(x []float32, bits, numBins int, ratio float64, s *Scratch, origLo, origHi float32) (lo, hi float32) {
	rangeF := float64(origHi - origLo)
	if rangeF <= 0 || numBins < 1 {
		return origLo, origHi
	}
	if s.sampleEvery <= 1 {
		lo, hi, _, _ = adaptiveRangeFrom(x, bits, numBins, ratio, origLo, origHi)
		return lo, hi
	}
	i := s.chunkRow
	s.chunkRow++
	if i%s.sampleEvery == 0 || len(s.cand) == 0 {
		var u, d int
		lo, hi, u, d = adaptiveRangeFrom(x, bits, numBins, ratio, origLo, origHi)
		s.noteCandidate(u, d)
		return lo, hi
	}
	step := float32(rangeF / float64(numBins))
	bestLo, bestHi := origLo, origHi
	bestErr := uniformL2(x, bits, origLo, origHi)
	maxSteps := int(ratio * float64(numBins))
	for _, c := range s.cand {
		if int(c[0])+int(c[1]) > maxSteps {
			continue // candidate would remove more than ratio*range here
		}
		// Replay the harvested step counts with this row's step size via
		// the same repeated additions the greedy walk performs, so the
		// resulting floats match the walk's bit-for-bit.
		cLo, cHi := origLo, origHi
		for k := int32(0); k < c[0]; k++ {
			cLo += step
		}
		for k := int32(0); k < c[1]; k++ {
			cHi -= step
		}
		if cHi-cLo <= 0 {
			continue
		}
		if e := uniformL2(x, bits, cLo, cHi); e < bestErr {
			bestErr, bestLo, bestHi = e, cLo, cHi
		}
	}
	return bestLo, bestHi
}

func f32b(v float32) uint32  { return math.Float32bits(v) }
func f32fb(b uint32) float32 { return math.Float32frombits(b) }
