package quant

import (
	"sort"
)

// quantizeKMeansInto clusters the vector's elements into 2^bits centroids with
// Lloyd's algorithm (§5.2 Approach 2). Initialization uses evenly spaced
// quantiles of the sorted elements, which avoids the empty-cluster
// pathologies of random init on 1-D data while staying deterministic.
//
// The paper found per-vector k-means gives marginally lower mean ℓ2 error
// than adaptive asymmetric but is orders of magnitude slower at checkpoint
// scale, so Check-N-Run does not deploy it; it exists here as the
// comparison point for Figure 9. Unlike the uniform paths it allocates
// working state per call (sorted copy, assignments) — it is not on the
// engine's hot path — but it still reuses q's Codes and Codebook arrays
// and packs codes word-wise.
func quantizeKMeansInto(q *QVector, x []float32, bits, iters int) {
	k := 1 << uint(bits)
	if k > len(x) {
		k = len(x)
	}
	// Quantile init over a sorted copy.
	sorted := append([]float32(nil), x...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	centroids := make([]float64, k)
	for c := 0; c < k; c++ {
		// Midpoint of the c-th of k equal-frequency buckets.
		idx := (2*c + 1) * len(sorted) / (2 * k)
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		centroids[c] = float64(sorted[idx])
	}

	assign := make([]int, len(x))
	for it := 0; it < iters; it++ {
		changed := false
		// Assignment step. Centroids are kept sorted, so a binary search
		// for the nearest centroid would work; with k <= 256 a linear
		// scan over a sorted slice with early exit is simpler and fast.
		for i, v := range x {
			best, bestD := 0, distSq(float64(v), centroids[0])
			for c := 1; c < k; c++ {
				d := distSq(float64(v), centroids[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Update step.
		sum := make([]float64, k)
		cnt := make([]int, k)
		for i, v := range x {
			sum[assign[i]] += float64(v)
			cnt[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if cnt[c] > 0 {
				centroids[c] = sum[c] / float64(cnt[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}

	q.Bits = bits
	q.N = len(x)
	q.Lo, q.Hi = 0, 0
	q.Codes = ensureBytes(q.Codes, PackedLen(len(x), bits))
	q.Codebook = ensureF32(q.Codebook, 1<<uint(bits))
	for c := range q.Codebook {
		q.Codebook[c] = 0
	}
	for c := 0; c < k; c++ {
		q.Codebook[c] = float32(centroids[c])
	}
	codes := make([]uint32, len(x))
	for i := range x {
		codes[i] = uint32(assign[i])
	}
	PackCodes(q.Codes, codes, bits)
}

func distSq(a, b float64) float64 {
	d := a - b
	return d * d
}
