package quant

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format for a QVector (little-endian):
//
//	u8   bits (32 means raw fp32 / MethodNone)
//	u8   flags (bit 0: codebook present)
//	u32  n (element count)
//	f32  lo, f32 hi            (uniform methods; zero when codebook)
//	u16  codebook length + f32 centroids (only when flag set)
//	[]   packed codes, packedLen(n, bits) bytes
const flagCodebook = 1 << 0

// EncodedLen returns the exact byte length MarshalBinary/AppendBinary
// produce for q — the streaming chunk writer uses it to emit the per-row
// length prefix without materializing the row.
func (q *QVector) EncodedLen() int {
	size := 1 + 1 + 4 + 8 + len(q.Codes)
	if q.Codebook != nil {
		size += 2 + 4*len(q.Codebook)
	}
	return size
}

// AppendBinary serializes q onto dst and returns the extended slice. It
// allocates only when dst lacks capacity, which is what makes the chunk
// encode loop allocation-free. It implements encoding.BinaryAppender.
func (q *QVector) AppendBinary(dst []byte) ([]byte, error) {
	if q.N < 0 {
		// Return dst unchanged so pooled buffers survive failed encodes.
		return dst, fmt.Errorf("quant: negative N")
	}
	dst = append(dst, byte(q.Bits))
	var flags byte
	if q.Codebook != nil {
		flags |= flagCodebook
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.N))
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(q.Lo))
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(q.Hi))
	if q.Codebook != nil {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(q.Codebook)))
		for _, c := range q.Codebook {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(c))
		}
	}
	dst = append(dst, q.Codes...)
	return dst, nil
}

// MarshalBinary serializes q. It implements encoding.BinaryMarshaler.
func (q *QVector) MarshalBinary() ([]byte, error) {
	return q.AppendBinary(make([]byte, 0, q.EncodedLen()))
}

// UnmarshalBinary restores q from MarshalBinary output. It implements
// encoding.BinaryUnmarshaler: q owns its memory afterwards, so data may
// be reused or mutated freely.
func (q *QVector) UnmarshalBinary(data []byte) error {
	return q.unmarshalBinary(data, false)
}

// UnmarshalBinaryAlias is UnmarshalBinary minus the defensive copy:
// q.Codes aliases data's backing array directly (capacity-clamped so
// appends cannot scribble past it). The caller must keep data alive and
// unmodified for as long as q — or any view derived from q — is in use;
// mutating data afterwards is observed through q.Codes. The restore hot
// path uses this on function-local fetched blobs to skip the per-row
// copy; anything that retains the vector past the blob's lifetime must
// use UnmarshalBinary.
func (q *QVector) UnmarshalBinaryAlias(data []byte) error {
	return q.unmarshalBinary(data, true)
}

func (q *QVector) unmarshalBinary(data []byte, alias bool) error {
	if len(data) < 14 {
		return fmt.Errorf("quant: short QVector payload: %d bytes", len(data))
	}
	q.Bits = int(data[0])
	flags := data[1]
	q.N = int(binary.LittleEndian.Uint32(data[2:]))
	q.Lo = math.Float32frombits(binary.LittleEndian.Uint32(data[6:]))
	q.Hi = math.Float32frombits(binary.LittleEndian.Uint32(data[10:]))
	data = data[14:]
	q.Codebook = nil
	if flags&flagCodebook != 0 {
		if len(data) < 2 {
			return fmt.Errorf("quant: missing codebook length")
		}
		cl := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < 4*cl {
			return fmt.Errorf("quant: truncated codebook: want %d entries", cl)
		}
		q.Codebook = make([]float32, cl)
		for i := range q.Codebook {
			q.Codebook[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
		}
		data = data[4*cl:]
	}
	if q.Bits < 1 || (q.Bits > 8 && q.Bits != 32) {
		return fmt.Errorf("quant: invalid bits %d", q.Bits)
	}
	want := packedLen(q.N, q.Bits)
	if len(data) != want {
		return fmt.Errorf("quant: codes length %d, want %d", len(data), want)
	}
	if alias {
		q.Codes = data[:want:want]
	} else {
		q.Codes = append([]byte(nil), data...)
	}
	return nil
}
