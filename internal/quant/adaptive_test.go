package quant

import (
	"bytes"
	"testing"
)

func adaptiveParams(bits int) Params {
	numBins := 25
	if bits >= 4 {
		numBins = 45
	}
	return Params{Method: MethodAdaptive, Bits: bits, NumBins: numBins, Ratio: 1}
}

// quantizeExact runs the legacy per-row search.
func quantizeExact(t *testing.T, x []float32, p Params) *QVector {
	t.Helper()
	q, err := Quantize(x, p)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func sameQVector(a, b *QVector) bool {
	return a.Bits == b.Bits && a.N == b.N &&
		f32b(a.Lo) == f32b(b.Lo) && f32b(a.Hi) == f32b(b.Hi) &&
		bytes.Equal(a.Codes, b.Codes)
}

// TestCachedExactModeByteIdentical: with sampling disarmed and no cache
// entry, QuantizeCachedInto must be the legacy search bit-for-bit.
func TestCachedExactModeByteIdentical(t *testing.T) {
	for _, bits := range []int{2, 3, 4} {
		p := adaptiveParams(bits)
		var s Scratch
		s.BeginAdaptiveChunk(1) // disarmed
		for i, x := range testVectors(64, 16, 7) {
			want := quantizeExact(t, x, p)
			var got QVector
			if err := QuantizeCachedInto(&got, x, p, &s, nil); err != nil {
				t.Fatal(err)
			}
			if !sameQVector(&got, want) {
				t.Fatalf("bits=%d vector %d: exact-mode cached quantize diverged: got [%v,%v], want [%v,%v]",
					bits, i, got.Lo, got.Hi, want.Lo, want.Hi)
			}
		}
	}
}

// TestCachedReuseByteIdentical: a row whose bytes didn't change between
// checkpoints hits the RowRange cache and must reproduce the exact
// search's output bit-for-bit — the steady-state fast path.
func TestCachedReuseByteIdentical(t *testing.T) {
	p := adaptiveParams(4)
	vectors := testVectors(64, 16, 11)

	// Checkpoint 1: cold cache, exact cadence irrelevant — prime entries.
	ents := make([]RowRange, len(vectors))
	var s Scratch
	s.BeginAdaptiveChunk(8)
	for i, x := range vectors {
		var q QVector
		if err := QuantizeCachedInto(&q, x, p, &s, &ents[i]); err != nil {
			t.Fatal(err)
		}
		if !ents[i].Valid {
			t.Fatalf("vector %d: entry not recorded", i)
		}
	}

	// Checkpoint 2: unchanged rows. Every row must hit the cache (so the
	// sampled search never runs — verified via the chunk row counter) and
	// reproduce checkpoint 1's bytes.
	s.BeginAdaptiveChunk(8)
	for i, x := range vectors {
		var q1, q2 QVector
		quantizeUniformInto(&q1, x, p.Bits, ents[i].Lo, ents[i].Hi, &Scratch{})
		if err := QuantizeCachedInto(&q2, x, p, &s, &ents[i]); err != nil {
			t.Fatal(err)
		}
		if !sameQVector(&q1, &q2) {
			t.Fatalf("vector %d: cache hit diverged from cached range", i)
		}
	}
	if s.chunkRow != 0 {
		t.Fatalf("unchanged rows ran %d range searches, want 0", s.chunkRow)
	}
}

// TestCachedInvalidationOnMinMaxMove: moving a row's min or max must miss
// the cache and re-run the search.
func TestCachedInvalidationOnMinMaxMove(t *testing.T) {
	p := adaptiveParams(4)
	x := testVectors(1, 16, 13)[0]
	var ent RowRange
	var s Scratch
	if err := QuantizeCachedInto(new(QVector), x, p, &s, &ent); err != nil {
		t.Fatal(err)
	}
	before := ent

	// Stretch the max: the entry must be recomputed.
	mnIdx, mxIdx := 0, 0
	for i, v := range x {
		if v < x[mnIdx] {
			mnIdx = i
		}
		if v > x[mxIdx] {
			mxIdx = i
		}
	}
	x[mxIdx] *= 2
	var q QVector
	if err := QuantizeCachedInto(&q, x, p, &s, &ent); err != nil {
		t.Fatal(err)
	}
	if ent == before {
		t.Fatal("entry not recomputed after max moved")
	}
	want := quantizeExact(t, x, p)
	if !sameQVector(&q, want) {
		t.Fatalf("recomputed range diverged from exact search: got [%v,%v], want [%v,%v]",
			q.Lo, q.Hi, want.Lo, want.Hi)
	}
	_ = mnIdx
}

// TestChunkSampledNeverWorseThanNaive: the sampled fast path always
// evaluates the full range as a candidate, so its ℓ2 error can never
// exceed naive asymmetric quantization — the guarantee that makes the
// approximation safe to enable by default.
func TestChunkSampledNeverWorseThanNaive(t *testing.T) {
	for _, bits := range []int{2, 3, 4} {
		p := adaptiveParams(bits)
		naive := Params{Method: MethodAsymmetric, Bits: bits}
		var s Scratch
		s.BeginAdaptiveChunk(8)
		for i, x := range testVectors(128, 16, 17) {
			var q QVector
			if err := QuantizeCachedInto(&q, x, p, &s, nil); err != nil {
				t.Fatal(err)
			}
			fastErr := uniformL2(x, bits, q.Lo, q.Hi)
			nq := quantizeExact(t, x, naive)
			naiveErr := uniformL2(x, bits, nq.Lo, nq.Hi)
			if fastErr > naiveErr*(1+1e-12) {
				t.Fatalf("bits=%d vector %d: sampled path error %v worse than naive %v",
					bits, i, fastErr, naiveErr)
			}
		}
	}
}

// TestChunkSampledDeterministic: two independent Scratches fed the same
// rows in the same order must produce identical bytes — the property that
// keeps parallel chunk encoding deterministic (each chunk is one worker's
// in-order row sequence).
func TestChunkSampledDeterministic(t *testing.T) {
	p := adaptiveParams(4)
	vectors := testVectors(64, 16, 19)
	var s1, s2 Scratch
	s1.BeginAdaptiveChunk(8)
	s2.BeginAdaptiveChunk(8)
	for i, x := range vectors {
		var a, b QVector
		if err := QuantizeCachedInto(&a, x, p, &s1, nil); err != nil {
			t.Fatal(err)
		}
		if err := QuantizeCachedInto(&b, x, p, &s2, nil); err != nil {
			t.Fatal(err)
		}
		if !sameQVector(&a, &b) {
			t.Fatalf("vector %d: same input order, different bytes", i)
		}
	}
}

// TestCandidateReplayBitExact: a sampled row's harvested (u, d)
// coordinates replayed over the same row must land exactly on the range
// the greedy search returned — the bit-exactness adaptiveRangeChunk's
// candidate evaluation relies on.
func TestCandidateReplayBitExact(t *testing.T) {
	for i, x := range testVectors(64, 16, 23) {
		mn, mx := minMax(x)
		lo, hi, u, d := adaptiveRangeFrom(x, 4, 45, 1, mn, mx)
		step := float32(float64(mx-mn) / 45)
		rLo, rHi := mn, mx
		for k := 0; k < u; k++ {
			rLo += step
		}
		for k := 0; k < d; k++ {
			rHi -= step
		}
		if f32b(rLo) != f32b(lo) || f32b(rHi) != f32b(hi) {
			t.Fatalf("vector %d: replay of (%d,%d) gave [%v,%v], search returned [%v,%v]",
				i, u, d, rLo, rHi, lo, hi)
		}
	}
}

// BenchmarkAdaptive4BitSampled is the per-chunk sampled fast path at the
// engine's default cadence: 1 exact search per 8 rows, candidate argmin
// for the rest. Compare against BenchmarkAdaptive4Bit25Bins (the exact
// search this replaces).
func BenchmarkAdaptive4BitSampled(b *testing.B) {
	vectors := testVectors(64, 64, 1)
	p := Params{Method: MethodAdaptive, Bits: 4, NumBins: 25, Ratio: 1}
	var s Scratch
	var q QVector
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			s.BeginAdaptiveChunk(8)
		}
		if err := QuantizeCachedInto(&q, vectors[i%64], p, &s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptive4BitCacheHit is the steady-state path for unchanged
// rows: one min/max scan plus uniform quantization, no search at all.
func BenchmarkAdaptive4BitCacheHit(b *testing.B) {
	vectors := testVectors(64, 64, 1)
	p := Params{Method: MethodAdaptive, Bits: 4, NumBins: 25, Ratio: 1}
	ents := make([]RowRange, 64)
	var s Scratch
	var q QVector
	for i, x := range vectors {
		if err := QuantizeCachedInto(&q, x, p, &s, &ents[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := QuantizeCachedInto(&q, vectors[i%64], p, &s, &ents[i%64]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBeginAdaptiveChunkResets: candidates must not leak across chunks.
func TestBeginAdaptiveChunkResets(t *testing.T) {
	var s Scratch
	s.BeginAdaptiveChunk(4)
	s.noteCandidate(1, 0)
	s.noteCandidate(0, 2)
	if len(s.cand) != 2 {
		t.Fatalf("candidates = %d, want 2", len(s.cand))
	}
	s.noteCandidate(1, 0) // dup
	if len(s.cand) != 2 {
		t.Fatalf("dedup failed: %d candidates", len(s.cand))
	}
	for i := 0; i < 2*maxAdaptiveCandidates; i++ {
		s.noteCandidate(i+2, i+3)
	}
	if len(s.cand) != maxAdaptiveCandidates {
		t.Fatalf("ring cap failed: %d candidates", len(s.cand))
	}
	s.BeginAdaptiveChunk(4)
	if len(s.cand) != 0 || s.chunkRow != 0 {
		t.Fatal("BeginAdaptiveChunk did not reset chunk state")
	}
}
