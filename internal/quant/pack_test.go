package quant

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// refWriteBits is the original bit-at-a-time packer, kept verbatim as the
// differential reference for the word-wise implementation. It ORs set
// bits into a zeroed buffer.
func refWriteBits(buf []byte, i, bits int, v uint32) {
	bitPos := i * bits
	for b := 0; b < bits; b++ {
		if v&(1<<uint(b)) != 0 {
			buf[(bitPos+b)/8] |= 1 << uint((bitPos+b)%8)
		}
	}
}

// refReadBits is the original bit-at-a-time unpacker.
func refReadBits(buf []byte, i, bits int) uint32 {
	bitPos := i * bits
	var v uint32
	for b := 0; b < bits; b++ {
		if buf[(bitPos+b)/8]&(1<<uint((bitPos+b)%8)) != 0 {
			v |= 1 << uint(b)
		}
	}
	return v
}

func randCodes(rng *rand.Rand, n, bits int) []uint32 {
	maxV := uint32(1)<<uint(bits) - 1
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = rng.Uint32() & maxV
	}
	return codes
}

// TestPackMatchesReference checks, for every width and a range of
// lengths, that PackCodes emits byte-identical output to the original
// bit-at-a-time packer and that UnpackCodes agrees with the original
// reader — the property that keeps old checkpoints decodable.
func TestPackMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for bits := 1; bits <= 8; bits++ {
		for _, n := range []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100, 513} {
			codes := randCodes(rng, n, bits)
			ref := make([]byte, PackedLen(n, bits))
			for i, c := range codes {
				refWriteBits(ref, i, bits, c)
			}
			got := make([]byte, PackedLen(n, bits))
			// Dirty the buffer: PackCodes must overwrite every byte.
			for i := range got {
				got[i] = 0xAA
			}
			PackCodes(got, codes, bits)
			if !bytes.Equal(got, ref) {
				t.Fatalf("bits=%d n=%d: PackCodes diverged from reference", bits, n)
			}
			back := make([]uint32, n)
			UnpackCodes(back, ref, bits)
			for i := range codes {
				if back[i] != codes[i] {
					t.Fatalf("bits=%d n=%d: UnpackCodes[%d] = %d, want %d", bits, n, i, back[i], codes[i])
				}
				if r := refReadBits(got, i, bits); r != codes[i] {
					t.Fatalf("bits=%d n=%d: reference reader got %d from packed output, want %d", bits, n, r, codes[i])
				}
			}
		}
	}
}

// TestPackMasksOverwideCodes verifies codes wider than the target width
// are truncated, matching the reference packer's behavior of only
// considering the low `bits` bits.
func TestPackMasksOverwideCodes(t *testing.T) {
	codes := []uint32{0xFFFFFFFF, 0x12345678, 0x80000003}
	for bits := 1; bits <= 8; bits++ {
		ref := make([]byte, PackedLen(len(codes), bits))
		for i, c := range codes {
			refWriteBits(ref, i, bits, c)
		}
		got := make([]byte, PackedLen(len(codes), bits))
		PackCodes(got, codes, bits)
		if !bytes.Equal(got, ref) {
			t.Fatalf("bits=%d: overwide codes packed differently from reference", bits)
		}
	}
}

func TestPackRoundTripQuick(t *testing.T) {
	f := func(seed int64, bitsRaw uint8) bool {
		bits := int(bitsRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		codes := randCodes(rng, n, bits)
		buf := make([]byte, PackedLen(n, bits))
		PackCodes(buf, codes, bits)
		back := make([]uint32, n)
		UnpackCodes(back, buf, bits)
		for i := range codes {
			if back[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzPackRoundTrip fuzzes the word-wise packer against the reference
// implementation: pack must be byte-identical to the original layout and
// unpack must invert pack, for arbitrary code streams and widths.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add([]byte{0x01, 0xFF, 0x7E}, uint8(3))
	f.Add([]byte{0xAA, 0x55, 0x00, 0x10, 0x80}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(4))
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, uint8(8))
	f.Add([]byte{9, 9, 9}, uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, bitsRaw uint8) {
		bits := int(bitsRaw)%8 + 1
		if len(raw) == 0 {
			return
		}
		codes := make([]uint32, len(raw))
		mask := uint32(1)<<uint(bits) - 1
		for i, b := range raw {
			codes[i] = uint32(b) & mask
		}
		packed := make([]byte, PackedLen(len(codes), bits))
		PackCodes(packed, codes, bits)
		ref := make([]byte, PackedLen(len(codes), bits))
		for i, c := range codes {
			refWriteBits(ref, i, bits, c)
		}
		if !bytes.Equal(packed, ref) {
			t.Fatalf("bits=%d: packed bytes diverge from reference layout", bits)
		}
		back := make([]uint32, len(codes))
		UnpackCodes(back, packed, bits)
		for i := range codes {
			if back[i] != codes[i] {
				t.Fatalf("bits=%d: round trip lost code %d at %d (got %d)", bits, codes[i], i, back[i])
			}
		}
	})
}

// TestQuantizeIntoReuse runs two different vectors through the same
// QVector + Scratch and checks results match fresh Quantize calls —
// stale state from the first use must not leak into the second.
func TestQuantizeIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	params := []Params{
		{Method: MethodNone},
		{Method: MethodSymmetric, Bits: 2},
		{Method: MethodAsymmetric, Bits: 4},
		{Method: MethodAsymmetric, Bits: 8},
		{Method: MethodAdaptive, Bits: 3, NumBins: 25, Ratio: 1},
		{Method: MethodKMeans, Bits: 2, KMeansIters: 5},
	}
	var q QVector
	var s Scratch
	for trial := 0; trial < 20; trial++ {
		p := params[trial%len(params)]
		n := rng.Intn(60) + 4
		x := trainedLikeVector(rng, n)
		if err := QuantizeInto(&q, x, p, &s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := Quantize(x, p)
		if err != nil {
			t.Fatal(err)
		}
		if q.Bits != want.Bits || q.N != want.N || q.Lo != want.Lo || q.Hi != want.Hi {
			t.Fatalf("trial %d (%v): meta %+v != %+v", trial, p.Method, q, *want)
		}
		if !bytes.Equal(q.Codes, want.Codes) {
			t.Fatalf("trial %d (%v): codes differ after reuse", trial, p.Method)
		}
		if len(q.Codebook) != len(want.Codebook) {
			t.Fatalf("trial %d: codebook len %d != %d", trial, len(q.Codebook), len(want.Codebook))
		}
		for i := range want.Codebook {
			if q.Codebook[i] != want.Codebook[i] {
				t.Fatalf("trial %d: codebook[%d] differs", trial, i)
			}
		}
		// Marshaled form must also be identical, since the wire encoder
		// consumes reused QVectors.
		a, _ := q.MarshalBinary()
		b, _ := want.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d (%v): marshaled bytes differ", trial, p.Method)
		}
	}
}

// TestDequantizeIntoMatchesDequantize checks the scratch-based
// dequantizer against the allocating one, including dst reuse.
func TestDequantizeIntoMatchesDequantize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var s Scratch
	dst := make([]float32, 128)
	for _, p := range []Params{
		{Method: MethodNone},
		{Method: MethodAsymmetric, Bits: 1},
		{Method: MethodAsymmetric, Bits: 4},
		{Method: MethodAdaptive, Bits: 3, NumBins: 10, Ratio: 0.9},
		{Method: MethodKMeans, Bits: 3, KMeansIters: 5},
	} {
		x := trainedLikeVector(rng, 48)
		q, err := Quantize(x, p)
		if err != nil {
			t.Fatal(err)
		}
		want := Dequantize(q)
		got := dst[:q.N]
		if err := DequantizeInto(got, q, &s); err != nil {
			t.Fatalf("%v: %v", p.Method, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: element %d: %v != %v", p.Method, i, got[i], want[i])
			}
		}
	}
}

func TestDequantizeIntoErrors(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	q, err := Quantize(x, Params{Method: MethodAsymmetric, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := DequantizeInto(make([]float32, 3), q, nil); err == nil {
		t.Fatal("length mismatch should error")
	}
	short := *q
	short.Codes = q.Codes[:len(q.Codes)-1]
	if err := DequantizeInto(make([]float32, 4), &short, nil); err == nil {
		t.Fatal("short codes should error")
	}
	bad := *q
	bad.Bits = 12
	if err := DequantizeInto(make([]float32, 4), &bad, nil); err == nil {
		t.Fatal("invalid bits should error")
	}
}

// TestQuantizeIntoAllocFree asserts the steady-state hot path performs
// zero allocations per row once scratch buffers are warm, for every
// uniform method and the fp32 path — the acceptance bar for the chunk
// encoder.
func TestQuantizeIntoAllocFree(t *testing.T) {
	x := trainedLikeVector(rand.New(rand.NewSource(9)), 64)
	for _, p := range []Params{
		{Method: MethodNone},
		{Method: MethodSymmetric, Bits: 4},
		{Method: MethodAsymmetric, Bits: 8},
		{Method: MethodAdaptive, Bits: 4, NumBins: 25, Ratio: 1},
	} {
		var q QVector
		var s Scratch
		if err := QuantizeInto(&q, x, p, &s); err != nil { // warm buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := QuantizeInto(&q, x, p, &s); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per quantize, want 0", p.Method, allocs)
		}
		dst := make([]float32, q.N)
		allocs = testing.AllocsPerRun(50, func() {
			if err := DequantizeInto(dst, &q, &s); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per dequantize, want 0", p.Method, allocs)
		}
	}
}
