package quant

import (
	"fmt"
	"math"
	"math/rand"
)

// L2Error returns ||x - Dequantize(Quantize(x))||_2 for one vector.
func L2Error(x []float32, p Params) (float64, error) {
	q, err := Quantize(x, p)
	if err != nil {
		return 0, err
	}
	rec := Dequantize(q)
	var sum float64
	for i, v := range x {
		d := float64(v) - float64(rec[i])
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// MeanL2Error computes the paper's checkpoint quality metric:
// (1/m) Σ ||X_i - Q_i||_2 over m embedding vectors.
func MeanL2Error(vectors [][]float32, p Params) (float64, error) {
	if len(vectors) == 0 {
		return 0, fmt.Errorf("quant: no vectors")
	}
	var sum float64
	for _, x := range vectors {
		e, err := L2Error(x, p)
		if err != nil {
			return 0, err
		}
		sum += e
	}
	return sum / float64(len(vectors)), nil
}

// SampleVectors uniformly samples a fraction of the vectors (at least
// minimum) for the light-weight checkpoint profiling of §5.2: the paper
// estimates mean ℓ2 error on a 0.001% sample and reports that the sampled
// estimate selects the same parameters as the full checkpoint.
func SampleVectors(vectors [][]float32, fraction float64, minimum int, seed int64) [][]float32 {
	if fraction <= 0 {
		fraction = 0.00001
	}
	n := int(float64(len(vectors)) * fraction)
	if n < minimum {
		n = minimum
	}
	if n >= len(vectors) {
		return vectors
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	// Partial Fisher-Yates over index space.
	idx := make([]int, len(vectors))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = vectors[idx[i]]
	}
	return out
}

// SelectAdaptiveParams implements the automatic parameter selection of
// §5.2: it profiles a sample of the checkpoint across candidate NumBins
// values (at the given ratio) and picks the first candidate at which the
// marginal mean-ℓ2 improvement tapers off (drops below taperEps,
// expressed as a relative improvement over the previous candidate).
func SelectAdaptiveParams(vectors [][]float32, bits int, binCandidates []int, ratio float64, taperEps float64, seed int64) (Params, error) {
	if len(binCandidates) == 0 {
		return Params{}, fmt.Errorf("quant: no bin candidates")
	}
	sample := SampleVectors(vectors, 0.00001, 32, seed)
	best := Params{Method: MethodAdaptive, Bits: bits, NumBins: binCandidates[0], Ratio: ratio}
	prevErr := math.Inf(1)
	for i, bins := range binCandidates {
		p := Params{Method: MethodAdaptive, Bits: bits, NumBins: bins, Ratio: ratio}
		e, err := MeanL2Error(sample, p)
		if err != nil {
			return Params{}, err
		}
		if i == 0 {
			best, prevErr = p, e
			continue
		}
		improvement := (prevErr - e) / prevErr
		if improvement < taperEps {
			// Improvement tapered off; keep the previous choice.
			return best, nil
		}
		best, prevErr = p, e
	}
	return best, nil
}

// ImprovementOverNaive returns the relative mean-ℓ2 improvement of the
// adaptive method over naive asymmetric at the same bit width — the metric
// of Figures 10 and 11.
func ImprovementOverNaive(vectors [][]float32, bits, numBins int, ratio float64) (float64, error) {
	naive, err := MeanL2Error(vectors, Params{Method: MethodAsymmetric, Bits: bits})
	if err != nil {
		return 0, err
	}
	adaptive, err := MeanL2Error(vectors, Params{Method: MethodAdaptive, Bits: bits, NumBins: numBins, Ratio: ratio})
	if err != nil {
		return 0, err
	}
	if naive == 0 {
		return 0, nil
	}
	return (naive - adaptive) / naive, nil
}
