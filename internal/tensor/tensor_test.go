package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestAxpy(t *testing.T) {
	x := Vector{1, 2}
	y := Vector{10, 20}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestScaleAndL2(t *testing.T) {
	x := Vector{3, 4}
	if got := L2(x); got != 5 {
		t.Fatalf("L2 = %v, want 5", got)
	}
	Scale(2, x)
	if x[0] != 6 || x[1] != 8 {
		t.Fatalf("Scale = %v", x)
	}
}

func TestSquaredDistance(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{1, 4, 0}
	if got := SquaredDistance(a, b); got != 13 {
		t.Fatalf("SquaredDistance = %v, want 13", got)
	}
	if got := SquaredDistance(a, a); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At = %v", got)
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Fatalf("Row = %v", row)
	}
	// Row is a view: writing through it changes the matrix.
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row should be a view")
	}
}

func TestMatrixBoundsPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for name, fn := range map[string]func(){
		"At":  func() { m.At(2, 0) },
		"Set": func() { m.Set(0, -1, 1) },
		"Row": func() { m.Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	out := make(Vector, 2)
	m.MatVec(Vector{1, 1, 1}, out)
	if out[0] != 6 || out[1] != 15 {
		t.Fatalf("MatVec = %v", out)
	}
}

func TestMatVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	out := make(Vector, 3)
	m.MatVecT(Vector{1, 1}, out)
	if out[0] != 5 || out[1] != 7 || out[2] != 9 {
		t.Fatalf("MatVecT = %v", out)
	}
}

func TestMatVecTransposeConsistency(t *testing.T) {
	// Property: <Ax, y> == <x, A^T y>.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(8) + 1
		cols := rng.Intn(8) + 1
		m := NewMatrix(rows, cols)
		m.FillUniform(rng, 1)
		x := make(Vector, cols)
		y := make(Vector, rows)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		for i := range y {
			y[i] = rng.Float32()*2 - 1
		}
		ax := make(Vector, rows)
		m.MatVec(x, ax)
		aty := make(Vector, cols)
		m.MatVecT(y, aty)
		lhs := float64(Dot(ax, y))
		rhs := float64(Dot(x, aty))
		return math.Abs(lhs-rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(1, Vector{1, 2}, Vector{3, 4})
	want := []float32{3, 4, 6, 8}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMatrix(10, 20)
	m.XavierInit(rng)
	limit := float32(math.Sqrt(6.0 / 30.0))
	nonzero := 0
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("value %v outside xavier limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Data)/2 {
		t.Fatalf("suspiciously many zeros after init: %d/%d nonzero", nonzero, len(m.Data))
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got < 0.999 {
		t.Fatalf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got > 0.001 {
		t.Fatalf("Sigmoid(-100) = %v", got)
	}
	// Stability at extremes: must not be NaN.
	for _, x := range []float32{1e6, -1e6} {
		if v := Sigmoid(x); math.IsNaN(float64(v)) {
			t.Fatalf("Sigmoid(%v) is NaN", x)
		}
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		s := float64(Sigmoid(x)) + float64(Sigmoid(-x))
		return math.Abs(s-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReLU(t *testing.T) {
	if ReLU(-1) != 0 || ReLU(2) != 2 || ReLU(0) != 0 {
		t.Fatal("ReLU wrong")
	}
}

func TestReLUVec(t *testing.T) {
	x := Vector{-1, 0, 2}
	mask := make([]bool, 3)
	ReLUVec(x, mask)
	if x[0] != 0 || x[1] != 0 || x[2] != 2 {
		t.Fatalf("ReLUVec values = %v", x)
	}
	if mask[0] || mask[1] || !mask[2] {
		t.Fatalf("ReLUVec mask = %v", mask)
	}
}

func TestBCEWithLogits(t *testing.T) {
	// At logit 0 the loss is ln 2 regardless of label.
	want := float32(math.Log(2))
	for _, y := range []float32{0, 1} {
		if got := BCEWithLogits(0, y); math.Abs(float64(got-want)) > 1e-6 {
			t.Fatalf("BCE(0,%v) = %v, want %v", y, got, want)
		}
	}
	// Confident correct prediction: near-zero loss.
	if got := BCEWithLogits(20, 1); got > 1e-6 {
		t.Fatalf("BCE(20,1) = %v, want ~0", got)
	}
	// Confident wrong prediction: large loss, approximately |logit|.
	if got := BCEWithLogits(20, 0); math.Abs(float64(got)-20) > 1e-4 {
		t.Fatalf("BCE(20,0) = %v, want ~20", got)
	}
	// Stability: huge logits must not produce NaN/Inf.
	for _, z := range []float32{1e6, -1e6} {
		v := float64(BCEWithLogits(z, 1))
		if math.IsNaN(v) || math.IsInf(v, 0) && z > 0 {
			t.Fatalf("BCE(%v,1) = %v not finite", z, v)
		}
	}
}

func TestBCEGradSign(t *testing.T) {
	// Gradient positive when predicting 1 but label 0, negative vice versa.
	if g := BCEGrad(5, 0); g <= 0 {
		t.Fatalf("grad = %v, want > 0", g)
	}
	if g := BCEGrad(-5, 1); g >= 0 {
		t.Fatalf("grad = %v, want < 0", g)
	}
	if g := BCEGrad(0, 0.5); g != 0 {
		t.Fatalf("grad = %v, want 0", g)
	}
}

func TestBCEGradIsDerivative(t *testing.T) {
	// Finite-difference check of BCEGrad against BCEWithLogits.
	for _, z := range []float32{-2, -0.5, 0.3, 1.7} {
		for _, y := range []float32{0, 1} {
			const h = 1e-3
			num := (float64(BCEWithLogits(z+h, y)) - float64(BCEWithLogits(z-h, y))) / (2 * h)
			ana := float64(BCEGrad(z, y))
			if math.Abs(num-ana) > 1e-3 {
				t.Fatalf("grad mismatch at z=%v y=%v: numeric %v vs analytic %v", z, y, num, ana)
			}
		}
	}
}

func BenchmarkMatVec(b *testing.B) {
	m := NewMatrix(256, 256)
	rng := rand.New(rand.NewSource(1))
	m.XavierInit(rng)
	x := make(Vector, 256)
	out := make(Vector, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(x, out)
	}
}

func BenchmarkDot(b *testing.B) {
	x := make(Vector, 1024)
	y := make(Vector, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}
