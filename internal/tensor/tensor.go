// Package tensor implements the minimal fp32 linear-algebra kernels the
// DLRM substrate needs: vectors, row-major matrices, GEMV/GEMM, and the
// activation functions used by the bottom and top MLPs.
//
// Training in the paper is always single-precision (quantization only ever
// touches checkpoints), so everything here is float32 with float64
// accumulation where it protects against drift.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense fp32 vector.
type Vector []float32

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		s += float64(x) * float64(b[i])
	}
	return float32(s)
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float32, x, y Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x Vector) {
	for i := range x {
		x[i] *= alpha
	}
}

// L2 returns the Euclidean norm of x.
func L2(x Vector) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// SquaredDistance returns ||a-b||^2 accumulated in float64, the inner
// quantity of the paper's mean-l2-error metric (§5.2).
func SquaredDistance(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: SquaredDistance length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		d := float64(x) - float64(b[i])
		s += d * d
	}
	return s
}

// Matrix is a dense row-major fp32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d) negative dims", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: Row(%d) out of range [0,%d)", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: At(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: Set(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	m.Data[i*m.Cols+j] = v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatVec computes out = m * x (out has length m.Rows). out may not alias x.
func (m *Matrix) MatVec(x, out Vector) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec x len %d != cols %d", len(x), m.Cols))
	}
	if len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec out len %d != rows %d", len(out), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += float64(w) * float64(x[j])
		}
		out[i] = float32(s)
	}
}

// MatVecT computes out = m^T * x (out has length m.Cols). Used for the
// backward pass: grad_input = W^T * grad_output.
func (m *Matrix) MatVecT(x, out Vector) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVecT x len %d != rows %d", len(x), m.Rows))
	}
	if len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVecT out len %d != cols %d", len(out), m.Cols))
	}
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			out[j] += xi * w
		}
	}
}

// AddOuter accumulates m += alpha * a ⊗ b (rank-1 update), the weight
// gradient of a linear layer: dW += alpha * grad_out ⊗ input.
func (m *Matrix) AddOuter(alpha float32, a, b Vector) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter dims %dx%d vs %dx%d", len(a), len(b), m.Rows, m.Cols))
	}
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		f := alpha * ai
		for j, bj := range b {
			row[j] += f * bj
		}
	}
}

// XavierInit fills m with Xavier/Glorot-uniform values using rng, the
// standard initialization for MLP layers.
func (m *Matrix) XavierInit(rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

// FillUniform fills m with uniform values in [-scale, scale).
func (m *Matrix) FillUniform(rng *rand.Rand, scale float32) {
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Sigmoid returns 1/(1+e^-x), computed stably for large |x|.
func Sigmoid(x float32) float32 {
	if x >= 0 {
		z := math.Exp(-float64(x))
		return float32(1 / (1 + z))
	}
	z := math.Exp(float64(x))
	return float32(z / (1 + z))
}

// ReLU returns max(0, x).
func ReLU(x float32) float32 {
	if x > 0 {
		return x
	}
	return 0
}

// ReLUVec applies ReLU elementwise in place and records the mask needed by
// the backward pass (mask[i] is 1 where x[i] > 0).
func ReLUVec(x Vector, mask []bool) {
	if len(mask) != len(x) {
		panic(fmt.Sprintf("tensor: ReLUVec mask len %d != %d", len(mask), len(x)))
	}
	for i, v := range x {
		if v > 0 {
			mask[i] = true
		} else {
			mask[i] = false
			x[i] = 0
		}
	}
}

// BCEWithLogits returns the binary cross-entropy loss between a logit and a
// {0,1} label, computed in the numerically stable log-sum-exp form:
// max(z,0) - z*y + log(1+exp(-|z|)).
func BCEWithLogits(logit, label float32) float32 {
	z := float64(logit)
	y := float64(label)
	loss := math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
	return float32(loss)
}

// BCEGrad returns dLoss/dLogit = sigmoid(logit) - label.
func BCEGrad(logit, label float32) float32 {
	return Sigmoid(logit) - label
}
