package wire

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/quant"
)

// Differential proof that the adaptive quantizer's fast paths reproduce
// the legacy per-row greedy search byte-for-byte on the golden-bytes
// fixtures (testdata/*.bin, captured from the original encoder):
//
//   - exact mode (sampling disarmed): the refactored search entry point
//     must still emit the golden bytes, so the engine's AdaptiveSampling=1
//     escape hatch is the legacy behavior, not merely close to it;
//   - cache reuse: rows whose bytes didn't change since their range was
//     last searched hit the RowRange cache, and the resulting chunks must
//     still be the golden bytes — the steady-state regime the fast path
//     actually runs in, where unchanged rows dominate every incremental
//     checkpoint.
//
// The remaining regime — a cold cache with chunk sampling armed — is the
// documented approximation; its guarantees (never worse than naive
// asymmetric, deterministic for a deterministic row order) are pinned in
// internal/quant's adaptive tests instead.

func goldenAdaptiveCases() []goldenCase {
	var out []goldenCase
	for _, gc := range goldenCases() {
		if gc.params.Method == quant.MethodAdaptive {
			out = append(out, gc)
		}
	}
	return out
}

// goldenFastChunk rebuilds a golden chunk through QuantizeCachedInto.
// When warm is true each row's RowRange entry is primed first by an exact
// search (modeling a prior checkpoint of the same bytes) and the chunk is
// then encoded with per-chunk sampling armed, so every row exercises the
// cache-hit path.
func goldenFastChunk(t *testing.T, gc goldenCase, warm bool) *Chunk {
	t.Helper()
	ents := make([]quant.RowRange, gc.nRows)
	if warm {
		var prime quant.Scratch // sampling disarmed: exact search
		for r := 0; r < gc.nRows; r++ {
			var q quant.QVector
			if err := quant.QuantizeCachedInto(&q, goldenVector(r, gc.dim), gc.params, &prime, &ents[r]); err != nil {
				t.Fatalf("prime row %d: %v", r, err)
			}
		}
	}
	var s quant.Scratch
	if warm {
		s.BeginAdaptiveChunk(8)
	} else {
		s.BeginAdaptiveChunk(1)
	}
	c := &Chunk{TableID: 7}
	for r := 0; r < gc.nRows; r++ {
		q := new(quant.QVector)
		var ent *quant.RowRange
		if warm {
			ent = &ents[r]
		}
		if err := quant.QuantizeCachedInto(q, goldenVector(r, gc.dim), gc.params, &s, ent); err != nil {
			t.Fatalf("quantize row %d: %v", r, err)
		}
		c.Rows = append(c.Rows, Row{Index: uint32(r * 3), Accum: float32(r) * 0.125, Q: q})
	}
	if warm && s.ChunkSearches() != 0 {
		t.Fatalf("warm pass ran %d range searches, want 0 (every row should hit the cache)", s.ChunkSearches())
	}
	return c
}

func TestGoldenBytesFastPathExactMode(t *testing.T) {
	for _, gc := range goldenAdaptiveCases() {
		t.Run(gc.name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(gc.name))
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			blob := encodeCase(t, gc, goldenFastChunk(t, gc, false))
			if !bytes.Equal(blob, want) {
				t.Fatalf("%s: exact-mode fast path diverged from golden bytes (%d vs %d bytes)",
					gc.name, len(blob), len(want))
			}
		})
	}
}

func TestGoldenBytesCachedReuse(t *testing.T) {
	for _, gc := range goldenAdaptiveCases() {
		t.Run(gc.name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(gc.name))
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			blob := encodeCase(t, gc, goldenFastChunk(t, gc, true))
			if !bytes.Equal(blob, want) {
				t.Fatalf("%s: cached-reuse fast path diverged from golden bytes (%d vs %d bytes)",
					gc.name, len(blob), len(want))
			}
		})
	}
}
