// Package wire defines the on-storage checkpoint format: CRC-protected
// chunks of (possibly quantized) embedding rows, and the JSON manifest
// that makes a set of chunks a valid, restorable checkpoint.
//
// The format follows §4.4/§5.2 of the paper: the optimizer works on chunks
// of embedding vectors at a time so quantization and upload pipeline, and
// a checkpoint becomes valid only when its manifest is durably stored
// after all chunks ("when all nodes finish storing their part ... the
// controller will declare a new valid checkpoint").
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/quant"
)

// Kind discriminates full baseline checkpoints from incremental ones.
type Kind uint8

const (
	// KindFull is a full baseline checkpoint containing every row.
	KindFull Kind = iota
	// KindIncremental contains only rows modified since its base
	// (one-shot / intermittent policies) or since its parent
	// (consecutive policy).
	KindIncremental
)

// String names the kind for manifests and logs.
func (k Kind) String() string {
	if k == KindFull {
		return "full"
	}
	return "incremental"
}

// Row is one embedding row inside a chunk: its index within the table, the
// row-wise optimizer accumulator (always fp32 — it is tiny relative to the
// vector), and the quantized vector payload.
type Row struct {
	Index uint32
	Accum float32
	Q     *quant.QVector
}

// Chunk is the unit of quantize-then-upload pipelining: a contiguous run
// of rows from a single table.
type Chunk struct {
	TableID uint32
	Rows    []Row
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// chunkMagic guards against decoding non-chunk objects.
const chunkMagic = 0x434B5031 // "CKP1"

// EncodedLen returns the exact v1 encoding size of the chunk, for
// presizing buffers. Rows with nil vectors contribute only their header;
// AppendTo rejects them anyway.
func (c *Chunk) EncodedLen() int {
	size := 12 + 4 // header + CRC
	for i := range c.Rows {
		size += 12
		if q := c.Rows[i].Q; q != nil {
			size += q.EncodedLen()
		}
	}
	return size
}

// Encode serializes the chunk with a trailing CRC32-C over the body.
func (c *Chunk) Encode() ([]byte, error) {
	return c.AppendTo(make([]byte, 0, c.EncodedLen()))
}

// AppendTo appends the chunk's v1 encoding to dst and returns the
// extended slice. Rows are serialized in place — no per-row blob
// allocations — so encoding into a pooled buffer with sufficient
// capacity performs zero allocations. The emitted bytes are identical to
// Encode's (the golden-bytes tests pin this). On error the returned
// slice keeps dst's backing array (possibly partially extended), so
// pooled buffers survive failed encodes.
func (c *Chunk) AppendTo(dst []byte) ([]byte, error) {
	base := len(dst)
	// Header: magic u32 | tableID u32 | rowCount u32.
	dst = binary.LittleEndian.AppendUint32(dst, chunkMagic)
	dst = binary.LittleEndian.AppendUint32(dst, c.TableID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Rows)))
	for i := range c.Rows {
		r := &c.Rows[i]
		if r.Q == nil {
			return dst, fmt.Errorf("wire: row %d has nil quantized vector", i)
		}
		dst = binary.LittleEndian.AppendUint32(dst, r.Index)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Q.EncodedLen()))
		// Accum as raw fp32 bits.
		dst = binary.LittleEndian.AppendUint32(dst, f32bits(r.Accum))
		var err error
		dst, err = r.Q.AppendBinary(dst)
		if err != nil {
			return dst, fmt.Errorf("wire: row %d: %w", i, err)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[base:], crcTable))
	return dst, nil
}

// DecodeChunk parses and CRC-verifies a chunk produced by Encode. The
// returned chunk owns its memory: data may be reused or mutated freely
// afterwards.
func DecodeChunk(data []byte) (*Chunk, error) {
	return decodeChunk(data, false)
}

// DecodeChunkAlias is DecodeChunk minus the per-row Codes copies: every
// row's packed codes alias data's backing array directly (for both the
// v1 and CKP2 layouts). The caller must keep data alive and unmodified
// for as long as the chunk — or any row vector taken from it — is in
// use; mutating data afterwards corrupts the decoded rows. The restore
// paths use this on freshly fetched, function-local blobs that are
// consumed (dequantized or index-scanned) before the blob goes out of
// scope; anything that retains rows past the blob's lifetime must use
// DecodeChunk.
func DecodeChunkAlias(data []byte) (*Chunk, error) {
	return decodeChunk(data, true)
}

func decodeChunk(data []byte, alias bool) (*Chunk, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("wire: chunk too short: %d bytes", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("wire: chunk CRC mismatch: 0x%08x != 0x%08x", got, want)
	}
	switch m := binary.LittleEndian.Uint32(body); m {
	case chunkMagic:
		// v1 layout, decoded below.
	case compactMagic:
		return decodeCompact(body, alias)
	default:
		return nil, fmt.Errorf("wire: bad chunk magic 0x%08x", m)
	}
	c := &Chunk{TableID: binary.LittleEndian.Uint32(body[4:])}
	n := int(binary.LittleEndian.Uint32(body[8:]))
	if n < 0 || n > len(body) {
		return nil, fmt.Errorf("wire: implausible row count %d in %d-byte chunk", n, len(body))
	}
	off := 12
	c.Rows = make([]Row, 0, n)
	// One batched allocation for the row vectors instead of one per row.
	qs := make([]quant.QVector, n)
	for i := 0; i < n; i++ {
		if off+12 > len(body) {
			return nil, fmt.Errorf("wire: truncated row header at row %d", i)
		}
		idx := binary.LittleEndian.Uint32(body[off:])
		blobLen := int(binary.LittleEndian.Uint32(body[off+4:]))
		accum := f32frombits(binary.LittleEndian.Uint32(body[off+8:]))
		off += 12
		if blobLen < 0 || off+blobLen > len(body) {
			return nil, fmt.Errorf("wire: truncated row payload at row %d", i)
		}
		q := &qs[i]
		var err error
		if alias {
			err = q.UnmarshalBinaryAlias(body[off : off+blobLen])
		} else {
			err = q.UnmarshalBinary(body[off : off+blobLen])
		}
		if err != nil {
			return nil, fmt.Errorf("wire: row %d: %w", i, err)
		}
		off += blobLen
		c.Rows = append(c.Rows, Row{Index: idx, Accum: accum, Q: q})
	}
	if off != len(body) {
		return nil, fmt.Errorf("wire: %d trailing bytes in chunk", len(body)-off)
	}
	return c, nil
}

// TableManifest records one table's chunk objects within a checkpoint.
type TableManifest struct {
	TableID int `json:"table_id"`
	Rows    int `json:"rows"`
	Dim     int `json:"dim"`
	// StoredRows is the number of rows actually serialized (== Rows for
	// full checkpoints, the modified count for incrementals).
	StoredRows int      `json:"stored_rows"`
	ChunkKeys  []string `json:"chunk_keys"`
}

// QuantInfo summarizes the quantization applied to a checkpoint.
type QuantInfo struct {
	Method  string  `json:"method"`
	Bits    int     `json:"bits"`
	NumBins int     `json:"num_bins,omitempty"`
	Ratio   float64 `json:"ratio,omitempty"`
}

// Manifest makes a checkpoint self-describing and restorable. It is the
// last object written; its presence defines checkpoint validity.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	JobID         string `json:"job_id"`
	// ID is the checkpoint sequence number within the job.
	ID int `json:"id"`
	// Kind is "full" or "incremental".
	Kind string `json:"kind"`
	// BaseID is the full baseline this incremental builds on (one-shot /
	// intermittent), or -1 for full checkpoints.
	BaseID int `json:"base_id"`
	// ParentID is the immediately preceding checkpoint in a consecutive
	// chain, or -1.
	ParentID int `json:"parent_id"`
	// SinceBase is true for incrementals that contain every row modified
	// since BaseID (one-shot/intermittent policies): restore needs only
	// [base, this]. False means a consecutive-chain link: restore needs
	// every link from the base forward.
	SinceBase bool `json:"since_base,omitempty"`
	// Step is the number of trained batches at snapshot time.
	Step uint64 `json:"step"`
	// ReaderNextSample and ReaderBatchSize are the reader state (§4.1).
	ReaderNextSample uint64          `json:"reader_next_sample"`
	ReaderBatchSize  int             `json:"reader_batch_size"`
	Quant            QuantInfo       `json:"quant"`
	Tables           []TableManifest `json:"tables"`
	// DenseKey locates the serialized MLP state object. Empty means the
	// manifest carries no dense state (shard manifests: the coordinator
	// stores the replicated MLP state once, at the composite level).
	DenseKey string `json:"dense_key,omitempty"`
	// PayloadBytes is the total bytes of chunk + dense objects.
	PayloadBytes int64 `json:"payload_bytes"`

	// ShardCount > 0 marks a composite manifest committed by the sharded
	// coordinator. It is written only after every shard's objects —
	// chunks and the shard's own manifest — are durably stored, so its
	// presence certifies the whole sharded checkpoint (the paper's "when
	// all nodes finish storing their part ... the controller will declare
	// a new valid checkpoint"). Zero means a single-writer checkpoint.
	ShardCount int `json:"shard_count,omitempty"`
	// ShardManifestKeys locates shard s's manifest at index s.
	ShardManifestKeys []string `json:"shard_manifest_keys,omitempty"`
	// TableShards maps table ID -> owning shard. The assignment is fixed
	// for the life of a job so per-shard incremental chains stay
	// self-contained.
	TableShards map[int]int `json:"table_shards,omitempty"`
}

// Composite reports whether m is a sharded composite manifest whose
// payload lives in per-shard manifests rather than in m.Tables.
func (m *Manifest) Composite() bool { return m.ShardCount > 0 }

// CurrentFormatVersion is the manifest format this package writes.
const CurrentFormatVersion = 1

// EncodeManifest serializes the manifest as JSON.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if m.FormatVersion == 0 {
		m.FormatVersion = CurrentFormatVersion
	}
	return json.Marshal(m)
}

// DecodeManifest parses and validates a manifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wire: manifest: %w", err)
	}
	if m.FormatVersion != CurrentFormatVersion {
		return nil, fmt.Errorf("wire: unsupported manifest version %d", m.FormatVersion)
	}
	if m.Kind != KindFull.String() && m.Kind != KindIncremental.String() {
		return nil, fmt.Errorf("wire: unknown checkpoint kind %q", m.Kind)
	}
	if m.ShardCount > 0 && len(m.ShardManifestKeys) != m.ShardCount {
		return nil, fmt.Errorf("wire: composite manifest has %d shard keys, want %d",
			len(m.ShardManifestKeys), m.ShardCount)
	}
	return &m, nil
}

// Key helpers define the object layout:
//
//	<job>/ckpt/<id>/manifest
//	<job>/ckpt/<id>/dense
//	<job>/ckpt/<id>/table/<t>/chunk/<n>

// ManifestKey returns the manifest object key for checkpoint id.
func ManifestKey(jobID string, id int) string {
	return fmt.Sprintf("%s/ckpt/%08d/manifest", jobID, id)
}

// DenseKey returns the dense-state object key.
func DenseKey(jobID string, id int) string {
	return fmt.Sprintf("%s/ckpt/%08d/dense", jobID, id)
}

// ChunkKey returns the object key for chunk n of table t.
func ChunkKey(jobID string, id, table, n int) string {
	return fmt.Sprintf("%s/ckpt/%08d/table/%04d/chunk/%06d", jobID, id, table, n)
}

// CheckpointPrefix returns the key prefix of all of checkpoint id's objects.
func CheckpointPrefix(jobID string, id int) string {
	return fmt.Sprintf("%s/ckpt/%08d/", jobID, id)
}

// JobPrefix returns the key prefix of all of a job's checkpoints.
func JobPrefix(jobID string) string {
	return fmt.Sprintf("%s/ckpt/", jobID)
}

// Sharded-coordinator layout: each logical shard writer operates as an
// ordinary engine under a shard-scoped job ID, so its objects live at
//
//	<job>/shard/<s>/ckpt/<id>/...
//
// outside JobPrefix — only composite (and single-writer) manifests are
// visible to a plain manifest listing.

// ShardJobID returns the scoped job ID shard s's writer checkpoints under.
func ShardJobID(jobID string, shard int) string {
	return fmt.Sprintf("%s/shard/%04d", jobID, shard)
}

// ShardScopePrefix returns the key prefix of all shard-scoped objects of
// a job, across shards and checkpoint IDs.
func ShardScopePrefix(jobID string) string {
	return jobID + "/shard/"
}

func f32bits(v float32) uint32     { return math.Float32bits(v) }
func f32frombits(b uint32) float32 { return math.Float32frombits(b) }
