package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/quant"
)

func makeUniformChunk(t testing.TB, seed int64, rows, dim, bits int) *Chunk {
	rng := rand.New(rand.NewSource(seed))
	c := &Chunk{TableID: 5}
	var p quant.Params
	if bits == 32 {
		p = quant.Params{Method: quant.MethodNone}
	} else {
		p = quant.Params{Method: quant.MethodAsymmetric, Bits: bits}
	}
	for i := 0; i < rows; i++ {
		x := make([]float32, dim)
		for j := range x {
			x[j] = rng.Float32()*2 - 1
		}
		q, err := quant.Quantize(x, p)
		if err != nil {
			t.Fatal(err)
		}
		c.Rows = append(c.Rows, Row{Index: uint32(i * 3), Accum: rng.Float32(), Q: q})
	}
	return c
}

func chunksEqual(t *testing.T, a, b *Chunk) {
	t.Helper()
	if a.TableID != b.TableID || len(a.Rows) != len(b.Rows) {
		t.Fatalf("chunk headers differ: %d/%d vs %d/%d", a.TableID, len(a.Rows), b.TableID, len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := &a.Rows[i], &b.Rows[i]
		if ra.Index != rb.Index || ra.Accum != rb.Accum {
			t.Fatalf("row %d metadata differs", i)
		}
		va, vb := quant.Dequantize(ra.Q), quant.Dequantize(rb.Q)
		if len(va) != len(vb) {
			t.Fatalf("row %d dim differs", i)
		}
		for j := range va {
			if va[j] != vb[j] {
				t.Fatalf("row %d element %d differs: %v vs %v", i, j, va[j], vb[j])
			}
		}
	}
}

func TestCompactRoundTrip(t *testing.T) {
	for _, bits := range []int{2, 3, 4, 8, 32} {
		c := makeUniformChunk(t, int64(bits), 25, 16, bits)
		blob, err := c.EncodeCompact()
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		got, err := DecodeChunk(blob)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		chunksEqual(t, c, got)
	}
}

func TestCompactEmptyChunk(t *testing.T) {
	c := &Chunk{TableID: 7}
	blob, err := c.EncodeCompact()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChunk(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.TableID != 7 || len(got.Rows) != 0 {
		t.Fatalf("empty compact chunk = %+v", got)
	}
}

func TestCompactSmallerThanV1(t *testing.T) {
	c := makeUniformChunk(t, 1, 100, 16, 4)
	v1, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.EncodeCompact()
	if err != nil {
		t.Fatal(err)
	}
	// At dim 16 / 4 bits, v1 carries 34 metadata bytes per row vs v2's
	// 20; expect at least a 25% chunk-size reduction.
	if float64(len(v2)) > float64(len(v1))*0.75 {
		t.Fatalf("compact %d bytes vs v1 %d: insufficient saving", len(v2), len(v1))
	}
	t.Logf("v1=%dB v2=%dB (%.0f%% smaller)", len(v1), len(v2), (1-float64(len(v2))/float64(len(v1)))*100)
}

func TestCompactRejectsKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, 16)
	for i := range x {
		x[i] = rng.Float32()
	}
	q, err := quant.Quantize(x, quant.Params{Method: quant.MethodKMeans, Bits: 4, KMeansIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := &Chunk{Rows: []Row{{Index: 0, Q: q}}}
	if c.CompactEncodable() {
		t.Fatal("k-means rows should not be compact-encodable")
	}
	if _, err := c.EncodeCompact(); err == nil {
		t.Fatal("EncodeCompact should reject k-means rows")
	}
}

func TestCompactRejectsMixedBits(t *testing.T) {
	a := makeUniformChunk(t, 3, 1, 16, 4)
	b := makeUniformChunk(t, 4, 1, 16, 8)
	mixed := &Chunk{Rows: []Row{a.Rows[0], b.Rows[0]}}
	if mixed.CompactEncodable() {
		t.Fatal("mixed bit-widths should not be compact-encodable")
	}
}

func TestCompactCRCDetectsCorruption(t *testing.T) {
	blob, err := makeUniformChunk(t, 5, 20, 16, 4).EncodeCompact()
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(blob) / 2, len(blob) - 5} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0xFF
		if _, err := DecodeChunk(bad); err == nil {
			t.Fatalf("corruption at %d undetected", pos)
		}
	}
}

func TestCompactTruncation(t *testing.T) {
	blob, err := makeUniformChunk(t, 6, 10, 8, 2).EncodeCompact()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 10, len(blob) - 1} {
		if _, err := DecodeChunk(blob[:n]); err == nil {
			t.Fatalf("truncation to %d undetected", n)
		}
	}
}

func TestCompactQuickRoundTrip(t *testing.T) {
	f := func(seed int64, rowsRaw, bitsIdx uint8) bool {
		rows := int(rowsRaw) % 40
		bits := []int{2, 3, 4, 8, 32}[int(bitsIdx)%5]
		c := makeUniformChunk(t, seed, rows, 8, bits)
		blob, err := c.EncodeCompact()
		if err != nil {
			return false
		}
		got, err := DecodeChunk(blob)
		if err != nil {
			return false
		}
		if len(got.Rows) != rows {
			return false
		}
		for i := range c.Rows {
			va, vb := quant.Dequantize(c.Rows[i].Q), quant.Dequantize(got.Rows[i].Q)
			for j := range va {
				if va[j] != vb[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompactEncode(b *testing.B) {
	c := makeUniformChunk(b, 1, 256, 16, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeCompact(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompactDecode(b *testing.B) {
	blob, err := makeUniformChunk(b, 1, 256, 16, 4).EncodeCompact()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeChunk(blob); err != nil {
			b.Fatal(err)
		}
	}
}
