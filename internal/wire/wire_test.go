package wire

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/quant"
)

func makeChunk(t testing.TB, seed int64, rows int) *Chunk {
	rng := rand.New(rand.NewSource(seed))
	c := &Chunk{TableID: 3}
	for i := 0; i < rows; i++ {
		x := make([]float32, 16)
		for j := range x {
			x[j] = rng.Float32()*2 - 1
		}
		q, err := quant.Quantize(x, quant.Params{Method: quant.MethodAsymmetric, Bits: 4})
		if err != nil {
			t.Fatal(err)
		}
		c.Rows = append(c.Rows, Row{Index: uint32(i * 7), Accum: rng.Float32(), Q: q})
	}
	return c
}

func TestChunkRoundTrip(t *testing.T) {
	c := makeChunk(t, 1, 20)
	blob, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChunk(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.TableID != c.TableID || len(got.Rows) != len(c.Rows) {
		t.Fatalf("chunk header mismatch: %+v", got)
	}
	for i := range c.Rows {
		if got.Rows[i].Index != c.Rows[i].Index {
			t.Fatalf("row %d index mismatch", i)
		}
		if got.Rows[i].Accum != c.Rows[i].Accum {
			t.Fatalf("row %d accum mismatch", i)
		}
		a := quant.Dequantize(c.Rows[i].Q)
		b := quant.Dequantize(got.Rows[i].Q)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d element %d mismatch", i, j)
			}
		}
	}
}

func TestChunkEmptyRoundTrip(t *testing.T) {
	c := &Chunk{TableID: 9}
	blob, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChunk(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.TableID != 9 || len(got.Rows) != 0 {
		t.Fatalf("empty chunk mismatch: %+v", got)
	}
}

func TestChunkNilQVectorErrors(t *testing.T) {
	c := &Chunk{Rows: []Row{{Index: 1}}}
	if _, err := c.Encode(); err == nil {
		t.Fatal("nil QVector should error")
	}
}

func TestChunkCRCDetectsCorruption(t *testing.T) {
	blob, err := makeChunk(t, 2, 10).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(blob) / 2, len(blob) - 5} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0xFF
		if _, err := DecodeChunk(bad); err == nil {
			t.Fatalf("corruption at %d not detected", pos)
		}
	}
}

func TestChunkTruncation(t *testing.T) {
	blob, err := makeChunk(t, 3, 5).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 4, 15, len(blob) - 1} {
		if _, err := DecodeChunk(blob[:n]); err == nil {
			t.Fatalf("truncation to %d not detected", n)
		}
	}
}

func TestChunkQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw) % 30
		c := makeChunk(t, seed, n)
		blob, err := c.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeChunk(blob)
		if err != nil {
			return false
		}
		return len(got.Rows) == n && got.TableID == c.TableID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		JobID:            "job42",
		ID:               7,
		Kind:             KindIncremental.String(),
		BaseID:           3,
		ParentID:         6,
		Step:             1234,
		ReaderNextSample: 99999,
		ReaderBatchSize:  512,
		Quant:            QuantInfo{Method: "adaptive-asymmetric", Bits: 4, NumBins: 45, Ratio: 1},
		Tables: []TableManifest{
			{TableID: 0, Rows: 1000, Dim: 16, StoredRows: 120, ChunkKeys: []string{"a", "b"}},
		},
		DenseKey:     "job42/ckpt/00000007/dense",
		PayloadBytes: 123456,
	}
	blob, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.BaseID != 3 || got.ParentID != 6 || got.Step != 1234 {
		t.Fatalf("manifest mismatch: %+v", got)
	}
	if got.FormatVersion != CurrentFormatVersion {
		t.Fatalf("version = %d", got.FormatVersion)
	}
	if len(got.Tables) != 1 || got.Tables[0].StoredRows != 120 {
		t.Fatalf("tables = %+v", got.Tables)
	}
}

func TestManifestRejectsBadVersion(t *testing.T) {
	if _, err := DecodeManifest([]byte(`{"format_version":99,"kind":"full"}`)); err == nil {
		t.Fatal("bad version should error")
	}
}

func TestManifestRejectsBadKind(t *testing.T) {
	if _, err := DecodeManifest([]byte(`{"format_version":1,"kind":"weird"}`)); err == nil {
		t.Fatal("bad kind should error")
	}
}

func TestManifestRejectsGarbage(t *testing.T) {
	if _, err := DecodeManifest([]byte("not json")); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestKindString(t *testing.T) {
	if KindFull.String() != "full" || KindIncremental.String() != "incremental" {
		t.Fatal("kind names wrong")
	}
}

func TestKeyLayout(t *testing.T) {
	job := "jobX"
	mk := ManifestKey(job, 3)
	dk := DenseKey(job, 3)
	ck := ChunkKey(job, 3, 1, 2)
	prefix := CheckpointPrefix(job, 3)
	for name, k := range map[string]string{"manifest": mk, "dense": dk, "chunk": ck} {
		if !strings.HasPrefix(k, prefix) {
			t.Fatalf("%s key %q lacks prefix %q", name, k, prefix)
		}
	}
	if !strings.HasPrefix(prefix, JobPrefix(job)) {
		t.Fatal("checkpoint prefix should nest under job prefix")
	}
	// Keys sort by checkpoint ID because of zero-padding.
	if !(ManifestKey(job, 9) < ManifestKey(job, 10)) {
		t.Fatal("keys must sort numerically")
	}
}

func BenchmarkChunkEncode(b *testing.B) {
	c := makeChunk(b, 1, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkDecode(b *testing.B) {
	blob, err := makeChunk(b, 1, 256).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeChunk(blob); err != nil {
			b.Fatal(err)
		}
	}
}
