package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/quant"
)

// The golden-bytes differential tests pin the v1 ("CKP1") and compact
// ("CKP2") chunk layouts to byte-identical output across encoder
// rewrites: testdata/*.bin was captured from the original per-row
// MarshalBinary encoder, and every future encoder must reproduce it
// exactly. That proves both directions of compatibility at once —
// checkpoints written before an encoder change restore bit-identically
// after it, and checkpoints written after decode under the old readers.
//
// Regenerate (only when the wire format intentionally changes) with:
//
//	go test ./internal/wire -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite golden chunk testdata")

// goldenVector derives a deterministic embedding-like vector from integer
// arithmetic only, so the quantizer input is identical on every platform
// and Go version. Values cluster near zero with periodic outliers, the
// shape that exercises the adaptive range search.
func goldenVector(row, dim int) []float32 {
	x := make([]float32, dim)
	for j := range x {
		v := float32((row*31+j*7)%97)/97 - 0.5
		if (row+j)%13 == 0 {
			v *= 4 // outlier
		}
		x[j] = v * 0.1
	}
	return x
}

// goldenChunk builds a chunk of nRows quantized golden vectors.
func goldenChunk(t *testing.T, tableID uint32, nRows, dim int, p quant.Params) *Chunk {
	t.Helper()
	c := &Chunk{TableID: tableID}
	for r := 0; r < nRows; r++ {
		q, err := quant.Quantize(goldenVector(r, dim), p)
		if err != nil {
			t.Fatalf("quantize row %d: %v", r, err)
		}
		c.Rows = append(c.Rows, Row{
			Index: uint32(r * 3),
			Accum: float32(r) * 0.125,
			Q:     q,
		})
	}
	return c
}

type goldenCase struct {
	name    string
	nRows   int
	dim     int
	params  quant.Params
	compact bool
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"v1_adaptive4", 8, 16, quant.Params{Method: quant.MethodAdaptive, Bits: 4, NumBins: 45, Ratio: 1}, false},
		{"v1_sym3", 5, 10, quant.Params{Method: quant.MethodSymmetric, Bits: 3}, false},
		{"v1_asym2", 6, 16, quant.Params{Method: quant.MethodAsymmetric, Bits: 2}, false},
		{"v1_kmeans2", 4, 8, quant.Params{Method: quant.MethodKMeans, Bits: 2, KMeansIters: 5}, false},
		{"v1_none", 4, 16, quant.Params{Method: quant.MethodNone}, false},
		{"v1_empty", 0, 16, quant.Params{Method: quant.MethodNone}, false},
		{"ckp2_asym1", 8, 16, quant.Params{Method: quant.MethodAsymmetric, Bits: 1}, true},
		{"ckp2_asym4", 8, 16, quant.Params{Method: quant.MethodAsymmetric, Bits: 4}, true},
		{"ckp2_asym8", 8, 16, quant.Params{Method: quant.MethodAsymmetric, Bits: 8}, true},
		{"ckp2_adaptive3", 6, 10, quant.Params{Method: quant.MethodAdaptive, Bits: 3, NumBins: 25, Ratio: 1}, true},
		{"ckp2_none", 4, 16, quant.Params{Method: quant.MethodNone}, true},
		{"ckp2_empty", 0, 16, quant.Params{Method: quant.MethodNone}, true},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".bin")
}

func encodeCase(t *testing.T, gc goldenCase, c *Chunk) []byte {
	t.Helper()
	var blob []byte
	var err error
	if gc.compact {
		blob, err = c.EncodeCompact()
	} else {
		blob, err = c.Encode()
	}
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return blob
}

// TestGoldenEncodeBytes asserts the encoders reproduce the captured
// byte streams exactly.
func TestGoldenEncodeBytes(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			c := goldenChunk(t, 7, gc.nRows, gc.dim, gc.params)
			blob := encodeCase(t, gc, c)
			path := goldenPath(gc.name)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if !bytes.Equal(blob, want) {
				t.Fatalf("%s: encoder output diverged from golden bytes (%d vs %d bytes)",
					gc.name, len(blob), len(want))
			}
		})
	}
}

// TestGoldenDecode asserts that chunks captured from the original encoder
// still decode, field-for-field, to the same logical rows — i.e. old
// checkpoints keep restoring bit-identically.
func TestGoldenDecode(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			blob, err := os.ReadFile(goldenPath(gc.name))
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			got, err := DecodeChunk(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			want := goldenChunk(t, 7, gc.nRows, gc.dim, gc.params)
			if got.TableID != want.TableID || len(got.Rows) != len(want.Rows) {
				t.Fatalf("chunk shape: got table=%d rows=%d, want table=%d rows=%d",
					got.TableID, len(got.Rows), want.TableID, len(want.Rows))
			}
			for i := range want.Rows {
				g, w := got.Rows[i], want.Rows[i]
				if g.Index != w.Index || g.Accum != w.Accum {
					t.Fatalf("row %d header: got (%d, %v), want (%d, %v)",
						i, g.Index, g.Accum, w.Index, w.Accum)
				}
				if g.Q.Bits != w.Q.Bits || g.Q.N != w.Q.N || g.Q.Lo != w.Q.Lo || g.Q.Hi != w.Q.Hi {
					t.Fatalf("row %d qmeta: got %+v, want %+v", i, g.Q, w.Q)
				}
				if !bytes.Equal(g.Q.Codes, w.Q.Codes) {
					t.Fatalf("row %d codes differ", i)
				}
				if len(g.Q.Codebook) != len(w.Q.Codebook) {
					t.Fatalf("row %d codebook length %d != %d", i, len(g.Q.Codebook), len(w.Q.Codebook))
				}
				for j := range w.Q.Codebook {
					if g.Q.Codebook[j] != w.Q.Codebook[j] {
						t.Fatalf("row %d codebook[%d] %v != %v", i, j, g.Q.Codebook[j], w.Q.Codebook[j])
					}
				}
				gv, wv := quant.Dequantize(g.Q), quant.Dequantize(w.Q)
				for j := range wv {
					if gv[j] != wv[j] {
						t.Fatalf("row %d element %d: %v != %v", i, j, gv[j], wv[j])
					}
				}
			}
			// Re-encoding the decoded chunk must reproduce the stored bytes:
			// a checkpoint surviving a decode/encode cycle is bit-stable.
			re := encodeCase(t, gc, got)
			if !bytes.Equal(re, blob) {
				t.Fatalf("%s: re-encode of decoded chunk diverged", gc.name)
			}
		})
	}
}

// TestGoldenCoverage sanity-checks that the golden corpus spans every
// packing fast path (1, 2, 4, 8 bits), the general odd-width path, raw
// fp32, k-means codebooks, and both chunk layouts.
func TestGoldenCoverage(t *testing.T) {
	bitsSeen := map[int]bool{}
	layouts := map[bool]bool{}
	for _, gc := range goldenCases() {
		bits := gc.params.Bits
		if gc.params.Method == quant.MethodNone {
			bits = 32
		}
		bitsSeen[bits] = true
		layouts[gc.compact] = true
	}
	for _, b := range []int{1, 2, 3, 4, 8, 32} {
		if !bitsSeen[b] {
			t.Errorf("no golden case covers %d-bit packing", b)
		}
	}
	if !layouts[false] || !layouts[true] {
		t.Error("golden corpus must cover both v1 and CKP2 layouts")
	}
	if len(goldenCases()) < 10 {
		t.Errorf("expected >= 10 golden cases, have %d", len(goldenCases()))
	}
}
