package wire

import (
	"bytes"
	"testing"

	"repro/internal/quant"
)

// TestAppendToMatchesEncode checks that appending onto a non-empty,
// reused buffer yields exactly the bytes Encode produces — the CRC must
// cover only the chunk's own bytes, not the prefix.
func TestAppendToMatchesEncode(t *testing.T) {
	c := goldenChunk(t, 3, 6, 16, quant.Params{Method: quant.MethodAsymmetric, Bits: 4})
	want, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("reused-buffer-prefix")
	got, err := c.AppendTo(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(prefix)], prefix) {
		t.Fatal("AppendTo clobbered the prefix")
	}
	if !bytes.Equal(got[len(prefix):], want) {
		t.Fatal("AppendTo suffix differs from Encode output")
	}
	wantC, err := c.EncodeCompact()
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := c.AppendCompactTo(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC[len(prefix):], wantC) {
		t.Fatal("AppendCompactTo suffix differs from EncodeCompact output")
	}
	// Exact-size accounting keeps pooled buffers from over-growing.
	if len(want) != c.EncodedLen() {
		t.Fatalf("EncodedLen %d != encoded size %d", c.EncodedLen(), len(want))
	}
	if len(wantC) != c.CompactEncodedLen() {
		t.Fatalf("CompactEncodedLen %d != encoded size %d", c.CompactEncodedLen(), len(wantC))
	}
}

// TestChunkBufPool exercises the get/put cycle and the reuse contract.
func TestChunkBufPool(t *testing.T) {
	buf := GetChunkBuf()
	if len(*buf) != 0 {
		t.Fatalf("fresh buffer has length %d", len(*buf))
	}
	*buf = append(*buf, []byte("payload")...)
	PutChunkBuf(buf)
	again := GetChunkBuf()
	if len(*again) != 0 {
		t.Fatal("recycled buffer not reset to zero length")
	}
	PutChunkBuf(again)
	PutChunkBuf(nil) // must not panic

	// Oversized buffers are dropped, not pooled.
	big := make([]byte, 0, maxPooledChunkBuf+1)
	PutChunkBuf(&big)
}

// TestEncodePooledAllocFree confirms encoding into a warm pooled buffer
// does not allocate.
func TestEncodePooledAllocFree(t *testing.T) {
	c := goldenChunk(t, 3, 32, 16, quant.Params{Method: quant.MethodAsymmetric, Bits: 4})
	buf := GetChunkBuf()
	defer PutChunkBuf(buf)
	var err error
	if *buf, err = c.AppendCompactTo((*buf)[:0]); err != nil { // warm capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		*buf, err = c.AppendCompactTo((*buf)[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("compact encode into warm buffer: %v allocs, want 0", allocs)
	}
	if *buf, err = c.AppendTo((*buf)[:0]); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		*buf, err = c.AppendTo((*buf)[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("v1 encode into warm buffer: %v allocs, want 0", allocs)
	}
}
