package wire

import "sync"

// Chunk encode buffers are pooled so the steady-state encode→upload
// pipeline allocates nothing per chunk: an encoder worker takes a
// buffer, appends the chunk into it, hands it to an uploader, and the
// uploader returns it after Store.Put. Both store implementations
// (MemStore copies on Put; the TCP client writes the value to the socket
// before returning) release the value by the time Put returns, so
// recycling there is safe.

// maxPooledChunkBuf bounds the capacity of buffers kept in the pool, so
// one pathologically large chunk doesn't pin memory forever.
const maxPooledChunkBuf = 8 << 20

var chunkBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// GetChunkBuf returns a zero-length reusable encode buffer. Append into
// it (updating *buf) and release it with PutChunkBuf when the contents
// are no longer referenced.
func GetChunkBuf() *[]byte {
	b := chunkBufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutChunkBuf returns a buffer obtained from GetChunkBuf to the pool.
// The caller must not touch *buf afterwards.
func PutChunkBuf(buf *[]byte) {
	if buf == nil || cap(*buf) > maxPooledChunkBuf {
		return
	}
	chunkBufPool.Put(buf)
}
