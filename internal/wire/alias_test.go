package wire

import (
	"bytes"
	"testing"

	"repro/internal/quant"
)

// aliasTestChunks builds one v1 and one CKP2 chunk blob plus the expected
// decoded rows.
func aliasTestChunks(t *testing.T) map[string][]byte {
	t.Helper()
	p := quant.Params{Method: quant.MethodAsymmetric, Bits: 4}
	c := goldenChunk(t, 3, 6, 16, p)
	v1, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ckp2, err := c.EncodeCompact()
	if err != nil {
		t.Fatal(err)
	}
	kc := goldenChunk(t, 3, 4, 8, quant.Params{Method: quant.MethodKMeans, Bits: 2, KMeansIters: 5})
	kv1, err := kc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{"v1": v1, "ckp2": ckp2, "v1_kmeans": kv1}
}

func cloneRows(c *Chunk) []Row {
	out := make([]Row, len(c.Rows))
	for i, r := range c.Rows {
		q := *r.Q
		q.Codes = append([]byte(nil), r.Q.Codes...)
		q.Codebook = append([]float32(nil), r.Q.Codebook...)
		out[i] = Row{Index: r.Index, Accum: r.Accum, Q: &q}
	}
	return out
}

// TestDecodeChunkCopyUnaffectedByBlobMutation pins DecodeChunk's
// ownership contract: a caller that requested a copy must not observe
// later mutations of the fetched blob.
func TestDecodeChunkCopyUnaffectedByBlobMutation(t *testing.T) {
	for name, blob := range aliasTestChunks(t) {
		t.Run(name, func(t *testing.T) {
			c, err := DecodeChunk(blob)
			if err != nil {
				t.Fatal(err)
			}
			want := cloneRows(c)
			for i := range blob {
				blob[i] ^= 0xff
			}
			for i := range want {
				if !bytes.Equal(c.Rows[i].Q.Codes, want[i].Q.Codes) {
					t.Fatalf("row %d: copy-decoded codes changed when the blob was mutated", i)
				}
			}
		})
	}
}

// TestDecodeChunkAliasObservesBlob pins the documented aliasing lifetime:
// the alias decode's row codes are views into the blob, so mutating the
// blob is observed — the reason the contract restricts it to
// function-local blobs consumed before they go out of scope.
func TestDecodeChunkAliasObservesBlob(t *testing.T) {
	for name, blob := range aliasTestChunks(t) {
		t.Run(name, func(t *testing.T) {
			c, err := DecodeChunkAlias(blob)
			if err != nil {
				t.Fatal(err)
			}
			before := cloneRows(c)
			for i := range blob {
				blob[i] ^= 0xff
			}
			saw := false
			for i := range before {
				if !bytes.Equal(c.Rows[i].Q.Codes, before[i].Q.Codes) {
					saw = true
				}
			}
			if !saw {
				t.Fatal("alias decode did not observe blob mutation — rows are not aliased")
			}
		})
	}
}

// TestDecodeChunkAliasMatchesCopy: modulo ownership, the two decodes are
// the same parse.
func TestDecodeChunkAliasMatchesCopy(t *testing.T) {
	for name, blob := range aliasTestChunks(t) {
		t.Run(name, func(t *testing.T) {
			cp, err := DecodeChunk(blob)
			if err != nil {
				t.Fatal(err)
			}
			al, err := DecodeChunkAlias(append([]byte(nil), blob...))
			if err != nil {
				t.Fatal(err)
			}
			if cp.TableID != al.TableID || len(cp.Rows) != len(al.Rows) {
				t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)",
					cp.TableID, len(cp.Rows), al.TableID, len(al.Rows))
			}
			for i := range cp.Rows {
				a, b := cp.Rows[i], al.Rows[i]
				if a.Index != b.Index || a.Accum != b.Accum {
					t.Fatalf("row %d header mismatch", i)
				}
				if a.Q.Bits != b.Q.Bits || a.Q.N != b.Q.N || a.Q.Lo != b.Q.Lo || a.Q.Hi != b.Q.Hi {
					t.Fatalf("row %d qmeta mismatch: %+v vs %+v", i, a.Q, b.Q)
				}
				if !bytes.Equal(a.Q.Codes, b.Q.Codes) {
					t.Fatalf("row %d codes mismatch", i)
				}
				if len(a.Q.Codebook) != len(b.Q.Codebook) {
					t.Fatalf("row %d codebook mismatch", i)
				}
			}
		})
	}
}

// TestDecodeChunkAliasCapacityClamped: appending to an aliased row's
// Codes must never scribble into the blob bytes of the next row.
func TestDecodeChunkAliasCapacityClamped(t *testing.T) {
	blob := aliasTestChunks(t)["v1"]
	c, err := DecodeChunkAlias(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) < 2 {
		t.Fatal("need at least 2 rows")
	}
	next := append([]byte(nil), c.Rows[1].Q.Codes...)
	r0 := c.Rows[0].Q
	r0.Codes = append(r0.Codes, 0xAA, 0xBB) // must reallocate, not overwrite
	if !bytes.Equal(c.Rows[1].Q.Codes, next) {
		t.Fatal("append to aliased row codes scribbled into the next row's bytes")
	}
}
