package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/quant"
)

// Compact chunk format ("CKP2") — the metadata optimization the paper
// leaves as future work (§6.3.2: savings "are not linearly proportional to
// the chosen quantization bit-width due to the metadata structure").
//
// The v1 format stores a full QVector per row (14-byte header + 8-byte
// range + codes) plus a 12-byte row header. When every row in a chunk
// shares the same uniform method, bit-width and dimension — which is
// always true for the engine's uniform quantizers — the shared fields can
// be hoisted into the chunk header:
//
//	u32 magic "CKP2" | u32 tableID | u32 rowCount | u8 bits | u8 flags |
//	u16 reserved | u32 dim |
//	rowCount * u32 index |
//	rowCount * f32 accum |
//	rowCount * (f32 lo, f32 hi)      (omitted when bits == 32)
//	packed codes, rowCount*dim*bits bits, byte-aligned per row |
//	u32 CRC32-C
//
// Per dim-16 4-bit row this is 20 bytes of metadata + 8 code bytes
// against v1's 34 + 8 — a 1.5x smaller incremental checkpoint. K-means
// rows (per-row codebooks) do not fit this layout and must use v1.
const compactMagic = 0x434B5032 // "CKP2"

const compactFlagHasRange = 1 << 0

// CompactEncodable reports whether the chunk can use the compact layout:
// all rows quantized with the same uniform bit-width and dimension, and no
// codebooks.
func (c *Chunk) CompactEncodable() bool {
	if len(c.Rows) == 0 {
		return true
	}
	first := c.Rows[0].Q
	if first == nil || first.Codebook != nil {
		return false
	}
	for i := range c.Rows {
		q := c.Rows[i].Q
		if q == nil || q.Codebook != nil || q.Bits != first.Bits || q.N != first.N {
			return false
		}
	}
	return true
}

// CompactEncodedLen returns the exact CKP2 encoding size of the chunk,
// assuming it is compact-encodable.
func (c *Chunk) CompactEncodedLen() int {
	bits, dim := 32, 0
	if len(c.Rows) > 0 && c.Rows[0].Q != nil {
		bits = c.Rows[0].Q.Bits
		dim = c.Rows[0].Q.N
	}
	size := 20 + len(c.Rows)*(4+4+packedCodeLen(dim, bits)) + 4
	if bits != 32 {
		size += len(c.Rows) * 8
	}
	return size
}

// EncodeCompact serializes the chunk in the CKP2 layout. It returns an
// error if the chunk mixes methods (check CompactEncodable first).
func (c *Chunk) EncodeCompact() ([]byte, error) {
	return c.AppendCompactTo(make([]byte, 0, c.CompactEncodedLen()))
}

// AppendCompactTo appends the chunk's CKP2 encoding to dst and returns
// the extended slice. Like AppendTo, it allocates nothing when dst has
// capacity and emits bytes identical to the original EncodeCompact.
func (c *Chunk) AppendCompactTo(dst []byte) ([]byte, error) {
	if !c.CompactEncodable() {
		return dst, fmt.Errorf("wire: chunk not compact-encodable (mixed or codebook rows)")
	}
	bits, dim := 32, 0
	if len(c.Rows) > 0 {
		bits = c.Rows[0].Q.Bits
		dim = c.Rows[0].Q.N
	}
	hasRange := bits != 32
	rowCodes := packedCodeLen(dim, bits)
	base := len(dst)
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, compactMagic)
	dst = le.AppendUint32(dst, c.TableID)
	dst = le.AppendUint32(dst, uint32(len(c.Rows)))
	var flags byte
	if hasRange {
		flags |= compactFlagHasRange
	}
	dst = append(dst, byte(bits), flags, 0, 0)
	dst = le.AppendUint32(dst, uint32(dim))
	for i := range c.Rows {
		dst = le.AppendUint32(dst, c.Rows[i].Index)
	}
	for i := range c.Rows {
		dst = le.AppendUint32(dst, math.Float32bits(c.Rows[i].Accum))
	}
	if hasRange {
		for i := range c.Rows {
			dst = le.AppendUint32(dst, math.Float32bits(c.Rows[i].Q.Lo))
			dst = le.AppendUint32(dst, math.Float32bits(c.Rows[i].Q.Hi))
		}
	}
	for i := range c.Rows {
		q := c.Rows[i].Q
		if len(q.Codes) != rowCodes {
			return dst, fmt.Errorf("wire: row %d codes %d bytes, want %d", i, len(q.Codes), rowCodes)
		}
		dst = append(dst, q.Codes...)
	}
	dst = le.AppendUint32(dst, crc32.Checksum(dst[base:], crcTable))
	return dst, nil
}

// decodeCompact parses a CKP2 chunk (CRC already verified, magic peeked).
// With alias set, row codes slice straight into body instead of a copied
// backing array — see DecodeChunkAlias for the lifetime contract.
func decodeCompact(body []byte, alias bool) (*Chunk, error) {
	if len(body) < 20 {
		return nil, fmt.Errorf("wire: compact chunk header truncated")
	}
	c := &Chunk{TableID: binary.LittleEndian.Uint32(body[4:])}
	n := int(binary.LittleEndian.Uint32(body[8:]))
	bits := int(body[12])
	flags := body[13]
	dim := int(binary.LittleEndian.Uint32(body[16:]))
	hasRange := flags&compactFlagHasRange != 0
	if bits < 1 || (bits > 8 && bits != 32) {
		return nil, fmt.Errorf("wire: compact chunk invalid bits %d", bits)
	}
	if n < 0 || dim < 0 {
		return nil, fmt.Errorf("wire: compact chunk negative counts")
	}
	rowCodes := packedCodeLen(dim, bits)
	need := 20 + n*4 + n*4 + n*rowCodes
	if hasRange {
		need += n * 8
	}
	if len(body) != need {
		return nil, fmt.Errorf("wire: compact chunk %d bytes, want %d", len(body), need)
	}
	// The layout is columnar; decode with fixed per-column offsets and
	// batch the allocations: one Row slice, one QVector slice, and one
	// contiguous backing array for all row codes.
	idxOff := 20
	accumOff := idxOff + 4*n
	rangeOff := accumOff + 4*n
	codesOff := rangeOff
	if hasRange {
		codesOff += 8 * n
	}
	c.Rows = make([]Row, n)
	qs := make([]quant.QVector, n)
	codesAll := body[codesOff : codesOff+n*rowCodes]
	if !alias {
		codesAll = append([]byte(nil), codesAll...)
	}
	for i := 0; i < n; i++ {
		q := &qs[i]
		q.Bits = bits
		q.N = dim
		if hasRange {
			q.Lo = math.Float32frombits(binary.LittleEndian.Uint32(body[rangeOff+8*i:]))
			q.Hi = math.Float32frombits(binary.LittleEndian.Uint32(body[rangeOff+8*i+4:]))
		}
		q.Codes = codesAll[i*rowCodes : (i+1)*rowCodes : (i+1)*rowCodes]
		c.Rows[i] = Row{
			Index: binary.LittleEndian.Uint32(body[idxOff+4*i:]),
			Accum: math.Float32frombits(binary.LittleEndian.Uint32(body[accumOff+4*i:])),
			Q:     q,
		}
	}
	return c, nil
}

// packedCodeLen returns the per-row byte length of dim codes of the given
// width, byte-aligned per row (matching quant's packing; 32-bit raw rows
// are dim*4 bytes).
func packedCodeLen(dim, bits int) int {
	return (dim*bits + 7) / 8
}
