package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Lookup frames are the read plane's payload encoding: a serving
// replica answers embedding lookups over framed TCP (internal/serve
// owns the connection framing; these are the body formats). All
// integers little-endian.
//
//	Request:  u32 magic "LKP1" | u32 tableID | u32 n | n × u32 index
//	Response: u32 magic "LKR1" | i64 ckptID | u64 step | u32 dim |
//	          u32 n | n*dim × f32 vectors (row-major)
const (
	lookupReqMagic  = 0x4C4B5031 // "LKP1"
	lookupRespMagic = 0x4C4B5231 // "LKR1"
)

// maxLookupIndices bounds one lookup batch; far above any real
// inference batch, small enough to reject garbage frames cheaply.
const maxLookupIndices = 1 << 20

// LookupRequest asks a serving replica for a batch of embedding rows
// from one table.
type LookupRequest struct {
	TableID uint32
	Indices []uint32
}

// EncodeLookupRequest serializes a lookup request.
func EncodeLookupRequest(req *LookupRequest) ([]byte, error) {
	if len(req.Indices) == 0 {
		return nil, fmt.Errorf("wire: empty lookup")
	}
	if len(req.Indices) > maxLookupIndices {
		return nil, fmt.Errorf("wire: lookup batch %d exceeds limit %d", len(req.Indices), maxLookupIndices)
	}
	buf := make([]byte, 12+4*len(req.Indices))
	binary.LittleEndian.PutUint32(buf, lookupReqMagic)
	binary.LittleEndian.PutUint32(buf[4:], req.TableID)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(req.Indices)))
	for i, idx := range req.Indices {
		binary.LittleEndian.PutUint32(buf[12+4*i:], idx)
	}
	return buf, nil
}

// DecodeLookupRequest parses a lookup request.
func DecodeLookupRequest(blob []byte) (*LookupRequest, error) {
	if len(blob) < 12 {
		return nil, fmt.Errorf("wire: lookup request too short: %d bytes", len(blob))
	}
	if m := binary.LittleEndian.Uint32(blob); m != lookupReqMagic {
		return nil, fmt.Errorf("wire: bad lookup request magic 0x%08x", m)
	}
	n := binary.LittleEndian.Uint32(blob[8:])
	if n == 0 || n > maxLookupIndices {
		return nil, fmt.Errorf("wire: lookup batch %d out of range", n)
	}
	if uint32(len(blob)) != 12+4*n {
		return nil, fmt.Errorf("wire: lookup request length %d != %d", len(blob), 12+4*n)
	}
	req := &LookupRequest{
		TableID: binary.LittleEndian.Uint32(blob[4:]),
		Indices: make([]uint32, n),
	}
	for i := range req.Indices {
		req.Indices[i] = binary.LittleEndian.Uint32(blob[12+4*i:])
	}
	return req, nil
}

// LookupResponse carries the requested embedding vectors plus the
// identity of the checkpoint they were served from — every vector in
// one response comes from the same committed checkpoint (the replica's
// atomic table-set swap guarantees it), so CkptID/Step let callers
// reason about staleness and tests assert the no-torn-read invariant.
type LookupResponse struct {
	// CkptID is the composite checkpoint the vectors were read from.
	CkptID int
	// Step is that checkpoint's consistent-cut training step.
	Step uint64
	// Dim is the embedding dimension; Vectors holds len(Vectors)/Dim
	// rows, row-major, in request order.
	Dim     uint32
	Vectors []float32
}

// EncodeLookupResponse serializes a lookup response.
func EncodeLookupResponse(resp *LookupResponse) ([]byte, error) {
	if resp.Dim == 0 || len(resp.Vectors)%int(resp.Dim) != 0 {
		return nil, fmt.Errorf("wire: lookup response: %d floats not a multiple of dim %d", len(resp.Vectors), resp.Dim)
	}
	n := len(resp.Vectors) / int(resp.Dim)
	if n > maxLookupIndices {
		return nil, fmt.Errorf("wire: lookup response %d rows exceeds limit", n)
	}
	buf := make([]byte, 28+4*len(resp.Vectors))
	binary.LittleEndian.PutUint32(buf, lookupRespMagic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(int64(resp.CkptID)))
	binary.LittleEndian.PutUint64(buf[12:], resp.Step)
	binary.LittleEndian.PutUint32(buf[20:], resp.Dim)
	binary.LittleEndian.PutUint32(buf[24:], uint32(n))
	for i, f := range resp.Vectors {
		binary.LittleEndian.PutUint32(buf[28+4*i:], math.Float32bits(f))
	}
	return buf, nil
}

// DecodeLookupResponse parses a lookup response.
func DecodeLookupResponse(blob []byte) (*LookupResponse, error) {
	if len(blob) < 28 {
		return nil, fmt.Errorf("wire: lookup response too short: %d bytes", len(blob))
	}
	if m := binary.LittleEndian.Uint32(blob); m != lookupRespMagic {
		return nil, fmt.Errorf("wire: bad lookup response magic 0x%08x", m)
	}
	dim := binary.LittleEndian.Uint32(blob[20:])
	n := binary.LittleEndian.Uint32(blob[24:])
	if dim == 0 || n == 0 || n > maxLookupIndices {
		return nil, fmt.Errorf("wire: lookup response shape %dx%d out of range", n, dim)
	}
	total := uint64(n) * uint64(dim)
	if uint64(len(blob)) != 28+4*total {
		return nil, fmt.Errorf("wire: lookup response length %d != %d", len(blob), 28+4*total)
	}
	resp := &LookupResponse{
		CkptID:  int(int64(binary.LittleEndian.Uint64(blob[4:]))),
		Step:    binary.LittleEndian.Uint64(blob[12:]),
		Dim:     dim,
		Vectors: make([]float32, total),
	}
	for i := range resp.Vectors {
		resp.Vectors[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[28+4*i:]))
	}
	return resp, nil
}
