package objstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustDisk(t *testing.T, cfg DiskConfig) *DiskStore {
	t.Helper()
	s, err := NewDiskStore(cfg)
	if err != nil {
		t.Fatalf("NewDiskStore: %v", err)
	}
	return s
}

// TestDiskStoreReopen: a clean Close/reopen cycle preserves exactly the
// live keys, including overwrites and deletes.
func TestDiskStoreReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := mustDisk(t, DiskConfig{Dir: dir})
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("obj/%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, 100+i)
		if err := s.Put(ctx, k, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = v
	}
	// Overwrite a few, delete a few.
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("obj/%03d", i)
		v := []byte("overwritten-" + k)
		if err := s.Put(ctx, k, v); err != nil {
			t.Fatalf("overwrite: %v", err)
		}
		want[k] = v
	}
	for i := 15; i < 20; i++ {
		k := fmt.Sprintf("obj/%03d", i)
		if err := s.Delete(ctx, k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		delete(want, k)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustDisk(t, DiskConfig{Dir: dir})
	defer r.Close()
	if got := int(r.Usage().Objects); got != len(want) {
		t.Fatalf("reopened Objects = %d, want %d", got, len(want))
	}
	for k, v := range want {
		got, err := r.Get(ctx, k)
		if err != nil {
			t.Fatalf("Get(%s) after reopen: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get(%s) = %d bytes, want %d (not bit-identical)", k, len(got), len(v))
		}
	}
	for i := 15; i < 20; i++ {
		k := fmt.Sprintf("obj/%03d", i)
		if _, err := r.Get(ctx, k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %s resurrected after reopen: %v", k, err)
		}
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files in %s (%v)", dir, err)
	}
	last := matches[0]
	for _, m := range matches[1:] {
		if m > last {
			last = m
		}
	}
	return last
}

// TestDiskStoreTornTail is the deterministic kill -9-mid-Put test from
// the acceptance criteria: a partial record at the log tail — torn
// header, torn body, or corrupted bytes — is truncated by the recovery
// scan, every earlier acked write survives bit-identically, and the
// torn key is simply absent (never a partial value).
func TestDiskStoreTornTail(t *testing.T) {
	tears := []struct {
		name string
		tear func(t *testing.T, path string, tailStart int64)
	}{
		{"torn_header", func(t *testing.T, path string, tailStart int64) {
			// Only 7 of the 13 header bytes made it out.
			if err := os.Truncate(path, tailStart+7); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn_body", func(t *testing.T, path string, tailStart int64) {
			// Header complete, body half-written.
			if err := os.Truncate(path, tailStart+recHeaderLen+10); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit_rot", func(t *testing.T, path string, tailStart int64) {
			// Full length, one flipped byte in the value.
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{0xFF}, tailStart+recHeaderLen+20); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage_appended", func(t *testing.T, path string, tailStart int64) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write(bytes.Repeat([]byte{0xAB}, 37)); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range tears {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			s := mustDisk(t, DiskConfig{Dir: dir, Fsync: FsyncAlways})
			want := map[string][]byte{}
			for i := 0; i < 8; i++ {
				k := fmt.Sprintf("acked/%d", i)
				v := bytes.Repeat([]byte{byte('a' + i)}, 200)
				if err := s.Put(ctx, k, v); err != nil {
					t.Fatal(err)
				}
				want[k] = v
			}
			tailStart := s.Stats().LogBytes
			victim := bytes.Repeat([]byte("torn"), 100)
			if err := s.Put(ctx, "victim", victim); err != nil {
				t.Fatal(err)
			}
			// Simulate kill -9 mid-append: no Close, no sync, then rewrite
			// the tail record into a torn state.
			s.Crash()
			path := lastSegment(t, dir)
			if tc.name == "garbage_appended" {
				// Garbage goes after a complete record: the victim survives.
				want["victim"] = victim
			}
			tc.tear(t, path, tailStart)

			r := mustDisk(t, DiskConfig{Dir: dir, Fsync: FsyncAlways})
			defer r.Close()
			if r.Stats().TruncatedAtOpen == 0 {
				t.Fatal("recovery scan reported no torn tail")
			}
			for k, v := range want {
				got, err := r.Get(ctx, k)
				if err != nil {
					t.Fatalf("acked key %s lost: %v", k, err)
				}
				if !bytes.Equal(got, v) {
					t.Fatalf("acked key %s not bit-identical after recovery", k)
				}
			}
			if _, ok := want["victim"]; !ok {
				if _, err := r.Get(ctx, "victim"); !errors.Is(err, ErrNotFound) {
					t.Fatalf("torn record surfaced: Get(victim) = %v, want ErrNotFound", err)
				}
			}
			// The truncated log must accept appends again.
			if err := r.Put(ctx, "after/recovery", []byte("ok")); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
		})
	}
}

// TestDiskStoreCorruptInteriorRefuses: corruption anywhere but the
// final segment is not a torn tail — it is data loss, and open must
// fail loudly rather than silently dropping committed records.
func TestDiskStoreCorruptInteriorRefuses(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := mustDisk(t, DiskConfig{Dir: dir, SegmentBytes: 1 << 10, CompactRatio: -1})
	for i := 0; i < 20; i++ {
		if err := s.Put(ctx, fmt.Sprintf("k/%02d", i), bytes.Repeat([]byte{1}, 300)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(matches) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(matches))
	}
	f, err := os.OpenFile(matches[0], os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xEE}, 40); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := NewDiskStore(DiskConfig{Dir: dir}); err == nil {
		t.Fatal("NewDiskStore accepted a corrupt interior segment")
	}
}

// TestDiskStoreCompaction: overwrite-heavy workloads cross the dead
// ratio, compaction reclaims the log, and the surviving state is
// bit-identical — including across a reopen, proving the rewritten log
// still replays.
func TestDiskStoreCompaction(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := mustDisk(t, DiskConfig{
		Dir:             dir,
		SegmentBytes:    8 << 10,
		CompactRatio:    0.5,
		CompactMinBytes: 1,
	})
	val := func(i, gen int) []byte {
		return bytes.Repeat([]byte{byte(gen)}, 512+i)
	}
	const keys = 16
	for gen := 1; gen <= 8; gen++ {
		for i := 0; i < keys; i++ {
			if err := s.Put(ctx, fmt.Sprintf("hot/%02d", i), val(i, gen)); err != nil {
				t.Fatal(err)
			}
		}
	}
	liveBytes := int64(0)
	for i := 0; i < keys; i++ {
		liveBytes += int64(512 + i + recHeaderLen + len(fmt.Sprintf("hot/%02d", i)))
	}
	// Compaction chains in the background until the ratio converges, so
	// poll for the reclaimed end state, not just "a pass ran".
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Compactions > 0 && st.LogBytes <= liveBytes*3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log not reclaimed: %+v for %d live bytes", st, liveBytes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < keys; i++ {
		got, err := s.Get(ctx, fmt.Sprintf("hot/%02d", i))
		if err != nil || !bytes.Equal(got, val(i, 8)) {
			t.Fatalf("key %d wrong after compaction: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustDisk(t, DiskConfig{Dir: dir})
	defer r.Close()
	for i := 0; i < keys; i++ {
		got, err := r.Get(ctx, fmt.Sprintf("hot/%02d", i))
		if err != nil || !bytes.Equal(got, val(i, 8)) {
			t.Fatalf("key %d wrong after compaction+reopen: %v", i, err)
		}
	}
	if got := int(r.Usage().Objects); got != keys {
		t.Fatalf("Objects after compaction+reopen = %d, want %d", got, keys)
	}
}

// TestDiskStoreCompactionDeletesStayDead: a deleted key must not
// resurrect through any compaction crash window. This drives the live
// store (tombstones dropped during merge) and then simulates the
// mid-delete crash state directly: merged output installed, older
// input segments still on disk.
func TestDiskStoreCompactionDeletesStayDead(t *testing.T) {
	ctx := context.Background()
	t.Run("live", func(t *testing.T) {
		dir := t.TempDir()
		s := mustDisk(t, DiskConfig{Dir: dir, SegmentBytes: 4 << 10, CompactRatio: 0.4, CompactMinBytes: 1})
		for i := 0; i < 12; i++ {
			if err := s.Put(ctx, fmt.Sprintf("del/%02d", i), bytes.Repeat([]byte{7}, 600)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 12; i++ {
			if err := s.Delete(ctx, fmt.Sprintf("del/%02d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Put(ctx, "keep", []byte("kept")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for s.Stats().Compactions == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("compaction never ran: %+v", s.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
		s.Close()
		r := mustDisk(t, DiskConfig{Dir: dir})
		defer r.Close()
		for i := 0; i < 12; i++ {
			if _, err := r.Get(ctx, fmt.Sprintf("del/%02d", i)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key resurrected after compaction+reopen: %v", err)
			}
		}
		if got, err := r.Get(ctx, "keep"); err != nil || string(got) != "kept" {
			t.Fatalf("live key lost: %v", err)
		}
	})

	t.Run("crash_window", func(t *testing.T) {
		// Hand-build the on-disk state of a compaction killed between the
		// rename and the input deletes: seg 1 (an undeleted input) holds
		// put(x)+put(y); seg 2 is the installed merge output, which must
		// carry x's tombstone precisely because seg 1 might survive a
		// crash; seg 3 is the empty active. Replay keeps x dead because
		// the output's tombstone wins over the stale input.
		dir := t.TempDir()
		seg1 := appendRecord(nil, "x", []byte("x-old"), false)
		seg1 = appendRecord(seg1, "y", []byte("y-stale"), false)
		merged := appendRecord(nil, "y", []byte("y-live"), false)
		merged = appendRecord(merged, "x", nil, true)
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), seg1, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "seg-00000002.log"), merged, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "seg-00000003.log"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		r := mustDisk(t, DiskConfig{Dir: dir})
		defer r.Close()
		if got, err := r.Get(ctx, "y"); err != nil || string(got) != "y-live" {
			t.Fatalf("Get(y) = %q, %v (stale input must not win)", got, err)
		}
		if _, err := r.Get(ctx, "x"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key x resurrected in crash window: %v", err)
		}
	})
}

// TestDiskStoreCompactionKeepsWorkingTombstones drives the real
// compactor and pins the rule the crash_window replay depends on: a
// tombstone whose put exists in the merge inputs is carried into the
// output (so the rename-before-delete crash window can't resurrect the
// key), and becomes an orphan the NEXT compaction drops.
func TestDiskStoreCompactionKeepsWorkingTombstones(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := mustDisk(t, DiskConfig{Dir: dir, SegmentBytes: 1 << 9, CompactRatio: -1})
	defer s.Close()
	// x's put rotates into sealed segment 1; its tombstone lands later.
	if err := s.Put(ctx, "x", bytes.Repeat([]byte("X"), 600)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "y", []byte("y-live")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "x"); err != nil {
		t.Fatal(err)
	}

	scanMerged := func() map[string]bool {
		t.Helper()
		s.mu.RLock()
		mergedPath := s.segPath(s.segIDs[len(s.segIDs)-2])
		s.mu.RUnlock()
		blob, err := os.ReadFile(mergedPath)
		if err != nil {
			t.Fatal(err)
		}
		recs, _, err := scanRecords(blob)
		if err != nil {
			t.Fatalf("merged segment does not scan: %v", err)
		}
		tomb := map[string]bool{}
		for _, rec := range recs {
			tomb[rec.key] = rec.tombstone
		}
		return tomb
	}

	if err := s.compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	keys := scanMerged()
	if tombstone, present := keys["x"]; !present || !tombstone {
		t.Fatalf("merge output must keep x's working tombstone, got %v", keys)
	}
	if tombstone, present := keys["y"]; !present || tombstone {
		t.Fatalf("merge output must keep y live, got %v", keys)
	}

	// Second cycle: x's tombstone is now an orphan (no put anywhere in
	// the inputs) and must be dropped.
	if err := s.Put(ctx, "z", []byte("force-nonempty-active")); err != nil {
		t.Fatal(err)
	}
	if err := s.compact(); err != nil {
		t.Fatalf("second compact: %v", err)
	}
	keys = scanMerged()
	if _, present := keys["x"]; present {
		t.Fatalf("orphan tombstone not dropped on second compaction: %v", keys)
	}
	if _, err := s.Get(ctx, "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(x) = %v, want ErrNotFound", err)
	}
	if got, err := s.Get(ctx, "y"); err != nil || string(got) != "y-live" {
		t.Fatalf("Get(y) = %q, %v", got, err)
	}
}

// TestDiskStoreLeftoverTmpRemoved: a compaction killed before its
// rename leaves a .tmp merge output; open must discard it and replay
// the intact inputs.
func TestDiskStoreLeftoverTmpRemoved(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := mustDisk(t, DiskConfig{Dir: dir})
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	tmp := filepath.Join(dir, "seg-00000099.log.tmp")
	if err := os.WriteFile(tmp, []byte("half-written merge output"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustDisk(t, DiskConfig{Dir: dir})
	defer r.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp not removed: %v", err)
	}
	if got, err := r.Get(ctx, "k"); err != nil || string(got) != "v" {
		t.Fatalf("Get(k) = %q, %v", got, err)
	}
}

// TestDiskStoreCrashUnderFsyncNever: Crash drops everything unsynced on
// the Go side, but the OS still holds the writes (kill -9 loses no page
// cache). The recovery scan must accept whatever prefix is on disk.
func TestDiskStoreCrashUnderFsyncNever(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := mustDisk(t, DiskConfig{Dir: dir, Fsync: FsyncNever})
	for i := 0; i < 10; i++ {
		if err := s.Put(ctx, fmt.Sprintf("k/%d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	r := mustDisk(t, DiskConfig{Dir: dir, Fsync: FsyncNever})
	defer r.Close()
	for i := 0; i < 10; i++ {
		got, err := r.Get(ctx, fmt.Sprintf("k/%d", i))
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Fatalf("key %d lost across Crash: %v", i, err)
		}
	}
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in       string
		policy   FsyncPolicy
		interval time.Duration
		err      bool
	}{
		{"always", FsyncAlways, 0, false},
		{"", FsyncAlways, 0, false},
		{"never", FsyncNever, 0, false},
		{"interval", FsyncInterval, 0, false},
		{"interval:250ms", FsyncInterval, 250 * time.Millisecond, false},
		{"interval(50ms)", FsyncInterval, 50 * time.Millisecond, false},
		{"INTERVAL:1s", FsyncInterval, time.Second, false},
		{"interval:-5ms", 0, 0, true},
		{"interval:bogus", 0, 0, true},
		{"sometimes", 0, 0, true},
	}
	for _, tc := range cases {
		p, d, err := ParseFsync(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseFsync(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil || p != tc.policy || d != tc.interval {
			t.Errorf("ParseFsync(%q) = %v, %v, %v; want %v, %v", tc.in, p, d, err, tc.policy, tc.interval)
		}
	}
}

// TestSlowStoreDelays: the chaos slow-disk shim actually delays, and
// the delay is runtime-settable.
func TestSlowStoreDelays(t *testing.T) {
	ctx := context.Background()
	s := NewSlowStore(NewMemStore(MemConfig{}))
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.SetPutDelay(30 * time.Millisecond)
	start := time.Now()
	if err := s.Put(ctx, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("put delay not applied: %v", d)
	}
	s.SetPutDelay(0)
	// A canceled ctx interrupts the injected delay.
	s.SetGetDelay(10 * time.Second)
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := s.Get(cctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get under delay = %v, want deadline exceeded", err)
	}
	s.SetGetDelay(0)
	if got, err := s.Get(ctx, "k"); err != nil || string(got) != "v2" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if s.Usage().Puts != 2 {
		t.Fatalf("Usage not forwarded: %+v", s.Usage())
	}
}
