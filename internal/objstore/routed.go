package objstore

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// Backend names one member of a routed store fleet. Name is the routing
// identity: every client that knows the same set of names computes the
// same key placement, regardless of the order backends were listed in.
type Backend struct {
	Name  string
	Store Store
}

// RoutedStore shards the checkpoint keyspace across N backends by
// rendezvous (highest-random-weight) hashing: each key hashes once per
// backend name and lands on the argmax. Routing is a pure function of
// (key, set of names) — independent of listing order and of which client
// instance computes it — so every process of a fleet (controller,
// shardd, ckptctl, serving) places keys identically.
//
// Control-plane keys (anything under a "/ctrl/" segment, and the fleet
// membership record itself) are pinned to the anchor backend — the
// lexicographically smallest name — instead of hashed. The epoch/lease
// register is a read-modify-write register, not an immutable object:
// pinning it means growing or shrinking the store fleet can never
// relocate it mid-lease, so two controllers separated by a membership
// change still contend on the same durable record.
//
// Put/Get/Delete/Stat touch exactly one backend. List fans out to every
// backend in parallel and merges the sorted results. A RoutedStore is
// safe for concurrent use if its backends are.
type RoutedStore struct {
	backends []Backend // sorted by Name; [0] is the anchor
}

// NewRouted builds a RoutedStore over the given backends. Names must be
// unique and non-empty; at least one backend is required. The slice is
// not retained.
func NewRouted(backends []Backend) (*RoutedStore, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("objstore: routed store needs at least one backend")
	}
	bs := append([]Backend(nil), backends...)
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	for i, b := range bs {
		if b.Name == "" {
			return nil, fmt.Errorf("objstore: routed backend %d has empty name", i)
		}
		if b.Store == nil {
			return nil, fmt.Errorf("objstore: routed backend %q has nil store", b.Name)
		}
		if i > 0 && bs[i-1].Name == b.Name {
			return nil, fmt.Errorf("objstore: duplicate routed backend name %q", b.Name)
		}
	}
	return &RoutedStore{backends: bs}, nil
}

// Backends returns the fleet members, sorted by name (anchor first).
// The slice is shared; callers must not mutate it.
func (r *RoutedStore) Backends() []Backend { return r.backends }

// pinned reports whether key must live on the anchor backend: mutable
// control-plane registers (the "/ctrl/" scope holds the epoch/lease
// record) and the membership record that defines the fleet itself.
func pinned(key string) bool {
	return key == MembersKey || strings.Contains(key, "/ctrl/")
}

// rendezvousScore hashes (backend name, key) with FNV-64a. The per-name
// hash makes placement independent of backend ordering.
func rendezvousScore(name, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// pick returns the backend index owning key.
func (r *RoutedStore) pick(key string) int {
	if len(r.backends) == 1 || pinned(key) {
		return 0 // anchor: smallest name
	}
	best, bestScore := 0, rendezvousScore(r.backends[0].Name, key)
	for i := 1; i < len(r.backends); i++ {
		// Strict > keeps the smallest name on score ties, matching the
		// sorted order every client shares.
		if s := rendezvousScore(r.backends[i].Name, key); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// RouteKey returns the name of the backend that owns key — diagnostics
// and tests use it to assert deterministic placement.
func (r *RoutedStore) RouteKey(key string) string {
	return r.backends[r.pick(key)].Name
}

// Put implements Store.
func (r *RoutedStore) Put(ctx context.Context, key string, value []byte) error {
	return r.backends[r.pick(key)].Store.Put(ctx, key, value)
}

// Get implements Store.
func (r *RoutedStore) Get(ctx context.Context, key string) ([]byte, error) {
	return r.backends[r.pick(key)].Store.Get(ctx, key)
}

// Delete implements Store.
func (r *RoutedStore) Delete(ctx context.Context, key string) error {
	return r.backends[r.pick(key)].Store.Delete(ctx, key)
}

// Stat implements Store.
func (r *RoutedStore) Stat(ctx context.Context, key string) (int64, error) {
	return r.backends[r.pick(key)].Store.Stat(ctx, key)
}

// List implements Store: the prefix is queried on every backend in
// parallel and the per-backend sorted results are merged. Backends own
// disjoint key sets, so the merge needs no dedup beyond defensive
// skipping of exact duplicates.
func (r *RoutedStore) List(ctx context.Context, prefix string) ([]string, error) {
	if len(r.backends) == 1 {
		return r.backends[0].Store.List(ctx, prefix)
	}
	parts := make([][]string, len(r.backends))
	errs := make([]error, len(r.backends))
	var wg sync.WaitGroup
	for i := range r.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = r.backends[i].Store.List(ctx, prefix)
		}(i)
	}
	wg.Wait()
	total := 0
	for i := range r.backends {
		if errs[i] != nil {
			return nil, fmt.Errorf("objstore: list on %q: %w", r.backends[i].Name, errs[i])
		}
		total += len(parts[i])
	}
	merged := make([]string, 0, total)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	sort.Strings(merged)
	out := merged[:0]
	for i, k := range merged {
		if i > 0 && merged[i-1] == k {
			continue
		}
		out = append(out, k)
	}
	return out, nil
}

// Close closes every backend, returning the first error.
func (r *RoutedStore) Close() error {
	var firstErr error
	for i := range r.backends {
		if err := r.backends[i].Store.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("objstore: close %q: %w", r.backends[i].Name, err)
		}
	}
	return firstErr
}

// Usage aggregates the counters of every backend that exposes them,
// implementing Accountant when the backends do (in-process fleets).
func (r *RoutedStore) Usage() Usage {
	var total Usage
	for i := range r.backends {
		if a, ok := r.backends[i].Store.(Accountant); ok {
			u := a.Usage()
			total.BytesWritten += u.BytesWritten
			total.BytesRead += u.BytesRead
			total.CapacityBytes += u.CapacityBytes
			total.Objects += u.Objects
			total.Puts += u.Puts
			total.Gets += u.Gets
			total.Deletes += u.Deletes
		}
	}
	return total
}

// ResetBandwidth resets every accounting backend's bandwidth counters.
func (r *RoutedStore) ResetBandwidth() {
	for i := range r.backends {
		if a, ok := r.backends[i].Store.(Accountant); ok {
			a.ResetBandwidth()
		}
	}
}
