package objstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Store-fleet membership: which objstored processes make up the routed
// keyspace. Mirrors the ctrl package's durable-register pattern (a small
// record in the store itself is the source of truth), but lives here —
// ctrl already depends on objstore, and the store plane must be able to
// bootstrap before any job-level control plane exists.
//
// The record is written to *every* member, so a client that knows any
// one seed address can discover the whole fleet. The copy on the anchor
// backend is authoritative (MembersKey is a pinned key); the others are
// bootstrap replicas.

// MembersKey is the object key of the fleet membership record. The
// leading NUL keeps it outside every job's keyspace (job object keys
// start with the job ID, which is printable).
const MembersKey = "\x00cnr/cluster/members"

// EncodeMembers serializes a membership record: sorted, newline-joined
// backend addresses.
func EncodeMembers(addrs []string) []byte {
	sorted := append([]string(nil), addrs...)
	sort.Strings(sorted)
	return []byte(strings.Join(sorted, "\n"))
}

// ErrInvalidMembers marks a membership record or store spec that names
// the fleet incorrectly: blank or duplicate addresses. Rendezvous
// hashing scores backends by name, so a duplicated address would
// silently skew key placement (two identically-named backends split
// every fleet's view of the keyspace differently depending on which
// connection wins) — it must be rejected loudly at decode/connect time.
var ErrInvalidMembers = errors.New("objstore: invalid membership")

// validateMembers rejects blank and duplicate addresses, wrapping
// ErrInvalidMembers.
func validateMembers(addrs []string, what string) error {
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if strings.TrimSpace(a) == "" {
			return fmt.Errorf("%w: blank address in %s", ErrInvalidMembers, what)
		}
		if seen[a] {
			return fmt.Errorf("%w: duplicate address %q in %s", ErrInvalidMembers, a, what)
		}
		seen[a] = true
	}
	return nil
}

// DecodeMembers parses and validates a membership record. A record with
// blank or duplicate addresses returns an error wrapping
// ErrInvalidMembers.
func DecodeMembers(blob []byte) ([]string, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("%w: empty membership record", ErrInvalidMembers)
	}
	addrs := strings.Split(string(blob), "\n")
	if err := validateMembers(addrs, "membership record"); err != nil {
		return nil, err
	}
	return addrs, nil
}

// PublishMembership writes the membership record for the given backend
// addresses to every one of them, so any single seed address suffices
// for discovery. Call it once after the store fleet is up (the fleet
// example does; deployments can use any member and ckptctl).
func PublishMembership(ctx context.Context, addrs []string, cfg ClientConfig) error {
	if len(addrs) == 0 {
		return fmt.Errorf("objstore: no member addresses")
	}
	if err := validateMembers(addrs, "member list"); err != nil {
		return err
	}
	record := EncodeMembers(addrs)
	for _, addr := range addrs {
		cl, err := Dial(addr, cfg)
		if err != nil {
			return fmt.Errorf("objstore: publish membership to %s: %w", addr, err)
		}
		err = cl.Put(ctx, MembersKey, record)
		cl.Close()
		if err != nil {
			return fmt.Errorf("objstore: publish membership to %s: %w", addr, err)
		}
	}
	return nil
}

// Connect opens the store plane described by spec: a comma-separated
// list of objstored addresses. Every process of a fleet that connects
// with the same member set routes keys identically (rendezvous hashing
// over the sorted address list — see RoutedStore).
//
//   - Multiple addresses: dial each and return a RoutedStore over them
//     (static membership, the "-stores host:port,..." flag form).
//   - One address: dial it, then consult the fleet membership record
//     (MembersKey). If present, expand to the full recorded fleet; if
//     absent, the single client is the store.
//
// The returned Store owns every connection it opened; Close releases
// them all.
func Connect(spec string, cfg ClientConfig) (Store, error) {
	var addrs []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("objstore: empty store spec")
	}
	if err := validateMembers(addrs, "store spec"); err != nil {
		return nil, err
	}
	if len(addrs) == 1 {
		seed, err := Dial(addrs[0], cfg)
		if err != nil {
			return nil, err
		}
		blob, err := seed.Get(context.Background(), MembersKey)
		if errors.Is(err, ErrNotFound) {
			return seed, nil // standalone store, no fleet record
		}
		if err != nil {
			seed.Close()
			return nil, fmt.Errorf("objstore: read membership via %s: %w", addrs[0], err)
		}
		members, err := DecodeMembers(blob)
		if err != nil {
			seed.Close()
			return nil, err
		}
		// Redial the full recorded fleet; the seed connection served its
		// purpose unless it is itself the whole fleet.
		if len(members) == 1 && members[0] == addrs[0] {
			return seed, nil
		}
		seed.Close()
		addrs = members
	}
	return dialRouted(addrs, cfg)
}

// dialRouted dials every address and wraps the clients in a RoutedStore
// named by address. Already-dialed clients are closed on failure.
func dialRouted(addrs []string, cfg ClientConfig) (Store, error) {
	backends := make([]Backend, 0, len(addrs))
	for _, addr := range addrs {
		cl, err := Dial(addr, cfg)
		if err != nil {
			for _, b := range backends {
				b.Store.Close()
			}
			return nil, fmt.Errorf("objstore: store backend %s: %w", addr, err)
		}
		backends = append(backends, Backend{Name: addr, Store: cl})
	}
	r, err := NewRouted(backends)
	if err != nil {
		for _, b := range backends {
			b.Store.Close()
		}
		return nil, err
	}
	return r, nil
}
