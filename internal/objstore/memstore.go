package objstore

import (
	"context"
	"hash/maphash"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/simclock"
)

// MemConfig configures a MemStore.
type MemConfig struct {
	// Replication is the storage replication factor applied to capacity
	// and bandwidth accounting (the paper's store replicates for high
	// availability). Zero means 1.
	Replication int
	// WriteBandwidth, if positive, throttles Put calls to this many
	// bytes per second on Clock.
	WriteBandwidth float64
	// ReadBandwidth, if positive, throttles Get calls to this many bytes
	// per second on Clock. Reads are charged unreplicated: a Get is
	// served from one replica, while a Put fans out to all of them.
	ReadBandwidth float64
	// Clock is used for throttling; nil means the real clock.
	Clock simclock.Clock
	// Stripes overrides the internal lock-stripe count (rounded up to a
	// power of two). Zero picks a default scaled to GOMAXPROCS. One
	// restores the single-lock baseline.
	Stripes int
}

// MemStore is an in-memory Store with replication-aware accounting and
// optional bandwidth shaping. The key space is striped across
// independently locked maps so concurrent Puts from many server
// connections do not serialize on one mutex; accounting counters are
// atomics outside the stripe locks. It is safe for concurrent use.
type MemStore struct {
	stripes []memStripe
	mask    uint64
	seed    maphash.Seed
	closed  atomic.Bool

	replication  int
	throttle     *Throttle
	readThrottle *Throttle

	bytesWritten, bytesRead atomic.Int64
	capacityBytes           atomic.Int64
	objects                 atomic.Int64
	puts, gets, deletes     atomic.Int64
}

type memStripe struct {
	mu      sync.RWMutex
	objects map[string][]byte
	// Pad to a cache line so adjacent stripe locks don't false-share.
	_ [32]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore(cfg MemConfig) *MemStore {
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	n := cfg.Stripes
	if n <= 0 {
		n = 4 * runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
	}
	// Round up to a power of two for mask indexing.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &MemStore{
		stripes:     make([]memStripe, pow),
		mask:        uint64(pow - 1),
		seed:        maphash.MakeSeed(),
		replication: cfg.Replication,
	}
	for i := range s.stripes {
		s.stripes[i].objects = make(map[string][]byte)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	if cfg.WriteBandwidth > 0 {
		s.throttle = NewThrottle(cfg.WriteBandwidth, clock)
	}
	if cfg.ReadBandwidth > 0 {
		s.readThrottle = NewThrottle(cfg.ReadBandwidth, clock)
	}
	return s
}

func (s *MemStore) stripe(key string) *memStripe {
	return &s.stripes[maphash.String(s.seed, key)&s.mask]
}

// Put stores a copy of value under key, charging bandwidth and capacity
// for replication copies.
func (s *MemStore) Put(ctx context.Context, key string, value []byte) error {
	if err := s.admitWrite(ctx, len(value)); err != nil {
		return err
	}
	return s.putStored(key, append([]byte(nil), value...))
}

// PutOwned stores value under key, taking ownership of the slice instead
// of copying it: the caller must not read or write value afterward. The
// TCP server hands each request's freshly decoded frame buffer straight
// in, eliminating the copy-per-Put on the server receive path.
func (s *MemStore) PutOwned(ctx context.Context, key string, value []byte) error {
	if err := s.admitWrite(ctx, len(value)); err != nil {
		return err
	}
	return s.putStored(key, value)
}

// admitWrite runs the pre-storage Put checks: context liveness and
// bandwidth shaping (replication-inclusive, like a real store fanning
// the write out to its copies).
func (s *MemStore) admitWrite(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.throttle != nil {
		if err := s.throttle.Wait(ctx, int64(n)*int64(s.replication)); err != nil {
			return err
		}
	}
	return nil
}

// putStored installs an owned value slice and settles the accounting.
func (s *MemStore) putStored(key string, stored []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	repl := int64(s.replication)
	st := s.stripe(key)
	st.mu.Lock()
	old, existed := st.objects[key]
	st.objects[key] = stored
	st.mu.Unlock()
	if existed {
		s.capacityBytes.Add(-int64(len(old)) * repl)
	} else {
		s.objects.Add(1)
	}
	s.puts.Add(1)
	s.bytesWritten.Add(int64(len(stored)) * repl)
	s.capacityBytes.Add(int64(len(stored)) * repl)
	return nil
}

// Get returns a copy of the value stored under key.
func (s *MemStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	st := s.stripe(key)
	st.mu.RLock()
	v, ok := st.objects[key]
	st.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	// Shape after the lookup so a missing key costs no read bandwidth,
	// and outside the stripe lock so a shaped read cannot block writers.
	if s.readThrottle != nil {
		if err := s.readThrottle.Wait(ctx, int64(len(v))); err != nil {
			return nil, err
		}
	}
	s.gets.Add(1)
	s.bytesRead.Add(int64(len(v)))
	return append([]byte(nil), v...), nil
}

// Delete removes key and releases its capacity.
func (s *MemStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.closed.Load() {
		return ErrClosed
	}
	st := s.stripe(key)
	st.mu.Lock()
	v, ok := st.objects[key]
	if ok {
		delete(st.objects, key)
	}
	st.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	s.deletes.Add(1)
	s.objects.Add(-1)
	s.capacityBytes.Add(-int64(len(v)) * int64(s.replication))
	return nil
}

// List returns sorted keys with the given prefix.
func (s *MemStore) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	var keys []string
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k := range st.objects {
			if strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
		st.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys, nil
}

// Stat returns the unreplicated size of key.
func (s *MemStore) Stat(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	st := s.stripe(key)
	st.mu.RLock()
	v, ok := st.objects[key]
	st.mu.RUnlock()
	if !ok {
		return 0, ErrNotFound
	}
	return int64(len(v)), nil
}

// Close marks the store closed. Further operations return ErrClosed.
func (s *MemStore) Close() error {
	s.closed.Store(true)
	return nil
}

// Usage returns a snapshot of the accounting counters.
func (s *MemStore) Usage() Usage {
	return Usage{
		BytesWritten:  s.bytesWritten.Load(),
		BytesRead:     s.bytesRead.Load(),
		CapacityBytes: s.capacityBytes.Load(),
		Objects:       int(s.objects.Load()),
		Puts:          s.puts.Load(),
		Gets:          s.gets.Load(),
		Deletes:       s.deletes.Load(),
	}
}

// ResetBandwidth zeroes the cumulative bandwidth counters.
func (s *MemStore) ResetBandwidth() {
	s.bytesWritten.Store(0)
	s.bytesRead.Store(0)
}
