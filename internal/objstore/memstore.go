package objstore

import (
	"context"
	"sort"
	"strings"
	"sync"

	"repro/internal/simclock"
)

// MemConfig configures a MemStore.
type MemConfig struct {
	// Replication is the storage replication factor applied to capacity
	// and bandwidth accounting (the paper's store replicates for high
	// availability). Zero means 1.
	Replication int
	// WriteBandwidth, if positive, throttles Put calls to this many
	// bytes per second on Clock.
	WriteBandwidth float64
	// Clock is used for throttling; nil means the real clock.
	Clock simclock.Clock
}

// MemStore is an in-memory Store with replication-aware accounting and
// optional bandwidth shaping. It is safe for concurrent use.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
	closed  bool

	replication int
	throttle    *Throttle

	usage Usage
}

// NewMemStore returns an empty in-memory store.
func NewMemStore(cfg MemConfig) *MemStore {
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	s := &MemStore{
		objects:     make(map[string][]byte),
		replication: cfg.Replication,
	}
	if cfg.WriteBandwidth > 0 {
		clock := cfg.Clock
		if clock == nil {
			clock = simclock.Real{}
		}
		s.throttle = NewThrottle(cfg.WriteBandwidth, clock)
	}
	return s
}

// Put stores value under key, charging bandwidth and capacity for
// replication copies.
func (s *MemStore) Put(ctx context.Context, key string, value []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.throttle != nil {
		if err := s.throttle.Wait(ctx, int64(len(value))*int64(s.replication)); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	stored := append([]byte(nil), value...)
	if old, ok := s.objects[key]; ok {
		s.usage.CapacityBytes -= int64(len(old)) * int64(s.replication)
	} else {
		s.usage.Objects++
	}
	s.objects[key] = stored
	s.usage.Puts++
	s.usage.BytesWritten += int64(len(value)) * int64(s.replication)
	s.usage.CapacityBytes += int64(len(value)) * int64(s.replication)
	return nil
}

// Get returns a copy of the value stored under key.
func (s *MemStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.objects[key]
	if !ok {
		return nil, ErrNotFound
	}
	s.usage.Gets++
	s.usage.BytesRead += int64(len(v))
	return append([]byte(nil), v...), nil
}

// Delete removes key and releases its capacity.
func (s *MemStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	v, ok := s.objects[key]
	if !ok {
		return ErrNotFound
	}
	delete(s.objects, key)
	s.usage.Deletes++
	s.usage.Objects--
	s.usage.CapacityBytes -= int64(len(v)) * int64(s.replication)
	return nil
}

// List returns sorted keys with the given prefix.
func (s *MemStore) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Stat returns the unreplicated size of key.
func (s *MemStore) Stat(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	v, ok := s.objects[key]
	if !ok {
		return 0, ErrNotFound
	}
	return int64(len(v)), nil
}

// Close marks the store closed. Further operations return ErrClosed.
func (s *MemStore) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Usage returns a snapshot of the accounting counters.
func (s *MemStore) Usage() Usage {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.usage
}

// ResetBandwidth zeroes the cumulative bandwidth counters.
func (s *MemStore) ResetBandwidth() {
	s.mu.Lock()
	s.usage.BytesWritten = 0
	s.usage.BytesRead = 0
	s.mu.Unlock()
}
