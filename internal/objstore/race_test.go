package objstore

// Dedicated -race coverage for the client connection pool under the
// access pattern the sharded checkpoint coordinator produces: many
// writer goroutines sharing one Client, each pipelining Puts and
// interleaving Gets/Lists/Stats, plus broken-connection churn forcing
// concurrent redials through acquire/release.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClientPoolConcurrentShardWriters(t *testing.T) {
	backend := NewMemStore(MemConfig{})
	srv, err := NewServer("127.0.0.1:0", backend, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), ClientConfig{PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const writers = 12
	const opsPerWriter = 40
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, 1024)
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("job/shard/%04d/chunk/%06d", w, i)
				if err := client.Put(ctx, key, payload); err != nil {
					errCh <- fmt.Errorf("writer %d put: %w", w, err)
					return
				}
				got, err := client.Get(ctx, key)
				if err != nil {
					errCh <- fmt.Errorf("writer %d get: %w", w, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errCh <- fmt.Errorf("writer %d read back wrong payload", w)
					return
				}
				if i%8 == 0 {
					if _, err := client.List(ctx, fmt.Sprintf("job/shard/%04d/", w)); err != nil {
						errCh <- fmt.Errorf("writer %d list: %w", w, err)
						return
					}
				}
				if i%5 == 0 {
					if _, err := client.Stat(ctx, key); err != nil {
						errCh <- fmt.Errorf("writer %d stat: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	keys, err := client.List(ctx, "job/shard/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != writers*opsPerWriter {
		t.Fatalf("stored %d objects, want %d", len(keys), writers*opsPerWriter)
	}
}

func TestClientPoolConcurrentWithServerRestartStorm(t *testing.T) {
	// Concurrent users while connections keep breaking: the server drops
	// every connection partway through, so goroutines race through the
	// redial path. Operations may fail (broken conn) but must never race
	// or corrupt the pool; the client must stay usable afterwards.
	backend := NewMemStore(MemConfig{})
	srv, err := NewServer("127.0.0.1:0", backend, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), ClientConfig{PoolSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	stop := make(chan struct{})
	chaosDone := make(chan struct{})
	// Chaos goroutine: keep closing the server's live connections.
	go func() {
		defer close(chaosDone)
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				srv.CloseConns()
			}
		}
	}()
	var wg sync.WaitGroup
	var okOps int64
	var mu sync.Mutex
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("storm/%d/%d", w, i)
				if err := client.Put(ctx, key, []byte("v")); err == nil {
					mu.Lock()
					okOps++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-chaosDone

	// Pool must still work after the storm. The pool may hold up to
	// PoolSize idle connections the chaos goroutine already closed
	// server-side; each failed attempt discards one, so PoolSize+1
	// attempts are guaranteed to reach a freshly dialed connection.
	var finalErr error
	for attempt := 0; attempt < 3+1; attempt++ {
		if finalErr = client.Put(ctx, "storm/final", []byte("alive")); finalErr == nil {
			break
		}
	}
	if finalErr != nil {
		t.Fatalf("client unusable after connection storm: %v", finalErr)
	}
	t.Logf("%d/%d puts survived the storm", okOps, workers*50)
}
