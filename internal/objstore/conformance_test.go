// Conformance runs: every Store implementation in the repo against the
// shared storetest contract suite. External test package because
// storetest imports objstore.
package objstore_test

import (
	"testing"
	"time"

	"repro/internal/objstore"
	"repro/internal/objstore/storetest"
)

func TestMemStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) objstore.Store {
		return objstore.NewMemStore(objstore.MemConfig{})
	})
}

func TestDiskStoreConformance(t *testing.T) {
	policies := []struct {
		name  string
		fsync objstore.FsyncPolicy
	}{
		{"always", objstore.FsyncAlways},
		{"interval", objstore.FsyncInterval},
		{"never", objstore.FsyncNever},
	}
	for _, p := range policies {
		t.Run("fsync_"+p.name, func(t *testing.T) {
			storetest.Run(t, func(t *testing.T) objstore.Store {
				s, err := objstore.NewDiskStore(objstore.DiskConfig{
					Dir:          t.TempDir(),
					Fsync:        p.fsync,
					SyncInterval: 5 * time.Millisecond,
					// Tiny segments so the suite's workloads cross rotation
					// and compaction paths, not just the single-segment one.
					SegmentBytes:    4 << 10,
					CompactMinBytes: 1,
				})
				if err != nil {
					t.Fatalf("NewDiskStore: %v", err)
				}
				t.Cleanup(func() { s.Close() })
				return s
			})
		})
	}
}

func TestRoutedStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) objstore.Store {
		var backends []objstore.Backend
		for _, name := range []string{"alpha", "beta", "gamma"} {
			backends = append(backends, objstore.Backend{
				Name:  name,
				Store: objstore.NewMemStore(objstore.MemConfig{}),
			})
		}
		r, err := objstore.NewRouted(backends)
		if err != nil {
			t.Fatalf("NewRouted: %v", err)
		}
		return r
	})
}

func TestRoutedDiskStoreConformance(t *testing.T) {
	// The deployment shape the chaos campaigns exercise: rendezvous
	// routing over disk-backed stores.
	storetest.Run(t, func(t *testing.T) objstore.Store {
		var backends []objstore.Backend
		for _, name := range []string{"alpha", "beta", "gamma"} {
			s, err := objstore.NewDiskStore(objstore.DiskConfig{
				Dir:          t.TempDir(),
				SegmentBytes: 4 << 10,
			})
			if err != nil {
				t.Fatalf("NewDiskStore: %v", err)
			}
			t.Cleanup(func() { s.Close() })
			backends = append(backends, objstore.Backend{Name: name, Store: s})
		}
		r, err := objstore.NewRouted(backends)
		if err != nil {
			t.Fatalf("NewRouted: %v", err)
		}
		return r
	})
}

func TestTCPClientConformance(t *testing.T) {
	// Close on the client tears down the connection pool, not the
	// backend, so the ErrClosed subtest does not apply.
	storetest.RunWith(t, func(t *testing.T) objstore.Store {
		srv, err := objstore.NewServer("127.0.0.1:0", objstore.NewMemStore(objstore.MemConfig{}), objstore.ServerConfig{})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		cl, err := objstore.Dial(srv.Addr(), objstore.ClientConfig{})
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}, storetest.Options{SkipClosed: true})
}
