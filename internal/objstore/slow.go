package objstore

import (
	"context"
	"sync/atomic"
	"time"
)

// SlowStore wraps a Store and injects per-op latency — the slow-disk
// fault shim for the chaos harness. Unlike the network shims in
// internal/chaos (which model the link), SlowStore models the device:
// the delay is paid inside the store, after the request is fully
// received, exactly where a slow or contended disk would stall.
// Delays are runtime-settable from a fault step while ops are in
// flight.
type SlowStore struct {
	inner Store

	putDelay atomic.Int64 // ns added to every Put/PutOwned/Delete
	getDelay atomic.Int64 // ns added to every Get
}

// NewSlowStore wraps inner with initially-zero delays.
func NewSlowStore(inner Store) *SlowStore {
	return &SlowStore{inner: inner}
}

// SetPutDelay sets the extra latency applied to every mutation.
func (s *SlowStore) SetPutDelay(d time.Duration) { s.putDelay.Store(int64(d)) }

// SetGetDelay sets the extra latency applied to every read.
func (s *SlowStore) SetGetDelay(d time.Duration) { s.getDelay.Store(int64(d)) }

// sleep pauses for d unless the context dies first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Put delays then forwards.
func (s *SlowStore) Put(ctx context.Context, key string, value []byte) error {
	if err := sleep(ctx, time.Duration(s.putDelay.Load())); err != nil {
		return err
	}
	return s.inner.Put(ctx, key, value)
}

// PutOwned delays then forwards, preserving the zero-copy path when the
// inner store supports it.
func (s *SlowStore) PutOwned(ctx context.Context, key string, value []byte) error {
	if err := sleep(ctx, time.Duration(s.putDelay.Load())); err != nil {
		return err
	}
	return PutOwned(ctx, s.inner, key, value)
}

// Get delays then forwards.
func (s *SlowStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := sleep(ctx, time.Duration(s.getDelay.Load())); err != nil {
		return nil, err
	}
	return s.inner.Get(ctx, key)
}

// Delete delays (a tombstone is a write) then forwards.
func (s *SlowStore) Delete(ctx context.Context, key string) error {
	if err := sleep(ctx, time.Duration(s.putDelay.Load())); err != nil {
		return err
	}
	return s.inner.Delete(ctx, key)
}

// List forwards without delay (metadata scans are not the modeled
// bottleneck).
func (s *SlowStore) List(ctx context.Context, prefix string) ([]string, error) {
	return s.inner.List(ctx, prefix)
}

// Stat forwards without delay.
func (s *SlowStore) Stat(ctx context.Context, key string) (int64, error) {
	return s.inner.Stat(ctx, key)
}

// Close forwards.
func (s *SlowStore) Close() error { return s.inner.Close() }

// Usage forwards to the inner store's Accountant when present.
func (s *SlowStore) Usage() Usage {
	if a, ok := s.inner.(Accountant); ok {
		return a.Usage()
	}
	return Usage{}
}

// ResetBandwidth forwards to the inner store's Accountant when present.
func (s *SlowStore) ResetBandwidth() {
	if a, ok := s.inner.(Accountant); ok {
		a.ResetBandwidth()
	}
}
