package objstore

import (
	"bytes"
	"testing"
)

func TestScanRecordsRoundTrip(t *testing.T) {
	var blob []byte
	blob = appendRecord(blob, "a", []byte("value-a"), false)
	blob = appendRecord(blob, "b/nested/key", nil, false)
	blob = appendRecord(blob, "a", nil, true)
	blob = appendRecord(blob, "c", bytes.Repeat([]byte{0xCC}, 1000), false)

	recs, valid, err := scanRecords(blob)
	if err != nil {
		t.Fatalf("scanRecords: %v", err)
	}
	if valid != int64(len(blob)) {
		t.Fatalf("valid = %d, want %d", valid, len(blob))
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[0].key != "a" || recs[0].tombstone {
		t.Fatalf("rec 0 = %+v", recs[0])
	}
	if got := blob[recs[0].valOff : recs[0].valOff+recs[0].valLen]; string(got) != "value-a" {
		t.Fatalf("rec 0 value = %q", got)
	}
	if !recs[2].tombstone || recs[2].key != "a" || recs[2].valLen != 0 {
		t.Fatalf("rec 2 = %+v", recs[2])
	}
	if recs[3].off+recs[3].size != valid {
		t.Fatalf("last record ends at %d, valid = %d", recs[3].off+recs[3].size, valid)
	}
}

// FuzzSegmentScan: arbitrary corrupt or truncated segment bytes must
// never panic, never surface a record reaching past the valid prefix,
// and always recover the longest valid prefix — re-scanning the prefix
// yields the same records with no error, and appending a fresh record
// at the truncation point (what recovery does) yields them plus one.
func FuzzSegmentScan(f *testing.F) {
	var clean []byte
	clean = appendRecord(clean, "job/shard/0/chunk/0001", bytes.Repeat([]byte{0x5A}, 256), false)
	clean = appendRecord(clean, "job/composite/7", []byte("manifest"), false)
	clean = appendRecord(clean, "job/shard/0/chunk/0001", nil, true)
	f.Add(clean)
	f.Add(clean[:len(clean)-5])       // torn body
	f.Add(clean[:7])                  // torn header
	f.Add([]byte{})                   // empty segment
	f.Add(bytes.Repeat([]byte{0}, recHeaderLen)) // zero key length
	corrupt := append([]byte(nil), clean...)
	corrupt[len(clean)-3] ^= 0xFF
	f.Add(corrupt) // bit rot in the final record

	f.Fuzz(func(t *testing.T, blob []byte) {
		recs, valid, err := scanRecords(blob)
		if valid < 0 || valid > int64(len(blob)) {
			t.Fatalf("valid = %d outside [0, %d]", valid, len(blob))
		}
		if (err == nil) != (valid == int64(len(blob))) {
			t.Fatalf("err = %v but valid = %d of %d", err, valid, len(blob))
		}
		// No record may reach beyond the valid prefix, records must be
		// contiguous from 0, and the last one must end exactly at valid.
		off := int64(0)
		for i, rec := range recs {
			if rec.off != off {
				t.Fatalf("record %d at offset %d, want %d (gap or overlap)", i, rec.off, off)
			}
			if rec.valOff+rec.valLen > valid {
				t.Fatalf("record %d value [%d,%d) reaches past valid prefix %d",
					i, rec.valOff, rec.valOff+rec.valLen, valid)
			}
			if rec.tombstone && rec.valLen != 0 {
				t.Fatalf("record %d: tombstone with value bytes", i)
			}
			off += rec.size
		}
		if off != valid {
			t.Fatalf("records cover %d bytes, valid prefix is %d", off, valid)
		}

		// Truncating to the valid prefix (what recovery does) must yield
		// the identical record set, cleanly.
		recs2, valid2, err2 := scanRecords(blob[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("re-scan of valid prefix: %d recs, valid %d, err %v (want %d, %d, nil)",
				len(recs2), valid2, err2, len(recs), valid)
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("re-scan record %d differs: %+v vs %+v", i, recs[i], recs2[i])
			}
		}

		// And the truncated log must accept appends: one more record
		// scans as exactly recs+1.
		extended := appendRecord(append([]byte(nil), blob[:valid]...), "post/recovery", []byte("ok"), false)
		recs3, _, err3 := scanRecords(extended)
		if err3 != nil || len(recs3) != len(recs)+1 {
			t.Fatalf("append after truncation: %d recs, err %v (want %d, nil)", len(recs3), err3, len(recs)+1)
		}
	})
}
