// Package storetest is a conformance suite for objstore.Store
// implementations. Every backend the repo ships — MemStore, DiskStore,
// RoutedStore, and the TCP client — must present one contract to the
// checkpoint engine; semantics drift between them (a Delete of a
// missing key that errors on one backend and succeeds on another)
// surfaces as fleet behavior that changes with deployment shape. The
// suite pins the contract once, and every implementation runs it.
package storetest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/objstore"
)

// Factory returns a fresh, empty store for one subtest. Cleanup is the
// factory's job (t.Cleanup or test-scoped resources); the suite calls
// Close itself only in the close-semantics subtest.
type Factory func(t *testing.T) objstore.Store

// Options tune the suite for implementations whose transport changes
// what is observable.
type Options struct {
	// SkipClosed skips the ops-after-Close subtest, for stores (like the
	// TCP client) where Close tears down the transport rather than the
	// backend and the resulting error is transport-specific.
	SkipClosed bool
}

// Run runs the full conformance suite against stores built by factory.
func Run(t *testing.T, factory Factory) {
	RunWith(t, factory, Options{})
}

// RunWith runs the conformance suite with options.
func RunWith(t *testing.T, factory Factory, opts Options) {
	ctx := context.Background()

	t.Run("PutGetRoundTrip", func(t *testing.T) {
		s := factory(t)
		want := []byte("the quick brown fox")
		if err := s.Put(ctx, "a/key", want); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := s.Get(ctx, "a/key")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(got) != string(want) {
			t.Fatalf("Get = %q, want %q", got, want)
		}
		n, err := s.Stat(ctx, "a/key")
		if err != nil {
			t.Fatalf("Stat: %v", err)
		}
		if n != int64(len(want)) {
			t.Fatalf("Stat = %d, want %d", n, len(want))
		}
	})

	t.Run("EmptyValue", func(t *testing.T) {
		s := factory(t)
		if err := s.Put(ctx, "empty", nil); err != nil {
			t.Fatalf("Put(nil): %v", err)
		}
		got, err := s.Get(ctx, "empty")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("Get = %d bytes, want 0", len(got))
		}
		if n, err := s.Stat(ctx, "empty"); err != nil || n != 0 {
			t.Fatalf("Stat = %d, %v; want 0, nil", n, err)
		}
	})

	t.Run("MembershipRecord", func(t *testing.T) {
		// Every backend must round-trip the fleet membership record
		// losslessly: it is the store plane's own bootstrap state.
		s := factory(t)
		members := []string{"10.0.0.2:7070", "10.0.0.1:7070", "10.0.0.3:7070"}
		if err := s.Put(ctx, objstore.MembersKey, objstore.EncodeMembers(members)); err != nil {
			t.Fatalf("Put(members): %v", err)
		}
		blob, err := s.Get(ctx, objstore.MembersKey)
		if err != nil {
			t.Fatalf("Get(members): %v", err)
		}
		got, err := objstore.DecodeMembers(blob)
		if err != nil {
			t.Fatalf("DecodeMembers: %v", err)
		}
		want := []string{"10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("DecodeMembers = %v, want %v (sorted)", got, want)
		}
		// A corrupt record — duplicate or blank addresses would silently
		// skew rendezvous hashing — must decode to the typed error, and
		// the round trip must preserve the corruption for decode to catch
		// (not "helpfully" dedupe it in transit).
		for _, bad := range [][]byte{
			[]byte("10.0.0.1:7070\n10.0.0.1:7070"),
			[]byte("10.0.0.1:7070\n\n10.0.0.2:7070"),
			[]byte(""),
		} {
			if err := s.Put(ctx, objstore.MembersKey, bad); err != nil {
				t.Fatalf("Put(bad record): %v", err)
			}
			blob, err := s.Get(ctx, objstore.MembersKey)
			if err != nil {
				t.Fatalf("Get(bad record): %v", err)
			}
			if _, err := objstore.DecodeMembers(blob); !errors.Is(err, objstore.ErrInvalidMembers) {
				t.Fatalf("DecodeMembers(%q) = %v, want ErrInvalidMembers", bad, err)
			}
		}
	})

	t.Run("MissingKey", func(t *testing.T) {
		s := factory(t)
		if _, err := s.Get(ctx, "nope"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
		}
		if _, err := s.Stat(ctx, "nope"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("Stat(missing) = %v, want ErrNotFound", err)
		}
	})

	// The Delete contract this suite exists to pin: deleting a missing
	// key is ErrNotFound on every backend, including a key that was
	// already deleted once.
	t.Run("DeleteMissing", func(t *testing.T) {
		s := factory(t)
		if err := s.Delete(ctx, "never-existed"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("Delete(missing) = %v, want ErrNotFound", err)
		}
		if err := s.Put(ctx, "k", []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := s.Delete(ctx, "k"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := s.Get(ctx, "k"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
		}
		if err := s.Delete(ctx, "k"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("second Delete = %v, want ErrNotFound", err)
		}
	})

	t.Run("Overwrite", func(t *testing.T) {
		s := factory(t)
		if err := s.Put(ctx, "k", []byte("short")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := s.Put(ctx, "k", []byte("a much longer replacement value")); err != nil {
			t.Fatalf("Put overwrite: %v", err)
		}
		got, err := s.Get(ctx, "k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(got) != "a much longer replacement value" {
			t.Fatalf("Get = %q after overwrite", got)
		}
		if n, _ := s.Stat(ctx, "k"); n != int64(len(got)) {
			t.Fatalf("Stat = %d, want %d", n, len(got))
		}
	})

	t.Run("PutDoesNotRetain", func(t *testing.T) {
		s := factory(t)
		buf := []byte("original")
		if err := s.Put(ctx, "k", buf); err != nil {
			t.Fatalf("Put: %v", err)
		}
		copy(buf, "CLOBBER!")
		got, err := s.Get(ctx, "k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(got) != "original" {
			t.Fatalf("Put retained the caller's buffer: Get = %q", got)
		}
	})

	t.Run("GetReturnsCopy", func(t *testing.T) {
		s := factory(t)
		if err := s.Put(ctx, "k", []byte("original")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		first, err := s.Get(ctx, "k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		copy(first, "CLOBBER!")
		second, err := s.Get(ctx, "k")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(second) != "original" {
			t.Fatalf("Get returned aliased storage: second Get = %q", second)
		}
	})

	t.Run("ListPrefixSorted", func(t *testing.T) {
		s := factory(t)
		keys := []string{"job/shard/1/b", "job/shard/0/a", "job/shard/1/a", "other/x"}
		for _, k := range keys {
			if err := s.Put(ctx, k, []byte(k)); err != nil {
				t.Fatalf("Put(%q): %v", k, err)
			}
		}
		got, err := s.List(ctx, "job/shard/1/")
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		want := []string{"job/shard/1/a", "job/shard/1/b"}
		if len(got) != len(want) {
			t.Fatalf("List = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("List = %v, want %v (sorted)", got, want)
			}
		}
		all, err := s.List(ctx, "")
		if err != nil {
			t.Fatalf("List(\"\"): %v", err)
		}
		if len(all) != len(keys) {
			t.Fatalf("List(\"\") = %d keys, want %d", len(all), len(keys))
		}
	})

	t.Run("CanceledContext", func(t *testing.T) {
		s := factory(t)
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if err := s.Put(cctx, "k", []byte("v")); !errors.Is(err, context.Canceled) {
			t.Fatalf("Put(canceled) = %v, want context.Canceled", err)
		}
		if _, err := s.Get(cctx, "k"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Get(canceled) = %v, want context.Canceled", err)
		}
	})

	t.Run("Concurrent", func(t *testing.T) {
		s := factory(t)
		const workers, perWorker = 8, 32
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					key := fmt.Sprintf("w%d/obj%03d", w, i)
					val := []byte(fmt.Sprintf("value-%d-%d", w, i))
					if err := s.Put(ctx, key, val); err != nil {
						errc <- fmt.Errorf("Put(%s): %w", key, err)
						return
					}
					got, err := s.Get(ctx, key)
					if err != nil {
						errc <- fmt.Errorf("Get(%s): %w", key, err)
						return
					}
					if string(got) != string(val) {
						errc <- fmt.Errorf("Get(%s) = %q, want %q", key, got, val)
						return
					}
					if i%4 == 3 {
						if err := s.Delete(ctx, key); err != nil {
							errc <- fmt.Errorf("Delete(%s): %w", key, err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Error(err)
		}
		// Every worker deleted a quarter of its keys.
		all, err := s.List(ctx, "")
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		if want := workers * perWorker * 3 / 4; len(all) != want {
			t.Fatalf("List after concurrent ops = %d keys, want %d", len(all), want)
		}
	})

	if !opts.SkipClosed {
		t.Run("Closed", func(t *testing.T) {
			s := factory(t)
			if err := s.Put(ctx, "k", []byte("v")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := s.Put(ctx, "k2", []byte("v")); !errors.Is(err, objstore.ErrClosed) {
				t.Fatalf("Put after Close = %v, want ErrClosed", err)
			}
			if _, err := s.Get(ctx, "k"); !errors.Is(err, objstore.ErrClosed) {
				t.Fatalf("Get after Close = %v, want ErrClosed", err)
			}
			if err := s.Delete(ctx, "k"); !errors.Is(err, objstore.ErrClosed) {
				t.Fatalf("Delete after Close = %v, want ErrClosed", err)
			}
		})
	}
}
