package objstore

import (
	"context"
	"errors"
	"testing"
)

func TestDecodeMembersRejectsDuplicatesAndBlanks(t *testing.T) {
	for _, c := range []struct {
		name string
		blob string
	}{
		{"duplicate", "a:1\na:1"},
		{"duplicate-nonadjacent", "a:1\nb:2\na:1"},
		{"blank-line", "a:1\n\nb:2"},
		{"whitespace-line", "a:1\n  \nb:2"},
		{"empty", ""},
	} {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeMembers([]byte(c.blob)); !errors.Is(err, ErrInvalidMembers) {
				t.Fatalf("DecodeMembers(%q) = %v, want ErrInvalidMembers", c.blob, err)
			}
		})
	}
	// Valid record still decodes.
	got, err := DecodeMembers(EncodeMembers([]string{"b:2", "a:1"}))
	if err != nil {
		t.Fatalf("DecodeMembers(valid): %v", err)
	}
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("DecodeMembers = %v, want [a:1 b:2]", got)
	}
}

func TestConnectRejectsDuplicateSpec(t *testing.T) {
	// A duplicated address in a static -stores spec would register two
	// same-named backends and skew rendezvous hashing; Connect must
	// refuse before dialing anything.
	srv, err := NewServer("127.0.0.1:0", NewMemStore(MemConfig{}), ServerConfig{})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()
	addr := srv.Addr()
	if _, err := Connect(addr+","+addr, ClientConfig{}); !errors.Is(err, ErrInvalidMembers) {
		t.Fatalf("Connect(dup spec) = %v, want ErrInvalidMembers", err)
	}
}

func TestPublishMembershipRejectsDuplicates(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewMemStore(MemConfig{}), ServerConfig{})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()
	addr := srv.Addr()
	err = PublishMembership(context.Background(), []string{addr, addr}, ClientConfig{})
	if !errors.Is(err, ErrInvalidMembers) {
		t.Fatalf("PublishMembership(dup) = %v, want ErrInvalidMembers", err)
	}
}
