// Package objstore implements the remote checkpoint storage tier of §2.2:
// an object-store abstraction with an in-memory backend, token-bucket
// bandwidth shaping, replication-aware capacity accounting, and a real
// TCP server/client pair speaking a compact length-prefixed protocol.
//
// The paper's checkpoints go to a planet-scale replicated object store
// whose write bandwidth is the system bottleneck; this package reproduces
// the two properties that matter for the evaluation — byte-exact write
// accounting and configurable bandwidth — while the TCP path exercises the
// same code the trainer would use against a real remote store.
package objstore

import (
	"context"
	"errors"
)

// ErrNotFound is returned by Get/Delete/Stat for missing keys.
var ErrNotFound = errors.New("objstore: key not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("objstore: store closed")

// ErrStoreUnavailable classifies transport-layer failures talking to a
// remote store: refused or timed-out dials, broken connections, and IO
// deadlines. Client wraps every such failure so callers can separate
// "the store is down or partitioned" (retryable; the commit protocol
// aborts cleanly and tries again) from data-level errors like a missing
// key or a corrupt frame, which no amount of retrying fixes. Match with
// errors.Is.
var ErrStoreUnavailable = errors.New("objstore: store unavailable")

// Store is the object storage interface used by the checkpoint engine.
// Values are immutable once put; a Put to an existing key overwrites it.
type Store interface {
	// Put stores value under key. Implementations must not retain
	// value after Put returns: the checkpoint engine recycles encode
	// buffers through a pool the moment Put completes (MemStore copies
	// on Put; the TCP client writes the bytes to the socket before
	// returning). A write-behind implementation must copy.
	Put(ctx context.Context, key string, value []byte) error
	// Get returns the value stored under key, or ErrNotFound.
	Get(ctx context.Context, key string) ([]byte, error)
	// Delete removes key. Deleting a missing key returns ErrNotFound.
	Delete(ctx context.Context, key string) error
	// List returns all keys with the given prefix, sorted.
	List(ctx context.Context, prefix string) ([]string, error)
	// Stat returns the stored size of key, or ErrNotFound.
	Stat(ctx context.Context, key string) (int64, error)
	// Close releases resources.
	Close() error
}

// Usage is a snapshot of a store's accounting counters. BytesWritten is
// cumulative (the bandwidth metric of Figure 15/17); CapacityBytes is the
// currently-occupied capacity (Figure 16/17). Both include the replication
// factor.
type Usage struct {
	BytesWritten        int64
	BytesRead           int64
	CapacityBytes       int64
	Objects             int
	Puts, Gets, Deletes int64
}

// OwnedPutter is an optional Store extension: PutOwned stores value
// while taking ownership of the slice — the caller must not touch value
// afterward. Servers use it to hand a request's decoded frame buffer
// straight to the backend, skipping the defensive copy Put's contract
// forces on write-behind implementations. MemStore implements it.
type OwnedPutter interface {
	PutOwned(ctx context.Context, key string, value []byte) error
}

// PutOwned stores value via s.PutOwned when s implements OwnedPutter,
// falling back to a plain Put. Either way the caller relinquishes value.
func PutOwned(ctx context.Context, s Store, key string, value []byte) error {
	if op, ok := s.(OwnedPutter); ok {
		return op.PutOwned(ctx, key, value)
	}
	return s.Put(ctx, key, value)
}

// Accountant is implemented by stores that expose usage counters.
type Accountant interface {
	Usage() Usage
	// ResetBandwidth zeroes the cumulative read/write counters (capacity
	// is preserved); experiments call it at interval boundaries.
	ResetBandwidth()
}
