package objstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Disk segment record format (all integers little-endian):
//
//	u32 crc32c   Castagnoli checksum over everything after this field
//	u8  flags    recPut or recTombstone
//	u32 keyLen
//	u32 valLen   0 for tombstones
//	key bytes
//	value bytes
//
// A segment file is a pure append-only concatenation of records. The
// checksum covers the lengths as well as the payload, so a torn header
// is as detectable as a torn body: any record whose frame does not
// fully checksum is treated as the end of the log. That is exactly the
// state a kill -9 (or power loss) mid-append leaves behind — the
// recovery scan truncates the torn tail rather than ever surfacing a
// partial record.
const (
	recHeaderLen = 13

	recPut       = 0
	recTombstone = 1
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the checksum real storage systems use for exactly this
// torn-write detection job.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segRecord is one parsed record: offsets are relative to the start of
// the segment the record was scanned from. Values are not materialized —
// readers slice them out of the segment by [valOff, valOff+valLen).
type segRecord struct {
	key       string
	tombstone bool
	off       int64 // record start
	valOff    int64 // value start
	valLen    int64
	size      int64 // full framed record length
}

// appendRecord frames (key, value) as a segment record onto buf and
// returns the extended slice. A tombstone records a deletion; its value
// must be empty.
func appendRecord(buf []byte, key string, value []byte, tombstone bool) []byte {
	flags := byte(recPut)
	if tombstone {
		flags = recTombstone
	}
	start := len(buf)
	var hdr [recHeaderLen]byte
	hdr[4] = flags
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(value)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	crc := crc32.Checksum(buf[start+4:], castagnoli)
	binary.LittleEndian.PutUint32(buf[start:], crc)
	return buf
}

// recordLen returns the framed size of a (key, value) record.
func recordLen(keyLen, valLen int) int64 {
	return recHeaderLen + int64(keyLen) + int64(valLen)
}

// scanRecords walks blob as a segment and returns every complete,
// checksum-valid record plus the length of the longest valid prefix.
// err is non-nil iff the blob does not end cleanly on a record
// boundary — a torn or corrupt tail. Returned records never reference
// bytes beyond the valid prefix, so a recovery scan may truncate the
// segment to valid and keep exactly the records returned: the longest
// valid prefix, never a partial record.
func scanRecords(blob []byte) (recs []segRecord, valid int64, err error) {
	off := int64(0)
	n := int64(len(blob))
	torn := func(format string, args ...any) ([]segRecord, int64, error) {
		return recs, off, fmt.Errorf("objstore: segment invalid at offset %d: %s", off, fmt.Sprintf(format, args...))
	}
	for off < n {
		if n-off < recHeaderLen {
			return torn("torn header: %d trailing bytes", n-off)
		}
		hdr := blob[off : off+recHeaderLen]
		crc := binary.LittleEndian.Uint32(hdr)
		flags := hdr[4]
		keyLen := int64(binary.LittleEndian.Uint32(hdr[5:]))
		valLen := int64(binary.LittleEndian.Uint32(hdr[9:]))
		if flags != recPut && flags != recTombstone {
			return torn("unknown record flags 0x%02x", flags)
		}
		if keyLen == 0 || keyLen > maxKeyLen {
			return torn("key length %d out of range", keyLen)
		}
		if valLen > maxValueLen {
			return torn("value length %d out of range", valLen)
		}
		if flags == recTombstone && valLen != 0 {
			return torn("tombstone with %d value bytes", valLen)
		}
		size := recHeaderLen + keyLen + valLen
		if n-off < size {
			return torn("torn body: record needs %d bytes, %d remain", size, n-off)
		}
		if got := crc32.Checksum(blob[off+4:off+size], castagnoli); got != crc {
			return torn("checksum mismatch: stored %08x, computed %08x", crc, got)
		}
		recs = append(recs, segRecord{
			key:       string(blob[off+recHeaderLen : off+recHeaderLen+keyLen]),
			tombstone: flags == recTombstone,
			off:       off,
			valOff:    off + recHeaderLen + keyLen,
			valLen:    valLen,
			size:      size,
		})
		off += size
	}
	return recs, off, nil
}
