package objstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Client is a Store backed by a remote Server over TCP. It maintains a
// small connection pool so the checkpoint writer can pipeline concurrent
// chunk uploads, and transparently redials broken connections.
type Client struct {
	addr     string
	poolSize int
	timeout  time.Duration

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
}

type clientConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// ClientConfig configures Dial.
type ClientConfig struct {
	// PoolSize caps pooled idle connections; zero means 4.
	PoolSize int
	// DialTimeout bounds connection establishment; zero means 5s.
	DialTimeout time.Duration
}

// Dial connects to a Server at addr and verifies reachability with a
// List probe.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	cl := &Client{addr: addr, poolSize: cfg.PoolSize, timeout: cfg.DialTimeout}
	// Probe, bounded by the dial timeout so an accepting-but-unresponsive
	// endpoint cannot hang Dial forever.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DialTimeout)
	defer cancel()
	if _, err := cl.List(ctx, "\x00probe\x00"); err != nil {
		return nil, fmt.Errorf("objstore: dial probe: %w", err)
	}
	return cl, nil
}

// acquire returns a connection and whether it came from the idle pool —
// pooled connections may have been killed by the server or the network
// while parked, so their first use is allowed one retry.
func (cl *Client) acquire() (cc *clientConn, pooled bool, err error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, false, ErrClosed
	}
	if n := len(cl.idle); n > 0 {
		cc := cl.idle[n-1]
		cl.idle = cl.idle[:n-1]
		cl.mu.Unlock()
		return cc, true, nil
	}
	cl.mu.Unlock()
	c, err := net.DialTimeout("tcp", cl.addr, cl.timeout)
	if err != nil {
		return nil, false, unavailable(cl.addr, "dial", err)
	}
	return &clientConn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}, false, nil
}

func (cl *Client) release(cc *clientConn, broken bool) {
	if broken {
		cc.c.Close()
		return
	}
	cl.mu.Lock()
	if cl.closed || len(cl.idle) >= cl.poolSize {
		cl.mu.Unlock()
		cc.c.Close()
		return
	}
	cl.idle = append(cl.idle, cc)
	cl.mu.Unlock()
}

// roundTrip sends one request and reads its response on a pooled
// connection, honoring ctx deadlines via the connection deadline. A
// transport failure on a connection taken from the idle pool is retried
// once on a fresh dial: a parked connection may have been silently
// reset while idle, and every protocol op is idempotent, so one retry
// turns "stale pool after a network blip" into a non-event instead of a
// spurious ErrStoreUnavailable.
func (cl *Client) roundTrip(ctx context.Context, req *request) (uint8, []byte, error) {
	status, payload, pooled, err := cl.roundTripOnce(ctx, req)
	if err != nil && pooled && errors.Is(err, ErrStoreUnavailable) && ctx.Err() == nil {
		// The other parked connections died in the same network event;
		// drop them all so the retry (and every later op) dials fresh.
		cl.purgeIdle()
		status, payload, _, err = cl.roundTripOnce(ctx, req)
	}
	return status, payload, err
}

// purgeIdle closes every parked connection.
func (cl *Client) purgeIdle() {
	cl.mu.Lock()
	idle := cl.idle
	cl.idle = nil
	cl.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
}

func (cl *Client) roundTripOnce(ctx context.Context, req *request) (uint8, []byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, false, err
	}
	cc, pooled, err := cl.acquire()
	if err != nil {
		return 0, nil, pooled, err
	}
	if dl, ok := ctx.Deadline(); ok {
		cc.c.SetDeadline(dl)
	} else {
		cc.c.SetDeadline(time.Time{})
	}
	if err := writeRequest(cc.bw, req); err != nil {
		cl.release(cc, true)
		return 0, nil, pooled, unavailable(cl.addr, "write", err)
	}
	if err := cc.bw.Flush(); err != nil {
		cl.release(cc, true)
		return 0, nil, pooled, unavailable(cl.addr, "write", err)
	}
	status, payload, err := readResponse(cc.br)
	if err != nil {
		cl.release(cc, true)
		return 0, nil, pooled, unavailable(cl.addr, "read", err)
	}
	cl.release(cc, false)
	return status, payload, pooled, nil
}

// unavailable wraps a transport failure as ErrStoreUnavailable. Only
// dial and connection IO errors come through here — server-reported
// statuses (statusErr) never do, so a healthy store returning
// ErrNotFound or a data error is never misread as "store down".
func unavailable(addr, op string, err error) error {
	return fmt.Errorf("%w: %s %s: %v", ErrStoreUnavailable, op, addr, err)
}

func statusErr(status uint8, payload []byte) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return ErrNotFound
	default:
		return fmt.Errorf("objstore: server error: %s", payload)
	}
}

// Put implements Store.
func (cl *Client) Put(ctx context.Context, key string, value []byte) error {
	status, payload, err := cl.roundTrip(ctx, &request{op: opPut, key: key, value: value})
	if err != nil {
		return err
	}
	return statusErr(status, payload)
}

// Get implements Store.
func (cl *Client) Get(ctx context.Context, key string) ([]byte, error) {
	status, payload, err := cl.roundTrip(ctx, &request{op: opGet, key: key})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Delete implements Store.
func (cl *Client) Delete(ctx context.Context, key string) error {
	status, payload, err := cl.roundTrip(ctx, &request{op: opDelete, key: key})
	if err != nil {
		return err
	}
	return statusErr(status, payload)
}

// List implements Store.
func (cl *Client) List(ctx context.Context, prefix string) ([]string, error) {
	status, payload, err := cl.roundTrip(ctx, &request{op: opList, key: prefix})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, payload); err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, nil
	}
	return strings.Split(string(payload), "\n"), nil
}

// Stat implements Store.
func (cl *Client) Stat(ctx context.Context, key string) (int64, error) {
	status, payload, err := cl.roundTrip(ctx, &request{op: opStat, key: key})
	if err != nil {
		return 0, err
	}
	if err := statusErr(status, payload); err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, fmt.Errorf("objstore: malformed stat response: %d bytes", len(payload))
	}
	return int64(binary.LittleEndian.Uint64(payload)), nil
}

// Close closes all pooled connections.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil
	}
	cl.closed = true
	for _, cc := range cl.idle {
		cc.c.Close()
	}
	cl.idle = nil
	return nil
}
