package objstore

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/wire"
)

func memBackends(n int) []Backend {
	bs := make([]Backend, n)
	for i := range bs {
		bs[i] = Backend{Name: fmt.Sprintf("store-%d", i), Store: NewMemStore(MemConfig{})}
	}
	return bs
}

// TestRoutedDeterministicAcrossInstances pins the routing invariant the
// whole fleet relies on: any client instance built over the same member
// names — in any listing order — maps every key to the same backend.
func TestRoutedDeterministicAcrossInstances(t *testing.T) {
	bs := memBackends(5)
	a, err := NewRouted(bs)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]Backend(nil), bs...)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b, err := NewRouted(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for job := 0; job < 4; job++ {
		for id := 0; id < 8; id++ {
			for c := 0; c < 16; c++ {
				key := wire.ChunkKey(fmt.Sprintf("job-%d", job), id, 0, c)
				ra, rb := a.RouteKey(key), b.RouteKey(key)
				if ra != rb {
					t.Fatalf("key %q routes to %q on one instance, %q on another", key, ra, rb)
				}
				counts[ra]++
			}
		}
	}
	// Rendezvous hashing should spread the keyspace: every backend owns
	// a nonzero share of 512 keys.
	for _, b := range bs {
		if counts[b.Name] == 0 {
			t.Fatalf("backend %q owns no keys; distribution %v", b.Name, counts)
		}
	}
}

// TestRoutedPinnedKeys: control-plane registers and the membership
// record must sit on the anchor (smallest name) so fleet resizes never
// relocate them.
func TestRoutedPinnedKeys(t *testing.T) {
	small, err := NewRouted(memBackends(2))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRouted(memBackends(5)) // superset: same anchor name
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"jobA/ctrl/lease",
		"some/job/with/slashes/ctrl/lease",
		MembersKey,
	} {
		if got := small.RouteKey(key); got != "store-0" {
			t.Fatalf("pinned key %q routed to %q, want anchor store-0", key, got)
		}
		if got := big.RouteKey(key); got != "store-0" {
			t.Fatalf("pinned key %q moved to %q after fleet growth", key, got)
		}
	}
	// Sanity: ordinary checkpoint keys are NOT all on the anchor.
	moved := false
	for i := 0; i < 32 && !moved; i++ {
		moved = big.RouteKey(wire.ChunkKey("jobA", 1, 0, i)) != "store-0"
	}
	if !moved {
		t.Fatal("no data key left the anchor across 32 chunks; routing looks pinned-everything")
	}
}

// TestRoutedListMerge: keys with interleaved prefixes scattered over the
// backends come back as one sorted, deduplicated listing per prefix —
// exactly what manifest listing and the orphan sweep walk.
func TestRoutedListMerge(t *testing.T) {
	r, err := NewRouted(memBackends(3))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	var want []string
	for _, job := range []string{"alpha", "alpha-prime", "beta"} {
		for id := 0; id < 3; id++ {
			for c := 0; c < 5; c++ {
				k := wire.ChunkKey(job, id, 7, c)
				want = append(want, k)
				if err := r.Put(ctx, k, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			mk := wire.ManifestKey(job, id)
			want = append(want, mk)
			if err := r.Put(ctx, mk, []byte("{}")); err != nil {
				t.Fatal(err)
			}
		}
	}
	sort.Strings(want)

	all, err := r.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("full listing mismatch:\n got %v\nwant %v", all, want)
	}
	// "alpha" prefix must include alpha-prime's keys (string prefix
	// semantics, same as MemStore) and exclude beta's.
	got, err := r.List(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	var wantAlpha []string
	for _, k := range want {
		if strings.HasPrefix(k, "alpha") {
			wantAlpha = append(wantAlpha, k)
		}
	}
	if !reflect.DeepEqual(got, wantAlpha) {
		t.Fatalf("prefix listing mismatch:\n got %v\nwant %v", got, wantAlpha)
	}
	// Narrow prefix fans out but lands only matching keys.
	got, err = r.List(ctx, wire.CheckpointPrefix("beta", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 { // 5 chunks + manifest
		t.Fatalf("beta ckpt 1 listing has %d keys, want 6: %v", len(got), got)
	}
}

// TestRoutedRoundTrip drives every Store verb through routing and then
// verifies each object really lives on exactly the backend RouteKey
// names.
func TestRoutedRoundTrip(t *testing.T) {
	bs := memBackends(4)
	r, err := NewRouted(bs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("job/ckpt/%08d/table/0000/chunk/%06d", i/8, i%8)
		if err := r.Put(ctx, keys[i], []byte(keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		v, err := r.Get(ctx, k)
		if err != nil || string(v) != k {
			t.Fatalf("get %q = %q, %v", k, v, err)
		}
		if sz, err := r.Stat(ctx, k); err != nil || sz != int64(len(k)) {
			t.Fatalf("stat %q = %d, %v", k, sz, err)
		}
		owner := r.RouteKey(k)
		for _, b := range bs {
			_, err := b.Store.Stat(ctx, k)
			if b.Name == owner && err != nil {
				t.Fatalf("key %q missing from its owner %q: %v", k, owner, err)
			}
			if b.Name != owner && err == nil {
				t.Fatalf("key %q present on non-owner %q", k, b.Name)
			}
		}
	}
	for _, k := range keys {
		if err := r.Delete(ctx, k); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Get(ctx, k); err != ErrNotFound {
			t.Fatalf("get after delete: %v", err)
		}
	}
	if u := r.Usage(); u.Objects != 0 || u.Puts != 64 || u.Deletes != 64 {
		t.Fatalf("aggregate usage off: %+v", u)
	}
}

// TestRoutedOverTCP runs the full client path: N servers over striped
// MemStores, one RoutedStore of TCP clients built via Connect's static
// list form, concurrent writers, then a membership-expanded second
// client that must observe identical placement.
func TestRoutedOverTCP(t *testing.T) {
	const n = 3
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer("127.0.0.1:0", NewMemStore(MemConfig{}), ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}
	ctx := context.Background()
	store, err := Connect(strings.Join(addrs, ","), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rs, ok := store.(*RoutedStore)
	if !ok {
		t.Fatalf("Connect over %d addrs returned %T, want *RoutedStore", n, store)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := fmt.Sprintf("job/ckpt/%08d/table/%04d/chunk/%06d", w, w, i)
				if err := store.Put(ctx, k, []byte(k)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	all, err := store.List(ctx, "job/")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 160 {
		t.Fatalf("merged listing has %d keys, want 160", len(all))
	}

	// Membership discovery: publish the record, reconnect via a single
	// seed, and require the expanded client to agree on every placement.
	if err := PublishMembership(ctx, addrs, ClientConfig{}); err != nil {
		t.Fatal(err)
	}
	seeded, err := Connect(addrs[n-1], ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer seeded.Close()
	rs2, ok := seeded.(*RoutedStore)
	if !ok {
		t.Fatalf("seeded Connect returned %T, want *RoutedStore", seeded)
	}
	if len(rs2.Backends()) != n {
		t.Fatalf("seeded client found %d backends, want %d", len(rs2.Backends()), n)
	}
	for _, k := range all {
		if rs.RouteKey(k) != rs2.RouteKey(k) {
			t.Fatalf("static and seeded clients disagree on %q: %q vs %q",
				k, rs.RouteKey(k), rs2.RouteKey(k))
		}
		if v, err := seeded.Get(ctx, k); err != nil || string(v) != k {
			t.Fatalf("seeded get %q = %q, %v", k, v, err)
		}
	}
}

// TestRoutedBackendDownPutFails: with one backend down, Puts routed to
// it fail cleanly (no partial success, no hang) while other keys keep
// flowing — the property the coordinator's two-phase commit builds on.
func TestRoutedBackendDownPutFails(t *testing.T) {
	const n = 3
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer("127.0.0.1:0", NewMemStore(MemConfig{}), ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	store, err := Connect(strings.Join(addrs, ","), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rs := store.(*RoutedStore)

	// Find which server the routed store calls addrs[down].
	down := 1
	servers[down].Close()

	ctx := context.Background()
	sawFail, sawOK := false, false
	for i := 0; i < 512 && !(sawFail && sawOK); i++ {
		k := fmt.Sprintf("faultjob/ckpt/%08d/table/0000/chunk/%06d", i/8, i%8)
		err := store.Put(ctx, k, []byte(k))
		if rs.RouteKey(k) == addrs[down] {
			if err == nil {
				t.Fatalf("put %q to dead backend succeeded", k)
			}
			sawFail = true
		} else {
			if err != nil {
				t.Fatalf("put %q to live backend failed: %v", k, err)
			}
			sawOK = true
		}
	}
	if !sawFail || !sawOK {
		t.Fatalf("fault coverage incomplete: sawFail=%v sawOK=%v", sawFail, sawOK)
	}
}

// TestMemStorePutOwned pins the owned-put contract: the store aliases
// the handed-off buffer rather than copying, and Get still returns a
// private copy to callers.
func TestMemStorePutOwned(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := context.Background()
	owned := []byte("payload-v1")
	if err := s.PutOwned(ctx, "k", owned); err != nil {
		t.Fatal(err)
	}
	got1, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	got1[0] = 'X' // mutating a Get result must not reach the store
	got2, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "payload-v1" {
		t.Fatalf("Get returned shared storage: %q", got2)
	}
	if u := s.Usage(); u.Puts != 1 || u.Objects != 1 || u.CapacityBytes != int64(len(owned)) {
		t.Fatalf("usage after PutOwned: %+v", u)
	}
}

// TestMemStoreStriping hammers disjoint keys from many goroutines —
// run under -race this is the regression test for the striped rewrite.
func TestMemStoreStriping(t *testing.T) {
	s := NewMemStore(MemConfig{Stripes: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("w%d/obj%d", w, i)
				if err := s.Put(ctx, k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(ctx, k); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := s.Delete(ctx, k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	u := s.Usage()
	wantObjects := 0
	for i := 0; i < 50; i++ {
		if i%3 != 0 {
			wantObjects++
		}
	}
	wantObjects *= 8
	if u.Objects != wantObjects {
		t.Fatalf("objects = %d, want %d (usage %+v)", u.Objects, wantObjects, u)
	}
	keys, err := s.List(ctx, "w3/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != wantObjects/8 {
		t.Fatalf("w3 listing has %d keys, want %d", len(keys), wantObjects/8)
	}
}
