package objstore

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol (all integers little-endian):
//
//	Request:  u32 magic | u8 op | u16 keyLen | key | u32 valueLen | value
//	Response: u8 status | u32 payloadLen | payload
//
// For GET the response payload is the value; for LIST it is keys joined
// with '\n'; for STAT it is the size as 8 bytes; for errors it is the
// error message. valueLen is zero for ops without a body.
const (
	protoMagic = 0x434E5231 // "CNR1"

	opPut    = 1
	opGet    = 2
	opDelete = 3
	opList   = 4
	opStat   = 5

	statusOK       = 0
	statusNotFound = 1
	statusError    = 2
)

// maxValueLen bounds a single object to guard against corrupt frames
// allocating unbounded memory. Checkpoint chunks are far smaller.
const maxValueLen = 1 << 30 // 1 GiB

// maxKeyLen bounds object key length.
const maxKeyLen = 1 << 12

type request struct {
	op    uint8
	key   string
	value []byte
}

// writeRequest frames and writes a request.
func writeRequest(w io.Writer, req *request) error {
	if len(req.key) > maxKeyLen {
		return fmt.Errorf("objstore: key too long: %d bytes", len(req.key))
	}
	if len(req.value) > maxValueLen {
		return fmt.Errorf("objstore: value too long: %d bytes", len(req.value))
	}
	hdr := make([]byte, 4+1+2)
	binary.LittleEndian.PutUint32(hdr, protoMagic)
	hdr[4] = req.op
	binary.LittleEndian.PutUint16(hdr[5:], uint16(len(req.key)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := io.WriteString(w, req.key); err != nil {
		return err
	}
	var vl [4]byte
	binary.LittleEndian.PutUint32(vl[:], uint32(len(req.value)))
	if _, err := w.Write(vl[:]); err != nil {
		return err
	}
	if len(req.value) > 0 {
		if _, err := w.Write(req.value); err != nil {
			return err
		}
	}
	return nil
}

// readRequest reads one framed request.
func readRequest(r io.Reader) (*request, error) {
	hdr := make([]byte, 4+1+2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr); m != protoMagic {
		return nil, fmt.Errorf("objstore: bad magic 0x%08x", m)
	}
	req := &request{op: hdr[4]}
	keyLen := int(binary.LittleEndian.Uint16(hdr[5:]))
	if keyLen > maxKeyLen {
		return nil, fmt.Errorf("objstore: key length %d exceeds limit", keyLen)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(r, key); err != nil {
		return nil, err
	}
	req.key = string(key)
	var vl [4]byte
	if _, err := io.ReadFull(r, vl[:]); err != nil {
		return nil, err
	}
	valueLen := binary.LittleEndian.Uint32(vl[:])
	if valueLen > maxValueLen {
		return nil, fmt.Errorf("objstore: value length %d exceeds limit", valueLen)
	}
	if valueLen > 0 {
		req.value = make([]byte, valueLen)
		if _, err := io.ReadFull(r, req.value); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// writeResponse frames and writes a response.
func writeResponse(w io.Writer, status uint8, payload []byte) error {
	if len(payload) > maxValueLen {
		return fmt.Errorf("objstore: response too long: %d bytes", len(payload))
	}
	hdr := make([]byte, 5)
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readResponse reads one framed response.
func readResponse(r io.Reader) (status uint8, payload []byte, err error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	status = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxValueLen {
		return 0, nil, fmt.Errorf("objstore: response length %d exceeds limit", n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
	}
	return status, payload, nil
}
