package objstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestMemStorePutGet(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	if err := s.Put(ctx, "a/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(ctx, "a/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "hello" {
		t.Fatalf("got %q", v)
	}
}

func TestMemStoreGetCopies(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	orig := []byte("data")
	s.Put(ctx, "k", orig)
	orig[0] = 'X' // caller mutation must not affect stored value
	v, _ := s.Get(ctx, "k")
	if string(v) != "data" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
	v[0] = 'Y' // returned value mutation must not affect store
	v2, _ := s.Get(ctx, "k")
	if string(v2) != "data" {
		t.Fatalf("returned value aliased store: %q", v2)
	}
}

func TestMemStoreNotFound(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	if _, err := s.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get err = %v", err)
	}
	if err := s.Delete(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete err = %v", err)
	}
	if _, err := s.Stat(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat err = %v", err)
	}
}

func TestMemStoreDeleteReleasesCapacity(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	s.Put(ctx, "k", make([]byte, 100))
	if got := s.Usage().CapacityBytes; got != 100 {
		t.Fatalf("capacity = %d", got)
	}
	s.Delete(ctx, "k")
	u := s.Usage()
	if u.CapacityBytes != 0 || u.Objects != 0 {
		t.Fatalf("capacity after delete = %+v", u)
	}
	// Bandwidth stays cumulative.
	if u.BytesWritten != 100 {
		t.Fatalf("bytes written = %d", u.BytesWritten)
	}
}

func TestMemStoreOverwriteAccounting(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	s.Put(ctx, "k", make([]byte, 100))
	s.Put(ctx, "k", make([]byte, 40))
	u := s.Usage()
	if u.CapacityBytes != 40 {
		t.Fatalf("capacity = %d, want 40", u.CapacityBytes)
	}
	if u.BytesWritten != 140 {
		t.Fatalf("bytes written = %d, want 140", u.BytesWritten)
	}
	if u.Objects != 1 {
		t.Fatalf("objects = %d, want 1", u.Objects)
	}
}

func TestMemStoreReplicationAccounting(t *testing.T) {
	s := NewMemStore(MemConfig{Replication: 3})
	ctx := ctxT(t)
	s.Put(ctx, "k", make([]byte, 10))
	u := s.Usage()
	if u.BytesWritten != 30 || u.CapacityBytes != 30 {
		t.Fatalf("replicated accounting wrong: %+v", u)
	}
	s.Delete(ctx, "k")
	if s.Usage().CapacityBytes != 0 {
		t.Fatal("replicated capacity not released")
	}
}

func TestMemStoreList(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	for _, k := range []string{"ckpt/2/a", "ckpt/1/b", "ckpt/1/a", "other"} {
		s.Put(ctx, k, []byte("x"))
	}
	keys, err := s.List(ctx, "ckpt/1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "ckpt/1/a" || keys[1] != "ckpt/1/b" {
		t.Fatalf("List = %v", keys)
	}
	all, _ := s.List(ctx, "")
	if len(all) != 4 {
		t.Fatalf("List all = %v", all)
	}
}

func TestMemStoreStat(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	s.Put(ctx, "k", make([]byte, 77))
	n, err := s.Stat(ctx, "k")
	if err != nil || n != 77 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
}

func TestMemStoreClosed(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	s.Close()
	if err := s.Put(ctx, "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put err = %v", err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get err = %v", err)
	}
	if _, err := s.List(ctx, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("List err = %v", err)
	}
}

func TestMemStoreContextCancelled(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Put(ctx, "k", nil); err == nil {
		t.Fatal("cancelled context should error")
	}
}

func TestMemStoreResetBandwidth(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	s.Put(ctx, "k", make([]byte, 50))
	s.ResetBandwidth()
	u := s.Usage()
	if u.BytesWritten != 0 {
		t.Fatal("bandwidth not reset")
	}
	if u.CapacityBytes != 50 {
		t.Fatal("capacity should survive bandwidth reset")
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMemStore(MemConfig{})
	ctx := ctxT(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d/k%d", g, i)
				if err := s.Put(ctx, key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				v, err := s.Get(ctx, key)
				if err != nil || string(v) != key {
					t.Errorf("get %s: %q %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if u := s.Usage(); u.Objects != 400 {
		t.Fatalf("objects = %d, want 400", u.Objects)
	}
}

func TestThrottleVirtualTime(t *testing.T) {
	clock := simclock.NewSim(time.Time{})
	th := NewThrottle(1000, clock) // 1000 B/s
	ctx := context.Background()
	start := clock.Now()
	if err := th.Wait(ctx, 500); err != nil {
		t.Fatal(err)
	}
	// First wait reserves but does not block (link was free).
	if d := clock.Since(start); d != 0 {
		t.Fatalf("first wait advanced clock by %v", d)
	}
	// Second wait must wait out the 500ms reservation.
	if err := th.Wait(ctx, 500); err != nil {
		t.Fatal(err)
	}
	if d := clock.Since(start); d != 500*time.Millisecond {
		t.Fatalf("second wait advanced clock by %v, want 500ms", d)
	}
	if bl := th.Backlog(); bl != 500*time.Millisecond {
		t.Fatalf("backlog = %v, want 500ms", bl)
	}
}

func TestThrottleTransferTime(t *testing.T) {
	th := NewThrottle(1<<20, simclock.NewSim(time.Time{}))
	if d := th.TransferTime(1 << 20); d != time.Second {
		t.Fatalf("TransferTime = %v, want 1s", d)
	}
}

func TestThrottleZeroBytes(t *testing.T) {
	th := NewThrottle(100, simclock.NewSim(time.Time{}))
	if err := th.Wait(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestThrottleInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewThrottle(0, nil)
}

func TestMemStoreThrottledPutAdvancesClock(t *testing.T) {
	clock := simclock.NewSim(time.Time{})
	s := NewMemStore(MemConfig{WriteBandwidth: 1 << 10, Clock: clock})
	ctx := ctxT(t)
	start := clock.Now()
	s.Put(ctx, "a", make([]byte, 1024))
	s.Put(ctx, "b", make([]byte, 1024)) // waits for a's reservation
	if d := clock.Since(start); d != time.Second {
		t.Fatalf("clock advanced %v, want 1s", d)
	}
}

func TestMemStoreThrottledGetAdvancesClock(t *testing.T) {
	clock := simclock.NewSim(time.Time{})
	s := NewMemStore(MemConfig{ReadBandwidth: 1 << 10, Clock: clock})
	ctx := ctxT(t)
	if err := s.Put(ctx, "a", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	if _, err := s.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "a"); err != nil { // waits for the first read's reservation
		t.Fatal(err)
	}
	if d := clock.Since(start); d != time.Second {
		t.Fatalf("clock advanced %v, want 1s", d)
	}
	// Replication must not multiply read cost: a Get is served from one
	// copy. With replication 3 the same two reads still cost 1s.
	s3 := NewMemStore(MemConfig{Replication: 3, ReadBandwidth: 1 << 10, Clock: clock})
	if err := s3.Put(ctx, "a", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	start = clock.Now()
	s3.Get(ctx, "a")
	s3.Get(ctx, "a")
	if d := clock.Since(start); d != time.Second {
		t.Fatalf("replicated read cost %v, want 1s", d)
	}
}

func TestMemStoreThrottledGetMissingKeyIsFree(t *testing.T) {
	clock := simclock.NewSim(time.Time{})
	s := NewMemStore(MemConfig{ReadBandwidth: 1, Clock: clock}) // 1 B/s: any charge is visible
	start := clock.Now()
	if _, err := s.Get(ctxT(t), "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v", err)
	}
	if d := clock.Since(start); d != 0 {
		t.Fatalf("missing key charged %v of read bandwidth", d)
	}
}

// --- TCP server/client tests ---

func newTCPPair(t *testing.T) (*Client, *MemStore) {
	t.Helper()
	backend := NewMemStore(MemConfig{})
	srv, err := NewServer("127.0.0.1:0", backend, ServerConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(srv.Addr(), ClientConfig{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, backend
}

func TestTCPPutGetDelete(t *testing.T) {
	cl, _ := newTCPPair(t)
	ctx := ctxT(t)
	value := bytes.Repeat([]byte("checkpoint-chunk-"), 1000)
	if err := cl.Put(ctx, "ckpt/0/chunk/0", value); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(ctx, "ckpt/0/chunk/0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, value) {
		t.Fatalf("value mismatch: %d vs %d bytes", len(got), len(value))
	}
	if err := cl.Delete(ctx, "ckpt/0/chunk/0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, "ckpt/0/chunk/0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestTCPNotFound(t *testing.T) {
	cl, _ := newTCPPair(t)
	ctx := ctxT(t)
	if _, err := cl.Get(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v", err)
	}
	if err := cl.Delete(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete = %v", err)
	}
	if _, err := cl.Stat(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat = %v", err)
	}
}

func TestTCPListAndStat(t *testing.T) {
	cl, _ := newTCPPair(t)
	ctx := ctxT(t)
	cl.Put(ctx, "a/1", make([]byte, 10))
	cl.Put(ctx, "a/2", make([]byte, 20))
	cl.Put(ctx, "b/1", make([]byte, 30))
	keys, err := cl.List(ctx, "a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a/1" || keys[1] != "a/2" {
		t.Fatalf("List = %v", keys)
	}
	empty, err := cl.List(ctx, "zzz")
	if err != nil || empty != nil {
		t.Fatalf("empty List = %v, %v", empty, err)
	}
	n, err := cl.Stat(ctx, "a/2")
	if err != nil || n != 20 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
}

func TestTCPEmptyValue(t *testing.T) {
	cl, _ := newTCPPair(t)
	ctx := ctxT(t)
	if err := cl.Put(ctx, "empty", nil); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(ctx, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("got %d bytes", len(v))
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	cl, backend := newTCPPair(t)
	ctx := ctxT(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("c%d/k%d", g, i)
				if err := cl.Put(ctx, key, []byte(key)); err != nil {
					errs <- err
					return
				}
				v, err := cl.Get(ctx, key)
				if err != nil {
					errs <- err
					return
				}
				if string(v) != key {
					errs <- fmt.Errorf("mismatch %s", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if u := backend.Usage(); u.Objects != 160 {
		t.Fatalf("objects = %d, want 160", u.Objects)
	}
}

func TestTCPServerClose(t *testing.T) {
	backend := NewMemStore(MemConfig{})
	srv, err := NewServer("127.0.0.1:0", backend, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent close.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Requests after close fail.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := cl.Put(ctx, "k", []byte("v")); err == nil {
		t.Fatal("Put after server close should fail")
	}
}

func TestTCPClientClosed(t *testing.T) {
	cl, _ := newTCPPair(t)
	cl.Close()
	cl.Close() // idempotent
	if err := cl.Put(context.Background(), "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPContextDeadline(t *testing.T) {
	cl, _ := newTCPPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cl.Put(ctx, "k", []byte("v")); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

func TestTCPClientRecoversFromBrokenConn(t *testing.T) {
	backend := NewMemStore(MemConfig{})
	srv, err := NewServer("127.0.0.1:0", backend, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr(), ClientConfig{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := ctxT(t)
	if err := cl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address to break pooled conns.
	addr := srv.Addr()
	srv.Close()
	srv2, err := NewServer(addr, backend, ServerConfig{})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	// First call may fail on the stale pooled conn; a retry must succeed
	// with a fresh dial.
	var lastErr error
	ok := false
	for i := 0; i < 3; i++ {
		if _, lastErr = cl.Get(ctx, "k"); lastErr == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("client did not recover: %v", lastErr)
	}
}

func TestClientTransportErrorsAreTyped(t *testing.T) {
	ctx := ctxT(t)

	// Dial to a dead address: connection refused surfaces as
	// ErrStoreUnavailable, both from Dial's probe and from a client
	// built around the address.
	dead, err := NewServer("127.0.0.1:0", NewMemStore(MemConfig{}), ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr()
	dead.Close()
	if _, err := Dial(addr, ClientConfig{DialTimeout: time.Second}); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Dial to dead server = %v, want ErrStoreUnavailable", err)
	}

	// A connection broken mid-session: the pooled conn dies with the
	// server and the next round trip (redial refused) is typed too.
	cl, _ := newTCPPair(t)
	if err := cl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Server-reported statuses must NOT be typed as unavailability: the
	// store is healthy, the key just doesn't exist.
	if _, err := cl.Get(ctx, "absent"); errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("ErrNotFound misclassified as unavailable: %v", err)
	}
}

func TestClientDeadlineIsStoreUnavailable(t *testing.T) {
	// An accepting-but-silent endpoint: reads hit the conn deadline set
	// from ctx, which the client classifies as the store being down.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept and say nothing
		}
	}()
	cl := &Client{addr: ln.Addr().String(), poolSize: 1, timeout: time.Second}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.Get(ctx, "k"); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("stalled read = %v, want ErrStoreUnavailable", err)
	}
}

func TestProtocolRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, rng.Intn(100)+1)
		rng.Read(key)
		value := make([]byte, rng.Intn(10000))
		rng.Read(value)
		var buf bytes.Buffer
		req := &request{op: opPut, key: string(key), value: value}
		if err := writeRequest(&buf, req); err != nil {
			return false
		}
		got, err := readRequest(&buf)
		if err != nil {
			return false
		}
		return got.op == req.op && got.key == req.key && bytes.Equal(got.value, req.value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, 32))
	if _, err := readRequest(buf); err == nil {
		t.Fatal("bad magic should error")
	}
}

func TestProtocolRejectsOversizedKey(t *testing.T) {
	var buf bytes.Buffer
	err := writeRequest(&buf, &request{op: opPut, key: string(make([]byte, maxKeyLen+1))})
	if err == nil {
		t.Fatal("oversized key should error")
	}
}

func BenchmarkTCPPut64KB(b *testing.B) {
	backend := NewMemStore(MemConfig{})
	srv, err := NewServer("127.0.0.1:0", backend, ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	value := make([]byte, 64<<10)
	ctx := context.Background()
	b.SetBytes(int64(len(value)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("k%d", i&15), value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemStorePut64KB(b *testing.B) {
	s := NewMemStore(MemConfig{})
	value := make([]byte, 64<<10)
	ctx := context.Background()
	b.SetBytes(int64(len(value)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(ctx, fmt.Sprintf("k%d", i&15), value); err != nil {
			b.Fatal(err)
		}
	}
}
