package objstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy selects when DiskStore flushes appended records to stable
// storage. The policy is the durability/latency trade the bench sweep
// measures: `always` makes every Put a floor of one fsync, `interval`
// bounds data loss to one sync window, `never` trusts the OS page cache
// (a kill -9 loses nothing, only machine loss does).
type FsyncPolicy int

const (
	// FsyncAlways fsyncs the active segment before every Put/Delete
	// returns: an acknowledged write is on stable storage.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background timer (DiskConfig.SyncInterval):
	// a crash loses at most the writes of the last window.
	FsyncInterval
	// FsyncNever issues no fsyncs on the write path (Close still syncs).
	FsyncNever
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsync parses a -fsync flag value: "always", "never",
// "interval" (default 100ms window), "interval:250ms" or
// "interval(250ms)".
func ParseFsync(s string) (FsyncPolicy, time.Duration, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	switch v {
	case "always", "":
		return FsyncAlways, 0, nil
	case "never":
		return FsyncNever, 0, nil
	case "interval":
		return FsyncInterval, 0, nil
	}
	var durStr string
	switch {
	case strings.HasPrefix(v, "interval:"):
		durStr = strings.TrimPrefix(v, "interval:")
	case strings.HasPrefix(v, "interval(") && strings.HasSuffix(v, ")"):
		durStr = strings.TrimSuffix(strings.TrimPrefix(v, "interval("), ")")
	default:
		return 0, 0, fmt.Errorf("objstore: unknown fsync policy %q (want always, interval[:dur], never)", s)
	}
	d, err := time.ParseDuration(durStr)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("objstore: bad fsync interval %q", durStr)
	}
	return FsyncInterval, d, nil
}

// DiskConfig configures a DiskStore.
type DiskConfig struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// Fsync selects the flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SyncInterval is the FsyncInterval window; zero means 100ms.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size; zero means
	// 64 MiB. Smaller segments mean more files but finer-grained
	// compaction.
	SegmentBytes int64
	// CompactRatio triggers background compaction when
	// deadBytes/totalBytes of the log meets it. Zero means 0.55;
	// >= 1 or negative disables compaction.
	CompactRatio float64
	// CompactMinBytes is the dead-byte floor below which compaction is
	// never worth the rewrite; zero means 1 MiB.
	CompactMinBytes int64
	// Replication is the accounting replication factor (parity with
	// MemStore — the simulated store replicates for availability).
	// Zero means 1.
	Replication int
	// SyncDelay injects extra latency before every fsync — the
	// slow-device chaos knob (objstored -sync-delay). Zero disables.
	SyncDelay time.Duration
	// Logf receives recovery/compaction diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// diskLoc locates a live value inside a segment.
type diskLoc struct {
	seg    uint64
	valOff int64
	valLen int64
	size   int64 // full framed record size (for dead-byte accounting)
}

// DiskStore is a crash-consistent on-disk Store: an append-only segment
// log with per-record CRC32C checksums and an in-memory key index
// rebuilt by a startup recovery scan. A kill -9 at any point — including
// mid-append — loses at most the unsynced suffix of the log: the scan
// detects the torn tail record by checksum and truncates it, never
// surfacing a partial value. Overwritten and deleted space is reclaimed
// by background compaction of the sealed segments, triggered when the
// log's dead-byte ratio crosses DiskConfig.CompactRatio.
//
// Crash-consistency of compaction: live records of all sealed segments
// are merged into a temp file, fsynced, renamed over the newest input
// segment, and only then are the older inputs deleted. Replay order
// (segment id, then offset) makes every intermediate crash state
// equivalent to either the old log or the compacted one: the merge
// output replays after any input that survives a crash, so its records
// win — which is also why tombstones whose key has a put somewhere in
// the inputs are carried into the output rather than dropped (the
// crash window between rename and input deletion replays those puts
// underneath it).
//
// DiskStore implements Store, OwnedPutter, and Accountant. It is safe
// for concurrent use: appends serialize on one writer lock (the log is
// inherently serial), reads go through ReadAt under a shared lock.
type DiskStore struct {
	cfg DiskConfig
	dir *os.File // directory handle, fsynced after create/rename/remove

	mu       sync.RWMutex
	index    map[string]diskLoc
	files    map[uint64]*os.File
	segIDs   []uint64 // sorted; last is the active segment
	active   *os.File
	activeID uint64
	nextID   uint64
	activeOff int64
	dirty    bool // unsynced appends on the active segment
	closed   bool

	totalLog int64 // bytes across all segment files
	deadLog  int64 // bytes of overwritten/deleted/tombstone records

	compacting atomic.Bool
	stopc      chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup

	bytesWritten, bytesRead atomic.Int64
	capacityBytes           atomic.Int64
	objects                 atomic.Int64
	puts, gets, deletes     atomic.Int64
	compactions             atomic.Int64
	truncatedAtOpen         int64
}

// DiskStats is a snapshot of the log shape — recovery and compaction
// observability beyond the Store-level Usage counters.
type DiskStats struct {
	Segments        int
	LogBytes        int64
	DeadBytes       int64
	Compactions     int64
	TruncatedAtOpen int64 // torn-tail bytes dropped by the recovery scan
}

const segSuffix = ".log"

// NewDiskStore opens (or creates) the store at cfg.Dir, running the
// recovery scan: every segment is replayed in order, a torn tail on the
// final segment is truncated, and the in-memory index is rebuilt.
func NewDiskStore(cfg DiskConfig) (*DiskStore, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("objstore: DiskConfig.Dir is required")
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = 100 * time.Millisecond
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 64 << 20
	}
	if cfg.CompactRatio == 0 {
		cfg.CompactRatio = 0.55
	}
	if cfg.CompactMinBytes == 0 {
		cfg.CompactMinBytes = 1 << 20
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: diskstore dir: %w", err)
	}
	dirf, err := os.Open(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("objstore: diskstore dir: %w", err)
	}
	s := &DiskStore{
		cfg:   cfg,
		dir:   dirf,
		index: make(map[string]diskLoc),
		files: make(map[uint64]*os.File),
		stopc: make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		dirf.Close()
		for _, f := range s.files {
			f.Close()
		}
		return nil, err
	}
	if cfg.Fsync == FsyncInterval {
		s.wg.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

func (s *DiskStore) segPath(id uint64) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("seg-%08d%s", id, segSuffix))
}

// recover lists the segment files, replays them in id order, truncates
// a torn tail on the final segment, and reopens the last segment for
// append.
func (s *DiskStore) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("objstore: diskstore scan dir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A compaction that crashed before its rename; the inputs are
			// intact, the half-written output is garbage.
			os.Remove(filepath.Join(s.cfg.Dir, name))
			continue
		}
		numStr, ok := strings.CutPrefix(name, "seg-")
		if !ok || !strings.HasSuffix(numStr, segSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(numStr, segSuffix), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	records := 0
	for i, id := range ids {
		path := s.segPath(id)
		blob, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("objstore: diskstore read %s: %w", path, err)
		}
		recs, valid, scanErr := scanRecords(blob)
		if scanErr != nil {
			if i != len(ids)-1 {
				// A torn tail can only exist where appends stopped — the
				// final segment. Anything else is real corruption; refuse to
				// silently drop committed data.
				return fmt.Errorf("objstore: diskstore segment %d corrupt mid-log: %w", id, scanErr)
			}
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("objstore: diskstore truncate torn tail of %s: %w", path, err)
			}
			s.truncatedAtOpen = int64(len(blob)) - valid
			s.cfg.Logf("objstore: diskstore recovery truncated %d-byte torn tail of segment %d (%v)",
				s.truncatedAtOpen, id, scanErr)
		}
		for _, rec := range recs {
			s.replay(id, rec)
		}
		records += len(recs)
		s.totalLog += valid
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("objstore: diskstore open %s: %w", path, err)
		}
		s.files[id] = f
		s.segIDs = append(s.segIDs, id)
	}

	if len(ids) == 0 {
		s.nextID = 2
		if err := s.openActiveLocked(1); err != nil {
			return err
		}
	} else {
		last := ids[len(ids)-1]
		s.nextID = last + 1
		s.active = s.files[last]
		s.activeID = last
		size, err := s.active.Seek(0, 2)
		if err != nil {
			return fmt.Errorf("objstore: diskstore seek %s: %w", s.segPath(last), err)
		}
		s.activeOff = size
		s.cfg.Logf("objstore: diskstore recovered %d records, %d live keys across %d segments (%d log bytes, %d dead)",
			records, len(s.index), len(ids), s.totalLog, s.deadLog)
	}
	return nil
}

// replay applies one recovered record to the index and accounting.
func (s *DiskStore) replay(seg uint64, rec segRecord) {
	repl := int64(s.cfg.Replication)
	old, existed := s.index[rec.key]
	if rec.tombstone {
		s.deadLog += rec.size
		if existed {
			s.deadLog += old.size
			s.objects.Add(-1)
			s.capacityBytes.Add(-old.valLen * repl)
			delete(s.index, rec.key)
		}
		return
	}
	if existed {
		s.deadLog += old.size
		s.capacityBytes.Add(-old.valLen * repl)
	} else {
		s.objects.Add(1)
	}
	s.capacityBytes.Add(rec.valLen * repl)
	s.index[rec.key] = diskLoc{seg: seg, valOff: rec.valOff, valLen: rec.valLen, size: rec.size}
}

// openActiveLocked creates segment id and makes it the append target.
func (s *DiskStore) openActiveLocked(id uint64) error {
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("objstore: diskstore create segment %d: %w", id, err)
	}
	s.files[id] = f
	s.segIDs = append(s.segIDs, id)
	s.active = f
	s.activeID = id
	s.activeOff = 0
	if err := s.dir.Sync(); err != nil {
		return fmt.Errorf("objstore: diskstore sync dir: %w", err)
	}
	return nil
}

// syncLocked flushes the active segment, honoring the injected
// slow-device delay.
func (s *DiskStore) syncLocked() error {
	if s.cfg.SyncDelay > 0 {
		time.Sleep(s.cfg.SyncDelay)
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("objstore: diskstore fsync: %w", err)
	}
	s.dirty = false
	return nil
}

// syncLoop is the FsyncInterval flusher.
func (s *DiskStore) syncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.dirty {
				if err := s.syncLocked(); err != nil {
					s.cfg.Logf("%v", err)
				}
			}
			s.mu.Unlock()
		}
	}
}

// writeLocked appends a framed record to the active segment. On a
// partial write the tail is rolled back so the in-file log never holds
// a record the index doesn't know about as anything but a torn tail.
func (s *DiskStore) writeLocked(rec []byte) (start int64, err error) {
	start = s.activeOff
	n, err := s.active.Write(rec)
	if err != nil || n != len(rec) {
		if err == nil {
			err = fmt.Errorf("short write: %d of %d bytes", n, len(rec))
		}
		// Best-effort rollback; a failed rollback leaves a torn tail the
		// next recovery scan truncates.
		s.active.Truncate(start)
		s.active.Seek(start, 0)
		return 0, fmt.Errorf("objstore: diskstore append: %w", err)
	}
	s.activeOff += int64(n)
	s.totalLog += int64(n)
	s.dirty = true
	return start, nil
}

// afterAppendLocked applies the per-policy sync and rotates a full
// active segment.
func (s *DiskStore) afterAppendLocked() error {
	if s.cfg.Fsync == FsyncAlways {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.activeOff >= s.cfg.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment (synced unless FsyncNever) and
// opens the next one.
func (s *DiskStore) rotateLocked() error {
	if s.cfg.Fsync != FsyncNever && s.dirty {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	id := s.nextID
	s.nextID++
	return s.openActiveLocked(id)
}

// Put appends (key, value) to the log and updates the index. The value
// is on disk (and, under FsyncAlways, on stable storage) before Put
// returns; the slice is not retained.
func (s *DiskStore) Put(ctx context.Context, key string, value []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("objstore: diskstore key length %d out of range", len(key))
	}
	if len(value) > maxValueLen {
		return fmt.Errorf("objstore: diskstore value too large: %d bytes", len(value))
	}
	rec := appendRecord(make([]byte, 0, recordLen(len(key), len(value))), key, value, false)

	s.mu.Lock()
	err := s.putLocked(key, int64(len(value)), rec)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.maybeCompact()
	return nil
}

func (s *DiskStore) putLocked(key string, valLen int64, rec []byte) error {
	if s.closed {
		return ErrClosed
	}
	start, err := s.writeLocked(rec)
	if err != nil {
		return err
	}
	repl := int64(s.cfg.Replication)
	old, existed := s.index[key]
	if existed {
		s.deadLog += old.size
		s.capacityBytes.Add(-old.valLen * repl)
	} else {
		s.objects.Add(1)
	}
	s.index[key] = diskLoc{
		seg:    s.activeID,
		valOff: start + recHeaderLen + int64(len(key)),
		valLen: valLen,
		size:   int64(len(rec)),
	}
	s.puts.Add(1)
	s.bytesWritten.Add(valLen * repl)
	s.capacityBytes.Add(valLen * repl)
	return s.afterAppendLocked()
}

// PutOwned implements OwnedPutter. The bytes are written to the log
// before returning, so taking ownership needs no copy at all.
func (s *DiskStore) PutOwned(ctx context.Context, key string, value []byte) error {
	return s.Put(ctx, key, value)
}

// Get reads the value through the index with a positional read; the
// returned slice is freshly allocated.
func (s *DiskStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	loc, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	f := s.files[loc.seg]
	buf := make([]byte, loc.valLen)
	if _, err := f.ReadAt(buf, loc.valOff); err != nil {
		return nil, fmt.Errorf("objstore: diskstore read %q: %w", key, err)
	}
	s.gets.Add(1)
	s.bytesRead.Add(loc.valLen)
	return buf, nil
}

// Delete appends a tombstone and drops the key from the index. Deleting
// a missing key returns ErrNotFound (and writes nothing) — the same
// contract as MemStore, pinned by the storetest conformance suite.
func (s *DiskStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	err := s.deleteLocked(key)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.maybeCompact()
	return nil
}

func (s *DiskStore) deleteLocked(key string) error {
	if s.closed {
		return ErrClosed
	}
	old, ok := s.index[key]
	if !ok {
		return ErrNotFound
	}
	rec := appendRecord(make([]byte, 0, recordLen(len(key), 0)), key, nil, true)
	if _, err := s.writeLocked(rec); err != nil {
		return err
	}
	delete(s.index, key)
	s.deadLog += old.size + int64(len(rec))
	s.deletes.Add(1)
	s.objects.Add(-1)
	s.capacityBytes.Add(-old.valLen * int64(s.cfg.Replication))
	return s.afterAppendLocked()
}

// List returns sorted keys with the given prefix.
func (s *DiskStore) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	var keys []string
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Stat returns the unreplicated stored size of key.
func (s *DiskStore) Stat(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	loc, ok := s.index[key]
	if !ok {
		return 0, ErrNotFound
	}
	return loc.valLen, nil
}

// Close flushes the active segment and releases every file handle. It
// always syncs — a clean shutdown is durable under every policy; only
// Crash skips the flush.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	var err error
	if s.dirty {
		err = s.syncLocked()
	}
	s.closed = true
	for _, f := range s.files {
		f.Close()
	}
	s.dir.Close()
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopc) })
	s.wg.Wait()
	return err
}

// Crash abandons the store the way kill -9 would: no final sync, file
// handles dropped mid-state. A chaos/test hook — the next NewDiskStore
// on the same directory must recover everything that was synced.
func (s *DiskStore) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, f := range s.files {
		f.Close()
	}
	s.dir.Close()
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopc) })
	s.wg.Wait()
}

// Usage implements Accountant with MemStore-compatible semantics:
// capacity counts live value bytes (× replication), not log bytes.
func (s *DiskStore) Usage() Usage {
	return Usage{
		BytesWritten:  s.bytesWritten.Load(),
		BytesRead:     s.bytesRead.Load(),
		CapacityBytes: s.capacityBytes.Load(),
		Objects:       int(s.objects.Load()),
		Puts:          s.puts.Load(),
		Gets:          s.gets.Load(),
		Deletes:       s.deletes.Load(),
	}
}

// ResetBandwidth zeroes the cumulative bandwidth counters.
func (s *DiskStore) ResetBandwidth() {
	s.bytesWritten.Store(0)
	s.bytesRead.Store(0)
}

// Stats snapshots the log shape.
func (s *DiskStore) Stats() DiskStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return DiskStats{
		Segments:        len(s.segIDs),
		LogBytes:        s.totalLog,
		DeadBytes:       s.deadLog,
		Compactions:     s.compactions.Load(),
		TruncatedAtOpen: s.truncatedAtOpen,
	}
}

// --- compaction ----------------------------------------------------

// maybeCompact kicks a background compaction when the dead-byte ratio
// crosses the configured trigger.
func (s *DiskStore) maybeCompact() {
	if s.cfg.CompactRatio < 0 || s.cfg.CompactRatio >= 1 {
		return
	}
	s.mu.RLock()
	dead, total, closed := s.deadLog, s.totalLog, s.closed
	s.mu.RUnlock()
	if closed || total == 0 || dead < s.cfg.CompactMinBytes {
		return
	}
	if float64(dead)/float64(total) < s.cfg.CompactRatio {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		err := s.compact()
		s.compacting.Store(false)
		if err != nil {
			s.cfg.Logf("objstore: diskstore compaction: %v", err)
			return
		}
		// Writes that crossed the trigger while this pass ran found the
		// CAS held and dropped their kick; re-check so the ratio
		// converges below the trigger even after the write load stops.
		// Terminates: each pass strictly shrinks the reclaimable set
		// (shadowed copies merge away, kept tombstones orphan and drop),
		// so dead bytes fall below the trigger in a bounded number of
		// passes.
		s.maybeCompact()
	}()
}

// compact merges every sealed segment's live records into one new
// segment and deletes the inputs. See the DiskStore doc comment for the
// crash-safety argument. Only the brief final swap holds the writer
// lock; the scan runs against immutable sealed files.
func (s *DiskStore) compact() error {
	// Seal the current active segment so every reclaimable byte is in
	// the immutable input set.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if s.activeOff > 0 {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	if len(s.segIDs) <= 1 {
		s.mu.Unlock()
		return nil
	}
	inputs := append([]uint64(nil), s.segIDs[:len(s.segIDs)-1]...)
	s.mu.Unlock()

	// Scan the inputs lock-free: sealed segments are immutable and only
	// the (single) compactor deletes them.
	type liveRec struct {
		blob   []byte
		rec    segRecord
		hadPut bool // any put of this key anywhere in the inputs
	}
	latest := make(map[string]liveRec)
	var order []string // first-seen key order keeps output deterministic
	var inputBytes int64
	for _, id := range inputs {
		blob, err := os.ReadFile(s.segPath(id))
		if err != nil {
			return fmt.Errorf("read input segment %d: %w", id, err)
		}
		recs, valid, err := scanRecords(blob)
		if err != nil {
			// Sealed segments scanned clean at open; this is new corruption.
			return fmt.Errorf("input segment %d no longer scans: %w", id, err)
		}
		inputBytes += valid
		for _, rec := range recs {
			prev, seen := latest[rec.key]
			if !seen {
				order = append(order, rec.key)
			}
			latest[rec.key] = liveRec{
				blob:   blob,
				rec:    rec,
				hadPut: (seen && prev.hadPut) || !rec.tombstone,
			}
		}
	}

	// Build the merge output: live puts, plus the tombstones still doing
	// work. The output is renamed over the NEWEST input, so a crash
	// before the older inputs are deleted replays them underneath it — a
	// tombstone whose put exists in those inputs must ride along in the
	// output or the key resurrects in exactly that window. A tombstone
	// with no put anywhere in the inputs shadows nothing older (inputs
	// start at the oldest segment) and is dropped; kept ones become
	// orphans and are dropped by the next compaction.
	outID := inputs[len(inputs)-1]
	var out []byte
	outLocs := make(map[string]diskLoc, len(latest))
	for _, key := range order {
		lr := latest[key]
		if lr.rec.tombstone {
			if lr.hadPut {
				out = appendRecord(out, key, nil, true)
			}
			continue
		}
		start := int64(len(out))
		out = appendRecord(out, key, lr.blob[lr.rec.valOff:lr.rec.valOff+lr.rec.valLen], false)
		outLocs[key] = diskLoc{
			seg:    outID,
			valOff: start + recHeaderLen + int64(len(key)),
			valLen: lr.rec.valLen,
			size:   int64(len(out)) - start,
		}
	}

	tmpPath := s.segPath(outID) + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("create merge output: %w", err)
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("write merge output: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("sync merge output: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("close merge output: %w", err)
	}

	// Swap: rename the output over the newest input, then delete the
	// older inputs in ascending id order (the order the crash-safety
	// argument depends on).
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		os.Remove(tmpPath)
		return nil
	}
	if err := os.Rename(tmpPath, s.segPath(outID)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("install merge output: %w", err)
	}
	s.files[outID].Close()
	nf, err := os.OpenFile(s.segPath(outID), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("reopen merged segment: %w", err)
	}
	s.files[outID] = nf
	inputSet := make(map[uint64]bool, len(inputs))
	for _, id := range inputs {
		inputSet[id] = true
	}
	for _, id := range inputs[:len(inputs)-1] {
		s.files[id].Close()
		os.Remove(s.segPath(id))
		delete(s.files, id)
	}
	if err := s.dir.Sync(); err != nil {
		return fmt.Errorf("sync dir after compaction: %w", err)
	}
	s.segIDs = s.segIDs[:0]
	for id := range s.files {
		s.segIDs = append(s.segIDs, id)
	}
	sort.Slice(s.segIDs, func(i, j int) bool { return s.segIDs[i] < s.segIDs[j] })
	// Repoint index entries still living in the inputs at their merged
	// copies; keys rewritten or deleted during the merge stay where the
	// newer write put them (the shadowed merged copy is dead weight the
	// accounting delta below already covers).
	for key, loc := range outLocs {
		if cur, ok := s.index[key]; ok && inputSet[cur.seg] {
			s.index[key] = loc
		}
	}
	delta := int64(len(out)) - inputBytes
	s.totalLog += delta
	s.deadLog += delta
	s.compactions.Add(1)
	s.cfg.Logf("objstore: diskstore compacted %d segments: %d -> %d bytes (%d live keys)",
		len(inputs), inputBytes, len(out), len(outLocs))
	return nil
}
