package objstore

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Throttle is a token-bucket bandwidth limiter over an abstract clock.
// With a simulation clock, waiting advances virtual time instead of
// blocking, which lets experiments measure "how long would this checkpoint
// take to upload at X GB/s" deterministically.
type Throttle struct {
	rate  float64 // bytes per second
	clock simclock.Clock

	mu sync.Mutex
	// nextFree is the earliest time the link is free; consuming n bytes
	// pushes it n/rate seconds further out.
	nextFree time.Time
}

// NewThrottle returns a throttle shaping to rate bytes/second on clock.
func NewThrottle(rate float64, clock simclock.Clock) *Throttle {
	if rate <= 0 {
		panic(fmt.Sprintf("objstore: throttle rate must be positive, got %v", rate))
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Throttle{rate: rate, clock: clock, nextFree: clock.Now()}
}

// Wait blocks (or advances virtual time) until n bytes may be sent, then
// reserves the link for their transmission time.
func (t *Throttle) Wait(ctx context.Context, n int64) error {
	if n <= 0 {
		return ctx.Err()
	}
	t.mu.Lock()
	now := t.clock.Now()
	if t.nextFree.Before(now) {
		t.nextFree = now
	}
	wait := t.nextFree.Sub(now)
	t.nextFree = t.nextFree.Add(time.Duration(float64(n) / t.rate * float64(time.Second)))
	t.mu.Unlock()

	if wait <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// On the real clock, honor cancellation mid-wait: a caller with a
	// deadline must not stay wedged behind a saturated link. Virtual
	// clocks advance instantly, so they keep the plain Sleep path.
	if _, isReal := t.clock.(simclock.Real); isReal {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		return ctx.Err()
	}
	t.clock.Sleep(wait)
	return ctx.Err()
}

// Backlog returns how far in the future the link frees up — a measure of
// queued transmission time.
func (t *Throttle) Backlog() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.nextFree.Sub(t.clock.Now())
	if d < 0 {
		return 0
	}
	return d
}

// TransferTime returns how long n bytes take at the throttle's rate.
func (t *Throttle) TransferTime(n int64) time.Duration {
	return time.Duration(float64(n) / t.rate * float64(time.Second))
}
