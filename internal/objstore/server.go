package objstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
)

// Server serves a Store over TCP. One goroutine per connection handles
// framed requests sequentially; the checkpoint writer opens multiple
// connections to pipeline chunk uploads.
type Server struct {
	backend Store
	ln      net.Listener
	logf    func(format string, args ...any)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerConfig configures Serve.
type ServerConfig struct {
	// Logf receives diagnostic messages; nil discards them.
	Logf func(format string, args ...any)
}

// NewServer starts serving backend on the given listener address
// (e.g. "127.0.0.1:0"). It returns once the listener is bound.
func NewServer(addr string, backend Store, cfg ServerConfig) (*Server, error) {
	if backend == nil {
		return nil, fmt.Errorf("objstore: nil backend")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("objstore: listen: %w", err)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{backend: backend, ln: ln, logf: logf, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.isClosed() {
				s.logf("objstore server: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		req, err := readRequest(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.isClosed() {
				s.logf("objstore server: read: %v", err)
			}
			return
		}
		if err := s.handle(bw, req); err != nil {
			s.logf("objstore server: write: %v", err)
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handle(w io.Writer, req *request) error {
	ctx := context.Background()
	switch req.op {
	case opPut:
		// req.value is this request's freshly decoded frame buffer
		// (readRequest allocates per request), so ownership can pass to
		// the backend — no copy-per-Put on the server receive path.
		if err := PutOwned(ctx, s.backend, req.key, req.value); err != nil {
			return writeResponse(w, statusError, []byte(err.Error()))
		}
		return writeResponse(w, statusOK, nil)
	case opGet:
		v, err := s.backend.Get(ctx, req.key)
		if errors.Is(err, ErrNotFound) {
			return writeResponse(w, statusNotFound, nil)
		}
		if err != nil {
			return writeResponse(w, statusError, []byte(err.Error()))
		}
		return writeResponse(w, statusOK, v)
	case opDelete:
		err := s.backend.Delete(ctx, req.key)
		if errors.Is(err, ErrNotFound) {
			return writeResponse(w, statusNotFound, nil)
		}
		if err != nil {
			return writeResponse(w, statusError, []byte(err.Error()))
		}
		return writeResponse(w, statusOK, nil)
	case opList:
		keys, err := s.backend.List(ctx, req.key)
		if err != nil {
			return writeResponse(w, statusError, []byte(err.Error()))
		}
		return writeResponse(w, statusOK, []byte(strings.Join(keys, "\n")))
	case opStat:
		size, err := s.backend.Stat(ctx, req.key)
		if errors.Is(err, ErrNotFound) {
			return writeResponse(w, statusNotFound, nil)
		}
		if err != nil {
			return writeResponse(w, statusError, []byte(err.Error()))
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(size))
		return writeResponse(w, statusOK, buf[:])
	default:
		return writeResponse(w, statusError, []byte(fmt.Sprintf("unknown op %d", req.op)))
	}
}

// CloseConns closes every live connection without stopping the
// listener. Clients transparently redial; this is a fault-injection
// hook for exercising that path under load.
func (s *Server) CloseConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting, closes live connections, and waits for handler
// goroutines to exit. The backend is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Logger returns a *log.Logger-compatible adapter. Handy for cmd/objstored.
func Logger(l *log.Logger) func(string, ...any) {
	return func(format string, args ...any) { l.Printf(format, args...) }
}
