package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/trainer"
)

func testModelConfig() model.Config {
	cfg := model.DefaultConfig()
	cfg.Tables = []embedding.TableSpec{
		{Rows: 256, Dim: 16}, {Rows: 512, Dim: 16},
	}
	return cfg
}

func testDataSpec() data.Spec {
	spec := data.DefaultSpec()
	spec.TableRows = []int{256, 512}
	return spec
}

type rig struct {
	ctrl    *Controller
	cluster *trainer.Cluster
	reader  *data.Cluster
	store   *objstore.MemStore
	ctx     context.Context
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	m, err := model.New(testModelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := trainer.New(m, trainer.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := data.NewGenerator(testDataSpec())
	if err != nil {
		t.Fatal(err)
	}
	reader, err := data.NewCluster(gen, data.ClusterConfig{BatchSize: cfg.BatchSize, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reader.Close)
	store := objstore.NewMemStore(objstore.MemConfig{})
	if cfg.JobID == "" {
		cfg.JobID = "corejob"
	}
	if cfg.Store == nil {
		cfg.Store = store
	}
	ctrl, err := New(cluster, reader, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return &rig{ctrl: ctrl, cluster: cluster, reader: reader, store: store, ctx: ctx}
}

func TestSelectBitWidthThresholds(t *testing.T) {
	cases := []struct {
		restores float64
		want     int
	}{
		{0, 2}, {1, 2}, {1.5, 3}, {3, 3}, {3.5, 4}, {19.9, 4}, {20, 8}, {100, 8},
	}
	for _, c := range cases {
		if got := SelectBitWidth(c.restores); got != c.want {
			t.Errorf("SelectBitWidth(%v) = %d, want %d", c.restores, got, c.want)
		}
	}
}

func TestParamsForBits(t *testing.T) {
	for bits, wantMethod := range map[int]quant.Method{
		2: quant.MethodAdaptive, 3: quant.MethodAdaptive,
		4: quant.MethodAdaptive, 8: quant.MethodAsymmetric,
		32: quant.MethodNone,
	} {
		p, err := ParamsForBits(bits)
		if err != nil {
			t.Fatalf("bits %d: %v", bits, err)
		}
		if p.Method != wantMethod {
			t.Fatalf("bits %d: method %v, want %v", bits, p.Method, wantMethod)
		}
	}
	// Figure 10's optimal bins: 25 for 2-3 bits, 45 for 4.
	p3, _ := ParamsForBits(3)
	p4, _ := ParamsForBits(4)
	if p3.NumBins != 25 || p4.NumBins != 45 {
		t.Fatalf("bins: %d, %d", p3.NumBins, p4.NumBins)
	}
	if _, err := ParamsForBits(5); err == nil {
		t.Fatal("unsupported bits should error")
	}
}

func TestControllerValidation(t *testing.T) {
	m, _ := model.New(testModelConfig(), 1)
	cluster, _ := trainer.New(m, trainer.Config{Nodes: 1})
	gen, _ := data.NewGenerator(testDataSpec())
	reader, _ := data.NewCluster(gen, data.ClusterConfig{BatchSize: 8})
	defer reader.Close()
	store := objstore.NewMemStore(objstore.MemConfig{})
	base := Config{JobID: "j", Store: store, BatchSize: 8, BatchesPerInterval: 2}

	if _, err := New(nil, reader, base); err == nil {
		t.Fatal("nil cluster should error")
	}
	bad := base
	bad.JobID = ""
	if _, err := New(cluster, reader, bad); err == nil {
		t.Fatal("empty job should error")
	}
	bad = base
	bad.Store = nil
	if _, err := New(cluster, reader, bad); err == nil {
		t.Fatal("nil store should error")
	}
	bad = base
	bad.BatchSize = 0
	if _, err := New(cluster, reader, bad); err == nil {
		t.Fatal("zero batch should error")
	}
	bad = base
	bad.BatchesPerInterval = 0
	if _, err := New(cluster, reader, bad); err == nil {
		t.Fatal("no interval should error")
	}
}

func TestIntervalDerivedFromWallClock(t *testing.T) {
	r := newRig(t, Config{
		BatchSize: 1024,
		Interval:  30 * time.Minute,
		Policy:    ckpt.PolicyIntermittent,
	})
	// 30 min at 500K QPS, batch 1024, 1% tracking: ~870k batches.
	if bpi := r.ctrl.BatchesPerInterval(); bpi < 800_000 || bpi > 900_000 {
		t.Fatalf("batches per interval = %d", bpi)
	}
}

func TestRunIntervalCommitsCheckpoint(t *testing.T) {
	r := newRig(t, Config{
		BatchSize:          16,
		BatchesPerInterval: 3,
		Policy:             ckpt.PolicyIntermittent,
		ExpectedRestores:   1,
	})
	man, err := r.ctrl.RunInterval(r.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if man.Kind != "full" {
		t.Fatalf("first checkpoint kind = %s", man.Kind)
	}
	// Quant: expected restores <= 1 -> 2-bit adaptive.
	if man.Quant.Bits != 2 || man.Quant.Method != "adaptive-asymmetric" {
		t.Fatalf("quant = %+v", man.Quant)
	}
	// Reader state matches the trained batches.
	if man.ReaderNextSample != 3*16 {
		t.Fatalf("reader state = %d, want 48", man.ReaderNextSample)
	}
	if len(r.ctrl.Manifests()) != 1 {
		t.Fatal("manifest not recorded")
	}
}

func TestRunMultipleIntervals(t *testing.T) {
	r := newRig(t, Config{
		BatchSize:          16,
		BatchesPerInterval: 2,
		Policy:             ckpt.PolicyOneShot,
		ExpectedRestores:   -1, // fp32
	})
	if err := r.ctrl.Run(r.ctx, 3); err != nil {
		t.Fatal(err)
	}
	ms := r.ctrl.Manifests()
	if len(ms) != 3 {
		t.Fatalf("manifests = %d", len(ms))
	}
	if ms[0].Kind != "full" || ms[1].Kind != "incremental" || ms[2].Kind != "incremental" {
		t.Fatalf("kinds: %s %s %s", ms[0].Kind, ms[1].Kind, ms[2].Kind)
	}
	// Steps advance by the interval.
	if ms[1].Step != ms[0].Step+2 {
		t.Fatalf("steps: %d then %d", ms[0].Step, ms[1].Step)
	}
}

func TestRecoverRoundTrip(t *testing.T) {
	r := newRig(t, Config{
		BatchSize:          16,
		BatchesPerInterval: 2,
		Policy:             ckpt.PolicyIntermittent,
		ExpectedRestores:   -1,
	})
	if err := r.ctrl.Run(r.ctx, 2); err != nil {
		t.Fatal(err)
	}
	// Perturb the model to simulate a crashed/fresh trainer, then recover.
	r.ctrl.Model().Sparse.Tables[0].Weights.Set(0, 0, 99)
	res, err := r.ctrl.Recover(r.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Step != 4 {
		t.Fatalf("restored step = %d, want 4", res.Step)
	}
	if r.ctrl.Restores() != 1 {
		t.Fatalf("restores = %d", r.ctrl.Restores())
	}
	if r.ctrl.Model().Sparse.Tables[0].Weights.At(0, 0) == 99 {
		t.Fatal("model not restored")
	}
	// Training continues cleanly after recovery.
	if _, err := r.ctrl.RunInterval(r.ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWithoutCheckpointFails(t *testing.T) {
	r := newRig(t, Config{
		BatchSize:          16,
		BatchesPerInterval: 2,
		Policy:             ckpt.PolicyFull,
	})
	if _, err := r.ctrl.Recover(r.ctx); err == nil {
		t.Fatal("recover with no checkpoint should error")
	}
}

func TestFallbackTo8Bit(t *testing.T) {
	r := newRig(t, Config{
		BatchSize:          16,
		BatchesPerInterval: 2,
		Policy:             ckpt.PolicyIntermittent,
		ExpectedRestores:   1, // 2-bit selected
	})
	if r.ctrl.Quant().Bits != 2 {
		t.Fatalf("initial bits = %d", r.ctrl.Quant().Bits)
	}
	if err := r.ctrl.Run(r.ctx, 1); err != nil {
		t.Fatal(err)
	}
	// First restore: within expectation, no fallback.
	if _, err := r.ctrl.Recover(r.ctx); err != nil {
		t.Fatal(err)
	}
	if r.ctrl.FellBack() {
		t.Fatal("fallback too early")
	}
	// Second restore exceeds the estimate of 1: fallback engages.
	if _, err := r.ctrl.Recover(r.ctx); err != nil {
		t.Fatal(err)
	}
	if !r.ctrl.FellBack() {
		t.Fatal("fallback did not engage")
	}
	if r.ctrl.Quant().Bits != 8 {
		t.Fatalf("post-fallback bits = %d", r.ctrl.Quant().Bits)
	}
}

func TestFixedQuantBypassesDynamic(t *testing.T) {
	r := newRig(t, Config{
		BatchSize:          16,
		BatchesPerInterval: 2,
		Policy:             ckpt.PolicyFull,
		ExpectedRestores:   100, // would select 8-bit
		FixedQuant:         quant.Params{Method: quant.MethodSymmetric, Bits: 4},
	})
	if q := r.ctrl.Quant(); q.Method != quant.MethodSymmetric || q.Bits != 4 {
		t.Fatalf("quant = %+v", q)
	}
}

func TestNoGapInvariantHolds(t *testing.T) {
	r := newRig(t, Config{
		BatchSize:          8,
		BatchesPerInterval: 5,
		Policy:             ckpt.PolicyFull,
		ExpectedRestores:   -1,
	})
	for i := 0; i < 3; i++ {
		if _, err := r.ctrl.RunInterval(r.ctx); err != nil {
			t.Fatal(err)
		}
		if inf := r.reader.InFlight(); inf != 0 {
			t.Fatalf("interval %d: %d in-flight batches after checkpoint", i, inf)
		}
	}
}

func TestResumeProducesSameStateAsUninterrupted(t *testing.T) {
	// The headline accuracy property with fp32 checkpoints: crash +
	// recover + retrain = never crashed.
	mkRig := func() *rig {
		return newRig(t, Config{
			JobID:              "same",
			BatchSize:          16,
			BatchesPerInterval: 2,
			Policy:             ckpt.PolicyOneShot,
			ExpectedRestores:   -1,
		})
	}
	// Uninterrupted: 4 intervals.
	a := mkRig()
	if err := a.ctrl.Run(a.ctx, 4); err != nil {
		t.Fatal(err)
	}
	// Interrupted: 2 intervals, crash, recover, 2 more.
	b := mkRig()
	if err := b.ctrl.Run(b.ctx, 2); err != nil {
		t.Fatal(err)
	}
	b.ctrl.Model().Sparse.Tables[0].Weights.Set(3, 3, 123) // corrupt
	if _, err := b.ctrl.Recover(b.ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.ctrl.Run(b.ctx, 2); err != nil {
		t.Fatal(err)
	}
	gen, _ := data.NewGenerator(testDataSpec())
	for i := uint64(0); i < 32; i++ {
		s := gen.At(1<<33 + i)
		la := a.ctrl.Model().Forward(&s)
		lb := b.ctrl.Model().Forward(&s)
		if d := la - lb; d > 1e-5 || d < -1e-5 {
			t.Fatalf("sample %d: uninterrupted %v vs recovered %v", i, la, lb)
		}
	}
}
