package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/simclock"
	"repro/internal/trainer"
	"repro/internal/wire"
)

// Config configures a Controller.
type Config struct {
	JobID string
	Store objstore.Store
	// Policy selects the incremental checkpointing policy; the production
	// default is intermittent (§6.3.1).
	Policy ckpt.PolicyKind
	// Interval is the wall-clock checkpoint interval on the virtual
	// clock; the controller converts it to a batch count via the
	// trainer's throughput model. Zero means BatchesPerInterval is used
	// directly.
	Interval time.Duration
	// BatchesPerInterval overrides the interval-derived batch count
	// (used by scaled-down experiments). Zero derives from Interval.
	BatchesPerInterval int
	// BatchSize is the synchronous iteration size.
	BatchSize int

	// ExpectedRestores drives dynamic bit-width selection (§6.2.1).
	// Negative disables quantization entirely (fp32 checkpoints).
	ExpectedRestores float64
	// FixedQuant, if non-zero Method, bypasses dynamic selection.
	FixedQuant quant.Params

	// KeepLast bounds retained checkpoints (0 keeps all).
	KeepLast int
	// ChunkRows and Uploaders tune the engine's pipelining; Encoders is
	// the quantize+encode worker count (0 = one per core).
	ChunkRows, Uploaders, Encoders int
	// Predictor selects the intermittent policy's baseline predictor.
	Predictor ckpt.PredictorKind
	// CompactMetadata enables the CKP2 chunk layout (smaller per-row
	// metadata; see internal/wire).
	CompactMetadata bool
}

// Controller wires the reader tier, trainer cluster and checkpoint engine
// together and runs the §4.4 workflow.
type Controller struct {
	cfg     Config
	cluster *trainer.Cluster
	reader  *data.Cluster
	engine  *ckpt.Engine
	rest    *ckpt.Restorer

	batchesPerInterval int
	restores           int
	fallback           bool

	// manifests of committed checkpoints, in order.
	manifests []*wire.Manifest
}

// New builds a Controller. The trainer cluster and reader cluster must
// share the same job (the reader feeds the cluster's model).
func New(cluster *trainer.Cluster, reader *data.Cluster, cfg Config) (*Controller, error) {
	if cluster == nil || reader == nil {
		return nil, fmt.Errorf("core: nil cluster or reader")
	}
	if cfg.JobID == "" {
		return nil, fmt.Errorf("core: empty job ID")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("core: nil store")
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("core: batch size must be positive")
	}

	bpi := cfg.BatchesPerInterval
	if bpi <= 0 {
		if cfg.Interval <= 0 {
			return nil, fmt.Errorf("core: need Interval or BatchesPerInterval")
		}
		tm := simclock.DefaultThroughput()
		tm.BatchSize = cfg.BatchSize
		bpi = tm.BatchesPerInterval(cfg.Interval)
	}

	qp := cfg.FixedQuant
	if qp.Method == quant.MethodNone && qp.Bits == 0 {
		// Dynamic selection.
		if cfg.ExpectedRestores < 0 {
			qp = quant.Params{Method: quant.MethodNone}
		} else {
			bits := SelectBitWidth(cfg.ExpectedRestores)
			var err error
			qp, err = ParamsForBits(bits)
			if err != nil {
				return nil, err
			}
		}
	}

	eng, err := ckpt.NewEngine(ckpt.Config{
		JobID:           cfg.JobID,
		Store:           cfg.Store,
		Policy:          cfg.Policy,
		Quant:           qp,
		ChunkRows:       cfg.ChunkRows,
		Uploaders:       cfg.Uploaders,
		Encoders:        cfg.Encoders,
		KeepLast:        cfg.KeepLast,
		Predictor:       cfg.Predictor,
		CompactMetadata: cfg.CompactMetadata,
	})
	if err != nil {
		return nil, err
	}
	rest, err := ckpt.NewRestorer(cfg.JobID, cfg.Store)
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:                cfg,
		cluster:            cluster,
		reader:             reader,
		engine:             eng,
		rest:               rest,
		batchesPerInterval: bpi,
	}, nil
}

// BatchesPerInterval reports the interval length in batches.
func (c *Controller) BatchesPerInterval() int { return c.batchesPerInterval }

// Quant returns the engine's current quantization parameters.
func (c *Controller) Quant() quant.Params { return c.engine.Quant() }

// Restores returns how many times the job has resumed from a checkpoint.
func (c *Controller) Restores() int { return c.restores }

// FellBack reports whether the 8-bit accuracy fallback engaged.
func (c *Controller) FellBack() bool { return c.fallback }

// Manifests returns the committed checkpoint manifests in order.
func (c *Controller) Manifests() []*wire.Manifest {
	return append([]*wire.Manifest(nil), c.manifests...)
}

// RunInterval executes one checkpoint interval of the §4.4 workflow:
// grant the reader the interval's exact batch count, train through it,
// collect the quiescent reader state, stall-snapshot, and build + store
// the checkpoint. It returns the committed manifest.
func (c *Controller) RunInterval(ctx context.Context) (*wire.Manifest, error) {
	c.reader.Grant(c.batchesPerInterval)
	for i := 0; i < c.batchesPerInterval; i++ {
		b, err := c.reader.Recv(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: recv batch %d: %w", i, err)
		}
		c.cluster.Step(b)
	}
	// Gap invariant (§4.1): the reader produced exactly the grant, so
	// nothing is in flight at the trigger.
	if inflight := c.reader.InFlight(); inflight != 0 {
		return nil, fmt.Errorf("core: %d in-flight batches at checkpoint trigger", inflight)
	}
	readerState := c.reader.State()
	snap, err := c.cluster.Snapshot(readerState)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	man, err := c.engine.Write(ctx, snap)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint write: %w", err)
	}
	c.manifests = append(c.manifests, man)
	return man, nil
}

// Run executes n checkpoint intervals.
func (c *Controller) Run(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if _, err := c.RunInterval(ctx); err != nil {
			return fmt.Errorf("core: interval %d: %w", i, err)
		}
	}
	return nil
}

// Recover restores the latest valid checkpoint into the trainer's model
// and the reader tier, implementing the failure-recovery path. If the
// number of restores exceeds the controller's expectation, it falls back
// to 8-bit quantization for subsequent checkpoints (§6.2.1).
func (c *Controller) Recover(ctx context.Context) (*ckpt.RestoreResult, error) {
	res, err := c.rest.RestoreLatest(ctx, c.cluster.Model())
	if err != nil {
		return nil, err
	}
	if err := c.reader.Restore(res.Reader); err != nil {
		return nil, fmt.Errorf("core: reader restore: %w", err)
	}
	c.restores++
	if !c.fallback && c.cfg.ExpectedRestores >= 0 && c.cfg.FixedQuant.Method == quant.MethodNone &&
		float64(c.restores) > c.cfg.ExpectedRestores {
		p, perr := ParamsForBits(8)
		if perr == nil && c.engine.Quant().Method != quant.MethodNone {
			if c.engine.SetQuant(p) == nil {
				c.fallback = true
			}
		}
	}
	return res, nil
}

// Restorer exposes the underlying restorer for inspection tooling.
func (c *Controller) Restorer() *ckpt.Restorer { return c.rest }

// Engine exposes the underlying checkpoint engine.
func (c *Controller) Engine() *ckpt.Engine { return c.engine }

// Model returns the model being trained.
func (c *Controller) Model() *model.DLRM { return c.cluster.Model() }
