// Package core implements the Check-N-Run controller (§4, Figure 7): it
// coordinates the reader master and trainer around checkpoint intervals,
// triggers snapshots, drives the checkpoint engine, selects quantization
// bit-widths from failure estimates (§6.2.1), monitors checkpoint
// validity, and performs recovery.
package core

import (
	"fmt"

	"repro/internal/quant"
)

// SelectBitWidth maps the expected number of checkpoint restores L to a
// quantization bit-width using the thresholds measured in §6.2.1 /
// Figure 14: 2-bit survives L <= 1 restore within the 0.01% accuracy
// budget, 3-bit up to 3, 4-bit up to 20, and 8-bit beyond 100.
func SelectBitWidth(expectedRestores float64) int {
	switch {
	case expectedRestores <= 1:
		return 2
	case expectedRestores <= 3:
		return 3
	case expectedRestores < 20:
		return 4
	default:
		return 8
	}
}

// ParamsForBits returns the production quantizer for a bit-width
// (§5.2 summary): adaptive asymmetric for 4 bits and below — with the
// optimal bins from Figure 10 (25 for 2-3 bits, 45 for 4 bits) — and
// naive asymmetric for 8 bits, where adaptation no longer pays.
func ParamsForBits(bits int) (quant.Params, error) {
	switch bits {
	case 2, 3:
		return quant.Params{Method: quant.MethodAdaptive, Bits: bits, NumBins: 25, Ratio: 1.0}, nil
	case 4:
		return quant.Params{Method: quant.MethodAdaptive, Bits: bits, NumBins: 45, Ratio: 1.0}, nil
	case 8:
		return quant.Params{Method: quant.MethodAsymmetric, Bits: 8}, nil
	case 32:
		return quant.Params{Method: quant.MethodNone}, nil
	default:
		return quant.Params{}, fmt.Errorf("core: unsupported bit-width %d (use 2, 3, 4, 8 or 32)", bits)
	}
}
