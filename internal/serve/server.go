package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/wire"
)

// Lookup connection framing (integers little-endian), one request at a
// time per connection:
//
//	Request:  u32 bodyLen | body (wire lookup-request encoding)
//	Response: u8 status | u32 payloadLen | payload
//
// statusOK's payload is the wire lookup-response encoding;
// statusNotReady (replica has no checkpoint yet) and statusError carry
// the error message.
const (
	lookupStatusOK       = 0
	lookupStatusNotReady = 1
	lookupStatusError    = 2

	// maxLookupFrame bounds one framed lookup message in either
	// direction (a full-table scan of a wide table still fits).
	maxLookupFrame = 1 << 26
)

func writeLookupFrame(w io.Writer, body []byte) error {
	if len(body) > maxLookupFrame {
		return fmt.Errorf("serve: frame too long: %d bytes", len(body))
	}
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readLookupFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > maxLookupFrame {
		return nil, fmt.Errorf("serve: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

func writeLookupResponse(w io.Writer, status uint8, payload []byte) error {
	if len(payload) > maxLookupFrame {
		return fmt.Errorf("serve: response too long: %d bytes", len(payload))
	}
	hdr := make([]byte, 5)
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func readLookupResponse(r io.Reader) (status uint8, payload []byte, err error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	status = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxLookupFrame {
		return 0, nil, fmt.Errorf("serve: response length %d exceeds limit", n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
	}
	return status, payload, nil
}

// server accepts lookup connections for one replica, mirroring
// ctrl.AgentServer's lifecycle.
type server struct {
	rep *Replica
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

func newServer(addr string, rep *Replica) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen: %w", err)
	}
	s := &server{rep: rep, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *server) Addr() string { return s.ln.Addr().String() }

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.rep.logf("serve %s: accept: %v", s.rep.cfg.JobID, err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		body, err := readLookupFrame(br)
		if err != nil {
			return
		}
		req, err := wire.DecodeLookupRequest(body)
		if err != nil {
			if werr := writeLookupResponse(bw, lookupStatusError, []byte(err.Error())); werr != nil {
				return
			}
			if bw.Flush() != nil {
				return
			}
			continue
		}
		resp, err := s.rep.lookup(req)
		var werr error
		switch {
		case errors.Is(err, ErrNotReady):
			werr = writeLookupResponse(bw, lookupStatusNotReady, []byte(err.Error()))
		case err != nil:
			werr = writeLookupResponse(bw, lookupStatusError, []byte(err.Error()))
		default:
			blob, eerr := wire.EncodeLookupResponse(resp)
			if eerr != nil {
				werr = writeLookupResponse(bw, lookupStatusError, []byte(eerr.Error()))
			} else {
				werr = writeLookupResponse(bw, lookupStatusOK, blob)
			}
		}
		if werr != nil || bw.Flush() != nil {
			return
		}
	}
}

func (s *server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
