package serve

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// ClientConfig configures a lookup client.
type ClientConfig struct {
	// DialTimeout bounds connection establishment; zero means 5s.
	DialTimeout time.Duration
}

// Client issues embedding lookups against one serving replica over a
// single redialing connection, mirroring ctrl.Client: a transport error
// drops the connection and the next call redials.
type Client struct {
	addr string
	cfg  ClientConfig

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// NewClient returns a client for the replica at addr. No connection is
// made until the first lookup.
func NewClient(addr string, cfg ClientConfig) *Client {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	return &Client{addr: addr, cfg: cfg}
}

// Addr returns the replica address this client targets.
func (c *Client) Addr() string { return c.addr }

// Lookup fetches the embedding vectors for a batch of indices from one
// table. Every vector in the response was read from the single
// committed checkpoint identified by the response's CkptID/Step.
// A replica that has not loaded a checkpoint yet returns an error
// wrapping ErrNotReady.
func (c *Client) Lookup(ctx context.Context, tableID uint32, indices []uint32) (*wire.LookupResponse, error) {
	body, err := wire.EncodeLookupRequest(&wire.LookupRequest{TableID: tableID, Indices: indices})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		d := net.Dialer{Timeout: c.cfg.DialTimeout}
		conn, err := d.DialContext(ctx, "tcp", c.addr)
		if err != nil {
			return nil, fmt.Errorf("serve: dial %s: %w", c.addr, err)
		}
		c.conn = conn
		c.br = bufio.NewReaderSize(conn, 64<<10)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	drop := func(err error) (*wire.LookupResponse, error) {
		c.conn.Close()
		c.conn, c.br = nil, nil
		return nil, err
	}
	if err := writeLookupFrame(c.conn, body); err != nil {
		return drop(fmt.Errorf("serve: lookup %s: %w", c.addr, err))
	}
	status, payload, err := readLookupResponse(c.br)
	if err != nil {
		return drop(fmt.Errorf("serve: lookup %s: %w", c.addr, err))
	}
	switch status {
	case lookupStatusOK:
		return wire.DecodeLookupResponse(payload)
	case lookupStatusNotReady:
		return nil, fmt.Errorf("serve: %s: %w", c.addr, ErrNotReady)
	default:
		return nil, fmt.Errorf("serve: %s: %s", c.addr, payload)
	}
}

// Close closes the connection, if any.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.br = nil, nil
	}
}
