package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/wire"
)

func testModelConfig() model.Config {
	cfg := model.DefaultConfig()
	cfg.Tables = []embedding.TableSpec{
		{Rows: 256, Dim: 16}, {Rows: 128, Dim: 16}, {Rows: 512, Dim: 16},
	}
	return cfg
}

func testDataSpec() data.Spec {
	spec := data.DefaultSpec()
	spec.TableRows = []int{256, 128, 512}
	return spec
}

// harness is an in-process write plane: a trained model committing
// composites through a ckpt.Coordinator, with per-checkpoint reference
// copies of every table for bit-exact read verification.
type harness struct {
	t     *testing.T
	m     *model.DLRM
	gen   *data.Generator
	coord *ckpt.Coordinator
	step  uint64

	mu   sync.Mutex
	refs map[int]map[int][]float32 // ckptID -> tableID -> flat weights
}

func newHarness(t *testing.T, store objstore.Store, keepLast int) *harness {
	t.Helper()
	m, err := model.New(testModelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := data.NewGenerator(testDataSpec())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := ckpt.NewCoordinator(ckpt.CoordinatorConfig{
		Config: ckpt.Config{
			JobID:    "serve-test",
			Store:    store,
			Policy:   ckpt.PolicyOneShot,
			KeepLast: keepLast,
		},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, m: m, gen: gen, coord: coord, refs: make(map[int]map[int][]float32)}
}

// commit trains one batch further and commits a composite, recording
// the reference table state under the resulting checkpoint ID.
func (h *harness) commit(ctx context.Context) *wire.Manifest {
	h.m.TrainBatch(h.gen.NextBatch(16))
	h.step++
	snap, err := ckpt.TakeSnapshot(h.m, h.step, data.ReaderState{NextSample: h.gen.Pos(), BatchSize: 16})
	if err != nil {
		h.t.Error(err)
		return nil
	}
	ref := make(map[int][]float32)
	for _, tab := range h.m.Sparse.Tables {
		ref[tab.ID] = append([]float32(nil), tab.Weights.Data...)
	}
	man, err := h.coord.Write(ctx, snap)
	if err != nil {
		h.t.Error(err)
		return nil
	}
	h.mu.Lock()
	h.refs[man.ID] = ref
	h.mu.Unlock()
	return man
}

// verify checks that resp's vectors for (tableID, indices) bit-match
// the reference copy of the checkpoint the response claims to serve.
func (h *harness) verify(resp *wire.LookupResponse, tableID int, indices []uint32) error {
	h.mu.Lock()
	ref, ok := h.refs[resp.CkptID]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("response claims checkpoint %d, which was never committed", resp.CkptID)
	}
	tab := ref[tableID]
	dim := int(resp.Dim)
	if len(resp.Vectors) != len(indices)*dim {
		return fmt.Errorf("got %d floats for %d indices of dim %d", len(resp.Vectors), len(indices), dim)
	}
	for i, idx := range indices {
		for d := 0; d < dim; d++ {
			got := resp.Vectors[i*dim+d]
			want := tab[int(idx)*dim+d]
			if got != want {
				return fmt.Errorf("ckpt %d table %d row %d[%d]: got %x, want %x — rows mixing checkpoint states",
					resp.CkptID, tableID, idx, d, got, want)
			}
		}
	}
	return nil
}

func TestReplicaServesCommittedCheckpointsBitExactly(t *testing.T) {
	store := objstore.NewMemStore(objstore.MemConfig{})
	h := newHarness(t, store, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Baseline committed before the replica starts: bootstrap path.
	man0 := h.commit(ctx)
	if man0 == nil {
		t.FailNow()
	}

	rep, err := Start(Config{
		JobID:       "serve-test",
		Store:       store,
		ResyncEvery: 25 * time.Millisecond, // poll-only: no announce endpoint
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.WaitForCheckpoint(ctx, man0.ID); err != nil {
		t.Fatal(err)
	}

	cl := NewClient(rep.Addr(), ClientConfig{})
	defer cl.Close()
	rows := testDataSpec().TableRows
	check := func(wantID int) {
		t.Helper()
		for tid, n := range rows {
			indices := make([]uint32, n)
			for i := range indices {
				indices[i] = uint32(i)
			}
			resp, err := cl.Lookup(ctx, uint32(tid), indices)
			if err != nil {
				t.Fatalf("lookup table %d: %v", tid, err)
			}
			if resp.CkptID != wantID {
				t.Fatalf("served ckpt %d, want %d", resp.CkptID, wantID)
			}
			if err := h.verify(resp, tid, indices); err != nil {
				t.Fatal(err)
			}
		}
	}
	check(man0.ID)

	// Two incremental deltas committed while the replica is live: the
	// delta-apply path, each converging bit-exactly.
	for i := 0; i < 2; i++ {
		man := h.commit(ctx)
		if man == nil {
			t.FailNow()
		}
		if err := rep.WaitForCheckpoint(ctx, man.ID); err != nil {
			t.Fatal(err)
		}
		check(man.ID)
	}
}

func TestReplicaFollowsAnnounceStream(t *testing.T) {
	store := objstore.NewMemStore(objstore.MemConfig{})
	h := newHarness(t, store, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	ann, err := ctrl.NewAnnouncer("127.0.0.1:0", "serve-test", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Close()

	rep, err := Start(Config{
		JobID:        "serve-test",
		Store:        store,
		AnnounceAddr: ann.Addr(),
		// Resync slow enough that only announcements can explain fast
		// convergence: this proves the push path works.
		ResyncEvery: 30 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// Wait for the subscription to be up before committing, then each
	// commit+announce must reach the replica well inside the resync
	// period.
	waitFor(t, 10*time.Second, func() bool { return ann.Subscribers() == 1 })
	for i := 0; i < 3; i++ {
		man := h.commit(ctx)
		if man == nil {
			t.FailNow()
		}
		ann.Announce(1, man)
		wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
		err := rep.WaitForCheckpoint(wctx, man.ID)
		wcancel()
		if err != nil {
			t.Fatalf("replica did not converge on announcement: %v", err)
		}
	}

	// A stale-epoch announcement is fenced: it must not regress or
	// perturb the replica (nothing to observe but "still serving").
	ann.Announce(0, &wire.Manifest{ID: 99, Step: 999, Kind: wire.KindIncremental.String()})
	time.Sleep(50 * time.Millisecond)
	if id, _ := rep.Served(); id != 2 {
		t.Fatalf("served id = %d after stale announcement, want 2", id)
	}
}

func TestReplicaNotReadyBeforeFirstCheckpoint(t *testing.T) {
	store := objstore.NewMemStore(objstore.MemConfig{})
	rep, err := Start(Config{JobID: "empty-job", Store: store, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	cl := NewClient(rep.Addr(), ClientConfig{})
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cl.Lookup(ctx, 0, []uint32{0}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("lookup on empty job = %v, want ErrNotReady", err)
	}
	if id, _ := rep.Served(); id != -1 {
		t.Fatalf("Served() = %d, want -1", id)
	}
}

// TestReadUnderCommitNoTornReads is the read-under-commit race test:
// lookup traffic hammers a replica while composites land concurrently,
// and every single response must bit-match the reference state of
// exactly the checkpoint it claims to serve — a row mixing old and new
// delta state (a torn read) fails the comparison. Run under -race this
// also proves the table-set swap is properly synchronized.
func TestReadUnderCommitNoTornReads(t *testing.T) {
	store := objstore.NewMemStore(objstore.MemConfig{})
	h := newHarness(t, store, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	man0 := h.commit(ctx)
	if man0 == nil {
		t.FailNow()
	}
	rep, err := Start(Config{
		JobID:       "serve-test",
		Store:       store,
		ResyncEvery: 5 * time.Millisecond, // aggressive: maximize swap frequency
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.WaitForCheckpoint(ctx, man0.ID); err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		commits = 6
	)
	rows := testDataSpec().TableRows
	stop := make(chan struct{})
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			cl := NewClient(rep.Addr(), ClientConfig{})
			defer cl.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tid := rng.Intn(len(rows))
				indices := make([]uint32, 1+rng.Intn(32))
				for i := range indices {
					indices[i] = uint32(rng.Intn(rows[tid]))
				}
				resp, err := cl.Lookup(ctx, uint32(tid), indices)
				if err != nil {
					select {
					case errCh <- fmt.Errorf("lookup: %w", err):
					default:
					}
					return
				}
				if err := h.verify(resp, tid, indices); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(int64(w))
	}

	// Commit deltas while the readers run; give the replica a moment on
	// each so reads actually land on multiple versions.
	lastID := man0.ID
	for i := 0; i < commits; i++ {
		man := h.commit(ctx)
		if man == nil {
			break
		}
		lastID = man.ID
		time.Sleep(30 * time.Millisecond)
	}
	if err := rep.WaitForCheckpoint(ctx, lastID); err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if id, _ := rep.Served(); id != lastID {
		t.Fatalf("served id = %d after commits, want %d", id, lastID)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
