// Package serve is the read plane: serving replicas that publish
// checkpointed embeddings to inference traffic. A Replica subscribes to
// the controller's announce endpoint (the CNC1 control plane's
// opSubscribe/opAnnounce verbs), pulls the newest complete composite
// from the object store once as its baseline, then applies each
// incremental delta as its composite commits — maintaining an in-memory
// dequantized table set that answers embedding lookups over framed TCP.
//
// Consistency model: every lookup response is served from exactly one
// committed checkpoint. Deltas are applied onto cloned copies of only
// the touched tables, assembled into a fresh immutable table-set
// version, and published with a single atomic pointer swap — readers
// never observe a row mixing old and new delta state (no torn reads).
// Staleness is allowed and unbounded: a partitioned replica keeps
// serving its last version and converges (bit-identically — the apply
// path is the same alias-decode/dequantize path recovery uses) after
// healing, via announcements when the stream is alive and via periodic
// re-sync polling when it is not.
//
// Fencing for readers: announcements carry the controller's epoch and
// the replica drops events from epochs below the highest it has seen,
// so a deposed controller cannot make a replica chase phantom
// checkpoints. Announcements are only hints, though — state always
// comes from committed manifests in the store, which the two-phase
// commit guarantees are immutable once present.
package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sync"
	"sync/atomic"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/embedding"
	"repro/internal/objstore"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// ErrNotReady reports a lookup against a replica that has not yet
// loaded its first complete checkpoint.
var ErrNotReady = errors.New("serve: no checkpoint loaded yet")

// Config configures a serving replica.
type Config struct {
	// JobID is the checkpoint job to serve.
	JobID string
	// Store is the replica's object-store connection (routed or single;
	// caller-owned, not closed by the replica).
	Store objstore.Store
	// AnnounceAddr is the controller's announce endpoint. Empty means
	// poll-only: the replica discovers new checkpoints solely via the
	// ResyncEvery ticker.
	AnnounceAddr string
	// ListenAddr is the lookup listen address; empty means
	// "127.0.0.1:0".
	ListenAddr string
	// Decoders overrides chunk-decode parallelism (see
	// ckpt.Restorer.SetDecoders); zero keeps the default.
	Decoders int
	// ResyncEvery is the store re-sync polling period — the fallback
	// that converges a replica whose announce stream is dead or
	// partitioned. Zero means 2s.
	ResyncEvery time.Duration
	// SyncTimeout bounds one catch-up pass against the store (listing,
	// chain fetch, chunk apply). Zero means 60s.
	SyncTimeout time.Duration
	// DialTimeout bounds the subscribe handshake; zero means 5s.
	DialTimeout time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// tableSet is one immutable published version: the replica's tables as
// of composite checkpoint id. Lookups resolve against exactly one
// tableSet; apply builds the next one aside and swaps the pointer.
type tableSet struct {
	id     int
	step   uint64
	tables map[int]*embedding.Table
}

// Table satisfies ckpt.TableSet during delta application.
func (v *tableSet) Table(id int) *embedding.Table { return v.tables[id] }

// Replica is a serving replica. Start it with Start; it is safe for
// concurrent lookups while deltas land.
type Replica struct {
	cfg  Config
	logf func(format string, args ...any)
	rest *ckpt.Restorer

	cur   atomic.Pointer[tableSet]
	epoch atomic.Uint64

	srv  *server
	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	sub    *ctrl.Subscription
	closed bool
}

// Start launches a replica: it begins listening for lookups
// immediately (answering ErrNotReady until the first complete composite
// is loaded), starts the catch-up loop, and — when AnnounceAddr is set
// — maintains a subscription to the controller's announce stream.
func Start(cfg Config) (*Replica, error) {
	if cfg.JobID == "" {
		return nil, fmt.Errorf("serve: empty job ID")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.ResyncEvery <= 0 {
		cfg.ResyncEvery = 2 * time.Second
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 60 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rest, err := ckpt.NewRestorer(cfg.JobID, cfg.Store)
	if err != nil {
		return nil, err
	}
	if cfg.Decoders > 0 {
		rest.SetDecoders(cfg.Decoders)
	}
	r := &Replica{
		cfg:  cfg,
		logf: logf,
		rest: rest,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	r.srv, err = newServer(cfg.ListenAddr, r)
	if err != nil {
		return nil, err
	}
	r.kick() // bootstrap attempt without waiting for the first tick
	r.wg.Add(1)
	go r.applyLoop()
	if cfg.AnnounceAddr != "" {
		r.wg.Add(1)
		go r.subscribeLoop()
	}
	return r, nil
}

// Addr returns the lookup endpoint address.
func (r *Replica) Addr() string { return r.srv.Addr() }

// Served returns the checkpoint currently being served: its composite
// ID and step, or (-1, 0) before the first load.
func (r *Replica) Served() (id int, step uint64) {
	v := r.cur.Load()
	if v == nil {
		return -1, 0
	}
	return v.id, v.step
}

// WaitForCheckpoint blocks until the replica serves checkpoint id or
// newer, or the context expires.
func (r *Replica) WaitForCheckpoint(ctx context.Context, id int) error {
	for {
		if got, _ := r.Served(); got >= id {
			return nil
		}
		select {
		case <-ctx.Done():
			got, _ := r.Served()
			return fmt.Errorf("serve: waiting for checkpoint %d (at %d): %w", id, got, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close stops serving and releases all resources except the store.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sub := r.sub
	r.mu.Unlock()
	close(r.done)
	if sub != nil {
		sub.Close()
	}
	r.srv.Close()
	r.wg.Wait()
}

// kick schedules a catch-up pass if one is not already pending.
func (r *Replica) kick() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// observeEpoch folds a seen controller epoch into the replica's fence.
// It reports whether the epoch is current (>= the highest seen).
func (r *Replica) observeEpoch(e uint64) bool {
	for {
		cur := r.epoch.Load()
		if e < cur {
			return false
		}
		if e == cur || r.epoch.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// applyLoop is the single writer of r.cur: it wakes on announcements
// and on the re-sync ticker, and runs one catch-up pass per wake.
func (r *Replica) applyLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.ResyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-r.wake:
		case <-tick.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.SyncTimeout)
		err := r.syncOnce(ctx)
		cancel()
		if err != nil {
			select {
			case <-r.done:
				return
			default:
			}
			r.logf("serve %s: sync: %v", r.cfg.JobID, err)
		}
	}
}

// syncOnce advances the served version to the newest complete composite
// if the replica is behind. Announcement-free progress: it works from
// the store listing alone, so it also heals replicas whose announce
// stream died.
func (r *Replica) syncOnce(ctx context.Context) error {
	mans, err := r.rest.ListManifests(ctx)
	if err != nil {
		return err
	}
	var target *wire.Manifest
	for i := len(mans) - 1; i >= 0; i-- {
		ok, err := r.rest.Complete(ctx, mans[i])
		if err != nil {
			return err
		}
		if ok {
			target = mans[i]
			break
		}
	}
	if target == nil {
		return nil // nothing committed yet
	}
	cur := r.cur.Load()
	if cur != nil && cur.id >= target.ID {
		return nil
	}
	next, err := r.advance(ctx, target, cur)
	if err != nil && cur != nil {
		// The delta path can lose a race with GC (an intermediate link
		// swept between listing and fetch): fall back to a full rebuild
		// from the newest complete composite.
		r.logf("serve %s: delta apply %d -> %d failed (%v); rebuilding from scratch",
			r.cfg.JobID, cur.id, target.ID, err)
		next, err = r.advance(ctx, target, nil)
	}
	if err != nil {
		return err
	}
	r.cur.Store(next)
	r.logf("serve %s: serving checkpoint %d (step %d, %d tables)",
		r.cfg.JobID, next.id, next.step, len(next.tables))
	return nil
}

// advance builds the table-set version for target on top of cur (nil
// means bootstrap from the baseline). Only tables touched by the
// applied links are cloned; untouched tables are shared with cur —
// they are immutable once published, so sharing is safe.
//
// Correctness across delta policies: for each shard the restore chain
// for target is resolved (ckpt.Restorer.Chain handles full, one-shot
// SinceBase, and consecutive chains) and every link newer than cur is
// applied in order. A SinceBase link carries all rows modified since
// its base — a superset of the rows modified since cur (cur is at or
// past the base, or it would have been rebuilt) — so skipping links at
// or before cur never loses writes.
func (r *Replica) advance(ctx context.Context, target *wire.Manifest, cur *tableSet) (*tableSet, error) {
	curID := -1
	if cur != nil {
		curID = cur.id
	}
	type shardChain struct {
		sub   *ckpt.Restorer
		links []*wire.Manifest
	}
	var chains []shardChain
	if target.Composite() {
		for s := 0; s < target.ShardCount; s++ {
			sub, err := ckpt.NewRestorer(wire.ShardJobID(r.cfg.JobID, s), r.cfg.Store)
			if err != nil {
				return nil, err
			}
			if r.cfg.Decoders > 0 {
				sub.SetDecoders(r.cfg.Decoders)
			}
			chain, err := sub.Chain(ctx, target.ID)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d chain: %w", s, err)
			}
			sc := shardChain{sub: sub}
			for _, m := range chain {
				if m.ID > curID {
					sc.links = append(sc.links, m)
				}
			}
			chains = append(chains, sc)
		}
	} else {
		// Single-writer job (no composite): the job-level chain is the
		// one and only "shard".
		chain, err := r.rest.Chain(ctx, target.ID)
		if err != nil {
			return nil, err
		}
		sc := shardChain{sub: r.rest}
		for _, m := range chain {
			if m.ID > curID {
				sc.links = append(sc.links, m)
			}
		}
		chains = append(chains, sc)
	}

	// Copy-on-write table set: carry every current table over, clone
	// the ones the links will write, allocate the ones we do not have.
	tables := make(map[int]*embedding.Table)
	if cur != nil {
		for id, t := range cur.tables {
			tables[id] = t
		}
	}
	cloned := make(map[int]bool)
	for _, sc := range chains {
		for _, m := range sc.links {
			for i := range m.Tables {
				tm := &m.Tables[i]
				if t, ok := tables[tm.TableID]; ok {
					if !cloned[tm.TableID] {
						tables[tm.TableID] = t.Clone()
						cloned[tm.TableID] = true
					}
				} else {
					tables[tm.TableID] = &embedding.Table{
						ID:      tm.TableID,
						Rows:    tm.Rows,
						Dim:     tm.Dim,
						Weights: tensor.NewMatrix(tm.Rows, tm.Dim),
						Accum:   make([]float32, tm.Rows),
					}
					cloned[tm.TableID] = true
				}
			}
		}
	}
	next := &tableSet{id: target.ID, step: target.Step, tables: tables}
	for _, sc := range chains {
		for _, m := range sc.links {
			res := &ckpt.RestoreResult{}
			if err := sc.sub.ApplyManifest(ctx, m, next, res); err != nil {
				return nil, fmt.Errorf("serve: apply %d: %w", m.ID, err)
			}
		}
	}
	if target.Composite() {
		// The composite's own table entries carry no chunks; applying it
		// is the cross-shard shape sanity check recovery also runs.
		if err := r.rest.ApplyManifest(ctx, target, next, &ckpt.RestoreResult{}); err != nil {
			return nil, err
		}
	}
	return next, nil
}

// subscribeLoop keeps one announce subscription alive, re-dialing with
// jittered backoff; each current-epoch announcement kicks a catch-up
// pass. Loss of the stream is not fatal — applyLoop's ticker still
// converges the replica.
func (r *Replica) subscribeLoop() {
	defer r.wg.Done()
	bo := ctrl.NewBackoff(100*time.Millisecond, 2*time.Second)
	for {
		select {
		case <-r.done:
			return
		default:
		}
		dctx, cancel := context.WithTimeout(context.Background(), r.cfg.DialTimeout)
		sub, err := ctrl.Subscribe(dctx, r.cfg.AnnounceAddr, r.cfg.JobID)
		cancel()
		if err != nil {
			select {
			case <-r.done:
				return
			case <-time.After(bo.Next()):
			}
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			sub.Close()
			return
		}
		r.sub = sub
		r.mu.Unlock()
		r.observeEpoch(sub.Reply().Epoch)
		r.logf("serve %s: subscribed to %s (epoch %d, next id %d)",
			r.cfg.JobID, r.cfg.AnnounceAddr, sub.Reply().Epoch, sub.Reply().NextID)
		r.kick()
		for {
			ev, epoch, err := sub.Next(context.Background())
			if err != nil {
				break
			}
			if !r.observeEpoch(epoch) {
				// Fenced: a deposed controller is still announcing. Ignore
				// the hint; committed manifests are the source of truth.
				r.logf("serve %s: dropping announcement of ckpt %d from stale epoch %d (at %d)",
					r.cfg.JobID, ev.CkptID, epoch, r.epoch.Load())
				continue
			}
			r.kick()
		}
		sub.Close()
		r.mu.Lock()
		r.sub = nil
		r.mu.Unlock()
		select {
		case <-r.done:
			return
		case <-time.After(bo.Next()):
		}
	}
}

// lookup answers one batch lookup from the current version.
func (r *Replica) lookup(req *wire.LookupRequest) (*wire.LookupResponse, error) {
	v := r.cur.Load()
	if v == nil {
		return nil, ErrNotReady
	}
	tab := v.tables[int(req.TableID)]
	if tab == nil {
		return nil, fmt.Errorf("serve: no table %d", req.TableID)
	}
	out := make([]float32, 0, len(req.Indices)*tab.Dim)
	for _, idx := range req.Indices {
		if int(idx) >= tab.Rows {
			return nil, fmt.Errorf("serve: table %d index %d out of range [0,%d)", req.TableID, idx, tab.Rows)
		}
		out = append(out, tab.Lookup(int(idx))...)
	}
	return &wire.LookupResponse{CkptID: v.id, Step: v.step, Dim: uint32(tab.Dim), Vectors: out}, nil
}
