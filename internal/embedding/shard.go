package embedding

import (
	"fmt"
	"math/rand"
	"sort"
)

// ShardedModel is the model-parallel layout of the sparse layer: whole
// embedding tables assigned to trainer nodes (§2.1 — "the large footprint
// of the sparse layer requires the distribution of the embedding tables
// across multiple devices"). Assignment is greedy by byte size so node
// footprints stay balanced, mirroring how production placements balance
// HBM usage.
type ShardedModel struct {
	Tables []*Table
	// owner[tableID] = node index
	owner map[int]int
	nodes int
}

// TableSpec describes one embedding table to create.
type TableSpec struct {
	Rows int
	Dim  int
	// InitScale is the uniform init range; zero means 0.01.
	InitScale float32
}

// NewSharded creates the given tables and assigns them to nodes, largest
// first onto the least-loaded node. rng seeds the weight init.
func NewSharded(specs []TableSpec, nodes int, rng *rand.Rand) (*ShardedModel, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("embedding: nodes must be positive, got %d", nodes)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("embedding: no table specs")
	}
	m := &ShardedModel{owner: make(map[int]int, len(specs)), nodes: nodes}
	for id, s := range specs {
		scale := s.InitScale
		if scale == 0 {
			scale = 0.01
		}
		if s.Rows <= 0 || s.Dim <= 0 {
			return nil, fmt.Errorf("embedding: table %d invalid spec %dx%d", id, s.Rows, s.Dim)
		}
		m.Tables = append(m.Tables, NewTable(id, s.Rows, s.Dim, scale, rng))
	}

	// Greedy balanced placement: biggest table to lightest node.
	order := make([]int, len(m.Tables))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return m.Tables[order[a]].SizeBytes() > m.Tables[order[b]].SizeBytes()
	})
	load := make([]int64, nodes)
	for _, ti := range order {
		best := 0
		for n := 1; n < nodes; n++ {
			if load[n] < load[best] {
				best = n
			}
		}
		m.owner[m.Tables[ti].ID] = best
		load[best] += m.Tables[ti].SizeBytes()
	}
	return m, nil
}

// Nodes returns the number of trainer nodes in the placement.
func (m *ShardedModel) Nodes() int { return m.nodes }

// Owner returns the node index owning tableID.
func (m *ShardedModel) Owner(tableID int) int {
	n, ok := m.owner[tableID]
	if !ok {
		panic(fmt.Sprintf("embedding: unknown table %d", tableID))
	}
	return n
}

// TablesOn returns the tables owned by node n, ordered by table ID.
func (m *ShardedModel) TablesOn(n int) []*Table {
	var out []*Table
	for _, t := range m.Tables {
		if m.owner[t.ID] == n {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Table returns the table with the given ID, or nil.
func (m *ShardedModel) Table(id int) *Table {
	for _, t := range m.Tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// TotalBytes returns the checkpointable size of the sparse layer.
func (m *ShardedModel) TotalBytes() int64 {
	var n int64
	for _, t := range m.Tables {
		n += t.SizeBytes()
	}
	return n
}

// TotalRows returns the number of embedding rows across tables.
func (m *ShardedModel) TotalRows() int {
	n := 0
	for _, t := range m.Tables {
		n += t.Rows
	}
	return n
}

// NodeBytes returns per-node checkpointable bytes, for balance assertions.
func (m *ShardedModel) NodeBytes() []int64 {
	out := make([]int64, m.nodes)
	for _, t := range m.Tables {
		out[m.owner[t.ID]] += t.SizeBytes()
	}
	return out
}
