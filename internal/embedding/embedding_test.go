package embedding

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func newTestTable(t *testing.T, rows, dim int) *Table {
	t.Helper()
	return NewTable(0, rows, dim, 0.01, rand.New(rand.NewSource(7)))
}

func TestNewTableInit(t *testing.T) {
	tab := newTestTable(t, 100, 8)
	if tab.Rows != 100 || tab.Dim != 8 {
		t.Fatalf("dims wrong: %dx%d", tab.Rows, tab.Dim)
	}
	nonzero := 0
	for _, v := range tab.Weights.Data {
		if v > 0.01 || v < -0.01 {
			t.Fatalf("init value %v outside scale", v)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all-zero init")
	}
	for _, a := range tab.Accum {
		if a != 0 {
			t.Fatal("accumulator should start at zero")
		}
	}
}

func TestNewTableInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewTable(0, 0, 8, 0.01, rand.New(rand.NewSource(1)))
}

func TestLookupIsView(t *testing.T) {
	tab := newTestTable(t, 10, 4)
	row := tab.Lookup(3)
	row[0] = 42
	if tab.Weights.At(3, 0) != 42 {
		t.Fatal("Lookup should return a view")
	}
}

func TestApplyGradMovesAgainstGradient(t *testing.T) {
	tab := newTestTable(t, 10, 4)
	before := append(tensor.Vector(nil), tab.Lookup(5)...)
	g := tensor.Vector{1, -1, 0.5, 0}
	tab.ApplyGrad(5, g, 0.1)
	after := tab.Lookup(5)
	for i := range g {
		if g[i] > 0 && after[i] >= before[i] {
			t.Fatalf("dim %d did not decrease against positive grad", i)
		}
		if g[i] < 0 && after[i] <= before[i] {
			t.Fatalf("dim %d did not increase against negative grad", i)
		}
		if g[i] == 0 && after[i] != before[i] {
			t.Fatalf("dim %d moved with zero grad", i)
		}
	}
	if tab.Accum[5] <= 0 {
		t.Fatal("accumulator did not grow")
	}
}

func TestApplyGradAdagradShrinksSteps(t *testing.T) {
	tab := newTestTable(t, 2, 2)
	g := tensor.Vector{1, 1}
	before1 := tab.Weights.At(0, 0)
	tab.ApplyGrad(0, g, 0.1)
	step1 := before1 - tab.Weights.At(0, 0)
	before2 := tab.Weights.At(0, 0)
	tab.ApplyGrad(0, g, 0.1)
	step2 := before2 - tab.Weights.At(0, 0)
	if step2 >= step1 {
		t.Fatalf("AdaGrad step should shrink: %v then %v", step1, step2)
	}
}

func TestApplyGradDimMismatchPanics(t *testing.T) {
	tab := newTestTable(t, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tab.ApplyGrad(0, tensor.Vector{1}, 0.1)
}

func TestSizeBytes(t *testing.T) {
	tab := newTestTable(t, 100, 16)
	want := int64(100*16*4 + 100*4)
	if got := tab.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	tab := newTestTable(t, 5, 3)
	c := tab.Clone()
	tab.Weights.Set(0, 0, 99)
	tab.Accum[0] = 7
	if c.Weights.At(0, 0) == 99 || c.Accum[0] == 7 {
		t.Fatal("clone aliases original")
	}
}

func TestCopyRow(t *testing.T) {
	tab := newTestTable(t, 5, 3)
	dst := make(tensor.Vector, 3)
	tab.CopyRow(2, dst)
	for i := range dst {
		if dst[i] != tab.Weights.At(2, i) {
			t.Fatal("CopyRow mismatch")
		}
	}
	dst[0] = 123
	if tab.Weights.At(2, 0) == 123 {
		t.Fatal("CopyRow should copy, not alias")
	}
}

func makeTables(n, rows, dim int) []*Table {
	rng := rand.New(rand.NewSource(3))
	out := make([]*Table, n)
	for i := range out {
		out[i] = NewTable(i, rows, dim, 0.01, rng)
	}
	return out
}

func TestTrackerMarkAndCount(t *testing.T) {
	tabs := makeTables(2, 100, 4)
	tr := NewTracker(tabs)
	tr.Mark(0, 5)
	tr.Mark(0, 5) // idempotent
	tr.Mark(1, 99)
	if got := tr.ModifiedRows(0); got != 1 {
		t.Fatalf("table 0 modified = %d, want 1", got)
	}
	if got := tr.TotalModified(); got != 2 {
		t.Fatalf("total modified = %d, want 2", got)
	}
	if got := tr.TotalRows(); got != 200 {
		t.Fatalf("total rows = %d, want 200", got)
	}
	if got := tr.ModifiedFraction(); got != 0.01 {
		t.Fatalf("fraction = %v, want 0.01", got)
	}
}

func TestTrackerUnknownTablePanics(t *testing.T) {
	tr := NewTracker(makeTables(1, 10, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tr.Mark(42, 0)
}

func TestTrackerMarkBatch(t *testing.T) {
	tr := NewTracker(makeTables(1, 100, 2))
	tr.MarkBatch(0, []int{1, 2, 3, 2, 1})
	if got := tr.ModifiedRows(0); got != 3 {
		t.Fatalf("modified = %d, want 3", got)
	}
}

func TestTrackerSnapshotWithReset(t *testing.T) {
	tr := NewTracker(makeTables(1, 50, 2))
	tr.MarkBatch(0, []int{1, 2, 3})
	snap := tr.Snapshot(true)
	if snap[0].Count() != 3 {
		t.Fatalf("snapshot count = %d, want 3", snap[0].Count())
	}
	if tr.TotalModified() != 0 {
		t.Fatal("live tracker should be reset")
	}
	// New marks don't appear in the old snapshot.
	tr.Mark(0, 9)
	if snap[0].Count() != 3 {
		t.Fatal("snapshot must be independent of live tracker")
	}
}

func TestTrackerSnapshotWithoutReset(t *testing.T) {
	tr := NewTracker(makeTables(1, 50, 2))
	tr.Mark(0, 1)
	_ = tr.Snapshot(false)
	if tr.TotalModified() != 1 {
		t.Fatal("snapshot(false) must not reset")
	}
}

func TestTrackerConcurrentMark(t *testing.T) {
	tabs := makeTables(4, 1000, 2)
	tr := NewTracker(tabs)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Mark(tid, i)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.TotalModified(); got != 4000 {
		t.Fatalf("total = %d, want 4000", got)
	}
}

func TestTrackerFootprintSmall(t *testing.T) {
	tabs := makeTables(4, 1<<16, 64)
	tr := NewTracker(tabs)
	var model int64
	for _, tb := range tabs {
		model += tb.SizeBytes()
	}
	if frac := float64(tr.FootprintBytes()) / float64(model); frac > 0.0005 {
		t.Fatalf("tracker fraction %v exceeds paper's 0.05%% bound", frac)
	}
}

func TestShardedBalancedPlacement(t *testing.T) {
	specs := []TableSpec{
		{Rows: 1000, Dim: 16}, {Rows: 2000, Dim: 16}, {Rows: 500, Dim: 16},
		{Rows: 1500, Dim: 16}, {Rows: 800, Dim: 16}, {Rows: 1200, Dim: 16},
	}
	m, err := NewSharded(specs, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	loads := m.NodeBytes()
	var lo, hi int64 = loads[0], loads[0]
	for _, l := range loads {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if lo == 0 {
		t.Fatalf("a node got no tables: %v", loads)
	}
	if float64(hi)/float64(lo) > 2.5 {
		t.Fatalf("placement imbalanced: %v", loads)
	}
	// Every table owned exactly once.
	seen := map[int]bool{}
	for n := 0; n < 3; n++ {
		for _, tb := range m.TablesOn(n) {
			if seen[tb.ID] {
				t.Fatalf("table %d owned twice", tb.ID)
			}
			seen[tb.ID] = true
			if m.Owner(tb.ID) != n {
				t.Fatalf("Owner(%d) inconsistent", tb.ID)
			}
		}
	}
	if len(seen) != len(specs) {
		t.Fatalf("only %d/%d tables placed", len(seen), len(specs))
	}
}

func TestShardedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSharded(nil, 2, rng); err == nil {
		t.Fatal("empty specs should error")
	}
	if _, err := NewSharded([]TableSpec{{Rows: 10, Dim: 4}}, 0, rng); err == nil {
		t.Fatal("zero nodes should error")
	}
	if _, err := NewSharded([]TableSpec{{Rows: 0, Dim: 4}}, 1, rng); err == nil {
		t.Fatal("invalid table should error")
	}
}

func TestShardedAccessors(t *testing.T) {
	specs := []TableSpec{{Rows: 10, Dim: 4}, {Rows: 20, Dim: 4}}
	m, err := NewSharded(specs, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 2 {
		t.Fatalf("Nodes = %d", m.Nodes())
	}
	if m.TotalRows() != 30 {
		t.Fatalf("TotalRows = %d", m.TotalRows())
	}
	want := int64(10*4*4+10*4) + int64(20*4*4+20*4)
	if m.TotalBytes() != want {
		t.Fatalf("TotalBytes = %d, want %d", m.TotalBytes(), want)
	}
	if m.Table(1) == nil || m.Table(1).Rows != 20 {
		t.Fatal("Table(1) lookup wrong")
	}
	if m.Table(99) != nil {
		t.Fatal("Table(99) should be nil")
	}
}

func TestQuickAdagradAccumMonotone(t *testing.T) {
	// Property: the AdaGrad accumulator never decreases.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(0, 4, 4, 0.01, rng)
		prev := float32(0)
		g := make(tensor.Vector, 4)
		for step := 0; step < 20; step++ {
			for i := range g {
				g[i] = rng.Float32()*2 - 1
			}
			tab.ApplyGrad(2, g, 0.05)
			if tab.Accum[2] < prev {
				return false
			}
			prev = tab.Accum[2]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApplyGrad(b *testing.B) {
	tab := NewTable(0, 1<<16, 64, 0.01, rand.New(rand.NewSource(1)))
	g := make(tensor.Vector, 64)
	for i := range g {
		g[i] = 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.ApplyGrad(i&(1<<16-1), g, 0.05)
	}
}

func BenchmarkTrackerMarkBatch(b *testing.B) {
	tr := NewTracker(makeTables(1, 1<<20, 4))
	idxs := make([]int, 64)
	for i := range idxs {
		idxs[i] = i * 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.MarkBatch(0, idxs)
	}
}
