// Package embedding implements the sparse half of the recommendation model:
// embedding tables, their per-row optimizer state, sharding across trainer
// nodes, and the modified-row tracker that powers incremental checkpointing
// (§2.1, §5.1 of the Check-N-Run paper).
//
// Embedding tables dominate the model footprint (> 99% in the paper). Each
// table maps a categorical ID to a dense fp32 vector; a training sample
// looks up one or more rows per table, and only those rows are updated in
// the backward pass. That access sparsity is the property incremental
// checkpointing exploits.
package embedding

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Table is one embedding table: Rows vectors of dimension Dim, plus the
// row-wise AdaGrad accumulator that production recommendation trainers
// carry for sparse parameters. The optimizer state is part of the trainer
// state and therefore part of every checkpoint (§4.1).
type Table struct {
	ID   int
	Rows int
	Dim  int

	// Weights holds the embedding vectors, row-major.
	Weights *tensor.Matrix
	// Accum is the per-row AdaGrad squared-gradient accumulator.
	Accum []float32
}

// NewTable allocates a table and initializes the weights uniformly in
// [-scale, scale), the usual init for embedding vectors.
func NewTable(id, rows, dim int, scale float32, rng *rand.Rand) *Table {
	if rows <= 0 || dim <= 0 {
		panic(fmt.Sprintf("embedding: NewTable(%d, %d) invalid dims", rows, dim))
	}
	t := &Table{
		ID:      id,
		Rows:    rows,
		Dim:     dim,
		Weights: tensor.NewMatrix(rows, dim),
		Accum:   make([]float32, rows),
	}
	t.Weights.FillUniform(rng, scale)
	return t
}

// Lookup returns a view of row idx.
func (t *Table) Lookup(idx int) tensor.Vector {
	return t.Weights.Row(idx)
}

// ApplyGrad performs a row-wise AdaGrad update on row idx with gradient g:
//
//	accum += mean(g^2); row -= lr / sqrt(accum + eps) * g
//
// This matches the sparse optimizer used for DLRM embedding tables. It
// returns nothing; the caller is responsible for marking the row modified
// in its tracker.
func (t *Table) ApplyGrad(idx int, g tensor.Vector, lr float32) {
	if len(g) != t.Dim {
		panic(fmt.Sprintf("embedding: ApplyGrad dim %d != %d", len(g), t.Dim))
	}
	var sum float64
	for _, v := range g {
		sum += float64(v) * float64(v)
	}
	t.Accum[idx] += float32(sum / float64(t.Dim))
	step := lr / sqrt32(t.Accum[idx]+1e-8)
	row := t.Weights.Row(idx)
	for i, v := range g {
		row[i] -= step * v
	}
}

// SizeBytes returns the checkpointable byte size of the table: fp32
// weights plus the per-row accumulator.
func (t *Table) SizeBytes() int64 {
	return int64(t.Rows)*int64(t.Dim)*4 + int64(t.Rows)*4
}

// CopyRow copies row idx into dst, which must have length Dim. Used by the
// snapshot path so background processes never alias live training memory.
func (t *Table) CopyRow(idx int, dst tensor.Vector) {
	copy(dst, t.Weights.Row(idx))
}

// Clone deep-copies the table (snapshot of a shard).
func (t *Table) Clone() *Table {
	c := &Table{
		ID:      t.ID,
		Rows:    t.Rows,
		Dim:     t.Dim,
		Weights: t.Weights.Clone(),
		Accum:   append([]float32(nil), t.Accum...),
	}
	return c
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}
