package embedding

import (
	"fmt"
	"sync"

	"repro/internal/bitvec"
)

// Tracker records which embedding rows have been modified since it was last
// reset, one bitmap per table (§5.1.1). In the paper each GPU tracks its
// local shard during the forward pass (almost every row read in the forward
// pass is written in the backward pass), and the tracking work is hidden in
// the AlltoAll communication phase.
//
// Tracker is safe for concurrent marking across tables; marks within one
// table are expected from a single trainer goroutine (the owning shard), as
// in the paper's per-GPU design, but a mutex keeps it safe regardless.
type Tracker struct {
	mu   sync.Mutex
	maps map[int]*bitvec.Bitmap // table ID -> modified-row bitmap
}

// NewTracker returns a tracker covering the given tables.
func NewTracker(tables []*Table) *Tracker {
	m := make(map[int]*bitvec.Bitmap, len(tables))
	for _, t := range tables {
		m[t.ID] = bitvec.New(t.Rows)
	}
	return &Tracker{maps: m}
}

// Mark records that row idx of table tableID was modified.
func (tr *Tracker) Mark(tableID, idx int) {
	tr.mu.Lock()
	bm, ok := tr.maps[tableID]
	if !ok {
		tr.mu.Unlock()
		panic(fmt.Sprintf("embedding: Mark on unknown table %d", tableID))
	}
	bm.Set(idx)
	tr.mu.Unlock()
}

// MarkBatch records a batch of modified rows for one table in a single
// lock acquisition (the common path during training).
func (tr *Tracker) MarkBatch(tableID int, idxs []int) {
	tr.mu.Lock()
	bm, ok := tr.maps[tableID]
	if !ok {
		tr.mu.Unlock()
		panic(fmt.Sprintf("embedding: MarkBatch on unknown table %d", tableID))
	}
	for _, i := range idxs {
		bm.Set(i)
	}
	tr.mu.Unlock()
}

// Snapshot returns an independent copy of every table's bitmap and, if
// reset is true, clears the live bitmaps in the same critical section.
// This is the atomic hand-off at a checkpoint trigger: the returned view
// belongs to the background checkpoint builder while training continues to
// mark into the cleared live bitmaps.
func (tr *Tracker) Snapshot(reset bool) map[int]*bitvec.Bitmap {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[int]*bitvec.Bitmap, len(tr.maps))
	for id, bm := range tr.maps {
		out[id] = bm.Clone()
		if reset {
			bm.Reset()
		}
	}
	return out
}

// ModifiedRows returns the number of currently-marked rows in table tableID.
func (tr *Tracker) ModifiedRows(tableID int) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	bm, ok := tr.maps[tableID]
	if !ok {
		return 0
	}
	return bm.Count()
}

// TotalModified returns the number of marked rows summed over all tables.
func (tr *Tracker) TotalModified() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, bm := range tr.maps {
		n += bm.Count()
	}
	return n
}

// TotalRows returns the number of tracked rows across all tables.
func (tr *Tracker) TotalRows() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, bm := range tr.maps {
		n += bm.Len()
	}
	return n
}

// ModifiedFraction returns TotalModified/TotalRows — the "% of model
// modified" series of Figures 5 and 6.
func (tr *Tracker) ModifiedFraction() float64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	mod, tot := 0, 0
	for _, bm := range tr.maps {
		mod += bm.Count()
		tot += bm.Len()
	}
	if tot == 0 {
		return 0
	}
	return float64(mod) / float64(tot)
}

// Reset clears all bitmaps.
func (tr *Tracker) Reset() {
	tr.mu.Lock()
	for _, bm := range tr.maps {
		bm.Reset()
	}
	tr.mu.Unlock()
}

// FootprintBytes returns the total bitmap footprint, which the paper notes
// is < 0.05% of the model (several MB per GPU).
func (tr *Tracker) FootprintBytes() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, bm := range tr.maps {
		n += bm.SizeBytes()
	}
	return n
}
