// Package experiments regenerates every figure in the Check-N-Run
// paper's motivation and evaluation sections. Each Fig* function builds
// its workload, runs the relevant subsystems, and returns named series
// shaped like the paper's plot, so cmd/benchgen can print them and
// bench_test.go can assert their shapes.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not a 128-GPU cluster), but the comparisons the paper draws — which
// method wins, by roughly what factor, where crossovers fall — hold.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Result is one regenerated figure or table.
type Result struct {
	// ID is the paper artifact, e.g. "fig9".
	ID string
	// Title describes what the artifact shows.
	Title string
	// XLabel / YLabel name the axes.
	XLabel, YLabel string
	// Series are the plotted lines.
	Series []stats.Series
	// Notes carries scalar findings ("P90 = 13.5h") and caveats.
	Notes []string
}

// Render formats the result as an aligned text table, one column per
// series, suitable for terminal output and EXPERIMENTS.md.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	if len(r.Series) > 0 {
		fmt.Fprintf(&b, "%-14s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(&b, "%16s", s.Name)
		}
		b.WriteByte('\n')
		// Rows keyed by the union of X values in order of first series.
		maxLen := 0
		for _, s := range r.Series {
			if len(s.Points) > maxLen {
				maxLen = len(s.Points)
			}
		}
		for i := 0; i < maxLen; i++ {
			var x float64
			for _, s := range r.Series {
				if i < len(s.Points) {
					x = s.Points[i].X
					break
				}
			}
			fmt.Fprintf(&b, "%-14.4g", x)
			for _, s := range r.Series {
				if i < len(s.Points) {
					fmt.Fprintf(&b, "%16.6g", s.Points[i].Y)
				} else {
					fmt.Fprintf(&b, "%16s", "-")
				}
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "(y: %s)\n", r.YLabel)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
