package experiments

import (
	"compress/flate"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/baseline"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// IncrementalConfig sizes the Figure 15/16/17 runs.
type IncrementalConfig struct {
	Intervals          int
	BatchesPerInterval int
	BatchSize          int
	RowsPerTable       int
	// Dim is the embedding dimension; the paper's tables use 64, where
	// quantization ratios are highest. Zero means 16 (fast).
	Dim  int
	Seed int64
}

// DefaultIncremental produces paper-like per-interval modified fractions
// (~25% per 30-minute-equivalent interval).
func DefaultIncremental() IncrementalConfig {
	return IncrementalConfig{
		Intervals:          12,
		BatchesPerInterval: 4,
		BatchSize:          128,
		RowsPerTable:       2048,
		Dim:                64,
		Seed:               11,
	}
}

// intervalResult carries the measurements of one intervalRun.
type intervalResult struct {
	// BWFrac is the per-interval stored row fraction (% of model rows),
	// the Figure 15 bandwidth proxy.
	BWFrac []float64
	// CapFrac is per-interval occupied capacity as % of this run's own
	// full checkpoint payload (Figure 16's normalization).
	CapFrac []float64
	// CapBytes is per-interval occupied capacity in absolute bytes.
	CapBytes []float64
	// BytesWritten is the cumulative bytes uploaded over the run.
	BytesWritten int64
}

func intervalRun(cfg IncrementalConfig, policy ckpt.PolicyKind, qp quant.Params) (*intervalResult, error) {
	dim := cfg.Dim
	if dim <= 0 {
		dim = 16
	}
	mcfg := model.DefaultConfig()
	mcfg.Seed = cfg.Seed
	mcfg.EmbedDim = dim
	mcfg.Tables = []embedding.TableSpec{
		{Rows: cfg.RowsPerTable, Dim: dim}, {Rows: cfg.RowsPerTable, Dim: dim},
	}
	m, err := model.New(mcfg, 1)
	if err != nil {
		return nil, err
	}
	spec := data.DefaultSpec()
	spec.Seed = cfg.Seed
	spec.TableRows = []int{cfg.RowsPerTable, cfg.RowsPerTable}
	spec.ZipfS = 1.35
	spec.TailFraction = 0.25
	gen, err := data.NewGenerator(spec)
	if err != nil {
		return nil, err
	}
	store := objstore.NewMemStore(objstore.MemConfig{})
	eng, err := ckpt.NewEngine(ckpt.Config{
		JobID:  "incr",
		Store:  store,
		Policy: policy,
		Quant:  qp,
		// KeepLast 1 retains exactly what recovery needs (GC preserves
		// chain dependencies), so store capacity equals the paper's
		// "required storage capacity".
		KeepLast: 1,
	})
	if err != nil {
		return nil, err
	}

	res := &intervalResult{}
	var fullPayload int64
	totalRows := m.Sparse.TotalRows()
	ctx := context.Background()
	for iv := 0; iv < cfg.Intervals; iv++ {
		for b := 0; b < cfg.BatchesPerInterval; b++ {
			m.TrainBatch(gen.NextBatch(cfg.BatchSize))
		}
		snap, err := ckpt.TakeSnapshot(m, uint64((iv+1)*cfg.BatchesPerInterval),
			data.ReaderState{NextSample: gen.Pos(), BatchSize: cfg.BatchSize})
		if err != nil {
			return nil, err
		}
		man, err := eng.Write(ctx, snap)
		if err != nil {
			return nil, err
		}
		stored := 0
		for _, tm := range man.Tables {
			stored += tm.StoredRows
		}
		res.BWFrac = append(res.BWFrac, float64(stored)/float64(totalRows)*100)
		if iv == 0 {
			fullPayload = man.PayloadBytes
		}
		u := store.Usage()
		res.CapFrac = append(res.CapFrac, float64(u.CapacityBytes)/float64(fullPayload)*100)
		res.CapBytes = append(res.CapBytes, float64(u.CapacityBytes))
	}
	res.BytesWritten = store.Usage().BytesWritten
	return res, nil
}

// Fig15IncrementalBandwidth regenerates Figure 15: the per-interval
// checkpoint size (bandwidth proxy, % of model) under the three
// incremental policies.
func Fig15IncrementalBandwidth(cfg IncrementalConfig) (*Result, error) {
	r := &Result{
		ID:     "fig15",
		Title:  "Incremental checkpoint size per interval (write bandwidth proxy)",
		XLabel: "interval",
		YLabel: "% of model size",
	}
	none := quant.Params{Method: quant.MethodNone}
	for _, pc := range []struct {
		name   string
		policy ckpt.PolicyKind
	}{
		{"one-shot", ckpt.PolicyOneShot},
		{"intermittent", ckpt.PolicyIntermittent},
		{"consecutive", ckpt.PolicyConsecutive},
	} {
		res, err := intervalRun(cfg, pc.policy, none)
		if err != nil {
			return nil, fmt.Errorf("fig15 %s: %w", pc.name, err)
		}
		var pts []stats.Point
		for i, v := range res.BWFrac {
			pts = append(pts, stats.Point{X: float64(i), Y: v})
		}
		r.Series = append(r.Series, stats.Series{Name: pc.name, Points: pts})
	}
	r.Notes = append(r.Notes,
		"one-shot grows monotonically; consecutive stays flat; intermittent resets to 100% at its new baseline")
	return r, nil
}

// Fig16StorageCapacity regenerates Figure 16: required storage capacity
// per interval (relative to one full checkpoint) under the three policies.
func Fig16StorageCapacity(cfg IncrementalConfig) (*Result, error) {
	r := &Result{
		ID:     "fig16",
		Title:  "Required storage capacity per interval",
		XLabel: "interval",
		YLabel: "% of one full checkpoint",
	}
	none := quant.Params{Method: quant.MethodNone}
	for _, pc := range []struct {
		name   string
		policy ckpt.PolicyKind
	}{
		{"one-shot", ckpt.PolicyOneShot},
		{"intermittent", ckpt.PolicyIntermittent},
		{"consecutive", ckpt.PolicyConsecutive},
	} {
		res, err := intervalRun(cfg, pc.policy, none)
		if err != nil {
			return nil, fmt.Errorf("fig16 %s: %w", pc.name, err)
		}
		var pts []stats.Point
		for i, v := range res.CapFrac {
			pts = append(pts, stats.Point{X: float64(i), Y: v})
		}
		r.Series = append(r.Series, stats.Series{Name: pc.name, Points: pts})
	}
	r.Notes = append(r.Notes,
		"consecutive capacity grows without bound (all links retained); intermittent resets at each new baseline")
	return r, nil
}

// Fig17Bucket is one restart bucket of Figure 17.
type Fig17Bucket struct {
	Label              string
	Bits               int
	BandwidthReduction float64
	CapacityReduction  float64
}

// Fig17OverallReduction regenerates Figure 17: overall write-bandwidth and
// storage-capacity reduction of Check-N-Run (intermittent policy + dynamic
// bit-width) over the full-fp32-every-interval baseline, bucketed by the
// number of expected restores L.
func Fig17OverallReduction(cfg IncrementalConfig) (*Result, []Fig17Bucket, error) {
	base, err := intervalRun(cfg, ckpt.PolicyFull, quant.Params{Method: quant.MethodNone})
	if err != nil {
		return nil, nil, err
	}
	baseAvgBW := float64(base.BytesWritten) / float64(cfg.Intervals)
	baseMaxCap := stats.Max(base.CapBytes)

	buckets := []struct {
		label    string
		restores float64
	}{
		{"L<=1", 1}, {"1<L<=3", 3}, {"3<L<20", 10}, {"20<=L", 30},
	}
	r := &Result{
		ID:     "fig17",
		Title:  "Overall bandwidth and capacity reduction by restart bucket",
		XLabel: "bucket index",
		YLabel: "reduction factor (x)",
	}
	var bwPts, capPts []stats.Point
	var out []Fig17Bucket
	for i, b := range buckets {
		bits := core.SelectBitWidth(b.restores)
		qp, err := core.ParamsForBits(bits)
		if err != nil {
			return nil, nil, err
		}
		res, err := intervalRun(cfg, ckpt.PolicyIntermittent, qp)
		if err != nil {
			return nil, nil, fmt.Errorf("fig17 %s: %w", b.label, err)
		}
		// Direct byte-level accounting from the store.
		bwRed := baseAvgBW / (float64(res.BytesWritten) / float64(cfg.Intervals))
		capRed := baseMaxCap / stats.Max(res.CapBytes)
		out = append(out, Fig17Bucket{Label: b.label, Bits: bits, BandwidthReduction: bwRed, CapacityReduction: capRed})
		bwPts = append(bwPts, stats.Point{X: float64(i), Y: bwRed})
		capPts = append(capPts, stats.Point{X: float64(i), Y: capRed})
		r.Notes = append(r.Notes, fmt.Sprintf("%s: %d-bit, bandwidth %.1fx, capacity %.1fx",
			b.label, bits, bwRed, capRed))
	}
	r.Series = []stats.Series{
		{Name: "avg bandwidth", Points: bwPts},
		{Name: "storage capacity", Points: capPts},
	}
	r.Notes = append(r.Notes, "paper: 17x/8x at L<=1 down to 6x/2.5x at 20<=L")
	return r, out, nil
}

// ZstdBaselineResult reproduces the §1 claim: general-purpose compression
// reduces trained fp32 checkpoints by only a few percent.
func ZstdBaselineResult(rowsPerTable int, seed int64) (*Result, error) {
	cv, err := TrainedCheckpoint(rowsPerTable, 16, 40, 64, seed)
	if err != nil {
		return nil, err
	}
	// Serialize as a raw fp32 stream.
	blob := make([]byte, 0, len(cv.Vectors)*cv.Dim*4)
	var b4 [4]byte
	for _, v := range cv.Vectors {
		for _, x := range v {
			binary.LittleEndian.PutUint32(b4[:], math.Float32bits(x))
			blob = append(blob, b4[:]...)
		}
	}
	ratio, err := baseline.CompressRatio(blob, flate.BestCompression)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "zstd",
		Title:  "General-purpose compression on a trained fp32 checkpoint",
		XLabel: "",
		YLabel: "",
		Notes: []string{
			fmt.Sprintf("DEFLATE (best) reduction: %.1f%% (paper: <= 7%% with Zstandard)", (1-ratio)*100),
		},
	}, nil
}

// SnapshotStallResult reproduces the §6.1 overhead numbers: a 7-second
// snapshot stall every 30 minutes costs < 0.4% of training throughput,
// and tracking adds ~1% per iteration.
func SnapshotStallResult() *Result {
	tm := simclock.DefaultThroughput()
	stall30 := tm.StallFraction(30 * time.Minute)
	var pts []stats.Point
	for _, min := range []int{5, 10, 15, 30, 60, 120} {
		pts = append(pts, stats.Point{
			X: float64(min),
			Y: tm.StallFraction(time.Duration(min)*time.Minute) * 100,
		})
	}
	return &Result{
		ID:     "stall",
		Title:  "Snapshot stall overhead vs checkpoint interval",
		XLabel: "interval (minutes)",
		YLabel: "training time lost (%)",
		Series: []stats.Series{{Name: "stall overhead", Points: pts}},
		Notes: []string{
			fmt.Sprintf("30-minute interval: %.3f%% (paper: < 0.4%%)", stall30*100),
			fmt.Sprintf("tracking overhead: %.1f%% per iteration (paper: ~1%%, hidden in AlltoAll)", tm.TrackingOverhead*100),
		},
	}
}
