package experiments

import (
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/stats"
)

// CheckpointVectors trains a small DLRM for the given number of batches
// and returns its embedding vectors — "one representative checkpoint
// created after training" (§5.2), the input to Figures 9-13.
type CheckpointVectors struct {
	Vectors [][]float32
	Dim     int
}

// TrainedCheckpoint produces checkpoint vectors. rowsPerTable controls
// scale; batches controls how trained the distribution looks.
func TrainedCheckpoint(rowsPerTable, dim, batches, batchSize int, seed int64) (*CheckpointVectors, error) {
	mcfg := model.DefaultConfig()
	mcfg.Seed = seed
	mcfg.EmbedDim = dim
	mcfg.Tables = []embedding.TableSpec{
		{Rows: rowsPerTable, Dim: dim}, {Rows: rowsPerTable, Dim: dim},
	}
	m, err := model.New(mcfg, 1)
	if err != nil {
		return nil, err
	}
	spec := data.DefaultSpec()
	spec.Seed = seed
	spec.TableRows = []int{rowsPerTable, rowsPerTable}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < batches; i++ {
		m.TrainBatch(gen.NextBatch(batchSize))
	}
	cv := &CheckpointVectors{Dim: dim}
	for _, tab := range m.Sparse.Tables {
		for r := 0; r < tab.Rows; r++ {
			v := make([]float32, dim)
			tab.CopyRow(r, v)
			cv.Vectors = append(cv.Vectors, v)
		}
	}
	return cv, nil
}

// DefaultCheckpoint returns the reference checkpoint used by the
// quantization figures.
func DefaultCheckpoint() (*CheckpointVectors, error) {
	return TrainedCheckpoint(2048, 16, 40, 64, 7)
}

// Fig9QuantError regenerates Figure 9: mean ℓ2 error of the four
// quantization approaches at bit-widths 2, 3, 4 and 8.
func Fig9QuantError(cv *CheckpointVectors) (*Result, error) {
	bits := []int{2, 3, 4, 8}
	methods := []struct {
		name   string
		params func(b int) quant.Params
	}{
		{"symmetric", func(b int) quant.Params {
			return quant.Params{Method: quant.MethodSymmetric, Bits: b}
		}},
		{"asymmetric", func(b int) quant.Params {
			return quant.Params{Method: quant.MethodAsymmetric, Bits: b}
		}},
		{"k-means", func(b int) quant.Params {
			return quant.Params{Method: quant.MethodKMeans, Bits: b, KMeansIters: 15}
		}},
		{"adaptive", func(b int) quant.Params {
			bins := 25
			if b >= 4 {
				bins = 45
			}
			return quant.Params{Method: quant.MethodAdaptive, Bits: b, NumBins: bins, Ratio: 1}
		}},
	}
	r := &Result{
		ID:     "fig9",
		Title:  "Mean L2 error of quantized checkpoint by approach and bit-width",
		XLabel: "bit-width",
		YLabel: "mean L2 error",
	}
	for _, m := range methods {
		var pts []stats.Point
		for _, b := range bits {
			e, err := quant.MeanL2Error(cv.Vectors, m.params(b))
			if err != nil {
				return nil, fmt.Errorf("fig9 %s/%d: %w", m.name, b, err)
			}
			pts = append(pts, stats.Point{X: float64(b), Y: e})
		}
		r.Series = append(r.Series, stats.Series{Name: m.name, Points: pts})
	}
	r.Notes = append(r.Notes,
		"asymmetric < symmetric at every bit-width (embedding values are not symmetric)",
		"adaptive ~ k-means <= asymmetric at low bit-widths")
	return r, nil
}

// Fig10AdaptiveBins regenerates Figure 10: the mean-ℓ2 improvement of
// adaptive asymmetric over naive asymmetric as a function of num_bins,
// for 2/3/4-bit quantization.
func Fig10AdaptiveBins(cv *CheckpointVectors, binsList []int) (*Result, error) {
	if len(binsList) == 0 {
		binsList = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
	r := &Result{
		ID:     "fig10",
		Title:  "Adaptive-vs-naive asymmetric L2 improvement vs number of bins",
		XLabel: "bins",
		YLabel: "L2 error improvement (fraction)",
	}
	for _, bits := range []int{2, 3, 4} {
		var pts []stats.Point
		for _, bins := range binsList {
			imp, err := quant.ImprovementOverNaive(cv.Vectors, bits, bins, 1.0)
			if err != nil {
				return nil, err
			}
			pts = append(pts, stats.Point{X: float64(bins), Y: imp})
		}
		r.Series = append(r.Series, stats.Series{Name: fmt.Sprintf("%d bits", bits), Points: pts})
	}
	r.Notes = append(r.Notes, "improvement grows then tapers with bins; larger at lower bit-widths")
	return r, nil
}

// Fig11AdaptiveRatio regenerates Figure 11: improvement as a function of
// the greedy search's range ratio, using the optimal bins from Figure 10
// (25 bins for 2-3 bits, 45 for 4 bits).
func Fig11AdaptiveRatio(cv *CheckpointVectors, ratios []float64) (*Result, error) {
	if len(ratios) == 0 {
		ratios = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	r := &Result{
		ID:     "fig11",
		Title:  "Adaptive L2 improvement vs search range ratio (optimal bins)",
		XLabel: "ratio",
		YLabel: "L2 error improvement (fraction)",
	}
	for _, bits := range []int{2, 3, 4} {
		bins := 25
		if bits == 4 {
			bins = 45
		}
		var pts []stats.Point
		for _, ratio := range ratios {
			imp, err := quant.ImprovementOverNaive(cv.Vectors, bits, bins, ratio)
			if err != nil {
				return nil, err
			}
			pts = append(pts, stats.Point{X: ratio, Y: imp})
		}
		r.Series = append(r.Series, stats.Series{Name: fmt.Sprintf("%d bits", bits), Points: pts})
	}
	r.Notes = append(r.Notes, "lower bit-widths are more sensitive to ratio and gain more")
	return r, nil
}

// quantizeAll measures the wall time to quantize every vector.
func quantizeAll(cv *CheckpointVectors, p quant.Params) (time.Duration, error) {
	start := time.Now()
	for _, v := range cv.Vectors {
		if _, err := quant.Quantize(v, p); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// Fig12QuantLatencyBins regenerates Figure 12: total checkpoint
// quantization latency for adaptive asymmetric (4-bit, ratio 1.0) as a
// function of bins. The bins=0 point is naive asymmetric — the paper's
// "at most 126 seconds" comparison (§6.1).
func Fig12QuantLatencyBins(cv *CheckpointVectors, binsList []int) (*Result, error) {
	if len(binsList) == 0 {
		binsList = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
	var pts []stats.Point
	naive, err := quantizeAll(cv, quant.Params{Method: quant.MethodAsymmetric, Bits: 4})
	if err != nil {
		return nil, err
	}
	pts = append(pts, stats.Point{X: 0, Y: naive.Seconds()})
	for _, bins := range binsList {
		d, err := quantizeAll(cv, quant.Params{Method: quant.MethodAdaptive, Bits: 4, NumBins: bins, Ratio: 1})
		if err != nil {
			return nil, err
		}
		pts = append(pts, stats.Point{X: float64(bins), Y: d.Seconds()})
	}
	last := pts[len(pts)-1].Y
	return &Result{
		ID:     "fig12",
		Title:  "Checkpoint quantization latency vs bins (adaptive asymmetric, ratio 1.0)",
		XLabel: "bins (0 = naive asymmetric)",
		YLabel: "seconds",
		Series: []stats.Series{{Name: "latency", Points: pts}},
		Notes: []string{
			fmt.Sprintf("naive asymmetric: %.3gs; adaptive at max bins: %.3gs (%.1fx)",
				naive.Seconds(), last, last/naive.Seconds()),
			"pipelined chunk upload hides this latency behind storage writes (§6.1)",
		},
	}, nil
}

// Fig13QuantLatencyRatio regenerates Figure 13: quantization latency as a
// function of ratio, at 25 and 45 bins.
func Fig13QuantLatencyRatio(cv *CheckpointVectors, ratios []float64) (*Result, error) {
	if len(ratios) == 0 {
		ratios = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	r := &Result{
		ID:     "fig13",
		Title:  "Checkpoint quantization latency vs ratio (25 and 45 bins)",
		XLabel: "ratio",
		YLabel: "seconds",
	}
	for _, bins := range []int{25, 45} {
		var pts []stats.Point
		for _, ratio := range ratios {
			d, err := quantizeAll(cv, quant.Params{Method: quant.MethodAdaptive, Bits: 4, NumBins: bins, Ratio: ratio})
			if err != nil {
				return nil, err
			}
			pts = append(pts, stats.Point{X: ratio, Y: d.Seconds()})
		}
		r.Series = append(r.Series, stats.Series{Name: fmt.Sprintf("%d bins", bins), Points: pts})
	}
	r.Notes = append(r.Notes, "latency grows with ratio: a wider search range means more greedy iterations")
	return r, nil
}
