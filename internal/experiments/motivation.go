package experiments

import (
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/failure"
	"repro/internal/stats"
)

// Fig3Config sizes the failure-CDF experiment.
type Fig3Config struct {
	// Jobs is the number of failed jobs sampled (the paper observes one
	// month over 21 clusters).
	Jobs int
	Seed int64
}

// DefaultFig3 mirrors a month of cluster-scale failures.
func DefaultFig3() Fig3Config { return Fig3Config{Jobs: 5000, Seed: 3} }

// Fig3FailureCDF regenerates Figure 3: the CDF of training-job execution
// time before failure, with sub-5-minute jobs filtered as setup errors.
func Fig3FailureCDF(cfg Fig3Config) *Result {
	samples := failure.CollectTTF(failure.PaperWeibull(), cfg.Jobs, 5*time.Minute, cfg.Seed)
	cdf := failure.CDFHours(samples)
	r := &Result{
		ID:     "fig3",
		Title:  "Training job failure CDF (time-to-failure)",
		XLabel: "hours",
		YLabel: "fraction of failed jobs",
		Series: []stats.Series{{Name: "CDF", Points: cdf.Points(24)}},
	}
	p90 := cdf.Quantile(0.90)
	p99 := cdf.Quantile(0.99)
	r.Notes = append(r.Notes,
		fmt.Sprintf("P90 = %.1f h (paper: longest 10%% of failed jobs ran >= 13.5 h)", p90),
		fmt.Sprintf("P99 = %.1f h (paper: top 1%% ran >= 53.9 h)", p99),
	)
	return r
}

// Fig4ModelGrowth regenerates Figure 4: normalized recommendation-model
// size over two years. The paper redacts absolute sizes; the series here
// reproduces the reported shape (over 3x growth in under two years) from
// a quarterly model-revision schedule where embedding tables grow with
// feature additions.
func Fig4ModelGrowth() *Result {
	// Quarterly revisions: rows grow ~20% per quarter and a new feature
	// (table) lands every other quarter — typical production cadence.
	baseRows := 1 << 20
	baseTables := 24
	points := make([]stats.Point, 0, 9)
	var first float64
	for q := 0; q <= 8; q++ {
		rows := float64(baseRows)
		growth := 1.0
		for i := 0; i < q; i++ {
			growth *= 1.18
		}
		tables := baseTables + q/2*2
		size := rows * growth * float64(tables)
		if q == 0 {
			first = size
		}
		points = append(points, stats.Point{X: float64(q) * 0.25, Y: size / first})
	}
	final := points[len(points)-1].Y
	return &Result{
		ID:     "fig4",
		Title:  "Normalized model size over 2 years",
		XLabel: "years",
		YLabel: "normalized size",
		Series: []stats.Series{{Name: "model size", Points: points}},
		Notes: []string{
			fmt.Sprintf("growth over 2 years: %.1fx (paper: >3x)", final),
		},
	}
}

// Fig5Config sizes the modified-fraction-vs-samples experiment.
type Fig5Config struct {
	// Samples is the total stream length (stands in for the paper's 11
	// billion records at laptop scale).
	Samples int
	// Points is the number of measurement points per curve.
	Points int
	Spec   data.Spec
}

// DefaultFig5 uses a skewed workload tuned so the full-stream curve
// saturates near the paper's value (52% of the model touched after the
// whole stream).
func DefaultFig5() Fig5Config {
	spec := data.DefaultSpec()
	spec.TableRows = []int{16384, 16384, 32768, 32768}
	spec.ZipfS = 1.45
	spec.TailFraction = 0.12
	return Fig5Config{Samples: 120_000, Points: 12, Spec: spec}
}

// Fig5ModifiedFraction regenerates Figure 5: the fraction of the model
// modified as a function of training samples, measured from three
// different starting points (0, ~4/11 and ~8/11 of the stream). Only
// access draws matter (every row read in the forward pass is written in
// the backward pass), so the experiment replays the sample stream against
// trackers without running the dense math.
func Fig5ModifiedFraction(cfg Fig5Config) (*Result, error) {
	gen, err := data.NewGenerator(cfg.Spec)
	if err != nil {
		return nil, err
	}
	totalRows := 0
	for _, r := range cfg.Spec.TableRows {
		totalRows += r
	}
	starts := []int{0, cfg.Samples * 4 / 11, cfg.Samples * 8 / 11}
	type curve struct {
		start   int
		touched []map[int]bool // per table
		points  []stats.Point
	}
	curves := make([]*curve, len(starts))
	for i, s := range starts {
		c := &curve{start: s, touched: make([]map[int]bool, len(cfg.Spec.TableRows))}
		for t := range c.touched {
			c.touched[t] = make(map[int]bool)
		}
		curves[i] = c
	}
	every := cfg.Samples / cfg.Points
	if every == 0 {
		every = 1
	}
	for i := 0; i < cfg.Samples; i++ {
		s := gen.Next()
		for _, c := range curves {
			if i < c.start {
				continue
			}
			for t, id := range s.Sparse {
				c.touched[t][id] = true
			}
		}
		if (i+1)%every == 0 {
			for _, c := range curves {
				if i < c.start {
					continue
				}
				n := 0
				for _, m := range c.touched {
					n += len(m)
				}
				c.points = append(c.points, stats.Point{
					X: float64(i + 1),
					Y: float64(n) / float64(totalRows) * 100,
				})
			}
		}
	}
	r := &Result{
		ID:     "fig5",
		Title:  "Fraction of model modified vs training samples (3 starting points)",
		XLabel: "samples",
		YLabel: "% of model size",
	}
	for i, c := range curves {
		r.Series = append(r.Series, stats.Series{
			Name:   fmt.Sprintf("start@%d", starts[i]),
			Points: c.points,
		})
	}
	final := curves[0].points[len(curves[0].points)-1].Y
	r.Notes = append(r.Notes,
		fmt.Sprintf("full-stream curve reaches %.1f%% (paper: 52%% after 11B records)", final),
		"all three curves grow with similar slope regardless of starting point")
	return r, nil
}

// Fig6Config sizes the per-interval modified-fraction experiment.
type Fig6Config struct {
	// SamplesPerMinute scales virtual minutes to sample counts.
	SamplesPerMinute int
	// TotalMinutes is the observation span (paper: ~360).
	TotalMinutes int
	// WindowsMinutes are the interval lengths (paper: 10/20/30/60).
	WindowsMinutes []int
	Spec           data.Spec
}

// DefaultFig6 mirrors the paper's windows over a 360-minute span, with a
// workload density tuned so 30-minute windows modify ~26% of the model
// as in the paper.
func DefaultFig6() Fig6Config {
	spec := data.DefaultSpec()
	spec.TableRows = []int{8192, 8192, 16384, 16384}
	spec.ZipfS = 1.35
	spec.TailFraction = 0.25
	return Fig6Config{
		SamplesPerMinute: 400,
		TotalMinutes:     360,
		WindowsMinutes:   []int{10, 20, 30, 60},
		Spec:             spec,
	}
}

// Fig6IntervalModified regenerates Figure 6: the fraction of the model
// modified during fixed-length windows. For a given window length the
// fraction stays nearly constant across the run (the property that makes
// incremental checkpoint sizes predictable).
func Fig6IntervalModified(cfg Fig6Config) (*Result, error) {
	gen, err := data.NewGenerator(cfg.Spec)
	if err != nil {
		return nil, err
	}
	totalRows := 0
	for _, r := range cfg.Spec.TableRows {
		totalRows += r
	}
	totalSamples := cfg.SamplesPerMinute * cfg.TotalMinutes
	// Pre-draw the access stream once.
	type access struct{ table, id int }
	accesses := make([][]access, totalSamples)
	for i := 0; i < totalSamples; i++ {
		s := gen.Next()
		row := make([]access, len(s.Sparse))
		for t, id := range s.Sparse {
			row[t] = access{table: t, id: id}
		}
		accesses[i] = row
	}
	r := &Result{
		ID:     "fig6",
		Title:  "Fraction of model modified per time window",
		XLabel: "window end (minutes)",
		YLabel: "% of model size",
	}
	for _, w := range cfg.WindowsMinutes {
		winSamples := w * cfg.SamplesPerMinute
		var pts []stats.Point
		for start := 0; start+winSamples <= totalSamples; start += winSamples {
			touched := make(map[[2]int]bool)
			for i := start; i < start+winSamples; i++ {
				for _, a := range accesses[i] {
					touched[[2]int{a.table, a.id}] = true
				}
			}
			endMin := float64(start+winSamples) / float64(cfg.SamplesPerMinute)
			pts = append(pts, stats.Point{X: endMin, Y: float64(len(touched)) / float64(totalRows) * 100})
		}
		r.Series = append(r.Series, stats.Series{Name: fmt.Sprintf("%d min", w), Points: pts})
	}
	// Note the 30-minute mean, the paper's headline (~26%).
	for _, s := range r.Series {
		if s.Name == "30 min" {
			var ys []float64
			for _, p := range s.Points {
				ys = append(ys, p.Y)
			}
			r.Notes = append(r.Notes, fmt.Sprintf(
				"30-minute windows modify %.1f%% ± %.1f%% of the model (paper: ~26%%, near-constant)",
				stats.Mean(ys), stats.Stddev(ys)))
		}
	}
	return r, nil
}
