package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// small* configs keep unit tests fast; benchgen uses the defaults.

func smallFig5() Fig5Config {
	cfg := DefaultFig5()
	cfg.Samples = 20_000
	cfg.Points = 8
	return cfg
}

func smallFig6() Fig6Config {
	cfg := DefaultFig6()
	cfg.SamplesPerMinute = 50
	cfg.TotalMinutes = 240
	return cfg
}

func smallCheckpoint(t *testing.T) *CheckpointVectors {
	t.Helper()
	cv, err := TrainedCheckpoint(512, 16, 15, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	return cv
}

func smallIncremental() IncrementalConfig {
	cfg := DefaultIncremental()
	cfg.Intervals = 8
	cfg.BatchesPerInterval = 3
	cfg.BatchSize = 96
	cfg.RowsPerTable = 1024
	cfg.Dim = 16
	return cfg
}

func smallFig14() Fig14Config {
	cfg := DefaultFig14()
	cfg.TotalBatches = 60
	cfg.CheckpointEvery = 6
	cfg.EvalEvery = 15
	cfg.EvalSamples = 128
	cfg.RowsPerTable = 256
	cfg.Restores = map[int][]int{2: {1, 3}, 3: {2}, 4: {10}}
	return cfg
}

func ys(s stats.Series) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

func TestFig3Shape(t *testing.T) {
	r := Fig3FailureCDF(Fig3Config{Jobs: 3000, Seed: 1})
	if len(r.Series) != 1 {
		t.Fatal("want one CDF series")
	}
	pts := r.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF not monotone")
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("CDF should end at 1, got %v", pts[len(pts)-1].Y)
	}
	if len(r.Notes) < 2 {
		t.Fatal("missing quantile notes")
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4ModelGrowth()
	pts := r.Series[0].Points
	if pts[0].Y != 1 {
		t.Fatalf("normalized start = %v", pts[0].Y)
	}
	final := pts[len(pts)-1].Y
	if final < 3 {
		t.Fatalf("2-year growth = %vx, paper reports > 3x", final)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("model size should not shrink")
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5ModifiedFraction(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("want 3 curves, got %d", len(r.Series))
	}
	// Each curve grows monotonically with diminishing returns.
	full := r.Series[0].Points
	for i := 1; i < len(full); i++ {
		if full[i].Y < full[i-1].Y {
			t.Fatal("modified fraction must be monotone")
		}
	}
	// Concavity (loose): first-half growth >= second-half growth.
	mid := len(full) / 2
	firstHalf := full[mid].Y - full[0].Y
	secondHalf := full[len(full)-1].Y - full[mid].Y
	if secondHalf > firstHalf*1.1 {
		t.Fatalf("curve should saturate: growth %v then %v", firstHalf, secondHalf)
	}
	// Final fraction far below 100% (the paper's core observation).
	if final := full[len(full)-1].Y; final >= 90 || final <= 5 {
		t.Fatalf("final modified fraction = %v%%, want a strict subset of the model", final)
	}
	// Later-start curves end lower (fewer samples observed).
	last := func(s stats.Series) float64 { return s.Points[len(s.Points)-1].Y }
	if !(last(r.Series[0]) >= last(r.Series[1]) && last(r.Series[1]) >= last(r.Series[2])) {
		t.Fatalf("curve ordering wrong: %v %v %v", last(r.Series[0]), last(r.Series[1]), last(r.Series[2]))
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6IntervalModified(smallFig6())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("want 4 window lengths, got %d", len(r.Series))
	}
	// For each window length, fraction is near-constant across windows.
	for _, s := range r.Series {
		v := ys(s)
		if len(v) < 2 {
			t.Fatalf("series %s too short", s.Name)
		}
		if stats.Stddev(v) > stats.Mean(v)*0.25 {
			t.Fatalf("series %s not stable: mean %v stddev %v", s.Name, stats.Mean(v), stats.Stddev(v))
		}
	}
	// Longer windows modify more.
	m10 := stats.Mean(ys(r.Series[0]))
	m60 := stats.Mean(ys(r.Series[3]))
	if m60 <= m10 {
		t.Fatalf("60-min windows (%v) should modify more than 10-min (%v)", m60, m10)
	}
}

func TestFig9Shape(t *testing.T) {
	cv := smallCheckpoint(t)
	r, err := Fig9QuantError(cv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("want 4 methods, got %d", len(r.Series))
	}
	byName := map[string][]float64{}
	for _, s := range r.Series {
		byName[s.Name] = ys(s)
		// Error decreases with bits for every method.
		v := ys(s)
		for i := 1; i < len(v); i++ {
			if v[i] > v[i-1]*1.05 {
				t.Fatalf("%s: error should fall with bits: %v", s.Name, v)
			}
		}
	}
	// Asymmetric beats symmetric everywhere.
	for i := range byName["symmetric"] {
		if byName["asymmetric"][i] >= byName["symmetric"][i] {
			t.Fatalf("asymmetric should beat symmetric at index %d", i)
		}
	}
	// Adaptive at or below asymmetric for low bits (index 0..2 = 2,3,4).
	for i := 0; i < 3; i++ {
		if byName["adaptive"][i] > byName["asymmetric"][i]*1.001 {
			t.Fatalf("adaptive should not lose to asymmetric at %d bits", []int{2, 3, 4}[i])
		}
	}
}

func TestFig10Shape(t *testing.T) {
	cv := smallCheckpoint(t)
	r, err := Fig10AdaptiveBins(cv, []int{5, 15, 25, 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatal("want 3 bit-widths")
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Y < -0.01 {
				t.Fatalf("%s: adaptive worse than naive at bins=%v: %v", s.Name, p.X, p.Y)
			}
		}
	}
	// 2-bit improvement exceeds 4-bit improvement at max bins.
	imp2 := r.Series[0].Points[len(r.Series[0].Points)-1].Y
	imp4 := r.Series[2].Points[len(r.Series[2].Points)-1].Y
	if imp2 <= imp4 {
		t.Fatalf("2-bit improvement %v should exceed 4-bit %v", imp2, imp4)
	}
}

func TestFig11Shape(t *testing.T) {
	cv := smallCheckpoint(t)
	r, err := Fig11AdaptiveRatio(cv, []float64{0.2, 0.6, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		v := ys(s)
		// Larger ratios never hurt (search space is a superset).
		for i := 1; i < len(v); i++ {
			if v[i] < v[i-1]-0.02 {
				t.Fatalf("%s: improvement dropped with ratio: %v", s.Name, v)
			}
		}
	}
}

func TestFig12Shape(t *testing.T) {
	cv, err := TrainedCheckpoint(256, 16, 10, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig12QuantLatencyBins(cv, []int{5, 25, 50})
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Series[0].Points
	// First point is naive (bins=0); latency grows with bins.
	if pts[0].X != 0 {
		t.Fatal("first point should be naive asymmetric")
	}
	naive := pts[0].Y
	last := pts[len(pts)-1].Y
	if last <= naive {
		t.Fatalf("adaptive (%.4gs) should cost more than naive (%.4gs)", last, naive)
	}
	// Paper: adaptive at least doubles quantization latency.
	if last < naive*2 {
		t.Logf("warning: adaptive/naive ratio %.2f below paper's 2x (timing noise at small scale)", last/naive)
	}
	mid := pts[1].Y
	if last < mid {
		t.Fatalf("latency should grow with bins: %v", pts)
	}
}

func TestFig13Shape(t *testing.T) {
	cv, err := TrainedCheckpoint(256, 16, 10, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig13QuantLatencyRatio(cv, []float64{0.2, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		v := ys(s)
		if v[len(v)-1] < v[0] {
			t.Fatalf("%s: latency should grow with ratio: %v", s.Name, v)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Fig15IncrementalBandwidth(smallIncremental())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range r.Series {
		series[s.Name] = ys(s)
	}
	oneShot := series["one-shot"]
	consec := series["consecutive"]
	// Interval 0 is the full baseline for all policies.
	if oneShot[0] != 100 || consec[0] != 100 {
		t.Fatalf("first interval should be a full checkpoint: %v, %v", oneShot[0], consec[0])
	}
	// One-shot grows monotonically after the baseline.
	for i := 2; i < len(oneShot); i++ {
		if oneShot[i] < oneShot[i-1]-0.5 {
			t.Fatalf("one-shot should grow: %v", oneShot)
		}
	}
	// Consecutive stays roughly flat and below one-shot's tail.
	tail := consec[1:]
	if stats.Stddev(tail) > stats.Mean(tail)*0.3 {
		t.Fatalf("consecutive not flat: %v", consec)
	}
	if consec[len(consec)-1] > oneShot[len(oneShot)-1] {
		t.Fatalf("consecutive tail should be below one-shot: %v vs %v",
			consec[len(consec)-1], oneShot[len(oneShot)-1])
	}
}

func TestFig16Shape(t *testing.T) {
	r, err := Fig16StorageCapacity(smallIncremental())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range r.Series {
		series[s.Name] = ys(s)
	}
	// Consecutive capacity grows without bound and ends highest.
	consec := series["consecutive"]
	for i := 1; i < len(consec); i++ {
		if consec[i] < consec[i-1]-0.5 {
			t.Fatalf("consecutive capacity should grow: %v", consec)
		}
	}
	oneShot := series["one-shot"]
	if consec[len(consec)-1] <= oneShot[len(oneShot)-1] {
		t.Fatalf("consecutive (%v) should exceed one-shot (%v) at the end",
			consec[len(consec)-1], oneShot[len(oneShot)-1])
	}
}

func TestFig17Shape(t *testing.T) {
	r, buckets, err := Fig17OverallReduction(smallIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 4 {
		t.Fatalf("want 4 buckets, got %d", len(buckets))
	}
	// Bits selected per bucket match §6.2.1.
	wantBits := []int{2, 3, 4, 8}
	for i, b := range buckets {
		if b.Bits != wantBits[i] {
			t.Fatalf("bucket %s bits = %d, want %d", b.Label, b.Bits, wantBits[i])
		}
		if b.BandwidthReduction <= 1 {
			t.Fatalf("bucket %s bandwidth reduction = %v, want > 1", b.Label, b.BandwidthReduction)
		}
		if b.CapacityReduction <= 1 {
			t.Fatalf("bucket %s capacity reduction = %v, want > 1", b.Label, b.CapacityReduction)
		}
	}
	// Reductions decrease as L grows (lower bits -> bigger savings).
	for i := 1; i < len(buckets); i++ {
		if buckets[i].BandwidthReduction > buckets[i-1].BandwidthReduction*1.05 {
			t.Fatalf("bandwidth reduction should fall across buckets: %+v", buckets)
		}
	}
	// Headline range: several-fold reduction at both ends.
	if buckets[0].BandwidthReduction < 4 {
		t.Fatalf("best-case bandwidth reduction = %.1fx, want >= 4x (paper: 17x)",
			buckets[0].BandwidthReduction)
	}
	if len(r.Series) != 2 {
		t.Fatal("want bandwidth and capacity series")
	}
}

func TestFig14Shape(t *testing.T) {
	cfg := smallFig14()
	r, err := Fig14AccuracyDegradation(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("want 2 restore lines, got %d", len(r.Series))
	}
	// Degradation exists after restores from 2-bit checkpoints: the
	// 3-restore line's final degradation should exceed the 1-restore
	// line's (more lossy restores accumulate more error).
	last := func(s stats.Series) float64 {
		if len(s.Points) == 0 {
			return 0
		}
		return s.Points[len(s.Points)-1].Y
	}
	d1, d3 := last(r.Series[0]), last(r.Series[1])
	if d3 < d1-0.002 {
		t.Fatalf("3 restores (%v) should degrade at least as much as 1 (%v)", d3, d1)
	}
	if d3 <= 0 {
		t.Fatalf("2-bit with 3 restores must show positive degradation, got %v", d3)
	}
}

func TestFig14HigherBitsDegradeLess(t *testing.T) {
	cfg := smallFig14()
	cfg.Restores = map[int][]int{2: {3}, 4: {3}}
	r2, err := Fig14AccuracyDegradation(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Fig14AccuracyDegradation(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	last := func(r *Result) float64 {
		s := r.Series[0]
		return s.Points[len(s.Points)-1].Y
	}
	if last(r4) > last(r2)+0.002 {
		t.Fatalf("4-bit degradation (%v) should be below 2-bit (%v)", last(r4), last(r2))
	}
}

func TestZstdBaseline(t *testing.T) {
	r, err := ZstdBaselineResult(512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "reduction") {
		t.Fatalf("notes = %v", r.Notes)
	}
}

func TestSnapshotStall(t *testing.T) {
	r := SnapshotStallResult()
	pts := r.Series[0].Points
	// Overhead falls as intervals lengthen.
	for i := 1; i < len(pts); i++ {
		if pts[i].Y > pts[i-1].Y {
			t.Fatal("stall overhead should fall with longer intervals")
		}
	}
	// 30-minute point under 0.4%.
	for _, p := range pts {
		if p.X == 30 && p.Y >= 0.4 {
			t.Fatalf("30-min stall overhead = %v%%, want < 0.4%%", p.Y)
		}
	}
}

func TestRenderOutput(t *testing.T) {
	r := Fig3FailureCDF(Fig3Config{Jobs: 500, Seed: 1})
	out := r.Render()
	if !strings.Contains(out, "FIG3") || !strings.Contains(out, "CDF") {
		t.Fatalf("render output missing headers:\n%s", out)
	}
	if !strings.Contains(out, "note:") {
		t.Fatal("render output missing notes")
	}
}

func TestContentionShape(t *testing.T) {
	cfg := DefaultContention()
	cfg.Jobs = 3
	cfg.RowsPerTable = 512
	cfg.Dim = 16
	cfg.Rounds = 3
	r, err := WriteLatencyResult(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatal("want baseline and check-n-run series")
	}
	base, cnr := ys(r.Series[0]), ys(r.Series[1])
	// Steady state (after round 0): Check-N-Run rounds are much faster.
	for i := 1; i < len(base); i++ {
		if cnr[i] >= base[i] {
			t.Fatalf("round %d: check-n-run %.3fs should beat baseline %.3fs", i, cnr[i], base[i])
		}
	}
	if cnr[len(cnr)-1] > base[len(base)-1]/3 {
		t.Fatalf("steady-state speedup below 3x: %.3fs vs %.3fs",
			cnr[len(cnr)-1], base[len(base)-1])
	}
	// Baseline rounds are flat (full model every time).
	if stats.Stddev(base) > stats.Mean(base)*0.2 {
		t.Fatalf("baseline rounds should be flat: %v", base)
	}
}
