package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// ContentionConfig sizes the shared-bandwidth experiment behind §4.3's
// motivation: "writing multiple large checkpoints concurrently from
// different models ... requires substantial network and storage
// bandwidths, which constitute a bottleneck and limit the checkpoint
// frequency".
type ContentionConfig struct {
	// Jobs is the number of training jobs sharing the storage link
	// (the paper cites hundreds of clusters).
	Jobs int
	// Bandwidth is the shared write bandwidth in bytes/second of
	// virtual time.
	Bandwidth float64
	// RowsPerTable and Dim size each job's model.
	RowsPerTable, Dim int
	// BatchesPerRound and BatchSize are the training done between
	// checkpoint rounds.
	BatchesPerRound, BatchSize int
	Rounds                     int
	Seed                       int64
}

// DefaultContention models a small fleet against a constrained link.
func DefaultContention() ContentionConfig {
	return ContentionConfig{
		Jobs:            8,
		Bandwidth:       64 << 20, // 64 MB/s shared
		RowsPerTable:    2048,
		Dim:             64,
		BatchesPerRound: 2,
		BatchSize:       96,
		Rounds:          3,
		Seed:            21,
	}
}

// contentionJob is one training job in the fleet.
type contentionJob struct {
	m   *model.DLRM
	gen *data.Generator
	eng *ckpt.Engine
}

// WriteLatencyResult measures, on a shared bandwidth-shaped virtual
// link, how long a full fleet checkpoint round takes — i.e. the minimum
// feasible checkpoint interval — for the fp32 full baseline vs
// Check-N-Run (intermittent + 4-bit adaptive + compact metadata).
func WriteLatencyResult(cfg ContentionConfig) (*Result, error) {
	run := func(policy ckpt.PolicyKind, qp quant.Params, compact bool) ([]float64, error) {
		clock := simclock.NewSim(time.Time{})
		store := objstore.NewMemStore(objstore.MemConfig{
			WriteBandwidth: cfg.Bandwidth,
			Clock:          clock,
		})
		jobs := make([]*contentionJob, cfg.Jobs)
		for j := range jobs {
			mcfg := model.DefaultConfig()
			mcfg.Seed = cfg.Seed + int64(j)
			mcfg.EmbedDim = cfg.Dim
			mcfg.Tables = []embedding.TableSpec{
				{Rows: cfg.RowsPerTable, Dim: cfg.Dim},
				{Rows: cfg.RowsPerTable, Dim: cfg.Dim},
			}
			m, err := model.New(mcfg, 1)
			if err != nil {
				return nil, err
			}
			spec := data.DefaultSpec()
			spec.Seed = cfg.Seed + int64(j)
			spec.TableRows = []int{cfg.RowsPerTable, cfg.RowsPerTable}
			spec.ZipfS = 1.35
			spec.TailFraction = 0.25
			gen, err := data.NewGenerator(spec)
			if err != nil {
				return nil, err
			}
			eng, err := ckpt.NewEngine(ckpt.Config{
				JobID:           fmt.Sprintf("job%02d", j),
				Store:           store,
				Policy:          policy,
				Quant:           qp,
				CompactMetadata: compact,
				KeepLast:        1,
			})
			if err != nil {
				return nil, err
			}
			jobs[j] = &contentionJob{m: m, gen: gen, eng: eng}
		}
		ctx := context.Background()
		var roundSeconds []float64
		for round := 0; round < cfg.Rounds; round++ {
			for _, job := range jobs {
				for b := 0; b < cfg.BatchesPerRound; b++ {
					job.m.TrainBatch(job.gen.NextBatch(cfg.BatchSize))
				}
			}
			start := clock.Now()
			for _, job := range jobs {
				snap, err := ckpt.TakeSnapshot(job.m, uint64((round+1)*cfg.BatchesPerRound),
					data.ReaderState{NextSample: job.gen.Pos(), BatchSize: cfg.BatchSize})
				if err != nil {
					return nil, err
				}
				if _, err := job.eng.Write(ctx, snap); err != nil {
					return nil, err
				}
			}
			roundSeconds = append(roundSeconds, clock.Since(start).Seconds())
		}
		return roundSeconds, nil
	}

	baseline, err := run(ckpt.PolicyFull, quant.Params{Method: quant.MethodNone}, false)
	if err != nil {
		return nil, fmt.Errorf("contention baseline: %w", err)
	}
	qp, err := core.ParamsForBits(4)
	if err != nil {
		return nil, err
	}
	cnr, err := run(ckpt.PolicyIntermittent, qp, true)
	if err != nil {
		return nil, fmt.Errorf("contention check-n-run: %w", err)
	}

	r := &Result{
		ID:     "contention",
		Title:  fmt.Sprintf("Fleet checkpoint round latency: %d jobs sharing %.0f MB/s", cfg.Jobs, cfg.Bandwidth/(1<<20)),
		XLabel: "round",
		YLabel: "seconds of virtual time to checkpoint the whole fleet",
	}
	toPts := func(xs []float64) []stats.Point {
		pts := make([]stats.Point, len(xs))
		for i, v := range xs {
			pts[i] = stats.Point{X: float64(i), Y: v}
		}
		return pts
	}
	r.Series = []stats.Series{
		{Name: "full fp32", Points: toPts(baseline)},
		{Name: "check-n-run 4-bit", Points: toPts(cnr)},
	}
	// Steady-state comparison: rounds after the first (which includes
	// every job's full baseline checkpoint).
	steadyBase := stats.Mean(baseline[1:])
	steadyCNR := stats.Mean(cnr[1:])
	speedup := steadyBase / steadyCNR
	r.Notes = append(r.Notes,
		fmt.Sprintf("steady-state round latency: %.4gs -> %.4gs (%.1fx more frequent checkpoints feasible)",
			steadyBase, steadyCNR, speedup),
		"the same shared link supports proportionally more concurrent jobs (§4.3)")
	return r, nil
}
