package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/failure"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
	"repro/internal/stats"
)

// Fig14Config sizes the lifetime accuracy-degradation experiment.
type Fig14Config struct {
	// TotalBatches is the job length in unique batches (stands in for
	// the paper's 4 billion samples).
	TotalBatches int
	BatchSize    int
	// CheckpointEvery is the checkpoint interval in batches.
	CheckpointEvery int
	// EvalEvery is the lifetime-curve grid in batches.
	EvalEvery int
	// EvalSamples is the held-out set size.
	EvalSamples  int
	RowsPerTable int
	Seed         int64
	// Trials averages each (bits, restores) line over this many failure
	// schedules. At simulator scale individual penalties are ~1e-4 nats,
	// so averaging is needed for stable ordering.
	Trials int
	// Restores maps a bit-width to the restore counts plotted as lines
	// (the paper uses 1/2/3 for 2-bit, 2/3/4 for 3-bit, 10/20/30 for
	// 4-bit).
	Restores map[int][]int
}

// DefaultFig14 is scaled to run in seconds while preserving the paper's
// comparisons.
func DefaultFig14() Fig14Config {
	return Fig14Config{
		TotalBatches:    120,
		BatchSize:       32,
		CheckpointEvery: 10,
		EvalEvery:       20,
		EvalSamples:     256,
		RowsPerTable:    512,
		Seed:            5,
		Trials:          4,
		Restores: map[int][]int{
			2: {1, 2, 3},
			3: {2, 3, 4},
			4: {10, 20, 30},
		},
	}
}

// restorePenalty is the held-out loss increase caused by one quantized
// restore, measured at the moment of restoration against the fp32
// baseline's state at the same step. This isolates exactly what the
// paper's Figure 14 attributes to checkpoint quantization: at production
// scale the penalty persists in cold rows; at simulator scale hot-row
// retraining would wash it out of a final-loss measurement, so the
// penalty is sampled where it is observable and accumulated over the
// lifetime (see EXPERIMENTS.md).
type restorePenalty struct {
	failBatch int
	penalty   float64
}

// recentWindowLoss evaluates mean loss over the training samples of the
// CheckpointEvery batches preceding step pos — the recently-fitted data
// the model sits near a local minimum of. Quantization perturbations
// reliably increase this loss, giving a low-variance penalty estimate
// (on held-out data the first-order gradient term dominates and the sign
// of a single realization is random; see EXPERIMENTS.md).
func recentWindowLoss(m *model.DLRM, gen *data.Generator, cfg Fig14Config, pos int) float64 {
	from := uint64((pos - cfg.CheckpointEvery) * cfg.BatchSize)
	n := cfg.CheckpointEvery * cfg.BatchSize
	return float64(m.EvalLoss(gen, from, n))
}

// fig14Baseline runs the uninterrupted fp32 job, returning recent-window
// loss at every checkpoint step (for penalty measurement).
func fig14Baseline(cfg Fig14Config) (atCkpt map[int]float64, err error) {
	m, gen, err := fig14Model(cfg)
	if err != nil {
		return nil, err
	}
	atCkpt = make(map[int]float64)
	for pos := 1; pos <= cfg.TotalBatches; pos++ {
		m.TrainBatch(gen.NextBatch(cfg.BatchSize))
		if pos%cfg.CheckpointEvery == 0 {
			atCkpt[pos] = recentWindowLoss(m, gen, cfg, pos)
		}
	}
	return atCkpt, nil
}

func fig14Model(cfg Fig14Config) (*model.DLRM, *data.Generator, error) {
	mcfg := model.DefaultConfig()
	mcfg.Seed = cfg.Seed
	mcfg.Tables = []embedding.TableSpec{
		{Rows: cfg.RowsPerTable, Dim: 16}, {Rows: cfg.RowsPerTable, Dim: 16},
	}
	m, err := model.New(mcfg, 1)
	if err != nil {
		return nil, nil, err
	}
	spec := data.DefaultSpec()
	spec.Seed = cfg.Seed
	spec.TableRows = []int{cfg.RowsPerTable, cfg.RowsPerTable}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		return nil, nil, err
	}
	return m, gen, nil
}

// fig14Run trains a job with L uniformly-placed failures, each recovered
// from the latest checkpoint quantized with qp, and returns the restore
// penalties measured against the baseline.
func fig14Run(cfg Fig14Config, qp quant.Params, restores int, scheduleSeed int64, baseAtCkpt map[int]float64) ([]restorePenalty, error) {
	m, gen, err := fig14Model(cfg)
	if err != nil {
		return nil, err
	}
	store := objstore.NewMemStore(objstore.MemConfig{})
	eng, err := ckpt.NewEngine(ckpt.Config{
		JobID: "fig14", Store: store, Policy: ckpt.PolicyIntermittent, Quant: qp,
	})
	if err != nil {
		return nil, err
	}
	rest, err := ckpt.NewRestorer("fig14", store)
	if err != nil {
		return nil, err
	}
	var sched []uint64
	if restores > 0 {
		sched, err = failure.UniformSchedule(restores, uint64(cfg.TotalBatches), scheduleSeed)
		if err != nil {
			return nil, err
		}
	}
	inj := failure.NewInjector(sched)

	ctx := context.Background()
	var penalties []restorePenalty
	pos := 0
	for pos < cfg.TotalBatches {
		if inj.ShouldFail(uint64(pos)) {
			res, rerr := rest.RestoreLatest(ctx, m)
			if rerr != nil {
				// No checkpoint yet: restart from scratch (exact, no
				// quantization penalty).
				fresh, _, ferr := fig14Model(cfg)
				if ferr != nil {
					return nil, ferr
				}
				m = fresh
				gen.SeekTo(0)
				pos = 0
				continue
			}
			gen.SeekTo(res.Reader.NextSample)
			failAt := pos
			pos = int(res.Step)
			// Measure the quantization penalty: restored (de-quantized)
			// state vs the fp32 baseline at the same step. The baseline
			// trajectory equals the fp32-checkpoint state because
			// unquantized restores are exact.
			if base, ok := baseAtCkpt[pos]; ok {
				now := recentWindowLoss(m, gen, cfg, pos)
				penalties = append(penalties, restorePenalty{failBatch: failAt, penalty: now - base})
			}
			continue
		}
		m.TrainBatch(gen.NextBatch(cfg.BatchSize))
		pos++
		if pos%cfg.CheckpointEvery == 0 {
			snap, serr := ckpt.TakeSnapshot(m, uint64(pos),
				data.ReaderState{NextSample: gen.Pos(), BatchSize: cfg.BatchSize})
			if serr != nil {
				return nil, serr
			}
			if _, werr := eng.Write(ctx, snap); werr != nil {
				return nil, werr
			}
		}
	}
	return penalties, nil
}

// lifetimeCurve converts restore penalties into the Figure 14 lifetime
// curve: cumulative quantization-induced loss at each eval grid point,
// averaged over trials.
func lifetimeCurve(cfg Fig14Config, trials [][]restorePenalty) []stats.Point {
	var pts []stats.Point
	for pos := cfg.EvalEvery; pos <= cfg.TotalBatches; pos += cfg.EvalEvery {
		var sum float64
		for _, ps := range trials {
			for _, p := range ps {
				if p.failBatch <= pos {
					sum += p.penalty
				}
			}
		}
		pts = append(pts, stats.Point{
			X: float64(pos * cfg.BatchSize),
			Y: sum / float64(len(trials)),
		})
	}
	return pts
}

// Fig14AccuracyDegradation regenerates Figure 14 for one bit-width:
// lifetime accuracy degradation (cumulative quantization-restore penalty
// on held-out loss) as a function of trained records, one line per
// restore count.
func Fig14AccuracyDegradation(cfg Fig14Config, bits int) (*Result, error) {
	restoreCounts, ok := cfg.Restores[bits]
	if !ok {
		return nil, fmt.Errorf("fig14: no restore counts configured for %d bits", bits)
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	baseAtCkpt, err := fig14Baseline(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig14 baseline: %w", err)
	}
	qp, err := core.ParamsForBits(bits)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     fmt.Sprintf("fig14-%dbit", bits),
		Title:  fmt.Sprintf("Lifetime accuracy degradation with %d-bit quantized checkpoints", bits),
		XLabel: "trained records",
		YLabel: "cumulative restore penalty (held-out loss)",
	}
	sort.Ints(restoreCounts)
	for _, L := range restoreCounts {
		var trials [][]restorePenalty
		for tr := 0; tr < cfg.Trials; tr++ {
			ps, err := fig14Run(cfg, qp, L, cfg.Seed+int64(tr)*317+int64(L)*13+7, baseAtCkpt)
			if err != nil {
				return nil, fmt.Errorf("fig14 L=%d trial %d: %w", L, tr, err)
			}
			trials = append(trials, ps)
		}
		r.Series = append(r.Series, stats.Series{
			Name:   fmt.Sprintf("%d restores", L),
			Points: lifetimeCurve(cfg, trials),
		})
	}
	r.Notes = append(r.Notes,
		"more restores => more cumulative degradation; higher bit-widths degrade less",
		"measurement note: penalties are sampled at each restore on the recently-fitted training window (vs the fp32 baseline at the same step) and accumulated over the lifetime; at simulator scale a final held-out loss delta is gradient-noise dominated, while at paper scale the two measurements coincide")
	return r, nil
}

// Fig14Summary reports the final cumulative degradation per
// (bits, restores) pair — the scalar comparison behind the dynamic
// bit-width thresholds of §6.2.1.
func Fig14Summary(cfg Fig14Config) (*Result, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	baseAtCkpt, err := fig14Baseline(cfg)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     "fig14-summary",
		Title:  "Final cumulative degradation by bit-width and restore count",
		XLabel: "restores",
		YLabel: "final cumulative restore penalty",
	}
	bitsList := make([]int, 0, len(cfg.Restores))
	for b := range cfg.Restores {
		bitsList = append(bitsList, b)
	}
	sort.Ints(bitsList)
	for _, bits := range bitsList {
		qp, err := core.ParamsForBits(bits)
		if err != nil {
			return nil, err
		}
		var pts []stats.Point
		counts := append([]int(nil), cfg.Restores[bits]...)
		sort.Ints(counts)
		for _, L := range counts {
			var total float64
			for tr := 0; tr < cfg.Trials; tr++ {
				ps, err := fig14Run(cfg, qp, L, cfg.Seed+int64(tr)*317+int64(L)*13+7, baseAtCkpt)
				if err != nil {
					return nil, err
				}
				for _, p := range ps {
					total += p.penalty
				}
			}
			pts = append(pts, stats.Point{X: float64(L), Y: total / float64(cfg.Trials)})
		}
		r.Series = append(r.Series, stats.Series{Name: fmt.Sprintf("%d bits", bits), Points: pts})
	}
	return r, nil
}
