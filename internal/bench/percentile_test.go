package bench

import (
	"testing"
	"time"
)

// ramp returns [1ns, 2ns, ..., n ns], already sorted.
func ramp(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i + 1)
	}
	return out
}

func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want time.Duration
	}{
		// N=0 must not panic (the old int(0.99*(N-1)) form indexed [-0]
		// safely only by accident of the len==0 guard upstream).
		{0, 0.99, 0},
		// A single sample is every percentile.
		{1, 0.50, 1},
		{1, 0.99, 1},
		// Small N: p99 is the max — rank ceil(0.99*N) == N for N < 100.
		// The old truncation reported sample int(0.99*(N-1)), e.g. 9 of
		// 10 instead of 10 of 10.
		{10, 0.99, 10},
		{16, 0.99, 16},
		{99, 0.99, 99},
		// Exactly at the boundary: rank ceil(0.99*100) = 99.
		{100, 0.99, 99},
		{1000, 0.99, 990},
		// Medians.
		{10, 0.50, 5},
		{100, 0.50, 50},
		{101, 0.50, 51},
		// Degenerate p values clamp instead of indexing out of range.
		{10, 0.0, 1},
		{10, 1.0, 10},
	}
	for _, c := range cases {
		if got := percentile(ramp(c.n), c.p); got != c.want {
			t.Errorf("percentile(N=%d, p=%v) = %v, want %v", c.n, c.p, got, c.want)
		}
	}
}

func TestPercentileSmallNDoesNotUnderreportTail(t *testing.T) {
	// The regression that motivated the fix: at benchtime=1x a sweep can
	// collect just a handful of samples, and p99 must then be the max —
	// reporting anything smaller hides the tail entirely.
	samples := []time.Duration{1, 1, 1, 1000}
	if got := percentile(samples, 0.99); got != 1000 {
		t.Fatalf("p99 of 4 samples = %v, want the max (1000)", got)
	}
	if got := percentile(samples, 0.50); got != 1 {
		t.Fatalf("p50 of 4 samples = %v, want 1", got)
	}
}
