// Package bench holds reusable benchmark bodies shared by `go test
// -bench` and cmd/benchci's JSON artifact emitter, so the CI perf
// trajectory measures exactly what developers run locally.
package bench

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/quant"
)

// Case is one named benchmark body.
type Case struct {
	Name string
	Run  func(b *testing.B)
}

// benchModelConfig is the fixed workload: three embedding tables, 8K
// rows total, the scale where coordinator fan-out (not raw serialization
// volume) dominates.
func benchModelConfig() model.Config {
	cfg := model.DefaultConfig()
	cfg.Tables = []embedding.TableSpec{
		{Rows: 2048, Dim: 16}, {Rows: 2048, Dim: 16}, {Rows: 4096, Dim: 16},
	}
	return cfg
}

func benchDataSpec() data.Spec {
	spec := data.DefaultSpec()
	spec.TableRows = []int{2048, 2048, 4096}
	return spec
}

// setup trains a small model and returns snapshots for a full baseline
// and a subsequent incremental interval.
func setup(b *testing.B) (fullSnap, incSnap *ckpt.Snapshot) {
	b.Helper()
	m, err := model.New(benchModelConfig(), 2)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := data.NewGenerator(benchDataSpec())
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	for i := 0; i < 4; i++ {
		m.TrainBatch(gen.NextBatch(batch))
	}
	fullSnap, err = ckpt.TakeSnapshot(m, 4, data.ReaderState{NextSample: gen.Pos(), BatchSize: batch})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m.TrainBatch(gen.NextBatch(batch))
	}
	incSnap, err = ckpt.TakeSnapshot(m, 6, data.ReaderState{NextSample: gen.Pos(), BatchSize: batch})
	if err != nil {
		b.Fatal(err)
	}
	return fullSnap, incSnap
}

// coordinatorWrite benchmarks composite commits at the given shard
// count. Each iteration is one full two-phase commit (prepare across
// shards, publish, composite manifest); with incremental set, a full
// baseline is laid down untimed and the timed writes are incrementals.
// A non-zero qp quantizes the checkpoint (with the CKP2 layout), the
// production shape where encode cost dominates.
func coordinatorWrite(shards int, incremental bool, qp quant.Params) func(b *testing.B) {
	return func(b *testing.B) {
		fullSnap, incSnap := setup(b)
		policy := ckpt.PolicyFull
		if incremental {
			policy = ckpt.PolicyOneShot
		}
		coord, err := ckpt.NewCoordinator(ckpt.CoordinatorConfig{
			Config: ckpt.Config{
				JobID:  "bench",
				Store:  objstore.NewMemStore(objstore.MemConfig{}),
				Policy: policy,
				Quant:  qp,
				// Quantized chunks use the optimized metadata layout,
				// as production would.
				CompactMetadata: qp.Method != quant.MethodNone,
				// Bound store growth across iterations.
				KeepLast: 2,
			},
			Shards: shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		snap := fullSnap
		if incremental {
			if _, err := coord.Write(ctx, fullSnap); err != nil {
				b.Fatal(err)
			}
			snap = incSnap
		}
		b.ResetTimer()
		var payload int64
		for i := 0; i < b.N; i++ {
			man, err := coord.Write(ctx, snap)
			if err != nil {
				b.Fatal(err)
			}
			payload = man.PayloadBytes
		}
		b.SetBytes(payload)
		b.ReportMetric(float64(payload), "payload_bytes/op")
	}
}

// CoordinatorCases enumerates the coordinator write benchmarks: full
// composite commits across shard counts (fp32), the incremental
// steady-state at the widest fan-out, and quantized full commits — the
// paper's production configuration, where quantize+encode is the
// data-plane cost the encoder pool must hide.
func CoordinatorCases() []Case {
	fp32 := quant.Params{Method: quant.MethodNone}
	adaptive4 := quant.Params{Method: quant.MethodAdaptive, Bits: 4, NumBins: 45, Ratio: 1}
	var cases []Case
	for _, shards := range []int{1, 2, 4, 8} {
		cases = append(cases, Case{
			Name: fmt.Sprintf("full_shards=%d", shards),
			Run:  coordinatorWrite(shards, false, fp32),
		})
	}
	cases = append(cases, Case{
		Name: "incremental_shards=4",
		Run:  coordinatorWrite(4, true, fp32),
	})
	for _, shards := range []int{1, 4} {
		cases = append(cases, Case{
			Name: fmt.Sprintf("full_shards=%d_adaptive4", shards),
			Run:  coordinatorWrite(shards, false, adaptive4),
		})
	}
	return cases
}
