package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/ctrl"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/serve"
)

// Serving-plane benchmarks: embedding lookups against a serve.Replica
// over its real TCP lookup protocol. Emitted as BENCH_serve.json; the
// row that matters is Lookup_under_commit — read latency while the
// write plane keeps landing incremental composites, which is the
// checkpoint-fed read path's whole reason to exist. The static row is
// the floor it is compared against.

// serveFanIn is the indices-per-lookup batch (a typical per-sample
// gather); serveBurst scales lookups per benchmark op (conc × burst).
const (
	serveFanIn = 64
	serveBurst = 16
)

// serveFixture is a live write plane plus a converged replica.
type serveFixture struct {
	rep    *serve.Replica
	commit func() error // one train+commit+announce round
	close  func()
}

func newServeFixture(b *testing.B) *serveFixture {
	b.Helper()
	store := objstore.NewMemStore(objstore.MemConfig{})
	m, err := model.New(benchModelConfig(), 2)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := data.NewGenerator(benchDataSpec())
	if err != nil {
		b.Fatal(err)
	}
	coord, err := ckpt.NewCoordinator(ckpt.CoordinatorConfig{
		Config: ckpt.Config{
			JobID:    "bench-serve",
			Store:    store,
			Policy:   ckpt.PolicyOneShot,
			KeepLast: 2,
		},
		Shards: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	ann, err := ctrl.NewAnnouncer("127.0.0.1:0", "bench-serve", func(string, ...any) {})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var step uint64
	commit := func() error {
		m.TrainBatch(gen.NextBatch(64))
		step++
		snap, err := ckpt.TakeSnapshot(m, step, data.ReaderState{NextSample: gen.Pos(), BatchSize: 64})
		if err != nil {
			return err
		}
		man, err := coord.Write(ctx, snap)
		if err != nil {
			return err
		}
		ann.Announce(1, man)
		return nil
	}
	// Full baseline, then a replica converged on it. Announce drives the
	// replica during the run; the resync ticker is a slow fallback.
	if err := commit(); err != nil {
		b.Fatal(err)
	}
	rep, err := serve.Start(serve.Config{
		JobID:        "bench-serve",
		Store:        store,
		AnnounceAddr: ann.Addr(),
		ResyncEvery:  time.Second,
	})
	if err != nil {
		ann.Close()
		b.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = rep.WaitForCheckpoint(wctx, 0)
	cancel()
	if err != nil {
		rep.Close()
		ann.Close()
		b.Fatal(err)
	}
	return &serveFixture{
		rep:    rep,
		commit: commit,
		close: func() {
			rep.Close()
			ann.Close()
		},
	}
}

// serveLookups benchmarks conc concurrent lookup clients, each issuing
// serveBurst random-table gathers of serveFanIn rows per op. With
// underCommit set, a background writer keeps committing incremental
// composites (and announcing them) for the whole timed region, so the
// replica swaps table versions under the readers; the p50/p99 extras
// then measure read latency under commit traffic, and commits/op
// records how much write traffic the run actually absorbed.
func serveLookups(underCommit bool, conc int) func(b *testing.B) {
	return func(b *testing.B) {
		fx := newServeFixture(b)
		defer fx.close()
		rows := benchDataSpec().TableRows

		var commits atomic.Int64
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		if underCommit {
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := fx.commit(); err != nil {
						b.Error(err)
						return
					}
					commits.Add(1)
					time.Sleep(2 * time.Millisecond)
				}
			}()
		}

		ctx := context.Background()
		clients := make([]*serve.Client, conc)
		for w := range clients {
			clients[w] = serve.NewClient(fx.rep.Addr(), serve.ClientConfig{})
			defer clients[w].Close()
		}
		lat := make([][]time.Duration, conc)
		errs := make([]error, conc)
		dim := benchModelConfig().EmbedDim
		b.SetBytes(int64(conc * serveBurst * serveFanIn * dim * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(i*conc + w)))
					indices := make([]uint32, serveFanIn)
					for t := 0; t < serveBurst; t++ {
						tid := rng.Intn(len(rows))
						for j := range indices {
							indices[j] = uint32(rng.Intn(rows[tid]))
						}
						t0 := time.Now()
						if _, err := clients[w].Lookup(ctx, uint32(tid), indices); err != nil {
							if errs[w] == nil {
								errs[w] = err
							}
							return
						}
						if len(lat[w]) < 1<<14 {
							lat[w] = append(lat[w], time.Since(t0))
						}
					}
				}(w)
			}
			wg.Wait()
		}
		b.StopTimer()
		close(stop)
		writerWG.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		var all []time.Duration
		for _, l := range lat {
			all = append(all, l...)
		}
		reportPercentiles(b, all)
		if underCommit {
			b.ReportMetric(float64(commits.Load())/float64(b.N), "commits/op")
		}
	}
}

// ServeCases enumerates the serving-plane benchmarks: the static-read
// floor at one and eight clients, and the same eight-client load with
// concurrent commit traffic swapping table versions underneath.
func ServeCases() []Case {
	var cases []Case
	for _, conc := range []int{1, 8} {
		cases = append(cases, Case{
			Name: fmt.Sprintf("Lookup_static_c%d", conc),
			Run:  serveLookups(false, conc),
		})
	}
	cases = append(cases, Case{
		Name: "Lookup_under_commit_c8",
		Run:  serveLookups(true, 8),
	})
	return cases
}
