package bench

import "testing"

// BenchmarkCoordinator runs every coordinator case; CI's bench job runs
// `go test -bench=Coordinator -benchtime=1x` as a smoke pass and
// cmd/benchci re-runs the same bodies for the JSON artifact.
func BenchmarkCoordinator(b *testing.B) {
	for _, c := range CoordinatorCases() {
		b.Run(c.Name, c.Run)
	}
}
