package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/objstore"
)

// Store-plane benchmarks: Put/Get through the full routed stack — TCP
// clients, consistent-hash routing over N objstored-equivalent server
// processes. Emitted as BENCH_store.json; the acceptance bar is that
// aggregate Put bandwidth scales near-linearly with store count.

// storeBenchBW throttles each backend MemStore's reads and writes
// (bytes/sec). Shaping per-backend bandwidth puts the sweep in the
// regime the system actually runs in — bound by per-node storage
// bandwidth, not by the bench host's CPU — so aggregate throughput is
// governed by how many store processes the routed client can keep busy
// at once. Reads are shaped too (unreplicated, served from one copy),
// so the Get rows measure fleet read scaling rather than memcpy speed.
const storeBenchBW = 64 << 20

// storeSweepKeys is the per-worker key-ring size. Keys are distinct per
// (worker, slot) so rendezvous hashing spreads them over the backends.
const storeSweepKeys = 64

// storeBurst scales how many operations one benchmark op issues in
// total (conc × storeBurst). A long burst amortizes the per-op join
// barrier: with only one Put per worker per op, the op's cost is the
// serial time of whichever backend the hash happened to load most that
// round; over a burst the spread averages out and aggregate bandwidth
// reflects the fleet, not the unluckiest backend.
const storeBurst = 16

func storeKey(worker, slot int) string {
	return fmt.Sprintf("bench/sweep/w%02d/obj%04d", worker, slot)
}

// storeFleet spins up n TCP store servers (shaped MemStore backends)
// and a routed client over them.
func storeFleet(n int, writeBW, readBW float64) fleetFn {
	return func(b *testing.B) objstore.Store {
		b.Helper()
		addrs := make([]string, n)
		for i := range addrs {
			backend := objstore.NewMemStore(objstore.MemConfig{
				WriteBandwidth: writeBW,
				ReadBandwidth:  readBW,
			})
			srv, err := objstore.NewServer("127.0.0.1:0", backend, objstore.ServerConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			addrs[i] = srv.Addr()
		}
		store, err := objstore.Connect(strings.Join(addrs, ","), objstore.ClientConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { store.Close() })
		return store
	}
}

// fleetFn builds the store a sweep cell drives.
type fleetFn func(b *testing.B) objstore.Store

// diskFleet spins up one TCP store server over a DiskStore with the
// given fsync policy — the durability/latency rows of BENCH_store.json.
// Real fsyncs against the bench host's filesystem: the whole point is
// measuring what each policy costs on actual hardware.
func diskFleet(policy objstore.FsyncPolicy) fleetFn {
	return func(b *testing.B) objstore.Store {
		b.Helper()
		ds, err := objstore.NewDiskStore(objstore.DiskConfig{
			Dir:   b.TempDir(),
			Fsync: policy,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ds.Close() })
		srv, err := objstore.NewServer("127.0.0.1:0", ds, objstore.ServerConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		store, err := objstore.Connect(srv.Addr(), objstore.ClientConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { store.Close() })
		return store
	}
}

// reportPercentiles folds the per-op latency samples into p50/p99
// extras on the benchmark result.
func reportPercentiles(b *testing.B, samples []time.Duration) {
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	b.ReportMetric(float64(percentile(samples, 0.50)), "p50_ns")
	b.ReportMetric(float64(percentile(samples, 0.99)), "p99_ns")
}

// percentile returns the nearest-rank p-th percentile of sorted
// samples: the smallest sample such that at least p of the set is at or
// below it (rank ceil(p*N), 1-based, clamped). Unlike the previous
// int(p*(N-1)) truncation this never under-reports the tail at small N
// — a benchtime=1x run with N<100 used to report p99 as a sample below
// the max even though rank ceil(0.99*N) == N there — and N == 0 is the
// caller's early return, not an index panic.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// storeSweep is one cell of the payload × store-count × concurrency
// matrix. One benchmark op = conc concurrent operations of payload
// bytes each, so MB/s is the aggregate bandwidth across the fleet.
func storeSweep(fleet fleetFn, payload, conc int, get bool) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		store := fleet(b)
		buf := make([]byte, payload)
		for i := range buf {
			buf[i] = byte(i * 131)
		}
		if get {
			for w := 0; w < conc; w++ {
				for s := 0; s < storeSweepKeys; s++ {
					if err := store.Put(ctx, storeKey(w, s), buf); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		lat := make([][]time.Duration, conc)
		errs := make([]error, conc)
		b.ReportAllocs()
		b.SetBytes(int64(conc * storeBurst * payload))
		b.ResetTimer()
		total := conc * storeBurst
		for i := 0; i < b.N; i++ {
			// Workers steal tasks from a shared counter rather than owning
			// a fixed slice of keys: a worker stuck behind the hash's
			// hottest backend holds only its current task while the others
			// drain the rest, so the op's wall time converges on the
			// loaded backend's serial floor instead of on worker luck.
			var next int64 = -1
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						t := int(atomic.AddInt64(&next, 1))
						if t >= total {
							return
						}
						key := storeKey(t%conc, (i*storeBurst+t/conc)%storeSweepKeys)
						t0 := time.Now()
						var err error
						if get {
							_, err = store.Get(ctx, key)
						} else {
							err = store.Put(ctx, key, buf)
						}
						if err != nil {
							if errs[w] == nil {
								errs[w] = err
							}
							return
						}
						if len(lat[w]) < 1<<14 {
							lat[w] = append(lat[w], time.Since(t0))
						}
					}
				}(w)
			}
			wg.Wait()
		}
		b.StopTimer()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		var all []time.Duration
		for _, l := range lat {
			all = append(all, l...)
		}
		reportPercentiles(b, all)
	}
}

func sizeLabel(n int) string {
	if n >= 1<<20 && n%(1<<20) == 0 {
		return fmt.Sprintf("%dMiB", n>>20)
	}
	return fmt.Sprintf("%dKiB", n>>10)
}

// StoreCases enumerates the store sweep at the default shaping
// bandwidth (64 MiB/s each way per backend).
func StoreCases() []Case {
	return StoreCasesBW(storeBenchBW, storeBenchBW)
}

// StoreCasesBW enumerates the routed-store sweep — payload size ×
// store-process count × client concurrency, Put everywhere plus Get at
// the fan-out concurrency — with per-backend write/read bandwidth
// shaping in bytes/sec (0 disables that direction's throttle). Case
// names read Put_64KiB_s4_c8 = 64 KiB payloads, 4 store processes, 8
// concurrent clients. On top of the shaped MemStore matrix, a
// DiskStore fsync-policy column (DiskPut_<size>_c8_fsync_<policy>)
// measures what each durability level costs on the bench host's real
// filesystem: always pays an fsync per Put, interval batches them,
// never leans entirely on the OS page cache.
func StoreCasesBW(writeBW, readBW float64) []Case {
	payloads := []int{64 << 10, 1 << 20}
	storeCounts := []int{1, 2, 4}
	concs := []int{1, 8}
	var cases []Case
	for _, p := range payloads {
		for _, s := range storeCounts {
			for _, c := range concs {
				cases = append(cases, Case{
					Name: fmt.Sprintf("Put_%s_s%d_c%d", sizeLabel(p), s, c),
					Run:  storeSweep(storeFleet(s, writeBW, readBW), p, c, false),
				})
			}
		}
	}
	// Get rows sweep the same store counts as Put now that backend read
	// bandwidth is shaped — the scaling curve is measurable, not memcpy.
	for _, p := range payloads {
		for _, s := range storeCounts {
			cases = append(cases, Case{
				Name: fmt.Sprintf("Get_%s_s%d_c8", sizeLabel(p), s),
				Run:  storeSweep(storeFleet(s, writeBW, readBW), p, 8, true),
			})
		}
	}
	for _, p := range payloads {
		for _, pol := range []objstore.FsyncPolicy{objstore.FsyncAlways, objstore.FsyncInterval, objstore.FsyncNever} {
			cases = append(cases, Case{
				Name: fmt.Sprintf("DiskPut_%s_c8_fsync_%s", sizeLabel(p), pol),
				Run:  storeSweep(diskFleet(pol), p, 8, false),
			})
		}
	}
	return cases
}
