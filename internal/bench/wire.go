package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/quant"
	"repro/internal/wire"
)

// Wire/quant microbenchmarks: the chunk encode/decode hot path measured
// directly, without the coordinator or store in the loop, so the perf
// trajectory (BENCH_wire.json) pins the serialization layer itself.

const (
	benchChunkRows = 512
	benchDim       = 16
)

// benchVectors builds a deterministic chunk-sized workload.
func benchVectors() ([][]float32, []float32) {
	rng := rand.New(rand.NewSource(17))
	rows := make([][]float32, benchChunkRows)
	accums := make([]float32, benchChunkRows)
	for i := range rows {
		v := make([]float32, benchDim)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 0.05)
			if rng.Float64() < 0.03 {
				v[j] = float32(rng.NormFloat64() * 0.5)
			}
		}
		rows[i] = v
		accums[i] = rng.Float32()
	}
	return rows, accums
}

// buildChunk quantizes the workload into a reusable chunk. The returned
// QVector backing storage is reused across iterations, mirroring the
// engine's encoder workers.
func buildChunk(b *testing.B, p quant.Params) *wire.Chunk {
	b.Helper()
	vecs, accums := benchVectors()
	qrows := make([]quant.QVector, len(vecs))
	var scratch quant.Scratch
	chunk := &wire.Chunk{TableID: 1, Rows: make([]wire.Row, 0, len(vecs))}
	for i, v := range vecs {
		if err := quant.QuantizeInto(&qrows[i], v, p, &scratch); err != nil {
			b.Fatal(err)
		}
		chunk.Rows = append(chunk.Rows, wire.Row{Index: uint32(i), Accum: accums[i], Q: &qrows[i]})
	}
	return chunk
}

func chunkEncode(p quant.Params, compact bool) func(b *testing.B) {
	return func(b *testing.B) {
		chunk := buildChunk(b, p)
		buf := make([]byte, 0, 1<<20)
		var err error
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if compact {
				buf, err = chunk.AppendCompactTo(buf[:0])
			} else {
				buf, err = chunk.AppendTo(buf[:0])
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(buf)))
	}
}

func chunkDecode(p quant.Params, compact, alias bool) func(b *testing.B) {
	return func(b *testing.B) {
		chunk := buildChunk(b, p)
		var blob []byte
		var err error
		if compact {
			blob, err = chunk.EncodeCompact()
		} else {
			blob, err = chunk.Encode()
		}
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(blob)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if alias {
				_, err = wire.DecodeChunkAlias(blob)
			} else {
				_, err = wire.DecodeChunk(blob)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// quantizeSampledCase is the chunk-sampled adaptive search: the first
// rows of each "chunk" run the full greedy walk, the rest only score the
// harvested candidate trajectories.
func quantizeSampledCase(p quant.Params, every, chunkRows int) func(b *testing.B) {
	return func(b *testing.B) {
		vecs, _ := benchVectors()
		var q quant.QVector
		var s quant.Scratch
		b.ReportAllocs()
		b.SetBytes(int64(4 * benchDim))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%chunkRows == 0 {
				s.BeginAdaptiveChunk(every)
			}
			if err := quant.QuantizeCachedInto(&q, vecs[i%len(vecs)], p, &s, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// quantizeCacheHitCase is the steady-state path for rows whose min/max
// did not move between checkpoints: no search at all.
func quantizeCacheHitCase(p quant.Params) func(b *testing.B) {
	return func(b *testing.B) {
		vecs, _ := benchVectors()
		ents := make([]quant.RowRange, len(vecs))
		var q quant.QVector
		var s quant.Scratch
		for i, x := range vecs {
			if err := quant.QuantizeCachedInto(&q, x, p, &s, &ents[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.SetBytes(int64(4 * benchDim))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % len(vecs)
			if err := quant.QuantizeCachedInto(&q, vecs[j], p, &s, &ents[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func quantizeCase(p quant.Params) func(b *testing.B) {
	return func(b *testing.B) {
		vecs, _ := benchVectors()
		x := vecs[0]
		var q quant.QVector
		var s quant.Scratch
		if err := quant.QuantizeInto(&q, x, p, &s); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(int64(4 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := quant.QuantizeInto(&q, x, p, &s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func dequantizeCase(p quant.Params) func(b *testing.B) {
	return func(b *testing.B) {
		vecs, _ := benchVectors()
		q, err := quant.Quantize(vecs[0], p)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]float32, q.N)
		var s quant.Scratch
		b.ReportAllocs()
		b.SetBytes(int64(4 * q.N))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := quant.DequantizeInto(dst, q, &s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

const packN = 1 << 16

func packCase(bits int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		codes := make([]uint32, packN)
		mask := uint32(1)<<uint(bits) - 1
		for i := range codes {
			codes[i] = rng.Uint32() & mask
		}
		dst := make([]byte, quant.PackedLen(packN, bits))
		b.ReportAllocs()
		b.SetBytes(int64(len(dst)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			quant.PackCodes(dst, codes, bits)
		}
	}
}

func unpackCase(bits int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(6))
		codes := make([]uint32, packN)
		mask := uint32(1)<<uint(bits) - 1
		for i := range codes {
			codes[i] = rng.Uint32() & mask
		}
		src := make([]byte, quant.PackedLen(packN, bits))
		quant.PackCodes(src, codes, bits)
		dst := make([]uint32, packN)
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			quant.UnpackCodes(dst, src, bits)
		}
	}
}

// WireCases enumerates the data-plane microbenchmarks emitted as
// BENCH_wire.json: chunk encode/decode in both layouts for fp32 and
// 4-bit rows, per-method quantization, and raw pack/unpack throughput.
func WireCases() []Case {
	adaptive4 := quant.Params{Method: quant.MethodAdaptive, Bits: 4, NumBins: 45, Ratio: 1}
	asym8 := quant.Params{Method: quant.MethodAsymmetric, Bits: 8}
	asym4 := quant.Params{Method: quant.MethodAsymmetric, Bits: 4}
	none := quant.Params{Method: quant.MethodNone}
	cases := []Case{
		{Name: "ChunkEncode", Run: chunkEncode(asym4, true)},
		{Name: "ChunkEncode_v1", Run: chunkEncode(asym4, false)},
		{Name: "ChunkEncode_fp32", Run: chunkEncode(none, true)},
		{Name: "ChunkEncode_fp32_v1", Run: chunkEncode(none, false)},
		{Name: "ChunkDecode", Run: chunkDecode(asym4, true, false)},
		{Name: "ChunkDecode_v1", Run: chunkDecode(asym4, false, false)},
		{Name: "ChunkDecode_alias", Run: chunkDecode(asym4, true, true)},
		{Name: "ChunkDecode_alias_v1", Run: chunkDecode(asym4, false, true)},
		{Name: "ChunkDecode_fp32", Run: chunkDecode(none, true, false)},
		{Name: "Quantize_none32", Run: quantizeCase(none)},
		{Name: "Quantize_asym8", Run: quantizeCase(asym8)},
		{Name: "Quantize_asym4", Run: quantizeCase(asym4)},
		{Name: "Quantize_adaptive4", Run: quantizeCase(adaptive4)},
		{Name: "Quantize_adaptive4_sampled", Run: quantizeSampledCase(adaptive4, 8, benchChunkRows)},
		{Name: "Quantize_adaptive4_cachehit", Run: quantizeCacheHitCase(adaptive4)},
		{Name: "Dequantize_none32", Run: dequantizeCase(none)},
		{Name: "Dequantize_asym4", Run: dequantizeCase(asym4)},
	}
	for _, bits := range []int{2, 3, 4, 8} {
		cases = append(cases, Case{Name: fmt.Sprintf("Pack_%dbit", bits), Run: packCase(bits)})
		cases = append(cases, Case{Name: fmt.Sprintf("Unpack_%dbit", bits), Run: unpackCase(bits)})
	}
	return cases
}
