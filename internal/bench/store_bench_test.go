package bench

import "testing"

// BenchmarkStore runs the routed-store Put/Get sweep; CI runs it with
// -benchtime=1x in the test job so the bodies can't rot, and cmd/benchci
// re-runs them for the BENCH_store.json artifact. The acceptance signal
// is aggregate Put MB/s scaling near-linearly from Put_*_s1_c8 to
// Put_*_s4_c8: with per-backend write bandwidth shaped, only the routed
// fan-out can buy more aggregate throughput.
func BenchmarkStore(b *testing.B) {
	for _, c := range StoreCases() {
		b.Run(c.Name, c.Run)
	}
}
