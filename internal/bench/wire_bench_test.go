package bench

import "testing"

// BenchmarkWire runs every wire/quant microbenchmark; CI runs it with
// -benchtime=1x in the test job so the bodies can't rot, and cmd/benchci
// re-runs them for the BENCH_wire.json artifact. (The headline case is
// Wire/ChunkEncode — the pooled compact 4-bit encode; internal/wire's
// own BenchmarkChunkEncode measures the allocating Encode API and
// predates this suite.)
func BenchmarkWire(b *testing.B) {
	for _, c := range WireCases() {
		b.Run(c.Name, c.Run)
	}
}
