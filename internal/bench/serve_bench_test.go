package bench

import "testing"

// BenchmarkServe runs the serving-plane lookup benchmarks; CI runs it
// with -benchtime=1x in the test job so the bodies can't rot, and
// cmd/benchci re-runs them for the BENCH_serve.json artifact. The
// acceptance signal is the p99_ns extra of Lookup_under_commit_c8
// staying in the same regime as the static floor: version swaps are an
// atomic pointer flip, so commit traffic must not stall readers.
func BenchmarkServe(b *testing.B) {
	for _, c := range ServeCases() {
		b.Run(c.Name, c.Run)
	}
}
