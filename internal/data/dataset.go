// Package data provides the training-data substrate: a deterministic
// synthetic click-through dataset with Zipf-distributed sparse features,
// and the distributed reader tier (§2.2) that feeds trainers and whose
// state must be checkpointed to avoid the trainer–reader gap (§4.1).
//
// The paper trains on production click logs; the synthetic generator
// substitutes them with the canonical statistical model of recommendation
// traffic — power-law (Zipf) popularity over categorical IDs — with labels
// produced by a hidden "teacher" model so training has real signal and
// accuracy effects of quantized restores are measurable (Figure 14).
package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Sample is one training record: dense features, one categorical index per
// embedding table, and a binary click label.
type Sample struct {
	Dense  tensor.Vector
	Sparse []int // one index per table
	Label  float32
}

// Batch is a set of samples processed in one synchronous iteration.
type Batch struct {
	Samples []Sample
	// Seq is the global index of the first sample in the batch; together
	// with the generator seed it fully identifies the batch contents.
	Seq uint64
}

// Len returns the number of samples in the batch.
func (b *Batch) Len() int { return len(b.Samples) }

// Spec configures the synthetic dataset.
type Spec struct {
	Seed      int64
	DenseDim  int
	TableRows []int // rows per embedding table; len == number of tables
	// ZipfS is the Zipf exponent (> 1). Larger values concentrate traffic
	// on fewer IDs, lowering the modified-model fraction per interval.
	ZipfS float64
	// ZipfV is the Zipf value offset (>= 1).
	ZipfV float64
	// HotFraction, if positive, remaps a 1-HotFraction share of draws
	// uniformly over the full ID space to thicken the tail. Zero keeps
	// pure Zipf.
	TailFraction float64
}

// DefaultSpec returns a small but representative dataset: 13 dense
// features (as in the public DLRM benchmark), 4 embedding tables, and a
// mildly skewed Zipf.
func DefaultSpec() Spec {
	return Spec{
		Seed:      1,
		DenseDim:  13,
		TableRows: []int{4096, 4096, 8192, 16384},
		ZipfS:     1.2,
		ZipfV:     1,
	}
}

// Generator deterministically produces the sample stream. Sample i is a
// pure function of (Spec.Seed, i): the generator can be fast-forwarded to
// any position, which is exactly the property the reader checkpoint needs —
// restoring a reader is just re-seeking to the recorded position.
type Generator struct {
	spec    Spec
	teacher *teacher
	pos     uint64
}

// NewGenerator validates spec and builds the generator and its hidden
// teacher model.
func NewGenerator(spec Spec) (*Generator, error) {
	if spec.DenseDim <= 0 {
		return nil, fmt.Errorf("data: DenseDim must be positive, got %d", spec.DenseDim)
	}
	if len(spec.TableRows) == 0 {
		return nil, fmt.Errorf("data: no embedding tables in spec")
	}
	for i, r := range spec.TableRows {
		if r <= 0 {
			return nil, fmt.Errorf("data: table %d has %d rows", i, r)
		}
	}
	if spec.ZipfS <= 1 {
		return nil, fmt.Errorf("data: ZipfS must be > 1, got %v", spec.ZipfS)
	}
	if spec.ZipfV < 1 {
		return nil, fmt.Errorf("data: ZipfV must be >= 1, got %v", spec.ZipfV)
	}
	if spec.TailFraction < 0 || spec.TailFraction >= 1 {
		return nil, fmt.Errorf("data: TailFraction must be in [0,1), got %v", spec.TailFraction)
	}
	return &Generator{spec: spec, teacher: newTeacher(spec)}, nil
}

// Spec returns the generator's dataset spec.
func (g *Generator) Spec() Spec { return g.spec }

// Pos returns the index of the next sample to be produced. This is the
// reader state recorded in checkpoints.
func (g *Generator) Pos() uint64 { return g.pos }

// SeekTo positions the generator so the next sample produced is sample i.
// Restoring a reader checkpoint is exactly this call.
func (g *Generator) SeekTo(i uint64) { g.pos = i }

// Next produces the next sample in the stream and advances the position.
func (g *Generator) Next() Sample {
	s := g.At(g.pos)
	g.pos++
	return s
}

// NextBatch produces a batch of n samples.
func (g *Generator) NextBatch(n int) *Batch {
	b := &Batch{Seq: g.pos, Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		b.Samples[i] = g.Next()
	}
	return b
}

// At returns sample i without changing the stream position. Each sample
// derives its own PRNG from (seed, i) so access is random-access
// deterministic.
func (g *Generator) At(i uint64) Sample {
	rng := rand.New(rand.NewSource(g.spec.Seed ^ int64(i*0x9E3779B97F4A7C15+0x1234)))
	s := Sample{
		Dense:  make(tensor.Vector, g.spec.DenseDim),
		Sparse: make([]int, len(g.spec.TableRows)),
	}
	for d := range s.Dense {
		s.Dense[d] = float32(rng.NormFloat64())
	}
	for t, rows := range g.spec.TableRows {
		s.Sparse[t] = g.drawID(rng, rows)
	}
	s.Label = g.teacher.label(rng, s)
	return s
}

// drawID draws a categorical ID for a table with the configured skew.
func (g *Generator) drawID(rng *rand.Rand, rows int) int {
	if g.spec.TailFraction > 0 && rng.Float64() < g.spec.TailFraction {
		return rng.Intn(rows)
	}
	// rand.Zipf is stateful and relatively expensive to construct, so we
	// sample via the inverse-power transform instead: it preserves the
	// heavy-head shape with a single float draw.
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	// Inverse CDF of a bounded Pareto-like distribution over [1, rows].
	// exponent alpha = ZipfS - 1 controls concentration.
	alpha := g.spec.ZipfS - 1
	x := powInv(u, alpha, float64(rows))
	id := int(x) - 1
	if id < 0 {
		id = 0
	}
	if id >= rows {
		id = rows - 1
	}
	return id
}

// powInv returns the inverse-CDF sample of a bounded power-law with
// decreasing density f(x) ∝ x^(-(alpha+1)) on [1, hi]:
//
//	x = [1 - u·(1 - hi^(-alpha))]^(-1/alpha)
//
// Larger alpha concentrates mass on small x (hot IDs).
func powInv(u, alpha, hi float64) float64 {
	if alpha <= 0 {
		// Degenerates to uniform.
		return 1 + u*(hi-1)
	}
	hiNegA := math.Pow(hi, -alpha)
	return math.Pow(1-u*(1-hiNegA), -1/alpha)
}

// teacher is the hidden ground-truth model that labels samples: a linear
// model over dense features plus a per-ID effect for each table, squashed
// through a sigmoid into a click probability. It gives the synthetic data
// genuine learnable structure.
type teacher struct {
	wDense tensor.Vector
	// idEffect[t][id] would be too large to materialize for big tables;
	// instead each ID's effect is hashed deterministically.
	seed int64
}

func newTeacher(spec Spec) *teacher {
	rng := rand.New(rand.NewSource(spec.Seed * 7919))
	w := make(tensor.Vector, spec.DenseDim)
	for i := range w {
		w[i] = float32(rng.NormFloat64() * 0.5)
	}
	return &teacher{wDense: w, seed: spec.Seed}
}

// label draws a Bernoulli click from the teacher's probability for s.
func (t *teacher) label(rng *rand.Rand, s Sample) float32 {
	logit := float64(tensor.Dot(t.wDense, s.Dense))
	for tid, id := range s.Sparse {
		logit += t.effect(tid, id)
	}
	p := 1 / (1 + math.Exp(-logit))
	if rng.Float64() < p {
		return 1
	}
	return 0
}

// effect returns a deterministic per-(table, id) contribution in
// roughly [-1, 1].
func (t *teacher) effect(table, id int) float64 {
	h := uint64(t.seed)*0x9E3779B97F4A7C15 + uint64(table)*0xBF58476D1CE4E5B9 + uint64(id)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	// Map to [-1, 1).
	return float64(int64(h))/float64(1<<63)*0.5 + 0
}
