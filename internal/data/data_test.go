package data

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

func mustGen(t *testing.T, spec Spec) *Generator {
	t.Helper()
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpecValidation(t *testing.T) {
	base := DefaultSpec()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero dense", func(s *Spec) { s.DenseDim = 0 }},
		{"no tables", func(s *Spec) { s.TableRows = nil }},
		{"bad table", func(s *Spec) { s.TableRows = []int{10, 0} }},
		{"zipf s", func(s *Spec) { s.ZipfS = 1 }},
		{"zipf v", func(s *Spec) { s.ZipfV = 0.5 }},
		{"tail", func(s *Spec) { s.TailFraction = 1 }},
	}
	for _, c := range cases {
		s := base
		s.TableRows = append([]int(nil), base.TableRows...)
		c.mut(&s)
		if _, err := NewGenerator(s); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if _, err := NewGenerator(base); err != nil {
		t.Fatalf("default spec should validate: %v", err)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := mustGen(t, DefaultSpec())
	g2 := mustGen(t, DefaultSpec())
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Label != b.Label {
			t.Fatalf("sample %d label mismatch", i)
		}
		for d := range a.Dense {
			if a.Dense[d] != b.Dense[d] {
				t.Fatalf("sample %d dense mismatch", i)
			}
		}
		for s := range a.Sparse {
			if a.Sparse[s] != b.Sparse[s] {
				t.Fatalf("sample %d sparse mismatch", i)
			}
		}
	}
}

func TestGeneratorSeedChangesStream(t *testing.T) {
	specA := DefaultSpec()
	specB := DefaultSpec()
	specB.Seed = 999
	a := mustGen(t, specA).At(0)
	b := mustGen(t, specB).At(0)
	same := true
	for d := range a.Dense {
		if a.Dense[d] != b.Dense[d] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical dense features")
	}
}

func TestSeekToReproducesStream(t *testing.T) {
	g := mustGen(t, DefaultSpec())
	for i := 0; i < 10; i++ {
		g.Next()
	}
	want := g.Next() // sample 10
	g.SeekTo(10)
	got := g.Next()
	if got.Label != want.Label || got.Sparse[0] != want.Sparse[0] {
		t.Fatal("SeekTo did not reproduce the stream")
	}
	if g.Pos() != 11 {
		t.Fatalf("Pos = %d, want 11", g.Pos())
	}
}

func TestAtIsPure(t *testing.T) {
	g := mustGen(t, DefaultSpec())
	a := g.At(123)
	b := g.At(123)
	if a.Label != b.Label || a.Sparse[1] != b.Sparse[1] {
		t.Fatal("At should be pure")
	}
	if g.Pos() != 0 {
		t.Fatal("At must not advance the stream")
	}
}

func TestSparseInRange(t *testing.T) {
	spec := DefaultSpec()
	g := mustGen(t, spec)
	for i := 0; i < 500; i++ {
		s := g.Next()
		for ti, id := range s.Sparse {
			if id < 0 || id >= spec.TableRows[ti] {
				t.Fatalf("sample %d table %d id %d out of range [0,%d)", i, ti, id, spec.TableRows[ti])
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// A more aggressive exponent must concentrate more mass on low IDs.
	hot := func(zipfS float64) float64 {
		spec := DefaultSpec()
		spec.ZipfS = zipfS
		g := mustGen(t, spec)
		const n = 3000
		low := 0
		for i := 0; i < n; i++ {
			s := g.Next()
			if s.Sparse[0] < spec.TableRows[0]/10 {
				low++
			}
		}
		return float64(low) / n
	}
	mild, strong := hot(1.05), hot(1.8)
	if strong <= mild {
		t.Fatalf("stronger Zipf should concentrate: mild=%v strong=%v", mild, strong)
	}
	if strong < 0.5 {
		t.Fatalf("strong Zipf should put >50%% of mass in the low decile, got %v", strong)
	}
}

func TestTailFractionSpreads(t *testing.T) {
	spec := DefaultSpec()
	spec.ZipfS = 2.0
	pure := mustGen(t, spec)
	spec.TailFraction = 0.5
	mixed := mustGen(t, spec)
	count := func(g *Generator) int {
		seen := map[int]bool{}
		for i := 0; i < 2000; i++ {
			seen[g.Next().Sparse[0]] = true
		}
		return len(seen)
	}
	if count(mixed) <= count(pure) {
		t.Fatal("tail fraction should widen the touched ID set")
	}
}

func TestLabelsBothClasses(t *testing.T) {
	g := mustGen(t, DefaultSpec())
	ones := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if g.Next().Label == 1 {
			ones++
		}
	}
	if ones < n/20 || ones > n*19/20 {
		t.Fatalf("labels degenerate: %d/%d positive", ones, n)
	}
}

func TestLabelsCorrelateWithTeacher(t *testing.T) {
	// Samples sharing sparse IDs should have label rates that differ from
	// the global mean for at least some IDs — i.e. the data is learnable.
	// Weak check: the per-first-ID positive rates are not all identical.
	spec := DefaultSpec()
	spec.TableRows = []int{50, 50, 50, 50} // few IDs so each gets many samples
	g := mustGen(t, spec)
	pos := map[int]int{}
	tot := map[int]int{}
	for i := 0; i < 5000; i++ {
		s := g.Next()
		tot[s.Sparse[0]]++
		if s.Label == 1 {
			pos[s.Sparse[0]]++
		}
	}
	lo, hi := 1.0, 0.0
	for id, n := range tot {
		if n < 50 {
			continue
		}
		r := float64(pos[id]) / float64(n)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi-lo < 0.05 {
		t.Fatalf("per-ID label rates too uniform (%v..%v); no learnable sparse signal", lo, hi)
	}
}

func TestNextBatch(t *testing.T) {
	g := mustGen(t, DefaultSpec())
	b := g.NextBatch(16)
	if b.Len() != 16 || b.Seq != 0 {
		t.Fatalf("batch len=%d seq=%d", b.Len(), b.Seq)
	}
	b2 := g.NextBatch(8)
	if b2.Seq != 16 {
		t.Fatalf("second batch seq = %d, want 16", b2.Seq)
	}
}

func TestQuickBoundedIDs(t *testing.T) {
	f := func(seed int64, idx uint32) bool {
		spec := DefaultSpec()
		spec.Seed = seed
		g, err := NewGenerator(spec)
		if err != nil {
			return false
		}
		s := g.At(uint64(idx))
		for ti, id := range s.Sparse {
			if id < 0 || id >= spec.TableRows[ti] {
				return false
			}
		}
		return s.Label == 0 || s.Label == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- Reader cluster tests ---

func newCluster(t *testing.T, batch, workers int) *Cluster {
	t.Helper()
	g := mustGen(t, DefaultSpec())
	c, err := NewCluster(g, ClusterConfig{BatchSize: batch, Workers: workers, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterValidation(t *testing.T) {
	g := mustGen(t, DefaultSpec())
	if _, err := NewCluster(nil, ClusterConfig{BatchSize: 4}); err == nil {
		t.Fatal("nil generator should error")
	}
	if _, err := NewCluster(g, ClusterConfig{}); err == nil {
		t.Fatal("zero batch size should error")
	}
}

func TestClusterExactGrant(t *testing.T) {
	c := newCluster(t, 8, 3)
	const grant = 10
	c.Grant(grant)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < grant; i++ {
		b, err := c.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if b.Len() != 8 {
			t.Fatalf("batch %d len %d", i, b.Len())
		}
	}
	// The gap invariant: after consuming the full grant, nothing is in
	// flight and workers have stopped producing.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if c.Produced() == grant {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.Produced(); got != grant {
		t.Fatalf("produced %d, want exactly %d", got, grant)
	}
	if inf := c.InFlight(); inf != 0 {
		t.Fatalf("in-flight = %d, want 0", inf)
	}
	// A further Recv should block until cancelled — no over-read.
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := c.Recv(shortCtx); err == nil {
		t.Fatal("Recv beyond grant should block")
	}
}

func TestClusterBatchOrderIsContiguous(t *testing.T) {
	c := newCluster(t, 4, 4)
	c.Grant(20)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		b, err := c.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b.Seq%4 != 0 {
			t.Fatalf("batch seq %d not aligned", b.Seq)
		}
		if seen[b.Seq] {
			t.Fatalf("duplicate batch seq %d", b.Seq)
		}
		seen[b.Seq] = true
	}
	// All 20 distinct aligned sequences in [0, 80).
	for s := uint64(0); s < 80; s += 4 {
		if !seen[s] {
			t.Fatalf("missing batch starting at %d", s)
		}
	}
}

func TestClusterStateAtQuiescence(t *testing.T) {
	c := newCluster(t, 8, 2)
	c.Grant(5)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := c.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the produced counter to settle.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && c.Produced() < 5 {
		time.Sleep(time.Millisecond)
	}
	st := c.State()
	if st.NextSample != 40 {
		t.Fatalf("reader state = %d, want 40", st.NextSample)
	}
	if st.BatchSize != 8 {
		t.Fatalf("state batch size = %d", st.BatchSize)
	}
}

func TestClusterRestore(t *testing.T) {
	c := newCluster(t, 8, 2)
	c.Grant(3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := c.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Restore(ReaderState{NextSample: 8, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	c.Grant(1)
	b, err := c.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 8 {
		t.Fatalf("restored batch seq = %d, want 8", b.Seq)
	}
}

func TestClusterRestoreBatchMismatch(t *testing.T) {
	c := newCluster(t, 8, 1)
	if err := c.Restore(ReaderState{NextSample: 0, BatchSize: 16}); err == nil {
		t.Fatal("mismatched batch size should error")
	}
}

func TestClusterCloseUnblocksRecv(t *testing.T) {
	c := newCluster(t, 4, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Recv(context.Background())
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if err != ErrReaderClosed {
			t.Fatalf("err = %v, want ErrReaderClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	c := newCluster(t, 4, 2)
	c.Close()
	c.Close()
}

func TestClusterContextCancel(t *testing.T) {
	c := newCluster(t, 4, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Recv(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g, err := NewGenerator(DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
