package data

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrReaderClosed is returned when consuming from a closed reader cluster.
var ErrReaderClosed = errors.New("data: reader cluster closed")

// ReaderState is the checkpointable state of the reader tier: the position
// of the next unread sample. Because the generator is random-access
// deterministic, restoring a reader is just seeking to this position
// (§4.1 — the checkpoint "must also include the reader state").
type ReaderState struct {
	NextSample uint64
	BatchSize  int
}

// Cluster is the distributed reader tier: a master that grants batch
// quotas and worker goroutines that materialize batches into a bounded
// queue. It implements the paper's trainer–reader gap avoidance: the
// Check-N-Run controller grants the master an exact number of batches per
// checkpoint interval; workers stop after producing exactly that many, so
// when the trainer finishes the interval's last batch there are no
// in-flight batches anywhere.
type Cluster struct {
	gen       *Generator
	batchSize int
	queue     chan *Batch

	mu       sync.Mutex
	granted  int64 // batches the controller has allowed, not yet claimed
	produced uint64
	consumed uint64
	closed   bool

	wake   chan struct{} // pulse to wake idle workers
	done   chan struct{}
	wg     sync.WaitGroup
	nextMu sync.Mutex // serializes generator access across workers
}

// ClusterConfig configures a reader cluster.
type ClusterConfig struct {
	BatchSize int
	// Workers is the number of reader worker goroutines (the paper uses
	// hundreds of reader nodes; workers model them).
	Workers int
	// QueueDepth bounds in-flight batches between readers and trainer.
	QueueDepth int
}

// NewCluster starts the reader workers. The cluster produces nothing until
// Grant is called.
func NewCluster(gen *Generator, cfg ClusterConfig) (*Cluster, error) {
	if gen == nil {
		return nil, fmt.Errorf("data: nil generator")
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("data: BatchSize must be positive, got %d", cfg.BatchSize)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4
	}
	c := &Cluster{
		gen:       gen,
		batchSize: cfg.BatchSize,
		queue:     make(chan *Batch, cfg.QueueDepth),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	c.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go c.worker()
	}
	return c, nil
}

// Grant allows the workers to read n more batches. The Check-N-Run
// controller calls this once per checkpoint interval with the interval's
// exact batch count.
func (c *Cluster) Grant(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.granted += int64(n)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// claim reserves one batch quota, returning false when none is available.
func (c *Cluster) claim() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.granted <= 0 {
		return false
	}
	c.granted--
	return true
}

func (c *Cluster) worker() {
	defer c.wg.Done()
	for {
		if !c.claim() {
			select {
			case <-c.done:
				return
			case <-c.wake:
				continue
			}
		}
		// Materialize one batch. Generator access is serialized so the
		// global sample order stays exact — required for the reader
		// state to be a single scalar position.
		c.nextMu.Lock()
		b := c.gen.NextBatch(c.batchSize)
		c.nextMu.Unlock()

		c.mu.Lock()
		c.produced++
		c.mu.Unlock()

		select {
		case c.queue <- b:
			// Re-pulse so sibling workers re-check quota.
			select {
			case c.wake <- struct{}{}:
			default:
			}
		case <-c.done:
			return
		}
	}
}

// Recv returns the next batch, blocking until one is available, the
// context is cancelled, or the cluster is closed with an empty queue.
func (c *Cluster) Recv(ctx context.Context) (*Batch, error) {
	select {
	case b := <-c.queue:
		c.mu.Lock()
		c.consumed++
		c.mu.Unlock()
		return b, nil
	default:
	}
	select {
	case b := <-c.queue:
		c.mu.Lock()
		c.consumed++
		c.mu.Unlock()
		return b, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		// Drain anything already queued before reporting closure.
		select {
		case b := <-c.queue:
			c.mu.Lock()
			c.consumed++
			c.mu.Unlock()
			return b, nil
		default:
			return nil, ErrReaderClosed
		}
	}
}

// InFlight returns the number of produced-but-unconsumed batches. At a
// checkpoint trigger under exact granting this must be zero — the paper's
// "no gap" invariant — which tests assert.
func (c *Cluster) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.produced - c.consumed)
}

// Produced returns the total number of batches produced so far.
func (c *Cluster) Produced() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.produced
}

// State returns the checkpointable reader state. Call only at a quiescent
// point (checkpoint trigger with no in-flight batches) for an exact state.
func (c *Cluster) State() ReaderState {
	c.nextMu.Lock()
	pos := c.gen.Pos()
	c.nextMu.Unlock()
	return ReaderState{NextSample: pos, BatchSize: c.batchSize}
}

// Restore repositions the reader to a checkpointed state. Any granted but
// unread quota is cancelled; the controller re-grants after a restore.
func (c *Cluster) Restore(st ReaderState) error {
	if st.BatchSize != c.batchSize {
		return fmt.Errorf("data: restore batch size %d != cluster %d", st.BatchSize, c.batchSize)
	}
	c.mu.Lock()
	c.granted = 0
	c.mu.Unlock()
	c.nextMu.Lock()
	c.gen.SeekTo(st.NextSample)
	c.nextMu.Unlock()
	return nil
}

// Close stops the workers. It is safe to call multiple times.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
}
