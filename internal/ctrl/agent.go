package ctrl

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/objstore"
	"repro/internal/wire"
)

// SnapshotSource produces the shard's local snapshot for a prepare: the
// agent's hosted trainer advances its replica to exactly the named
// global step and returns an atomic copy of the tables this shard owns
// (dense state included; the agent decides whether to store it).
type SnapshotSource func(ctx context.Context, step uint64) (*ckpt.Snapshot, error)

// AgentConfig configures a shard agent.
type AgentConfig struct {
	// JobID is the composite job this shard belongs to.
	JobID string
	// Shard is this agent's shard index; Shards the job's total count.
	Shard  int
	Shards int
	// Engine is the template the shard's engine is built from. Store
	// must be set (the agent's data plane); JobID is rewritten to the
	// shard scope.
	Engine ckpt.Config
	// Source supplies prepare-time snapshots.
	Source SnapshotSource
	// Recover rebuilds the shard engine from the shard scope's manifests
	// in the store on startup (ckpt.RecoverEngine) and loads the fleet
	// epoch from the job's lease register, so a restarted agent rejoins
	// the fleet — passing NextID-consensus discovery and still refusing
	// superseded controllers — instead of coming back amnesiac.
	Recover bool
	// OpTimeout bounds each server-driven control operation, including
	// the store I/O it performs. Zero means no deadline. Without one, a
	// hung store Put during Prepare holds the agent's command mutex
	// forever and no later command — including Abort from a new-epoch
	// controller — can land.
	OpTimeout time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Agent hosts one shard's checkpoint engine and executes control-plane
// commands against it. All commands serialize on one mutex — checkpoint
// phases of one shard never overlap, mirroring Engine's contract.
type Agent struct {
	cfg  AgentConfig
	eng  *ckpt.Engine
	logf func(format string, args ...any)
	// reg is the job's epoch/lease register; set when Recover is on so
	// adopted epochs survive agent restarts. May be nil (legacy mode).
	reg *Register

	mu    sync.Mutex
	epoch uint64
	// pending is the in-flight prepared attempt, nil if none.
	pending   *ckpt.Prepared
	pendingID int
	// pendingDense is the composite-level dense object this attempt
	// stored (WantDense), deleted again on abort.
	pendingDense string
}

// NewAgent validates cfg and builds the shard engine.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.JobID == "" {
		return nil, fmt.Errorf("ctrl: empty job ID")
	}
	if cfg.Shard < 0 || cfg.Shards < 1 || cfg.Shard >= cfg.Shards {
		return nil, fmt.Errorf("ctrl: shard %d of %d out of range", cfg.Shard, cfg.Shards)
	}
	if cfg.Engine.Store == nil {
		return nil, fmt.Errorf("ctrl: nil store")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("ctrl: nil snapshot source")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ecfg := cfg.Engine
	ecfg.JobID = wire.ShardJobID(cfg.JobID, cfg.Shard)
	a := &Agent{cfg: cfg, logf: logf}
	if cfg.Recover {
		ctx := context.Background()
		if cfg.OpTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.OpTimeout)
			defer cancel()
		}
		// A shard manifest is durable only once the controller's
		// composite manifest — the job-level commit point — exists; a
		// published shard manifest with no composite is debris of an
		// aborted attempt and must not advance this shard's next ID.
		committed := func(ctx context.Context, id int) (bool, error) {
			_, err := cfg.Engine.Store.Stat(ctx, wire.ManifestKey(cfg.JobID, id))
			if errors.Is(err, objstore.ErrNotFound) {
				return false, nil
			}
			if err != nil {
				return false, err
			}
			return true, nil
		}
		eng, err := ckpt.RecoverEngine(ctx, ecfg, ckpt.RecoverOptions{Committed: committed})
		if err != nil {
			return nil, fmt.Errorf("ctrl: recover shard %d: %w", cfg.Shard, err)
		}
		reg, err := NewRegister(RegisterConfig{JobID: cfg.JobID, Store: cfg.Engine.Store})
		if err != nil {
			return nil, err
		}
		rec, err := reg.Read(ctx)
		if err != nil {
			return nil, fmt.Errorf("ctrl: recover shard %d: %w", cfg.Shard, err)
		}
		a.eng, a.reg, a.epoch = eng, reg, rec.Epoch
		logf("ctrl agent %d: recovered at next id %d, epoch %d", cfg.Shard, eng.NextID(), rec.Epoch)
		return a, nil
	}
	eng, err := ckpt.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	a.eng = eng
	return a, nil
}

// Engine returns the agent's shard engine (tests and hosting glue).
func (a *Agent) Engine() *ckpt.Engine { return a.eng }

// fencedf formats a fencing rejection.
func fencedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFenced, fmt.Sprintf(format, args...))
}

// admitLocked applies epoch fencing for a mutating request. Requests
// from older epochs are rejected; a newer epoch is adopted, and any
// attempt the superseded controller left in flight is rolled back.
func (a *Agent) admitLocked(epoch uint64) error {
	if epoch < a.epoch {
		return fencedf("epoch %d superseded by %d", epoch, a.epoch)
	}
	if epoch > a.epoch {
		a.logf("ctrl agent %d: adopting epoch %d (was %d)", a.cfg.Shard, epoch, a.epoch)
		a.epoch = epoch
		if a.reg != nil {
			// Make the adoption durable so a restarted agent still
			// refuses the superseded controller. Best-effort: the
			// register is a floor, and a missed write only narrows the
			// window back to in-memory fencing.
			if err := a.reg.ObserveEpoch(a.opCtxLocked(), epoch); err != nil {
				a.logf("ctrl agent %d: persist epoch %d: %v", a.cfg.Shard, epoch, err)
			}
		}
		a.abortPendingLocked()
	}
	return nil
}

// opCtxLocked returns a context for store I/O issued from under the
// command mutex outside a request (epoch persistence, rollback).
func (a *Agent) opCtxLocked() context.Context {
	if a.cfg.OpTimeout <= 0 {
		return context.Background()
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.OpTimeout)
	_ = cancel // bounded by the timeout itself
	return ctx
}

// abortPendingLocked rolls back the in-flight attempt, if any — unless
// its composite manifest already committed. A controller that died
// between the composite Put (the commit point) and Finalize leaves the
// attempt pending on every shard; its objects are now referenced by a
// restorable checkpoint, so the successor's epoch adoption must finalize
// the attempt, not delete it out from under the composite.
func (a *Agent) abortPendingLocked() {
	if a.pending == nil {
		return
	}
	// Each phase gets its own op budget: against an unresponsive store
	// the Stat alone exhausts a shared context, and the rollback would
	// then run under cleanup's unbounded fallback deadline instead of
	// the configured op timeout — all while holding the command mutex.
	if _, err := a.cfg.Engine.Store.Stat(a.opCtxLocked(), wire.ManifestKey(a.cfg.JobID, a.pendingID)); err == nil {
		a.logf("ctrl agent %d: finalizing checkpoint %d (composite already committed)", a.cfg.Shard, a.pendingID)
		a.pending.Finalize(a.opCtxLocked())
		a.pending, a.pendingDense = nil, ""
		return
	}
	a.logf("ctrl agent %d: aborting in-flight checkpoint %d", a.cfg.Shard, a.pendingID)
	a.pending.Abort(a.opCtxLocked())
	if a.pendingDense != "" {
		_ = a.cfg.Engine.Store.Delete(a.opCtxLocked(), a.pendingDense)
	}
	a.pending, a.pendingDense = nil, ""
}

// Prepare executes the prepare phase: snapshot the hosted shard state
// at args.Step and durably upload the checkpoint payload, publishing
// nothing. Fenced unless args.CkptID is exactly the engine's next ID
// and no attempt is in flight.
func (a *Agent) Prepare(ctx context.Context, epoch uint64, args *PrepareArgs) (*PrepareReply, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.admitLocked(epoch); err != nil {
		return nil, err
	}
	if args.JobID != a.cfg.JobID {
		return nil, fmt.Errorf("ctrl: agent hosts job %q, not %q", a.cfg.JobID, args.JobID)
	}
	if a.pending != nil {
		return nil, fencedf("checkpoint %d already in flight", a.pendingID)
	}
	if next := a.eng.NextID(); args.CkptID != next {
		return nil, fencedf("prepare id %d, engine at %d", args.CkptID, next)
	}
	snap, err := a.cfg.Source(ctx, args.Step)
	if err != nil {
		return nil, fmt.Errorf("ctrl: snapshot at step %d: %w", args.Step, err)
	}
	reply := &PrepareReply{}
	if args.WantDense && snap.Dense != nil {
		reply.DenseKey = wire.DenseKey(a.cfg.JobID, args.CkptID)
		reply.DenseBytes = int64(len(snap.Dense))
		if err := a.cfg.Engine.Store.Put(ctx, reply.DenseKey, snap.Dense); err != nil {
			return nil, fmt.Errorf("ctrl: dense state: %w", err)
		}
	}
	// Shard engines never store dense state under the shard scope; the
	// composite manifest owns the single replicated copy.
	snap.Dense = nil
	p, err := a.eng.Prepare(ctx, snap)
	if err != nil {
		if reply.DenseKey != "" {
			dctx, cancel := ckpt.DetachedCtx(ctx)
			_ = a.cfg.Engine.Store.Delete(dctx, reply.DenseKey)
			cancel()
		}
		return nil, err
	}
	a.pending, a.pendingID, a.pendingDense = p, args.CkptID, reply.DenseKey
	reply.Manifest = p.Manifest()
	return reply, nil
}

// checkPendingLocked fences phase commands against the in-flight attempt.
func (a *Agent) checkPendingLocked(args *CommitArgs) error {
	if args.JobID != a.cfg.JobID {
		return fmt.Errorf("ctrl: agent hosts job %q, not %q", a.cfg.JobID, args.JobID)
	}
	if a.pending == nil {
		return fencedf("no prepared checkpoint")
	}
	if a.pendingID != args.CkptID {
		return fencedf("prepared checkpoint is %d, not %d", a.pendingID, args.CkptID)
	}
	return nil
}

// Publish stores the prepared shard manifest.
func (a *Agent) Publish(ctx context.Context, epoch uint64, args *CommitArgs) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.admitLocked(epoch); err != nil {
		return err
	}
	if err := a.checkPendingLocked(args); err != nil {
		return err
	}
	return a.pending.Publish(ctx)
}

// Finalize commits the shard engine's state. The controller calls this
// only after the composite manifest — the commit point — is durable.
func (a *Agent) Finalize(ctx context.Context, epoch uint64, args *CommitArgs) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.admitLocked(epoch); err != nil {
		return err
	}
	if err := a.checkPendingLocked(args); err != nil {
		return err
	}
	a.pending.Finalize(ctx)
	a.pending, a.pendingDense = nil, ""
	return nil
}

// Abort rolls back the in-flight attempt. Aborting with nothing
// prepared (or a different ID than expected) succeeds as a no-op: the
// controller blanket-aborts every shard after a partial failure, and
// shards that never prepared must not turn that into an error.
func (a *Agent) Abort(ctx context.Context, epoch uint64, args *CommitArgs) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.admitLocked(epoch); err != nil {
		return err
	}
	if args.JobID != a.cfg.JobID {
		return fmt.Errorf("ctrl: agent hosts job %q, not %q", a.cfg.JobID, args.JobID)
	}
	a.abortPendingLocked()
	return nil
}

// Status reports the agent's identity and engine position. Read-only:
// no epoch fencing, so monitoring never perturbs commit state.
func (a *Agent) Status() *StatusReply {
	a.mu.Lock()
	defer a.mu.Unlock()
	prepared := -1
	if a.pending != nil {
		prepared = a.pendingID
	}
	return &StatusReply{
		JobID:      a.cfg.JobID,
		Shard:      a.cfg.Shard,
		Shards:     a.cfg.Shards,
		Epoch:      a.epoch,
		NextID:     a.eng.NextID(),
		PreparedID: prepared,
	}
}

// Close rolls back any in-flight attempt.
func (a *Agent) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.abortPendingLocked()
}

// AgentServer serves an Agent's control protocol over TCP, one
// goroutine per connection, mirroring objstore.Server.
type AgentServer struct {
	agent *Agent
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewAgentServer starts serving agent on addr (e.g. "127.0.0.1:0").
func NewAgentServer(addr string, agent *Agent) (*AgentServer, error) {
	if agent == nil {
		return nil, fmt.Errorf("ctrl: nil agent")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctrl: listen: %w", err)
	}
	s := &AgentServer{agent: agent, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listener address.
func (s *AgentServer) Addr() string { return s.ln.Addr().String() }

func (s *AgentServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.isClosed() {
				s.agent.logf("ctrl agent %d: accept: %v", s.agent.cfg.Shard, err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *AgentServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		req, err := readRequest(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.isClosed() {
				s.agent.logf("ctrl agent %d: read: %v", s.agent.cfg.Shard, err)
			}
			return
		}
		if err := s.handle(bw, req); err != nil {
			s.agent.logf("ctrl agent %d: write: %v", s.agent.cfg.Shard, err)
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// handle dispatches one request and writes its response. Fencing
// rejections map to statusFenced so the client can distinguish them
// from transport and execution errors. Each op runs under the agent's
// OpTimeout (when configured) so a stalled store surfaces as a failed
// command instead of wedging the agent's command mutex.
func (s *AgentServer) handle(w io.Writer, req *request) error {
	ctx := context.Background()
	if d := s.agent.cfg.OpTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	a := s.agent
	respondErr := func(err error) error {
		status := uint8(statusError)
		if errors.Is(err, ErrFenced) {
			status = statusFenced
		}
		return writeResponse(w, status, []byte(err.Error()))
	}
	respondJSON := func(v any) error {
		payload, err := json.Marshal(v)
		if err != nil {
			return respondErr(fmt.Errorf("ctrl: encode reply: %w", err))
		}
		return writeResponse(w, statusOK, payload)
	}
	switch req.op {
	case opPrepare:
		var args PrepareArgs
		if err := json.Unmarshal(req.body, &args); err != nil {
			return respondErr(fmt.Errorf("ctrl: decode prepare: %w", err))
		}
		reply, err := a.Prepare(ctx, req.epoch, &args)
		if err != nil {
			return respondErr(err)
		}
		return respondJSON(reply)
	case opPublish, opFinalize, opAbort:
		var args CommitArgs
		if err := json.Unmarshal(req.body, &args); err != nil {
			return respondErr(fmt.Errorf("ctrl: decode commit args: %w", err))
		}
		var err error
		switch req.op {
		case opPublish:
			err = a.Publish(ctx, req.epoch, &args)
		case opFinalize:
			err = a.Finalize(ctx, req.epoch, &args)
		case opAbort:
			err = a.Abort(ctx, req.epoch, &args)
		}
		if err != nil {
			return respondErr(err)
		}
		return writeResponse(w, statusOK, nil)
	case opStatus:
		return respondJSON(a.Status())
	default:
		return respondErr(fmt.Errorf("ctrl: unknown op %d", req.op))
	}
}

func (s *AgentServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting, closes live connections, and waits for handler
// goroutines. The agent itself (and its in-flight attempt) is left
// untouched — a killed server emulates a partitioned agent, and its
// debris must be handled by the controller's abort and gc, not by a
// graceful rollback.
func (s *AgentServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
