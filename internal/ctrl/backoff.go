package ctrl

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Backoff produces jittered, exponentially growing retry delays. The
// fleet needs jitter structurally: after a healed partition every agent
// and standby sees the store come back at the same instant, and fixed
// retry intervals make them hammer the anchor store in lockstep forever
// (each wave re-synchronizes the next). Full jitter — a uniform draw
// over (0, current] — decorrelates the herd in one round.
//
// The zero value is not usable; call NewBackoff. A Backoff is safe for
// concurrent use, though typically each retry loop owns one.
type Backoff struct {
	base, max time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	current time.Duration
}

// NewBackoff returns a Backoff whose first delay is drawn from
// (0, base] and whose ceiling is max. base must be positive; max below
// base is raised to base.
func NewBackoff(base, max time.Duration) *Backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{
		base:    base,
		max:     max,
		rng:     rand.New(rand.NewSource(rand.Int63())),
		current: base,
	}
}

// Next returns the next delay: a uniform draw over (0, current], after
// which current doubles up to the ceiling.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := time.Duration(1 + b.rng.Int63n(int64(b.current)))
	b.current *= 2
	if b.current > b.max {
		b.current = b.max
	}
	return d
}

// Reset restores the delay window to base. Call it after a success so
// the next failure starts cheap again.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.current = b.base
	b.mu.Unlock()
}

// Sleep waits out one backoff step on clock, returning early with ctx's
// error if the context is cancelled first.
func (b *Backoff) Sleep(ctx context.Context, clock simclock.Clock) error {
	return sleepCtx(ctx, clock, b.Next())
}
