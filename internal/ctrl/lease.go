package ctrl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/objstore"
	"repro/internal/simclock"
)

// ErrLeaseHeld is returned when the epoch lease is held by another live
// controller, or when a renew/release finds the caller's lease superseded.
var ErrLeaseHeld = errors.New("ctrl: lease held")

// LeaseKey returns the store key of a job's epoch/lease register.
// It lives under the job's control prefix — outside both the composite
// checkpoint scope (<job>/ckpt/) and the shard scopes (<job>/shard/) —
// so retention sweeps never touch it.
func LeaseKey(jobID string) string {
	return jobID + "/ctrl/lease"
}

// LeaseRecord is the durable state of the epoch/lease register: the
// highest epoch ever granted or observed for the job, and — while a
// controller is live — who holds the commit lease and until when.
//
// The register is the fleet's durable epoch authority. Epochs only grow:
// a crash, failover, or full-fleet restart never resets them, which is
// what lets agents refuse a stale controller even after losing their own
// in-memory fencing state.
type LeaseRecord struct {
	// Epoch is the highest epoch granted to any holder or observed from
	// the fleet. Monotonic for the lifetime of the register object.
	Epoch uint64 `json:"epoch"`
	// Holder identifies the controller the lease was granted to.
	// Empty when no lease has ever been granted.
	Holder string `json:"holder,omitempty"`
	// ExpiresUnixNano is when the current grant lapses. A register whose
	// grant has lapsed still pins the epoch floor.
	ExpiresUnixNano int64 `json:"expires_unix_nano,omitempty"`
}

// Expires returns the grant's expiry as a time.Time.
func (r *LeaseRecord) Expires() time.Time { return time.Unix(0, r.ExpiresUnixNano) }

// HeldAt reports whether the record represents a live grant at now.
func (r *LeaseRecord) HeldAt(now time.Time) bool {
	return r.Holder != "" && now.Before(r.Expires())
}

// RegisterConfig configures access to a job's epoch/lease register.
type RegisterConfig struct {
	// JobID scopes the register key.
	JobID string
	// Store is the object store backing the register.
	Store objstore.Store
	// Holder identifies this process in grants it acquires. Required for
	// Acquire; read-only users (ckptctl, agents) may leave it empty.
	Holder string
	// TTL is how long a grant lasts between renewals. Defaults to 10s.
	TTL time.Duration
	// Settle is the delay between writing a claim and the verify read
	// that detects a racing claimant. The Store interface has no
	// compare-and-swap, so acquisition is write-then-verify: last writer
	// wins the key, and the settle window gives a concurrent loser's
	// write time to land before we conclude we won. Defaults to 25ms.
	// Election is therefore a liveness mechanism; safety always rests on
	// agent-side epoch fencing.
	Settle time.Duration
	// Clock supplies time; nil means the real clock.
	Clock simclock.Clock
}

// Register reads and mutates a job's epoch/lease record in the store.
type Register struct {
	cfg   RegisterConfig
	clock simclock.Clock
}

// NewRegister validates cfg and returns a register handle.
func NewRegister(cfg RegisterConfig) (*Register, error) {
	if cfg.JobID == "" {
		return nil, errors.New("ctrl: register requires a job ID")
	}
	if cfg.Store == nil {
		return nil, errors.New("ctrl: register requires a store")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 10 * time.Second
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 25 * time.Millisecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Register{cfg: cfg, clock: clock}, nil
}

// Read returns the current register record. A register that has never
// been written reads as the zero record (epoch 0, no holder).
func (r *Register) Read(ctx context.Context) (*LeaseRecord, error) {
	blob, err := r.cfg.Store.Get(ctx, LeaseKey(r.cfg.JobID))
	if errors.Is(err, objstore.ErrNotFound) {
		return &LeaseRecord{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ctrl: read lease register: %w", err)
	}
	rec := &LeaseRecord{}
	if err := json.Unmarshal(blob, rec); err != nil {
		return nil, fmt.Errorf("ctrl: decode lease register: %w", err)
	}
	return rec, nil
}

func (r *Register) write(ctx context.Context, rec *LeaseRecord) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("ctrl: encode lease register: %w", err)
	}
	if err := r.cfg.Store.Put(ctx, LeaseKey(r.cfg.JobID), blob); err != nil {
		return fmt.Errorf("ctrl: write lease register: %w", err)
	}
	return nil
}

// Acquire claims the commit lease. With epochFloor == 0 the granted epoch
// is the register's epoch + 1; a nonzero floor demands exactly that epoch
// and fails if the register has already moved at or past it (a relaunched
// controller presenting its old explicit epoch is refused here, before it
// ever dials an agent). Returns ErrLeaseHeld while another holder's grant
// is live or when a racing claimant wins the settle window.
func (r *Register) Acquire(ctx context.Context, epochFloor uint64) (*Lease, error) {
	if r.cfg.Holder == "" {
		return nil, errors.New("ctrl: acquire requires a holder identity")
	}
	rec, err := r.Read(ctx)
	if err != nil {
		return nil, err
	}
	now := r.clock.Now()
	if rec.HeldAt(now) && rec.Holder != r.cfg.Holder {
		return nil, fmt.Errorf("%w: by %q until %s", ErrLeaseHeld, rec.Holder, rec.Expires().Format(time.RFC3339))
	}
	epoch := rec.Epoch + 1
	if epochFloor != 0 {
		if epochFloor <= rec.Epoch {
			return nil, fmt.Errorf("ctrl: epoch %d is not above register epoch %d", epochFloor, rec.Epoch)
		}
		epoch = epochFloor
	}
	claim := &LeaseRecord{Epoch: epoch, Holder: r.cfg.Holder, ExpiresUnixNano: now.Add(r.cfg.TTL).UnixNano()}
	if err := r.write(ctx, claim); err != nil {
		return nil, err
	}
	// Write-then-verify: let a racing claim land, then check we still own
	// the record.
	r.clock.Sleep(r.cfg.Settle)
	check, err := r.Read(ctx)
	if err != nil {
		return nil, err
	}
	if check.Epoch != epoch || check.Holder != r.cfg.Holder {
		return nil, fmt.Errorf("%w: lost acquisition race to %q (epoch %d)", ErrLeaseHeld, check.Holder, check.Epoch)
	}
	return &Lease{reg: r, epoch: epoch}, nil
}

// WaitAcquire blocks until the lease can be acquired — the standby
// controller's takeover loop. Polling is jittered exponential backoff
// bounded by a fraction of the TTL, so a standby still promotes itself
// within roughly one TTL of the leader's death, but a herd of standbys
// (or a fleet retrying through a healed partition) spreads out instead
// of hitting the anchor store in lockstep. A store outage while waiting
// is retried too — an unreachable register is indistinguishable from a
// partition the standby is expected to ride out.
func (r *Register) WaitAcquire(ctx context.Context) (*Lease, error) {
	base := r.cfg.TTL / 16
	if base < 5*time.Millisecond {
		base = 5 * time.Millisecond
	}
	max := r.cfg.TTL / 4
	if max < base {
		max = base
	}
	bo := NewBackoff(base, max)
	for {
		l, err := r.Acquire(ctx, 0)
		if err == nil {
			return l, nil
		}
		if !errors.Is(err, ErrLeaseHeld) && !errors.Is(err, objstore.ErrStoreUnavailable) {
			return nil, err
		}
		if err := bo.Sleep(ctx, r.clock); err != nil {
			return nil, err
		}
	}
}

// ObserveEpoch raises the register's epoch floor to epoch if it is higher
// than the recorded one, without touching the current grant. Agents call
// this when they adopt a higher epoch from a controller, which makes the
// fleet's fencing state durable: even if every agent restarts, the next
// register read restores the floor.
func (r *Register) ObserveEpoch(ctx context.Context, epoch uint64) error {
	rec, err := r.Read(ctx)
	if err != nil {
		return err
	}
	if epoch <= rec.Epoch {
		return nil
	}
	rec.Epoch = epoch
	return r.write(ctx, rec)
}

// Lease is a live grant from a Register. It carries the epoch the holder
// commits under; Renew must keep succeeding for commits to proceed.
type Lease struct {
	reg   *Register
	epoch uint64
}

// Epoch returns the epoch this lease was granted at.
func (l *Lease) Epoch() uint64 { return l.epoch }

// Renew extends the grant by one TTL. It fails with ErrLeaseHeld if the
// register has moved past this lease — the holder has been superseded and
// must stop committing.
func (l *Lease) Renew(ctx context.Context) error {
	rec, err := l.reg.Read(ctx)
	if err != nil {
		return err
	}
	if rec.Epoch != l.epoch || rec.Holder != l.reg.cfg.Holder {
		return fmt.Errorf("%w: superseded by %q (epoch %d)", ErrLeaseHeld, rec.Holder, rec.Epoch)
	}
	rec.ExpiresUnixNano = l.reg.clock.Now().Add(l.reg.cfg.TTL).UnixNano()
	return l.reg.write(ctx, rec)
}

// Release lapses the grant immediately while keeping the epoch floor, so
// a successor can take over without waiting out the TTL. Releasing a
// lease that has already been superseded is a no-op.
func (l *Lease) Release(ctx context.Context) error {
	rec, err := l.reg.Read(ctx)
	if err != nil {
		return err
	}
	if rec.Epoch != l.epoch || rec.Holder != l.reg.cfg.Holder {
		return nil
	}
	rec.ExpiresUnixNano = l.reg.clock.Now().UnixNano()
	return l.reg.write(ctx, rec)
}

// sleepCtx sleeps d on clock, returning early with ctx's error if the
// context is cancelled first. Virtual clocks advance instantly, so only
// the real clock needs the cancellable path.
func sleepCtx(ctx context.Context, clock simclock.Clock, d time.Duration) error {
	if _, real := clock.(simclock.Real); !real {
		clock.Sleep(d)
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}
