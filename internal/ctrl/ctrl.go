// Package ctrl is the checkpoint control plane: the framed TCP protocol
// a controller process uses to drive the two-phase composite commit
// across shard-agent daemons (cmd/shardd), each of which hosts one
// shard's ckpt.Engine against the shared object store.
//
// Control plane vs. data plane: agents move checkpoint payload directly
// to the object store (the data plane, internal/objstore's protocol);
// only small commands and manifests cross this protocol. The controller
// owns the commit point — it alone stores the composite manifest, and
// only after every agent has durably prepared and published its part,
// so a crashed or partitioned agent can never leave a restorable-looking
// composite behind ("when all nodes finish storing their part ... the
// controller will declare a new valid checkpoint").
//
// Fencing: every mutating request carries the controller's job epoch
// and the checkpoint ID it names. An agent rejects requests from a
// stale epoch (a superseded controller), adopts higher epochs — rolling
// back any attempt the dead controller left in flight — and refuses
// Prepare for any ID other than its engine's next, so a controller and
// agent that disagree about history fail loudly instead of corrupting
// the chain.
package ctrl

import (
	"errors"

	"repro/internal/wire"
)

// ErrFenced marks a request rejected by fencing: a stale epoch, a
// checkpoint ID the agent's engine is not at, or a phase commandment
// with no matching prepared attempt.
var ErrFenced = errors.New("ctrl: fenced")

// PrepareArgs asks an agent to prepare one checkpoint attempt: snapshot
// its hosted shard state at the named step and durably upload the
// payload without publishing anything.
type PrepareArgs struct {
	// JobID guards against misrouted requests; must match the agent's.
	JobID string `json:"job_id"`
	// CkptID is the composite checkpoint sequence number.
	CkptID int `json:"ckpt_id"`
	// Step is the global training step of the consistent cut. The agent
	// advances its replica to exactly this step before snapshotting.
	Step uint64 `json:"step"`
	// WantDense asks this agent to also store the replicated MLP state
	// under the composite dense key. The controller designates exactly
	// one agent (shard 0) — the paper reads the replicated MLPs "from a
	// single GPU" — keeping the blob on the data plane.
	WantDense bool `json:"want_dense,omitempty"`
}

// PrepareReply reports a successful prepare.
type PrepareReply struct {
	// Manifest is the shard's prepared (not yet published) manifest.
	Manifest *wire.Manifest `json:"manifest"`
	// DenseKey and DenseBytes describe the composite-level dense object
	// this agent stored, when WantDense was set and the snapshot carried
	// dense state.
	DenseKey   string `json:"dense_key,omitempty"`
	DenseBytes int64  `json:"dense_bytes,omitempty"`
}

// CommitArgs names the attempt for the publish / finalize / abort phases.
type CommitArgs struct {
	JobID  string `json:"job_id"`
	CkptID int    `json:"ckpt_id"`
}

// SubscribeArgs opens a checkpoint-announcement stream on a
// controller's announce endpoint (see Announcer).
type SubscribeArgs struct {
	// JobID guards against misrouted subscriptions; must match the
	// announcer's.
	JobID string `json:"job_id"`
}

// SubscribeReply acknowledges a subscription and tells the reader where
// the job currently stands, so it can decide how far behind it is
// before the first announcement arrives.
type SubscribeReply struct {
	JobID string `json:"job_id"`
	// Epoch is the announcing controller's job epoch at subscribe time
	// (zero if the announcer has not yet seen a controller).
	Epoch uint64 `json:"epoch"`
	// NextID is the ID the next composite checkpoint will get; NextID-1
	// is the newest committed composite, or -1 when none is known.
	NextID int `json:"next_id"`
}

// AnnounceEvent is pushed to every subscriber after a composite
// checkpoint commits. It is a hint, not a commit record: readers must
// fence on the frame epoch (a deposed controller may still announce)
// and treat the committed manifests in the object store as the source
// of truth.
type AnnounceEvent struct {
	// CkptID is the committed composite's checkpoint ID.
	CkptID int `json:"ckpt_id"`
	// Step is the consistent-cut training step of the checkpoint.
	Step uint64 `json:"step"`
	// Kind is the checkpoint kind ("full" or "incremental").
	Kind string `json:"kind"`
}

// StatusReply describes an agent for discovery and monitoring. Status
// is read-only: it never bumps or fences on epochs.
type StatusReply struct {
	JobID string `json:"job_id"`
	Shard int    `json:"shard"`
	// Shards is the job's total shard count as configured on the agent.
	Shards int    `json:"shards"`
	Epoch  uint64 `json:"epoch"`
	// NextID is the agent engine's next checkpoint sequence number. The
	// controller requires consensus across agents before committing.
	NextID int `json:"next_id"`
	// PreparedID is the in-flight attempt's ID, or -1.
	PreparedID int `json:"prepared_id"`
}
