package ctrl

import (
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	b := NewBackoff(base, max)
	window := base
	for i := 0; i < 10; i++ {
		d := b.Next()
		if d <= 0 || d > window {
			t.Fatalf("step %d: delay %v outside (0, %v]", i, d, window)
		}
		window *= 2
		if window > max {
			window = max
		}
	}
}

func TestBackoffReset(t *testing.T) {
	b := NewBackoff(time.Millisecond, time.Second)
	for i := 0; i < 20; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d > time.Millisecond {
		t.Fatalf("delay after reset = %v, want <= base", d)
	}
}

// TestBackoffJitterSpreads pins the anti-herd property: two loops with
// the same parameters must not produce identical delay sequences. With
// 20 draws over growing windows a collision is (1/base_ns)^20-unlikely,
// so a match means jitter is broken, not bad luck.
func TestBackoffJitterSpreads(t *testing.T) {
	a := NewBackoff(time.Second, time.Hour)
	b := NewBackoff(time.Second, time.Hour)
	same := true
	for i := 0; i < 20; i++ {
		if a.Next() != b.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two backoffs produced identical jitter sequences")
	}
}
