package ctrl

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/objstore"
)

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &request{op: opPrepare, epoch: 7, body: []byte(`{"ckpt_id":3}`)}
	if err := writeRequest(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.op != in.op || out.epoch != in.epoch || string(out.body) != string(in.body) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}

	buf.Reset()
	if err := writeResponse(&buf, statusFenced, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if status != statusFenced || string(payload) != "stale" {
		t.Fatalf("response = %d %q", status, payload)
	}

	// Corrupt magic is rejected.
	buf.Reset()
	buf.WriteString("garbagegarbagegarbage")
	if _, err := readRequest(&buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// testSource returns a fixed two-table snapshot at whatever step is
// asked, tracking how often it was called.
func testSource(t *testing.T) (SnapshotSource, *int) {
	t.Helper()
	calls := new(int)
	return func(ctx context.Context, step uint64) (*ckpt.Snapshot, error) {
		*calls++
		rng := rand.New(rand.NewSource(42))
		tabs := []*embedding.Table{
			embedding.NewTable(0, 32, 4, 0.1, rng),
			embedding.NewTable(1, 16, 4, 0.1, rng),
		}
		mod := map[int]*bitvec.Bitmap{0: bitvec.New(32)}
		mod[0].Set(1)
		return &ckpt.Snapshot{
			Step:     step,
			Reader:   data.ReaderState{NextSample: step * 8, BatchSize: 8},
			Dense:    []byte("dense-state"),
			Tables:   tabs,
			Modified: mod,
		}, nil
	}, calls
}

func testAgent(t *testing.T, shard int) (*Agent, objstore.Store) {
	t.Helper()
	store := objstore.NewMemStore(objstore.MemConfig{})
	src, _ := testSource(t)
	a, err := NewAgent(AgentConfig{
		JobID:  "fence",
		Shard:  shard,
		Shards: 2,
		Engine: ckpt.Config{Store: store, Policy: ckpt.PolicyOneShot},
		Source: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, store
}

func TestAgentEpochFencing(t *testing.T) {
	a, _ := testAgent(t, 0)
	ctx := context.Background()

	// Epoch 2 prepares.
	if _, err := a.Prepare(ctx, 2, &PrepareArgs{JobID: "fence", CkptID: 0, Step: 4}); err != nil {
		t.Fatal(err)
	}
	// A stale controller (epoch 1) is fenced out of every phase.
	if err := a.Publish(ctx, 1, &CommitArgs{JobID: "fence", CkptID: 0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale publish err = %v, want ErrFenced", err)
	}
	if _, err := a.Prepare(ctx, 1, &PrepareArgs{JobID: "fence", CkptID: 0, Step: 4}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale prepare err = %v, want ErrFenced", err)
	}
	// The current epoch still owns the attempt.
	if err := a.Publish(ctx, 2, &CommitArgs{JobID: "fence", CkptID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := a.Finalize(ctx, 2, &CommitArgs{JobID: "fence", CkptID: 0}); err != nil {
		t.Fatal(err)
	}
	if st := a.Status(); st.NextID != 1 || st.Epoch != 2 || st.PreparedID != -1 {
		t.Fatalf("status after commit = %+v", st)
	}
}

func TestAgentAdoptingNewerEpochAbortsInFlightAttempt(t *testing.T) {
	a, store := testAgent(t, 0)
	ctx := context.Background()
	if _, err := a.Prepare(ctx, 1, &PrepareArgs{JobID: "fence", CkptID: 0, Step: 4, WantDense: true}); err != nil {
		t.Fatal(err)
	}
	keys, _ := store.List(ctx, "fence")
	if len(keys) == 0 {
		t.Fatal("prepare stored nothing")
	}
	// A new controller at epoch 5 shows up: the old attempt is rolled
	// back completely (chunks and the composite dense object) before its
	// prepare runs.
	if _, err := a.Prepare(ctx, 5, &PrepareArgs{JobID: "fence", CkptID: 0, Step: 4}); err != nil {
		t.Fatal(err)
	}
	if st := a.Status(); st.Epoch != 5 || st.PreparedID != 0 {
		t.Fatalf("status = %+v, want epoch 5 with attempt 0 in flight", st)
	}
	// The superseded controller cannot publish its aborted attempt.
	if err := a.Publish(ctx, 1, &CommitArgs{JobID: "fence", CkptID: 0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
}

func TestAgentCheckpointIDFencing(t *testing.T) {
	a, _ := testAgent(t, 0)
	ctx := context.Background()
	// Prepare for any ID other than the engine's next is fenced.
	if _, err := a.Prepare(ctx, 1, &PrepareArgs{JobID: "fence", CkptID: 3, Step: 4}); !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
	// Phase commands with no prepared attempt are fenced...
	if err := a.Publish(ctx, 1, &CommitArgs{JobID: "fence", CkptID: 0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
	// ...except Abort, which must be an idempotent no-op so the
	// controller can blanket-abort shards that never prepared.
	if err := a.Abort(ctx, 1, &CommitArgs{JobID: "fence", CkptID: 0}); err != nil {
		t.Fatal(err)
	}
	// Wrong job is an error (misrouted request), not silent work.
	if _, err := a.Prepare(ctx, 1, &PrepareArgs{JobID: "other", CkptID: 0, Step: 4}); err == nil {
		t.Fatal("cross-job prepare accepted")
	}
	// Double-prepare of the same ID is fenced while one is in flight.
	if _, err := a.Prepare(ctx, 1, &PrepareArgs{JobID: "fence", CkptID: 0, Step: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Prepare(ctx, 1, &PrepareArgs{JobID: "fence", CkptID: 0, Step: 4}); !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
	// Publish naming a different attempt than the prepared one is fenced.
	if err := a.Publish(ctx, 1, &CommitArgs{JobID: "fence", CkptID: 7}); !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
}

func TestClientServerFencedErrorCrossesTheWire(t *testing.T) {
	a, _ := testAgent(t, 0)
	srv, err := NewAgentServer("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialAgent(srv.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard != 0 || st.JobID != "fence" || st.NextID != 0 {
		t.Fatalf("status = %+v", st)
	}
	// Full happy path over TCP.
	reply, err := cl.Prepare(ctx, 3, &PrepareArgs{JobID: "fence", CkptID: 0, Step: 4, WantDense: true})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Manifest == nil || reply.Manifest.ID != 0 || reply.DenseKey == "" {
		t.Fatalf("prepare reply = %+v", reply)
	}
	// Fencing survives serialization as ErrFenced.
	if err := cl.Publish(ctx, 2, "fence", 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
	if err := cl.Publish(ctx, 3, "fence", 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Finalize(ctx, 3, "fence", 0); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextID != 1 || st.Epoch != 3 {
		t.Fatalf("status after TCP commit = %+v", st)
	}
}
