package ctrl

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client speaks the control protocol to one shard agent. Control
// traffic is low-rate and strictly serialized per shard, so a single
// connection (redialed transparently after transport errors) suffices —
// unlike the data plane's pooled objstore.Client.
type Client struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	closed bool
}

// ClientConfig configures DialAgent.
type ClientConfig struct {
	// DialTimeout bounds connection establishment; zero means 5s.
	DialTimeout time.Duration
}

// DialAgent connects to an agent at addr and verifies reachability with
// a Status probe.
func DialAgent(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, timeout: cfg.DialTimeout}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DialTimeout)
	defer cancel()
	if _, err := c.Status(ctx); err != nil {
		return nil, fmt.Errorf("ctrl: dial probe %s: %w", addr, err)
	}
	return c, nil
}

// Addr returns the agent address this client dials.
func (c *Client) Addr() string { return c.addr }

// call performs one request/response round trip. Transport errors drop
// the connection so the next call redials; protocol-level failures
// (fenced, error status) keep it.
func (c *Client) call(ctx context.Context, op uint8, epoch uint64, args any, reply any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var body []byte
	if args != nil {
		var err error
		if body, err = json.Marshal(args); err != nil {
			return fmt.Errorf("ctrl: encode request: %w", err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("ctrl: client closed")
	}
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
		if err != nil {
			return fmt.Errorf("ctrl: dial %s: %w", c.addr, err)
		}
		c.conn = conn
		c.br = bufio.NewReaderSize(conn, 64<<10)
		c.bw = bufio.NewWriterSize(conn, 64<<10)
	}
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	drop := func(err error) error {
		c.conn.Close()
		c.conn = nil
		return err
	}
	if err := writeRequest(c.bw, &request{op: op, epoch: epoch, body: body}); err != nil {
		return drop(err)
	}
	if err := c.bw.Flush(); err != nil {
		return drop(err)
	}
	status, payload, err := readResponse(c.br)
	if err != nil {
		return drop(err)
	}
	switch status {
	case statusOK:
		if reply != nil && len(payload) > 0 {
			if err := json.Unmarshal(payload, reply); err != nil {
				return fmt.Errorf("ctrl: decode reply: %w", err)
			}
		}
		return nil
	case statusFenced:
		return fmt.Errorf("%w: agent %s: %s", ErrFenced, c.addr, payload)
	default:
		return fmt.Errorf("ctrl: agent %s: %s", c.addr, payload)
	}
}

// Status fetches the agent's discovery/monitoring report.
func (c *Client) Status(ctx context.Context) (*StatusReply, error) {
	var reply StatusReply
	if err := c.call(ctx, opStatus, 0, nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Prepare drives the agent's prepare phase.
func (c *Client) Prepare(ctx context.Context, epoch uint64, args *PrepareArgs) (*PrepareReply, error) {
	var reply PrepareReply
	if err := c.call(ctx, opPrepare, epoch, args, &reply); err != nil {
		return nil, err
	}
	if reply.Manifest == nil {
		return nil, fmt.Errorf("ctrl: agent %s returned no manifest", c.addr)
	}
	return &reply, nil
}

// Publish drives the agent's publish phase.
func (c *Client) Publish(ctx context.Context, epoch uint64, jobID string, id int) error {
	return c.call(ctx, opPublish, epoch, &CommitArgs{JobID: jobID, CkptID: id}, nil)
}

// Finalize commits the agent's shard state after the composite commit.
func (c *Client) Finalize(ctx context.Context, epoch uint64, jobID string, id int) error {
	return c.call(ctx, opFinalize, epoch, &CommitArgs{JobID: jobID, CkptID: id}, nil)
}

// Abort rolls back the agent's in-flight attempt.
func (c *Client) Abort(ctx context.Context, epoch uint64, jobID string, id int) error {
	return c.call(ctx, opAbort, epoch, &CommitArgs{JobID: jobID, CkptID: id}, nil)
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	return nil
}
