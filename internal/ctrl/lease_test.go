package ctrl

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/objstore"
	"repro/internal/simclock"
)

func testRegister(t *testing.T, store objstore.Store, clock simclock.Clock, holder string) *Register {
	t.Helper()
	reg, err := NewRegister(RegisterConfig{
		JobID: "leasejob", Store: store, Holder: holder,
		TTL: 10 * time.Second, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestLeaseAcquireRenewExpire(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMemStore(objstore.MemConfig{})
	clock := simclock.NewSim(time.Time{})
	regA := testRegister(t, store, clock, "a")
	regB := testRegister(t, store, clock, "b")

	leaseA, err := regA.Acquire(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if leaseA.Epoch() != 1 {
		t.Fatalf("first grant epoch = %d, want 1", leaseA.Epoch())
	}
	// A second claimant is refused while the grant is live.
	if _, err := regB.Acquire(ctx, 0); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("concurrent acquire err = %v, want ErrLeaseHeld", err)
	}
	// Renewal keeps the grant alive past the original TTL.
	clock.Advance(6 * time.Second)
	if err := leaseA.Renew(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Advance(6 * time.Second)
	if _, err := regB.Acquire(ctx, 0); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire after renew err = %v, want ErrLeaseHeld", err)
	}

	// The holder stops renewing; after expiry the standby takes over at
	// the next epoch — no manual assignment.
	clock.Advance(11 * time.Second)
	leaseB, err := regB.Acquire(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if leaseB.Epoch() != 2 {
		t.Fatalf("takeover epoch = %d, want 2", leaseB.Epoch())
	}
	// The superseded holder can no longer renew or commit.
	if err := leaseA.Renew(ctx); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("superseded renew err = %v, want ErrLeaseHeld", err)
	}
	// Releasing keeps the epoch floor: the next grant still moves up.
	if err := leaseB.Release(ctx); err != nil {
		t.Fatal(err)
	}
	leaseA2, err := regA.Acquire(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if leaseA2.Epoch() != 3 {
		t.Fatalf("epoch after release = %d, want 3 (epochs are durable and monotonic)", leaseA2.Epoch())
	}
}

func TestLeaseExplicitEpochFloor(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMemStore(objstore.MemConfig{})
	clock := simclock.NewSim(time.Time{})
	regA := testRegister(t, store, clock, "a")

	lease, err := regA.Acquire(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Epoch() != 5 {
		t.Fatalf("explicit epoch grant = %d, want 5", lease.Epoch())
	}
	if err := lease.Release(ctx); err != nil {
		t.Fatal(err)
	}
	// A relaunched controller presenting a stale explicit epoch is
	// refused by the register before it ever dials an agent.
	if _, err := regA.Acquire(ctx, 5); err == nil || errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("stale explicit epoch err = %v, want non-lease refusal", err)
	}
}

func TestRegisterObserveEpochIsAFloor(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMemStore(objstore.MemConfig{})
	clock := simclock.NewSim(time.Time{})
	reg := testRegister(t, store, clock, "a")

	if err := reg.ObserveEpoch(ctx, 9); err != nil {
		t.Fatal(err)
	}
	rec, err := reg.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 9 {
		t.Fatalf("observed epoch = %d, want 9", rec.Epoch)
	}
	// Lower observations never move the floor down.
	if err := reg.ObserveEpoch(ctx, 4); err != nil {
		t.Fatal(err)
	}
	rec, err = reg.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 9 {
		t.Fatalf("epoch after lower observation = %d, want 9", rec.Epoch)
	}
	// The next grant starts above everything the fleet has seen.
	lease, err := reg.Acquire(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Epoch() != 10 {
		t.Fatalf("grant after observation = %d, want 10", lease.Epoch())
	}
}
