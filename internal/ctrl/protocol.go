package ctrl

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol (all integers little-endian), mirroring the object
// store's framing (internal/objstore/protocol.go):
//
//	Request:  u32 magic | u8 op | u64 epoch | u32 bodyLen | body (JSON)
//	Response: u8 status | u32 payloadLen | payload
//
// For statusOK the payload is the op's JSON reply (empty when the op
// has none); for statusFenced and statusError it is the error message.
// Epoch rides in the frame header so fencing is checked before any body
// decoding.
const (
	protoMagic = 0x434E4331 // "CNC1"

	opPrepare  = 1
	opPublish  = 2
	opFinalize = 3
	opAbort    = 4
	opStatus   = 5
	// opSubscribe/opAnnounce are the read plane's verbs: a serving
	// replica sends one opSubscribe to the controller's announce
	// endpoint, and from then on the endpoint pushes an opAnnounce
	// request frame (epoch in the header, AnnounceEvent body) for each
	// composite that commits. Announcements are hints — the committed
	// manifests in the object store remain the source of truth.
	opSubscribe = 6
	opAnnounce  = 7

	statusOK     = 0
	statusFenced = 1
	statusError  = 2
)

// maxBodyLen bounds a control frame. Control messages carry commands
// and manifests, never checkpoint payload; manifests of very wide
// embedding-table sets still fit comfortably.
const maxBodyLen = 1 << 26 // 64 MiB

type request struct {
	op    uint8
	epoch uint64
	body  []byte
}

// writeRequest frames and writes a request.
func writeRequest(w io.Writer, req *request) error {
	if len(req.body) > maxBodyLen {
		return fmt.Errorf("ctrl: request body too long: %d bytes", len(req.body))
	}
	hdr := make([]byte, 4+1+8+4)
	binary.LittleEndian.PutUint32(hdr, protoMagic)
	hdr[4] = req.op
	binary.LittleEndian.PutUint64(hdr[5:], req.epoch)
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(req.body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(req.body) > 0 {
		if _, err := w.Write(req.body); err != nil {
			return err
		}
	}
	return nil
}

// readRequest reads one framed request.
func readRequest(r io.Reader) (*request, error) {
	hdr := make([]byte, 4+1+8+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr); m != protoMagic {
		return nil, fmt.Errorf("ctrl: bad magic 0x%08x", m)
	}
	req := &request{op: hdr[4], epoch: binary.LittleEndian.Uint64(hdr[5:])}
	bodyLen := binary.LittleEndian.Uint32(hdr[13:])
	if bodyLen > maxBodyLen {
		return nil, fmt.Errorf("ctrl: body length %d exceeds limit", bodyLen)
	}
	if bodyLen > 0 {
		req.body = make([]byte, bodyLen)
		if _, err := io.ReadFull(r, req.body); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// writeResponse frames and writes a response.
func writeResponse(w io.Writer, status uint8, payload []byte) error {
	if len(payload) > maxBodyLen {
		return fmt.Errorf("ctrl: response too long: %d bytes", len(payload))
	}
	hdr := make([]byte, 5)
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readResponse reads one framed response.
func readResponse(r io.Reader) (status uint8, payload []byte, err error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	status = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxBodyLen {
		return 0, nil, fmt.Errorf("ctrl: response length %d exceeds limit", n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
	}
	return status, payload, nil
}
