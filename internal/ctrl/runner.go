package ctrl

import (
	"context"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/wire"
)

// RemoteRunner adapts a control-plane Client to ckpt.ShardRunner, so
// the exact commit orchestration the in-process Coordinator runs over
// LocalRunners drives shard-agent daemons instead. The snapshot in a
// PrepareRequest is ignored: the agent snapshots its own hosted state
// at the requested step.
type RemoteRunner struct {
	client *Client
	jobID  string
	shard  int
	epoch  uint64
	// wantDense marks the one runner (shard 0) whose agent stores the
	// replicated dense state at the composite level.
	wantDense bool

	mu         sync.Mutex
	denseKey   string
	denseBytes int64
}

// NewRemoteRunner wraps client as the runner for shard of jobID, acting
// under the given controller epoch.
func NewRemoteRunner(client *Client, jobID string, shard int, epoch uint64, wantDense bool) *RemoteRunner {
	return &RemoteRunner{client: client, jobID: jobID, shard: shard, epoch: epoch, wantDense: wantDense}
}

// Shard implements ckpt.ShardRunner.
func (r *RemoteRunner) Shard() int { return r.shard }

// Client returns the underlying control client.
func (r *RemoteRunner) Client() *Client { return r.client }

// Prepare implements ckpt.ShardRunner.
func (r *RemoteRunner) Prepare(ctx context.Context, req ckpt.PrepareRequest) (*wire.Manifest, error) {
	reply, err := r.client.Prepare(ctx, r.epoch, &PrepareArgs{
		JobID:     r.jobID,
		CkptID:    req.ID,
		Step:      req.Step,
		WantDense: r.wantDense,
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.denseKey, r.denseBytes = reply.DenseKey, reply.DenseBytes
	r.mu.Unlock()
	return reply.Manifest, nil
}

// Dense reports the composite-level dense object the last prepare
// stored (empty unless this runner is the dense-designated shard).
func (r *RemoteRunner) Dense() (key string, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.denseKey, r.denseBytes
}

// Publish implements ckpt.ShardRunner.
func (r *RemoteRunner) Publish(ctx context.Context, id int) error {
	return r.client.Publish(ctx, r.epoch, r.jobID, id)
}

// Finalize implements ckpt.ShardRunner.
func (r *RemoteRunner) Finalize(ctx context.Context, id int) error {
	return r.client.Finalize(ctx, r.epoch, r.jobID, id)
}

// Abort implements ckpt.ShardRunner.
func (r *RemoteRunner) Abort(ctx context.Context, id int) error {
	return r.client.Abort(ctx, r.epoch, r.jobID, id)
}
