package ctrl

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/objstore"
	"repro/internal/wire"
)

func TestAnnounceSubscribeStream(t *testing.T) {
	ann, err := NewAnnouncer("127.0.0.1:0", "job", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Close()
	ann.SetPosition(3, 7)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sub, err := Subscribe(ctx, ann.Addr(), "job")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if r := sub.Reply(); r.JobID != "job" || r.Epoch != 3 || r.NextID != 7 {
		t.Fatalf("subscribe reply = %+v, want epoch 3 next 7", r)
	}

	ann.Announce(3, &wire.Manifest{ID: 7, Step: 64, Kind: wire.KindFull.String()})
	ev, epoch, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 3 || ev.CkptID != 7 || ev.Step != 64 || ev.Kind != wire.KindFull.String() {
		t.Fatalf("announcement = %+v at epoch %d", ev, epoch)
	}

	// A later announcement from a lower epoch still crosses the wire —
	// fencing is the reader's job (the frame epoch is its input) — and a
	// second subscriber sees the advanced position.
	ann.Announce(2, &wire.Manifest{ID: 8, Step: 72, Kind: wire.KindIncremental.String()})
	ev, epoch, err = sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || ev.CkptID != 8 {
		t.Fatalf("stale-epoch announcement = %+v at epoch %d", ev, epoch)
	}
	sub2, err := Subscribe(ctx, ann.Addr(), "job")
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if r := sub2.Reply(); r.Epoch != 3 || r.NextID != 9 {
		t.Fatalf("second subscribe reply = %+v, want epoch 3 next 9", r)
	}
}

func TestSubscribeWrongJobRejected(t *testing.T) {
	ann, err := NewAnnouncer("127.0.0.1:0", "job", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := Subscribe(ctx, ann.Addr(), "other"); err == nil || !strings.Contains(err.Error(), "job") {
		t.Fatalf("cross-job subscribe = %v, want job mismatch error", err)
	}
}

func TestAnnouncerDropsWedgedSubscriber(t *testing.T) {
	ann, err := NewAnnouncer("127.0.0.1:0", "job", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Close()

	// A raw conn that subscribes and then never reads: once its queue
	// and the socket buffers fill, the announcer must drop it rather
	// than block the commit path.
	conn, err := net.Dial("tcp", ann.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeRequest(conn, &request{op: opSubscribe, body: []byte(`{"job_id":"job"}`)}); err != nil {
		t.Fatal(err)
	}
	if status, _, err := readResponse(conn); err != nil || status != statusOK {
		t.Fatalf("subscribe handshake: status %d, %v", status, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ann.Subscribers() > 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("wedged subscriber never dropped")
		}
		ann.Announce(1, &wire.Manifest{ID: i, Step: uint64(i), Kind: wire.KindFull.String()})
	}
}

func TestControllerAnnouncesAfterCommit(t *testing.T) {
	var addrs []string
	for shard := 0; shard < 2; shard++ {
		a, _ := testAgent(t, shard)
		srv, err := NewAgentServer("127.0.0.1:0", a)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	ann, err := NewAnnouncer("127.0.0.1:0", "fence", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sub, err := Subscribe(ctx, ann.Addr(), "fence")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	c, err := NewController(ControllerConfig{
		JobID:     "fence",
		Store:     objstore.NewMemStore(objstore.MemConfig{}),
		Agents:    addrs,
		Announcer: ann,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Discovery already seeded the announcer's position.
	if ann.epochNow() != c.Epoch() {
		t.Fatalf("announcer epoch = %d, want controller's %d", ann.epochNow(), c.Epoch())
	}

	man, err := c.Checkpoint(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	ev, epoch, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != c.Epoch() || ev.CkptID != man.ID || ev.Step != 8 || ev.Kind != man.Kind {
		t.Fatalf("announcement = %+v at epoch %d, want ckpt %d step 8 epoch %d", ev, epoch, man.ID, c.Epoch())
	}
}

// epochNow exposes the announcer's current epoch to tests.
func (a *Announcer) epochNow() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// stallingStore wraps a Store with a List that blocks until the context
// is done — the "hung store" a controller's own per-op budget must
// bound.
type stallingStore struct {
	objstore.Store
}

func (s *stallingStore) List(ctx context.Context, prefix string) ([]string, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestControllerOpTimeoutBoundsSlowStore(t *testing.T) {
	// Regression: NewController used to hardcode a 30s deadline around
	// discovery and the KeepLast ListManifests seed; a wedged store made
	// startup hang the full 30s regardless of configuration. With
	// OpTimeout plumbed through, the slow store fails fast at the
	// configured budget.
	src, _ := testSource(t)
	a, err := NewAgent(AgentConfig{
		JobID:  "fence",
		Shard:  0,
		Shards: 1,
		Engine: ckpt.Config{Store: objstore.NewMemStore(objstore.MemConfig{}), Policy: ckpt.PolicyOneShot},
		Source: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewAgentServer("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	start := time.Now()
	_, err = NewController(ControllerConfig{
		JobID:     "fence",
		Store:     &stallingStore{Store: objstore.NewMemStore(objstore.MemConfig{})},
		Agents:    []string{srv.Addr()},
		KeepLast:  1, // forces the ListManifests GC seed, which stalls
		OpTimeout: 200 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("NewController succeeded against a wedged store")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("NewController took %v against a wedged store, want ~the 200ms OpTimeout", elapsed)
	}
}
