package ctrl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/objstore"
	"repro/internal/wire"
)

// miniSource is a per-shard snapshot source whose content is a pure
// function of (shard, step): each shard owns one table, so composites
// assemble cleanly, and repeated fleets see identical data.
func miniSource(shard int) SnapshotSource {
	return func(ctx context.Context, step uint64) (*ckpt.Snapshot, error) {
		rng := rand.New(rand.NewSource(int64(shard)<<20 | int64(step)))
		tab := embedding.NewTable(shard, 32, 4, 0.1, rng)
		mod := bitvec.New(32)
		mod.Set(int(step) % 32)
		return &ckpt.Snapshot{
			Step:     step,
			Reader:   data.ReaderState{NextSample: step * 8, BatchSize: 8},
			Dense:    []byte(fmt.Sprintf("dense@%d", step)),
			Tables:   []*embedding.Table{tab},
			Modified: map[int]*bitvec.Bitmap{shard: mod},
		}, nil
	}
}

// miniFleet is an in-package agent fleet over loopback TCP sharing one
// MemStore — small enough for satellite regression tests that need
// access to controller internals.
type miniFleet struct {
	agents  []*Agent
	servers []*AgentServer
	addrs   []string
}

func startMiniFleet(t *testing.T, job string, n int, store *objstore.MemStore, recoverAgents bool) *miniFleet {
	t.Helper()
	f := &miniFleet{}
	for s := 0; s < n; s++ {
		a, err := NewAgent(AgentConfig{
			JobID:   job,
			Shard:   s,
			Shards:  n,
			Engine:  ckpt.Config{Store: store, Policy: ckpt.PolicyOneShot},
			Source:  miniSource(s),
			Recover: recoverAgents,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewAgentServer("127.0.0.1:0", a)
		if err != nil {
			t.Fatal(err)
		}
		f.agents = append(f.agents, a)
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, srv.Addr())
	}
	t.Cleanup(f.stop)
	return f
}

func (f *miniFleet) stop() {
	for _, srv := range f.servers {
		srv.Close()
	}
}

// TestControllerRestartStillSweepsPredecessorComposites is the
// regression for failover-blind composite GC: a restarted controller
// seeded only by its own Checkpoint calls would never delete its
// predecessor's composites, leaking manifests and dense objects past
// KeepLast forever.
func TestControllerRestartStillSweepsPredecessorComposites(t *testing.T) {
	const job = "gcjob"
	ctx := context.Background()
	store := objstore.NewMemStore(objstore.MemConfig{})
	fleet := startMiniFleet(t, job, 2, store, false)

	c1, err := NewController(ControllerConfig{JobID: job, Store: store, Agents: fleet.addrs, KeepLast: 2})
	if err != nil {
		t.Fatal(err)
	}
	for step := uint64(8); step <= 24; step += 8 {
		if _, err := c1.Checkpoint(ctx, step); err != nil {
			t.Fatal(err)
		}
	}
	// Sanity: the live instance's own retention works (id 0 swept).
	if _, err := store.Stat(ctx, wire.ManifestKey(job, 0)); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("live-instance gc left composite 0 behind (err %v)", err)
	}
	c1.Close()

	// Controller restarts (new process, empty caches) and commits past
	// KeepLast: the predecessor's composites 1 and 2 must be swept.
	c2, err := NewController(ControllerConfig{JobID: job, Store: store, Agents: fleet.addrs, KeepLast: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for step := uint64(32); step <= 40; step += 8 {
		if _, err := c2.Checkpoint(ctx, step); err != nil {
			t.Fatal(err)
		}
	}
	for id := 1; id <= 2; id++ {
		if _, err := store.Stat(ctx, wire.ManifestKey(job, id)); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("restarted controller leaked predecessor composite %d (err %v)", id, err)
		}
		if _, err := store.Stat(ctx, wire.DenseKey(job, id)); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("restarted controller leaked dense object of composite %d (err %v)", id, err)
		}
	}
	for id := 3; id <= 4; id++ {
		if _, err := store.Stat(ctx, wire.ManifestKey(job, id)); err != nil {
			t.Fatalf("retained composite %d missing: %v", id, err)
		}
	}
}

// TestStaleEpochControllerRefusedAfterFullFleetRestart is the regression
// for epoch fencing resetting on agent restart: with epochs only in
// agent memory, a full-fleet restart reset every agent to epoch 0 and a
// superseded controller relaunched with its old explicit -epoch passed
// the admission check.
func TestStaleEpochControllerRefusedAfterFullFleetRestart(t *testing.T) {
	const job = "fencejob"
	ctx := context.Background()
	store := objstore.NewMemStore(objstore.MemConfig{})
	fleet1 := startMiniFleet(t, job, 2, store, true)

	reg, err := NewRegister(RegisterConfig{JobID: job, Store: store, Holder: "primary", Settle: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lease1, err := reg.Acquire(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewController(ControllerConfig{JobID: job, Store: store, Agents: fleet1.addrs, Lease: lease1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Checkpoint(ctx, 8); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if err := lease1.Release(ctx); err != nil {
		t.Fatal(err)
	}
	fleet1.stop()

	// Full fleet restart: fresh processes, state only in the store.
	fleet2 := startMiniFleet(t, job, 2, store, true)
	if st := fleet2.agents[0].Status(); st.Epoch != lease1.Epoch() || st.NextID != 1 {
		t.Fatalf("restarted agent at epoch %d next %d, want epoch %d next 1 (durable fencing state)",
			st.Epoch, st.NextID, lease1.Epoch())
	}
	// The superseded controller relaunched with its old explicit epoch
	// must be refused by fleet admission...
	if _, err := NewController(ControllerConfig{JobID: job, Store: store, Agents: fleet2.addrs, Epoch: lease1.Epoch()}); err == nil {
		t.Fatal("stale-epoch controller admitted after full-fleet restart")
	}
	// ...and must not be able to mint a lease at that epoch either.
	regStale, err := NewRegister(RegisterConfig{JobID: job, Store: store, Holder: "primary-again", Settle: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regStale.Acquire(ctx, lease1.Epoch()); err == nil || errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("register granted stale epoch %d (err %v)", lease1.Epoch(), err)
	}
	// A fresh lease moves past everything durably and the chain resumes
	// without gaps.
	lease2, err := regStale.Acquire(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lease2.Epoch() <= lease1.Epoch() {
		t.Fatalf("successor lease epoch %d not above %d", lease2.Epoch(), lease1.Epoch())
	}
	c2, err := NewController(ControllerConfig{JobID: job, Store: store, Agents: fleet2.addrs, Lease: lease2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	man, err := c2.Checkpoint(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	if man.ID != 1 {
		t.Fatalf("resumed chain at id %d, want 1", man.ID)
	}
}

// TestControllerManifestCacheBoundedWithoutRetention is the regression
// for the unbounded manifest cache: with KeepLast == 0 every committed
// composite stayed cached forever on a long-running job.
func TestControllerManifestCacheBoundedWithoutRetention(t *testing.T) {
	const job = "cachejob"
	ctx := context.Background()
	store := objstore.NewMemStore(objstore.MemConfig{})
	fleet := startMiniFleet(t, job, 1, store, false)

	c, err := NewController(ControllerConfig{JobID: job, Store: store, Agents: fleet.addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for step := uint64(8); step <= 24; step += 8 {
		if _, err := c.Checkpoint(ctx, step); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.manifests) != 0 {
		t.Fatalf("manifest cache holds %d entries with retention disabled, want 0", len(c.manifests))
	}
	// Retention disabled means nothing is swept, only not cached.
	for id := 0; id <= 2; id++ {
		if _, err := store.Stat(ctx, wire.ManifestKey(job, id)); err != nil {
			t.Fatalf("composite %d missing with retention disabled: %v", id, err)
		}
	}
}

// TestAgentOpDeadlineUnblocksWedgedStore is the regression for the agent
// wedging on a hung store: ops ran under context.Background(), so a
// stalled Put during Prepare held the command mutex forever and even
// Abort from a new-epoch controller could not land.
func TestAgentOpDeadlineUnblocksWedgedStore(t *testing.T) {
	const job = "wedgejob"
	ctx := context.Background()
	// 256 B/s: one filler object reserves the link for minutes.
	store := objstore.NewMemStore(objstore.MemConfig{WriteBandwidth: 256})
	a, err := NewAgent(AgentConfig{
		JobID:     job,
		Shard:     0,
		Shards:    1,
		Engine:    ckpt.Config{Store: store, Policy: ckpt.PolicyFull},
		Source:    miniSource(0),
		OpTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewAgentServer("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialAgent(srv.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Saturate the store's link so the next Put waits ~4 minutes.
	if err := store.Put(ctx, "filler", make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := cl.Prepare(cctx, 1, &PrepareArgs{JobID: job, CkptID: 0, Step: 4, WantDense: true}); err == nil {
		t.Fatal("prepare against a saturated store succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("prepare held the agent for %s; per-op deadline did not fire", elapsed)
	}
	// The agent is not wedged: a new-epoch controller's commands land.
	if _, err := cl.Status(cctx); err != nil {
		t.Fatalf("status after deadline-failed prepare: %v", err)
	}
	if err := cl.Abort(cctx, 2, job, 0); err != nil {
		t.Fatalf("abort from new epoch after deadline-failed prepare: %v", err)
	}
	if st := a.Status(); st.Epoch != 2 || st.PreparedID != -1 {
		t.Fatalf("agent state after recovery = %+v, want epoch 2, nothing pending", st)
	}
}
